#ifndef BG3_REFSTORE_REF_GRAPH_STORE_H_
#define BG3_REFSTORE_REF_GRAPH_STORE_H_

#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

#include "cloud/cloud_store.h"
#include "graph/engine.h"

namespace bg3::refstore {

struct RefStoreOptions {
  /// Per-operation fixed CPU cost (iterations of a checksum loop), standing
  /// in for the query-engine overhead of a general-purpose graph database.
  size_t op_cost_iterations = 2000;
};

/// Stand-in for the closed-source conventional comparator (AWS Neptune in
/// §4.2). Deliberately conventional design: coarse global locking, no
/// graph-native caching, and page-granular read/write-through to storage —
/// every write rewrites its whole adjacency page, every read fetches and
/// parses it. The paper only uses the comparator directionally (ByteGraph
/// is 17-115x faster); this engine reproduces that order-of-magnitude gap.
class RefGraphStore : public graph::GraphEngine {
 public:
  RefGraphStore(cloud::CloudStore* store, const RefStoreOptions& options = {});

  std::string name() const override { return "RefStore(Neptune-standin)"; }

  Status AddVertex(graph::VertexId id, const Slice& properties,
                   const OpContext* ctx = nullptr) override;
  Result<std::string> GetVertex(graph::VertexId id,
                                const OpContext* ctx = nullptr) override;
  Status DeleteVertex(graph::VertexId id, graph::EdgeType type,
                      const OpContext* ctx = nullptr) override;

  Status AddEdge(graph::VertexId src, graph::EdgeType type,
                 graph::VertexId dst, const Slice& properties,
                 graph::TimestampUs created_us,
                 const OpContext* ctx = nullptr) override;
  Status DeleteEdge(graph::VertexId src, graph::EdgeType type,
                    graph::VertexId dst,
                    const OpContext* ctx = nullptr) override;
  Result<std::string> GetEdge(graph::VertexId src, graph::EdgeType type,
                              graph::VertexId dst,
                              const OpContext* ctx = nullptr) override;

  Status GetNeighbors(graph::VertexId src, graph::EdgeType type, size_t limit,
                      std::vector<graph::Neighbor>* out,
                      const OpContext* ctx = nullptr) override;

 private:
  struct AdjEntry {
    graph::TimestampUs created_us;
    std::string properties;
  };
  using AdjKey = std::pair<graph::VertexId, graph::EdgeType>;

  static std::string EncodeAdjPage(
      const std::map<graph::VertexId, AdjEntry>& adj);
  static Status DecodeAdjPage(const Slice& data,
                              std::map<graph::VertexId, AdjEntry>* out);

  /// Reads + parses the adjacency page of (src, type) from storage.
  Result<std::map<graph::VertexId, AdjEntry>> LoadAdjLocked(
      const AdjKey& key, const OpContext* ctx = nullptr) const;
  Status StoreAdjLocked(const AdjKey& key,
                        const std::map<graph::VertexId, AdjEntry>& adj,
                        const OpContext* ctx = nullptr);

  void BurnCpu() const;

  cloud::CloudStore* const store_;
  const RefStoreOptions opts_;
  cloud::StreamId stream_;

  mutable std::shared_mutex mu_;  ///< one coarse lock for the whole store.
  std::map<AdjKey, cloud::PagePointer> adj_index_;
  std::map<graph::VertexId, cloud::PagePointer> vertex_index_;
};

}  // namespace bg3::refstore

#endif  // BG3_REFSTORE_REF_GRAPH_STORE_H_
