#include "refstore/ref_graph_store.h"

#include "common/coding.h"

namespace bg3::refstore {

RefGraphStore::RefGraphStore(cloud::CloudStore* store,
                             const RefStoreOptions& options)
    : store_(store), opts_(options) {
  stream_ = store_->CreateStream("refstore-pages");
}

void RefGraphStore::BurnCpu() const {
  // Fixed per-operation overhead standing in for query planning/execution
  // of a general-purpose engine. volatile keeps the loop from being
  // optimized away.
  volatile uint64_t acc = 0xdead;
  for (size_t i = 0; i < opts_.op_cost_iterations; ++i) {
    acc = acc * 6364136223846793005ull + 1442695040888963407ull;
  }
}

std::string RefGraphStore::EncodeAdjPage(
    const std::map<graph::VertexId, AdjEntry>& adj) {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(adj.size()));
  for (const auto& [dst, entry] : adj) {
    PutFixed64(&out, dst);
    PutFixed64(&out, entry.created_us);
    PutLengthPrefixedSlice(&out, entry.properties);
  }
  return out;
}

Status RefGraphStore::DecodeAdjPage(const Slice& data,
                                    std::map<graph::VertexId, AdjEntry>* out) {
  Slice in = data;
  uint32_t count;
  if (!GetVarint32(&in, &count)) return Status::Corruption("adj page");
  out->clear();
  for (uint32_t i = 0; i < count; ++i) {
    graph::VertexId dst;
    AdjEntry entry;
    Slice props;
    if (!GetFixed64(&in, &dst) || !GetFixed64(&in, &entry.created_us) ||
        !GetLengthPrefixedSlice(&in, &props)) {
      return Status::Corruption("adj page entry");
    }
    entry.properties = props.ToString();
    out->emplace(dst, std::move(entry));
  }
  return Status::OK();
}

Result<std::map<graph::VertexId, RefGraphStore::AdjEntry>>
RefGraphStore::LoadAdjLocked(const AdjKey& key, const OpContext* ctx) const {
  std::map<graph::VertexId, AdjEntry> adj;
  auto it = adj_index_.find(key);
  if (it == adj_index_.end()) return adj;
  auto data = store_->Read(it->second, nullptr, ctx);
  BG3_RETURN_IF_ERROR(data.status());
  BG3_RETURN_IF_ERROR(DecodeAdjPage(Slice(data.value()), &adj));
  return adj;
}

Status RefGraphStore::StoreAdjLocked(
    const AdjKey& key, const std::map<graph::VertexId, AdjEntry>& adj,
    const OpContext* ctx) {
  auto old = adj_index_.find(key);
  const std::string page = EncodeAdjPage(adj);
  auto ptr = store_->Append(stream_, page, nullptr, ctx);
  BG3_RETURN_IF_ERROR(ptr.status());
  if (old != adj_index_.end()) store_->MarkInvalid(old->second);
  adj_index_[key] = ptr.value();
  return Status::OK();
}

Status RefGraphStore::AddVertex(graph::VertexId id, const Slice& properties,
                                const OpContext* ctx) {
  BG3_RETURN_IF_ERROR(ValidateOpContext(ctx));
  BurnCpu();
  std::unique_lock lock(mu_);
  auto ptr = store_->Append(stream_, properties, nullptr, ctx);
  BG3_RETURN_IF_ERROR(ptr.status());
  auto it = vertex_index_.find(id);
  if (it != vertex_index_.end()) store_->MarkInvalid(it->second);
  vertex_index_[id] = ptr.value();
  return Status::OK();
}

Result<std::string> RefGraphStore::GetVertex(graph::VertexId id,
                                             const OpContext* ctx) {
  BG3_RETURN_IF_ERROR(ValidateOpContext(ctx));
  BurnCpu();
  std::shared_lock lock(mu_);
  auto it = vertex_index_.find(id);
  if (it == vertex_index_.end()) return Status::NotFound("no such vertex");
  return store_->Read(it->second, nullptr, ctx);
}

Status RefGraphStore::DeleteVertex(graph::VertexId id, graph::EdgeType type,
                                   const OpContext* ctx) {
  BG3_RETURN_IF_ERROR(ValidateOpContext(ctx));
  BurnCpu();
  std::unique_lock lock(mu_);
  auto vit = vertex_index_.find(id);
  if (vit != vertex_index_.end()) {
    store_->MarkInvalid(vit->second);
    vertex_index_.erase(vit);
  }
  auto ait = adj_index_.find({id, type});
  if (ait != adj_index_.end()) {
    store_->MarkInvalid(ait->second);
    adj_index_.erase(ait);
  }
  return Status::OK();
}

Status RefGraphStore::AddEdge(graph::VertexId src, graph::EdgeType type,
                              graph::VertexId dst, const Slice& properties,
                              graph::TimestampUs created_us,
                              const OpContext* ctx) {
  BG3_RETURN_IF_ERROR(ValidateOpContext(ctx));
  BurnCpu();
  std::unique_lock lock(mu_);
  auto adj = LoadAdjLocked({src, type}, ctx);
  BG3_RETURN_IF_ERROR(adj.status());
  adj.value()[dst] = AdjEntry{created_us, properties.ToString()};
  return StoreAdjLocked({src, type}, adj.value(), ctx);
}

Status RefGraphStore::DeleteEdge(graph::VertexId src, graph::EdgeType type,
                                 graph::VertexId dst, const OpContext* ctx) {
  BG3_RETURN_IF_ERROR(ValidateOpContext(ctx));
  BurnCpu();
  std::unique_lock lock(mu_);
  auto adj = LoadAdjLocked({src, type}, ctx);
  BG3_RETURN_IF_ERROR(adj.status());
  adj.value().erase(dst);
  return StoreAdjLocked({src, type}, adj.value(), ctx);
}

Result<std::string> RefGraphStore::GetEdge(graph::VertexId src,
                                           graph::EdgeType type,
                                           graph::VertexId dst,
                                           const OpContext* ctx) {
  BG3_RETURN_IF_ERROR(ValidateOpContext(ctx));
  BurnCpu();
  std::shared_lock lock(mu_);
  auto adj = LoadAdjLocked({src, type}, ctx);
  BG3_RETURN_IF_ERROR(adj.status());
  auto it = adj.value().find(dst);
  if (it == adj.value().end()) return Status::NotFound("no such edge");
  return it->second.properties;
}

Status RefGraphStore::GetNeighbors(graph::VertexId src, graph::EdgeType type,
                                   size_t limit,
                                   std::vector<graph::Neighbor>* out,
                                   const OpContext* ctx) {
  BG3_RETURN_IF_ERROR(ValidateOpContext(ctx));
  BurnCpu();
  std::shared_lock lock(mu_);
  auto adj = LoadAdjLocked({src, type}, ctx);
  BG3_RETURN_IF_ERROR(adj.status());
  for (auto& [dst, entry] : adj.value()) {
    if (out->size() >= limit) break;
    out->push_back(
        graph::Neighbor{dst, entry.created_us, std::move(entry.properties)});
  }
  return Status::OK();
}

}  // namespace bg3::refstore
