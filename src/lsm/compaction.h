#ifndef BG3_LSM_COMPACTION_H_
#define BG3_LSM_COMPACTION_H_

#include <cstdint>

#include "cloud/cloud_store.h"
#include "common/metrics.h"
#include "lsm/version.h"

namespace bg3::lsm {

struct CompactionOptions {
  cloud::StreamId stream = 0;
  int l0_compaction_trigger = 4;
  uint64_t level_base_bytes = 8u << 20;  ///< L1 target; ×multiplier per level.
  double level_multiplier = 10.0;
  size_t sstable_target_bytes = 2u << 20;
  size_t block_bytes = 4096;
  size_t bloom_bits_per_key = 10;
};

/// Counters of background compaction work — the LSM write amplification
/// BG3's storage-cost comparison (§4.2) charges against ByteGraph.
struct CompactionStats {
  Counter compactions;
  Counter bytes_read;
  Counter bytes_written;
};

/// Leveled compaction (full-level merge policy): L0 merges entirely into
/// L1 when the run count exceeds the trigger; Ln merges into Ln+1 when it
/// exceeds its size target. Externally synchronized by LsmDb.
class Compactor {
 public:
  Compactor(cloud::CloudStore* store, const CompactionOptions& options)
      : store_(store), opts_(options) {}

  /// Runs compactions until every level satisfies its invariant.
  Status MaybeCompact(VersionSet* versions);

  CompactionStats& stats() { return stats_; }

 private:
  Status CompactLevel(VersionSet* versions, int level);
  uint64_t LevelTarget(int level) const;

  cloud::CloudStore* const store_;
  const CompactionOptions opts_;
  CompactionStats stats_;
};

}  // namespace bg3::lsm

#endif  // BG3_LSM_COMPACTION_H_
