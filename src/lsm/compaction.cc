#include "lsm/compaction.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace bg3::lsm {

uint64_t Compactor::LevelTarget(int level) const {
  double target = static_cast<double>(opts_.level_base_bytes);
  for (int i = 1; i < level; ++i) target *= opts_.level_multiplier;
  return static_cast<uint64_t>(target);
}

Status Compactor::MaybeCompact(VersionSet* versions) {
  for (;;) {
    int level = -1;
    if (versions->L0Count() >
        static_cast<size_t>(opts_.l0_compaction_trigger)) {
      level = 0;
    } else {
      for (int i = 1; i + 1 < versions->max_levels(); ++i) {
        if (versions->LevelBytes(i) > LevelTarget(i)) {
          level = i;
          break;
        }
      }
    }
    if (level < 0) return Status::OK();
    BG3_RETURN_IF_ERROR(CompactLevel(versions, level));
  }
}

Status Compactor::CompactLevel(VersionSet* versions, int level) {
  stats_.compactions.Inc();
  const int next = level + 1;
  BG3_CHECK_LT(next, versions->max_levels());

  // Inputs: all of L0 (its runs overlap each other), or a single table of a
  // deeper level (partial compaction — the standard leveled strategy, so
  // non-overlapping data is not rewritten).
  std::vector<std::shared_ptr<SsTable>> inputs;
  if (level == 0) {
    inputs = versions->level(0);
  } else if (!versions->level(level).empty()) {
    inputs.push_back(versions->level(level).front());
  }
  if (inputs.empty()) return Status::OK();

  // The key span of the inputs selects the overlapping victims in `next`.
  std::string span_lo = inputs.front()->smallest();
  std::string span_hi_inclusive = inputs.front()->largest();
  for (const auto& t : inputs) {
    span_lo = std::min(span_lo, t->smallest());
    span_hi_inclusive = std::max(span_hi_inclusive, t->largest());
  }
  std::vector<std::shared_ptr<SsTable>> overlaps;
  std::vector<std::shared_ptr<SsTable>> untouched;
  for (const auto& t : versions->level(next)) {
    const bool overlap = !(t->largest() < span_lo) &&
                         !(span_hi_inclusive < t->smallest());
    (overlap ? overlaps : untouched).push_back(t);
  }

  // Merge, newest source first so its records win.
  std::map<std::string, KvRecord> merged;
  auto absorb_older = [&](const std::vector<std::shared_ptr<SsTable>>& tables) {
    for (const auto& table : tables) {
      auto records = table->ReadAll();
      BG3_RETURN_IF_ERROR(records.status());
      stats_.bytes_read.Add(table->data_bytes());
      for (KvRecord& r : records.value()) merged.emplace(r.key, std::move(r));
      // emplace keeps the first (newer) record per key.
    }
    return Status::OK();
  };
  BG3_RETURN_IF_ERROR(absorb_older(inputs));    // L0 is newest-first already
  BG3_RETURN_IF_ERROR(absorb_older(overlaps));  // lower level = older

  // Tombstones can be dropped only when merging into the bottom level AND
  // no non-overlapping table below could still hold the key. With leveled
  // non-overlapping runs, the overlap set covers the span, so bottom-level
  // merges may drop them.
  const bool bottom = next + 1 == versions->max_levels();
  std::vector<KvRecord> out;
  out.reserve(merged.size());
  for (auto& [key, record] : merged) {
    if (bottom && record.tombstone) continue;
    out.push_back(std::move(record));
  }

  // Chunk the merged run into target-size tables.
  std::vector<std::shared_ptr<SsTable>> new_tables;
  SsTable::Options topts;
  topts.stream = opts_.stream;
  topts.block_bytes = opts_.block_bytes;
  topts.bloom_bits_per_key = opts_.bloom_bits_per_key;
  size_t begin = 0;
  size_t bytes = 0;
  for (size_t i = 0; i < out.size(); ++i) {
    bytes += out[i].key.size() + out[i].value.size() + 8;
    const bool last = i + 1 == out.size();
    if (bytes >= opts_.sstable_target_bytes || last) {
      std::vector<KvRecord> chunk(out.begin() + begin, out.begin() + i + 1);
      auto table = SsTable::Build(store_, topts, chunk);
      BG3_RETURN_IF_ERROR(table.status());
      stats_.bytes_written.Add(table.value()->data_bytes());
      new_tables.push_back(table.take());
      begin = i + 1;
      bytes = 0;
    }
  }

  // Install: next level = untouched + outputs (sorted, non-overlapping);
  // the compacted inputs leave their level.
  for (const auto& t : inputs) t->MarkObsolete();
  for (const auto& t : overlaps) t->MarkObsolete();
  std::vector<std::shared_ptr<SsTable>> next_level = std::move(untouched);
  next_level.insert(next_level.end(), new_tables.begin(), new_tables.end());
  std::sort(next_level.begin(), next_level.end(),
            [](const std::shared_ptr<SsTable>& a,
               const std::shared_ptr<SsTable>& b) {
              return a->smallest() < b->smallest();
            });
  versions->InstallLevel(next, std::move(next_level));

  if (level == 0) {
    versions->InstallLevel(0, {});
  } else {
    std::vector<std::shared_ptr<SsTable>> remaining;
    for (const auto& t : versions->level(level)) {
      if (t != inputs.front()) remaining.push_back(t);
    }
    versions->InstallLevel(level, std::move(remaining));
  }
  return Status::OK();
}

}  // namespace bg3::lsm
