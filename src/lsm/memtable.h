#ifndef BG3_LSM_MEMTABLE_H_
#define BG3_LSM_MEMTABLE_H_

#include <map>
#include <string>
#include <vector>

#include "common/slice.h"

namespace bg3::lsm {

/// A keyed record inside the LSM: either a live value or a tombstone.
struct KvRecord {
  std::string key;
  std::string value;
  bool tombstone = false;
};

/// Sorted in-memory write buffer of the LSM engine (§2.2's KV storage).
/// Externally synchronized by LsmDb.
class MemTable {
 public:
  MemTable() = default;
  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  void Put(const Slice& key, const Slice& value);
  void Delete(const Slice& key);

  /// True if the memtable decides `key`: sets `*tombstone` or `*value`.
  bool Get(const Slice& key, std::string* value, bool* tombstone) const;

  void Clear() {
    table_.clear();
    bytes_ = 0;
  }

  size_t ApproxBytes() const { return bytes_; }
  size_t Count() const { return table_.size(); }
  bool Empty() const { return table_.empty(); }

  /// All records in key order (flush input).
  std::vector<KvRecord> Dump() const;

  /// Records in [start, end) appended to `out` (merge-scan input).
  void CollectRange(const Slice& start, const Slice& end,
                    std::vector<KvRecord>* out) const;

 private:
  struct Value {
    std::string data;
    bool tombstone;
  };
  std::map<std::string, Value> table_;
  size_t bytes_ = 0;
};

}  // namespace bg3::lsm

#endif  // BG3_LSM_MEMTABLE_H_
