#include "lsm/lsm_db.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"

namespace bg3::lsm {

LsmDb::LsmDb(cloud::CloudStore* store, const LsmOptions& options)
    : store_(store),
      opts_(options),
      versions_(options.max_levels),
      compactor_(store, [&] {
        CompactionOptions c = options.compaction;
        c.stream = options.stream;
        return c;
      }()) {}

Status LsmDb::Put(const Slice& key, const Slice& value) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.puts.Inc();
  mem_.Put(key, value);
  return MaybeFlushLocked();
}

Status LsmDb::Delete(const Slice& key) {
  std::lock_guard<std::mutex> lock(mu_);
  mem_.Delete(key);
  return MaybeFlushLocked();
}

Status LsmDb::MaybeFlushLocked() {
  if (mem_.ApproxBytes() < opts_.memtable_bytes) return Status::OK();
  const std::vector<KvRecord> records = mem_.Dump();
  if (records.empty()) return Status::OK();
  SsTable::Options topts;
  topts.stream = opts_.stream;
  topts.block_bytes = opts_.compaction.block_bytes;
  topts.bloom_bits_per_key = opts_.compaction.bloom_bits_per_key;
  auto table = SsTable::Build(store_, topts, records);
  BG3_RETURN_IF_ERROR(table.status());
  versions_.AddToL0(table.take());
  mem_.Clear();
  stats_.memtable_flushes.Inc();
  return compactor_.MaybeCompact(&versions_);
}

Result<std::string> LsmDb::Get(const Slice& key) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.gets.Inc();
  std::string value;
  bool tombstone = false;
  if (mem_.Get(key, &value, &tombstone)) {
    if (tombstone) return Status::NotFound("deleted");
    return value;
  }
  // Probe L0 newest-first, then each lower level: the multi-layer scan of
  // §2.4 ("reading a data piece necessitates massive I/O to scan through
  // multiple layers").
  for (int level = 0; level < versions_.max_levels(); ++level) {
    for (const auto& table : versions_.level(level)) {
      stats_.tables_probed.Inc();
      auto found = table->Get(key, &value, &tombstone);
      BG3_RETURN_IF_ERROR(found.status());
      if (found.value()) {
        if (tombstone) return Status::NotFound("deleted");
        return value;
      }
    }
  }
  return Status::NotFound("no such key");
}

Status LsmDb::Scan(const Slice& start, const Slice& end, size_t limit,
                   std::vector<KvRecord>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  // Gather candidates newest-source-first, keep the newest record per key.
  std::map<std::string, KvRecord> merged;
  auto absorb = [&](const std::vector<KvRecord>& records) {
    for (const KvRecord& r : records) merged.emplace(r.key, r);
  };
  std::vector<KvRecord> mem_records;
  mem_.CollectRange(start, end, &mem_records);
  absorb(mem_records);
  for (int level = 0; level < versions_.max_levels(); ++level) {
    for (const auto& table : versions_.level(level)) {
      std::vector<KvRecord> records;
      BG3_RETURN_IF_ERROR(table->CollectRange(start, end, &records));
      absorb(records);
    }
  }
  for (auto& [key, record] : merged) {
    if (out->size() - 0 >= limit) break;
    if (record.tombstone) continue;
    out->push_back(std::move(record));
  }
  return Status::OK();
}

Status LsmDb::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::vector<KvRecord> records = mem_.Dump();
  if (!records.empty()) {
    SsTable::Options topts;
    topts.stream = opts_.stream;
    topts.block_bytes = opts_.compaction.block_bytes;
    topts.bloom_bits_per_key = opts_.compaction.bloom_bits_per_key;
    auto table = SsTable::Build(store_, topts, records);
    BG3_RETURN_IF_ERROR(table.status());
    versions_.AddToL0(table.take());
    mem_.Clear();
    stats_.memtable_flushes.Inc();
  }
  return compactor_.MaybeCompact(&versions_);
}

uint64_t LsmDb::TotalDataBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return versions_.TotalBytes() + mem_.ApproxBytes();
}

ShardedLsm::ShardedLsm(cloud::CloudStore* store, const LsmOptions& options,
                       size_t shards) {
  BG3_CHECK_GT(shards, 0u);
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    LsmOptions o = options;
    o.stream = store->CreateStream("lsm-shard-" + std::to_string(i));
    shards_.push_back(std::make_unique<LsmDb>(store, o));
  }
}

LsmDb* ShardedLsm::Route(const Slice& key) {
  return shards_[HashSlice(key) % shards_.size()].get();
}

Status ShardedLsm::Put(const Slice& key, const Slice& value) {
  return Route(key)->Put(key, value);
}

Status ShardedLsm::Delete(const Slice& key) { return Route(key)->Delete(key); }

Result<std::string> ShardedLsm::Get(const Slice& key) {
  return Route(key)->Get(key);
}

Status ShardedLsm::Flush() {
  for (auto& s : shards_) BG3_RETURN_IF_ERROR(s->Flush());
  return Status::OK();
}

uint64_t ShardedLsm::TotalDataBytes() const {
  uint64_t sum = 0;
  for (const auto& s : shards_) sum += s->TotalDataBytes();
  return sum;
}

uint64_t ShardedLsm::TotalCompactionBytesWritten() const {
  uint64_t sum = 0;
  for (const auto& s : shards_) {
    sum += const_cast<LsmDb*>(s.get())->compaction_stats().bytes_written.Get();
  }
  return sum;
}

}  // namespace bg3::lsm
