#include "lsm/version.h"

namespace bg3::lsm {

VersionSet::VersionSet(int max_levels) : levels_(max_levels) {}

void VersionSet::AddToL0(std::shared_ptr<SsTable> table) {
  levels_[0].insert(levels_[0].begin(), std::move(table));
}

uint64_t VersionSet::LevelBytes(int n) const {
  uint64_t sum = 0;
  for (const auto& t : levels_[n]) sum += t->data_bytes();
  return sum;
}

uint64_t VersionSet::TotalBytes() const {
  uint64_t sum = 0;
  for (int i = 0; i < max_levels(); ++i) sum += LevelBytes(i);
  return sum;
}

size_t VersionSet::TableCount() const {
  size_t n = 0;
  for (const auto& level : levels_) n += level.size();
  return n;
}

void VersionSet::ReplaceLevel(int level,
                              std::vector<std::shared_ptr<SsTable>> tables) {
  for (const auto& t : levels_[level]) t->MarkObsolete();
  levels_[level] = std::move(tables);
}

void VersionSet::InstallLevel(int level,
                              std::vector<std::shared_ptr<SsTable>> tables) {
  levels_[level] = std::move(tables);
}

}  // namespace bg3::lsm
