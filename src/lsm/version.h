#ifndef BG3_LSM_VERSION_H_
#define BG3_LSM_VERSION_H_

#include <memory>
#include <vector>

#include "lsm/sstable.h"

namespace bg3::lsm {

/// The level structure of one LSM shard. L0 holds overlapping runs (newest
/// first); L1+ each hold one sorted non-overlapping run (represented as a
/// list of tables chunked by size). Externally synchronized by LsmDb.
class VersionSet {
 public:
  explicit VersionSet(int max_levels);

  /// Prepends a fresh memtable flush to L0.
  void AddToL0(std::shared_ptr<SsTable> table);

  int max_levels() const { return static_cast<int>(levels_.size()); }
  const std::vector<std::shared_ptr<SsTable>>& level(int n) const {
    return levels_[n];
  }
  std::vector<std::shared_ptr<SsTable>>* mutable_level(int n) {
    return &levels_[n];
  }

  size_t L0Count() const { return levels_[0].size(); }
  uint64_t LevelBytes(int n) const;
  uint64_t TotalBytes() const;
  size_t TableCount() const;

  /// Replaces the contents of `level` with `tables` (post-compaction),
  /// marking the replaced tables' blocks obsolete.
  void ReplaceLevel(int level, std::vector<std::shared_ptr<SsTable>> tables);

  /// Installs `tables` as the new contents of `level` without touching the
  /// replaced tables' storage (the caller already handled obsolescence —
  /// partial compactions keep most tables alive).
  void InstallLevel(int level, std::vector<std::shared_ptr<SsTable>> tables);

 private:
  std::vector<std::vector<std::shared_ptr<SsTable>>> levels_;
};

}  // namespace bg3::lsm

#endif  // BG3_LSM_VERSION_H_
