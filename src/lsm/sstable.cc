#include "lsm/sstable.h"

#include <algorithm>

#include "common/coding.h"
#include "common/hash.h"
#include "common/logging.h"

namespace bg3::lsm {

BloomFilter::BloomFilter(const std::vector<std::string>& keys,
                         size_t bits_per_key) {
  size_t bits = std::max<size_t>(64, keys.size() * bits_per_key);
  bits_.assign((bits + 7) / 8, 0);
  bits = bits_.size() * 8;
  probes_ = std::max(1, static_cast<int>(bits_per_key * 69 / 100));  // ln2
  for (const std::string& key : keys) {
    uint64_t h1 = Fnv1a64(key.data(), key.size(), 0);
    const uint64_t h2 = Fnv1a64(key.data(), key.size(), 0x9e37);
    for (int i = 0; i < probes_; ++i) {
      const size_t bit = h1 % bits;
      bits_[bit / 8] |= static_cast<uint8_t>(1u << (bit % 8));
      h1 += h2;
    }
  }
}

bool BloomFilter::MayContain(const Slice& key) const {
  if (bits_.empty()) return true;
  const size_t bits = bits_.size() * 8;
  uint64_t h1 = Fnv1a64(key.data(), key.size(), 0);
  const uint64_t h2 = Fnv1a64(key.data(), key.size(), 0x9e37);
  for (int i = 0; i < probes_; ++i) {
    const size_t bit = h1 % bits;
    if ((bits_[bit / 8] & (1u << (bit % 8))) == 0) return false;
    h1 += h2;
  }
  return true;
}

std::string SsTable::EncodeBlock(const std::vector<KvRecord>& records,
                                 size_t begin, size_t end) {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(end - begin));
  for (size_t i = begin; i < end; ++i) {
    PutLengthPrefixedSlice(&out, records[i].key);
    out.push_back(records[i].tombstone ? 1 : 0);
    PutLengthPrefixedSlice(&out, records[i].value);
  }
  return out;
}

Status SsTable::DecodeBlock(Slice input, std::vector<KvRecord>* out) {
  uint32_t count;
  if (!GetVarint32(&input, &count)) return Status::Corruption("block count");
  out->reserve(out->size() + count);
  for (uint32_t i = 0; i < count; ++i) {
    Slice key;
    if (!GetLengthPrefixedSlice(&input, &key) || input.empty()) {
      return Status::Corruption("block key");
    }
    const bool tombstone = input[0] != 0;
    input.remove_prefix(1);
    Slice value;
    if (!GetLengthPrefixedSlice(&input, &value)) {
      return Status::Corruption("block value");
    }
    out->push_back(KvRecord{key.ToString(), value.ToString(), tombstone});
  }
  return Status::OK();
}

Result<std::shared_ptr<SsTable>> SsTable::Build(
    cloud::CloudStore* store, const Options& options,
    const std::vector<KvRecord>& records) {
  BG3_CHECK(!records.empty());
  auto table = std::shared_ptr<SsTable>(new SsTable(store));
  table->smallest_ = records.front().key;
  table->largest_ = records.back().key;
  table->entry_count_ = records.size();

  std::vector<std::string> keys;
  keys.reserve(records.size());
  for (const KvRecord& r : records) keys.push_back(r.key);
  table->bloom_ = BloomFilter(keys, options.bloom_bits_per_key);

  size_t begin = 0;
  size_t block_size = 0;
  for (size_t i = 0; i < records.size(); ++i) {
    block_size += records[i].key.size() + records[i].value.size() + 8;
    const bool last = i + 1 == records.size();
    if (block_size >= options.block_bytes || last) {
      const std::string block = EncodeBlock(records, begin, i + 1);
      auto ptr = store->Append(options.stream, block);
      BG3_RETURN_IF_ERROR(ptr.status());
      table->block_first_keys_.push_back(records[begin].key);
      table->block_ptrs_.push_back(ptr.value());
      table->data_bytes_ += block.size();
      begin = i + 1;
      block_size = 0;
    }
  }
  return table;
}

Result<bool> SsTable::Get(const Slice& key, std::string* value,
                          bool* tombstone) const {
  if (key.compare(Slice(smallest_)) < 0 || key.compare(Slice(largest_)) > 0) {
    return false;
  }
  if (!bloom_.MayContain(key)) return false;
  // Last block whose first key <= key.
  auto it = std::upper_bound(block_first_keys_.begin(),
                             block_first_keys_.end(), key.ToString());
  if (it == block_first_keys_.begin()) return false;
  const size_t block_idx = (it - block_first_keys_.begin()) - 1;
  auto data = store_->Read(block_ptrs_[block_idx]);
  BG3_RETURN_IF_ERROR(data.status());
  std::vector<KvRecord> records;
  BG3_RETURN_IF_ERROR(DecodeBlock(Slice(data.value()), &records));
  auto rit = std::lower_bound(records.begin(), records.end(), key,
                              [](const KvRecord& r, const Slice& k) {
                                return Slice(r.key).compare(k) < 0;
                              });
  if (rit == records.end() || Slice(rit->key) != key) return false;
  *tombstone = rit->tombstone;
  if (!rit->tombstone) *value = rit->value;
  return true;
}

Result<std::vector<KvRecord>> SsTable::ReadAll() const {
  std::vector<KvRecord> out;
  out.reserve(entry_count_);
  for (const auto& ptr : block_ptrs_) {
    auto data = store_->Read(ptr);
    BG3_RETURN_IF_ERROR(data.status());
    BG3_RETURN_IF_ERROR(DecodeBlock(Slice(data.value()), &out));
  }
  return out;
}

Status SsTable::CollectRange(const Slice& start, const Slice& end,
                             std::vector<KvRecord>* out) const {
  if (!Overlaps(start, end)) return Status::OK();
  const bool bounded = !end.empty();
  for (size_t b = 0; b < block_ptrs_.size(); ++b) {
    // Skip blocks entirely before `start` or after `end`.
    const bool next_before_start =
        b + 1 < block_first_keys_.size() &&
        Slice(block_first_keys_[b + 1]).compare(start) <= 0;
    if (next_before_start) continue;
    if (bounded && Slice(block_first_keys_[b]).compare(end) >= 0) break;
    auto data = store_->Read(block_ptrs_[b]);
    BG3_RETURN_IF_ERROR(data.status());
    std::vector<KvRecord> records;
    BG3_RETURN_IF_ERROR(DecodeBlock(Slice(data.value()), &records));
    for (KvRecord& r : records) {
      if (Slice(r.key).compare(start) < 0) continue;
      if (bounded && Slice(r.key).compare(end) >= 0) break;
      out->push_back(std::move(r));
    }
  }
  return Status::OK();
}

bool SsTable::Overlaps(const Slice& start, const Slice& end) const {
  if (!end.empty() && Slice(smallest_).compare(end) >= 0) return false;
  if (Slice(largest_).compare(start) < 0) return false;
  return true;
}

void SsTable::MarkObsolete() {
  for (const auto& ptr : block_ptrs_) store_->MarkInvalid(ptr);
}

}  // namespace bg3::lsm
