#include "lsm/memtable.h"

namespace bg3::lsm {

void MemTable::Put(const Slice& key, const Slice& value) {
  auto [it, inserted] =
      table_.insert_or_assign(key.ToString(), Value{value.ToString(), false});
  if (inserted) bytes_ += key.size() + 32;
  bytes_ += value.size();
}

void MemTable::Delete(const Slice& key) {
  auto [it, inserted] =
      table_.insert_or_assign(key.ToString(), Value{std::string(), true});
  if (inserted) bytes_ += key.size() + 32;
}

bool MemTable::Get(const Slice& key, std::string* value,
                   bool* tombstone) const {
  auto it = table_.find(key.ToString());
  if (it == table_.end()) return false;
  *tombstone = it->second.tombstone;
  if (!it->second.tombstone) *value = it->second.data;
  return true;
}

std::vector<KvRecord> MemTable::Dump() const {
  std::vector<KvRecord> out;
  out.reserve(table_.size());
  for (const auto& [key, v] : table_) {
    out.push_back(KvRecord{key, v.data, v.tombstone});
  }
  return out;
}

void MemTable::CollectRange(const Slice& start, const Slice& end,
                            std::vector<KvRecord>* out) const {
  auto it = table_.lower_bound(start.ToString());
  const bool bounded = !end.empty();
  for (; it != table_.end(); ++it) {
    if (bounded && Slice(it->first).compare(end) >= 0) break;
    out->push_back(KvRecord{it->first, it->second.data, it->second.tombstone});
  }
}

}  // namespace bg3::lsm
