#ifndef BG3_LSM_LSM_DB_H_
#define BG3_LSM_LSM_DB_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cloud/cloud_store.h"
#include "common/metrics.h"
#include "common/result.h"
#include "lsm/compaction.h"
#include "lsm/memtable.h"
#include "lsm/version.h"

namespace bg3::lsm {

struct LsmOptions {
  cloud::StreamId stream = 0;
  size_t memtable_bytes = 1u << 20;
  int max_levels = 6;
  CompactionOptions compaction;
};

struct LsmStats {
  Counter puts;
  Counter gets;
  /// SSTables probed per Get beyond the first — the result-combination
  /// overhead of the multi-layer design (§2.4).
  Counter tables_probed;
  Counter memtable_flushes;
};

/// One LSM-tree shard: memtable + leveled SSTables on the cloud store.
/// Thread safe via a shard-wide mutex; production deployments shard by key
/// (see ShardedLsm below), which is where LSM write scalability comes from.
class LsmDb {
 public:
  LsmDb(cloud::CloudStore* store, const LsmOptions& options);

  Status Put(const Slice& key, const Slice& value);
  Status Delete(const Slice& key);
  Result<std::string> Get(const Slice& key);

  /// Ordered scan of [start, end) up to `limit` records (tombstones
  /// filtered). end empty = unbounded.
  Status Scan(const Slice& start, const Slice& end, size_t limit,
              std::vector<KvRecord>* out);

  /// Forces the memtable out and compacts to invariant.
  Status Flush();

  uint64_t TotalDataBytes() const;
  LsmStats& stats() { return stats_; }
  CompactionStats& compaction_stats() { return compactor_.stats(); }

 private:
  Status MaybeFlushLocked();

  cloud::CloudStore* const store_;
  const LsmOptions opts_;

  mutable std::mutex mu_;
  MemTable mem_;
  VersionSet versions_;
  Compactor compactor_;
  LsmStats stats_;
};

/// Hash-sharded LSM front end, modelling the distributed KV layer of
/// ByteGraph (§2.1's "distributed LSM-based KV storage engine"): writes
/// scale across shards while each read still pays the per-shard multi-level
/// cost.
class ShardedLsm {
 public:
  ShardedLsm(cloud::CloudStore* store, const LsmOptions& options,
             size_t shards);

  Status Put(const Slice& key, const Slice& value);
  Status Delete(const Slice& key);
  Result<std::string> Get(const Slice& key);
  Status Flush();

  uint64_t TotalDataBytes() const;
  uint64_t TotalCompactionBytesWritten() const;
  size_t shard_count() const { return shards_.size(); }
  LsmDb* shard(size_t i) { return shards_[i].get(); }

 private:
  LsmDb* Route(const Slice& key);

  std::vector<std::unique_ptr<LsmDb>> shards_;
};

}  // namespace bg3::lsm

#endif  // BG3_LSM_LSM_DB_H_
