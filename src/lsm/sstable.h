#ifndef BG3_LSM_SSTABLE_H_
#define BG3_LSM_SSTABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "cloud/cloud_store.h"
#include "common/result.h"
#include "lsm/memtable.h"

namespace bg3::lsm {

/// In-memory bloom filter over an SSTable's keys (standard LSM read-path
/// optimization; its absence would overstate ByteGraph's read costs).
class BloomFilter {
 public:
  BloomFilter() = default;
  BloomFilter(const std::vector<std::string>& keys, size_t bits_per_key);

  bool MayContain(const Slice& key) const;
  size_t SizeBytes() const { return bits_.size(); }

 private:
  std::vector<uint8_t> bits_;
  int probes_ = 1;
};

/// An immutable sorted run. Entry data lives in the cloud store as ~4 KiB
/// block records; the block index (first key per block), key bounds and
/// bloom filter stay in memory — so a point read costs exactly one storage
/// I/O per probed table, and a Get that must consult k levels pays k reads:
/// the multi-layer read overhead of §2.4.
class SsTable {
 public:
  struct Options {
    cloud::StreamId stream = 0;
    size_t block_bytes = 4096;
    size_t bloom_bits_per_key = 10;
  };

  /// Builds a table from key-ordered records (dedup'd by the caller).
  static Result<std::shared_ptr<SsTable>> Build(
      cloud::CloudStore* store, const Options& options,
      const std::vector<KvRecord>& records);

  /// Point lookup. Returns true if this table decides the key.
  Result<bool> Get(const Slice& key, std::string* value,
                   bool* tombstone) const;

  /// All records (compaction / scan input); reads every block.
  Result<std::vector<KvRecord>> ReadAll() const;

  /// Records overlapping [start, end) appended to out.
  Status CollectRange(const Slice& start, const Slice& end,
                      std::vector<KvRecord>* out) const;

  const std::string& smallest() const { return smallest_; }
  const std::string& largest() const { return largest_; }
  uint64_t data_bytes() const { return data_bytes_; }
  size_t entry_count() const { return entry_count_; }
  bool Overlaps(const Slice& start, const Slice& end) const;

  /// Invalidates all block records (table superseded by compaction).
  void MarkObsolete();

 private:
  SsTable(cloud::CloudStore* store) : store_(store) {}

  static std::string EncodeBlock(const std::vector<KvRecord>& records,
                                 size_t begin, size_t end);
  static Status DecodeBlock(Slice input, std::vector<KvRecord>* out);

  cloud::CloudStore* store_;
  std::string smallest_;
  std::string largest_;
  std::vector<std::string> block_first_keys_;
  std::vector<cloud::PagePointer> block_ptrs_;
  BloomFilter bloom_;
  uint64_t data_bytes_ = 0;
  size_t entry_count_ = 0;
};

}  // namespace bg3::lsm

#endif  // BG3_LSM_SSTABLE_H_
