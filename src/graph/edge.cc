#include "graph/edge.h"

#include "common/coding.h"
#include "common/logging.h"

namespace bg3::graph {

namespace {

void AppendBigEndian64(std::string* dst, uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    dst->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void AppendBigEndian32(std::string* dst, uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    dst->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

uint64_t ReadBigEndian64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

uint32_t ReadBigEndian32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

}  // namespace

std::string EncodeDstKey(VertexId dst) {
  std::string key;
  key.reserve(8);
  AppendBigEndian64(&key, dst);
  return key;
}

bool DecodeDstKey(const Slice& key, VertexId* dst) {
  if (key.size() != 8) return false;
  *dst = ReadBigEndian64(key.data());
  return true;
}

std::string EncodeEdgeValue(TimestampUs created_us, const Slice& properties) {
  std::string out;
  PutFixed64(&out, created_us);
  out.append(properties.data(), properties.size());
  return out;
}

bool DecodeEdgeValue(const Slice& value, TimestampUs* created_us,
                     std::string* properties) {
  Slice in = value;
  if (!GetFixed64(&in, created_us)) return false;
  properties->assign(in.data(), in.size());
  return true;
}

uint64_t MakeOwnerId(VertexId src, EdgeType type) {
  BG3_CHECK_LT(type, 256u) << "edge types must fit in 8 bits";
  return (src << 8) | static_cast<uint64_t>(type & 0xff);
}

std::string EncodeFlatEdgeKey(VertexId src, EdgeType type, VertexId dst) {
  std::string key;
  key.reserve(20);
  AppendBigEndian64(&key, src);
  AppendBigEndian32(&key, type);
  AppendBigEndian64(&key, dst);
  return key;
}

std::string EncodeFlatEdgePrefix(VertexId src, EdgeType type) {
  std::string key;
  key.reserve(12);
  AppendBigEndian64(&key, src);
  AppendBigEndian32(&key, type);
  return key;
}

std::string EncodeFlatEdgePrefixEnd(VertexId src, EdgeType type) {
  // Increment (src, type) as a 96-bit big-endian number.
  if (type != ~0u) return EncodeFlatEdgePrefix(src, type + 1);
  if (src != ~0ull) return EncodeFlatEdgePrefix(src + 1, 0);
  return std::string();  // unbounded
}

bool DecodeFlatEdgeKey(const Slice& key, VertexId* src, EdgeType* type,
                       VertexId* dst) {
  if (key.size() != 20) return false;
  *src = ReadBigEndian64(key.data());
  *type = ReadBigEndian32(key.data() + 8);
  *dst = ReadBigEndian64(key.data() + 12);
  return true;
}

}  // namespace bg3::graph
