#ifndef BG3_GRAPH_TRAVERSAL_H_
#define BG3_GRAPH_TRAVERSAL_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/engine.h"

namespace bg3::graph {

struct TraversalOptions {
  int hops = 1;
  /// Neighbors expanded per vertex per hop (query fan-out budget; the
  /// Douyin recommendation workload samples subgraphs, not full closures).
  size_t fanout_per_vertex = 32;
  /// Upper bound on the visited frontier (guards super-vertices).
  size_t max_visited = 100'000;
};

/// Multi-hop breadth-first expansion from `start` along `type` edges.
/// Returns the visited destination set (excluding `start`), in discovery
/// order — the "multi-hop neighbor query" of the Douyin recommendation
/// workload (Table 1).
Result<std::vector<VertexId>> KHopNeighbors(GraphEngine* engine,
                                            VertexId start, EdgeType type,
                                            const TraversalOptions& options);

/// True if `target` is reachable from `start` within `options.hops` hops —
/// the edge-existence check the financial-risk-control workload issues
/// against RO nodes (Table 1).
Result<bool> IsReachable(GraphEngine* engine, VertexId start, VertexId target,
                         EdgeType type, const TraversalOptions& options);

}  // namespace bg3::graph

#endif  // BG3_GRAPH_TRAVERSAL_H_
