#ifndef BG3_GRAPH_PATTERN_H_
#define BG3_GRAPH_PATTERN_H_

#include <vector>

#include "common/result.h"
#include "graph/engine.h"

namespace bg3::graph {

/// A path pattern: a sequence of edge types to follow from a start vertex.
/// Subgraph pattern matching (Sun & Luo [32]) in its path form — the shape
/// the financial-risk-control workload exercises.
struct PathPattern {
  std::vector<EdgeType> edge_types;
  size_t fanout_per_step = 16;
  size_t max_matches = 1024;
};

/// All destination paths matching `pattern` starting at `start`. Each match
/// lists the vertices after `start`, one per pattern step.
Result<std::vector<std::vector<VertexId>>> MatchPath(
    GraphEngine* engine, VertexId start, const PathPattern& pattern);

struct CycleOptions {
  EdgeType type = 0;
  int max_length = 6;      ///< cycle length bound.
  size_t fanout = 16;
};

/// Loop detection for anti-money-laundering (§2.6): does a directed cycle
/// through `start` of length <= max_length exist?
Result<bool> DetectCycle(GraphEngine* engine, VertexId start,
                         const CycleOptions& options);

}  // namespace bg3::graph

#endif  // BG3_GRAPH_PATTERN_H_
