#ifndef BG3_GRAPH_ALGORITHMS_H_
#define BG3_GRAPH_ALGORITHMS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "graph/engine.h"

namespace bg3::graph {

/// Analysis primitives of the kind ByteDance runs for e-commerce risk
/// control and content recommendation (§1, §2.6): neighborhood similarity
/// scores and local random-walk ranking, all expressed against the
/// GraphEngine read API (so they run on BG3, ByteGraph or the reference
/// engine alike, and scale out to RO nodes in a deployment).

struct SimilarityOptions {
  EdgeType type = 0;
  /// Neighbors fetched per vertex (degree cap for super-vertices).
  size_t neighbor_limit = 1024;
};

/// |N(a) ∩ N(b)| — the classic link-prediction feature.
Result<size_t> CommonNeighbors(GraphEngine* engine, VertexId a, VertexId b,
                               const SimilarityOptions& options);

/// |N(a) ∩ N(b)| / |N(a) ∪ N(b)| in [0, 1]; 0 when both sets are empty.
Result<double> JaccardSimilarity(GraphEngine* engine, VertexId a, VertexId b,
                                 const SimilarityOptions& options);

struct PersonalizedPageRankOptions {
  EdgeType type = 0;
  double alpha = 0.15;          ///< teleport (restart) probability.
  double epsilon = 1e-4;        ///< residual push threshold.
  size_t neighbor_limit = 256;  ///< degree cap per push.
  size_t max_pushes = 100'000;  ///< hard work bound.
};

/// Approximate personalized PageRank from `source` via forward push
/// (Andersen-Chung-Lang): returns vertex -> probability mass for every
/// vertex whose mass exceeded the push threshold. Deterministic.
Result<std::unordered_map<VertexId, double>> PersonalizedPageRank(
    GraphEngine* engine, VertexId source,
    const PersonalizedPageRankOptions& options);

/// Top-k recommendation candidates for `source` by PPR score, excluding the
/// source itself and its direct neighbors (already-connected items).
Result<std::vector<std::pair<VertexId, double>>> RecommendByPageRank(
    GraphEngine* engine, VertexId source, size_t k,
    const PersonalizedPageRankOptions& options);

struct TriangleOptions {
  EdgeType type = 0;
  size_t neighbor_limit = 512;
};

/// Number of directed triangles through `v` (v -> a -> b -> anything with
/// v -> b), a standard local-density feature for fraud scoring.
Result<size_t> LocalTriangleCount(GraphEngine* engine, VertexId v,
                                  const TriangleOptions& options);

}  // namespace bg3::graph

#endif  // BG3_GRAPH_ALGORITHMS_H_
