#include "graph/subgraph.h"

#include <unordered_set>

namespace bg3::graph {

namespace {

struct PlanStep {
  PatternEdge edge;
  bool is_check = false;  ///< both endpoints bound: existence check.
};

/// Orders pattern edges so that every edge's `from` endpoint is bound when
/// it executes (vertex 0 starts bound). Both-bound edges become existence
/// checks and are scheduled as early as possible to prune the search.
Status BuildPlan(const SubgraphPattern& pattern, std::vector<PlanStep>* plan) {
  std::vector<bool> bound(pattern.vertex_count, false);
  bound[0] = true;
  std::vector<bool> used(pattern.edges.size(), false);
  plan->clear();
  plan->reserve(pattern.edges.size());
  while (plan->size() < pattern.edges.size()) {
    // Pass 1: schedule all ready existence checks (both endpoints bound).
    bool progressed = false;
    for (size_t i = 0; i < pattern.edges.size(); ++i) {
      const PatternEdge& e = pattern.edges[i];
      if (!used[i] && bound[e.from] && bound[e.to]) {
        plan->push_back(PlanStep{e, /*is_check=*/true});
        used[i] = true;
        progressed = true;
      }
    }
    // Pass 2: schedule one forward expansion.
    for (size_t i = 0; i < pattern.edges.size(); ++i) {
      const PatternEdge& e = pattern.edges[i];
      if (!used[i] && bound[e.from] && !bound[e.to]) {
        plan->push_back(PlanStep{e, /*is_check=*/false});
        used[i] = true;
        bound[e.to] = true;
        progressed = true;
        break;
      }
    }
    if (!progressed) {
      return Status::InvalidArgument(
          "pattern requires reverse expansion or is disconnected from the "
          "anchor (orient edges forward from vertex 0)");
    }
  }
  return Status::OK();
}

struct MatchContext {
  GraphEngine* engine;
  const SubgraphPattern* pattern;
  const std::vector<PlanStep>* plan;
  std::vector<VertexId> assignment;
  std::unordered_set<VertexId> used;  // injectivity
  std::vector<SubgraphMatch>* out;
};

Status Recurse(MatchContext* ctx, size_t step) {
  if (ctx->out->size() >= ctx->pattern->max_matches) return Status::OK();
  if (step == ctx->plan->size()) {
    ctx->out->push_back(ctx->assignment);
    return Status::OK();
  }
  const PlanStep& ps = (*ctx->plan)[step];
  const PatternEdge& e = ps.edge;
  const VertexId src = ctx->assignment[e.from];
  if (ps.is_check) {
    // Existence check (includes the cycle-closing edge back to the anchor).
    auto edge = ctx->engine->GetEdge(src, e.type, ctx->assignment[e.to]);
    if (edge.status().IsNotFound()) return Status::OK();
    BG3_RETURN_IF_ERROR(edge.status());
    return Recurse(ctx, step + 1);
  }
  // Forward expansion of e.to.
  std::vector<Neighbor> neighbors;
  BG3_RETURN_IF_ERROR(ctx->engine->GetNeighbors(
      src, e.type, ctx->pattern->fanout_per_expansion, &neighbors));
  for (const Neighbor& n : neighbors) {
    if (ctx->pattern->injective && ctx->used.count(n.dst) > 0) continue;
    ctx->assignment[e.to] = n.dst;
    ctx->used.insert(n.dst);
    BG3_RETURN_IF_ERROR(Recurse(ctx, step + 1));
    ctx->used.erase(n.dst);
    if (ctx->out->size() >= ctx->pattern->max_matches) return Status::OK();
  }
  return Status::OK();
}

}  // namespace

Status ValidatePattern(const SubgraphPattern& pattern) {
  if (pattern.vertex_count == 0) {
    return Status::InvalidArgument("pattern needs at least the anchor");
  }
  for (const PatternEdge& e : pattern.edges) {
    if (e.from >= pattern.vertex_count || e.to >= pattern.vertex_count) {
      return Status::InvalidArgument("pattern edge endpoint out of range");
    }
    if (e.from == e.to) {
      return Status::InvalidArgument("self-loop pattern edges not supported");
    }
  }
  std::vector<PlanStep> plan;
  return BuildPlan(pattern, &plan);
}

Result<std::vector<SubgraphMatch>> MatchSubgraph(
    GraphEngine* engine, VertexId anchor, const SubgraphPattern& pattern) {
  BG3_RETURN_IF_ERROR(ValidatePattern(pattern));
  std::vector<PlanStep> plan;
  BG3_RETURN_IF_ERROR(BuildPlan(pattern, &plan));

  std::vector<SubgraphMatch> matches;
  MatchContext ctx;
  ctx.engine = engine;
  ctx.pattern = &pattern;
  ctx.plan = &plan;
  ctx.assignment.assign(pattern.vertex_count, 0);
  ctx.assignment[0] = anchor;
  ctx.used.insert(anchor);
  ctx.out = &matches;
  BG3_RETURN_IF_ERROR(Recurse(&ctx, 0));
  return matches;
}

SubgraphPattern CyclePattern(uint32_t length, EdgeType type) {
  SubgraphPattern p;
  p.vertex_count = length;
  for (uint32_t i = 0; i < length; ++i) {
    p.edges.push_back(PatternEdge{i, (i + 1) % length, type});
  }
  return p;
}

SubgraphPattern DiamondPattern(EdgeType type) {
  SubgraphPattern p;
  p.vertex_count = 4;
  p.edges = {PatternEdge{0, 1, type}, PatternEdge{0, 2, type},
             PatternEdge{1, 3, type}, PatternEdge{2, 3, type}};
  return p;
}

}  // namespace bg3::graph
