#ifndef BG3_GRAPH_SUBGRAPH_H_
#define BG3_GRAPH_SUBGRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/engine.h"

namespace bg3::graph {

/// General subgraph pattern matching in the style the financial-risk-control
/// workload uses (Table 1 cites Sun & Luo's in-memory subgraph matching
/// study [32]): a small pattern graph is matched against the data graph by
/// backtracking over an edge-ordered search plan, expanding candidates
/// through GetNeighbors.
///
/// Pattern vertices are small integers 0..n-1; vertex 0 is the anchor bound
/// to the start vertex of the query.
struct PatternEdge {
  uint32_t from = 0;  ///< pattern vertex index.
  uint32_t to = 0;    ///< pattern vertex index.
  EdgeType type = 0;
};

struct SubgraphPattern {
  uint32_t vertex_count = 0;
  std::vector<PatternEdge> edges;
  /// Require all matched data vertices to be distinct (isomorphism rather
  /// than homomorphism). The anti-money-laundering loop of §2.6 needs this.
  bool injective = true;
  size_t max_matches = 1024;
  size_t fanout_per_expansion = 64;
};

/// One match: assignment[i] is the data vertex bound to pattern vertex i.
using SubgraphMatch = std::vector<VertexId>;

/// Validates the pattern (edge endpoints in range, connected when rooted at
/// vertex 0 through its directed edges in some order).
Status ValidatePattern(const SubgraphPattern& pattern);

/// All matches of `pattern` with pattern vertex 0 bound to `anchor`.
Result<std::vector<SubgraphMatch>> MatchSubgraph(
    GraphEngine* engine, VertexId anchor, const SubgraphPattern& pattern);

/// Convenience: the k-cycle pattern through the anchor (0->1->...->k-1->0),
/// the §2.6 loop-detection shape expressed as a subgraph pattern.
SubgraphPattern CyclePattern(uint32_t length, EdgeType type);

/// Convenience: the diamond (split-rejoin) pattern 0->1, 0->2, 1->3, 2->3 —
/// the classic layering shape in anti-money-laundering screens: funds split
/// across two intermediaries and reconverge.
SubgraphPattern DiamondPattern(EdgeType type);

}  // namespace bg3::graph

#endif  // BG3_GRAPH_SUBGRAPH_H_
