#include "graph/traversal.h"

#include <unordered_set>

namespace bg3::graph {

Result<std::vector<VertexId>> KHopNeighbors(GraphEngine* engine,
                                            VertexId start, EdgeType type,
                                            const TraversalOptions& options) {
  std::vector<VertexId> visited_order;
  std::unordered_set<VertexId> visited{start};
  std::vector<VertexId> frontier{start};
  std::vector<Neighbor> neighbors;

  for (int hop = 0; hop < options.hops && !frontier.empty(); ++hop) {
    std::vector<VertexId> next;
    for (VertexId v : frontier) {
      neighbors.clear();
      BG3_RETURN_IF_ERROR(
          engine->GetNeighbors(v, type, options.fanout_per_vertex, &neighbors));
      for (const Neighbor& n : neighbors) {
        if (visited.size() >= options.max_visited) return visited_order;
        if (visited.insert(n.dst).second) {
          visited_order.push_back(n.dst);
          next.push_back(n.dst);
        }
      }
    }
    frontier = std::move(next);
  }
  return visited_order;
}

Result<bool> IsReachable(GraphEngine* engine, VertexId start, VertexId target,
                         EdgeType type, const TraversalOptions& options) {
  if (start == target) return true;
  std::unordered_set<VertexId> visited{start};
  std::vector<VertexId> frontier{start};
  std::vector<Neighbor> neighbors;

  for (int hop = 0; hop < options.hops && !frontier.empty(); ++hop) {
    std::vector<VertexId> next;
    for (VertexId v : frontier) {
      neighbors.clear();
      BG3_RETURN_IF_ERROR(
          engine->GetNeighbors(v, type, options.fanout_per_vertex, &neighbors));
      for (const Neighbor& n : neighbors) {
        if (n.dst == target) return true;
        if (visited.size() >= options.max_visited) return false;
        if (visited.insert(n.dst).second) next.push_back(n.dst);
      }
    }
    frontier = std::move(next);
  }
  return false;
}

}  // namespace bg3::graph
