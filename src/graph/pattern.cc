#include "graph/pattern.h"

namespace bg3::graph {

namespace {

Status MatchStep(GraphEngine* engine, VertexId current,
                 const PathPattern& pattern, size_t step,
                 std::vector<VertexId>* path,
                 std::vector<std::vector<VertexId>>* matches) {
  if (matches->size() >= pattern.max_matches) return Status::OK();
  if (step == pattern.edge_types.size()) {
    matches->push_back(*path);
    return Status::OK();
  }
  std::vector<Neighbor> neighbors;
  BG3_RETURN_IF_ERROR(engine->GetNeighbors(
      current, pattern.edge_types[step], pattern.fanout_per_step, &neighbors));
  for (const Neighbor& n : neighbors) {
    if (matches->size() >= pattern.max_matches) break;
    path->push_back(n.dst);
    BG3_RETURN_IF_ERROR(
        MatchStep(engine, n.dst, pattern, step + 1, path, matches));
    path->pop_back();
  }
  return Status::OK();
}

Status CycleStep(GraphEngine* engine, VertexId start, VertexId current,
                 const CycleOptions& options, int depth, bool* found) {
  if (*found || depth >= options.max_length) return Status::OK();
  std::vector<Neighbor> neighbors;
  BG3_RETURN_IF_ERROR(
      engine->GetNeighbors(current, options.type, options.fanout, &neighbors));
  for (const Neighbor& n : neighbors) {
    if (*found) break;
    if (n.dst == start && depth >= 1) {
      *found = true;
      return Status::OK();
    }
    BG3_RETURN_IF_ERROR(
        CycleStep(engine, start, n.dst, options, depth + 1, found));
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<std::vector<VertexId>>> MatchPath(
    GraphEngine* engine, VertexId start, const PathPattern& pattern) {
  std::vector<std::vector<VertexId>> matches;
  std::vector<VertexId> path;
  BG3_RETURN_IF_ERROR(MatchStep(engine, start, pattern, 0, &path, &matches));
  return matches;
}

Result<bool> DetectCycle(GraphEngine* engine, VertexId start,
                         const CycleOptions& options) {
  bool found = false;
  BG3_RETURN_IF_ERROR(CycleStep(engine, start, start, options, 0, &found));
  return found;
}

}  // namespace bg3::graph
