#include "graph/algorithms.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace bg3::graph {

namespace {

Result<std::vector<VertexId>> NeighborIds(GraphEngine* engine, VertexId v,
                                          EdgeType type, size_t limit) {
  std::vector<Neighbor> neighbors;
  BG3_RETURN_IF_ERROR(engine->GetNeighbors(v, type, limit, &neighbors));
  std::vector<VertexId> ids;
  ids.reserve(neighbors.size());
  for (const Neighbor& n : neighbors) ids.push_back(n.dst);
  return ids;
}

}  // namespace

Result<size_t> CommonNeighbors(GraphEngine* engine, VertexId a, VertexId b,
                               const SimilarityOptions& options) {
  auto na = NeighborIds(engine, a, options.type, options.neighbor_limit);
  BG3_RETURN_IF_ERROR(na.status());
  auto nb = NeighborIds(engine, b, options.type, options.neighbor_limit);
  BG3_RETURN_IF_ERROR(nb.status());
  // Both lists arrive dst-sorted from every engine: linear merge.
  size_t common = 0;
  auto ia = na.value().begin();
  auto ib = nb.value().begin();
  while (ia != na.value().end() && ib != nb.value().end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++common;
      ++ia;
      ++ib;
    }
  }
  return common;
}

Result<double> JaccardSimilarity(GraphEngine* engine, VertexId a, VertexId b,
                                 const SimilarityOptions& options) {
  auto na = NeighborIds(engine, a, options.type, options.neighbor_limit);
  BG3_RETURN_IF_ERROR(na.status());
  auto nb = NeighborIds(engine, b, options.type, options.neighbor_limit);
  BG3_RETURN_IF_ERROR(nb.status());
  auto common = CommonNeighbors(engine, a, b, options);
  BG3_RETURN_IF_ERROR(common.status());
  const size_t union_size =
      na.value().size() + nb.value().size() - common.value();
  if (union_size == 0) return 0.0;
  return static_cast<double>(common.value()) /
         static_cast<double>(union_size);
}

Result<std::unordered_map<VertexId, double>> PersonalizedPageRank(
    GraphEngine* engine, VertexId source,
    const PersonalizedPageRankOptions& options) {
  if (options.alpha <= 0.0 || options.alpha >= 1.0) {
    return Status::InvalidArgument("alpha must be in (0,1)");
  }
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be > 0");
  }
  // Forward push: maintain estimates p and residuals r; pushing a vertex
  // moves alpha*r to its estimate and spreads the rest over its neighbors.
  std::unordered_map<VertexId, double> p;
  std::unordered_map<VertexId, double> r;
  r[source] = 1.0;
  std::deque<VertexId> queue{source};
  std::unordered_set<VertexId> queued{source};

  size_t pushes = 0;
  while (!queue.empty() && pushes < options.max_pushes) {
    const VertexId v = queue.front();
    queue.pop_front();
    queued.erase(v);
    const double rv = r[v];
    if (rv < options.epsilon) continue;
    ++pushes;
    r[v] = 0.0;
    p[v] += options.alpha * rv;
    auto neighbors =
        NeighborIds(engine, v, options.type, options.neighbor_limit);
    BG3_RETURN_IF_ERROR(neighbors.status());
    if (neighbors.value().empty()) {
      // Dangling vertex: restart at the source.
      r[source] += (1.0 - options.alpha) * rv;
      if (r[source] >= options.epsilon && queued.insert(source).second) {
        queue.push_back(source);
      }
      continue;
    }
    const double share =
        (1.0 - options.alpha) * rv / static_cast<double>(neighbors.value().size());
    for (VertexId u : neighbors.value()) {
      r[u] += share;
      if (r[u] >= options.epsilon && queued.insert(u).second) {
        queue.push_back(u);
      }
    }
  }
  return p;
}

Result<std::vector<std::pair<VertexId, double>>> RecommendByPageRank(
    GraphEngine* engine, VertexId source, size_t k,
    const PersonalizedPageRankOptions& options) {
  auto scores = PersonalizedPageRank(engine, source, options);
  BG3_RETURN_IF_ERROR(scores.status());
  auto direct =
      NeighborIds(engine, source, options.type, options.neighbor_limit);
  BG3_RETURN_IF_ERROR(direct.status());
  std::unordered_set<VertexId> exclude(direct.value().begin(),
                                       direct.value().end());
  exclude.insert(source);

  std::vector<std::pair<VertexId, double>> ranked;
  for (const auto& [v, score] : scores.value()) {
    if (exclude.count(v) > 0) continue;
    ranked.emplace_back(v, score);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;  // deterministic tie-break
            });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

Result<size_t> LocalTriangleCount(GraphEngine* engine, VertexId v,
                                  const TriangleOptions& options) {
  auto direct = NeighborIds(engine, v, options.type, options.neighbor_limit);
  BG3_RETURN_IF_ERROR(direct.status());
  std::unordered_set<VertexId> direct_set(direct.value().begin(),
                                          direct.value().end());
  size_t triangles = 0;
  for (VertexId a : direct.value()) {
    auto second = NeighborIds(engine, a, options.type, options.neighbor_limit);
    BG3_RETURN_IF_ERROR(second.status());
    for (VertexId b : second.value()) {
      if (b != v && direct_set.count(b) > 0) ++triangles;
    }
  }
  return triangles;
}

}  // namespace bg3::graph
