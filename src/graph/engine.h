#ifndef BG3_GRAPH_ENGINE_H_
#define BG3_GRAPH_ENGINE_H_

#include <string>
#include <vector>

#include "common/op_context.h"
#include "common/result.h"
#include "graph/edge.h"

namespace bg3::graph {

/// Destination + payload of one adjacency entry returned by neighbor reads.
struct Neighbor {
  VertexId dst = 0;
  TimestampUs created_us = 0;
  std::string properties;
};

/// Minimal property-graph engine surface shared by BG3, the ByteGraph
/// baseline and the reference (Neptune stand-in) engine, so the overall
/// comparison (Fig. 8) drives all three through identical workloads.
///
/// Every op takes an optional OpContext carrying a request deadline.
/// Contract (identical across engines so the comparison stays fair):
/// nullptr = no deadline (the historical behavior, bit for bit); a
/// deadline already expired at the call boundary is the caller's bug and
/// returns InvalidArgument; a deadline that expires mid-op returns
/// DeadlineExceeded, preserving the first root cause in the message.
class GraphEngine {
 public:
  virtual ~GraphEngine() = default;

  virtual std::string name() const = 0;

  virtual Status AddVertex(VertexId id, const Slice& properties,
                           const OpContext* ctx = nullptr) = 0;
  virtual Result<std::string> GetVertex(VertexId id,
                                        const OpContext* ctx = nullptr) = 0;
  /// Removes the vertex record and all its out-edges of `type` (engines
  /// have no in-edge index, so incoming edges are the caller's problem, as
  /// in every adjacency-list store). No-op if absent.
  virtual Status DeleteVertex(VertexId id, EdgeType type,
                              const OpContext* ctx = nullptr) = 0;

  virtual Status AddEdge(VertexId src, EdgeType type, VertexId dst,
                         const Slice& properties, TimestampUs created_us,
                         const OpContext* ctx = nullptr) = 0;
  virtual Status DeleteEdge(VertexId src, EdgeType type, VertexId dst,
                            const OpContext* ctx = nullptr) = 0;
  virtual Result<std::string> GetEdge(VertexId src, EdgeType type,
                                      VertexId dst,
                                      const OpContext* ctx = nullptr) = 0;

  /// Up to `limit` neighbors of (src, type) in ascending destination order.
  virtual Status GetNeighbors(VertexId src, EdgeType type, size_t limit,
                              std::vector<Neighbor>* out,
                              const OpContext* ctx = nullptr) = 0;

  /// Out-degree of (src, type), bounded by `limit`.
  virtual Result<size_t> CountNeighbors(VertexId src, EdgeType type,
                                        size_t limit,
                                        const OpContext* ctx = nullptr) {
    std::vector<Neighbor> neighbors;
    BG3_RETURN_IF_ERROR(GetNeighbors(src, type, limit, &neighbors, ctx));
    return neighbors.size();
  }
};

}  // namespace bg3::graph

#endif  // BG3_GRAPH_ENGINE_H_
