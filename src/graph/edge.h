#ifndef BG3_GRAPH_EDGE_H_
#define BG3_GRAPH_EDGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace bg3::graph {

/// Property-graph identifiers (§2.2): vertices and edges carry types and
/// properties; adjacency lists are grouped by (source vertex, edge type).
using VertexId = uint64_t;
using EdgeType = uint32_t;
using TimestampUs = uint64_t;

/// One directed edge with its properties.
struct Edge {
  VertexId src = 0;
  EdgeType type = 0;
  VertexId dst = 0;
  TimestampUs created_us = 0;  ///< e.g. "the time when the like was clicked".
  std::string properties;
};

// --- key / value codecs ------------------------------------------------------
// Adjacency sort keys order by destination id (big-endian so memcmp order ==
// numeric order). Edge values carry the creation timestamp (TTL filtering)
// followed by the property bytes.

/// 8-byte big-endian destination id: the per-owner sort key.
std::string EncodeDstKey(VertexId dst);
/// Inverse of EncodeDstKey; returns false on length mismatch.
bool DecodeDstKey(const Slice& key, VertexId* dst);

std::string EncodeEdgeValue(TimestampUs created_us, const Slice& properties);
bool DecodeEdgeValue(const Slice& value, TimestampUs* created_us,
                     std::string* properties);

/// Adjacency-list owner handle: packs (src, type) into the forest's 64-bit
/// OwnerId. Edge types must fit in 8 bits (ByteDance-style workloads use a
/// handful of edge types per table).
uint64_t MakeOwnerId(VertexId src, EdgeType type);

/// Composite [src BE64][type BE32][dst BE64] key for engines that keep all
/// edges in one flat ordered namespace (RW/RO replication nodes, LSM
/// baseline).
std::string EncodeFlatEdgeKey(VertexId src, EdgeType type, VertexId dst);
/// Prefix covering every edge of (src, type).
std::string EncodeFlatEdgePrefix(VertexId src, EdgeType type);
/// Exclusive upper bound of the (src, type) prefix range.
std::string EncodeFlatEdgePrefixEnd(VertexId src, EdgeType type);
bool DecodeFlatEdgeKey(const Slice& key, VertexId* src, EdgeType* type,
                       VertexId* dst);

}  // namespace bg3::graph

#endif  // BG3_GRAPH_EDGE_H_
