#ifndef BG3_WORKLOAD_WORKLOADS_H_
#define BG3_WORKLOAD_WORKLOADS_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/random.h"
#include "graph/edge.h"

namespace bg3::workload {

/// One operation of a workload stream.
struct Op {
  enum class Type {
    kInsertEdge,   ///< AddEdge(src, type, dst).
    kOneHop,       ///< GetNeighbors(src).
    kMultiHop,     ///< k-hop neighbor expansion from src.
    kReachCheck,   ///< multi-hop existence check src -> dst.
  };
  Type type = Type::kOneHop;
  graph::VertexId src = 0;
  graph::VertexId dst = 0;
  int hops = 1;
};

/// Deterministic generator of one workload's op stream. One instance per
/// driver thread (not thread safe), seeded per thread.
class WorkloadGenerator {
 public:
  virtual ~WorkloadGenerator() = default;
  virtual std::string name() const = 0;
  virtual Op Next() = 0;
};

/// "Douyin Follow" (Table 1): users' follow records — 99% one-hop neighbor
/// queries (enumerate followees), 1% single-edge insertions, Zipf-skewed
/// user activity.
class FollowWorkload : public WorkloadGenerator {
 public:
  struct Options {
    uint64_t num_users = 100'000;
    double zipf_theta = 0.8;
    double write_fraction = 0.01;
  };
  FollowWorkload(const Options& options, uint64_t seed);

  std::string name() const override { return "douyin-follow"; }
  Op Next() override;

 private:
  const Options opts_;
  ZipfGenerator user_gen_;
  ZipfGenerator dst_gen_;
  Random rng_;
};

/// "Financial Risk Control" (Table 1): 50% single-edge insertions of fund
/// transfers, 50% multi-hop existence checks (5-10 hops) verifying edges
/// written by the RW node; data carries a TTL.
class RiskControlWorkload : public WorkloadGenerator {
 public:
  struct Options {
    uint64_t num_accounts = 100'000;
    double zipf_theta = 0.8;
    int min_hops = 5;
    int max_hops = 10;
  };
  RiskControlWorkload(const Options& options, uint64_t seed);

  std::string name() const override { return "financial-risk-control"; }
  Op Next() override;

 private:
  const Options opts_;
  ZipfGenerator account_gen_;
  Random rng_;
  bool next_is_write_ = true;  ///< strict 1:1 read/write alternation.
};

/// "Douyin Recommendation" (Table 1): read-only multi-hop neighbor queries
/// generating subgraphs — 70% 1-hop, 20% 2-hop, 10% 3-hop.
class RecommendWorkload : public WorkloadGenerator {
 public:
  struct Options {
    uint64_t num_users = 100'000;
    double zipf_theta = 0.8;
  };
  RecommendWorkload(const Options& options, uint64_t seed);

  std::string name() const override { return "douyin-recommendation"; }
  Op Next() override;

 private:
  const Options opts_;
  ZipfGenerator user_gen_;
  Random rng_;
};

}  // namespace bg3::workload

#endif  // BG3_WORKLOAD_WORKLOADS_H_
