#include "workload/workloads.h"

namespace bg3::workload {

FollowWorkload::FollowWorkload(const Options& options, uint64_t seed)
    : opts_(options),
      user_gen_(options.num_users, options.zipf_theta, seed),
      dst_gen_(options.num_users, options.zipf_theta, seed + 1),
      rng_(seed + 2) {}

Op FollowWorkload::Next() {
  Op op;
  op.src = user_gen_.Next();
  if (rng_.Bernoulli(opts_.write_fraction)) {
    op.type = Op::Type::kInsertEdge;
    op.dst = dst_gen_.Next();
    if (op.dst == op.src) op.dst = (op.dst + 1) % opts_.num_users;
  } else {
    op.type = Op::Type::kOneHop;
    op.hops = 1;
  }
  return op;
}

RiskControlWorkload::RiskControlWorkload(const Options& options, uint64_t seed)
    : opts_(options),
      account_gen_(options.num_accounts, options.zipf_theta, seed),
      rng_(seed + 1) {}

Op RiskControlWorkload::Next() {
  Op op;
  op.src = account_gen_.Next();
  if (next_is_write_) {
    op.type = Op::Type::kInsertEdge;
    op.dst = account_gen_.Next();
    if (op.dst == op.src) op.dst = (op.dst + 1) % opts_.num_accounts;
  } else {
    op.type = Op::Type::kReachCheck;
    op.dst = account_gen_.Next();
    op.hops = opts_.min_hops +
              static_cast<int>(rng_.Uniform(opts_.max_hops - opts_.min_hops + 1));
  }
  next_is_write_ = !next_is_write_;
  return op;
}

RecommendWorkload::RecommendWorkload(const Options& options, uint64_t seed)
    : opts_(options),
      user_gen_(options.num_users, options.zipf_theta, seed),
      rng_(seed + 1) {}

Op RecommendWorkload::Next() {
  Op op;
  op.src = user_gen_.Next();
  const double r = rng_.NextDouble();
  op.type = r < 0.70 ? Op::Type::kOneHop : Op::Type::kMultiHop;
  op.hops = r < 0.70 ? 1 : (r < 0.90 ? 2 : 3);
  return op;
}

}  // namespace bg3::workload
