#ifndef BG3_WORKLOAD_DRIVER_H_
#define BG3_WORKLOAD_DRIVER_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/histogram.h"
#include "graph/engine.h"
#include "graph/traversal.h"
#include "workload/workloads.h"

namespace bg3::workload {

/// Routes each operation to one of several engine instances by source
/// vertex hash — the multi-node ("horizontal") scaling setup of Fig. 8,
/// where a cluster partitions the graph across nodes.
class PartitionedEngine : public graph::GraphEngine {
 public:
  explicit PartitionedEngine(std::vector<graph::GraphEngine*> partitions);

  std::string name() const override;

  Status AddVertex(graph::VertexId id, const Slice& properties,
                   const OpContext* ctx = nullptr) override;
  Result<std::string> GetVertex(graph::VertexId id,
                                const OpContext* ctx = nullptr) override;
  Status DeleteVertex(graph::VertexId id, graph::EdgeType type,
                      const OpContext* ctx = nullptr) override;
  Status AddEdge(graph::VertexId src, graph::EdgeType type,
                 graph::VertexId dst, const Slice& properties,
                 graph::TimestampUs created_us,
                 const OpContext* ctx = nullptr) override;
  Status DeleteEdge(graph::VertexId src, graph::EdgeType type,
                    graph::VertexId dst,
                    const OpContext* ctx = nullptr) override;
  Result<std::string> GetEdge(graph::VertexId src, graph::EdgeType type,
                              graph::VertexId dst,
                              const OpContext* ctx = nullptr) override;
  Status GetNeighbors(graph::VertexId src, graph::EdgeType type, size_t limit,
                      std::vector<graph::Neighbor>* out,
                      const OpContext* ctx = nullptr) override;

 private:
  graph::GraphEngine* Route(graph::VertexId src);

  std::vector<graph::GraphEngine*> partitions_;
};

struct DriverOptions {
  int threads = 4;
  uint64_t ops_per_thread = 10'000;
  graph::EdgeType edge_type = 1;
  size_t read_limit = 32;       ///< neighbors fetched per 1-hop query.
  size_t multi_hop_fanout = 8;  ///< expansion budget per vertex per hop.
  size_t property_bytes = 16;
  bool record_latency = false;  ///< per-op latency histogram (adds overhead).
};

struct DriverResult {
  uint64_t ops = 0;
  uint64_t errors = 0;
  double seconds = 0.0;
  double qps = 0.0;
  Histogram latency_us;  ///< populated only with record_latency.

  DriverResult() = default;
  DriverResult(const DriverResult&) = delete;
  DriverResult& operator=(const DriverResult&) = delete;
  DriverResult(DriverResult&&) = delete;
};

/// Closed-loop multithreaded workload run: each thread owns a generator
/// built by `make_generator(thread_index)` and fires ops back-to-back —
/// the "kept adding clients until no further increase in throughput"
/// methodology of §4.2, approximated with a fixed client count.
void RunWorkload(
    graph::GraphEngine* engine,
    const std::function<std::unique_ptr<WorkloadGenerator>(int)>& make_generator,
    const DriverOptions& options, DriverResult* result);

}  // namespace bg3::workload

#endif  // BG3_WORKLOAD_DRIVER_H_
