#include "workload/graph_gen.h"

#include "common/clock.h"
#include "common/random.h"

namespace bg3::workload {

std::string MakeProperties(uint64_t seed, size_t bytes) {
  std::string out;
  out.reserve(bytes);
  Random rng(seed);
  while (out.size() < bytes) {
    out.push_back(static_cast<char>('a' + rng.Uniform(26)));
  }
  return out;
}

Result<uint64_t> LoadGraph(graph::GraphEngine* engine,
                           const GraphGenOptions& options) {
  ZipfGenerator src_gen(options.num_sources, options.zipf_theta,
                        options.seed);
  ZipfGenerator dst_gen(options.num_dests, options.zipf_theta,
                        options.seed + 1);
  Random rng(options.seed + 2);
  const std::string props = MakeProperties(options.seed, options.property_bytes);

  if (options.add_vertices) {
    for (uint64_t v = 0; v < options.num_sources; ++v) {
      BG3_RETURN_IF_ERROR(engine->AddVertex(v, props));
    }
  }
  uint64_t inserted = 0;
  for (uint64_t i = 0; i < options.num_edges; ++i) {
    const graph::VertexId src = src_gen.Next();
    // Offset destinations so src != dst in bipartite-style graphs; for
    // follow graphs (num_dests == num_sources) self-loops are just skipped.
    graph::VertexId dst = dst_gen.Next();
    if (dst == src) dst = (dst + 1) % options.num_dests;
    BG3_RETURN_IF_ERROR(engine->AddEdge(src, options.edge_type, dst, props,
                                        NowMicros()));
    ++inserted;
  }
  return inserted;
}

}  // namespace bg3::workload
