#include "workload/driver.h"

#include <atomic>
#include <thread>

#include "common/clock.h"
#include "common/hash.h"
#include "common/logging.h"
#include "workload/graph_gen.h"

namespace bg3::workload {

PartitionedEngine::PartitionedEngine(
    std::vector<graph::GraphEngine*> partitions)
    : partitions_(std::move(partitions)) {
  BG3_CHECK(!partitions_.empty());
}

std::string PartitionedEngine::name() const {
  return partitions_[0]->name() + "x" + std::to_string(partitions_.size());
}

graph::GraphEngine* PartitionedEngine::Route(graph::VertexId src) {
  return partitions_[Mix64(src) % partitions_.size()];
}

Status PartitionedEngine::AddVertex(graph::VertexId id,
                                    const Slice& properties,
                                    const OpContext* ctx) {
  return Route(id)->AddVertex(id, properties, ctx);
}

Result<std::string> PartitionedEngine::GetVertex(graph::VertexId id,
                                                 const OpContext* ctx) {
  return Route(id)->GetVertex(id, ctx);
}

Status PartitionedEngine::DeleteVertex(graph::VertexId id,
                                       graph::EdgeType type,
                                       const OpContext* ctx) {
  return Route(id)->DeleteVertex(id, type, ctx);
}

Status PartitionedEngine::AddEdge(graph::VertexId src, graph::EdgeType type,
                                  graph::VertexId dst, const Slice& properties,
                                  graph::TimestampUs created_us,
                                  const OpContext* ctx) {
  return Route(src)->AddEdge(src, type, dst, properties, created_us, ctx);
}

Status PartitionedEngine::DeleteEdge(graph::VertexId src, graph::EdgeType type,
                                     graph::VertexId dst,
                                     const OpContext* ctx) {
  return Route(src)->DeleteEdge(src, type, dst, ctx);
}

Result<std::string> PartitionedEngine::GetEdge(graph::VertexId src,
                                               graph::EdgeType type,
                                               graph::VertexId dst,
                                               const OpContext* ctx) {
  return Route(src)->GetEdge(src, type, dst, ctx);
}

Status PartitionedEngine::GetNeighbors(graph::VertexId src,
                                       graph::EdgeType type, size_t limit,
                                       std::vector<graph::Neighbor>* out,
                                       const OpContext* ctx) {
  return Route(src)->GetNeighbors(src, type, limit, out, ctx);
}

void RunWorkload(
    graph::GraphEngine* engine,
    const std::function<std::unique_ptr<WorkloadGenerator>(int)>&
        make_generator,
    const DriverOptions& options, DriverResult* result) {
  std::atomic<uint64_t> total_ops{0};
  std::atomic<uint64_t> total_errors{0};

  auto worker = [&](int thread_index) {
    std::unique_ptr<WorkloadGenerator> gen = make_generator(thread_index);
    const std::string props =
        MakeProperties(thread_index, options.property_bytes);
    std::vector<graph::Neighbor> neighbors;
    uint64_t ops = 0;
    uint64_t errors = 0;
    for (uint64_t i = 0; i < options.ops_per_thread; ++i) {
      const Op op = gen->Next();
      const uint64_t t0 = options.record_latency ? NowMicros() : 0;
      Status s = Status::OK();
      switch (op.type) {
        case Op::Type::kInsertEdge:
          s = engine->AddEdge(op.src, options.edge_type, op.dst, props,
                              NowMicros());
          break;
        case Op::Type::kOneHop: {
          neighbors.clear();
          s = engine->GetNeighbors(op.src, options.edge_type,
                                   options.read_limit, &neighbors);
          break;
        }
        case Op::Type::kMultiHop: {
          graph::TraversalOptions t;
          t.hops = op.hops;
          t.fanout_per_vertex = options.multi_hop_fanout;
          s = KHopNeighbors(engine, op.src, options.edge_type, t).status();
          break;
        }
        case Op::Type::kReachCheck: {
          graph::TraversalOptions t;
          t.hops = op.hops;
          t.fanout_per_vertex = options.multi_hop_fanout;
          s = IsReachable(engine, op.src, op.dst, options.edge_type, t)
                  .status();
          break;
        }
      }
      if (!s.ok() && !s.IsNotFound()) ++errors;
      ++ops;
      if (options.record_latency) {
        result->latency_us.Record(NowMicros() - t0);
      }
    }
    total_ops.fetch_add(ops, std::memory_order_relaxed);
    total_errors.fetch_add(errors, std::memory_order_relaxed);
  };

  const uint64_t start = NowMicros();
  std::vector<std::thread> threads;
  threads.reserve(options.threads);
  for (int t = 0; t < options.threads; ++t) threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();
  const uint64_t elapsed = NowMicros() - start;

  result->ops = total_ops.load();
  result->errors = total_errors.load();
  result->seconds = static_cast<double>(elapsed) / 1e6;
  result->qps = result->seconds > 0
                    ? static_cast<double>(result->ops) / result->seconds
                    : 0.0;
}

}  // namespace bg3::workload
