#ifndef BG3_WORKLOAD_GRAPH_GEN_H_
#define BG3_WORKLOAD_GRAPH_GEN_H_

#include <cstdint>

#include "common/result.h"
#include "graph/engine.h"

namespace bg3::workload {

/// Synthetic power-law graph matching the shape of ByteDance's production
/// graphs (§2.5: "the graph data exhibits a power-law distribution"), at a
/// laptop-friendly scale (see DESIGN.md substitutions).
struct GraphGenOptions {
  uint64_t num_sources = 100'000;  ///< e.g. users.
  uint64_t num_dests = 100'000;    ///< e.g. videos (== sources for follows).
  uint64_t num_edges = 500'000;
  /// Zipf skew of source activity and destination popularity.
  double zipf_theta = 0.8;
  graph::EdgeType edge_type = 1;
  size_t property_bytes = 16;
  uint64_t seed = 42;
  bool add_vertices = false;  ///< also register every vertex with properties.
};

/// Bulk-loads a synthetic graph; returns the number of AddEdge calls.
Result<uint64_t> LoadGraph(graph::GraphEngine* engine,
                           const GraphGenOptions& options);

/// Deterministic property blob for an edge/vertex.
std::string MakeProperties(uint64_t seed, size_t bytes);

}  // namespace bg3::workload

#endif  // BG3_WORKLOAD_GRAPH_GEN_H_
