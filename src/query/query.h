#ifndef BG3_QUERY_QUERY_H_
#define BG3_QUERY_QUERY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/engine.h"

namespace bg3::query {

/// A Gremlin-flavoured traversal builder over any graph::GraphEngine — the
/// role of ByteGraph's execution layer (BGE, §2.1), which "convert[s] query
/// language into specific execution plans and handles computation-intensive
/// operations such as sorting and aggregation". Steps are recorded lazily
/// and run by Execute()/Count()/ToVertices().
///
///   auto followers_of_followees =
///       Query(db).V(user).Out(kFollows).Out(kFollows).Dedup().Limit(50)
///           .Execute();
///
/// Not thread safe (build and run a query on one thread); the underlying
/// engine calls are whatever the engine provides.
class Query {
 public:
  explicit Query(graph::GraphEngine* engine);

  /// Attaches a request context: the deadline is checked between pipeline
  /// steps (a multi-hop traversal stops between hops, not only inside
  /// engine I/O) and rides every GetNeighbors expansion. The context must
  /// outlive the terminal call.
  Query& Context(const OpContext* ctx);

  // --- traversal source ---------------------------------------------------
  /// Starts from a single vertex.
  Query& V(graph::VertexId start);
  /// Starts from a set of vertices.
  Query& V(std::vector<graph::VertexId> starts);

  // --- traversal steps -----------------------------------------------------
  /// Moves to out-neighbors along `type` edges (up to `per_vertex_limit`
  /// neighbors expanded per current vertex).
  Query& Out(graph::EdgeType type, size_t per_vertex_limit = 64);

  /// Keeps only vertices passing the predicate.
  Query& Where(std::function<bool(graph::VertexId)> predicate);

  /// Keeps vertices whose *incoming traversal edge* passes the predicate
  /// (timestamp filters: "edges created in the last hour").
  Query& WhereEdge(std::function<bool(const graph::Neighbor&)> predicate);

  /// Removes duplicate vertices (first occurrence wins).
  Query& Dedup();

  /// Keeps the first n vertices of the current frontier.
  Query& Limit(size_t n);

  /// Sorts the frontier by vertex id (ascending).
  Query& Order();

  /// Uniform random sample of k frontier vertices (subgraph generation for
  /// recommendation models, Table 1).
  Query& Sample(size_t k, uint64_t seed);

  // --- terminal steps --------------------------------------------------------
  /// Runs the pipeline; returns the final vertex frontier.
  Result<std::vector<graph::VertexId>> Execute();
  /// Runs the pipeline; returns the final frontier size.
  Result<size_t> Count();
  /// Runs the pipeline; true if any vertex survives.
  Result<bool> Any();

  /// Number of recorded steps (introspection/tests).
  size_t StepCount() const { return steps_.size(); }

 private:
  struct Frontier {
    std::vector<graph::VertexId> vertices;
    /// Edge that led to vertices[i] (empty after source/filter-only steps
    /// that lack edge provenance).
    std::vector<graph::Neighbor> via;
    bool has_via = false;
  };
  using Step = std::function<Status(Frontier*)>;

  Query& AddStep(Step step);

  graph::GraphEngine* const engine_;
  const OpContext* ctx_ = nullptr;
  std::vector<graph::VertexId> sources_;
  std::vector<Step> steps_;
};

}  // namespace bg3::query

#endif  // BG3_QUERY_QUERY_H_
