#include "query/query.h"

#include "common/timed_scope.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "common/random.h"

namespace bg3::query {

Query::Query(graph::GraphEngine* engine) : engine_(engine) {
  BG3_CHECK(engine != nullptr);
}

Query& Query::Context(const OpContext* ctx) {
  ctx_ = ctx;
  return *this;
}

Query& Query::V(graph::VertexId start) {
  sources_.push_back(start);
  return *this;
}

Query& Query::V(std::vector<graph::VertexId> starts) {
  sources_.insert(sources_.end(), starts.begin(), starts.end());
  return *this;
}

Query& Query::AddStep(Step step) {
  steps_.push_back(std::move(step));
  return *this;
}

Query& Query::Out(graph::EdgeType type, size_t per_vertex_limit) {
  return AddStep([this, type, per_vertex_limit](Frontier* f) -> Status {
    Frontier next;
    next.has_via = true;
    std::vector<graph::Neighbor> neighbors;
    for (graph::VertexId v : f->vertices) {
      neighbors.clear();
      BG3_RETURN_IF_ERROR(
          engine_->GetNeighbors(v, type, per_vertex_limit, &neighbors, ctx_));
      for (graph::Neighbor& n : neighbors) {
        next.vertices.push_back(n.dst);
        next.via.push_back(std::move(n));
      }
    }
    *f = std::move(next);
    return Status::OK();
  });
}

Query& Query::Where(std::function<bool(graph::VertexId)> predicate) {
  return AddStep([predicate = std::move(predicate)](Frontier* f) -> Status {
    Frontier next;
    next.has_via = f->has_via;
    for (size_t i = 0; i < f->vertices.size(); ++i) {
      if (!predicate(f->vertices[i])) continue;
      next.vertices.push_back(f->vertices[i]);
      if (f->has_via) next.via.push_back(std::move(f->via[i]));
    }
    *f = std::move(next);
    return Status::OK();
  });
}

Query& Query::WhereEdge(
    std::function<bool(const graph::Neighbor&)> predicate) {
  return AddStep([predicate = std::move(predicate)](Frontier* f) -> Status {
    if (!f->has_via) {
      return Status::InvalidArgument(
          "WhereEdge requires a preceding Out step");
    }
    Frontier next;
    next.has_via = true;
    for (size_t i = 0; i < f->vertices.size(); ++i) {
      if (!predicate(f->via[i])) continue;
      next.vertices.push_back(f->vertices[i]);
      next.via.push_back(std::move(f->via[i]));
    }
    *f = std::move(next);
    return Status::OK();
  });
}

Query& Query::Dedup() {
  return AddStep([](Frontier* f) -> Status {
    std::unordered_set<graph::VertexId> seen;
    Frontier next;
    next.has_via = f->has_via;
    for (size_t i = 0; i < f->vertices.size(); ++i) {
      if (!seen.insert(f->vertices[i]).second) continue;
      next.vertices.push_back(f->vertices[i]);
      if (f->has_via) next.via.push_back(std::move(f->via[i]));
    }
    *f = std::move(next);
    return Status::OK();
  });
}

Query& Query::Limit(size_t n) {
  return AddStep([n](Frontier* f) -> Status {
    if (f->vertices.size() > n) {
      f->vertices.resize(n);
      if (f->has_via) f->via.resize(n);
    }
    return Status::OK();
  });
}

Query& Query::Order() {
  return AddStep([](Frontier* f) -> Status {
    // Sorting drops edge provenance (an aggregation boundary, like BGE's
    // sort operator).
    std::sort(f->vertices.begin(), f->vertices.end());
    f->via.clear();
    f->has_via = false;
    return Status::OK();
  });
}

Query& Query::Sample(size_t k, uint64_t seed) {
  return AddStep([k, seed](Frontier* f) -> Status {
    if (f->vertices.size() <= k) return Status::OK();
    // Fisher-Yates prefix shuffle: uniform k-sample, deterministic per seed.
    Random rng(seed);
    for (size_t i = 0; i < k; ++i) {
      const size_t j = i + rng.Uniform(f->vertices.size() - i);
      std::swap(f->vertices[i], f->vertices[j]);
      if (f->has_via) std::swap(f->via[i], f->via[j]);
    }
    f->vertices.resize(k);
    if (f->has_via) f->via.resize(k);
    return Status::OK();
  });
}

Result<std::vector<graph::VertexId>> Query::Execute() {
  BG3_TIMED_SCOPE("bg3.query.execute_ns");
  BG3_OP_SCOPE("bg3.query.execute", ctx_);
  OpLayerScope query_layer(OpLayer::kQuery);
  BG3_RETURN_IF_ERROR(ValidateOpContext(ctx_));
  Frontier f;
  f.vertices = sources_;
  for (const Step& step : steps_) {
    // Between-step check: a deadline'd traversal gives up at a hop
    // boundary instead of starting another fan-out it cannot finish.
    BG3_RETURN_IF_ERROR(CheckDeadline(ctx_, "query step"));
    BG3_RETURN_IF_ERROR(step(&f));
  }
  return std::move(f.vertices);
}

Result<size_t> Query::Count() {
  auto result = Execute();
  BG3_RETURN_IF_ERROR(result.status());
  return result.value().size();
}

Result<bool> Query::Any() {
  auto result = Execute();
  BG3_RETURN_IF_ERROR(result.status());
  return !result.value().empty();
}

}  // namespace bg3::query
