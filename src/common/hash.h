#ifndef BG3_COMMON_HASH_H_
#define BG3_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

#include "common/slice.h"

namespace bg3 {

/// 64-bit FNV-1a over arbitrary bytes; used for bloom filters and sharding.
inline uint64_t Fnv1a64(const char* data, size_t n, uint64_t seed = 0) {
  uint64_t h = 14695981039346656037ull ^ seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

inline uint64_t HashSlice(const Slice& s, uint64_t seed = 0) {
  return Fnv1a64(s.data(), s.size(), seed);
}

/// Finalizer-style integer mixer (splitmix64) for vertex-id sharding.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace bg3

#endif  // BG3_COMMON_HASH_H_
