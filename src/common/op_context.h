#ifndef BG3_COMMON_OP_CONTEXT_H_
#define BG3_COMMON_OP_CONTEXT_H_

#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>

#include "common/op_stats.h"
#include "common/status.h"
#include "common/time_source.h"

namespace bg3 {

namespace trace {
/// Defined in trace.cc: process-unique nonzero trace id.
uint64_t NewTraceId();
}  // namespace trace

/// Per-request context threaded from the public API (GraphDB / ByteGraph /
/// replication nodes / Query) down through forest, bwtree, WAL and cloud
/// I/O. It carries the request deadline — every layer that can block or
/// retry consults it so a request never spends work past the point its
/// caller stopped waiting (the overload model of DESIGN.md §5.5) — and the
/// request's observability identity (DESIGN.md §5.8): a trace id keying the
/// span tree in `/tracez`, a workload-class tag for cost attribution, and
/// an optional OpStats sink that every layer bills its I/O to.
///
/// A null OpContext* (the default everywhere) means "no deadline, no
/// tracing, no stats" and takes the exact pre-instrumentation fast path: no
/// clock reads, no behavior change. Deadlines are absolute microseconds on
/// `clock`'s timeline, which may be wall time or a manual/virtual test
/// clock.
struct OpContext {
  const TimeSource* clock = nullptr;  ///< required when deadline_us != 0.
  uint64_t deadline_us = 0;           ///< absolute; 0 = no deadline.

  /// Nonzero joins this request into a `/tracez` span tree (see
  /// trace::OpScope). 0 = untraced.
  uint64_t trace_id = 0;
  /// Workload class for cost/latency attribution ("online", "analytics",
  /// "backfill", ...). Must be a string literal or otherwise outlive the
  /// request; nullptr reports as "default".
  const char* workload_class = nullptr;
  /// Per-request I/O account, populated by every layer the request crosses.
  /// Not owned; nullptr (the default) disables per-request accounting.
  OpStats* stats = nullptr;

  /// Context expiring `timeout_us` from now on `clock`'s timeline.
  /// Saturates instead of wrapping: a huge timeout (e.g. uint64 max "wait
  /// forever") must not produce an already-expired deadline.
  static OpContext WithTimeout(const TimeSource* clock, uint64_t timeout_us) {
    OpContext ctx;
    ctx.clock = clock;
    const uint64_t now = clock->NowUs();
    ctx.deadline_us =
        timeout_us > std::numeric_limits<uint64_t>::max() - now
            ? std::numeric_limits<uint64_t>::max()
            : now + timeout_us;
    return ctx;
  }

  /// Context tagged for tracing and per-request accounting: fresh trace id,
  /// the given workload class, and `stats` as the I/O sink (may be null to
  /// trace without accounting). No deadline; set one afterwards if needed.
  static OpContext Traced(const char* workload_class, OpStats* stats) {
    OpContext ctx;
    ctx.trace_id = trace::NewTraceId();
    ctx.workload_class = workload_class;
    ctx.stats = stats;
    return ctx;
  }

  bool has_deadline() const { return deadline_us != 0; }
  bool traced() const { return trace_id != 0; }

  const char* workload_class_name() const {
    return workload_class != nullptr ? workload_class : "default";
  }

  bool Expired() const {
    return has_deadline() && clock != nullptr &&
           clock->NowUs() >= deadline_us;
  }

  /// Microseconds until the deadline; ~0 when no deadline is set, 0 once
  /// expired.
  uint64_t RemainingUs() const {
    if (!has_deadline() || clock == nullptr) {
      return std::numeric_limits<uint64_t>::max();
    }
    const uint64_t now = clock->NowUs();
    return now >= deadline_us ? 0 : deadline_us - now;
  }

  /// " (trace=<hex> class=<name>)" when traced, "" otherwise — appended to
  /// deadline errors and slow-op log lines so they join against `/tracez`.
  std::string DescribeForLog() const {
    if (!traced()) return "";
    char buf[96];
    std::snprintf(buf, sizeof(buf), " (trace=%016llx class=%s)",
                  static_cast<unsigned long long>(trace_id),
                  workload_class_name());
    return std::string(buf);
  }
};

/// Mid-operation deadline check: OK for a null/deadline-less context,
/// DeadlineExceeded once the deadline passed. `what` names the layer for
/// the error message ("bwtree read", "admission queue", ...). Traced
/// requests get their trace id and workload class appended so the logged
/// timeout is joinable against `/tracez`.
inline Status CheckDeadline(const OpContext* ctx, const char* what) {
  if (ctx == nullptr || !ctx->Expired()) return Status::OK();
  return Status::DeadlineExceeded(std::string("deadline expired in ") + what +
                                  ctx->DescribeForLog());
}

/// API-boundary validation (DESIGN.md §5.5): a context whose deadline is
/// malformed — set without a clock, or already zero/past at entry — is a
/// caller bug and is rejected with InvalidArgument *before any work or
/// admission*, distinct from DeadlineExceeded which means a valid deadline
/// ran out mid-operation. Null and deadline-less contexts pass untouched.
inline Status ValidateOpContext(const OpContext* ctx) {
  if (ctx == nullptr || !ctx->has_deadline()) return Status::OK();
  if (ctx->clock == nullptr) {
    return Status::InvalidArgument("OpContext deadline set without a clock");
  }
  if (ctx->clock->NowUs() >= ctx->deadline_us) {
    return Status::InvalidArgument(
        "OpContext deadline is zero or already past at the API boundary");
  }
  return Status::OK();
}

}  // namespace bg3

#endif  // BG3_COMMON_OP_CONTEXT_H_
