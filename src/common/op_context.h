#ifndef BG3_COMMON_OP_CONTEXT_H_
#define BG3_COMMON_OP_CONTEXT_H_

#include <cstdint>
#include <limits>
#include <string>

#include "common/status.h"
#include "common/time_source.h"

namespace bg3 {

/// Per-request context threaded from the public API (GraphDB / ByteGraph /
/// replication nodes / Query) down through forest, bwtree, WAL and cloud
/// I/O. Today it carries the request deadline; every layer that can block
/// or retry consults it so a request never spends work past the point its
/// caller stopped waiting (the overload model of DESIGN.md §5.5).
///
/// A null OpContext* (the default everywhere) means "no deadline" and takes
/// the exact pre-deadline fast path: no clock reads, no behavior change.
/// Deadlines are absolute microseconds on `clock`'s timeline, which may be
/// wall time or a manual/virtual test clock.
struct OpContext {
  const TimeSource* clock = nullptr;  ///< required when deadline_us != 0.
  uint64_t deadline_us = 0;           ///< absolute; 0 = no deadline.

  /// Context expiring `timeout_us` from now on `clock`'s timeline.
  static OpContext WithTimeout(const TimeSource* clock, uint64_t timeout_us) {
    OpContext ctx;
    ctx.clock = clock;
    ctx.deadline_us = clock->NowUs() + timeout_us;
    return ctx;
  }

  bool has_deadline() const { return deadline_us != 0; }

  bool Expired() const {
    return has_deadline() && clock != nullptr &&
           clock->NowUs() >= deadline_us;
  }

  /// Microseconds until the deadline; ~0 when no deadline is set, 0 once
  /// expired.
  uint64_t RemainingUs() const {
    if (!has_deadline() || clock == nullptr) {
      return std::numeric_limits<uint64_t>::max();
    }
    const uint64_t now = clock->NowUs();
    return now >= deadline_us ? 0 : deadline_us - now;
  }
};

/// Mid-operation deadline check: OK for a null/deadline-less context,
/// DeadlineExceeded once the deadline passed. `what` names the layer for
/// the error message ("bwtree read", "admission queue", ...).
inline Status CheckDeadline(const OpContext* ctx, const char* what) {
  if (ctx == nullptr || !ctx->Expired()) return Status::OK();
  return Status::DeadlineExceeded(std::string("deadline expired in ") + what);
}

/// API-boundary validation (DESIGN.md §5.5): a context whose deadline is
/// malformed — set without a clock, or already zero/past at entry — is a
/// caller bug and is rejected with InvalidArgument *before any work or
/// admission*, distinct from DeadlineExceeded which means a valid deadline
/// ran out mid-operation. Null and deadline-less contexts pass untouched.
inline Status ValidateOpContext(const OpContext* ctx) {
  if (ctx == nullptr || !ctx->has_deadline()) return Status::OK();
  if (ctx->clock == nullptr) {
    return Status::InvalidArgument("OpContext deadline set without a clock");
  }
  if (ctx->clock->NowUs() >= ctx->deadline_us) {
    return Status::InvalidArgument(
        "OpContext deadline is zero or already past at the API boundary");
  }
  return Status::OK();
}

}  // namespace bg3

#endif  // BG3_COMMON_OP_CONTEXT_H_
