#ifndef BG3_COMMON_COST_MODEL_H_
#define BG3_COMMON_COST_MODEL_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "common/op_stats.h"

namespace bg3 {

/// Pluggable cloud storage pricing (DESIGN.md §5.8). Defaults approximate
/// S3 standard-tier list prices: per-request charges for GET/PUT, monthly
/// per-GB storage, and free same-region data transfer. Deployments on
/// provisioned-throughput stores (or paying egress) set the per-GB transfer
/// rates; the storage-cost bench does, so written bytes dominate and GC
/// policy differences become dollar-denominated.
struct CostModelOptions {
  double usd_per_read_op = 0.4e-6;        ///< S3 GET: $0.40 per 1M requests.
  double usd_per_write_op = 5.0e-6;       ///< S3 PUT: $5.00 per 1M requests.
  double usd_per_gb_read = 0.0;           ///< same-region transfer is free.
  double usd_per_gb_written = 0.0;
  double usd_per_gb_month_stored = 0.023; ///< S3 standard storage.
};

/// Converts raw I/O volumes into dollars. Stateless aside from the pricing
/// options, so layers can price their own numbers without touching the
/// process-wide accounting (the bench does exactly that).
class CostModel {
 public:
  CostModel() = default;
  explicit CostModel(const CostModelOptions& opts) : opts_(opts) {}

  double ReadCostUsd(uint64_t ops, uint64_t bytes) const {
    return static_cast<double>(ops) * opts_.usd_per_read_op +
           GiB(bytes) * opts_.usd_per_gb_read;
  }
  double WriteCostUsd(uint64_t ops, uint64_t bytes) const {
    return static_cast<double>(ops) * opts_.usd_per_write_op +
           GiB(bytes) * opts_.usd_per_gb_written;
  }
  double StorageCostUsdPerMonth(uint64_t stored_bytes) const {
    return GiB(stored_bytes) * opts_.usd_per_gb_month_stored;
  }
  /// Request cost: per-layer cloud reads + appends priced and summed
  /// (storage is a standing charge, not a per-request one).
  double OpCostUsd(const OpStats& s) const {
    return ReadCostUsd(s.CloudReadOps(), s.CloudReadBytes()) +
           WriteCostUsd(s.CloudAppendOps(), s.CloudAppendBytes());
  }

  const CostModelOptions& options() const { return opts_; }

  static double GiB(uint64_t bytes) {
    return static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0);
  }

 private:
  CostModelOptions opts_;
};

/// Process-wide cost accounting: trace::OpScope folds each finished traced
/// request's OpStats in here, which breaks the dollars down into
/// `bg3.cost.*` counters in the default metrics registry (integer
/// **nano-USD**, so they stay exact counters):
///
///   bg3.cost.total_nanousd             everything accounted so far
///   bg3.cost.requests                  requests folded in
///   bg3.cost.class.<class>.nanousd     by OpContext workload class
///   bg3.cost.layer.<layer>.nanousd     by issuing layer (OpLayer)
///
/// The OpStats sink must be fresh (or Reset) per request: folding reads the
/// sink's totals, so reusing one sink across requests double-bills.
class CostAccounting {
 public:
  static CostAccounting& Default();

  void SetModel(const CostModelOptions& opts) {
    std::lock_guard<std::mutex> lock(mu_);
    opts_ = opts;
  }
  CostModelOptions model_options() const {
    std::lock_guard<std::mutex> lock(mu_);
    return opts_;
  }

  /// Folds one finished request. `workload_class` may be null ("default").
  void RecordOp(const OpStats& s, const char* workload_class);

 private:
  mutable std::mutex mu_;
  CostModelOptions opts_;
};

/// `/costz` document (compact JSON): the process-wide cloud bill — every
/// `bg3.cloud.store<N>.*` I/O counter in the default registry priced by the
/// accounting's current model, storage priced from the stores' total_bytes
/// callbacks — plus the per-request attribution (`by_class`, `by_layer`)
/// accumulated by CostAccounting.
std::string RenderCostz();

}  // namespace bg3

#endif  // BG3_COMMON_COST_MODEL_H_
