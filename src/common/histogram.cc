#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <sstream>

namespace bg3 {

Histogram::Histogram() { Reset(); }

// Bucket layout: 4 sub-buckets per power of two. Bucket index for value v
// (v >= 1) is 4*floor(log2(v)) + next-2-bits; small and fast.
int Histogram::BucketFor(uint64_t v) {
  if (v < 4) return static_cast<int>(v);
  const int log2 = 63 - std::countl_zero(v);
  const int sub = static_cast<int>((v >> (log2 - 2)) & 3);
  const int idx = 4 * log2 + sub - 8;  // v=4 (log2=2, sub=0) maps to 0+4... shift
  const int b = idx + 4;
  return b >= kNumBuckets ? kNumBuckets - 1 : b;
}

uint64_t Histogram::BucketLow(int b) {
  if (b < 4) return static_cast<uint64_t>(b);
  const int idx = b - 4 + 8;
  const int log2 = idx / 4;
  const int sub = idx % 4;
  if (log2 >= 64) return std::numeric_limits<uint64_t>::max();
  const uint64_t base = 1ull << log2;
  const uint64_t step = static_cast<uint64_t>(sub) << (log2 - 2);
  // The top bucket's sub-steps can wrap past 2^64: saturate.
  return base > std::numeric_limits<uint64_t>::max() - step
             ? std::numeric_limits<uint64_t>::max()
             : base + step;
}

uint64_t Histogram::BucketHigh(int b) {
  if (b < 3) return static_cast<uint64_t>(b);
  if (b == kNumBuckets - 1) return std::numeric_limits<uint64_t>::max();
  return BucketLow(b + 1) - 1;
}

void Histogram::Record(uint64_t value_us) {
  buckets_[BucketFor(value_us)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value_us, std::memory_order_relaxed);
  uint64_t cur_min = min_.load(std::memory_order_relaxed);
  while (value_us < cur_min &&
         !min_.compare_exchange_weak(cur_min, value_us,
                                     std::memory_order_relaxed)) {
  }
  uint64_t cur_max = max_.load(std::memory_order_relaxed);
  while (value_us > cur_max &&
         !max_.compare_exchange_weak(cur_max, value_us,
                                     std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::Count() const {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::Mean() const {
  const uint64_t c = Count();
  return c == 0 ? 0.0
                : static_cast<double>(sum_.load(std::memory_order_relaxed)) /
                      static_cast<double>(c);
}

uint64_t Histogram::Min() const {
  const uint64_t m = min_.load(std::memory_order_relaxed);
  return Count() == 0 ? 0 : m;
}

uint64_t Histogram::Max() const {
  return Count() == 0 ? 0 : max_.load(std::memory_order_relaxed);
}

uint64_t Histogram::Percentile(double q) const {
  const uint64_t total = Count();
  if (total == 0) return 0;
  const double target = q * static_cast<double>(total);
  uint64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    const uint64_t in_bucket = buckets_[b].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= target) {
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      const uint64_t lo = BucketLow(b);
      const uint64_t hi = std::min(BucketHigh(b), Max());
      const uint64_t width = hi > lo ? hi - lo : 0;
      return lo + static_cast<uint64_t>(frac * static_cast<double>(width));
    }
    seen += in_bucket;
  }
  return Max();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<uint64_t>::max(), std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "count=" << Count() << " mean=" << Mean() << "us"
     << " min=" << Min() << " p50=" << Percentile(0.50)
     << " p95=" << Percentile(0.95) << " p99=" << Percentile(0.99)
     << " max=" << Max();
  return os.str();
}

}  // namespace bg3
