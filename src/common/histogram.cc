#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <sstream>

namespace bg3 {

namespace {

// Per-thread shard index so each thread mostly touches one shard's cache
// lines (same scheme as Counter's striping).
int ThisThreadShard() {
  static std::atomic<int> next{0};
  thread_local int shard = next.fetch_add(1, std::memory_order_relaxed);
  return shard;
}

uint64_t PercentileFromBuckets(const uint64_t* buckets, int num_buckets,
                               uint64_t total, uint64_t min_seen,
                               uint64_t max_seen, double q,
                               uint64_t (*bucket_low)(int),
                               uint64_t (*bucket_high)(int)) {
  if (total == 0) return 0;
  const double target = q * static_cast<double>(total);
  uint64_t seen = 0;
  for (int b = 0; b < num_buckets; ++b) {
    const uint64_t in_bucket = buckets[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= target) {
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      const uint64_t lo = bucket_low(b);
      const uint64_t hi = std::min(bucket_high(b), max_seen);
      const uint64_t width = hi > lo ? hi - lo : 0;
      // Clamp to the exact observed min: interpolating inside the lowest
      // occupied bucket can land below every recorded value (e.g. all
      // samples equal, sitting mid-bucket), which would make p50 < min.
      return std::max(min_seen,
                      lo + static_cast<uint64_t>(
                               frac * static_cast<double>(width)));
    }
    seen += in_bucket;
  }
  return max_seen;
}

}  // namespace

Histogram::Histogram() { Reset(); }

// Bucket layout: 4 sub-buckets per power of two. Bucket index for value v
// (v >= 1) is 4*floor(log2(v)) + next-2-bits; small and fast.
int Histogram::BucketFor(uint64_t v) {
  if (v < 4) return static_cast<int>(v);
  const int log2 = 63 - std::countl_zero(v);
  const int sub = static_cast<int>((v >> (log2 - 2)) & 3);
  const int idx = 4 * log2 + sub - 8;  // v=4 (log2=2, sub=0) maps to 0+4... shift
  const int b = idx + 4;
  return b >= kNumBuckets ? kNumBuckets - 1 : b;
}

uint64_t Histogram::BucketLow(int b) {
  if (b < 4) return static_cast<uint64_t>(b);
  const int idx = b - 4 + 8;
  const int log2 = idx / 4;
  const int sub = idx % 4;
  if (log2 >= 64) return std::numeric_limits<uint64_t>::max();
  const uint64_t base = 1ull << log2;
  const uint64_t step = static_cast<uint64_t>(sub) << (log2 - 2);
  // The top bucket's sub-steps can wrap past 2^64: saturate.
  return base > std::numeric_limits<uint64_t>::max() - step
             ? std::numeric_limits<uint64_t>::max()
             : base + step;
}

uint64_t Histogram::BucketHigh(int b) {
  if (b < 3) return static_cast<uint64_t>(b);
  if (b == kNumBuckets - 1) return std::numeric_limits<uint64_t>::max();
  return BucketLow(b + 1) - 1;
}

void Histogram::Record(uint64_t value) {
  Shard& s = shards_[ThisThreadShard() % kShards];
  s.buckets[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(value, std::memory_order_relaxed);
  uint64_t cur_min = s.min.load(std::memory_order_relaxed);
  while (value < cur_min && !s.min.compare_exchange_weak(
                                cur_min, value, std::memory_order_relaxed)) {
  }
  uint64_t cur_max = s.max.load(std::memory_order_relaxed);
  while (value > cur_max && !s.max.compare_exchange_weak(
                                cur_max, value, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snap;
  snap.buckets.assign(kNumBuckets, 0);
  snap.min = std::numeric_limits<uint64_t>::max();
  uint64_t bucket_total = 0;
  for (const Shard& s : shards_) {
    for (int b = 0; b < kNumBuckets; ++b) {
      const uint64_t n = s.buckets[b].load(std::memory_order_relaxed);
      snap.buckets[b] += n;
      bucket_total += n;
    }
    snap.sum += s.sum.load(std::memory_order_relaxed);
    snap.min = std::min(snap.min, s.min.load(std::memory_order_relaxed));
    snap.max = std::max(snap.max, s.max.load(std::memory_order_relaxed));
  }
  // Derive count from the buckets actually captured so percentile math is
  // internally consistent even while writers race the snapshot.
  snap.count = bucket_total;
  if (snap.count == 0) {
    snap.min = 0;
    snap.max = 0;
    snap.sum = 0;
    snap.buckets.clear();
  }
  return snap;
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const Shard& s : shards_)
    total += s.count.load(std::memory_order_relaxed);
  return total;
}

double Histogram::Mean() const {
  const Snapshot snap = TakeSnapshot();
  return snap.Mean();
}

uint64_t Histogram::Min() const {
  uint64_t m = std::numeric_limits<uint64_t>::max();
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.count.load(std::memory_order_relaxed);
    m = std::min(m, s.min.load(std::memory_order_relaxed));
  }
  return total == 0 ? 0 : m;
}

uint64_t Histogram::Max() const {
  uint64_t m = 0;
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.count.load(std::memory_order_relaxed);
    m = std::max(m, s.max.load(std::memory_order_relaxed));
  }
  return total == 0 ? 0 : m;
}

uint64_t Histogram::Percentile(double q) const {
  return TakeSnapshot().Percentile(q);
}

void Histogram::Merge(const Histogram& other) {
  const Snapshot snap = other.TakeSnapshot();
  if (snap.count == 0) return;
  Shard& s = shards_[ThisThreadShard() % kShards];
  for (int b = 0; b < kNumBuckets; ++b) {
    if (snap.buckets[b] != 0)
      s.buckets[b].fetch_add(snap.buckets[b], std::memory_order_relaxed);
  }
  s.count.fetch_add(snap.count, std::memory_order_relaxed);
  s.sum.fetch_add(snap.sum, std::memory_order_relaxed);
  uint64_t cur_min = s.min.load(std::memory_order_relaxed);
  while (snap.min < cur_min &&
         !s.min.compare_exchange_weak(cur_min, snap.min,
                                      std::memory_order_relaxed)) {
  }
  uint64_t cur_max = s.max.load(std::memory_order_relaxed);
  while (snap.max > cur_max &&
         !s.max.compare_exchange_weak(cur_max, snap.max,
                                      std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  for (Shard& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.min.store(std::numeric_limits<uint64_t>::max(),
                std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
  }
}

std::string Histogram::ToString() const {
  const Snapshot snap = TakeSnapshot();
  std::ostringstream os;
  os << "count=" << snap.count << " mean=" << snap.Mean()
     << " min=" << snap.min << " p50=" << snap.Percentile(0.50)
     << " p95=" << snap.Percentile(0.95) << " p99=" << snap.Percentile(0.99)
     << " max=" << snap.max;
  return os.str();
}

double Histogram::Snapshot::Mean() const {
  return count == 0
             ? 0.0
             : static_cast<double>(sum) / static_cast<double>(count);
}

uint64_t Histogram::Snapshot::Percentile(double q) const {
  if (count == 0 || buckets.empty()) return 0;
  return PercentileFromBuckets(buckets.data(), kNumBuckets, count, min, max,
                               q, &Histogram::BucketLow,
                               &Histogram::BucketHigh);
}

}  // namespace bg3
