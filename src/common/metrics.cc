#include "common/metrics.h"

#include <memory>
#include <thread>

namespace bg3 {

namespace {

// Per-thread shard index so each thread mostly touches one cache line.
int ThisThreadShard() {
  static std::atomic<int> next{0};
  thread_local int shard = next.fetch_add(1, std::memory_order_relaxed);
  return shard;
}

}  // namespace

void Counter::Add(uint64_t n) {
  shards_[ThisThreadShard() % kShards].v.fetch_add(n,
                                                   std::memory_order_relaxed);
}

uint64_t Counter::Get() const {
  uint64_t sum = 0;
  for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
  return sum;
}

void Counter::Reset() {
  for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

}  // namespace bg3
