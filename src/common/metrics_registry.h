#ifndef BG3_COMMON_METRICS_REGISTRY_H_
#define BG3_COMMON_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/metrics.h"

namespace bg3 {

/// Process-wide named-metrics registry: the single place `DumpMetrics()`,
/// the StatsReporter, the benches and `examples/bg3_stats` read from, so
/// every surface reports the same source-of-truth counters.
///
/// Two ways a metric gets in:
///  - **Owned**: `GetCounter/GetGauge/GetHistogram(name)` get-or-create a
///    registry-owned metric. Idempotent per name; repeated calls return the
///    same object (the `BG3_TIMED_SCOPE` fast path caches the pointer in a
///    function-local static). Owned metrics live until ResetForTesting().
///  - **External**: `Register{Counter,Gauge,Histogram,Callback}` expose a
///    metric owned by some component instance (a CloudStore's IoStats, an
///    RoNode's sync-latency histogram). The component must `Deregister`
///    (or `DeregisterPrefix`) before the instance dies; per-instance name
///    prefixes (`bg3.cloud.store0.`) keep multiple instances collision-free.
///
/// Name rules: dot-separated lowercase path, `bg3.<layer>.<op>[_<unit>]`,
/// unit suffix `_ns` for wall-clock durations, `_us` for simulated-clock
/// durations, `_bytes` / `_ops` / plain for counters (see DESIGN.md §5.3).
///
/// Collisions: requesting a name as two different kinds (counter then
/// histogram) is a programming error and aborts via BG3_CHECK. Registering
/// an external metric under a name that is already taken keeps the first
/// registration and bumps the `bg3.registry.collisions` self-metric — the
/// metrics-smoke CI job fails any run where it is nonzero.
///
/// Thread safety: all methods are thread-safe; metric mutation through the
/// returned pointers is lock-free (see Counter/Histogram).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide instance all BG3 layers record into.
  static MetricsRegistry& Default();

  // --- owned metrics (get-or-create) ---------------------------------------
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  // --- external metrics ----------------------------------------------------
  // The pointee must stay valid until Deregister'd. Returns false (and
  // counts a collision) if the name is already registered.
  bool RegisterCounter(const std::string& name, const Counter* c);
  bool RegisterLightCounter(const std::string& name, const LightCounter* c);
  bool RegisterGauge(const std::string& name, const Gauge* g);
  bool RegisterHistogram(const std::string& name, const Histogram* h);
  /// Computed-on-snapshot value (approx memory, live bytes, ...).
  bool RegisterCallback(const std::string& name,
                        std::function<uint64_t()> fn);

  void Deregister(const std::string& name);
  /// Removes every external metric whose name starts with `prefix`
  /// (instance teardown).
  void DeregisterPrefix(const std::string& prefix);

  /// Duplicate-name registrations observed so far (also exported as
  /// `bg3.registry.collisions` in every snapshot).
  uint64_t collisions() const {
    return collisions_.load(std::memory_order_relaxed);
  }

  /// Monotonically increasing id for naming component instances
  /// (`bg3.cloud.store<id>.`); process-wide, never reused.
  static uint64_t NextInstanceId(const char* kind);

  // --- snapshots -----------------------------------------------------------
  struct HistogramValue {
    uint64_t count = 0;
    double mean = 0;
    uint64_t min = 0;
    uint64_t p50 = 0;
    uint64_t p95 = 0;
    uint64_t p99 = 0;
    uint64_t max = 0;
  };
  struct Snapshot {
    std::map<std::string, uint64_t> counters;   ///< counters + callbacks.
    std::map<std::string, int64_t> gauges;
    std::map<std::string, HistogramValue> histograms;
  };
  /// Coherent per-metric (not cross-metric) point-in-time view, in
  /// deterministic (sorted) name order. Always includes
  /// `bg3.registry.collisions`.
  Snapshot TakeSnapshot() const;

  /// Prometheus text exposition format.
  std::string RenderPrometheus() const;
  /// Structured JSON: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string RenderJson(int indent = 2) const;

  /// Drops every owned and external metric and zeroes the collision count.
  /// Test isolation only — outstanding metric pointers dangle after this.
  void ResetForTesting();

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kCallback };
  struct Entry {
    Kind kind;
    // Owned storage (at most one set) ...
    std::unique_ptr<Counter> owned_counter;
    std::unique_ptr<Gauge> owned_gauge;
    std::unique_ptr<Histogram> owned_histogram;
    // ... or external views.
    const Counter* ext_counter = nullptr;
    const LightCounter* ext_light = nullptr;
    const Gauge* ext_gauge = nullptr;
    const Histogram* ext_histogram = nullptr;
    std::function<uint64_t()> callback;
    bool external = false;
  };

  bool AddExternal(const std::string& name, Entry entry);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  std::atomic<uint64_t> collisions_{0};
};

}  // namespace bg3

#endif  // BG3_COMMON_METRICS_REGISTRY_H_
