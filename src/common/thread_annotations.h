#ifndef BG3_COMMON_THREAD_ANNOTATIONS_H_
#define BG3_COMMON_THREAD_ANNOTATIONS_H_

#include <mutex>
#include <shared_mutex>

#include "common/lock_rank.h"

/// Clang thread-safety-analysis attribute macros plus annotated mutex
/// wrappers. Building with Clang and -Wthread-safety (see the
/// BG3_THREAD_SAFETY_ANALYSIS CMake option) turns lock-discipline
/// violations — touching a BG3_GUARDED_BY member without its mutex, calling
/// a BG3_REQUIRES function unlocked, releasing a mutex twice — into compile
/// warnings (errors under BG3_WERROR). Under GCC the attributes expand to
/// nothing and the wrappers behave exactly like the std types they wrap.
///
/// Usage conventions in this codebase:
///  - members protected by a mutex are declared BG3_GUARDED_BY(mu_);
///  - `...Locked()` methods are declared BG3_REQUIRES(mu_) (or, for
///    per-page latches, BG3_REQUIRES(leaf->latch));
///  - scoped locking prefers MutexLock / ReaderMutexLock / WriterMutexLock,
///    which the analysis tracks natively;
///  - code that must hand a held lock around (std::unique_lock idiom, e.g.
///    BwTree::FindAndLatchLeaf) calls Mutex::AssertHeld() right after the
///    acquisition the analysis cannot see.

#if defined(__clang__)
#define BG3_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define BG3_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

#define BG3_CAPABILITY(x) BG3_THREAD_ANNOTATION(capability(x))
#define BG3_SCOPED_CAPABILITY BG3_THREAD_ANNOTATION(scoped_lockable)

#define BG3_GUARDED_BY(x) BG3_THREAD_ANNOTATION(guarded_by(x))
#define BG3_PT_GUARDED_BY(x) BG3_THREAD_ANNOTATION(pt_guarded_by(x))

#define BG3_ACQUIRED_BEFORE(...) \
  BG3_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define BG3_ACQUIRED_AFTER(...) \
  BG3_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define BG3_REQUIRES(...) \
  BG3_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define BG3_REQUIRES_SHARED(...) \
  BG3_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define BG3_ACQUIRE(...) BG3_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define BG3_ACQUIRE_SHARED(...) \
  BG3_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define BG3_RELEASE(...) BG3_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define BG3_RELEASE_SHARED(...) \
  BG3_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define BG3_RELEASE_GENERIC(...) \
  BG3_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

#define BG3_TRY_ACQUIRE(...) \
  BG3_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define BG3_TRY_ACQUIRE_SHARED(...) \
  BG3_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

#define BG3_EXCLUDES(...) BG3_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define BG3_ASSERT_CAPABILITY(x) BG3_THREAD_ANNOTATION(assert_capability(x))
#define BG3_ASSERT_SHARED_CAPABILITY(x) \
  BG3_THREAD_ANNOTATION(assert_shared_capability(x))

#define BG3_RETURN_CAPABILITY(x) BG3_THREAD_ANNOTATION(lock_returned(x))

#define BG3_NO_THREAD_SAFETY_ANALYSIS \
  BG3_THREAD_ANNOTATION(no_thread_safety_analysis)

// --- blocking-discipline annotations (bg3-lint, DESIGN.md §5.6) -------------
//
// BG3_BLOCKING marks a function that can stall the calling thread for an
// unbounded or I/O-scale time: cloud-store RPCs, WAL appends/flushes,
// thread-pool queue waits, retry/backoff sleeps, admission-queue waits.
// BG3_NO_BLOCKING is the dual assertion: the function promises never to
// block, and bg3-lint's latch-discipline pass errors if its body (or
// anything it transitively calls) reaches a BG3_BLOCKING function.
//
// The pass's core rule: no path may reach a BG3_BLOCKING call while a
// bg3::Mutex / bg3::SharedMutex capability is held (RAII guard in scope,
// explicit Lock(), or a BG3_REQUIRES precondition). Holding a latch across
// a cloud RPC turns one slow shard into a pile-up of blocked threads — the
// exact failure mode the overload layer (§5.5) exists to prevent.
//
// Under Clang the markers also emit `annotate` attributes so AST tooling
// can read them; under GCC they expand to nothing. Either way bg3-lint's
// text frontend recognizes the literal tokens in the declaration.
#if defined(__clang__)
#define BG3_BLOCKING __attribute__((annotate("bg3_blocking")))
#define BG3_NO_BLOCKING __attribute__((annotate("bg3_no_blocking")))
#else
#define BG3_BLOCKING     // recognized textually by bg3-lint
#define BG3_NO_BLOCKING  // recognized textually by bg3-lint
#endif

namespace bg3 {

/// std::mutex with thread-safety annotations. Exposes both the annotated
/// CamelCase interface and the std BasicLockable one, so std::unique_lock /
/// std::lock_guard over a bg3::Mutex still compile (the analysis cannot see
/// through std lock holders; pair them with AssertHeld()).
class BG3_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  /// Enrolls this mutex in debug-build lock-rank checking (see
  /// common/lock_rank.h; ranks come from the generated lock_rank_gen.h).
  /// Call once, from the owning object's constructor, before concurrent
  /// use. `name` must outlive the mutex (string literal).
  void SetRank(int rank, const char* name) {
    rank_ = rank;
    name_ = name;
  }

  void Lock() BG3_ACQUIRE() {
    lock_rank::NoteAcquire(rank_, name_);
    mu_.lock();
  }
  void Unlock() BG3_RELEASE() {
    mu_.unlock();
    lock_rank::NoteRelease(rank_);
  }
  bool TryLock() BG3_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    lock_rank::NoteTryAcquire(rank_, name_);
    return true;
  }

  // BasicLockable / Lockable, for std lock holders.
  void lock() BG3_ACQUIRE() {
    lock_rank::NoteAcquire(rank_, name_);
    mu_.lock();
  }
  void unlock() BG3_RELEASE() {
    mu_.unlock();
    lock_rank::NoteRelease(rank_);
  }
  bool try_lock() BG3_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    lock_rank::NoteTryAcquire(rank_, name_);
    return true;
  }

  /// Declares to the analysis that the calling thread already holds this
  /// mutex (acquired through a path it cannot track). No runtime effect.
  void AssertHeld() const BG3_ASSERT_CAPABILITY(this) {}

 private:
  std::mutex mu_;
  int rank_ = lock_rank::kUnranked;
  const char* name_ = "Mutex";
};

/// std::shared_mutex with thread-safety annotations (same dual interface).
class BG3_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  /// Same contract as Mutex::SetRank; shared and exclusive acquisitions
  /// of a SharedMutex check the same rank.
  void SetRank(int rank, const char* name) {
    rank_ = rank;
    name_ = name;
  }

  void Lock() BG3_ACQUIRE() {
    lock_rank::NoteAcquire(rank_, name_);
    mu_.lock();
  }
  void Unlock() BG3_RELEASE() {
    mu_.unlock();
    lock_rank::NoteRelease(rank_);
  }
  bool TryLock() BG3_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    lock_rank::NoteTryAcquire(rank_, name_);
    return true;
  }
  void ReaderLock() BG3_ACQUIRE_SHARED() {
    lock_rank::NoteAcquire(rank_, name_);
    mu_.lock_shared();
  }
  void ReaderUnlock() BG3_RELEASE_SHARED() {
    mu_.unlock_shared();
    lock_rank::NoteRelease(rank_);
  }

  // std compatibility (std::shared_lock / std::unique_lock).
  void lock() BG3_ACQUIRE() {
    lock_rank::NoteAcquire(rank_, name_);
    mu_.lock();
  }
  void unlock() BG3_RELEASE() {
    mu_.unlock();
    lock_rank::NoteRelease(rank_);
  }
  bool try_lock() BG3_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    lock_rank::NoteTryAcquire(rank_, name_);
    return true;
  }
  void lock_shared() BG3_ACQUIRE_SHARED() {
    lock_rank::NoteAcquire(rank_, name_);
    mu_.lock_shared();
  }
  void unlock_shared() BG3_RELEASE_SHARED() {
    mu_.unlock_shared();
    lock_rank::NoteRelease(rank_);
  }
  bool try_lock_shared() BG3_TRY_ACQUIRE_SHARED(true) {
    if (!mu_.try_lock_shared()) return false;
    lock_rank::NoteTryAcquire(rank_, name_);
    return true;
  }

  void AssertHeld() const BG3_ASSERT_CAPABILITY(this) {}
  void AssertReaderHeld() const BG3_ASSERT_SHARED_CAPABILITY(this) {}

 private:
  std::shared_mutex mu_;
  int rank_ = lock_rank::kUnranked;
  const char* name_ = "SharedMutex";
};

/// RAII exclusive lock over a Mutex, tracked by the analysis.
class BG3_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) BG3_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() BG3_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// RAII exclusive lock over a SharedMutex.
class BG3_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) BG3_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() BG3_RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII shared (reader) lock over a SharedMutex.
class BG3_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) BG3_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->ReaderLock();
  }
  ~ReaderMutexLock() BG3_RELEASE() { mu_->ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

}  // namespace bg3

#endif  // BG3_COMMON_THREAD_ANNOTATIONS_H_
