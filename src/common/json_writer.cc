#include "common/json_writer.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace bg3 {

std::string JsonWriter::Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::NewlineIndent() {
  if (indent_ == 0) return;
  out_ += '\n';
  out_.append(static_cast<size_t>(indent_ * depth_), ' ');
}

void JsonWriter::Prefix(bool is_key) {
  if (after_key_) {
    // Value directly after its key; separator already emitted.
    after_key_ = false;
    return;
  }
  if (depth_ > 0) {
    const uint64_t bit = 1ull << (depth_ < 64 ? depth_ : 63);
    if (has_elem_ & bit) out_ += ',';
    has_elem_ |= bit;
    NewlineIndent();
  }
  (void)is_key;
}

void JsonWriter::BeginObject() {
  Prefix(false);
  out_ += '{';
  ++depth_;
  has_elem_ &= ~(1ull << (depth_ < 64 ? depth_ : 63));
}

void JsonWriter::EndObject() {
  const bool had = has_elem_ & (1ull << (depth_ < 64 ? depth_ : 63));
  --depth_;
  if (had) NewlineIndent();
  out_ += '}';
}

void JsonWriter::BeginArray() {
  Prefix(false);
  out_ += '[';
  ++depth_;
  has_elem_ &= ~(1ull << (depth_ < 64 ? depth_ : 63));
}

void JsonWriter::EndArray() {
  const bool had = has_elem_ & (1ull << (depth_ < 64 ? depth_ : 63));
  --depth_;
  if (had) NewlineIndent();
  out_ += ']';
}

void JsonWriter::Key(const std::string& name) {
  Prefix(true);
  out_ += '"';
  out_ += Escape(name);
  out_ += "\":";
  if (indent_ != 0) out_ += ' ';
  after_key_ = true;
}

void JsonWriter::Value(const std::string& v) {
  Prefix(false);
  out_ += '"';
  out_ += Escape(v);
  out_ += '"';
}

void JsonWriter::Value(const char* v) { Value(std::string(v)); }

void JsonWriter::Value(int64_t v) {
  Prefix(false);
  char buf[32];
  snprintf(buf, sizeof(buf), "%" PRId64, v);
  out_ += buf;
}

void JsonWriter::Value(uint64_t v) {
  Prefix(false);
  char buf[32];
  snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out_ += buf;
}

void JsonWriter::Value(double v) {
  Prefix(false);
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no NaN/Inf.
    return;
  }
  char buf[64];
  snprintf(buf, sizeof(buf), "%.17g", v);
  out_ += buf;
}

void JsonWriter::Value(bool v) {
  Prefix(false);
  out_ += v ? "true" : "false";
}

void JsonWriter::Null() {
  Prefix(false);
  out_ += "null";
}

}  // namespace bg3
