#include "common/metrics_registry.h"

#include <utility>

#include "common/json_writer.h"
#include "common/logging.h"

namespace bg3 {

namespace {
const char kCollisionsMetric[] = "bg3.registry.collisions";
}  // namespace

MetricsRegistry& MetricsRegistry::Default() {
  // Leaked on purpose: metrics are recorded from destructors of static-ish
  // objects; a leaky singleton sidesteps shutdown-order races.
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

uint64_t MetricsRegistry::NextInstanceId(const char* kind) {
  // One counter per kind string (interned literals): store0/db0/ro0 count
  // independently.
  static std::mutex mu;
  static std::map<std::string, uint64_t>* ids =
      new std::map<std::string, uint64_t>();
  std::lock_guard<std::mutex> lock(mu);
  return (*ids)[kind]++;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.kind = Kind::kCounter;
    e.owned_counter = std::make_unique<Counter>();
    it = entries_.emplace(name, std::move(e)).first;
  }
  BG3_CHECK(it->second.kind == Kind::kCounter && it->second.owned_counter)
      << " metric '" << name << "' already registered with a different kind";
  return it->second.owned_counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.kind = Kind::kGauge;
    e.owned_gauge = std::make_unique<Gauge>();
    it = entries_.emplace(name, std::move(e)).first;
  }
  BG3_CHECK(it->second.kind == Kind::kGauge && it->second.owned_gauge)
      << " metric '" << name << "' already registered with a different kind";
  return it->second.owned_gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.kind = Kind::kHistogram;
    e.owned_histogram = std::make_unique<Histogram>();
    it = entries_.emplace(name, std::move(e)).first;
  }
  BG3_CHECK(it->second.kind == Kind::kHistogram && it->second.owned_histogram)
      << " metric '" << name << "' already registered with a different kind";
  return it->second.owned_histogram.get();
}

bool MetricsRegistry::AddExternal(const std::string& name, Entry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  entry.external = true;
  auto [it, inserted] = entries_.emplace(name, std::move(entry));
  (void)it;
  if (!inserted) collisions_.fetch_add(1, std::memory_order_relaxed);
  return inserted;
}

bool MetricsRegistry::RegisterCounter(const std::string& name,
                                      const Counter* c) {
  Entry e;
  e.kind = Kind::kCounter;
  e.ext_counter = c;
  return AddExternal(name, std::move(e));
}

bool MetricsRegistry::RegisterLightCounter(const std::string& name,
                                           const LightCounter* c) {
  Entry e;
  e.kind = Kind::kCounter;
  e.ext_light = c;
  return AddExternal(name, std::move(e));
}

bool MetricsRegistry::RegisterGauge(const std::string& name, const Gauge* g) {
  Entry e;
  e.kind = Kind::kGauge;
  e.ext_gauge = g;
  return AddExternal(name, std::move(e));
}

bool MetricsRegistry::RegisterHistogram(const std::string& name,
                                        const Histogram* h) {
  Entry e;
  e.kind = Kind::kHistogram;
  e.ext_histogram = h;
  return AddExternal(name, std::move(e));
}

bool MetricsRegistry::RegisterCallback(const std::string& name,
                                       std::function<uint64_t()> fn) {
  Entry e;
  e.kind = Kind::kCallback;
  e.callback = std::move(fn);
  return AddExternal(name, std::move(e));
}

void MetricsRegistry::Deregister(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end() && it->second.external) entries_.erase(it);
}

void MetricsRegistry::DeregisterPrefix(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.lower_bound(prefix); it != entries_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    if (it->second.external) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  Snapshot snap;
  // Copy the directory under the lock, then read the metrics unlocked:
  // callbacks and external metrics may call into engine code that itself
  // creates metrics (BG3_TIMED_SCOPE first-use registration), so holding
  // mu_ across evaluation would invert lock order. The pointers stay valid
  // because components deregister before dying and snapshots are not taken
  // concurrently with component teardown.
  struct Flat {
    std::string name;
    Kind kind;
    const Counter* counter;
    const LightCounter* light;
    const Gauge* gauge;
    const Histogram* histogram;
    std::function<uint64_t()> callback;
  };
  std::vector<Flat> flats;
  {
    std::lock_guard<std::mutex> lock(mu_);
    flats.reserve(entries_.size());
    for (const auto& [name, e] : entries_) {
      Flat f;
      f.name = name;
      f.kind = e.kind;
      f.counter = e.owned_counter ? e.owned_counter.get() : e.ext_counter;
      f.light = e.ext_light;
      f.gauge = e.owned_gauge ? e.owned_gauge.get() : e.ext_gauge;
      f.histogram =
          e.owned_histogram ? e.owned_histogram.get() : e.ext_histogram;
      f.callback = e.callback;
      flats.push_back(std::move(f));
    }
  }
  for (const auto& e : flats) {
    const std::string& name = e.name;
    switch (e.kind) {
      case Kind::kCounter:
        snap.counters[name] = e.counter != nullptr ? e.counter->Get()
                              : e.light != nullptr ? e.light->Get()
                                                   : 0;
        break;
      case Kind::kGauge:
        snap.gauges[name] = e.gauge != nullptr ? e.gauge->Get() : 0;
        break;
      case Kind::kCallback:
        snap.counters[name] = e.callback ? e.callback() : 0;
        break;
      case Kind::kHistogram: {
        const Histogram* h = e.histogram;
        if (h == nullptr) break;
        const Histogram::Snapshot hs = h->TakeSnapshot();
        HistogramValue v;
        v.count = hs.count;
        v.mean = hs.Mean();
        v.min = hs.min;
        v.p50 = hs.Percentile(0.50);
        v.p95 = hs.Percentile(0.95);
        v.p99 = hs.Percentile(0.99);
        v.max = hs.max;
        snap.histograms[name] = v;
        break;
      }
    }
  }
  snap.counters[kCollisionsMetric] =
      collisions_.load(std::memory_order_relaxed);
  return snap;
}

std::string MetricsRegistry::RenderPrometheus() const {
  const Snapshot snap = TakeSnapshot();
  std::string out;
  auto sanitize = [](const std::string& name) {
    std::string s = name;
    for (char& c : s)
      if (c == '.' || c == '-') c = '_';
    return s;
  };
  char buf[128];
  for (const auto& [name, v] : snap.counters) {
    const std::string n = sanitize(name);
    out += "# TYPE " + n + " counter\n";
    snprintf(buf, sizeof(buf), "%s %llu\n", n.c_str(),
             static_cast<unsigned long long>(v));
    out += buf;
  }
  for (const auto& [name, v] : snap.gauges) {
    const std::string n = sanitize(name);
    out += "# TYPE " + n + " gauge\n";
    snprintf(buf, sizeof(buf), "%s %lld\n", n.c_str(),
             static_cast<long long>(v));
    out += buf;
  }
  for (const auto& [name, v] : snap.histograms) {
    const std::string n = sanitize(name);
    out += "# TYPE " + n + " summary\n";
    const struct {
      const char* q;
      uint64_t val;
    } quantiles[] = {{"0.5", v.p50}, {"0.95", v.p95}, {"0.99", v.p99}};
    for (const auto& q : quantiles) {
      snprintf(buf, sizeof(buf), "%s{quantile=\"%s\"} %llu\n", n.c_str(), q.q,
               static_cast<unsigned long long>(q.val));
      out += buf;
    }
    snprintf(buf, sizeof(buf), "%s_count %llu\n", n.c_str(),
             static_cast<unsigned long long>(v.count));
    out += buf;
    snprintf(buf, sizeof(buf), "%s_max %llu\n", n.c_str(),
             static_cast<unsigned long long>(v.max));
    out += buf;
  }
  return out;
}

std::string MetricsRegistry::RenderJson(int indent) const {
  const Snapshot snap = TakeSnapshot();
  JsonWriter w(indent);
  w.BeginObject();
  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, v] : snap.counters) w.KV(name, v);
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& [name, v] : snap.gauges) w.KV(name, v);
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const auto& [name, v] : snap.histograms) {
    w.Key(name);
    w.BeginObject();
    w.KV("count", v.count);
    w.KV("mean", v.mean);
    w.KV("min", v.min);
    w.KV("p50", v.p50);
    w.KV("p95", v.p95);
    w.KV("p99", v.p99);
    w.KV("max", v.max);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

void MetricsRegistry::ResetForTesting() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  collisions_.store(0, std::memory_order_relaxed);
}

}  // namespace bg3
