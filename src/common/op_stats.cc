#include "common/op_stats.h"

#include "common/json_writer.h"

namespace bg3 {

void OpStats::Reset() {
  for (LayerIo& io : layers) {
    io.cloud_read_ops.store(0, std::memory_order_relaxed);
    io.cloud_read_bytes.store(0, std::memory_order_relaxed);
    io.cloud_append_ops.store(0, std::memory_order_relaxed);
    io.cloud_append_bytes.store(0, std::memory_order_relaxed);
  }
  wal_appends.store(0, std::memory_order_relaxed);
  wal_append_bytes.store(0, std::memory_order_relaxed);
  cache_hits.store(0, std::memory_order_relaxed);
  cache_misses.store(0, std::memory_order_relaxed);
  retries.store(0, std::memory_order_relaxed);
  queue_wait_us.store(0, std::memory_order_relaxed);
  sheds.store(0, std::memory_order_relaxed);
  throttle_reasons.store(0, std::memory_order_relaxed);
}

std::string OpStats::ToJson() const {
  JsonWriter w(0);
  w.BeginObject();
  w.KV("cloud_read_ops", CloudReadOps());
  w.KV("cloud_read_bytes", CloudReadBytes());
  w.KV("cloud_append_ops", CloudAppendOps());
  w.KV("cloud_append_bytes", CloudAppendBytes());
  w.Key("layers");
  w.BeginObject();
  for (size_t i = 0; i < kOpLayerCount; ++i) {
    const LayerIo& io = layers[i];
    const uint64_t r_ops = io.cloud_read_ops.load(std::memory_order_relaxed);
    const uint64_t r_bytes =
        io.cloud_read_bytes.load(std::memory_order_relaxed);
    const uint64_t a_ops = io.cloud_append_ops.load(std::memory_order_relaxed);
    const uint64_t a_bytes =
        io.cloud_append_bytes.load(std::memory_order_relaxed);
    if (r_ops == 0 && a_ops == 0 && r_bytes == 0 && a_bytes == 0) continue;
    w.Key(OpLayerName(static_cast<OpLayer>(i)));
    w.BeginObject();
    w.KV("read_ops", r_ops);
    w.KV("read_bytes", r_bytes);
    w.KV("append_ops", a_ops);
    w.KV("append_bytes", a_bytes);
    w.EndObject();
  }
  w.EndObject();
  w.KV("wal_appends", wal_appends.load(std::memory_order_relaxed));
  w.KV("wal_append_bytes", wal_append_bytes.load(std::memory_order_relaxed));
  w.KV("cache_hits", cache_hits.load(std::memory_order_relaxed));
  w.KV("cache_misses", cache_misses.load(std::memory_order_relaxed));
  w.KV("retries", retries.load(std::memory_order_relaxed));
  w.KV("queue_wait_us", queue_wait_us.load(std::memory_order_relaxed));
  w.KV("sheds", sheds.load(std::memory_order_relaxed));
  w.KV("throttle_reasons",
       static_cast<uint64_t>(
           throttle_reasons.load(std::memory_order_relaxed)));
  w.EndObject();
  return w.TakeString();
}

}  // namespace bg3
