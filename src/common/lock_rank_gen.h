// GENERATED FILE — do not edit by hand.
//
// Produced by bg3-lint's lock-rank pass:
//   python3 scripts/bg3_lint/run.py --emit-lock-ranks src/common/lock_rank_gen.h
//
// One constant per ranked mutex site (Class::member), topologically
// ordered by the statically extracted acquisition graph: if any code
// path acquires B while holding A, then rank(A) < rank(B). The CI
// lint job regenerates this header and fails on a diff. Consumed by
// common/lock_rank.h (runtime checker) via the SetRank calls in each
// owning class's constructor.
//
// Acquisition edges (holder -> acquired  [witness]):
//   BwTreeForest::evict_mu_ -> BwTreeForest::registry_mu_  [src/forest/forest.cc:bg3::forest::BwTreeForest::MaybeEvictFromInit -> SplitOutLocked()]
//   BwTreeForest::evict_mu_ -> CloudStore::topology_mu_  [src/forest/forest.cc:bg3::forest::BwTreeForest::MaybeEvictFromInit -> SplitOutLocked()]
//   BwTreeForest::evict_mu_ -> LeafPage::latch  [src/forest/forest.cc:bg3::forest::BwTreeForest::MaybeEvictFromInit -> SplitOutLocked()]
//   BwTreeForest::evict_mu_ -> OwnerState::mu  [src/forest/forest.cc:bg3::forest::BwTreeForest::MaybeEvictFromInit]
//   BwTreeForest::evict_mu_ -> PageIndex::mu_  [src/forest/forest.cc:bg3::forest::BwTreeForest::MaybeEvictFromInit -> SplitOutLocked()]
//   BwTreeForest::evict_mu_ -> Stream::mu_  [src/forest/forest.cc:bg3::forest::BwTreeForest::MaybeEvictFromInit -> SplitOutLocked()]
//   CloudStore::topology_mu_ -> Stream::mu_  [src/cloud/cloud_store.cc:bg3::cloud::CloudStore::TotalBytes -> total_bytes()]
//   LeafPage::latch -> CloudStore::topology_mu_  [src/bwtree/bwtree.cc:bg3::bwtree::BwTree::ApplyTraditionalLocked -> ConsolidateLocked()]
//   LeafPage::latch -> PageIndex::mu_  [src/bwtree/bwtree.cc:bg3::bwtree::BwTree::MaybeSplitLocked -> InsertPage()]
//   LeafPage::latch -> Stream::mu_  [src/bwtree/bwtree.cc:bg3::bwtree::BwTree::ApplyTraditionalLocked -> ConsolidateLocked()]
//   OwnerState::mu -> BwTreeForest::registry_mu_  [src/forest/forest.cc:bg3::forest::BwTreeForest::Upsert -> SplitOutLocked()]
//   OwnerState::mu -> CloudStore::topology_mu_  [src/forest/forest.cc:bg3::forest::BwTreeForest::Upsert -> Upsert()]
//   OwnerState::mu -> LeafPage::latch  [src/forest/forest.cc:bg3::forest::BwTreeForest::Upsert -> Upsert()]
//   OwnerState::mu -> PageIndex::mu_  [src/forest/forest.cc:bg3::forest::BwTreeForest::Upsert -> Upsert()]
//   OwnerState::mu -> Stream::mu_  [src/forest/forest.cc:bg3::forest::BwTreeForest::Upsert -> Upsert()]
//   RoNode::mu_ -> CloudStore::manifest_mu_  [src/replication/ro_node.cc:bg3::replication::RoNode::PollWal -> PollWalLocked()]
//   RwNode::flush_mu_ -> CloudStore::manifest_mu_  [src/replication/rw_node.cc:bg3::replication::RwNode::FlushGroup -> PublishStagedLocked()]
//   RwNode::flush_mu_ -> CloudStore::topology_mu_  [src/replication/rw_node.cc:bg3::replication::RwNode::FlushGroup -> FlushPage()]
//   RwNode::flush_mu_ -> LeafPage::latch  [src/replication/rw_node.cc:bg3::replication::RwNode::FlushGroup -> FlushPage()]
//   RwNode::flush_mu_ -> PageIndex::mu_  [src/replication/rw_node.cc:bg3::replication::RwNode::FlushGroup -> DirtyPageIds()]
//   RwNode::flush_mu_ -> RwNode::ckpt_ptr_mu_  [src/replication/rw_node.cc:bg3::replication::RwNode::FlushGroup -> PublishStagedLocked()]
//   RwNode::flush_mu_ -> RwNode::staged_mu_  [src/replication/rw_node.cc:bg3::replication::RwNode::FlushGroup -> PublishStagedLocked()]
//   RwNode::flush_mu_ -> Stream::mu_  [src/replication/rw_node.cc:bg3::replication::RwNode::FlushGroup -> FlushPage()]

#ifndef BG3_COMMON_LOCK_RANK_GEN_H_
#define BG3_COMMON_LOCK_RANK_GEN_H_

namespace bg3::lock_rank {

inline constexpr int kBwTreeForest_evict_mu = 1;  // BwTreeForest::evict_mu_
inline constexpr int kOwnerState_mu = 2;  // OwnerState::mu
inline constexpr int kBwTreeForest_registry_mu = 3;  // BwTreeForest::registry_mu_
inline constexpr int kRoNode_mu = 4;  // RoNode::mu_
inline constexpr int kRwNode_flush_mu = 5;  // RwNode::flush_mu_
inline constexpr int kCloudStore_manifest_mu = 6;  // CloudStore::manifest_mu_
inline constexpr int kCloudStore_topology_mu = 7;  // CloudStore::topology_mu_
inline constexpr int kPageIndex_mu = 8;  // PageIndex::mu_
inline constexpr int kRwNode_ckpt_ptr_mu = 9;  // RwNode::ckpt_ptr_mu_
inline constexpr int kRwNode_staged_mu = 10;  // RwNode::staged_mu_
inline constexpr int kStream_mu = 11;  // Stream::mu_

// Unranked (dynamic order; stay kUnranked):
//   LeafPage::latch: per-leaf latch; ordered dynamically by latch coupling

}  // namespace bg3::lock_rank

#endif  // BG3_COMMON_LOCK_RANK_GEN_H_
