#include "common/threadpool.h"

#include "common/logging.h"

namespace bg3 {

ThreadPool::ThreadPool(int num_threads) {
  BG3_CHECK_GT(num_threads, 0);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) drain_cv_.notify_all();
    }
  }
}

}  // namespace bg3
