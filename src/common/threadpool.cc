#include "common/threadpool.h"

#include "common/logging.h"
#include "common/metrics_registry.h"

namespace bg3 {

ThreadPool::ThreadPool(int num_threads, size_t queue_capacity)
    : capacity_(queue_capacity) {
  BG3_CHECK_GT(num_threads, 0);
  metrics_prefix_ =
      "bg3.threadpool.pool" +
      std::to_string(MetricsRegistry::NextInstanceId("threadpool")) + ".";
  MetricsRegistry::Default().RegisterGauge(metrics_prefix_ + "queue_depth",
                                           &queue_depth_gauge_);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Shutdown();
  MetricsRegistry::Default().DeregisterPrefix(metrics_prefix_);
}

Status ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (capacity_ > 0) {
      space_cv_.wait(lock, [this] {
        return shutdown_ || queue_.size() < capacity_;
      });
    }
    if (shutdown_) return Status::Aborted("threadpool is shut down");
    queue_.push_back(std::move(task));
    queue_depth_gauge_.Set(static_cast<int64_t>(queue_.size()));
  }
  work_cv_.notify_one();
  return Status::OK();
}

bool ThreadPool::TrySubmit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return false;
    if (capacity_ > 0 && queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(task));
    queue_depth_gauge_.Set(static_cast<int64_t>(queue_.size()));
  }
  work_cv_.notify_one();
  return true;
}

void ThreadPool::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_gauge_.Set(static_cast<int64_t>(queue_.size()));
      ++active_;
    }
    space_cv_.notify_one();
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) drain_cv_.notify_all();
    }
  }
}

}  // namespace bg3
