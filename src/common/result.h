#ifndef BG3_COMMON_RESULT_H_
#define BG3_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/logging.h"
#include "common/status.h"

namespace bg3 {

/// A value-or-Status holder (absl::StatusOr-like). `value()` aborts if the
/// result holds an error; check `ok()` first on fallible paths. Declared
/// BG3_NODISCARD like Status: a dropped Result silently swallows both the
/// error and the value.
template <typename T>
class BG3_NODISCARD Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors StatusOr ergonomics.
  Result(T value) : var_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : var_(std::move(status)) {
    BG3_CHECK(!std::get<Status>(var_).ok())
        << "Result constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(var_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    return ok() ? kOk : std::get<Status>(var_);
  }

  T& value() {
    BG3_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(var_);
  }
  const T& value() const {
    BG3_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(var_);
  }

  T&& take() {
    BG3_CHECK(ok()) << "Result::take() on error: " << status().ToString();
    return std::move(std::get<T>(var_));
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> var_;
};

}  // namespace bg3

/// Assigns the value of a Result expression to `lhs` or propagates the error.
#define BG3_ASSIGN_OR_RETURN(lhs, expr)           \
  auto BG3_CONCAT_(_bg3_res_, __LINE__) = (expr); \
  if (!BG3_CONCAT_(_bg3_res_, __LINE__).ok())     \
    return BG3_CONCAT_(_bg3_res_, __LINE__).status(); \
  lhs = BG3_CONCAT_(_bg3_res_, __LINE__).take()

#define BG3_CONCAT_INNER_(a, b) a##b
#define BG3_CONCAT_(a, b) BG3_CONCAT_INNER_(a, b)

#endif  // BG3_COMMON_RESULT_H_
