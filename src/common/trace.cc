#include "common/trace.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "common/clock.h"
#include "common/json_writer.h"
#include "common/metrics_registry.h"

namespace bg3 {

namespace obs {
namespace internal {

std::atomic<uint32_t> g_flags{kTimingBit};

namespace {
std::atomic<uint64_t> g_slow_op_threshold_ns{0};
std::atomic<uint64_t> g_slow_ops{0};
std::atomic<size_t> g_ring_capacity{16384};

bool InitFromEnv() {
  uint32_t flags = kTimingBit;
  if (const char* v = std::getenv("BG3_TIMED_SCOPES")) {
    if (v[0] == '0' && v[1] == '\0') flags &= ~kTimingBit;
  }
  if (const char* v = std::getenv("BG3_TRACE")) {
    if (!(v[0] == '0' && v[1] == '\0') && v[0] != '\0') flags |= kTraceBit;
  }
  if (const char* v = std::getenv("BG3_SLOW_OP_US")) {
    const unsigned long long us = strtoull(v, nullptr, 10);
    if (us > 0) {
      g_slow_op_threshold_ns.store(us * 1000ull, std::memory_order_relaxed);
      flags |= kSlowOpBit;
    }
  }
  if (const char* v = std::getenv("BG3_TRACE_BUF_EVENTS")) {
    const unsigned long long n = strtoull(v, nullptr, 10);
    if (n >= 16)
      g_ring_capacity.store(static_cast<size_t>(n), std::memory_order_relaxed);
  }
  g_flags.store(flags, std::memory_order_relaxed);
  return true;
}

// Runs during static initialization, before main() spawns any threads.
const bool g_env_inited = InitFromEnv();

}  // namespace

void EnsureInitFromEnv() { (void)g_env_inited; }

}  // namespace internal

void SetTimingEnabled(bool on) {
  if (on) {
    internal::g_flags.fetch_or(kTimingBit, std::memory_order_relaxed);
  } else {
    internal::g_flags.fetch_and(~kTimingBit, std::memory_order_relaxed);
  }
}

}  // namespace obs

namespace trace {

namespace {

using obs::internal::g_ring_capacity;
using obs::internal::g_slow_op_threshold_ns;
using obs::internal::g_slow_ops;

constexpr char kPhaseComplete = 'X';
constexpr char kPhaseInstant = 'i';

// One trace event = 4 words, each accessed as a relaxed atomic so
// cross-thread export is race-free by construction (a wrapping writer can
// still tear an in-flight event; see header).
//   word0  name pointer (string literal)
//   word1  start timestamp, ns
//   word2  duration, ns (0 for instants)
//   word3  tid | depth<<32 | phase<<48
struct Ring {
  explicit Ring(size_t capacity, uint32_t tid_in)
      : words(capacity * 4), cap(capacity), tid(tid_in) {}

  std::vector<std::atomic<uint64_t>> words;
  std::atomic<uint64_t> pos{0};  ///< events ever written (monotonic).
  const size_t cap;
  const uint32_t tid;

  void Emit(const char* name, uint64_t ts_ns, uint64_t dur_ns, uint32_t depth,
            char phase) {
    const uint64_t i = pos.load(std::memory_order_relaxed);
    const size_t slot = (i % cap) * 4;
    words[slot + 0].store(reinterpret_cast<uint64_t>(name),
                          std::memory_order_relaxed);
    words[slot + 1].store(ts_ns, std::memory_order_relaxed);
    words[slot + 2].store(dur_ns, std::memory_order_relaxed);
    words[slot + 3].store(static_cast<uint64_t>(tid) |
                              (static_cast<uint64_t>(depth) << 32) |
                              (static_cast<uint64_t>(
                                   static_cast<unsigned char>(phase))
                               << 48),
                          std::memory_order_relaxed);
    pos.store(i + 1, std::memory_order_release);
  }
};

struct RingDirectory {
  std::mutex mu;
  std::vector<std::shared_ptr<Ring>> rings;
  uint32_t next_tid = 1;
};

RingDirectory& Directory() {
  static RingDirectory* dir = new RingDirectory();
  return *dir;
}

Ring& ThisThreadRing() {
  thread_local std::shared_ptr<Ring> ring = [] {
    RingDirectory& dir = Directory();
    std::lock_guard<std::mutex> lock(dir.mu);
    auto r = std::make_shared<Ring>(
        g_ring_capacity.load(std::memory_order_relaxed), dir.next_tid++);
    dir.rings.push_back(r);
    return r;
  }();
  return *ring;
}

// Per-thread span bookkeeping for depth and the slow-op log. The slow-op
// log buffers spans completed inside the current top-level operation so a
// threshold breach can print the whole tree, not just the root.
struct SpanState {
  uint32_t depth = 0;
  struct Done {
    const char* name;
    uint64_t start_ns;
    uint64_t dur_ns;
    uint32_t depth;
  };
  std::vector<Done> op_log;
  static constexpr size_t kMaxOpLog = 512;
};

SpanState& ThisThreadSpans() {
  thread_local SpanState state;
  return state;
}

void DumpSlowOp(const SpanState& state, const char* root_name,
                uint64_t root_start_ns, uint64_t root_dur_ns) {
  fprintf(stderr, "[bg3 slow-op] %s took %.3f ms (threshold %.3f ms)\n",
          root_name, root_dur_ns / 1e6,
          g_slow_op_threshold_ns.load(std::memory_order_relaxed) / 1e6);
  // Children completed in start order; indent by recorded depth.
  for (const auto& d : state.op_log) {
    fprintf(stderr, "[bg3 slow-op]   %*s%s +%.3fms dur=%.3fms\n",
            static_cast<int>(2 * d.depth), "", d.name,
            (d.start_ns - root_start_ns) / 1e6, d.dur_ns / 1e6);
  }
}

}  // namespace

void Trace::SetEnabled(bool on) {
  obs::internal::EnsureInitFromEnv();
  if (on) {
    obs::internal::g_flags.fetch_or(obs::kTraceBit, std::memory_order_relaxed);
  } else {
    obs::internal::g_flags.fetch_and(~obs::kTraceBit,
                                     std::memory_order_relaxed);
  }
}

void Trace::SetSlowOpThresholdNs(uint64_t ns) {
  g_slow_op_threshold_ns.store(ns, std::memory_order_relaxed);
  if (ns > 0) {
    obs::internal::g_flags.fetch_or(obs::kSlowOpBit,
                                    std::memory_order_relaxed);
  } else {
    obs::internal::g_flags.fetch_and(~obs::kSlowOpBit,
                                     std::memory_order_relaxed);
  }
}

uint64_t Trace::SlowOpThresholdNs() {
  return g_slow_op_threshold_ns.load(std::memory_order_relaxed);
}

uint64_t Trace::SlowOpCount() {
  return g_slow_ops.load(std::memory_order_relaxed);
}

void Trace::Instant(const char* name) {
  if (!Enabled()) return;
  ThisThreadRing().Emit(name, NowNanos(), 0, ThisThreadSpans().depth,
                        kPhaseInstant);
}

void Trace::SetRingCapacityForTesting(size_t events) {
  g_ring_capacity.store(events < 16 ? 16 : events,
                        std::memory_order_relaxed);
}

size_t Trace::EventCountForTesting() {
  RingDirectory& dir = Directory();
  std::lock_guard<std::mutex> lock(dir.mu);
  size_t total = 0;
  for (const auto& r : dir.rings) {
    const uint64_t pos = r->pos.load(std::memory_order_acquire);
    total += pos < r->cap ? pos : r->cap;
  }
  return total;
}

void Trace::Reset() {
  RingDirectory& dir = Directory();
  std::lock_guard<std::mutex> lock(dir.mu);
  for (auto it = dir.rings.begin(); it != dir.rings.end();) {
    if (it->use_count() == 1) {
      // Owning thread exited; drop the ring entirely.
      it = dir.rings.erase(it);
    } else {
      (*it)->pos.store(0, std::memory_order_release);
      ++it;
    }
  }
  g_slow_ops.store(0, std::memory_order_relaxed);
}

std::string Trace::ExportChromeJson() {
  JsonWriter w(0);
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();
  RingDirectory& dir = Directory();
  std::lock_guard<std::mutex> lock(dir.mu);
  for (const auto& r : dir.rings) {
    const uint64_t pos = r->pos.load(std::memory_order_acquire);
    const size_t n = pos < r->cap ? static_cast<size_t>(pos) : r->cap;
    for (size_t i = 0; i < n; ++i) {
      const size_t slot = i * 4;
      const auto* name = reinterpret_cast<const char*>(
          r->words[slot + 0].load(std::memory_order_relaxed));
      const uint64_t ts_ns = r->words[slot + 1].load(std::memory_order_relaxed);
      const uint64_t dur_ns =
          r->words[slot + 2].load(std::memory_order_relaxed);
      const uint64_t meta = r->words[slot + 3].load(std::memory_order_relaxed);
      if (name == nullptr) continue;  // torn slot
      const char phase = static_cast<char>((meta >> 48) & 0xff);
      // Category = second dot-component of the metric-style name
      // ("bg3.bwtree.get_ns" -> "bwtree"), so chrome://tracing can filter
      // by layer.
      std::string cat = "bg3";
      {
        const std::string full(name);
        const size_t first = full.find('.');
        if (first != std::string::npos) {
          const size_t second = full.find('.', first + 1);
          if (second != std::string::npos)
            cat = full.substr(first + 1, second - first - 1);
        }
      }
      w.BeginObject();
      w.KV("name", name);
      w.KV("cat", cat);
      char ph[2] = {phase, 0};
      w.KV("ph", ph);
      w.KV("ts", static_cast<double>(ts_ns) / 1000.0);
      if (phase == kPhaseComplete)
        w.KV("dur", static_cast<double>(dur_ns) / 1000.0);
      if (phase == kPhaseInstant) w.KV("s", "t");
      w.KV("pid", 1);
      w.KV("tid", static_cast<uint64_t>(r->tid));
      w.EndObject();
    }
  }
  w.EndArray();
  w.KV("displayTimeUnit", "ms");
  w.EndObject();
  return w.TakeString();
}

bool Trace::WriteChromeJson(const std::string& path) {
  const std::string json = ExportChromeJson();
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = fwrite(json.data(), 1, json.size(), f);
  const bool ok = written == json.size() && fclose(f) == 0;
  if (!ok && written == json.size()) {
    // fclose failed after full write; nothing more to do.
  }
  return ok;
}

std::string Trace::ExportToEnvFile() {
  if (!Enabled()) return "";
  const char* env = std::getenv("BG3_TRACE_FILE");
  const std::string path = env != nullptr && env[0] != '\0'
                               ? std::string(env)
                               : std::string("bg3_trace.json");
  return WriteChromeJson(path) ? path : "";
}

void TraceSpan::Begin(const char* name) {
  name_ = name;
  start_ns_ = NowNanos();
  active_ = true;
  ++ThisThreadSpans().depth;
}

void TraceSpan::End() {
  const uint64_t end_ns = NowNanos();
  const uint64_t dur_ns = end_ns - start_ns_;
  SpanState& state = ThisThreadSpans();
  const uint32_t depth = --state.depth;
  const uint32_t flags = obs::Flags();
  if (flags & obs::kTraceBit)
    ThisThreadRing().Emit(name_, start_ns_, dur_ns, depth, kPhaseComplete);
  if (flags & obs::kSlowOpBit) {
    if (depth > 0) {
      if (state.op_log.size() < SpanState::kMaxOpLog)
        state.op_log.push_back({name_, start_ns_, dur_ns, depth});
    } else {
      const uint64_t threshold =
          g_slow_op_threshold_ns.load(std::memory_order_relaxed);
      if (threshold > 0 && dur_ns >= threshold) {
        g_slow_ops.fetch_add(1, std::memory_order_relaxed);
        MetricsRegistry::Default().GetCounter("bg3.trace.slow_ops")->Inc();
        DumpSlowOp(state, name_, start_ns_, dur_ns);
      }
      state.op_log.clear();
    }
  }
}

}  // namespace trace
}  // namespace bg3
