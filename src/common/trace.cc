#include "common/trace.h"

#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/clock.h"
#include "common/cost_model.h"
#include "common/json_writer.h"
#include "common/metrics_registry.h"
#include "common/op_context.h"

namespace bg3 {

namespace obs {
namespace internal {

std::atomic<uint32_t> g_flags{kTimingBit};

namespace {
std::atomic<uint64_t> g_slow_op_threshold_ns{0};
std::atomic<uint64_t> g_slow_ops{0};
std::atomic<size_t> g_ring_capacity{16384};

bool InitFromEnv() {
  uint32_t flags = kTimingBit;
  if (const char* v = std::getenv("BG3_TIMED_SCOPES")) {
    if (v[0] == '0' && v[1] == '\0') flags &= ~kTimingBit;
  }
  if (const char* v = std::getenv("BG3_TRACE")) {
    if (!(v[0] == '0' && v[1] == '\0') && v[0] != '\0') flags |= kTraceBit;
  }
  if (const char* v = std::getenv("BG3_SLOW_OP_US")) {
    const unsigned long long us = strtoull(v, nullptr, 10);
    if (us > 0) {
      g_slow_op_threshold_ns.store(us * 1000ull, std::memory_order_relaxed);
      flags |= kSlowOpBit;
    }
  }
  if (const char* v = std::getenv("BG3_TRACE_BUF_EVENTS")) {
    const unsigned long long n = strtoull(v, nullptr, 10);
    if (n >= 16)
      g_ring_capacity.store(static_cast<size_t>(n), std::memory_order_relaxed);
  }
  g_flags.store(flags, std::memory_order_relaxed);
  return true;
}

// Runs during static initialization, before main() spawns any threads.
const bool g_env_inited = InitFromEnv();

}  // namespace

void EnsureInitFromEnv() { (void)g_env_inited; }

}  // namespace internal

void SetTimingEnabled(bool on) {
  if (on) {
    internal::g_flags.fetch_or(kTimingBit, std::memory_order_relaxed);
  } else {
    internal::g_flags.fetch_and(~kTimingBit, std::memory_order_relaxed);
  }
}

}  // namespace obs

namespace trace {

namespace {

using obs::internal::g_ring_capacity;
using obs::internal::g_slow_op_threshold_ns;
using obs::internal::g_slow_ops;

constexpr char kPhaseComplete = 'X';
constexpr char kPhaseInstant = 'i';

// ---------------------------------------------------------------------------
// Firehose plane: per-thread lock-free rings (unchanged from the flat
// design, still behind BG3_TRACE).
// ---------------------------------------------------------------------------

// One trace event = 4 words, each accessed as a relaxed atomic so
// cross-thread export is race-free by construction (a wrapping writer can
// still tear an in-flight event; see header).
//   word0  name pointer (string literal)
//   word1  start timestamp, ns
//   word2  duration, ns (0 for instants)
//   word3  tid | depth<<32 | phase<<48
struct Ring {
  explicit Ring(size_t capacity, uint32_t tid_in)
      : words(capacity * 4), cap(capacity), tid(tid_in) {}

  std::vector<std::atomic<uint64_t>> words;
  std::atomic<uint64_t> pos{0};  ///< events ever written (monotonic).
  const size_t cap;
  const uint32_t tid;

  void Emit(const char* name, uint64_t ts_ns, uint64_t dur_ns, uint32_t depth,
            char phase) {
    const uint64_t i = pos.load(std::memory_order_relaxed);
    const size_t slot = (i % cap) * 4;
    words[slot + 0].store(reinterpret_cast<uint64_t>(name),
                          std::memory_order_relaxed);
    words[slot + 1].store(ts_ns, std::memory_order_relaxed);
    words[slot + 2].store(dur_ns, std::memory_order_relaxed);
    words[slot + 3].store(static_cast<uint64_t>(tid) |
                              (static_cast<uint64_t>(depth) << 32) |
                              (static_cast<uint64_t>(
                                   static_cast<unsigned char>(phase))
                               << 48),
                          std::memory_order_relaxed);
    pos.store(i + 1, std::memory_order_release);
  }
};

struct RingDirectory {
  std::mutex mu;
  std::vector<std::shared_ptr<Ring>> rings;
  uint32_t next_tid = 1;
};

RingDirectory& Directory() {
  static RingDirectory* dir = new RingDirectory();
  return *dir;
}

// Stable per-thread id shared by both recording planes, allocated lazily so
// span-only threads do not pay for a ring.
uint32_t ThisThreadTid() {
  thread_local const uint32_t tid = [] {
    RingDirectory& dir = Directory();
    std::lock_guard<std::mutex> lock(dir.mu);
    return dir.next_tid++;
  }();
  return tid;
}

Ring& ThisThreadRing() {
  thread_local std::shared_ptr<Ring> ring = [] {
    const uint32_t tid = ThisThreadTid();
    RingDirectory& dir = Directory();
    std::lock_guard<std::mutex> lock(dir.mu);
    auto r = std::make_shared<Ring>(
        g_ring_capacity.load(std::memory_order_relaxed), tid);
    dir.rings.push_back(r);
    return r;
  }();
  return *ring;
}

// ---------------------------------------------------------------------------
// Per-request plane: trace-id-keyed span capture with parent/child
// causality and tail-based retention (DESIGN.md §5.8).
// ---------------------------------------------------------------------------

std::atomic<uint64_t> g_next_trace_id{1};
std::atomic<uint64_t> g_next_span_id{1};
// Traced roots currently in flight; drives obs::kReqTraceBit so TraceSpan
// stays one-flag-load cheap when no request is being traced.
std::atomic<uint32_t> g_traced_roots{0};

/// The thread's current trace identity: which trace new spans join and who
/// their parent is. Installed by the root OpScope, propagated across
/// threads with TraceBinding.
struct Binding {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;  ///< innermost open span (next span's parent).
  const char* workload_class = nullptr;
};
thread_local Binding tls_binding;

void IncTracedRoots() {
  if (g_traced_roots.fetch_add(1, std::memory_order_relaxed) == 0) {
    obs::internal::g_flags.fetch_or(obs::kReqTraceBit,
                                    std::memory_order_relaxed);
  }
}

void DecTracedRoots() {
  if (g_traced_roots.fetch_sub(1, std::memory_order_relaxed) == 1) {
    obs::internal::g_flags.fetch_and(~obs::kReqTraceBit,
                                     std::memory_order_relaxed);
    // A new root may have raced the clear; re-assert for it.
    if (g_traced_roots.load(std::memory_order_relaxed) != 0) {
      obs::internal::g_flags.fetch_or(obs::kReqTraceBit,
                                      std::memory_order_relaxed);
    }
  }
}

constexpr size_t kMaxActiveTraces = 128;
constexpr size_t kMaxSpansPerTrace = 512;
constexpr size_t kMaxRetainedTraces = 32;

struct ActiveTrace {
  uint64_t trace_id = 0;
  const char* root_name = nullptr;
  const char* workload_class = nullptr;
  uint64_t root_start_ns = 0;
  uint64_t dropped = 0;
  std::vector<SpanRecord> spans;
};

struct CaptureState {
  std::mutex mu;
  std::vector<std::unique_ptr<ActiveTrace>> active;
  std::deque<SlowTrace> retained;  ///< newest at the back.
};

CaptureState& Capture() {
  static CaptureState* s = new CaptureState();
  return *s;
}

void StartCapture(uint64_t trace_id, const char* root_name,
                  const char* workload_class, uint64_t start_ns) {
  CaptureState& c = Capture();
  std::lock_guard<std::mutex> lock(c.mu);
  if (c.active.size() >= kMaxActiveTraces) return;  // spans will be dropped.
  auto t = std::make_unique<ActiveTrace>();
  t->trace_id = trace_id;
  t->root_name = root_name;
  t->workload_class = workload_class;
  t->root_start_ns = start_ns;
  c.active.push_back(std::move(t));
}

void AppendSpanToCapture(uint64_t trace_id, const SpanRecord& rec) {
  CaptureState& c = Capture();
  std::lock_guard<std::mutex> lock(c.mu);
  for (auto& t : c.active) {
    if (t->trace_id != trace_id) continue;
    if (t->spans.size() < kMaxSpansPerTrace) {
      t->spans.push_back(rec);
    } else {
      ++t->dropped;
    }
    return;
  }
}

std::unique_ptr<ActiveTrace> FinishCapture(uint64_t trace_id) {
  CaptureState& c = Capture();
  std::lock_guard<std::mutex> lock(c.mu);
  for (auto it = c.active.begin(); it != c.active.end(); ++it) {
    if ((*it)->trace_id == trace_id) {
      std::unique_ptr<ActiveTrace> t = std::move(*it);
      c.active.erase(it);
      return t;
    }
  }
  return nullptr;
}

void RetainTrace(SlowTrace st) {
  CaptureState& c = Capture();
  std::lock_guard<std::mutex> lock(c.mu);
  if (c.retained.size() >= kMaxRetainedTraces) c.retained.pop_front();
  c.retained.push_back(std::move(st));
}

// Category = second dot-component of the metric-style name
// ("bg3.bwtree.get_ns" -> "bwtree"), so chrome://tracing can filter by
// layer.
std::string CategoryOf(const char* name) {
  const std::string full(name);
  const size_t first = full.find('.');
  if (first != std::string::npos) {
    const size_t second = full.find('.', first + 1);
    if (second != std::string::npos)
      return full.substr(first + 1, second - first - 1);
  }
  return "bg3";
}

std::string TraceIdHex(uint64_t id) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return std::string(buf);
}

// Per-thread span bookkeeping for depth and the slow-op log. The slow-op
// log buffers spans completed inside the current top-level operation so a
// threshold breach can print the whole tree, not just the root.
struct SpanState {
  uint32_t depth = 0;
  struct Done {
    const char* name;
    uint64_t start_ns;
    uint64_t dur_ns;
    uint32_t depth;
  };
  std::vector<Done> op_log;
  static constexpr size_t kMaxOpLog = 512;
};

SpanState& ThisThreadSpans() {
  thread_local SpanState state;
  return state;
}

void DumpSlowOp(const SpanState& state, const char* root_name,
                uint64_t root_start_ns, uint64_t root_dur_ns) {
  // Traced requests get their identity on the line so the log entry joins
  // against /tracez.
  char trace_tag[96] = "";
  if (tls_binding.trace_id != 0) {
    std::snprintf(trace_tag, sizeof(trace_tag), " (trace=%016llx class=%s)",
                  static_cast<unsigned long long>(tls_binding.trace_id),
                  tls_binding.workload_class != nullptr
                      ? tls_binding.workload_class
                      : "default");
  }
  fprintf(stderr, "[bg3 slow-op] %s took %.3f ms (threshold %.3f ms)%s\n",
          root_name, root_dur_ns / 1e6,
          g_slow_op_threshold_ns.load(std::memory_order_relaxed) / 1e6,
          trace_tag);
  // Children completed in start order; indent by recorded depth.
  for (const auto& d : state.op_log) {
    fprintf(stderr, "[bg3 slow-op]   %*s%s +%.3fms dur=%.3fms\n",
            static_cast<int>(2 * d.depth), "", d.name,
            (d.start_ns - root_start_ns) / 1e6, d.dur_ns / 1e6);
  }
}

}  // namespace

uint64_t NewTraceId() {
  return g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

uint64_t CurrentTraceId() { return tls_binding.trace_id; }
uint64_t CurrentSpanId() { return tls_binding.span_id; }

TraceBinding::TraceBinding(uint64_t trace_id, uint64_t parent_span_id,
                           const char* workload_class)
    : prev_trace_id_(tls_binding.trace_id),
      prev_span_id_(tls_binding.span_id),
      prev_class_(tls_binding.workload_class) {
  tls_binding.trace_id = trace_id;
  tls_binding.span_id = parent_span_id;
  if (workload_class != nullptr) tls_binding.workload_class = workload_class;
}

TraceBinding::~TraceBinding() {
  tls_binding.trace_id = prev_trace_id_;
  tls_binding.span_id = prev_span_id_;
  tls_binding.workload_class = prev_class_;
}

void Trace::SetEnabled(bool on) {
  obs::internal::EnsureInitFromEnv();
  if (on) {
    obs::internal::g_flags.fetch_or(obs::kTraceBit, std::memory_order_relaxed);
  } else {
    obs::internal::g_flags.fetch_and(~obs::kTraceBit,
                                     std::memory_order_relaxed);
  }
}

void Trace::SetSlowOpThresholdNs(uint64_t ns) {
  g_slow_op_threshold_ns.store(ns, std::memory_order_relaxed);
  if (ns > 0) {
    obs::internal::g_flags.fetch_or(obs::kSlowOpBit,
                                    std::memory_order_relaxed);
  } else {
    obs::internal::g_flags.fetch_and(~obs::kSlowOpBit,
                                     std::memory_order_relaxed);
  }
}

uint64_t Trace::SlowOpThresholdNs() {
  return g_slow_op_threshold_ns.load(std::memory_order_relaxed);
}

uint64_t Trace::SlowOpCount() {
  return g_slow_ops.load(std::memory_order_relaxed);
}

void Trace::Instant(const char* name) {
  if (!Enabled()) return;
  ThisThreadRing().Emit(name, NowNanos(), 0, ThisThreadSpans().depth,
                        kPhaseInstant);
}

void Trace::SetRingCapacityForTesting(size_t events) {
  g_ring_capacity.store(events < 16 ? 16 : events,
                        std::memory_order_relaxed);
}

size_t Trace::EventCountForTesting() {
  RingDirectory& dir = Directory();
  std::lock_guard<std::mutex> lock(dir.mu);
  size_t total = 0;
  for (const auto& r : dir.rings) {
    const uint64_t pos = r->pos.load(std::memory_order_acquire);
    total += pos < r->cap ? pos : r->cap;
  }
  return total;
}

void Trace::Reset() {
  {
    RingDirectory& dir = Directory();
    std::lock_guard<std::mutex> lock(dir.mu);
    for (auto it = dir.rings.begin(); it != dir.rings.end();) {
      if (it->use_count() == 1) {
        // Owning thread exited; drop the ring entirely.
        it = dir.rings.erase(it);
      } else {
        (*it)->pos.store(0, std::memory_order_release);
        ++it;
      }
    }
  }
  {
    CaptureState& c = Capture();
    std::lock_guard<std::mutex> lock(c.mu);
    c.active.clear();
    c.retained.clear();
  }
  g_slow_ops.store(0, std::memory_order_relaxed);
}

std::string Trace::ExportChromeJson() {
  JsonWriter w(0);
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();
  RingDirectory& dir = Directory();
  std::lock_guard<std::mutex> lock(dir.mu);
  for (const auto& r : dir.rings) {
    const uint64_t pos = r->pos.load(std::memory_order_acquire);
    const size_t n = pos < r->cap ? static_cast<size_t>(pos) : r->cap;
    for (size_t i = 0; i < n; ++i) {
      const size_t slot = i * 4;
      const auto* name = reinterpret_cast<const char*>(
          r->words[slot + 0].load(std::memory_order_relaxed));
      const uint64_t ts_ns = r->words[slot + 1].load(std::memory_order_relaxed);
      const uint64_t dur_ns =
          r->words[slot + 2].load(std::memory_order_relaxed);
      const uint64_t meta = r->words[slot + 3].load(std::memory_order_relaxed);
      if (name == nullptr) continue;  // torn slot
      const char phase = static_cast<char>((meta >> 48) & 0xff);
      w.BeginObject();
      w.KV("name", name);
      w.KV("cat", CategoryOf(name));
      char ph[2] = {phase, 0};
      w.KV("ph", ph);
      w.KV("ts", static_cast<double>(ts_ns) / 1000.0);
      if (phase == kPhaseComplete)
        w.KV("dur", static_cast<double>(dur_ns) / 1000.0);
      if (phase == kPhaseInstant) w.KV("s", "t");
      w.KV("pid", 1);
      w.KV("tid", static_cast<uint64_t>(r->tid));
      w.EndObject();
    }
  }
  w.EndArray();
  w.KV("displayTimeUnit", "ms");
  w.EndObject();
  return w.TakeString();
}

bool Trace::WriteChromeJson(const std::string& path) {
  const std::string json = ExportChromeJson();
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = fwrite(json.data(), 1, json.size(), f);
  const bool ok = written == json.size() && fclose(f) == 0;
  if (!ok && written == json.size()) {
    // fclose failed after full write; nothing more to do.
  }
  return ok;
}

std::string Trace::ExportToEnvFile() {
  if (!Enabled()) return "";
  const char* env = std::getenv("BG3_TRACE_FILE");
  const std::string path = env != nullptr && env[0] != '\0'
                               ? std::string(env)
                               : std::string("bg3_trace.json");
  return WriteChromeJson(path) ? path : "";
}

std::vector<SlowTrace> Trace::RetainedTraces() {
  CaptureState& c = Capture();
  std::lock_guard<std::mutex> lock(c.mu);
  return std::vector<SlowTrace>(c.retained.begin(), c.retained.end());
}

std::string Trace::RenderTracez() {
  const std::vector<SlowTrace> traces = RetainedTraces();
  JsonWriter w(0);
  w.BeginObject();
  w.KV("slow_op_threshold_us",
       g_slow_op_threshold_ns.load(std::memory_order_relaxed) / 1000);
  w.KV("retained", static_cast<uint64_t>(traces.size()));
  w.Key("traces");
  w.BeginArray();
  for (const SlowTrace& t : traces) {
    w.BeginObject();
    w.KV("trace_id", TraceIdHex(t.trace_id));
    w.KV("root", t.root_name);
    w.KV("workload_class", t.workload_class);
    w.KV("root_dur_us", static_cast<double>(t.root_dur_ns) / 1000.0);
    w.KV("span_count", static_cast<uint64_t>(t.spans.size()));
    w.KV("dropped_spans", t.dropped_spans);
    w.EndObject();
  }
  w.EndArray();
  // chrome://tracing-loadable: load the whole /tracez response directly.
  w.Key("traceEvents");
  w.BeginArray();
  for (const SlowTrace& t : traces) {
    const std::string id_hex = TraceIdHex(t.trace_id);
    for (const SpanRecord& s : t.spans) {
      w.BeginObject();
      w.KV("name", s.name);
      w.KV("cat", CategoryOf(s.name));
      w.KV("ph", "X");
      w.KV("ts", static_cast<double>(s.start_ns) / 1000.0);
      w.KV("dur", static_cast<double>(s.dur_ns) / 1000.0);
      w.KV("pid", 1);
      w.KV("tid", static_cast<uint64_t>(s.tid));
      w.Key("args");
      w.BeginObject();
      w.KV("trace", id_hex);
      w.KV("span", s.span_id);
      w.KV("parent", s.parent_id);
      w.KV("class", t.workload_class);
      w.EndObject();
      w.EndObject();
    }
  }
  w.EndArray();
  w.KV("displayTimeUnit", "ms");
  w.EndObject();
  return w.TakeString();
}

void TraceSpan::Begin(const char* name) {
  name_ = name;
  start_ns_ = NowNanos();
  active_ = true;
  ++ThisThreadSpans().depth;
  Binding& b = tls_binding;
  if (b.trace_id != 0) {
    span_id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
    parent_id_ = b.span_id;
    b.span_id = span_id_;
  }
}

void TraceSpan::End() {
  const uint64_t end_ns = NowNanos();
  const uint64_t dur_ns = end_ns - start_ns_;
  SpanState& state = ThisThreadSpans();
  const uint32_t depth = --state.depth;
  const uint32_t flags = obs::Flags();
  if (flags & obs::kTraceBit)
    ThisThreadRing().Emit(name_, start_ns_, dur_ns, depth, kPhaseComplete);
  if (span_id_ != 0) {
    Binding& b = tls_binding;
    b.span_id = parent_id_;
    if (b.trace_id != 0) {
      AppendSpanToCapture(b.trace_id,
                          {name_, span_id_, parent_id_, start_ns_, dur_ns,
                           ThisThreadTid()});
    }
  }
  if (flags & obs::kSlowOpBit) {
    if (depth > 0) {
      if (state.op_log.size() < SpanState::kMaxOpLog)
        state.op_log.push_back({name_, start_ns_, dur_ns, depth});
    } else {
      const uint64_t threshold =
          g_slow_op_threshold_ns.load(std::memory_order_relaxed);
      if (threshold > 0 && dur_ns >= threshold) {
        g_slow_ops.fetch_add(1, std::memory_order_relaxed);
        MetricsRegistry::Default().GetCounter("bg3.trace.slow_ops")->Inc();
        DumpSlowOp(state, name_, start_ns_, dur_ns);
      }
      state.op_log.clear();
    }
  }
}

OpScope::OpScope(const char* name, const OpContext* ctx) {
  if (ctx == nullptr || ctx->trace_id == 0) return;
  ctx_ = ctx;
  Begin(name);
}

void OpScope::Begin(const char* name) {
  name_ = name;
  start_ns_ = NowNanos();
  active_ = true;
  Binding& b = tls_binding;
  root_ = b.trace_id != ctx_->trace_id;
  if (root_) {
    prev_trace_id_ = b.trace_id;
    prev_span_id_ = b.span_id;
    prev_class_ = b.workload_class;
    b.trace_id = ctx_->trace_id;
    b.span_id = 0;
    b.workload_class = ctx_->workload_class;
    IncTracedRoots();
    StartCapture(ctx_->trace_id, name, ctx_->workload_class_name(),
                 start_ns_);
  }
  span_id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_id_ = b.span_id;
  b.span_id = span_id_;
  ++ThisThreadSpans().depth;
}

void OpScope::End() {
  const uint64_t end_ns = NowNanos();
  const uint64_t dur_ns = end_ns - start_ns_;
  SpanState& state = ThisThreadSpans();
  const uint32_t depth = --state.depth;
  if (obs::Flags() & obs::kTraceBit)
    ThisThreadRing().Emit(name_, start_ns_, dur_ns, depth, kPhaseComplete);
  Binding& b = tls_binding;
  b.span_id = parent_id_;
  AppendSpanToCapture(ctx_->trace_id, {name_, span_id_, parent_id_, start_ns_,
                                       dur_ns, ThisThreadTid()});
  if (!root_) return;

  // Root teardown: restore the thread binding, close the capture, decide
  // retention (tail-based), and fold the request's account into the cost
  // counters.
  b.trace_id = prev_trace_id_;
  b.span_id = prev_span_id_;
  b.workload_class = prev_class_;
  DecTracedRoots();
  std::unique_ptr<ActiveTrace> capture = FinishCapture(ctx_->trace_id);
  state.op_log.clear();

  const uint64_t threshold =
      g_slow_op_threshold_ns.load(std::memory_order_relaxed);
  const bool slow = threshold > 0 && dur_ns >= threshold;
  if (slow) {
    g_slow_ops.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::Default().GetCounter("bg3.trace.slow_ops")->Inc();
    fprintf(stderr,
            "[bg3 slow-op] %s took %.3f ms (threshold %.3f ms) "
            "(trace=%016llx class=%s) retained in /tracez\n",
            name_, dur_ns / 1e6, threshold / 1e6,
            static_cast<unsigned long long>(ctx_->trace_id),
            ctx_->workload_class_name());
  }
  // threshold == 0 means "retain every traced request" (tests, opt-in
  // always-on capture); otherwise only slow roots survive.
  if ((threshold == 0 || slow) && capture != nullptr) {
    SlowTrace st;
    st.trace_id = capture->trace_id;
    st.root_name = capture->root_name;
    st.workload_class = capture->workload_class != nullptr
                            ? capture->workload_class
                            : "default";
    st.root_start_ns = capture->root_start_ns;
    st.root_dur_ns = dur_ns;
    st.dropped_spans = capture->dropped;
    st.spans = std::move(capture->spans);
    RetainTrace(std::move(st));
  }

  if (ctx_->stats != nullptr) {
    CostAccounting::Default().RecordOp(*ctx_->stats,
                                       ctx_->workload_class_name());
  }
}

}  // namespace trace
}  // namespace bg3
