#ifndef BG3_COMMON_THREADPOOL_H_
#define BG3_COMMON_THREADPOOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bg3 {

/// Fixed-size background worker pool used for asynchronous dirty-page
/// flushing (§3.4 "flushed ... by a background thread pool") and GC.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks submitted after Shutdown() are dropped.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and all in-flight tasks finished.
  void Drain();

  /// Stops accepting work, drains the queue, joins all workers. Idempotent.
  void Shutdown();

  size_t QueueDepth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable drain_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int active_ = 0;
  bool shutdown_ = false;
};

}  // namespace bg3

#endif  // BG3_COMMON_THREADPOOL_H_
