#ifndef BG3_COMMON_THREADPOOL_H_
#define BG3_COMMON_THREADPOOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/thread_annotations.h"
#include "common/status.h"

namespace bg3 {

/// Fixed-size background worker pool used for asynchronous dirty-page
/// flushing (§3.4 "flushed ... by a background thread pool") and GC.
///
/// The queue is bounded when `queue_capacity > 0`: Submit() then blocks
/// until space frees up (producer backpressure) while TrySubmit() sheds by
/// returning false — the building block benches and servers use to avoid
/// the unbounded-backlog collapse mode (DESIGN.md §5.5). The default
/// capacity 0 keeps the historical unbounded behavior.
///
/// Queue depth is exported as the registry gauge
/// `bg3.threadpool.pool<N>.queue_depth`.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads, size_t queue_capacity = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task, blocking while a bounded queue is full. Returns
  /// Aborted once Shutdown() ran (the task is not enqueued — previously
  /// such tasks were silently dropped).
  BG3_BLOCKING Status Submit(std::function<void()> task);

  /// Non-blocking enqueue: false when the pool is shut down or a bounded
  /// queue is full (the caller sheds the work).
  bool TrySubmit(std::function<void()> task);

  /// Blocks until the queue is empty and all in-flight tasks finished.
  BG3_BLOCKING void Drain();

  /// Stops accepting work, drains the queue, joins all workers. Idempotent.
  BG3_BLOCKING void Shutdown();

  size_t QueueDepth() const;
  size_t queue_capacity() const { return capacity_; }

 private:
  void WorkerLoop();

  const size_t capacity_;  ///< 0 = unbounded.
  std::string metrics_prefix_;
  Gauge queue_depth_gauge_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable drain_cv_;
  std::condition_variable space_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int active_ = 0;
  bool shutdown_ = false;
};

}  // namespace bg3

#endif  // BG3_COMMON_THREADPOOL_H_
