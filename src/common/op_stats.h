#ifndef BG3_COMMON_OP_STATS_H_
#define BG3_COMMON_OP_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace bg3 {

/// Layer that issued a piece of I/O, for per-request attribution. The
/// request path stamps the current layer into a thread-local (OpLayerScope)
/// on the way down; the cloud store reads it back when it bills bytes to a
/// request's OpStats, so a k-hop read's storage fetches show up as
/// "bwtree", a WAL group flush as "wal", a relocation as "gc" — the
/// breakdown the cost model reports per layer (DESIGN.md §5.8).
enum class OpLayer : uint8_t {
  kApi = 0,
  kQuery,
  kForest,
  kBwtree,
  kWal,
  kGc,
  kReplication,
  kOther,  ///< nothing declared a layer (direct store access, tests).
};
inline constexpr size_t kOpLayerCount = 8;

inline const char* OpLayerName(OpLayer layer) {
  switch (layer) {
    case OpLayer::kApi: return "api";
    case OpLayer::kQuery: return "query";
    case OpLayer::kForest: return "forest";
    case OpLayer::kBwtree: return "bwtree";
    case OpLayer::kWal: return "wal";
    case OpLayer::kGc: return "gc";
    case OpLayer::kReplication: return "replication";
    case OpLayer::kOther: return "other";
  }
  return "other";
}

namespace internal {
/// Innermost declared layer of the calling thread (kOther when none).
/// Function-local rather than a namespace-scope extern: gcc's cross-TU TLS
/// wrapper can hand instrumented callers a null address for the extern form
/// (PR 85400-style), which ubsan flags on freshly spawned worker threads.
/// The accessor form is init-on-first-use and still compiles to a direct
/// TLS slot access for this trivially constructed type.
inline OpLayer& TlsOpLayer() {
  thread_local OpLayer layer = OpLayer::kOther;
  return layer;
}
}  // namespace internal

inline OpLayer CurrentOpLayer() { return internal::TlsOpLayer(); }

/// RAII layer declaration: the innermost scope wins, so a forest op that
/// descends into a Bw-tree bills its storage reads to "bwtree". Costs one
/// thread-local store each way — cheap enough for every hot path.
class OpLayerScope {
 public:
  explicit OpLayerScope(OpLayer layer) : prev_(internal::TlsOpLayer()) {
    internal::TlsOpLayer() = layer;
  }
  ~OpLayerScope() { internal::TlsOpLayer() = prev_; }

  OpLayerScope(const OpLayerScope&) = delete;
  OpLayerScope& operator=(const OpLayerScope&) = delete;

 private:
  const OpLayer prev_;
};

/// Per-request I/O and scheduling account, attached to an OpContext
/// (`ctx->stats`) and populated by every layer the request crosses: cloud
/// reads/appends with byte counts (broken down by issuing layer), WAL
/// appends, cache hits/misses, retry re-attempts, admission queue wait and
/// shed/throttle reasons. A null sink (the default) costs nothing anywhere.
///
/// Fields are relaxed atomics: a single request's work may hop threads
/// (group flush, background warm), and tsan must see the writes as
/// synchronization-free by design. Totals are exact once the request has
/// returned to its caller (no in-flight writers remain).
struct OpStats {
  struct LayerIo {
    std::atomic<uint64_t> cloud_read_ops{0};
    std::atomic<uint64_t> cloud_read_bytes{0};
    std::atomic<uint64_t> cloud_append_ops{0};
    std::atomic<uint64_t> cloud_append_bytes{0};
  };
  /// Cloud I/O by issuing layer, indexed by OpLayer.
  LayerIo layers[kOpLayerCount];

  std::atomic<uint64_t> wal_appends{0};        ///< records handed to the WAL.
  std::atomic<uint64_t> wal_append_bytes{0};   ///< encoded record bytes.
  std::atomic<uint64_t> cache_hits{0};         ///< leaf reads served resident.
  std::atomic<uint64_t> cache_misses{0};       ///< leaf reloads from storage.
  std::atomic<uint64_t> retries{0};            ///< re-attempts spent on I/O.
  std::atomic<uint64_t> queue_wait_us{0};      ///< admission queue residency.
  std::atomic<uint64_t> sheds{0};              ///< times admission refused.
  /// Bitwise OR of core::ThrottleReason bits observed by this request.
  std::atomic<uint32_t> throttle_reasons{0};

  OpStats() = default;
  OpStats(const OpStats&) = delete;
  OpStats& operator=(const OpStats&) = delete;

  // --- recording (all no-ops on a null `s`) --------------------------------
  static void RecordCloudRead(OpStats* s, uint64_t bytes) {
    if (s == nullptr) return;
    LayerIo& io = s->layers[static_cast<size_t>(CurrentOpLayer())];
    io.cloud_read_ops.fetch_add(1, std::memory_order_relaxed);
    io.cloud_read_bytes.fetch_add(bytes, std::memory_order_relaxed);
  }
  static void RecordCloudAppend(OpStats* s, uint64_t bytes) {
    if (s == nullptr) return;
    LayerIo& io = s->layers[static_cast<size_t>(CurrentOpLayer())];
    io.cloud_append_ops.fetch_add(1, std::memory_order_relaxed);
    io.cloud_append_bytes.fetch_add(bytes, std::memory_order_relaxed);
  }
  static void RecordWalAppend(OpStats* s, uint64_t records, uint64_t bytes) {
    if (s == nullptr) return;
    s->wal_appends.fetch_add(records, std::memory_order_relaxed);
    s->wal_append_bytes.fetch_add(bytes, std::memory_order_relaxed);
  }
  static void RecordCacheHit(OpStats* s) {
    if (s != nullptr) s->cache_hits.fetch_add(1, std::memory_order_relaxed);
  }
  static void RecordCacheMiss(OpStats* s) {
    if (s != nullptr) s->cache_misses.fetch_add(1, std::memory_order_relaxed);
  }
  static void RecordRetry(OpStats* s) {
    if (s != nullptr) s->retries.fetch_add(1, std::memory_order_relaxed);
  }
  static void RecordQueueWait(OpStats* s, uint64_t wait_us) {
    if (s != nullptr)
      s->queue_wait_us.fetch_add(wait_us, std::memory_order_relaxed);
  }
  static void RecordShed(OpStats* s, uint32_t throttle_reasons) {
    if (s == nullptr) return;
    s->sheds.fetch_add(1, std::memory_order_relaxed);
    if (throttle_reasons != 0)
      s->throttle_reasons.fetch_or(throttle_reasons,
                                   std::memory_order_relaxed);
  }

  // --- totals across layers ------------------------------------------------
  uint64_t CloudReadOps() const { return SumLayers(&LayerIo::cloud_read_ops); }
  uint64_t CloudReadBytes() const {
    return SumLayers(&LayerIo::cloud_read_bytes);
  }
  uint64_t CloudAppendOps() const {
    return SumLayers(&LayerIo::cloud_append_ops);
  }
  uint64_t CloudAppendBytes() const {
    return SumLayers(&LayerIo::cloud_append_bytes);
  }

  void Reset();
  /// Compact JSON: totals, non-zero per-layer breakdown, scheduling fields.
  std::string ToJson() const;

 private:
  uint64_t SumLayers(std::atomic<uint64_t> LayerIo::* field) const {
    uint64_t sum = 0;
    for (const LayerIo& io : layers)
      sum += (io.*field).load(std::memory_order_relaxed);
    return sum;
  }
};

}  // namespace bg3

#endif  // BG3_COMMON_OP_STATS_H_
