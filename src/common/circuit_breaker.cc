#include "common/circuit_breaker.h"

#include "common/logging.h"

namespace bg3 {

CircuitBreaker::CircuitBreaker(const CircuitBreakerOptions& options,
                               const TimeSource* clock)
    : opts_(options), clock_(clock) {
  BG3_CHECK(clock_ != nullptr);
  state_gauge_.Set(static_cast<int64_t>(State::kClosed));
}

void CircuitBreaker::TransitionLocked(State next) {
  state_.store(static_cast<int>(next), std::memory_order_release);
  state_gauge_.Set(static_cast<int64_t>(next));
}

bool CircuitBreaker::Allow() {
  if (!opts_.enabled) return true;
  if (state() == State::kClosed) return true;

  std::lock_guard<std::mutex> lock(mu_);
  switch (state()) {
    case State::kClosed:
      return true;  // closed while we waited for the lock.
    case State::kOpen: {
      const uint64_t now = clock_->NowUs();
      if (now < opened_at_us_ + opts_.open_cooldown_us) {
        rejected_.Inc();
        return false;
      }
      // Cooldown elapsed: half-open and admit this op as the first probe.
      TransitionLocked(State::kHalfOpen);
      probes_inflight_ = 1;
      probe_successes_ = 0;
      return true;
    }
    case State::kHalfOpen:
      if (probes_inflight_ >= opts_.half_open_probes) {
        rejected_.Inc();
        return false;
      }
      ++probes_inflight_;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  if (!opts_.enabled) return;
  // Hot path: closed with a clean window — nothing to update.
  if (state() == State::kClosed &&
      window_failures_.load(std::memory_order_relaxed) == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  switch (state()) {
    case State::kClosed:
      // A success proves the substrate serves again; forgive the window so
      // unrelated failures minutes apart never accumulate into a trip.
      window_failures_.store(0, std::memory_order_relaxed);
      return;
    case State::kOpen:
      // Straggler from before the trip; the cooldown still applies.
      return;
    case State::kHalfOpen:
      if (probes_inflight_ > 0) --probes_inflight_;
      if (++probe_successes_ >= opts_.close_after_successes) {
        TransitionLocked(State::kClosed);
        window_failures_.store(0, std::memory_order_relaxed);
        probes_inflight_ = 0;
        probe_successes_ = 0;
      }
      return;
  }
}

void CircuitBreaker::RecordError() {
  if (!opts_.enabled) return;
  if (state() == State::kClosed) return;  // only exhausted budgets count.
  std::lock_guard<std::mutex> lock(mu_);
  switch (state()) {
    case State::kClosed:
      return;  // closed while we waited for the lock.
    case State::kOpen:
      opened_at_us_ = clock_->NowUs();
      return;
    case State::kHalfOpen:
      // The probe failed — reopen and restart the cooldown.
      if (probes_inflight_ > 0) --probes_inflight_;
      TransitionLocked(State::kOpen);
      opened_at_us_ = clock_->NowUs();
      trips_.Inc();
      return;
  }
}

void CircuitBreaker::RecordFailure() {
  if (!opts_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t now = clock_->NowUs();
  switch (state()) {
    case State::kClosed: {
      if (now >= window_start_us_ + opts_.failure_window_us) {
        window_start_us_ = now;
        window_failures_.store(0, std::memory_order_relaxed);
      }
      const int failures =
          window_failures_.fetch_add(1, std::memory_order_relaxed) + 1;
      if (failures >= opts_.failure_threshold) {
        TransitionLocked(State::kOpen);
        opened_at_us_ = now;
        trips_.Inc();
      }
      return;
    }
    case State::kOpen:
      // Stragglers keep the cooldown fresh: the substrate is still failing.
      opened_at_us_ = now;
      return;
    case State::kHalfOpen:
      // The probe failed — reopen and restart the cooldown.
      if (probes_inflight_ > 0) --probes_inflight_;
      TransitionLocked(State::kOpen);
      opened_at_us_ = now;
      trips_.Inc();
      return;
  }
}

}  // namespace bg3
