#ifndef BG3_COMMON_RANDOM_H_
#define BG3_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace bg3 {

/// Deterministic xorshift128+ PRNG. Every stochastic component of the repo
/// takes an explicit seed so experiments are reproducible run to run.
class Random {
 public:
  explicit Random(uint64_t seed);

  uint64_t Next();

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

/// Zipf(theta) sampler over [0, n) using the Gray et al. (SIGMOD'94)
/// analytic method, the standard generator for power-law database
/// benchmarks (also used by YCSB). Item 0 is the hottest.
class ZipfGenerator {
 public:
  /// theta in (0, 1); typical social-graph skew is 0.8–0.99.
  ZipfGenerator(uint64_t n, double theta, uint64_t seed);

  uint64_t Next();

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Random rng_;
};

/// Samples a power-law out-degree (heavy-tailed vertex degrees as in §3.2.1
/// Observation 3) with Pareto tail index `alpha` and a minimum degree.
class PowerLawDegree {
 public:
  PowerLawDegree(double alpha, uint32_t min_degree, uint32_t max_degree,
                 uint64_t seed);

  uint32_t Next();

 private:
  double alpha_;
  uint32_t min_degree_;
  uint32_t max_degree_;
  Random rng_;
};

}  // namespace bg3

#endif  // BG3_COMMON_RANDOM_H_
