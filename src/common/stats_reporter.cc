#include "common/stats_reporter.h"

#include <chrono>
#include <cstdio>
#include <utility>

namespace bg3 {

StatsReporter::StatsReporter(const StatsReporterOptions& options,
                             MetricsRegistry* registry)
    : opts_(options),
      registry_(registry != nullptr ? registry : &MetricsRegistry::Default()) {
  sink_ = [this](const std::string& text) {
    if (opts_.path.empty()) {
      fprintf(stderr, "%s\n", text.c_str());
      return;
    }
    FILE* f = fopen(opts_.path.c_str(), "a");
    if (f == nullptr) return;
    fprintf(f, "%s\n", text.c_str());
    fclose(f);
  };
}

StatsReporter::~StatsReporter() { Stop(); }

void StatsReporter::SetSink(std::function<void(const std::string&)> sink) {
  sink_ = std::move(sink);
}

std::string StatsReporter::Render() const {
  return opts_.format == "prometheus" ? registry_->RenderPrometheus()
                                      : registry_->RenderJson(0);
}

void StatsReporter::ReportOnce() {
  sink_(Render());
  reports_.fetch_add(1, std::memory_order_relaxed);
}

void StatsReporter::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      if (cv_.wait_for(lock, std::chrono::milliseconds(opts_.interval_ms),
                       [this] { return stop_; })) {
        break;
      }
      lock.unlock();
      ReportOnce();
      lock.lock();
    }
  });
}

void StatsReporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    running_ = false;
  }
}

}  // namespace bg3
