#ifndef BG3_COMMON_TIMED_SCOPE_H_
#define BG3_COMMON_TIMED_SCOPE_H_

#include <cstdint>
#include <new>

#include "common/clock.h"
#include "common/histogram.h"
#include "common/metrics_registry.h"
#include "common/trace.h"

namespace bg3 {

/// Scoped latency probe: on destruction records the elapsed wall time (ns)
/// into `hist` and, when tracing / slow-op logging is on, emits a trace
/// span named `name`. The common spelling is the BG3_TIMED_SCOPE macro
/// below, which resolves the histogram from the default registry once per
/// call site.
///
/// Cost model (measured in observability_overhead_test, documented in
/// DESIGN.md §5.3):
///  - everything off (SetTimingEnabled(false), no trace): one relaxed
///    atomic load + branch, ~1 ns — safe to leave in the hottest paths.
///  - timing on (default): two clock_gettime calls + one sharded histogram
///    record, ~50 ns.
///  - tracing on: + one ring-buffer emit, ~20 ns.
class TimedScope {
 public:
  TimedScope(Histogram* hist, const char* name) {
    const uint32_t flags = obs::Flags();
    if (flags == 0) return;
    if (flags & obs::kTimingBit) {
      hist_ = hist;
      start_ns_ = NowNanos();
    }
    if (flags & (obs::kTraceBit | obs::kSlowOpBit | obs::kReqTraceBit)) {
      span_.emplace(name);
    }
  }

  ~TimedScope() {
    if (hist_ != nullptr) hist_->Record(NowNanos() - start_ns_);
    // span_ (if any) ends after the record so the span covers only the
    // traced region, not the histogram update — close enough either way.
  }

  TimedScope(const TimedScope&) = delete;
  TimedScope& operator=(const TimedScope&) = delete;

 private:
  // Manual optional<TraceSpan> without <optional> overhead in the fast
  // path: TraceSpan's constructor is trivial when inactive, so holding it
  // unconditionally would also work; the explicit flag keeps intent clear.
  struct SpanSlot {
    alignas(trace::TraceSpan) unsigned char buf[sizeof(trace::TraceSpan)];
    bool engaged = false;
    void emplace(const char* name) {
      new (buf) trace::TraceSpan(name);
      engaged = true;
    }
    ~SpanSlot() {
      if (engaged) reinterpret_cast<trace::TraceSpan*>(buf)->~TraceSpan();
    }
  };

  Histogram* hist_ = nullptr;
  uint64_t start_ns_ = 0;
  SpanSlot span_;
};

}  // namespace bg3

#define BG3_OBS_CONCAT_INNER(a, b) a##b
#define BG3_OBS_CONCAT(a, b) BG3_OBS_CONCAT_INNER(a, b)

/// Times the enclosing scope into the default-registry histogram named
/// `name_literal` (created on first execution of the call site) and emits a
/// trace span of the same name. `name_literal` must be a string literal,
/// conventionally `bg3.<layer>.<op>_ns`.
#define BG3_TIMED_SCOPE(name_literal)                                        \
  static ::bg3::Histogram* const BG3_OBS_CONCAT(bg3_ts_hist_, __LINE__) =    \
      ::bg3::MetricsRegistry::Default().GetHistogram(name_literal);          \
  ::bg3::TimedScope BG3_OBS_CONCAT(bg3_ts_scope_, __LINE__)(                 \
      BG3_OBS_CONCAT(bg3_ts_hist_, __LINE__), name_literal)

/// Variant for call sites that already hold the Histogram*.
#define BG3_TIMED_SCOPE_HIST(hist_ptr, name_literal) \
  ::bg3::TimedScope BG3_OBS_CONCAT(bg3_ts_scope_, __LINE__)(hist_ptr, name_literal)

#endif  // BG3_COMMON_TIMED_SCOPE_H_
