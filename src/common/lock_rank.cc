#include "common/lock_rank.h"

#ifdef BG3_ENABLE_DCHECKS

#include "common/logging.h"

namespace bg3::lock_rank {
namespace {

/// Per-thread stack of held ranked locks. Depth 16 is generous: the deepest
/// static chain bg3-lint extracts today is 3 (api → forest → tree).
struct HeldStack {
  static constexpr int kMaxDepth = 16;
  int ranks[kMaxDepth];
  const char* names[kMaxDepth];
  int depth = 0;
};

HeldStack& Tls() {
  thread_local HeldStack stack;
  return stack;
}

}  // namespace

void NoteAcquire(int rank, const char* name) {
  if (rank == kUnranked) return;
  HeldStack& s = Tls();
  BG3_CHECK(s.depth < HeldStack::kMaxDepth)
      << "lock-rank: held-lock stack overflow acquiring " << name;
  if (s.depth > 0) {
    const int top = s.ranks[s.depth - 1];
    BG3_CHECK(rank > top)
        << "lock-rank violation: acquiring \"" << name << "\" (rank " << rank
        << ") while holding \"" << s.names[s.depth - 1] << "\" (rank " << top
        << "); the statically extracted order (src/common/lock_rank_gen.h) "
           "requires strictly increasing ranks — re-run "
           "scripts/bg3_lint/run.py to see the acquisition-order graph";
  }
  s.ranks[s.depth] = rank;
  s.names[s.depth] = name;
  ++s.depth;
}

void NoteTryAcquire(int rank, const char* name) {
  if (rank == kUnranked) return;
  HeldStack& s = Tls();
  BG3_CHECK(s.depth < HeldStack::kMaxDepth)
      << "lock-rank: held-lock stack overflow try-acquiring " << name;
  s.ranks[s.depth] = rank;
  s.names[s.depth] = name;
  ++s.depth;
}

void NoteRelease(int rank) {
  if (rank == kUnranked) return;
  HeldStack& s = Tls();
  // Releases are almost always LIFO (RAII guards), but explicit
  // Lock()/Unlock() pairs may interleave; drop the most recent matching
  // entry wherever it sits.
  for (int i = s.depth - 1; i >= 0; --i) {
    if (s.ranks[i] != rank) continue;
    for (int j = i; j + 1 < s.depth; ++j) {
      s.ranks[j] = s.ranks[j + 1];
      s.names[j] = s.names[j + 1];
    }
    --s.depth;
    return;
  }
  BG3_CHECK(false) << "lock-rank: releasing rank " << rank
                   << " that this thread does not hold";
}

int HeldDepth() { return Tls().depth; }

int TopRank() {
  const HeldStack& s = Tls();
  return s.depth == 0 ? kUnranked : s.ranks[s.depth - 1];
}

}  // namespace bg3::lock_rank

#endif  // BG3_ENABLE_DCHECKS
