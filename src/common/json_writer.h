#ifndef BG3_COMMON_JSON_WRITER_H_
#define BG3_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <string>

namespace bg3 {

/// Minimal append-only JSON emitter (no external deps). Produces compact or
/// indented output; used by the metrics registry snapshot, the chrome-trace
/// exporter, and the bench BENCH_<name>.json files.
///
/// Usage is push/pop style; the writer tracks nesting and inserts commas:
///
///   JsonWriter w(/*indent=*/2);
///   w.BeginObject();
///   w.Key("count"); w.Value(3);
///   w.Key("series"); w.BeginArray();
///   w.Value("a"); w.Value(1.5);
///   w.EndArray();
///   w.EndObject();
///   std::string s = w.TakeString();
///
/// Misuse (Key outside an object, unbalanced End) is the caller's bug; the
/// writer keeps going and produces invalid JSON rather than aborting, so a
/// malformed metrics dump never takes the process down.
class JsonWriter {
 public:
  /// indent == 0 emits compact single-line JSON.
  explicit JsonWriter(int indent = 0) : indent_(indent) {}

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Emits `"name":` — must be followed by a Value or Begin*.
  void Key(const std::string& name);

  void Value(const std::string& v);
  void Value(const char* v);
  void Value(int64_t v);
  void Value(uint64_t v);
  void Value(int v) { Value(static_cast<int64_t>(v)); }
  void Value(double v);
  void Value(bool v);
  void Null();

  /// Convenience: Key + Value.
  template <typename T>
  void KV(const std::string& name, const T& v) {
    Key(name);
    Value(v);
  }

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

  static std::string Escape(const std::string& s);

 private:
  void Prefix(bool is_key);
  void NewlineIndent();

  std::string out_;
  int indent_ = 0;
  int depth_ = 0;
  // Whether the current nesting level already holds an element (comma
  // needed); bit i = level i. 64 levels is far beyond any dump we emit.
  uint64_t has_elem_ = 0;
  bool after_key_ = false;
};

}  // namespace bg3

#endif  // BG3_COMMON_JSON_WRITER_H_
