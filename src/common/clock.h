#ifndef BG3_COMMON_CLOCK_H_
#define BG3_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace bg3 {

/// Wall-clock helpers (monotonic).
uint64_t NowMicros();
uint64_t NowNanos();

/// A monotonically advancing logical clock in microseconds shared by the
/// simulated cloud storage and the replication layer.
///
/// The paper's shared storage has millisecond-level latency; sleeping for
/// real milliseconds would make the latency experiments (Figs. 13/14) take
/// hours. Instead each simulated I/O *advances* this clock by its modelled
/// cost, and latency measurements are taken against the virtual time line.
/// Throughput experiments ignore the virtual clock and measure wall time of
/// the in-memory code paths.
class VirtualClock {
 public:
  VirtualClock() : now_us_(0) {}

  VirtualClock(const VirtualClock&) = delete;
  VirtualClock& operator=(const VirtualClock&) = delete;

  uint64_t NowUs() const { return now_us_.load(std::memory_order_acquire); }

  /// Advances the clock by `delta_us` and returns the new time. Models an
  /// operation that occupies the shared resource for `delta_us`.
  uint64_t Advance(uint64_t delta_us) {
    return now_us_.fetch_add(delta_us, std::memory_order_acq_rel) + delta_us;
  }

  /// Moves the clock forward to at least `target_us` (models waiting until
  /// an event completes). Returns the resulting time.
  uint64_t AdvanceTo(uint64_t target_us) {
    uint64_t cur = now_us_.load(std::memory_order_acquire);
    while (cur < target_us &&
           !now_us_.compare_exchange_weak(cur, target_us,
                                          std::memory_order_acq_rel)) {
    }
    return cur < target_us ? target_us : cur;
  }

  void Reset() { now_us_.store(0, std::memory_order_release); }

 private:
  std::atomic<uint64_t> now_us_;
};

}  // namespace bg3

#endif  // BG3_COMMON_CLOCK_H_
