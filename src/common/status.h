#ifndef BG3_COMMON_STATUS_H_
#define BG3_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

/// [[nodiscard]] spelled through a macro so generated code and the lint
/// fixtures can detect the retrofit, and so it can be disabled wholesale on
/// a compiler that mishandles class-level nodiscard. Applied to the *types*
/// Status and Result<T>: every function returning one of them by value
/// becomes warn-on-discard without per-declaration annotations (bg3-lint's
/// status-discard pass enforces the same rule ahead of compilation, see
/// scripts/bg3_lint/).
#ifndef BG3_NODISCARD
#define BG3_NODISCARD [[nodiscard]]
#endif

/// Explicit sink for a deliberately discarded Status/Result. Grep-able and
/// recognized by bg3-lint's status-discard pass as the one sanctioned way to
/// drop an error: best-effort shutdown paths, metrics-only probes, and
/// tests that only care about a side effect. Anything else must check,
/// propagate (BG3_RETURN_IF_ERROR), or assert on the value.
#define BG3_IGNORE_STATUS(expr)                    \
  do {                                             \
    const auto& _bg3_ignored_status = (expr);      \
    static_cast<void>(_bg3_ignored_status);        \
  } while (false)

namespace bg3 {

/// RocksDB-style status object used across the codebase instead of
/// exceptions. Cheap to copy when OK (no allocation), carries a message
/// otherwise. Declared BG3_NODISCARD: silently dropping a Status is a bug
/// class this codebase mechanically rejects (compiler + bg3-lint).
class BG3_NODISCARD Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound,
    kCorruption,
    kInvalidArgument,
    kIOError,
    kBusy,
    kNotSupported,
    kAborted,
    /// The operation's OpContext deadline expired before it completed.
    kDeadlineExceeded,
    /// Load was shed: admission queue full, watermark throttle, tripped
    /// circuit breaker. Retrying immediately is pointless; back off.
    kOverloaded,
    /// The caller's fencing term has been superseded: a newer leader holds
    /// the stream (DESIGN.md §5.10). Never retryable — the writer has been
    /// deposed and must drain, not resubmit.
    kFenced,
  };

  Status() : code_(Code::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg = "") {
    return Status(Code::kNotFound, msg);
  }
  static Status Corruption(std::string_view msg = "") {
    return Status(Code::kCorruption, msg);
  }
  static Status InvalidArgument(std::string_view msg = "") {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status IOError(std::string_view msg = "") {
    return Status(Code::kIOError, msg);
  }
  static Status Busy(std::string_view msg = "") {
    return Status(Code::kBusy, msg);
  }
  static Status NotSupported(std::string_view msg = "") {
    return Status(Code::kNotSupported, msg);
  }
  static Status Aborted(std::string_view msg = "") {
    return Status(Code::kAborted, msg);
  }
  static Status DeadlineExceeded(std::string_view msg = "") {
    return Status(Code::kDeadlineExceeded, msg);
  }
  static Status Overloaded(std::string_view msg = "") {
    return Status(Code::kOverloaded, msg);
  }
  static Status Fenced(std::string_view msg = "") {
    return Status(Code::kFenced, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsDeadlineExceeded() const {
    return code_ == Code::kDeadlineExceeded;
  }
  bool IsOverloaded() const { return code_ == Code::kOverloaded; }
  bool IsFenced() const { return code_ == Code::kFenced; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable "<code>: <message>" string for logs and tests.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Status(Code code, std::string_view msg) : code_(code), msg_(msg) {}

  Code code_;
  std::string msg_;
};

}  // namespace bg3

/// Propagates a non-OK status to the caller.
#define BG3_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::bg3::Status _bg3_status = (expr);          \
    if (!_bg3_status.ok()) return _bg3_status;   \
  } while (false)

#endif  // BG3_COMMON_STATUS_H_
