#ifndef BG3_COMMON_CODING_H_
#define BG3_COMMON_CODING_H_

#include <cstdint>
#include <string>

#include "common/slice.h"

namespace bg3 {

// Little-endian fixed-width and LEB128 varint encoders/decoders used by all
// on-"disk" formats (pages, WAL records, SSTables). Decoders return false on
// truncated input instead of reading out of bounds.

void PutFixed16(std::string* dst, uint16_t value);
void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);

uint16_t DecodeFixed16(const char* p);
uint32_t DecodeFixed32(const char* p);
uint64_t DecodeFixed64(const char* p);

bool GetFixed16(Slice* input, uint16_t* value);
bool GetFixed32(Slice* input, uint32_t* value);
bool GetFixed64(Slice* input, uint64_t* value);

void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);

/// Appends a varint32 length prefix followed by the bytes of `value`.
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);
bool GetLengthPrefixedSlice(Slice* input, Slice* result);

/// Number of bytes PutVarint64 would append for `value`.
size_t VarintLength(uint64_t value);

}  // namespace bg3

#endif  // BG3_COMMON_CODING_H_
