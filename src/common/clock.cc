#include "common/clock.h"

#include <chrono>

namespace bg3 {

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace bg3
