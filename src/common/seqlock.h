#ifndef BG3_COMMON_SEQLOCK_H_
#define BG3_COMMON_SEQLOCK_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace bg3 {

/// Lock-free published snapshot of a small trivially-copyable value.
///
/// Readers never block and never touch a mutex — the use case is hot-path
/// observers (checkpoint cut capture reading the WAL committed cursor, the
/// backlog watermark) that must not queue behind the pipeline's internal
/// locks. Writers must be externally serialized (the WAL ledger updates its
/// cursors under the pipeline mutex); concurrent Write() calls are a bug.
///
/// The value is stored as relaxed atomic words bracketed by an odd/even
/// version counter, so torn reads are detected and retried rather than
/// observed — and every access is an atomic access, which keeps the pattern
/// clean under TSAN (a byte-wise seqlock over plain storage is a data race
/// by the letter of the memory model even though the torn value is
/// discarded).
template <typename T>
class SeqLock {
  static_assert(std::is_trivially_copyable_v<T>,
                "SeqLock values are copied as raw words");

 public:
  SeqLock() {
    T zero{};
    StoreWords(zero);
  }

  /// Publishes `v`. Callers serialize writers externally.
  void Write(const T& v) {
    const uint32_t ver = version_.load(std::memory_order_relaxed);
    version_.store(ver + 1, std::memory_order_relaxed);  // odd: write begun
    std::atomic_thread_fence(std::memory_order_release);
    StoreWords(v);
    version_.store(ver + 2, std::memory_order_release);  // even: consistent
  }

  /// Returns a consistent snapshot; retries while a write is in progress.
  T Read() const {
    for (;;) {
      const uint32_t before = version_.load(std::memory_order_acquire);
      if (before & 1) continue;  // writer mid-flight
      T out;
      LoadWords(&out);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (version_.load(std::memory_order_relaxed) == before) return out;
    }
  }

 private:
  static constexpr size_t kWords = (sizeof(T) + 7) / 8;

  void StoreWords(const T& v) {
    uint64_t raw[kWords] = {};
    std::memcpy(raw, &v, sizeof(T));
    for (size_t i = 0; i < kWords; ++i) {
      words_[i].store(raw[i], std::memory_order_relaxed);
    }
  }

  void LoadWords(T* out) const {
    uint64_t raw[kWords];
    for (size_t i = 0; i < kWords; ++i) {
      raw[i] = words_[i].load(std::memory_order_relaxed);
    }
    std::memcpy(out, raw, sizeof(T));
  }

  std::atomic<uint32_t> version_{0};
  std::atomic<uint64_t> words_[kWords];
};

}  // namespace bg3

#endif  // BG3_COMMON_SEQLOCK_H_
