#ifndef BG3_COMMON_COMMIT_SEQUENCER_H_
#define BG3_COMMON_COMMIT_SEQUENCER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/op_context.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace bg3 {

/// The commit-waiter primitive of the pipelined WAL (DESIGN.md §5.9): a
/// monotone commit index plus blocking waiters. The pipeline's ledger calls
/// Advance(n) as batches acknowledge in order; callers holding a ticket
/// (their record's cumulative enqueue index) call WaitReached(ticket) and
/// wake exactly when everything up to and including their record is
/// durable — acknowledgment order is commit-index order, never completion
/// order.
///
/// Disturb() wakes every waiter without advancing, returning Busy from
/// their waits; the pipeline uses it to surface an append failure to
/// waiters immediately (the caller then reads the pipeline's error under
/// its own lock). Waits slice on the OpContext deadline, so an expired
/// context stops waiting even though the commit index may advance later.
class CommitSequencer {
 public:
  CommitSequencer() = default;
  CommitSequencer(const CommitSequencer&) = delete;
  CommitSequencer& operator=(const CommitSequencer&) = delete;

  /// Lock-free read of the current commit index.
  uint64_t current() const { return value_.load(std::memory_order_acquire); }

  /// Monotone max-advance; wakes waiters at or below `v`.
  void Advance(uint64_t v) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      uint64_t prev = value_.load(std::memory_order_relaxed);
      if (v <= prev) return;
      value_.store(v, std::memory_order_release);
    }
    cv_.notify_all();
  }

  /// Wakes all current waiters with Status::Busy (they re-check their
  /// pipeline's error state). Waits that begin after the Disturb() only see
  /// it if they have not yet observed their target.
  void Disturb() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++disturb_epoch_;
    }
    cv_.notify_all();
  }

  /// Disturb-epoch snapshot for the two-phase wait: capture the epoch,
  /// re-check the caller's own failure state, then WaitReached with the
  /// snapshot — a Disturb between the check and the wait is then never
  /// missed (the wait returns Busy immediately on the epoch mismatch).
  uint64_t disturb_epoch() const {
    std::lock_guard<std::mutex> lock(mu_);
    return disturb_epoch_;
  }

  /// Blocks until current() >= target, the context deadline expires, or a
  /// Disturb() arrives after `epoch` was captured (Busy — the caller
  /// re-checks its pipeline's error state and re-enters with a fresh
  /// snapshot). Returns OK / DeadlineExceeded / Busy respectively.
  BG3_BLOCKING Status WaitReached(uint64_t target, uint64_t epoch,
                                  const OpContext* ctx) {
    if (current() >= target) return Status::OK();
    std::unique_lock<std::mutex> lock(mu_);
    while (value_.load(std::memory_order_relaxed) < target) {
      if (disturb_epoch_ != epoch) {
        return Status::Busy("commit wait disturbed");
      }
      BG3_RETURN_IF_ERROR(CheckDeadline(ctx, "commit wait"));
      // Slice the wait: deadlines may run on a simulated clock that a cv
      // timeout cannot observe, and Disturb/Advance wakeups re-check the
      // predicate anyway.
      cv_.wait_for(lock, std::chrono::milliseconds(2));
    }
    return Status::OK();
  }

  /// One-phase form: snapshots the epoch itself. Only safe when the caller
  /// has no pre-wait failure state to miss.
  BG3_BLOCKING Status WaitReached(uint64_t target, const OpContext* ctx) {
    return WaitReached(target, disturb_epoch(), ctx);
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<uint64_t> value_{0};
  uint64_t disturb_epoch_ BG3_GUARDED_BY(mu_) = 0;
};

}  // namespace bg3

#endif  // BG3_COMMON_COMMIT_SEQUENCER_H_
