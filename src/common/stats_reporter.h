#ifndef BG3_COMMON_STATS_REPORTER_H_
#define BG3_COMMON_STATS_REPORTER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "common/metrics_registry.h"

namespace bg3 {

struct StatsReporterOptions {
  uint64_t interval_ms = 10'000;
  /// "json" (one compact object per report) or "prometheus" (text
  /// exposition format).
  std::string format = "json";
  /// File the reports are appended to; empty = stderr.
  std::string path;
};

/// Background thread that periodically renders the registry and hands the
/// text to a sink (default: append to options.path or stderr). The real
/// system would expose an HTTP /metrics endpoint here; a file/stderr sink
/// keeps the reproduction dependency-free while exercising the same
/// snapshot path.
class StatsReporter {
 public:
  /// `registry` defaults to MetricsRegistry::Default().
  explicit StatsReporter(const StatsReporterOptions& options,
                         MetricsRegistry* registry = nullptr);
  ~StatsReporter();

  StatsReporter(const StatsReporter&) = delete;
  StatsReporter& operator=(const StatsReporter&) = delete;

  /// Replaces the output sink (call before Start).
  void SetSink(std::function<void(const std::string&)> sink);

  /// Idempotent; spawns the reporting thread.
  void Start();
  /// Blocks until the thread is joined. Called by the destructor.
  void Stop();

  /// One synchronous report through the sink (also used by the thread).
  void ReportOnce();

  uint64_t reports() const { return reports_; }

 private:
  std::string Render() const;

  const StatsReporterOptions opts_;
  MetricsRegistry* const registry_;
  std::function<void(const std::string&)> sink_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool running_ = false;
  std::thread thread_;
  std::atomic<uint64_t> reports_{0};
};

}  // namespace bg3

#endif  // BG3_COMMON_STATS_REPORTER_H_
