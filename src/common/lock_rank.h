#ifndef BG3_COMMON_LOCK_RANK_H_
#define BG3_COMMON_LOCK_RANK_H_

/// Debug-build runtime validation of the statically extracted lock
/// acquisition order (DESIGN.md §5.6).
///
/// bg3-lint's lock-rank pass walks every Mutex/SharedMutex acquisition in
/// bwtree/forest/gc/wal/cloud/replication, extracts the "A held while B is
/// acquired" edges, fails the build on cycles, and emits the resulting
/// topological ranking as `common/lock_rank_gen.h` (regenerate with
/// `python3 scripts/bg3_lint/run.py --emit-lock-ranks src/common/lock_rank_gen.h`).
///
/// This header is the dynamic half: ranked mutexes (Mutex::SetRank /
/// SharedMutex::SetRank, wired in each owning class's constructor) push
/// their rank onto a thread-local held stack on acquisition. Acquiring a
/// ranked lock while holding one of equal or higher rank is an order
/// violation the static pass proved cannot be part of any deadlock-free
/// schedule — it aborts immediately (BG3_CHECK) naming both locks, instead
/// of deadlocking some future run. Unranked locks (rank kUnranked, e.g.
/// per-page leaf latches, which are ordered dynamically by latch coupling,
/// or locks private to tests) opt out entirely.
///
/// All checking compiles away unless BG3_ENABLE_DCHECKS is defined.

namespace bg3::lock_rank {

/// Rank of a mutex that does not participate in order checking.
inline constexpr int kUnranked = 0;

#ifdef BG3_ENABLE_DCHECKS

/// Validates `rank` against the calling thread's held stack and records the
/// acquisition. Called by Mutex/SharedMutex immediately before blocking on
/// the underlying lock (so a violation aborts rather than deadlocks).
/// No-op when rank == kUnranked.
void NoteAcquire(int rank, const char* name);

/// Records a successful try-acquisition. No order check: a try-lock cannot
/// deadlock, and opportunistic paths legitimately probe out of order — but
/// the lock still joins the held stack so everything acquired *after* it is
/// validated against it.
void NoteTryAcquire(int rank, const char* name);

/// Removes the most recent acquisition of `rank` from the held stack.
void NoteRelease(int rank);

/// Number of ranked locks the calling thread currently holds (tests).
int HeldDepth();

/// Highest rank currently held by the calling thread, kUnranked if none
/// (tests).
int TopRank();

#else  // !BG3_ENABLE_DCHECKS

inline void NoteAcquire(int /*rank*/, const char* /*name*/) {}
inline void NoteTryAcquire(int /*rank*/, const char* /*name*/) {}
inline void NoteRelease(int /*rank*/) {}
inline int HeldDepth() { return 0; }
inline int TopRank() { return kUnranked; }

#endif  // BG3_ENABLE_DCHECKS

}  // namespace bg3::lock_rank

#include "common/lock_rank_gen.h"

#endif  // BG3_COMMON_LOCK_RANK_H_
