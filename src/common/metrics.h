#ifndef BG3_COMMON_METRICS_H_
#define BG3_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>

namespace bg3 {

/// Cache-line padded atomic counter shard; Counter stripes increments across
/// shards so hot counters (per-op I/O stats) do not serialize writers.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n);
  void Inc() { Add(1); }
  uint64_t Get() const;

  /// Zeroes the counter shard-by-shard. Snapshot consistency contract:
  ///  - Reset() concurrent with Add() is not atomic across shards: an
  ///    increment racing the reset lands entirely before or entirely after
  ///    it (per-shard atomicity) — it is either wiped with the old epoch or
  ///    survives into the new one, never split.
  ///  - Get() concurrent with Reset() may observe a partial mix of old and
  ///    new shards, i.e. any value between 0 and the pre-reset total.
  /// Callers that need an exact epoch boundary (benches, tests) must reset
  /// at quiescence; production counters are monotonic and never reset —
  /// rate computation belongs in the scraper, Prometheus-style.
  void Reset();

 private:
  static constexpr int kShards = 16;
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  Shard shards_[kShards];
};

/// Unsharded atomic counter for per-instance stats where thousands to
/// millions of instances may exist (per-tree counters in a forest): 8 bytes
/// instead of Counter's padded shard array. Slightly more contended under
/// heavy concurrency; use Counter for process-global hot counters.
class LightCounter {
 public:
  LightCounter() = default;
  LightCounter(const LightCounter&) = delete;
  LightCounter& operator=(const LightCounter&) = delete;

  void Add(uint64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void Inc() { Add(1); }
  uint64_t Get() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Simple settable gauge (resident bytes, live pages, ...).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  void Sub(int64_t d) { v_.fetch_sub(d, std::memory_order_relaxed); }
  int64_t Get() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

// The process-wide named-metrics registry lives in
// common/metrics_registry.h; it owns Counters/Gauges/Histograms by name and
// renders Prometheus/JSON snapshots.

}  // namespace bg3

#endif  // BG3_COMMON_METRICS_H_
