#ifndef BG3_COMMON_LOGGING_H_
#define BG3_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace bg3 {
namespace internal_logging {

/// Collects the streamed message and aborts the process on destruction.
/// Used only by BG3_CHECK; BG3 has no fatal paths in normal operation.
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* expr) {
    stream_ << "BG3_CHECK failed at " << file << ":" << line << ": " << expr
            << " ";
  }
  ~CheckFailStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

struct Voidify {
  void operator&(const CheckFailStream&) {}
};

}  // namespace internal_logging
}  // namespace bg3

/// Invariant check; always on (the cost is negligible relative to I/O paths).
#define BG3_CHECK(cond)                         \
  (cond) ? (void)0                              \
         : ::bg3::internal_logging::Voidify() & \
               ::bg3::internal_logging::CheckFailStream(__FILE__, __LINE__, #cond)

#define BG3_CHECK_EQ(a, b) BG3_CHECK((a) == (b))
#define BG3_CHECK_NE(a, b) BG3_CHECK((a) != (b))
#define BG3_CHECK_LE(a, b) BG3_CHECK((a) <= (b))
#define BG3_CHECK_LT(a, b) BG3_CHECK((a) < (b))
#define BG3_CHECK_GE(a, b) BG3_CHECK((a) >= (b))
#define BG3_CHECK_GT(a, b) BG3_CHECK((a) > (b))

#endif  // BG3_COMMON_LOGGING_H_
