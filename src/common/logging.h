#ifndef BG3_COMMON_LOGGING_H_
#define BG3_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace bg3 {
namespace internal_logging {

/// Collects the streamed message and aborts the process on destruction.
/// Used only by BG3_CHECK; BG3 has no fatal paths in normal operation.
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* expr) {
    stream_ << "BG3_CHECK failed at " << file << ":" << line << ": " << expr
            << " ";
  }
  ~CheckFailStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

struct Voidify {
  void operator&(const CheckFailStream&) {}
};

}  // namespace internal_logging
}  // namespace bg3

/// Invariant check; always on (the cost is negligible relative to I/O paths).
#define BG3_CHECK(cond)                         \
  (cond) ? (void)0                              \
         : ::bg3::internal_logging::Voidify() & \
               ::bg3::internal_logging::CheckFailStream(__FILE__, __LINE__, #cond)

#define BG3_CHECK_EQ(a, b) BG3_CHECK((a) == (b))
#define BG3_CHECK_NE(a, b) BG3_CHECK((a) != (b))
#define BG3_CHECK_LE(a, b) BG3_CHECK((a) <= (b))
#define BG3_CHECK_LT(a, b) BG3_CHECK((a) < (b))
#define BG3_CHECK_GE(a, b) BG3_CHECK((a) >= (b))
#define BG3_CHECK_GT(a, b) BG3_CHECK((a) > (b))

/// BG3_ASSERT is the always-on precondition spelling — same behavior as
/// BG3_CHECK, kept as a distinct name so call sites read as API contracts
/// ("the caller must...") rather than internal consistency checks.
#define BG3_ASSERT(cond) BG3_CHECK(cond)
#define BG3_ASSERT_EQ(a, b) BG3_CHECK_EQ(a, b)
#define BG3_ASSERT_NE(a, b) BG3_CHECK_NE(a, b)
#define BG3_ASSERT_LE(a, b) BG3_CHECK_LE(a, b)
#define BG3_ASSERT_LT(a, b) BG3_CHECK_LT(a, b)
#define BG3_ASSERT_GE(a, b) BG3_CHECK_GE(a, b)
#define BG3_ASSERT_GT(a, b) BG3_CHECK_GT(a, b)

/// Debug invariant checks. Enabled by default (BG3_ENABLE_DCHECKS is added
/// as a compile definition by CMake unless -DBG3_ENABLE_DCHECKS=OFF); a
/// production-tuned build turns them off and every BG3_DCHECK compiles to
/// nothing (the condition is never evaluated but must still parse).
///
/// Use BG3_DCHECK for O(1) state checks on hot paths and for the structural
/// invariant walkers (PageIndex::CheckInvariants, forest split-out checks,
/// GC extent accounting) whose cost would be unacceptable always-on.
#if defined(BG3_ENABLE_DCHECKS)
#define BG3_DCHECK_IS_ON() 1
#define BG3_DCHECK(cond) BG3_CHECK(cond)
#else
#define BG3_DCHECK_IS_ON() 0
// `true || (cond)` short-circuits: the condition is parsed, never evaluated,
// and the whole statement folds away.
#define BG3_DCHECK(cond) BG3_CHECK(true || (cond))
#endif

#define BG3_DCHECK_EQ(a, b) BG3_DCHECK((a) == (b))
#define BG3_DCHECK_NE(a, b) BG3_DCHECK((a) != (b))
#define BG3_DCHECK_LE(a, b) BG3_DCHECK((a) <= (b))
#define BG3_DCHECK_LT(a, b) BG3_DCHECK((a) < (b))
#define BG3_DCHECK_GE(a, b) BG3_DCHECK((a) >= (b))
#define BG3_DCHECK_GT(a, b) BG3_DCHECK((a) > (b))

#endif  // BG3_COMMON_LOGGING_H_
