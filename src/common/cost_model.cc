#include "common/cost_model.h"

#include <cmath>

#include "common/json_writer.h"
#include "common/metrics_registry.h"

namespace bg3 {

namespace {

uint64_t ToNanoUsd(double usd) {
  if (usd <= 0.0) return 0;
  return static_cast<uint64_t>(std::llround(usd * 1e9));
}

bool HasPrefix(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

CostAccounting& CostAccounting::Default() {
  static CostAccounting* acc = new CostAccounting();
  return *acc;
}

void CostAccounting::RecordOp(const OpStats& s, const char* workload_class) {
  CostModel model(model_options());
  MetricsRegistry& reg = MetricsRegistry::Default();

  double total_usd = 0.0;
  for (size_t i = 0; i < kOpLayerCount; ++i) {
    const OpStats::LayerIo& io = s.layers[i];
    const uint64_t r_ops = io.cloud_read_ops.load(std::memory_order_relaxed);
    const uint64_t r_bytes =
        io.cloud_read_bytes.load(std::memory_order_relaxed);
    const uint64_t a_ops = io.cloud_append_ops.load(std::memory_order_relaxed);
    const uint64_t a_bytes =
        io.cloud_append_bytes.load(std::memory_order_relaxed);
    if (r_ops == 0 && a_ops == 0 && r_bytes == 0 && a_bytes == 0) continue;
    const double layer_usd = model.ReadCostUsd(r_ops, r_bytes) +
                             model.WriteCostUsd(a_ops, a_bytes);
    total_usd += layer_usd;
    reg.GetCounter(std::string("bg3.cost.layer.") +
                   OpLayerName(static_cast<OpLayer>(i)) + ".nanousd")
        ->Add(ToNanoUsd(layer_usd));
  }

  const char* cls =
      workload_class != nullptr && workload_class[0] != '\0' ? workload_class
                                                             : "default";
  reg.GetCounter(std::string("bg3.cost.class.") + cls + ".nanousd")
      ->Add(ToNanoUsd(total_usd));
  reg.GetCounter("bg3.cost.total_nanousd")->Add(ToNanoUsd(total_usd));
  reg.GetCounter("bg3.cost.requests")->Inc();
}

std::string RenderCostz() {
  const CostModelOptions opts = CostAccounting::Default().model_options();
  const CostModel model(opts);
  const MetricsRegistry::Snapshot snap =
      MetricsRegistry::Default().TakeSnapshot();

  // Process-wide cloud bill: sum every store instance's I/O counters and
  // total_bytes callbacks (names `bg3.cloud.store<N>.<field>`).
  uint64_t read_ops = 0, read_bytes = 0, append_ops = 0, append_bytes = 0;
  uint64_t stored_bytes = 0;
  for (const auto& [name, value] : snap.counters) {
    if (!HasPrefix(name, "bg3.cloud.")) continue;
    if (HasSuffix(name, ".read_ops")) read_ops += value;
    else if (HasSuffix(name, ".read_bytes")) read_bytes += value;
    else if (HasSuffix(name, ".append_ops")) append_ops += value;
    else if (HasSuffix(name, ".append_bytes")) append_bytes += value;
    else if (HasSuffix(name, ".total_bytes")) stored_bytes += value;
  }

  const double read_usd = model.ReadCostUsd(read_ops, read_bytes);
  const double write_usd = model.WriteCostUsd(append_ops, append_bytes);
  const double storage_usd = model.StorageCostUsdPerMonth(stored_bytes);

  JsonWriter w(0);
  w.BeginObject();
  w.Key("pricing");
  w.BeginObject();
  w.KV("usd_per_read_op", opts.usd_per_read_op);
  w.KV("usd_per_write_op", opts.usd_per_write_op);
  w.KV("usd_per_gb_read", opts.usd_per_gb_read);
  w.KV("usd_per_gb_written", opts.usd_per_gb_written);
  w.KV("usd_per_gb_month_stored", opts.usd_per_gb_month_stored);
  w.EndObject();

  w.Key("cloud");
  w.BeginObject();
  w.KV("read_ops", read_ops);
  w.KV("read_bytes", read_bytes);
  w.KV("append_ops", append_ops);
  w.KV("append_bytes", append_bytes);
  w.KV("stored_bytes", stored_bytes);
  w.KV("read_cost_usd", read_usd);
  w.KV("write_cost_usd", write_usd);
  w.KV("storage_cost_usd_per_month", storage_usd);
  w.KV("total_cost_usd", read_usd + write_usd + storage_usd);
  w.EndObject();

  w.KV("requests_accounted", snap.counters.count("bg3.cost.requests")
                                 ? snap.counters.at("bg3.cost.requests")
                                 : 0);
  w.KV("accounted_total_usd",
       snap.counters.count("bg3.cost.total_nanousd")
           ? snap.counters.at("bg3.cost.total_nanousd") / 1e9
           : 0.0);

  // Per-request attribution, folded in by trace::OpScope via RecordOp.
  const std::string class_prefix = "bg3.cost.class.";
  const std::string layer_prefix = "bg3.cost.layer.";
  const std::string nano_suffix = ".nanousd";
  w.Key("by_class");
  w.BeginObject();
  for (const auto& [name, value] : snap.counters) {
    if (!HasPrefix(name, class_prefix) || !HasSuffix(name, nano_suffix))
      continue;
    w.KV(name.substr(class_prefix.size(),
                     name.size() - class_prefix.size() - nano_suffix.size()),
         value / 1e9);
  }
  w.EndObject();
  w.Key("by_layer");
  w.BeginObject();
  for (const auto& [name, value] : snap.counters) {
    if (!HasPrefix(name, layer_prefix) || !HasSuffix(name, nano_suffix))
      continue;
    w.KV(name.substr(layer_prefix.size(),
                     name.size() - layer_prefix.size() - nano_suffix.size()),
         value / 1e9);
  }
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

}  // namespace bg3
