#ifndef BG3_COMMON_CIRCUIT_BREAKER_H_
#define BG3_COMMON_CIRCUIT_BREAKER_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "common/metrics.h"
#include "common/time_source.h"

namespace bg3 {

/// Configuration of a CircuitBreaker. Disabled by default: an inert breaker
/// costs one relaxed atomic load per Allow() and nothing per Record*().
struct CircuitBreakerOptions {
  bool enabled = false;
  /// Failures (retry-exhaustion reports) within `failure_window_us` that
  /// trip the breaker open.
  int failure_threshold = 4;
  uint64_t failure_window_us = 1'000'000;
  /// How long the breaker stays open before letting probes through.
  uint64_t open_cooldown_us = 200'000;
  /// Max in-flight probe operations while half-open.
  int half_open_probes = 2;
  /// Probe successes required to close again.
  int close_after_successes = 2;
};

/// Classic three-state circuit breaker (DESIGN.md §5.5) wrapped around the
/// cloud store: when callers' retry budgets keep dying (the substrate is
/// down or badly degraded), the breaker trips open and every operation
/// fails fast with Status::Overloaded instead of burning its full retry
/// schedule — the difference between a latency blip and a metastable
/// retry storm. After `open_cooldown_us` it half-opens and lets a few
/// probes through; probe successes close it, a probe failure re-opens it.
///
/// Failure reports come from RetryOptions::breaker (wired by every
/// retry-wrapped store caller): only *exhausted* retry budgets count, a
/// single transient blip never trips anything. Successes are recorded by
/// the store itself on completed operations.
///
/// Thread safe. State transitions take a mutex; the closed-state hot path
/// (Allow/RecordSuccess with no recent failures) is a relaxed atomic load.
class CircuitBreaker {
 public:
  enum class State : int { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  CircuitBreaker(const CircuitBreakerOptions& options,
                 const TimeSource* clock);

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// True if the operation may proceed. False = fail fast (caller returns
  /// Status::Overloaded). While half-open, admits up to
  /// `half_open_probes` concurrent probes.
  bool Allow();

  /// A store operation completed successfully (closes a half-open breaker
  /// after enough probes; resets the failure window when closed).
  void RecordSuccess();

  /// A caller's retry budget died against the store (reopens from
  /// half-open; counts toward the trip threshold when closed).
  void RecordFailure();

  /// A single operation failed (transient or not). Never counts toward the
  /// closed-state trip threshold — one blip is the retry layer's business —
  /// but it settles the probe ledger: a failed half-open probe reopens the
  /// breaker, and while open it refreshes the cooldown. Every op admitted
  /// by Allow() must end in RecordSuccess() or RecordError(), otherwise
  /// half-open probe slots leak.
  void RecordError();

  State state() const {
    return static_cast<State>(state_.load(std::memory_order_acquire));
  }

  /// 0=closed, 1=open, 2=half-open; registered as
  /// `bg3.db<N>.overload.breaker_state`.
  const Gauge& state_gauge() const { return state_gauge_; }

  /// Operations rejected while open / trips to open so far.
  uint64_t rejected() const { return rejected_.Get(); }
  uint64_t trips() const { return trips_.Get(); }

  bool enabled() const { return opts_.enabled; }

 private:
  void TransitionLocked(State next);

  const CircuitBreakerOptions opts_;
  const TimeSource* const clock_;

  std::atomic<int> state_{static_cast<int>(State::kClosed)};
  /// Failures seen in the closed state since `window_start_us_`; relaxed
  /// mirror lets RecordSuccess skip the mutex when nothing is wrong.
  std::atomic<int> window_failures_{0};

  std::mutex mu_;
  uint64_t window_start_us_ = 0;
  uint64_t opened_at_us_ = 0;
  int probes_inflight_ = 0;
  int probe_successes_ = 0;

  Gauge state_gauge_;
  LightCounter rejected_;
  LightCounter trips_;
};

}  // namespace bg3

#endif  // BG3_COMMON_CIRCUIT_BREAKER_H_
