#include "common/crc32.h"

namespace bg3 {

namespace {

// Table for the Castagnoli polynomial 0x1EDC6F41 (reflected: 0x82F63B78),
// generated once at first use.
struct Crc32cTable {
  uint32_t entries[256];
  Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc & 1) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
      }
      entries[i] = crc;
    }
  }
};

}  // namespace

uint32_t Crc32c(const char* data, size_t n, uint32_t seed) {
  static const Crc32cTable table;
  uint32_t crc = ~seed;
  for (size_t i = 0; i < n; ++i) {
    crc = table.entries[(crc ^ static_cast<unsigned char>(data[i])) & 0xFF] ^
          (crc >> 8);
  }
  return ~crc;
}

}  // namespace bg3
