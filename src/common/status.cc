#include "common/status.h"

namespace bg3 {

namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kIOError:
      return "IOError";
    case Status::Code::kBusy:
      return "Busy";
    case Status::Code::kNotSupported:
      return "NotSupported";
    case Status::Code::kAborted:
      return "Aborted";
    case Status::Code::kDeadlineExceeded:
      return "DeadlineExceeded";
    case Status::Code::kOverloaded:
      return "Overloaded";
    case Status::Code::kFenced:
      return "Fenced";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  std::string out = CodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace bg3
