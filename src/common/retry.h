#ifndef BG3_COMMON_RETRY_H_
#define BG3_COMMON_RETRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <utility>

#include "common/circuit_breaker.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/op_context.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace bg3 {

/// Shared bounded retry/backoff policy for cloud-store I/O. The simulated
/// substrate (and the real service it stands in for) produces transient
/// IOError / Busy results and occasional in-flight corruption; every caller
/// that talks to the store wraps its I/O in RetryWithBackoff so one blip
/// does not surface as a request failure. The budget is deliberately small:
/// persistent errors must reach the caller quickly so it can degrade
/// (GC defers the extent, the RO node falls behind) instead of spinning.
struct RetryOptions {
  /// Total attempt budget, including the first try. Must be >= 1
  /// (BG3_DCHECK-enforced). 1 disables retries entirely.
  int max_attempts = 4;
  uint64_t initial_backoff_us = 1'000;
  double backoff_multiplier = 2.0;
  uint64_t max_backoff_us = 64'000;

  /// Full-jitter backoff (AWS-style): each delay is drawn uniformly from
  /// [0, exponential schedule value], so a fleet of callers whose retries
  /// were triggered by the same substrate blip cannot re-converge into a
  /// synchronized retry storm. Driven by bg3::Random for determinism:
  /// `jitter_seed != 0` pins the exact delay sequence (tests);
  /// `jitter_seed == 0` (default) picks a distinct per-Backoff stream.
  bool jitter = true;
  uint64_t jitter_seed = 0;

  // Which error codes count as transient. Corruption is off by default:
  // an append never "partially corrupts" on retryable paths, but read
  // paths opt in because an injected corrupt read models bit-flips on the
  // wire, not on the medium (the stored record is intact).
  bool retry_io_error = true;
  bool retry_busy = true;
  bool retry_corruption = false;

  /// Backoff wait hook. Null (the default) skips waiting — correct for the
  /// simulated store, whose failures are schedule- not time-driven; drivers
  /// with a real or virtual clock pass e.g.
  /// `[&clock](uint64_t us) { clock.AdvanceUs(us); }`.
  std::function<void(uint64_t)> sleep;

  /// Request deadline. Checked before every attempt (including after a
  /// backoff sleep advanced a virtual clock): once expired, the loop stops
  /// with Status::DeadlineExceeded carrying the first (root-cause) error
  /// observed so far. Null = no deadline, exact pre-deadline behavior.
  const OpContext* ctx = nullptr;

  /// Observability hooks (normally CloudStore's IoStats counters).
  Counter* retries = nullptr;          ///< incremented per re-attempt.
  Counter* retry_exhausted = nullptr;  ///< incremented when the budget dies.

  /// Circuit breaker to notify when the budget dies against a retryable
  /// error (normally the CloudStore's breaker; see DESIGN.md §5.5).
  CircuitBreaker* breaker = nullptr;
};

/// Exponential backoff schedule: initial, initial*m, initial*m^2, ... capped
/// at max_backoff_us. With `opts.jitter` each returned delay is full-jitter:
/// uniform in [0, schedule value]; without it the schedule is returned
/// verbatim (deterministic, the pre-jitter behavior).
class Backoff {
 public:
  explicit Backoff(const RetryOptions& opts)
      : multiplier_(opts.backoff_multiplier),
        max_us_(opts.max_backoff_us),
        next_us_(opts.initial_backoff_us),
        jitter_(opts.jitter),
        rng_(opts.jitter_seed != 0 ? opts.jitter_seed : AutoSeed()) {}

  /// Delay before the next retry; advances the schedule.
  uint64_t NextDelayUs() {
    const uint64_t cur = next_us_ > max_us_ ? max_us_ : next_us_;
    const double scaled = static_cast<double>(cur) * multiplier_;
    next_us_ = scaled >= static_cast<double>(max_us_)
                   ? max_us_
                   : static_cast<uint64_t>(scaled);
    if (!jitter_ || cur == 0) return cur;
    return rng_.Uniform(cur + 1);  // full jitter: [0, cur]
  }

 private:
  /// Distinct deterministic stream per Backoff instance: same-process
  /// retriers draw different jitter (the whole point), while runs of the
  /// same binary remain reproducible.
  static uint64_t AutoSeed() {
    static std::atomic<uint64_t> stream{0};
    return 0x5eedULL ^
           ((stream.fetch_add(1, std::memory_order_relaxed) + 1) *
            0x9E3779B97F4A7C15ull);
  }

  const double multiplier_;
  const uint64_t max_us_;
  uint64_t next_us_;
  const bool jitter_;
  Random rng_;
};

inline bool IsRetryableError(const RetryOptions& opts, const Status& s) {
  return (opts.retry_io_error && s.IsIOError()) ||
         (opts.retry_busy && s.IsBusy()) ||
         (opts.retry_corruption && s.IsCorruption());
}

/// DeadlineExceeded for a deadline that ran out inside the retry loop,
/// preserving the first (root-cause) error of the sequence — later attempts
/// often fail with derived or less specific messages.
inline Status RetryDeadlineExceeded(const Status& first) {
  if (first.ok()) {
    return Status::DeadlineExceeded("deadline expired before I/O attempt");
  }
  return Status::DeadlineExceeded("deadline expired during retry; first "
                                  "error: " +
                                  first.ToString());
}

/// Runs `op` (a callable returning Status) until it succeeds, returns a
/// non-retryable error, the deadline expires, or the attempt budget is
/// exhausted. On exhaustion the *first* error is returned — it is the root
/// cause; on deadline expiry DeadlineExceeded wraps that root cause.
template <typename Op>
BG3_BLOCKING Status RetryWithBackoff(const RetryOptions& opts, Op&& op) {
  BG3_DCHECK_GE(opts.max_attempts, 1)
      << "retry budget must allow at least one attempt";
  Backoff backoff(opts);
  Status first;
  for (int attempt = 1;; ++attempt) {
    if (opts.ctx != nullptr && opts.ctx->Expired()) {
      return RetryDeadlineExceeded(first);
    }
    Status s = op();
    if (s.ok() || !IsRetryableError(opts, s)) return s;
    if (first.ok()) first = std::move(s);
    if (attempt >= opts.max_attempts) {
      if (opts.retry_exhausted != nullptr) opts.retry_exhausted->Inc();
      if (opts.breaker != nullptr) opts.breaker->RecordFailure();
      return first;
    }
    if (opts.retries != nullptr) opts.retries->Inc();
    OpStats::RecordRetry(opts.ctx != nullptr ? opts.ctx->stats : nullptr);
    const uint64_t delay = backoff.NextDelayUs();
    if (opts.sleep) opts.sleep(delay);
  }
}

/// Result<T> variant: `op` returns Result<T>; the successful value is
/// passed through, exhaustion surfaces the first error.
template <typename Op>
BG3_BLOCKING auto RetryResultWithBackoff(const RetryOptions& opts, Op&& op)
    -> decltype(op()) {
  BG3_DCHECK_GE(opts.max_attempts, 1)
      << "retry budget must allow at least one attempt";
  Backoff backoff(opts);
  Status first;
  for (int attempt = 1;; ++attempt) {
    if (opts.ctx != nullptr && opts.ctx->Expired()) {
      return decltype(op())(RetryDeadlineExceeded(first));
    }
    auto res = op();
    if (res.ok() || !IsRetryableError(opts, res.status())) return res;
    if (first.ok()) first = res.status();
    if (attempt >= opts.max_attempts) {
      if (opts.retry_exhausted != nullptr) opts.retry_exhausted->Inc();
      if (opts.breaker != nullptr) opts.breaker->RecordFailure();
      return decltype(op())(first);
    }
    if (opts.retries != nullptr) opts.retries->Inc();
    OpStats::RecordRetry(opts.ctx != nullptr ? opts.ctx->stats : nullptr);
    const uint64_t delay = backoff.NextDelayUs();
    if (opts.sleep) opts.sleep(delay);
  }
}

}  // namespace bg3

#endif  // BG3_COMMON_RETRY_H_
