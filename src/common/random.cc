#include "common/random.h"

#include <cmath>

#include "common/hash.h"
#include "common/logging.h"

namespace bg3 {

Random::Random(uint64_t seed) {
  // Expand the seed through splitmix64 so nearby seeds give unrelated
  // streams; avoid the all-zero state xorshift cannot leave.
  s0_ = Mix64(seed + 1);
  s1_ = Mix64(seed + 0x632be59bd9b4e019ull);
  if (s0_ == 0 && s1_ == 0) s0_ = 1;
}

uint64_t Random::Next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Random::Uniform(uint64_t n) {
  BG3_CHECK_GT(n, 0u);
  return Next() % n;
}

double Random::NextDouble() {
  // 53 high-quality bits into [0, 1).
  return (Next() >> 11) * (1.0 / 9007199254740992.0);
}

double ZipfGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  BG3_CHECK_GT(n, 0u);
  BG3_CHECK(theta > 0.0 && theta < 1.0) << "theta must be in (0,1)";
  // Zeta(n) is O(n); cap the exact sum and extrapolate with the integral
  // approximation for very large n so construction stays cheap.
  constexpr uint64_t kExactLimit = 1u << 20;
  if (n <= kExactLimit) {
    zetan_ = Zeta(n, theta);
  } else {
    double zeta_limit = Zeta(kExactLimit, theta);
    // Integral of x^-theta from kExactLimit to n.
    zeta_limit += (std::pow(static_cast<double>(n), 1 - theta) -
                   std::pow(static_cast<double>(kExactLimit), 1 - theta)) /
                  (1 - theta);
    zetan_ = zeta_limit;
  }
  const double zeta2 = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1 - std::pow(2.0 / static_cast<double>(n), 1 - theta)) /
         (1 - zeta2 / zetan_);
}

uint64_t ZipfGenerator::Next() {
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t v = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

PowerLawDegree::PowerLawDegree(double alpha, uint32_t min_degree,
                               uint32_t max_degree, uint64_t seed)
    : alpha_(alpha),
      min_degree_(min_degree),
      max_degree_(max_degree),
      rng_(seed) {
  BG3_CHECK_GT(alpha, 1.0);
  BG3_CHECK_GE(max_degree, min_degree);
  BG3_CHECK_GT(min_degree, 0u);
}

uint32_t PowerLawDegree::Next() {
  // Inverse-CDF sampling of a bounded Pareto distribution.
  const double u = rng_.NextDouble();
  const double lo = std::pow(static_cast<double>(min_degree_), 1 - alpha_);
  const double hi = std::pow(static_cast<double>(max_degree_), 1 - alpha_);
  const double x = std::pow(lo + u * (hi - lo), 1.0 / (1 - alpha_));
  const uint32_t d = static_cast<uint32_t>(x);
  if (d < min_degree_) return min_degree_;
  if (d > max_degree_) return max_degree_;
  return d;
}

}  // namespace bg3
