#ifndef BG3_COMMON_TRACE_H_
#define BG3_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace bg3 {

// ---------------------------------------------------------------------------
// Global observability switches, packed into one atomic word so the
// BG3_TIMED_SCOPE fast path is a single relaxed load + branch (~1 ns) when
// everything is off. Defaults: timing on, tracing off, slow-op log off.
// Environment overrides, read once at process start:
//   BG3_TIMED_SCOPES=0      disable per-scope latency histograms
//   BG3_TRACE=1             enable trace-event recording
//   BG3_TRACE_FILE=path     where ExportToEnvFile() writes the chrome JSON
//   BG3_TRACE_BUF_EVENTS=N  per-thread ring capacity (events)
//   BG3_SLOW_OP_US=N        log the span tree of top-level ops slower than N
// ---------------------------------------------------------------------------
namespace obs {

inline constexpr uint32_t kTimingBit = 1u;
inline constexpr uint32_t kTraceBit = 2u;
inline constexpr uint32_t kSlowOpBit = 4u;

namespace internal {
/// Bit set of the flags above; mutate via the setters only.
extern std::atomic<uint32_t> g_flags;
/// Forces the env-var read before first use (harmless to call repeatedly).
void EnsureInitFromEnv();
}  // namespace internal

inline uint32_t Flags() {
  return internal::g_flags.load(std::memory_order_relaxed);
}
inline bool TimingEnabled() { return Flags() & kTimingBit; }

void SetTimingEnabled(bool on);

}  // namespace obs

namespace trace {

/// Process-wide trace facility: every thread records fixed-size events into
/// its own lock-free ring buffer (single-writer; overwrites oldest on
/// wrap), and ExportChromeJson() merges all rings into a
/// chrome://tracing-loadable JSON document.
///
/// Event `name` pointers must be string literals (or otherwise immortal):
/// the ring stores the pointer, not a copy.
///
/// Export concurrent with active writers is safe (all slot accesses are
/// relaxed atomics) but a thread wrapping its ring mid-export can tear an
/// event; export at quiescence for exact output. Tests and benches do.
class Trace {
 public:
  static bool Enabled() { return obs::Flags() & obs::kTraceBit; }
  static void SetEnabled(bool on);

  /// 0 disables the slow-op log.
  static void SetSlowOpThresholdNs(uint64_t ns);
  static uint64_t SlowOpThresholdNs();
  /// Top-level spans that exceeded the threshold so far (also a counter
  /// metric, `bg3.trace.slow_ops`).
  static uint64_t SlowOpCount();

  /// Records an instant event on the calling thread's timeline.
  static void Instant(const char* name);

  /// Merges every thread's ring into {"traceEvents":[...]} JSON.
  static std::string ExportChromeJson();
  /// ExportChromeJson() to `path`; false on I/O error.
  static bool WriteChromeJson(const std::string& path);
  /// Writes to $BG3_TRACE_FILE (default `bg3_trace.json`) if tracing is
  /// enabled; returns the path written, empty string if disabled/failed.
  static std::string ExportToEnvFile();

  /// Clears all rings and the slow-op count (keeps enabled state). Rings
  /// of exited threads are garbage-collected here.
  static void Reset();

  /// Ring capacity (events) for rings created *after* the call — i.e. for
  /// threads that have not traced yet. Testing wraparound uses a tiny ring
  /// on a fresh thread.
  static void SetRingCapacityForTesting(size_t events);

  /// Events currently held across all rings (post-wrap rings report their
  /// full capacity).
  static size_t EventCountForTesting();
};

/// RAII begin/end span: records one complete ('X') trace event on scope
/// exit, maintains the per-thread span depth, and feeds the slow-op log.
/// Near-zero cost (one flag load) when tracing and slow-op logging are both
/// off. `name` must be a string literal.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (obs::Flags() & (obs::kTraceBit | obs::kSlowOpBit)) Begin(name);
  }
  ~TraceSpan() {
    if (active_) End();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void Begin(const char* name);
  void End();

  const char* name_ = nullptr;
  uint64_t start_ns_ = 0;
  bool active_ = false;
};

}  // namespace trace
}  // namespace bg3

/// Standalone trace span (no histogram); use BG3_TIMED_SCOPE when the scope
/// should also feed a latency histogram.
#define BG3_TRACE_SPAN(name_literal) \
  ::bg3::trace::TraceSpan bg3_trace_span_##__LINE__(name_literal)

#endif  // BG3_COMMON_TRACE_H_
