#ifndef BG3_COMMON_TRACE_H_
#define BG3_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace bg3 {

struct OpContext;

// ---------------------------------------------------------------------------
// Global observability switches, packed into one atomic word so the
// BG3_TIMED_SCOPE fast path is a single relaxed load + branch (~1 ns) when
// everything is off. Defaults: timing on, tracing off, slow-op log off.
// Environment overrides, read once at process start:
//   BG3_TIMED_SCOPES=0      disable per-scope latency histograms
//   BG3_TRACE=1             enable trace-event recording
//   BG3_TRACE_FILE=path     where ExportToEnvFile() writes the chrome JSON
//   BG3_TRACE_BUF_EVENTS=N  per-thread ring capacity (events)
//   BG3_SLOW_OP_US=N        log + retain top-level ops slower than N
// ---------------------------------------------------------------------------
namespace obs {

inline constexpr uint32_t kTimingBit = 1u;
inline constexpr uint32_t kTraceBit = 2u;
inline constexpr uint32_t kSlowOpBit = 4u;
/// Set while at least one traced request (OpContext::Traced + trace::OpScope
/// root) is in flight anywhere in the process; makes every TraceSpan check
/// its thread's trace binding. Maintained by trace::OpScope, never by hand.
inline constexpr uint32_t kReqTraceBit = 8u;

namespace internal {
/// Bit set of the flags above; mutate via the setters only.
extern std::atomic<uint32_t> g_flags;
/// Forces the env-var read before first use (harmless to call repeatedly).
void EnsureInitFromEnv();
}  // namespace internal

inline uint32_t Flags() {
  return internal::g_flags.load(std::memory_order_relaxed);
}
inline bool TimingEnabled() { return Flags() & kTimingBit; }

void SetTimingEnabled(bool on);

}  // namespace obs

namespace trace {

/// Process-unique nonzero trace id (also reachable as
/// bg3::trace::NewTraceId() via op_context.h's forward declaration).
uint64_t NewTraceId();

/// One completed span inside a retained trace. `name` is the span's string
/// literal; parent_id 0 marks the root.
struct SpanRecord {
  const char* name = nullptr;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint32_t tid = 0;
};

/// A fully retained request trace: the root op plus every span (across all
/// threads that carried a TraceBinding for it), kept when the root exceeded
/// the slow-op threshold — tail-based sampling — or unconditionally when the
/// threshold is 0.
struct SlowTrace {
  uint64_t trace_id = 0;
  std::string root_name;
  std::string workload_class;
  uint64_t root_start_ns = 0;
  uint64_t root_dur_ns = 0;
  uint64_t dropped_spans = 0;  ///< spans lost to the per-trace cap.
  std::vector<SpanRecord> spans;
};

/// Process-wide trace facility, two recording planes:
///
///  - **Firehose** (BG3_TRACE=1): every thread records fixed-size events
///    into its own lock-free ring buffer (single-writer; overwrites oldest
///    on wrap); ExportChromeJson() merges all rings into a
///    chrome://tracing-loadable JSON document.
///  - **Per-request** (OpContext::Traced + OpScope): spans are additionally
///    keyed by trace id with parent/child causality and buffered per trace;
///    when the root ends, the whole tree is retained iff the root was slow
///    (tail-based), and served from RetainedTraces() / `/tracez`.
///
/// Event `name` pointers must be string literals (or otherwise immortal):
/// both planes store the pointer, not a copy.
///
/// Ring export concurrent with active writers is safe (all slot accesses
/// are relaxed atomics) but a thread wrapping its ring mid-export can tear
/// an event; export at quiescence for exact output. Tests and benches do.
class Trace {
 public:
  static bool Enabled() { return obs::Flags() & obs::kTraceBit; }
  static void SetEnabled(bool on);

  /// Tail-sampling control. Threshold > 0: retain (and log) only traces
  /// whose root exceeds it; 0: retain every traced request, disable the
  /// slow-op log for untraced spans.
  static void SetSlowOpThresholdNs(uint64_t ns);
  static uint64_t SlowOpThresholdNs();
  /// Top-level spans that exceeded the threshold so far (also a counter
  /// metric, `bg3.trace.slow_ops`).
  static uint64_t SlowOpCount();

  /// Records an instant event on the calling thread's timeline.
  static void Instant(const char* name);

  /// Merges every thread's ring into {"traceEvents":[...]} JSON.
  static std::string ExportChromeJson();
  /// ExportChromeJson() to `path`; false on I/O error.
  static bool WriteChromeJson(const std::string& path);
  /// Writes to $BG3_TRACE_FILE (default `bg3_trace.json`) if tracing is
  /// enabled; returns the path written, empty string if disabled/failed.
  static std::string ExportToEnvFile();

  /// Copies of the currently retained slow traces, newest last.
  static std::vector<SlowTrace> RetainedTraces();
  /// `/tracez` document: a chrome://tracing-loadable {"traceEvents":[...]}
  /// (each event carries trace/span/parent ids in "args") plus a per-trace
  /// summary table under "traces".
  static std::string RenderTracez();

  /// Clears all rings, per-request captures, retained traces, and the
  /// slow-op count (keeps enabled state). Rings of exited threads are
  /// garbage-collected here.
  static void Reset();

  /// Ring capacity (events) for rings created *after* the call — i.e. for
  /// threads that have not traced yet. Testing wraparound uses a tiny ring
  /// on a fresh thread.
  static void SetRingCapacityForTesting(size_t events);

  /// Events currently held across all rings (post-wrap rings report their
  /// full capacity).
  static size_t EventCountForTesting();
};

/// Trace id + innermost span id bound to the calling thread (0/0 when the
/// thread is not carrying a traced request). Capture these before handing
/// work to another thread, then install them there with TraceBinding so the
/// worker's spans join the same trace under the right parent.
uint64_t CurrentTraceId();
uint64_t CurrentSpanId();

/// RAII cross-thread trace propagation: binds {trace_id, parent_span_id}
/// to the current thread for the scope's lifetime, restoring the previous
/// binding on exit. Spans recorded while bound attach to `trace_id` as
/// children of `parent_span_id`.
class TraceBinding {
 public:
  TraceBinding(uint64_t trace_id, uint64_t parent_span_id,
               const char* workload_class = nullptr);
  ~TraceBinding();

  TraceBinding(const TraceBinding&) = delete;
  TraceBinding& operator=(const TraceBinding&) = delete;

 private:
  uint64_t prev_trace_id_;
  uint64_t prev_span_id_;
  const char* prev_class_;
};

/// RAII request-root span, placed at every public API entry that accepts an
/// OpContext (GraphDB ops, Query::Execute, ByteGraph ops). Inert — one
/// pointer compare — unless `ctx` is traced (ctx->trace_id != 0).
///
/// The *outermost* OpScope of a trace on its thread becomes the trace root:
/// it starts per-request capture, binds the trace to the thread, and on
/// destruction makes the tail-based retention decision and folds the
/// request's OpStats into the cost accounting (CostAccounting::Default()).
/// Nested OpScopes of the same trace record ordinary child spans. `name`
/// must be a string literal, conventionally `bg3.<layer>.<op>` (no unit
/// suffix — it is an operation, not a histogram).
class OpScope {
 public:
  OpScope(const char* name, const OpContext* ctx);
  ~OpScope() {
    if (active_) End();
  }

  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

 private:
  void Begin(const char* name);
  void End();

  const char* name_ = nullptr;
  const OpContext* ctx_ = nullptr;
  uint64_t start_ns_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_id_ = 0;
  // Thread binding saved by the root, restored when the root ends.
  uint64_t prev_trace_id_ = 0;
  uint64_t prev_span_id_ = 0;
  const char* prev_class_ = nullptr;
  bool active_ = false;
  bool root_ = false;
};

/// RAII begin/end span: records one complete ('X') trace event on scope
/// exit, maintains the per-thread span depth, feeds the slow-op log, and —
/// when the thread carries a trace binding — records a causal span into the
/// bound trace's capture. Near-zero cost (one flag load) when tracing,
/// slow-op logging, and request tracing are all off. `name` must be a
/// string literal.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (obs::Flags() &
        (obs::kTraceBit | obs::kSlowOpBit | obs::kReqTraceBit)) {
      Begin(name);
    }
  }
  ~TraceSpan() {
    if (active_) End();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void Begin(const char* name);
  void End();

  const char* name_ = nullptr;
  uint64_t start_ns_ = 0;
  uint64_t span_id_ = 0;   ///< nonzero only when bound to a traced request.
  uint64_t parent_id_ = 0;
  bool active_ = false;
};

}  // namespace trace
}  // namespace bg3

/// Standalone trace span (no histogram); use BG3_TIMED_SCOPE when the scope
/// should also feed a latency histogram.
#define BG3_TRACE_SPAN(name_literal) \
  ::bg3::trace::TraceSpan bg3_trace_span_##__LINE__(name_literal)

/// Request-root span at an OpContext-accepting API boundary.
#define BG3_OP_SCOPE(name_literal, ctx_expr) \
  ::bg3::trace::OpScope bg3_op_scope_##__LINE__(name_literal, ctx_expr)

#endif  // BG3_COMMON_TRACE_H_
