#ifndef BG3_COMMON_HISTOGRAM_H_
#define BG3_COMMON_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace bg3 {

/// Thread-safe log-bucketed latency histogram. Values are plain uint64s —
/// by convention nanoseconds for wall-clock scopes (metric names ending
/// `_ns`) and microseconds for simulated-latency series (`_us`).
///
/// Buckets grow geometrically (4 sub-buckets per power of two) so
/// p50..p999 stay accurate from 1 unit to 2^63 with 256 buckets.
///
/// Concurrency: recording is lock-free. Buckets are striped across
/// kShards cache-line-disjoint shards, each thread writing (mostly) its own
/// shard, so concurrent recorders do not serialize on hot buckets. Readers
/// merge the shards into a local snapshot first and derive every statistic
/// (including the percentile total) from that one snapshot, so a percentile
/// computed concurrently with writers is always internally consistent —
/// it reflects some subset of the recorded values, never a torn mix of
/// "count from now, buckets from earlier".
///
/// Reset() is not linearizable against concurrent Record() calls: a record
/// racing a reset may survive it or be lost wholesale, but the histogram
/// never ends up half-cleared in a way that breaks the invariants above.
/// Reset at quiescence when exact semantics matter (benches do).
class Histogram {
 public:
  Histogram();
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value);

  uint64_t Count() const;
  double Mean() const;
  uint64_t Min() const;
  uint64_t Max() const;
  /// q in (0, 1], e.g. 0.5, 0.99. Linear interpolation within a bucket.
  uint64_t Percentile(double q) const;

  /// Folds all of `other`'s recorded values into this histogram (bucket
  /// granularity; min/max/count/sum are exact, percentiles as accurate as
  /// the shared bucket layout).
  void Merge(const Histogram& other);

  void Reset();

  /// "count=... mean=... p50=... p99=... max=..." for bench output.
  std::string ToString() const;

  /// Point-in-time coherent view, cheap to copy around (bench JSON,
  /// registry snapshots). Percentile math matches Histogram's.
  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    std::vector<uint64_t> buckets;  ///< kNumBuckets entries; empty if count==0.

    double Mean() const;
    uint64_t Percentile(double q) const;
  };
  Snapshot TakeSnapshot() const;

 private:
  static constexpr int kNumBuckets = 256;
  static constexpr int kShards = 4;
  static int BucketFor(uint64_t v);
  static uint64_t BucketLow(int b);
  static uint64_t BucketHigh(int b);

  struct alignas(64) Shard {
    std::atomic<uint64_t> buckets[kNumBuckets];
    std::atomic<uint64_t> count;
    std::atomic<uint64_t> sum;
    std::atomic<uint64_t> min;
    std::atomic<uint64_t> max;
  };
  Shard shards_[kShards];
};

}  // namespace bg3

#endif  // BG3_COMMON_HISTOGRAM_H_
