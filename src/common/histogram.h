#ifndef BG3_COMMON_HISTOGRAM_H_
#define BG3_COMMON_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace bg3 {

/// Thread-safe log-bucketed latency histogram (microsecond inputs).
/// Buckets grow geometrically so p50..p999 stay accurate from 1us to minutes
/// with ~200 buckets. Records are lock-free atomic adds.
class Histogram {
 public:
  Histogram();

  void Record(uint64_t value_us);

  uint64_t Count() const;
  double Mean() const;
  uint64_t Min() const;
  uint64_t Max() const;
  /// q in (0, 1], e.g. 0.5, 0.99. Linear interpolation within a bucket.
  uint64_t Percentile(double q) const;

  void Reset();

  /// "count=... mean=...us p50=... p99=... max=..." for bench output.
  std::string ToString() const;

 private:
  static constexpr int kNumBuckets = 256;
  static int BucketFor(uint64_t v);
  static uint64_t BucketLow(int b);
  static uint64_t BucketHigh(int b);

  std::atomic<uint64_t> buckets_[kNumBuckets];
  std::atomic<uint64_t> count_;
  std::atomic<uint64_t> sum_;
  std::atomic<uint64_t> min_;
  std::atomic<uint64_t> max_;
};

}  // namespace bg3

#endif  // BG3_COMMON_HISTOGRAM_H_
