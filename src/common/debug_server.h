#ifndef BG3_COMMON_DEBUG_SERVER_H_
#define BG3_COMMON_DEBUG_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/status.h"

namespace bg3 {

/// Wiring for the in-process introspection endpoint (embed in
/// GraphDBOptions as `debug_server`). Default-off; port 0 binds an
/// ephemeral port (read it back with DebugServer::port()).
struct DebugServerOptions {
  bool enabled = false;
  std::string bind_address = "127.0.0.1";  ///< loopback only by default.
  uint16_t port = 0;                       ///< 0 = ephemeral.
};

/// Minimal single-threaded HTTP/1.1 introspection server (DESIGN.md §5.8):
///
///   /metrics   Prometheus text exposition of the default metrics registry
///   /healthz   liveness + registered health sources, JSON (DESIGN.md §5.10)
///   /tracez    retained slow traces, chrome://tracing-loadable JSON
///   /costz     cloud cost breakdown JSON (see cost_model.h)
///
/// One accept thread serves requests serially — this is an operator
/// endpoint scraped every few seconds, not a data path. Responses are
/// rendered outside any request lock; a slow scraper can delay the next
/// scrape but never a database operation. Stop() (or the destructor)
/// wakes the accept loop via a self-pipe and joins it.
class DebugServer {
 public:
  DebugServer() = default;
  ~DebugServer();

  DebugServer(const DebugServer&) = delete;
  DebugServer& operator=(const DebugServer&) = delete;

  /// Binds + listens + starts the accept thread. InvalidArgument for a bad
  /// bind address, IOError if the socket cannot be bound. No-op (OK) while
  /// already running.
  Status Start(const DebugServerOptions& opts);
  /// Idempotent; joins the accept thread.
  void Stop();

  bool running() const { return running_; }
  /// Actual bound port (after Start() with port 0 resolves the ephemeral
  /// port); 0 before Start().
  uint16_t port() const { return port_; }
  const std::string& bind_address() const { return opts_.bind_address; }

  /// Routes one request target ("/metrics", "/costz?x=1") to its handler
  /// and returns the full HTTP response bytes. Exposed so tests can check
  /// routing without sockets; the accept loop uses it verbatim.
  static std::string HandleRequest(const std::string& target);

  /// Registers a named health fragment for /healthz. `fn` returns a JSON
  /// key-value fragment (e.g. `"partitions": [...]`) rendered under the
  /// source's name: {"status": "ok", "sources": {"<name>": {<fragment>}}}.
  /// Process-global, like the metrics registry — a Bg3Cluster registers its
  /// per-partition role/term/cursor report here (DESIGN.md §5.10).
  /// Re-registering a name replaces its callback.
  static void RegisterHealthSource(const std::string& name,
                                   std::function<std::string()> fn);
  /// Idempotent. Callbacks run under the registry lock, so once this
  /// returns the callback is not (and will never again be) in flight.
  static void UnregisterHealthSource(const std::string& name);

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  DebugServerOptions opts_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  ///< self-pipe to interrupt poll() on Stop.
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace bg3

#endif  // BG3_COMMON_DEBUG_SERVER_H_
