#ifndef BG3_COMMON_CRC32_H_
#define BG3_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace bg3 {

/// CRC-32C (Castagnoli), software table implementation. Every record the
/// cloud store persists is checksummed on append and verified on read, so
/// bit rot surfaces as Status::Corruption instead of silent bad data.
uint32_t Crc32c(const char* data, size_t n, uint32_t seed = 0);

}  // namespace bg3

#endif  // BG3_COMMON_CRC32_H_
