#include "common/debug_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <map>
#include <mutex>

#include "common/cost_model.h"
#include "common/metrics_registry.h"
#include "common/trace.h"

namespace bg3 {

namespace {

std::string HttpResponse(int code, const char* reason,
                         const char* content_type, const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

std::mutex& HealthMutex() {
  static std::mutex mu;
  return mu;
}

std::map<std::string, std::function<std::string()>>& HealthSources() {
  static auto* sources =
      new std::map<std::string, std::function<std::string()>>();
  return *sources;
}

/// The /healthz body. Callbacks run under the registry lock: that makes
/// UnregisterHealthSource a barrier (no callback in flight after it
/// returns), which destructors rely on. Sources are cheap snapshot
/// renderers on an operator endpoint, not a data path.
std::string RenderHealthz() {
  std::string body = "{\"status\": \"ok\"";
  std::lock_guard<std::mutex> lock(HealthMutex());
  if (!HealthSources().empty()) {
    body += ", \"sources\": {";
    bool first = true;
    for (const auto& [name, fn] : HealthSources()) {
      if (!first) body += ", ";
      first = false;
      body += "\"" + name + "\": {" + fn() + "}";
    }
    body += "}";
  }
  body += "}";
  return body;
}

}  // namespace

void DebugServer::RegisterHealthSource(const std::string& name,
                                       std::function<std::string()> fn) {
  std::lock_guard<std::mutex> lock(HealthMutex());
  HealthSources()[name] = std::move(fn);
}

void DebugServer::UnregisterHealthSource(const std::string& name) {
  std::lock_guard<std::mutex> lock(HealthMutex());
  HealthSources().erase(name);
}

std::string DebugServer::HandleRequest(const std::string& target) {
  // Strip any query string; routes take no parameters today.
  const size_t q = target.find('?');
  const std::string path = q == std::string::npos ? target : target.substr(0, q);

  if (path == "/healthz") {
    return HttpResponse(200, "OK", "application/json", RenderHealthz());
  }
  if (path == "/metrics") {
    return HttpResponse(200, "OK", "text/plain; version=0.0.4; charset=utf-8",
                        MetricsRegistry::Default().RenderPrometheus());
  }
  if (path == "/tracez") {
    return HttpResponse(200, "OK", "application/json",
                        trace::Trace::RenderTracez());
  }
  if (path == "/costz") {
    return HttpResponse(200, "OK", "application/json", RenderCostz());
  }
  if (path == "/" || path.empty()) {
    return HttpResponse(200, "OK", "text/plain; charset=utf-8",
                        "bg3 debug server\n"
                        "  /metrics  prometheus exposition\n"
                        "  /healthz  liveness + health sources (json)\n"
                        "  /tracez   retained slow traces (chrome json)\n"
                        "  /costz    cloud cost breakdown (json)\n");
  }
  return HttpResponse(404, "Not Found", "text/plain; charset=utf-8",
                      "not found\n");
}

DebugServer::~DebugServer() { Stop(); }

Status DebugServer::Start(const DebugServerOptions& opts) {
  if (running_) return Status::OK();
  opts_ = opts;

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (inet_pton(AF_INET, opts_.bind_address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("debug server: bad bind address " +
                                   opts_.bind_address);
  }

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("debug server: socket: ") +
                           std::strerror(errno));
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
           sizeof(addr)) != 0 ||
      listen(listen_fd_, 16) != 0) {
    const std::string err = std::strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("debug server: bind/listen on " +
                           opts_.bind_address + ":" +
                           std::to_string(opts_.port) + ": " + err);
  }

  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                  &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }

  if (pipe(wake_pipe_) != 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError(std::string("debug server: pipe: ") +
                           std::strerror(errno));
  }

  running_ = true;
  thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void DebugServer::Stop() {
  if (!running_) return;
  running_ = false;
  // Wake poll(); the loop re-checks running_ and exits.
  const char b = 'x';
  ssize_t ignored = write(wake_pipe_[1], &b, 1);
  (void)ignored;
  if (thread_.joinable()) thread_.join();
  close(listen_fd_);
  listen_fd_ = -1;
  close(wake_pipe_[0]);
  close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
  port_ = 0;
}

void DebugServer::AcceptLoop() {
  while (running_) {
    struct pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    const int n = poll(fds, 2, /*timeout_ms=*/1000);
    if (!running_) break;
    if (n <= 0) continue;  // timeout or EINTR; re-check running_.
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    ServeConnection(conn);
    close(conn);
  }
}

void DebugServer::ServeConnection(int fd) {
  // Read until the end of the request head (or a defensive cap); the
  // request body, if any, is ignored — all routes are GETs.
  std::string req;
  char buf[1024];
  while (req.size() < 8192 && req.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    req.append(buf, static_cast<size_t>(n));
  }
  // Request line: METHOD SP target SP version.
  const size_t sp1 = req.find(' ');
  const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                              : req.find(' ', sp1 + 1);
  std::string response;
  if (sp2 == std::string::npos) {
    response = HttpResponse(400, "Bad Request", "text/plain; charset=utf-8",
                            "bad request\n");
  } else {
    response = HandleRequest(req.substr(sp1 + 1, sp2 - sp1 - 1));
  }
  size_t off = 0;
  while (off < response.size()) {
    const ssize_t n = write(fd, response.data() + off, response.size() - off);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
}

}  // namespace bg3
