#ifndef BG3_COMMON_TIME_SOURCE_H_
#define BG3_COMMON_TIME_SOURCE_H_

#include <atomic>
#include <cstdint>

#include "common/clock.h"

namespace bg3 {

/// Pluggable time source. GC experiments (update gradient, TTL) and the
/// overload tests advance a manual clock instead of sleeping;
/// production-like paths use wall time. Lives in common (not cloud) so the
/// deadline machinery (OpContext, retry, admission control) can reference
/// it without depending on the storage layer.
class TimeSource {
 public:
  virtual ~TimeSource() = default;
  virtual uint64_t NowUs() const = 0;
};

class WallTimeSource : public TimeSource {
 public:
  uint64_t NowUs() const override { return NowMicros(); }
};

class ManualTimeSource : public TimeSource {
 public:
  // Atomic: tests advance the clock from a driver thread while store
  // observers read it from worker threads.
  uint64_t NowUs() const override {
    return now_us_.load(std::memory_order_relaxed);
  }
  void AdvanceUs(uint64_t d) {
    now_us_.fetch_add(d, std::memory_order_relaxed);
  }
  void SetUs(uint64_t t) { now_us_.store(t, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> now_us_{0};
};

/// Process-wide wall-clock instance for components that need *a* clock but
/// were not handed one (circuit breakers, admission control).
inline const TimeSource* DefaultWallTimeSource() {
  static const WallTimeSource kWall;
  return &kWall;
}

}  // namespace bg3

#endif  // BG3_COMMON_TIME_SOURCE_H_
