#ifndef BG3_BYTEGRAPH_BYTEGRAPH_DB_H_
#define BG3_BYTEGRAPH_BYTEGRAPH_DB_H_

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "graph/engine.h"
#include "lsm/lsm_db.h"

namespace bg3::bytegraph {

struct ByteGraphOptions {
  lsm::LsmOptions lsm;
  size_t lsm_shards = 8;
  /// Edges per edge-tree node ("each adjacency list ... split into multiple
  /// pages and indexed through a B-tree like edge tree structure", §2.2).
  size_t max_node_edges = 128;
  /// BGS-style memory cache over edge-tree KV pairs, in bytes. Misses pay
  /// the elongated path: edge-tree index -> LSM index -> storage (§2.4).
  size_t cache_bytes = 8u << 20;
  size_t lock_stripes = 256;
};

struct ByteGraphStats {
  Counter cache_hits;
  Counter cache_misses;
  Counter node_splits;
};

/// Reproduction of the previous-generation ByteGraph engine (§2): a B-tree
/// like edge tree whose Root/Meta/Edge nodes are each stored as one KV pair
/// in a distributed LSM-based KV store, fronted by an in-memory cache
/// (the BGS layer). Used as the primary comparison system in Fig. 8 and the
/// storage-cost analysis of §4.2.
class ByteGraphDB : public graph::GraphEngine {
 public:
  ByteGraphDB(cloud::CloudStore* store, const ByteGraphOptions& options);

  std::string name() const override { return "ByteGraph"; }

  // Deadlines are honored at op boundaries and between edge-tree node
  // fetches (the LSM beneath has no per-I/O cancellation; the comparison
  // only needs the shared engine contract, not matching internals).
  Status AddVertex(graph::VertexId id, const Slice& properties,
                   const OpContext* ctx = nullptr) override;
  Result<std::string> GetVertex(graph::VertexId id,
                                const OpContext* ctx = nullptr) override;
  Status DeleteVertex(graph::VertexId id, graph::EdgeType type,
                      const OpContext* ctx = nullptr) override;

  Status AddEdge(graph::VertexId src, graph::EdgeType type,
                 graph::VertexId dst, const Slice& properties,
                 graph::TimestampUs created_us,
                 const OpContext* ctx = nullptr) override;
  Status DeleteEdge(graph::VertexId src, graph::EdgeType type,
                    graph::VertexId dst,
                    const OpContext* ctx = nullptr) override;
  Result<std::string> GetEdge(graph::VertexId src, graph::EdgeType type,
                              graph::VertexId dst,
                              const OpContext* ctx = nullptr) override;

  Status GetNeighbors(graph::VertexId src, graph::EdgeType type, size_t limit,
                      std::vector<graph::Neighbor>* out,
                      const OpContext* ctx = nullptr) override;

  Status Flush() { return lsm_->Flush(); }

  uint64_t StorageDataBytes() const { return lsm_->TotalDataBytes(); }
  ByteGraphStats& stats() { return stats_; }
  lsm::ShardedLsm* lsm() { return lsm_.get(); }

 private:
  // --- edge-tree node codecs ----------------------------------------------
  struct EdgeRec {
    graph::VertexId dst;
    graph::TimestampUs created_us;
    std::string properties;
  };
  struct MetaEntry {
    graph::VertexId first_dst;  ///< smallest dst stored in the node.
    uint32_t node_seq;
  };
  struct Meta {
    std::vector<MetaEntry> entries;  ///< sorted by first_dst.
    uint32_t next_seq = 0;
  };

  static std::string EncodeMeta(const Meta& meta);
  static Status DecodeMeta(const Slice& data, Meta* out);
  static std::string EncodeNode(const std::vector<EdgeRec>& edges);
  static Status DecodeNode(const Slice& data, std::vector<EdgeRec>* out);

  static std::string MetaKey(graph::VertexId src, graph::EdgeType type);
  static std::string NodeKey(graph::VertexId src, graph::EdgeType type,
                             uint32_t seq);
  static std::string VertexKey(graph::VertexId id);

  /// Cache-through KV read: BGS cache, then the LSM path.
  Result<std::string> CachedGet(const std::string& key);
  /// Write-through: updates the cache and the LSM.
  Status CachedPut(const std::string& key, const std::string& value);
  void CacheErase(const std::string& key);

  std::mutex& StripeFor(graph::VertexId src, graph::EdgeType type);

  const ByteGraphOptions opts_;
  std::unique_ptr<lsm::ShardedLsm> lsm_;

  // BGS cache: LRU over serialized tree nodes.
  std::mutex cache_mu_;
  std::list<std::string> lru_;  // most recent at front; values are keys
  struct CacheEntry {
    std::string value;
    std::list<std::string>::iterator lru_it;
  };
  std::unordered_map<std::string, CacheEntry> cache_;
  size_t cache_used_ = 0;

  std::vector<std::unique_ptr<std::mutex>> stripes_;
  ByteGraphStats stats_;
};

}  // namespace bg3::bytegraph

#endif  // BG3_BYTEGRAPH_BYTEGRAPH_DB_H_
