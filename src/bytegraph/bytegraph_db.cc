#include "bytegraph/bytegraph_db.h"

#include "common/timed_scope.h"

#include <algorithm>

#include "common/coding.h"
#include "common/hash.h"
#include "common/logging.h"

namespace bg3::bytegraph {

namespace {

void AppendBigEndian64(std::string* dst, uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    dst->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void AppendBigEndian32(std::string* dst, uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    dst->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

}  // namespace

ByteGraphDB::ByteGraphDB(cloud::CloudStore* store,
                         const ByteGraphOptions& options)
    : opts_(options) {
  lsm_ = std::make_unique<lsm::ShardedLsm>(store, options.lsm,
                                           options.lsm_shards);
  stripes_.reserve(opts_.lock_stripes);
  for (size_t i = 0; i < opts_.lock_stripes; ++i) {
    stripes_.push_back(std::make_unique<std::mutex>());
  }
}

std::string ByteGraphDB::MetaKey(graph::VertexId src, graph::EdgeType type) {
  std::string key = "m";
  AppendBigEndian64(&key, src);
  AppendBigEndian32(&key, type);
  return key;
}

std::string ByteGraphDB::NodeKey(graph::VertexId src, graph::EdgeType type,
                                 uint32_t seq) {
  std::string key = "n";
  AppendBigEndian64(&key, src);
  AppendBigEndian32(&key, type);
  AppendBigEndian32(&key, seq);
  return key;
}

std::string ByteGraphDB::VertexKey(graph::VertexId id) {
  std::string key = "v";
  AppendBigEndian64(&key, id);
  return key;
}

std::string ByteGraphDB::EncodeMeta(const Meta& meta) {
  std::string out;
  PutVarint32(&out, meta.next_seq);
  PutVarint32(&out, static_cast<uint32_t>(meta.entries.size()));
  for (const MetaEntry& e : meta.entries) {
    PutFixed64(&out, e.first_dst);
    PutFixed32(&out, e.node_seq);
  }
  return out;
}

Status ByteGraphDB::DecodeMeta(const Slice& data, Meta* out) {
  Slice in = data;
  uint32_t count;
  if (!GetVarint32(&in, &out->next_seq) || !GetVarint32(&in, &count)) {
    return Status::Corruption("edge-tree meta");
  }
  out->entries.clear();
  out->entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    MetaEntry e;
    if (!GetFixed64(&in, &e.first_dst) || !GetFixed32(&in, &e.node_seq)) {
      return Status::Corruption("edge-tree meta entry");
    }
    out->entries.push_back(e);
  }
  return Status::OK();
}

std::string ByteGraphDB::EncodeNode(const std::vector<EdgeRec>& edges) {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(edges.size()));
  for (const EdgeRec& e : edges) {
    PutFixed64(&out, e.dst);
    PutFixed64(&out, e.created_us);
    PutLengthPrefixedSlice(&out, e.properties);
  }
  return out;
}

Status ByteGraphDB::DecodeNode(const Slice& data, std::vector<EdgeRec>* out) {
  Slice in = data;
  uint32_t count;
  if (!GetVarint32(&in, &count)) return Status::Corruption("edge node");
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    EdgeRec e;
    Slice props;
    if (!GetFixed64(&in, &e.dst) || !GetFixed64(&in, &e.created_us) ||
        !GetLengthPrefixedSlice(&in, &props)) {
      return Status::Corruption("edge node entry");
    }
    e.properties = props.ToString();
    out->push_back(std::move(e));
  }
  return Status::OK();
}

std::mutex& ByteGraphDB::StripeFor(graph::VertexId src, graph::EdgeType type) {
  const uint64_t h = Mix64(src ^ (static_cast<uint64_t>(type) << 40));
  return *stripes_[h % stripes_.size()];
}

Result<std::string> ByteGraphDB::CachedGet(const std::string& key) {
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      stats_.cache_hits.Inc();
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.value;
    }
  }
  stats_.cache_misses.Inc();
  auto value = lsm_->Get(key);
  BG3_RETURN_IF_ERROR(value.status());
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    lru_.push_front(key);
    cache_[key] = CacheEntry{value.value(), lru_.begin()};
    cache_used_ += key.size() + value.value().size();
    while (cache_used_ > opts_.cache_bytes && !lru_.empty()) {
      const std::string& victim = lru_.back();
      auto vit = cache_.find(victim);
      if (vit != cache_.end()) {
        cache_used_ -= victim.size() + vit->second.value.size();
        cache_.erase(vit);
      }
      lru_.pop_back();
    }
  }
  return value;
}

Status ByteGraphDB::CachedPut(const std::string& key,
                              const std::string& value) {
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      cache_used_ -= it->second.value.size();
      cache_used_ += value.size();
      it->second.value = value;
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    }
  }
  return lsm_->Put(key, value);
}

void ByteGraphDB::CacheErase(const std::string& key) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_.find(key);
  if (it == cache_.end()) return;
  cache_used_ -= key.size() + it->second.value.size();
  lru_.erase(it->second.lru_it);
  cache_.erase(it);
}

Status ByteGraphDB::AddVertex(graph::VertexId id, const Slice& properties,
                              const OpContext* ctx) {
  BG3_TIMED_SCOPE("bg3.bytegraph.add_vertex_ns");
  BG3_OP_SCOPE("bg3.bytegraph.add_vertex", ctx);
  OpLayerScope api_layer(OpLayer::kApi);
  BG3_RETURN_IF_ERROR(ValidateOpContext(ctx));
  return CachedPut(VertexKey(id), properties.ToString());
}

Result<std::string> ByteGraphDB::GetVertex(graph::VertexId id,
                                           const OpContext* ctx) {
  BG3_TIMED_SCOPE("bg3.bytegraph.get_vertex_ns");
  BG3_OP_SCOPE("bg3.bytegraph.get_vertex", ctx);
  OpLayerScope api_layer(OpLayer::kApi);
  BG3_RETURN_IF_ERROR(ValidateOpContext(ctx));
  return CachedGet(VertexKey(id));
}

Status ByteGraphDB::DeleteVertex(graph::VertexId id, graph::EdgeType type,
                                 const OpContext* ctx) {
  BG3_TIMED_SCOPE("bg3.bytegraph.delete_vertex_ns");
  BG3_OP_SCOPE("bg3.bytegraph.delete_vertex", ctx);
  OpLayerScope api_layer(OpLayer::kApi);
  BG3_RETURN_IF_ERROR(ValidateOpContext(ctx));
  std::lock_guard<std::mutex> lock(StripeFor(id, type));
  CacheErase(VertexKey(id));
  BG3_RETURN_IF_ERROR(lsm_->Delete(VertexKey(id)));
  auto meta_data = CachedGet(MetaKey(id, type));
  if (meta_data.status().IsNotFound()) return Status::OK();
  BG3_RETURN_IF_ERROR(meta_data.status());
  Meta meta;
  BG3_RETURN_IF_ERROR(DecodeMeta(Slice(meta_data.value()), &meta));
  for (const MetaEntry& entry : meta.entries) {
    BG3_RETURN_IF_ERROR(CheckDeadline(ctx, "bytegraph delete vertex"));
    const std::string node_key = NodeKey(id, type, entry.node_seq);
    CacheErase(node_key);
    BG3_RETURN_IF_ERROR(lsm_->Delete(node_key));
  }
  CacheErase(MetaKey(id, type));
  return lsm_->Delete(MetaKey(id, type));
}

Status ByteGraphDB::AddEdge(graph::VertexId src, graph::EdgeType type,
                            graph::VertexId dst, const Slice& properties,
                            graph::TimestampUs created_us,
                            const OpContext* ctx) {
  BG3_TIMED_SCOPE("bg3.bytegraph.add_edge_ns");
  BG3_OP_SCOPE("bg3.bytegraph.add_edge", ctx);
  OpLayerScope api_layer(OpLayer::kApi);
  BG3_RETURN_IF_ERROR(ValidateOpContext(ctx));
  std::lock_guard<std::mutex> lock(StripeFor(src, type));
  Meta meta;
  auto meta_data = CachedGet(MetaKey(src, type));
  if (meta_data.ok()) {
    BG3_RETURN_IF_ERROR(DecodeMeta(Slice(meta_data.value()), &meta));
  } else if (!meta_data.status().IsNotFound()) {
    return meta_data.status();
  }

  EdgeRec rec{dst, created_us, properties.ToString()};
  if (meta.entries.empty()) {
    // First edge of this adjacency list: create node 0 and the meta node.
    meta.entries.push_back(MetaEntry{dst, meta.next_seq});
    const uint32_t seq = meta.next_seq++;
    BG3_RETURN_IF_ERROR(CachedPut(NodeKey(src, type, seq), EncodeNode({rec})));
    return CachedPut(MetaKey(src, type), EncodeMeta(meta));
  }

  // Route to the last node whose first_dst <= dst.
  auto mit = std::upper_bound(meta.entries.begin(), meta.entries.end(), dst,
                              [](graph::VertexId d, const MetaEntry& e) {
                                return d < e.first_dst;
                              });
  if (mit != meta.entries.begin()) --mit;
  const size_t node_idx = mit - meta.entries.begin();

  std::vector<EdgeRec> edges;
  const std::string node_key = NodeKey(src, type, mit->node_seq);
  auto node_data = CachedGet(node_key);
  BG3_RETURN_IF_ERROR(node_data.status());
  BG3_RETURN_IF_ERROR(DecodeNode(Slice(node_data.value()), &edges));

  auto eit = std::lower_bound(
      edges.begin(), edges.end(), dst,
      [](const EdgeRec& e, graph::VertexId d) { return e.dst < d; });
  if (eit != edges.end() && eit->dst == dst) {
    *eit = std::move(rec);  // overwrite existing edge
  } else {
    edges.insert(eit, std::move(rec));
  }

  bool meta_dirty = false;
  if (edges.front().dst < meta.entries[node_idx].first_dst) {
    meta.entries[node_idx].first_dst = edges.front().dst;
    meta_dirty = true;
  }
  if (edges.size() > opts_.max_node_edges) {
    // Split the edge node in half; the upper half gets a fresh node.
    stats_.node_splits.Inc();
    const size_t mid = edges.size() / 2;
    std::vector<EdgeRec> upper(std::make_move_iterator(edges.begin() + mid),
                               std::make_move_iterator(edges.end()));
    edges.resize(mid);
    const uint32_t new_seq = meta.next_seq++;
    meta.entries.insert(meta.entries.begin() + node_idx + 1,
                        MetaEntry{upper.front().dst, new_seq});
    meta_dirty = true;
    BG3_RETURN_IF_ERROR(
        CachedPut(NodeKey(src, type, new_seq), EncodeNode(upper)));
  }
  BG3_RETURN_IF_ERROR(CachedPut(node_key, EncodeNode(edges)));
  if (meta_dirty) {
    BG3_RETURN_IF_ERROR(CachedPut(MetaKey(src, type), EncodeMeta(meta)));
  }
  return Status::OK();
}

Status ByteGraphDB::DeleteEdge(graph::VertexId src, graph::EdgeType type,
                               graph::VertexId dst, const OpContext* ctx) {
  BG3_TIMED_SCOPE("bg3.bytegraph.delete_edge_ns");
  BG3_OP_SCOPE("bg3.bytegraph.delete_edge", ctx);
  OpLayerScope api_layer(OpLayer::kApi);
  BG3_RETURN_IF_ERROR(ValidateOpContext(ctx));
  std::lock_guard<std::mutex> lock(StripeFor(src, type));
  auto meta_data = CachedGet(MetaKey(src, type));
  if (meta_data.status().IsNotFound()) return Status::OK();
  BG3_RETURN_IF_ERROR(meta_data.status());
  Meta meta;
  BG3_RETURN_IF_ERROR(DecodeMeta(Slice(meta_data.value()), &meta));
  if (meta.entries.empty()) return Status::OK();
  auto mit = std::upper_bound(meta.entries.begin(), meta.entries.end(), dst,
                              [](graph::VertexId d, const MetaEntry& e) {
                                return d < e.first_dst;
                              });
  if (mit == meta.entries.begin()) return Status::OK();
  --mit;
  const std::string node_key = NodeKey(src, type, mit->node_seq);
  auto node_data = CachedGet(node_key);
  BG3_RETURN_IF_ERROR(node_data.status());
  std::vector<EdgeRec> edges;
  BG3_RETURN_IF_ERROR(DecodeNode(Slice(node_data.value()), &edges));
  auto eit = std::lower_bound(
      edges.begin(), edges.end(), dst,
      [](const EdgeRec& e, graph::VertexId d) { return e.dst < d; });
  if (eit == edges.end() || eit->dst != dst) return Status::OK();
  edges.erase(eit);
  return CachedPut(node_key, EncodeNode(edges));
}

Result<std::string> ByteGraphDB::GetEdge(graph::VertexId src,
                                         graph::EdgeType type,
                                         graph::VertexId dst,
                                         const OpContext* ctx) {
  BG3_TIMED_SCOPE("bg3.bytegraph.get_edge_ns");
  BG3_OP_SCOPE("bg3.bytegraph.get_edge", ctx);
  OpLayerScope api_layer(OpLayer::kApi);
  BG3_RETURN_IF_ERROR(ValidateOpContext(ctx));
  auto meta_data = CachedGet(MetaKey(src, type));
  BG3_RETURN_IF_ERROR(meta_data.status());
  Meta meta;
  BG3_RETURN_IF_ERROR(DecodeMeta(Slice(meta_data.value()), &meta));
  if (meta.entries.empty()) return Status::NotFound("no edges");
  auto mit = std::upper_bound(meta.entries.begin(), meta.entries.end(), dst,
                              [](graph::VertexId d, const MetaEntry& e) {
                                return d < e.first_dst;
                              });
  if (mit == meta.entries.begin()) return Status::NotFound("no such edge");
  --mit;
  auto node_data = CachedGet(NodeKey(src, type, mit->node_seq));
  BG3_RETURN_IF_ERROR(node_data.status());
  std::vector<EdgeRec> edges;
  BG3_RETURN_IF_ERROR(DecodeNode(Slice(node_data.value()), &edges));
  auto eit = std::lower_bound(
      edges.begin(), edges.end(), dst,
      [](const EdgeRec& e, graph::VertexId d) { return e.dst < d; });
  if (eit == edges.end() || eit->dst != dst) {
    return Status::NotFound("no such edge");
  }
  return eit->properties;
}

Status ByteGraphDB::GetNeighbors(graph::VertexId src, graph::EdgeType type,
                                 size_t limit,
                                 std::vector<graph::Neighbor>* out,
                                 const OpContext* ctx) {
  BG3_TIMED_SCOPE("bg3.bytegraph.get_neighbors_ns");
  BG3_OP_SCOPE("bg3.bytegraph.get_neighbors", ctx);
  OpLayerScope api_layer(OpLayer::kApi);
  BG3_RETURN_IF_ERROR(ValidateOpContext(ctx));
  auto meta_data = CachedGet(MetaKey(src, type));
  if (meta_data.status().IsNotFound()) return Status::OK();
  BG3_RETURN_IF_ERROR(meta_data.status());
  Meta meta;
  BG3_RETURN_IF_ERROR(DecodeMeta(Slice(meta_data.value()), &meta));
  size_t remaining = limit;
  for (const MetaEntry& entry : meta.entries) {
    if (remaining == 0) break;
    BG3_RETURN_IF_ERROR(CheckDeadline(ctx, "bytegraph neighbors"));
    auto node_data = CachedGet(NodeKey(src, type, entry.node_seq));
    BG3_RETURN_IF_ERROR(node_data.status());
    std::vector<EdgeRec> edges;
    BG3_RETURN_IF_ERROR(DecodeNode(Slice(node_data.value()), &edges));
    for (EdgeRec& e : edges) {
      if (remaining == 0) break;
      out->push_back(
          graph::Neighbor{e.dst, e.created_us, std::move(e.properties)});
      --remaining;
    }
  }
  return Status::OK();
}

}  // namespace bg3::bytegraph
