#ifndef BG3_GC_EXTENT_USAGE_H_
#define BG3_GC_EXTENT_USAGE_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "cloud/cloud_store.h"
#include "cloud/types.h"
#include "common/thread_annotations.h"

namespace bg3::gc {

/// The in-memory "Extent Usage Tracking" structure of §3.3: per extent, the
/// latest update time, the invalidation history needed for the update
/// gradient, and (derived) the TTL deadline.
struct ExtentUsage {
  cloud::StreamId stream = 0;
  cloud::ExtentId extent = cloud::kInvalidExtent;

  uint64_t created_us = 0;
  /// Timestamp of the most recently appended record — the extent's
  /// timestamp for TTL purposes ("we assign the timestamp of the most
  /// recently updated piece of data in an extent as the timestamp for the
  /// entire extent").
  uint64_t last_append_us = 0;
  /// Timestamp of the most recent invalidation.
  uint64_t last_invalidate_us = 0;

  uint32_t invalid_count = 0;

  // Sliding-window samples for the update gradient ("whenever an extent
  // undergoes an update, we log both the time of the update and the count
  // of invalid pages it currently contains", cf. [26]).
  uint64_t window_start_us = 0;
  uint32_t window_start_invalid = 0;
  double rolled_rate = 0.0;  ///< gradient of the last completed window.

  /// Invalid pages per second, (delta invalid)/(delta time) as in Fig. 5.
  double UpdateGradient(uint64_t now_us) const;

  /// Absolute expiry deadline, or 0 when no TTL applies.
  uint64_t TtlDeadlineUs(uint64_t ttl_us) const {
    return ttl_us == 0 ? 0 : last_append_us + ttl_us;
  }
};

/// Observes the cloud store and maintains ExtentUsage records. Installed
/// via CloudStore::SetObserver; all callbacks are cheap (hash lookup +
/// field updates under one mutex).
class ExtentUsageTracker : public cloud::StoreObserver {
 public:
  /// `time_source` must outlive the tracker. `gradient_window_us` is the
  /// sample window for gradient estimation.
  explicit ExtentUsageTracker(const cloud::TimeSource* time_source,
                              uint64_t gradient_window_us = 1'000'000);

  void OnAppend(const cloud::PagePointer& ptr) override;
  void OnInvalidate(const cloud::PagePointer& ptr) override;
  void OnExtentFreed(cloud::StreamId stream, cloud::ExtentId extent) override;

  /// Snapshot of one extent's usage (zero-initialized default if unseen).
  ExtentUsage GetUsage(cloud::StreamId stream, cloud::ExtentId extent) const;

  uint64_t NowUs() const { return time_source_->NowUs(); }

 private:
  const cloud::TimeSource* const time_source_;
  const uint64_t gradient_window_us_;

  mutable Mutex mu_;
  // Extent ids are allocated globally within a CloudStore, so the extent id
  // alone keys the map.
  std::unordered_map<cloud::ExtentId, ExtentUsage> usage_ BG3_GUARDED_BY(mu_);
};

}  // namespace bg3::gc

#endif  // BG3_GC_EXTENT_USAGE_H_
