#include "gc/policy.h"

#include <algorithm>

namespace bg3::gc {

std::vector<cloud::ExtentId> FifoPolicy::SelectVictims(
    std::vector<GcCandidate> c, size_t n, const SelectContext& ctx) {
  // Candidates arrive oldest-first (extent ids are monotone); keep order.
  std::sort(c.begin(), c.end(), [](const GcCandidate& a, const GcCandidate& b) {
    return a.stats.id < b.stats.id;
  });
  std::vector<cloud::ExtentId> out;
  for (const GcCandidate& cand : c) {
    if (out.size() >= n) break;
    out.push_back(cand.stats.id);
  }
  return out;
}

std::vector<cloud::ExtentId> DirtyRatioPolicy::SelectVictims(
    std::vector<GcCandidate> c, size_t n, const SelectContext& ctx) {
  std::sort(c.begin(), c.end(), [](const GcCandidate& a, const GcCandidate& b) {
    return a.stats.FragmentationRate() > b.stats.FragmentationRate();
  });
  std::vector<cloud::ExtentId> out;
  for (const GcCandidate& cand : c) {
    if (out.size() >= n) break;
    if (cand.stats.FragmentationRate() < min_fragmentation_) break;
    out.push_back(cand.stats.id);
  }
  return out;
}

std::vector<cloud::ExtentId> WorkloadAwarePolicy::SelectVictims(
    std::vector<GcCandidate> c, size_t n, const SelectContext& ctx) {
  // Algorithm 2, with the TTL bypass of §3.3: "In situations where data
  // expiration is involved, we bypass those extents and allow them to
  // expire naturally."
  if (ctx.ttl_us != 0) {
    std::erase_if(c, [&](const GcCandidate& cand) {
      return cand.usage.TtlDeadlineUs(ctx.ttl_us) != 0;
    });
  }
  std::erase_if(c, [&](const GcCandidate& cand) {
    return cand.stats.FragmentationRate() < min_fragmentation_;
  });

  // Fully-dead extents are free reclamation regardless of hotness: the
  // update gradient predicts future invalidation of *remaining* valid data,
  // and they have none. Take them first.
  std::vector<cloud::ExtentId> out;
  std::erase_if(c, [&](const GcCandidate& cand) {
    if (out.size() < n &&
        cand.stats.invalid_records == cand.stats.total_records) {
      out.push_back(cand.stats.id);
      return true;
    }
    return false;
  });
  if (out.size() >= n) return out;

  // Line 2: getExtentsWithSmallestUpdateGradient — keep the coldest pool.
  std::sort(c.begin(), c.end(),
            [&](const GcCandidate& a, const GcCandidate& b) {
              return a.usage.UpdateGradient(ctx.now_us) <
                     b.usage.UpdateGradient(ctx.now_us);
            });
  const size_t remaining = n - out.size();
  const size_t pool = std::min(
      c.size(), std::max<size_t>(remaining, 1) *
                    std::max<size_t>(cold_pool_factor_, 1));
  c.resize(pool);

  // Line 3: sortByFragmentationRate within the cold pool.
  std::sort(c.begin(), c.end(), [](const GcCandidate& a, const GcCandidate& b) {
    return a.stats.FragmentationRate() > b.stats.FragmentationRate();
  });

  for (const GcCandidate& cand : c) {
    if (out.size() >= n) break;
    out.push_back(cand.stats.id);
  }
  return out;
}

std::vector<cloud::ExtentId> HybridTtlGradientPolicy::SelectVictims(
    std::vector<GcCandidate> c, size_t n, const SelectContext& ctx) {
  if (ctx.ttl_us != 0) {
    // Bypass only extents about to expire on their own; distant-deadline
    // extents stay eligible (the whole point of the hybrid).
    std::erase_if(c, [&](const GcCandidate& cand) {
      const uint64_t deadline = cand.usage.TtlDeadlineUs(ctx.ttl_us);
      return deadline != 0 && deadline <= ctx.now_us + bypass_window_us_;
    });
  }
  SelectContext inner_ctx = ctx;
  inner_ctx.ttl_us = 0;  // TTL handling already applied above
  return inner_.SelectVictims(std::move(c), n, inner_ctx);
}

}  // namespace bg3::gc
