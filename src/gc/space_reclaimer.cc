#include "gc/space_reclaimer.h"

#include "common/logging.h"
#include "common/retry.h"
#include "common/timed_scope.h"

namespace bg3::gc {

namespace {

/// Errors that defer a victim to the next cycle rather than failing it:
/// substrate trouble (transient or not) is survivable — the extent is not
/// going anywhere; logic errors (InvalidArgument etc.) still propagate.
bool IsDeferrable(const Status& s) {
  return s.IsIOError() || s.IsBusy() || s.IsCorruption();
}

}  // namespace

SpaceReclaimer::SpaceReclaimer(cloud::CloudStore* store,
                               TreeResolver* resolver, GcPolicy* policy,
                               ExtentUsageTracker* tracker,
                               const ReclaimOptions& options)
    : store_(store),
      resolver_(resolver),
      policy_(policy),
      tracker_(tracker),
      opts_(options) {
  BG3_CHECK(store_ != nullptr && resolver_ != nullptr && policy_ != nullptr &&
            tracker_ != nullptr);
}

Result<CycleResult> SpaceReclaimer::RunCycle(cloud::StreamId stream,
                                             size_t max_extents) {
  BG3_TIMED_SCOPE("bg3.gc.cycle_ns");
  OpLayerScope gc_layer(OpLayer::kGc);
  CycleResult result;
  const uint64_t now = tracker_->NowUs();

  std::vector<GcCandidate> candidates;
  for (const cloud::ExtentStats& stats : store_->SealedExtentStats(stream)) {
    GcCandidate cand;
    cand.stats = stats;
    cand.usage = tracker_->GetUsage(stream, stats.id);
    candidates.push_back(std::move(cand));
  }
  result.extents_examined = candidates.size();

  // Phase 1: free extents whose TTL elapsed — no data movement at all.
  if (opts_.ttl_us != 0) {
    BG3_TIMED_SCOPE("bg3.gc.expire_phase_ns");
    std::vector<GcCandidate> remaining;
    remaining.reserve(candidates.size());
    for (GcCandidate& cand : candidates) {
      const uint64_t deadline = cand.usage.TtlDeadlineUs(opts_.ttl_us);
      if (deadline != 0 && deadline <= now) {
        const Status s = RetryWithBackoff(StoreRetryOptions(), [&] {
          return store_->FreeExtent(stream, cand.stats.id);
        });
        if (!s.ok()) {
          if (!IsDeferrable(s)) return s;
          // The deadline stays in the past; next cycle frees it.
          ++result.extents_deferred;
          continue;
        }
        result.bytes_freed += cand.stats.used_bytes;
        ++result.extents_expired;
      } else {
        remaining.push_back(std::move(cand));
      }
    }
    candidates = std::move(remaining);
  }

  // Phase 2: relocate policy-selected victims while space pressure remains.
  const uint64_t total = store_->TotalBytes(stream);
  const uint64_t live = store_->LiveBytes(stream);
  const double dead_ratio =
      total == 0 ? 0.0
                 : static_cast<double>(total - live) / static_cast<double>(total);
  if (dead_ratio > opts_.target_dead_ratio) {
    BG3_TIMED_SCOPE("bg3.gc.relocate_phase_ns");
    std::unordered_map<cloud::ExtentId, uint64_t> used_bytes;
    for (const GcCandidate& cand : candidates) {
      used_bytes[cand.stats.id] = cand.stats.used_bytes;
    }
    SelectContext ctx;
    ctx.now_us = now;
    ctx.ttl_us = opts_.ttl_us;
    for (cloud::ExtentId victim :
         policy_->SelectVictims(std::move(candidates), max_extents, ctx)) {
      auto moved = RelocateExtent(stream, victim);
      if (!moved.ok()) {
        if (!IsDeferrable(moved.status())) return moved.status();
        // Partial relocation is safe: records already moved were
        // invalidated at their old location, so the re-attempt next cycle
        // relocates only what remains.
        ++result.extents_deferred;
        continue;
      }
      result.bytes_moved += moved.value();
      result.bytes_freed += used_bytes[victim];
      ++result.extents_reclaimed;
    }
  }

  totals_.extents_examined += result.extents_examined;
  totals_.extents_reclaimed += result.extents_reclaimed;
  totals_.extents_expired += result.extents_expired;
  totals_.extents_deferred += result.extents_deferred;
  totals_.bytes_moved += result.bytes_moved;
  totals_.bytes_freed += result.bytes_freed;
  return result;
}

Result<uint64_t> SpaceReclaimer::RelocateExtent(cloud::StreamId stream,
                                                cloud::ExtentId extent) {
  BG3_TIMED_SCOPE("bg3.gc.relocate_extent_ns");
  OpLayerScope gc_layer(OpLayer::kGc);
  auto records = RetryResultWithBackoff(StoreRetryOptions(), [&] {
    return store_->ReadValidRecords(stream, extent);
  });
  BG3_RETURN_IF_ERROR(records.status());
  uint64_t moved = 0;
  for (const auto& [ptr, bytes] : records.value()) {
    Slice in(bytes);
    bwtree::RecordHeader header;
    BG3_RETURN_IF_ERROR(bwtree::DecodeRecordHeader(&in, &header));
    bwtree::BwTree* tree = resolver_->Resolve(header.tree_id);
    if (tree == nullptr) {
      // Orphaned record (its tree is gone): drop it.
      store_->MarkInvalid(ptr);
      continue;
    }
    auto n = tree->Relocate(ptr, bytes);
    BG3_RETURN_IF_ERROR(n.status());
    moved += n.value();
  }
  // All valid records re-installed elsewhere: release the extent.
  BG3_RETURN_IF_ERROR(RetryWithBackoff(
      StoreRetryOptions(), [&] { return store_->FreeExtent(stream, extent); }));
  store_->stats().gc_moved_bytes.Add(moved);
  return moved;
}

RetryOptions SpaceReclaimer::StoreRetryOptions() const {
  RetryOptions retry = opts_.retry;
  retry.retries = &store_->stats().retries;
  retry.retry_exhausted = &store_->stats().retry_exhausted;
  return retry;
}

}  // namespace bg3::gc
