#ifndef BG3_GC_POLICY_H_
#define BG3_GC_POLICY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cloud/stream.h"
#include "gc/extent_usage.h"

namespace bg3::gc {

/// One reclaimable extent as seen by a policy.
struct GcCandidate {
  cloud::ExtentStats stats;
  ExtentUsage usage;
};

/// Inputs common to a selection round.
struct SelectContext {
  uint64_t now_us = 0;
  /// TTL configured for this stream's data (0 = none). Workload-aware
  /// policies bypass extents that will expire on their own (§3.3 Obs. 2).
  uint64_t ttl_us = 0;
};

/// Victim-selection strategy for one reclamation cycle.
class GcPolicy {
 public:
  virtual ~GcPolicy() = default;
  virtual std::string name() const = 0;

  /// Picks up to `max_victims` extents to relocate, best victims first.
  virtual std::vector<cloud::ExtentId> SelectVictims(
      std::vector<GcCandidate> candidates, size_t max_victims,
      const SelectContext& ctx) = 0;
};

/// Traditional Bw-tree reclamation: a FIFO queue — always relocate the
/// oldest extents regardless of their content (§3.3 opening).
class FifoPolicy : public GcPolicy {
 public:
  std::string name() const override { return "fifo"; }
  std::vector<cloud::ExtentId> SelectVictims(std::vector<GcCandidate> c,
                                             size_t n,
                                             const SelectContext& ctx) override;
};

/// ArkDB-style baseline [31]: pick the extents with the highest ratio of
/// reclaimable space (fragmentation / dirty ratio).
class DirtyRatioPolicy : public GcPolicy {
 public:
  /// Extents below `min_fragmentation` are not worth moving.
  explicit DirtyRatioPolicy(double min_fragmentation = 0.05)
      : min_fragmentation_(min_fragmentation) {}

  std::string name() const override { return "dirty-ratio"; }
  std::vector<cloud::ExtentId> SelectVictims(std::vector<GcCandidate> c,
                                             size_t n,
                                             const SelectContext& ctx) override;

 private:
  const double min_fragmentation_;
};

/// BG3's workload-aware policy (Algorithm 2): prefer cold extents (smallest
/// update gradient) and, among those, the highest fragmentation rate;
/// bypass extents covered by a TTL so they expire in place.
class WorkloadAwarePolicy : public GcPolicy {
 public:
  /// `cold_pool_factor`: the lowest-gradient pool examined per round is
  /// max_victims * this factor, mirroring Algorithm 2's
  /// getExtentsWithSmallestUpdateGradient / sortByFragmentationRate split.
  explicit WorkloadAwarePolicy(double min_fragmentation = 0.05,
                               size_t cold_pool_factor = 4)
      : min_fragmentation_(min_fragmentation),
        cold_pool_factor_(cold_pool_factor) {}

  std::string name() const override { return "workload-aware"; }
  std::vector<cloud::ExtentId> SelectVictims(std::vector<GcCandidate> c,
                                             size_t n,
                                             const SelectContext& ctx) override;

 private:
  const double min_fragmentation_;
  const size_t cold_pool_factor_;
};

/// The paper's stated future work (§4.4): "merging the gradient strategy
/// with the TTL approach, which only bypasses extents that have a set TTL
/// and are close to their expiration time". Extents whose TTL deadline is
/// within `bypass_window_us` of now are left to expire in place; everything
/// else — including TTL'd data that still has a long life ahead — competes
/// under the gradient+fragmentation rule, so long-TTL workloads (30-day
/// retention) no longer strand dead space for the whole retention period.
class HybridTtlGradientPolicy : public GcPolicy {
 public:
  explicit HybridTtlGradientPolicy(uint64_t bypass_window_us,
                                   double min_fragmentation = 0.05,
                                   size_t cold_pool_factor = 4)
      : bypass_window_us_(bypass_window_us),
        inner_(min_fragmentation, cold_pool_factor) {}

  std::string name() const override { return "hybrid-ttl-gradient"; }
  std::vector<cloud::ExtentId> SelectVictims(std::vector<GcCandidate> c,
                                             size_t n,
                                             const SelectContext& ctx) override;

 private:
  const uint64_t bypass_window_us_;
  WorkloadAwarePolicy inner_;
};

}  // namespace bg3::gc

#endif  // BG3_GC_POLICY_H_
