#include "gc/extent_usage.h"

#include <algorithm>

#include "common/logging.h"

namespace bg3::gc {

double ExtentUsage::UpdateGradient(uint64_t now_us) const {
  if (window_start_us == 0) return 0.0;  // never invalidated
  const uint64_t elapsed = now_us > window_start_us
                               ? now_us - window_start_us
                               : 1;  // same-instant updates: treat as 1us
  const double cur_rate =
      static_cast<double>(invalid_count - window_start_invalid) * 1e6 /
      static_cast<double>(elapsed);
  // Blend with the last completed window so a freshly rolled window does not
  // make a hot extent momentarily look cold.
  return std::max(cur_rate, rolled_rate);
}

ExtentUsageTracker::ExtentUsageTracker(const cloud::TimeSource* time_source,
                                       uint64_t gradient_window_us)
    : time_source_(time_source), gradient_window_us_(gradient_window_us) {}

void ExtentUsageTracker::OnAppend(const cloud::PagePointer& ptr) {
  const uint64_t now = time_source_->NowUs();
  MutexLock lock(&mu_);
  ExtentUsage& u = usage_[ptr.extent_id];
  if (u.extent == cloud::kInvalidExtent) {
    u.stream = ptr.stream_id;
    u.extent = ptr.extent_id;
    u.created_us = now;
  }
  u.last_append_us = now;
}

void ExtentUsageTracker::OnInvalidate(const cloud::PagePointer& ptr) {
  const uint64_t now = time_source_->NowUs();
  MutexLock lock(&mu_);
  ExtentUsage& u = usage_[ptr.extent_id];
  if (u.extent == cloud::kInvalidExtent) {
    u.stream = ptr.stream_id;
    u.extent = ptr.extent_id;
    u.created_us = now;
  }
  u.last_invalidate_us = now;
  ++u.invalid_count;
  if (u.window_start_us == 0) {
    u.window_start_us = now;
    u.window_start_invalid = u.invalid_count - 1;
    return;
  }
  if (now - u.window_start_us >= gradient_window_us_) {
    u.rolled_rate =
        static_cast<double>(u.invalid_count - u.window_start_invalid) * 1e6 /
        static_cast<double>(now - u.window_start_us);
    u.window_start_us = now;
    u.window_start_invalid = u.invalid_count;
  }
  // Gradient-window accounting can never run backwards: the window base
  // always trails the current invalid count, and timestamps are monotone.
  BG3_DCHECK_LE(u.window_start_invalid, u.invalid_count);
  BG3_DCHECK_LE(u.window_start_us, now);
  BG3_DCHECK_LE(u.created_us, now);
}

void ExtentUsageTracker::OnExtentFreed(cloud::StreamId stream,
                                       cloud::ExtentId extent) {
  MutexLock lock(&mu_);
  usage_.erase(extent);
}

ExtentUsage ExtentUsageTracker::GetUsage(cloud::StreamId stream,
                                         cloud::ExtentId extent) const {
  MutexLock lock(&mu_);
  auto it = usage_.find(extent);
  if (it == usage_.end()) {
    ExtentUsage u;
    u.stream = stream;
    u.extent = extent;
    return u;
  }
  return it->second;
}

}  // namespace bg3::gc
