#ifndef BG3_GC_SPACE_RECLAIMER_H_
#define BG3_GC_SPACE_RECLAIMER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bwtree/bwtree.h"
#include "cloud/cloud_store.h"
#include "common/retry.h"
#include "gc/extent_usage.h"
#include "gc/policy.h"

namespace bg3::gc {

/// Maps a record's tree id to the tree that owns it (implemented by
/// BwTreeForest or a single-tree adapter).
class TreeResolver {
 public:
  virtual ~TreeResolver() = default;
  virtual bwtree::BwTree* Resolve(bwtree::TreeId id) = 0;
};

/// Adapter exposing a single BwTree as a resolver.
class SingleTreeResolver : public TreeResolver {
 public:
  explicit SingleTreeResolver(bwtree::BwTree* tree) : tree_(tree) {}
  bwtree::BwTree* Resolve(bwtree::TreeId id) override {
    return id == tree_->options().tree_id ? tree_ : nullptr;
  }

 private:
  bwtree::BwTree* const tree_;
};

struct ReclaimOptions {
  /// TTL of this stream's data (0 = none). Extents whose deadline passed
  /// are freed in place, no relocation (§3.3 Observation 2 / Fig. 5 B@t2).
  uint64_t ttl_us = 0;
  /// Trigger threshold: a cycle relocates only while the stream's dead-byte
  /// ratio exceeds this (background GC runs ahead of space pressure).
  double target_dead_ratio = 0.10;
  /// Retry policy for the cycle's store I/O (extent frees, valid-record
  /// reads). Once a victim's budget is exhausted the extent is *deferred* —
  /// skipped this cycle, retried next — rather than failing the cycle:
  /// background reclamation must ride out storage trouble, not amplify it.
  RetryOptions retry;
};

/// Outcome of one reclamation cycle; Table 2's "Write Amplification Bwd
/// Occupation (MB/s)" is bytes_moved summed over cycles divided by the
/// workload's (virtual) duration.
struct CycleResult {
  size_t extents_examined = 0;
  size_t extents_reclaimed = 0;
  size_t extents_expired = 0;
  /// Victims skipped after their I/O retry budget ran out; they remain
  /// candidates for the next cycle (relocation is idempotent: records
  /// already moved were invalidated at their old location).
  size_t extents_deferred = 0;
  uint64_t bytes_moved = 0;   ///< valid data rewritten to new extents.
  uint64_t bytes_freed = 0;   ///< total capacity returned to the store.
};

/// Executes space reclamation cycles against one stream of the cloud store,
/// relocating still-valid records through their owning trees (§3.3).
class SpaceReclaimer {
 public:
  SpaceReclaimer(cloud::CloudStore* store, TreeResolver* resolver,
                 GcPolicy* policy, ExtentUsageTracker* tracker,
                 const ReclaimOptions& options);

  /// One cycle over `stream`: free expired extents, then relocate up to
  /// `max_extents` victims chosen by the policy.
  Result<CycleResult> RunCycle(cloud::StreamId stream, size_t max_extents);

  /// Cumulative counters across cycles.
  const CycleResult& totals() const { return totals_; }
  const ReclaimOptions& options() const { return opts_; }

 private:
  Result<uint64_t> RelocateExtent(cloud::StreamId stream,
                                  cloud::ExtentId extent);
  /// opts_.retry with accounting wired to the store's IoStats.
  RetryOptions StoreRetryOptions() const;

  cloud::CloudStore* const store_;
  TreeResolver* const resolver_;
  GcPolicy* const policy_;
  ExtentUsageTracker* const tracker_;
  const ReclaimOptions opts_;
  CycleResult totals_;
};

}  // namespace bg3::gc

#endif  // BG3_GC_SPACE_RECLAIMER_H_
