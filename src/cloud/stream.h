#ifndef BG3_CLOUD_STREAM_H_
#define BG3_CLOUD_STREAM_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cloud/extent.h"
#include "cloud/types.h"
#include "common/result.h"
#include "common/thread_annotations.h"

namespace bg3::cloud {

/// Snapshot of one extent's reclamation-relevant state, returned to GC
/// policies. Timestamps are maintained by the gc module, not here.
struct ExtentStats {
  ExtentId id = kInvalidExtent;
  bool sealed = false;
  uint32_t total_records = 0;
  uint32_t invalid_records = 0;
  uint64_t used_bytes = 0;
  uint64_t dead_bytes = 0;

  double FragmentationRate() const {
    return total_records == 0
               ? 0.0
               : static_cast<double>(invalid_records) / total_records;
  }
};

/// An ordered, append-only sequence of extents. BG3 keeps separate streams
/// for base pages, delta pages and the WAL (§3.3, following ArkDB) so each
/// can be reclaimed on its own schedule.
class Stream {
 public:
  Stream(StreamId id, std::string name, size_t extent_capacity,
         std::atomic<ExtentId>* extent_id_allocator);

  /// All public methods are individually thread-safe (one mutex per stream,
  /// so appends to different streams never contend).

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  StreamId id() const { return id_; }
  const std::string& name() const { return name_; }

  /// Appends one record, sealing the active extent and opening a new one if
  /// needed. A record larger than the extent capacity gets a dedicated
  /// oversized extent.
  PagePointer Append(const Slice& record);

  /// Term-fenced append (DESIGN.md §5.10): the record is placed only if
  /// `term` is at least the stream's fence term, atomically with the fence
  /// check — a deposed leader's batch can never land after a newer leader's
  /// fence is raised. `term == 0` means unfenced legacy callers, which are
  /// rejected too once a fence is raised (a fenced stream accepts only
  /// writers that present a current term).
  Result<PagePointer> AppendFenced(const Slice& record, uint64_t term);

  /// Raises the fence to `min_term` (monotone; lower values are ignored).
  /// After this returns, every append carrying a term < min_term fails with
  /// Status::Fenced.
  void Fence(uint64_t min_term);

  /// Current fence term (0 = never fenced).
  uint64_t fence_term() const;

  Status Read(const PagePointer& ptr, std::string* out) const;

  /// See Extent::MarkInvalid; returns the invalidated length (0 if unknown).
  uint32_t MarkInvalid(const PagePointer& ptr);

  /// Failure injection passthrough (see Extent::CorruptRecordForTesting).
  bool CorruptRecordForTesting(const PagePointer& ptr, uint32_t byte_index);

  /// Frees a fully processed extent and releases its space.
  Status FreeExtent(ExtentId id);

  /// Sealed-extent stats oldest-first (the FIFO order traditional Bw-tree GC
  /// walks, §3.3).
  std::vector<ExtentStats> SealedExtentStats() const;

  /// Copies of all valid records in `extent` (GC relocation input).
  Result<std::vector<std::pair<PagePointer, std::string>>> ReadValidRecords(
      ExtentId extent);

  /// Log tailing: returns up to `max_records` records appended strictly
  /// after `cursor` (pass a null pointer value — default PagePointer — to
  /// read from the beginning). Records come back in append order.
  std::vector<std::pair<PagePointer, std::string>> TailRecords(
      const PagePointer& cursor, size_t max_records) const;

  uint64_t total_bytes() const;
  uint64_t dead_bytes() const;
  uint64_t live_bytes() const;
  size_t extent_count() const;
  size_t extent_capacity() const { return extent_capacity_; }

 private:
  void OpenNewExtent(size_t capacity) BG3_REQUIRES(mu_);
  PagePointer AppendLocked(const Slice& record) BG3_REQUIRES(mu_);
  Extent* FindExtentLocked(ExtentId id) BG3_REQUIRES(mu_);
  const Extent* FindExtentLocked(ExtentId id) const BG3_REQUIRES(mu_);

  const StreamId id_;
  const std::string name_;
  const size_t extent_capacity_;
  std::atomic<ExtentId>* extent_id_allocator_;

  mutable Mutex mu_;
  // Oldest-first; the last element is the active (unsealed) extent.
  std::map<ExtentId, std::unique_ptr<Extent>> extents_ BG3_GUARDED_BY(mu_);
  Extent* active_ BG3_GUARDED_BY(mu_) = nullptr;
  uint64_t total_bytes_ BG3_GUARDED_BY(mu_) = 0;
  uint64_t dead_bytes_ BG3_GUARDED_BY(mu_) = 0;
  // Minimum term an AppendFenced caller must present (0 = no fence yet).
  // Guarded by mu_ so the check is atomic with record placement.
  uint64_t fence_term_ BG3_GUARDED_BY(mu_) = 0;
};

}  // namespace bg3::cloud

#endif  // BG3_CLOUD_STREAM_H_
