#include "cloud/extent.h"

#include <algorithm>

#include "common/crc32.h"
#include "common/logging.h"

namespace bg3::cloud {

Extent::Extent(ExtentId id, size_t capacity) : id_(id), capacity_(capacity) {
  data_.reserve(capacity);
}

uint32_t Extent::Append(const Slice& record) {
  BG3_CHECK(!sealed_ && !freed_);
  BG3_CHECK(HasRoom(record.size()));
  const uint32_t offset = static_cast<uint32_t>(data_.size());
  data_.append(record.data(), record.size());
  records_.push_back({offset, static_cast<uint32_t>(record.size()),
                      Crc32c(record.data(), record.size()), true});
  ++total_records_;
  return offset;
}

Status Extent::Read(uint32_t offset, uint32_t length, std::string* out) const {
  if (freed_) {
    return Status::IOError("read from freed extent " + std::to_string(id_));
  }
  if (static_cast<size_t>(offset) + length > data_.size()) {
    return Status::InvalidArgument("read past extent tail");
  }
  // Whole-record reads verify the stored checksum; partial-range reads (not
  // used by any current caller) skip it.
  const int idx = FindRecord(offset);
  if (idx >= 0 && records_[idx].length == length &&
      Crc32c(data_.data() + offset, length) != records_[idx].crc) {
    return Status::Corruption("record checksum mismatch in extent " +
                              std::to_string(id_));
  }
  out->assign(data_.data() + offset, length);
  return Status::OK();
}

bool Extent::CorruptRecordForTesting(uint32_t offset, uint32_t byte_index) {
  const int idx = FindRecord(offset);
  if (freed_ || idx < 0 || byte_index >= records_[idx].length) return false;
  data_[offset + byte_index] ^= 0x5A;
  return true;
}

void Extent::Free() {
  freed_ = true;
  data_.clear();
  data_.shrink_to_fit();
  records_.clear();
  records_.shrink_to_fit();
}

int Extent::FindRecord(uint32_t offset) const {
  auto it = std::lower_bound(
      records_.begin(), records_.end(), offset,
      [](const RecordMeta& m, uint32_t off) { return m.offset < off; });
  if (it == records_.end() || it->offset != offset) return -1;
  return static_cast<int>(it - records_.begin());
}

uint32_t Extent::MarkInvalid(uint32_t offset) {
  if (freed_) return 0;
  const int idx = FindRecord(offset);
  if (idx < 0 || !records_[idx].valid) return 0;
  records_[idx].valid = false;
  ++invalid_records_;
  dead_bytes_ += records_[idx].length;
  // Extent accounting invariants (§3.3): the invalid count can never exceed
  // the record count, and dead bytes can never exceed appended bytes — i.e.
  // valid_records() and live_bytes() never go negative.
  BG3_DCHECK_LE(invalid_records_, total_records_);
  BG3_DCHECK_LE(dead_bytes_, used_bytes());
  return records_[idx].length;
}

std::vector<std::pair<uint32_t, uint32_t>> Extent::AllRecords() const {
  std::vector<std::pair<uint32_t, uint32_t>> out;
  out.reserve(records_.size());
  for (const RecordMeta& m : records_) out.emplace_back(m.offset, m.length);
  return out;
}

std::vector<std::pair<uint32_t, uint32_t>> Extent::RecordsAfter(
    int64_t after_offset, size_t max_records) const {
  std::vector<std::pair<uint32_t, uint32_t>> out;
  auto it = std::upper_bound(
      records_.begin(), records_.end(), after_offset,
      [](int64_t off, const RecordMeta& m) {
        return off < static_cast<int64_t>(m.offset);
      });
  for (; it != records_.end() && out.size() < max_records; ++it) {
    out.emplace_back(it->offset, it->length);
  }
  return out;
}

std::vector<std::pair<uint32_t, uint32_t>> Extent::ValidRecords() const {
  std::vector<std::pair<uint32_t, uint32_t>> out;
  out.reserve(valid_records());
  for (const RecordMeta& m : records_) {
    if (m.valid) out.emplace_back(m.offset, m.length);
  }
  return out;
}

}  // namespace bg3::cloud
