#ifndef BG3_CLOUD_CLOUD_STORE_H_
#define BG3_CLOUD_CLOUD_STORE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "cloud/fault_injector.h"
#include "cloud/latency_model.h"
#include "cloud/stream.h"
#include "cloud/types.h"
#include "common/circuit_breaker.h"
#include "common/metrics.h"
#include "common/op_context.h"
#include "common/result.h"
#include "common/thread_annotations.h"

namespace bg3 {
class MetricsRegistry;
}  // namespace bg3

namespace bg3::cloud {

/// Aggregate I/O accounting. Read/write amplification figures (Figs. 9/10,
/// Table 2, storage-cost saving) are all computed from these counters.
/// Every CloudStore registers its IoStats with the default MetricsRegistry
/// under a per-instance prefix (`bg3.cloud.store<N>.`), so DumpMetrics()
/// and the bench JSON read the same counters the figures are computed from.
struct IoStats {
  Counter append_ops;
  Counter append_bytes;
  Counter read_ops;
  Counter read_bytes;
  Counter gc_moved_bytes;    ///< bytes rewritten by space reclamation.
  Counter extents_freed;
  Counter manifest_updates;

  // Fault-injection observability (zero in every default bench run):
  // faults fired by an attached FaultInjector, re-attempts spent by callers'
  // RetryWithBackoff wrappers, and budgets that ran dry.
  Counter injected_faults;
  Counter retries;
  Counter retry_exhausted;

  void Reset();
  std::string ToString() const;

  /// Registers every counter as an external metric `<prefix><field>` in
  /// `registry`; undo with registry->DeregisterPrefix(prefix). The stats
  /// object must outlive the registration.
  void RegisterWith(MetricsRegistry* registry, const std::string& prefix) const;
};

struct CloudStoreOptions {
  size_t extent_capacity = 1 << 20;  ///< 1 MiB, ArkDB-style uniform extents.
  LatencyModelOptions latency;

  /// Circuit breaker around the store (DESIGN.md §5.5). Disabled by
  /// default; when enabled, retry-exhaustion reports from callers trip it
  /// open and every operation fails fast with Status::Overloaded until
  /// half-open probes prove the substrate recovered.
  CircuitBreakerOptions breaker;

  /// Clock for the breaker's failure window / cooldown and for
  /// deadline-vs-predicted-latency checks. Null = process wall clock;
  /// tests pass a ManualTimeSource.
  const TimeSource* time_source = nullptr;
};

/// Event hook consumed by the GC usage tracker (§3.3 "Extent Usage
/// Tracking"): it needs to timestamp appends and invalidations per extent to
/// maintain TTL deadlines and update gradients.
class StoreObserver {
 public:
  virtual ~StoreObserver() = default;
  virtual void OnAppend(const PagePointer& ptr) {}
  virtual void OnInvalidate(const PagePointer& ptr) {}
  virtual void OnExtentFreed(StreamId stream, ExtentId extent) {}
};

/// Simulated shared append-only cloud storage (stand-in for ByteDance's
/// internal service; similar role to Pangu / Tectonic / Azure Storage,
/// §4.1). One process-wide instance is shared by the RW node and all RO
/// nodes, which is exactly the property the paper's synchronization design
/// builds on: once the RW node appends, every RO node can read the bytes.
///
/// Thread safety: stream topology is guarded by a shared_mutex (streams are
/// only ever added); record appends/reads take a per-stream mutex, so
/// traffic to different streams never contends — mirroring independent
/// storage partitions of the real service.
class CloudStore {
 public:
  explicit CloudStore(const CloudStoreOptions& opts = {});
  ~CloudStore();

  CloudStore(const CloudStore&) = delete;
  CloudStore& operator=(const CloudStore&) = delete;

  /// Per-instance metric-name prefix this store registered its IoStats and
  /// space gauges under (`bg3.cloud.store<N>.`).
  const std::string& metrics_prefix() const { return metrics_prefix_; }

  /// Creates (or returns the existing) stream with this name.
  StreamId CreateStream(const std::string& name);

  /// Appends one record; returns its permanent location and, optionally,
  /// the simulated latency of the operation in `latency_us`.
  ///
  /// All I/O entry points take an optional OpContext: an expired deadline
  /// (or one the latency model predicts cannot be met) fails fast with
  /// DeadlineExceeded, and an open circuit breaker fails fast with
  /// Overloaded — both before touching the substrate. Null ctx keeps the
  /// exact historical behavior.
  BG3_BLOCKING Result<PagePointer> Append(StreamId stream, const Slice& record,
                             uint64_t* latency_us = nullptr,
                             const OpContext* ctx = nullptr);

  /// Term-fenced append (DESIGN.md §5.10): fails with Status::Fenced —
  /// atomically with record placement — when `term` is below the stream's
  /// fence term. Fenced is a *correct rejection* by a healthy substrate, not
  /// a substrate failure: it does not feed the circuit breaker's error
  /// window and is not retryable. Plain Append() does not participate in
  /// fencing (page-flush and GC streams are never fenced; only the WAL
  /// stream of a partition is).
  BG3_BLOCKING Result<PagePointer> AppendFenced(StreamId stream, uint64_t term,
                                   const Slice& record,
                                   uint64_t* latency_us = nullptr,
                                   const OpContext* ctx = nullptr);

  /// Raises `stream`'s fence to `min_term` (monotone, idempotent). Every
  /// AppendFenced carrying a lower term fails from this point on — the
  /// promotion barrier that makes a deposed leader's in-flight pipelined
  /// groups land nowhere.
  void FenceStream(StreamId stream, uint64_t min_term);

  /// Current fence term of `stream` (0 = never fenced / unknown stream).
  uint64_t StreamFenceTerm(StreamId stream) const;

  BG3_BLOCKING Result<std::string> Read(const PagePointer& ptr,
                           uint64_t* latency_us = nullptr,
                           const OpContext* ctx = nullptr);

  /// Out-of-place update bookkeeping: the record at `ptr` no longer holds
  /// live data.
  void MarkInvalid(const PagePointer& ptr);

  BG3_BLOCKING Status FreeExtent(StreamId stream, ExtentId extent);

  std::vector<ExtentStats> SealedExtentStats(StreamId stream) const;

  /// Re-reads all valid records of an extent (GC relocation input); counted
  /// against read stats like any other I/O.
  BG3_BLOCKING Result<std::vector<std::pair<PagePointer, std::string>>>
  ReadValidRecords(
      StreamId stream, ExtentId extent, const OpContext* ctx = nullptr);

  /// Log tailing (WAL readers): records appended strictly after `cursor`
  /// in append order; a default-constructed cursor reads from the start.
  /// Records that fail their CRC check (torn appends) are skipped — they
  /// were never durably written, so they are not part of the log.
  BG3_BLOCKING Result<std::vector<std::pair<PagePointer, std::string>>>
  TailRecords(
      StreamId stream, const PagePointer& cursor, size_t max_records,
      const OpContext* ctx = nullptr);

  // --- strongly consistent manifest ---------------------------------------
  // Small KV area modelling the shared mapping-table region of §3.4: the RW
  // node atomically publishes new page-table versions here (step (8) in
  // Fig. 7) and RO nodes read them. Each Put returns a monotonically
  // increasing version.
  BG3_BLOCKING uint64_t ManifestPut(const std::string& key, const Slice& value);
  /// Compare-and-swap put: succeeds only if the key's current version equals
  /// `expected_version` (0 = key must not exist yet). Returns the new
  /// version on success; Aborted (carrying the current version in the
  /// message) when another writer got there first — the primitive behind
  /// epoch-record publication, where the double-promotion loser must lose
  /// deterministically (DESIGN.md §5.10).
  BG3_BLOCKING Result<uint64_t> ManifestCas(const std::string& key,
                               uint64_t expected_version, const Slice& value);
  /// Returns NotFound if the key was never written.
  BG3_BLOCKING Result<std::string> ManifestGet(const std::string& key,
                                  uint64_t* version = nullptr,
                                  const OpContext* ctx = nullptr) const;

  /// All manifest entries whose key starts with `prefix`, key order
  /// (readers bootstrapping the page-table layout).
  std::vector<std::pair<std::string, std::string>> ManifestList(
      const std::string& prefix) const;

  /// Frees every *sealed* extent of `stream` with id < `before` (WAL-prefix
  /// truncation once all readers have consumed past it). Returns the number
  /// of extents freed.
  size_t TruncateStreamBefore(StreamId stream, ExtentId before);

  // --- space accounting ----------------------------------------------------
  uint64_t TotalBytes() const;
  uint64_t LiveBytes() const;
  uint64_t TotalBytes(StreamId stream) const;
  uint64_t LiveBytes(StreamId stream) const;

  IoStats& stats() { return stats_; }
  const IoStats& stats() const { return stats_; }
  LatencyModel& latency_model() { return latency_model_; }
  const CloudStoreOptions& options() const { return opts_; }

  /// The store's circuit breaker. Retry-wrapped callers pass this as
  /// RetryOptions::breaker so exhausted budgets feed the trip threshold;
  /// the store itself records successes and gates every entry point on
  /// Allow(). Inert unless CloudStoreOptions::breaker.enabled.
  CircuitBreaker& breaker() const { return breaker_; }

  /// Clock in effect (options().time_source or the process wall clock).
  const TimeSource* time_source() const { return clock_; }

  /// At most one observer; must outlive the store or be reset to nullptr.
  /// Normally set before concurrent use; the pointer itself is atomic so a
  /// late SetObserver is race-free (in-flight ops see old or new, torn reads
  /// are impossible).
  void SetObserver(StoreObserver* observer) {
    observer_.store(observer, std::memory_order_release);
  }

  /// At most one fault injector; must outlive the store or be reset to
  /// nullptr. Null (the default) costs one relaxed atomic load per op.
  /// Same publication contract as SetObserver.
  void SetFaultInjector(FaultInjector* injector) {
    fault_injector_.store(injector, std::memory_order_release);
  }
  FaultInjector* fault_injector() const {
    return fault_injector_.load(std::memory_order_acquire);
  }

  /// Failure injection: flips a byte of the record at `ptr` so subsequent
  /// reads fail their CRC-32C check with Status::Corruption.
  bool CorruptRecordForTesting(const PagePointer& ptr, uint32_t byte_index);

 private:
  Stream* GetStream(StreamId id) const;
  Result<PagePointer> AppendImpl(StreamId stream, bool fenced, uint64_t term,
                                 const Slice& record, uint64_t* latency_us,
                                 const OpContext* ctx);
  /// Consults the attached injector (if any) for `op`; counts fired faults.
  FaultDecision DecideFault(FaultOp op) const;
  /// Overloaded when the breaker rejects, OK otherwise.
  Status CheckBreaker() const;

  const CloudStoreOptions opts_;
  std::string metrics_prefix_;
  const TimeSource* clock_;
  LatencyModel latency_model_;
  /// mutable: const read paths (ManifestGet) still gate on / feed the
  /// breaker.
  mutable CircuitBreaker breaker_;
  /// mutable: const read paths (ManifestGet) still account injected faults.
  mutable IoStats stats_;
  std::atomic<StoreObserver*> observer_{nullptr};
  std::atomic<FaultInjector*> fault_injector_{nullptr};

  mutable SharedMutex topology_mu_;
  std::atomic<ExtentId> next_extent_id_{0};
  std::vector<std::unique_ptr<Stream>> streams_ BG3_GUARDED_BY(topology_mu_);
  std::map<std::string, StreamId> stream_names_ BG3_GUARDED_BY(topology_mu_);

  mutable Mutex manifest_mu_;
  uint64_t manifest_version_ BG3_GUARDED_BY(manifest_mu_) = 0;
  std::map<std::string, std::pair<std::string, uint64_t>> manifest_
      BG3_GUARDED_BY(manifest_mu_);
};

}  // namespace bg3::cloud

#endif  // BG3_CLOUD_CLOUD_STORE_H_
