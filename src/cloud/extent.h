#ifndef BG3_CLOUD_EXTENT_H_
#define BG3_CLOUD_EXTENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cloud/types.h"
#include "common/status.h"

namespace bg3::cloud {

/// One fixed-capacity append-only unit of a stream (§3.3: "divides each
/// stream into extents of equal size"). Records are appended until the
/// capacity is reached, then the extent is sealed and a new one opened.
/// GC works at extent granularity: valid records are relocated and the whole
/// extent is freed.
class Extent {
 public:
  Extent(ExtentId id, size_t capacity);

  Extent(const Extent&) = delete;
  Extent& operator=(const Extent&) = delete;

  ExtentId id() const { return id_; }
  size_t capacity() const { return capacity_; }
  size_t used_bytes() const { return data_.size(); }
  bool sealed() const { return sealed_; }
  bool freed() const { return freed_; }

  /// True if `len` more bytes fit.
  bool HasRoom(size_t len) const { return data_.size() + len <= capacity_; }

  /// Appends a record; the caller must have checked HasRoom. Returns the
  /// record's offset within the extent.
  uint32_t Append(const Slice& record);

  Status Read(uint32_t offset, uint32_t length, std::string* out) const;

  void Seal() { sealed_ = true; }
  /// Releases the payload; subsequent reads fail with IOError.
  void Free();

  /// Marks the record at `offset` invalid (out-of-place update or delete).
  /// Returns the record's length, or 0 if the offset is unknown/already
  /// invalid.
  uint32_t MarkInvalid(uint32_t offset);

  /// Failure injection: flips one byte inside the record at `offset` so the
  /// next whole-record read fails its checksum. Returns false if unknown.
  bool CorruptRecordForTesting(uint32_t offset, uint32_t byte_index);

  // --- accounting used by space reclamation -------------------------------
  uint32_t total_records() const { return total_records_; }
  uint32_t invalid_records() const { return invalid_records_; }
  uint32_t valid_records() const { return total_records_ - invalid_records_; }
  uint64_t dead_bytes() const { return dead_bytes_; }
  uint64_t live_bytes() const { return used_bytes() - dead_bytes_; }

  /// Offsets+lengths of records still valid (for GC relocation).
  std::vector<std::pair<uint32_t, uint32_t>> ValidRecords() const;

  /// Offsets+lengths of all records, valid or not, in append order (log
  /// tailing reads the raw sequence).
  std::vector<std::pair<uint32_t, uint32_t>> AllRecords() const;

  /// Records with offset strictly greater than `after_offset` (pass -1 via
  /// kFromStart for all), capped at `max_records`. O(log n) positioning —
  /// the hot path of WAL tailing.
  std::vector<std::pair<uint32_t, uint32_t>> RecordsAfter(
      int64_t after_offset, size_t max_records) const;

 private:
  struct RecordMeta {
    uint32_t offset;
    uint32_t length;
    uint32_t crc;  ///< CRC-32C of the record bytes, verified on read.
    bool valid;
  };

  // Directory is ordered by offset; lookup by offset is a binary search.
  int FindRecord(uint32_t offset) const;

  const ExtentId id_;
  const size_t capacity_;
  std::string data_;
  std::vector<RecordMeta> records_;
  uint32_t total_records_ = 0;
  uint32_t invalid_records_ = 0;
  uint64_t dead_bytes_ = 0;
  bool sealed_ = false;
  bool freed_ = false;
};

}  // namespace bg3::cloud

#endif  // BG3_CLOUD_EXTENT_H_
