#ifndef BG3_CLOUD_TYPES_H_
#define BG3_CLOUD_TYPES_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/clock.h"
#include "common/coding.h"
#include "common/slice.h"

namespace bg3::cloud {

using StreamId = uint32_t;
using ExtentId = uint64_t;

inline constexpr ExtentId kInvalidExtent = ~0ull;

/// Physical location of one record (page image, delta, WAL block) inside the
/// append-only store. Never reused: out-of-place updates always produce a
/// new pointer and invalidate the old one.
struct PagePointer {
  StreamId stream_id = 0;
  ExtentId extent_id = kInvalidExtent;
  uint32_t offset = 0;
  uint32_t length = 0;

  bool IsNull() const { return extent_id == kInvalidExtent; }

  void EncodeTo(std::string* dst) const {
    PutFixed32(dst, stream_id);
    PutFixed64(dst, extent_id);
    PutFixed32(dst, offset);
    PutFixed32(dst, length);
  }

  static bool DecodeFrom(Slice* input, PagePointer* out) {
    return GetFixed32(input, &out->stream_id) &&
           GetFixed64(input, &out->extent_id) &&
           GetFixed32(input, &out->offset) && GetFixed32(input, &out->length);
  }

  friend bool operator==(const PagePointer& a, const PagePointer& b) {
    return a.stream_id == b.stream_id && a.extent_id == b.extent_id &&
           a.offset == b.offset && a.length == b.length;
  }
};

/// Pluggable time source. GC experiments (update gradient, TTL) advance a
/// manual clock instead of sleeping; production-like paths use wall time.
class TimeSource {
 public:
  virtual ~TimeSource() = default;
  virtual uint64_t NowUs() const = 0;
};

class WallTimeSource : public TimeSource {
 public:
  uint64_t NowUs() const override { return NowMicros(); }
};

class ManualTimeSource : public TimeSource {
 public:
  // Atomic: tests advance the clock from a driver thread while store
  // observers read it from worker threads.
  uint64_t NowUs() const override {
    return now_us_.load(std::memory_order_relaxed);
  }
  void AdvanceUs(uint64_t d) {
    now_us_.fetch_add(d, std::memory_order_relaxed);
  }
  void SetUs(uint64_t t) { now_us_.store(t, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> now_us_{0};
};

}  // namespace bg3::cloud

#endif  // BG3_CLOUD_TYPES_H_
