#ifndef BG3_CLOUD_TYPES_H_
#define BG3_CLOUD_TYPES_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/clock.h"
#include "common/coding.h"
#include "common/slice.h"
#include "common/time_source.h"

namespace bg3::cloud {

using StreamId = uint32_t;
using ExtentId = uint64_t;

inline constexpr ExtentId kInvalidExtent = ~0ull;

/// Physical location of one record (page image, delta, WAL block) inside the
/// append-only store. Never reused: out-of-place updates always produce a
/// new pointer and invalidate the old one.
struct PagePointer {
  StreamId stream_id = 0;
  ExtentId extent_id = kInvalidExtent;
  uint32_t offset = 0;
  uint32_t length = 0;

  bool IsNull() const { return extent_id == kInvalidExtent; }

  void EncodeTo(std::string* dst) const {
    PutFixed32(dst, stream_id);
    PutFixed64(dst, extent_id);
    PutFixed32(dst, offset);
    PutFixed32(dst, length);
  }

  static bool DecodeFrom(Slice* input, PagePointer* out) {
    return GetFixed32(input, &out->stream_id) &&
           GetFixed64(input, &out->extent_id) &&
           GetFixed32(input, &out->offset) && GetFixed32(input, &out->length);
  }

  friend bool operator==(const PagePointer& a, const PagePointer& b) {
    return a.stream_id == b.stream_id && a.extent_id == b.extent_id &&
           a.offset == b.offset && a.length == b.length;
  }
};

/// The pluggable time source moved to common/time_source.h so the deadline
/// machinery (OpContext, retry, admission) can use it below the cloud
/// layer; these aliases keep the historical cloud::TimeSource spelling.
using TimeSource = ::bg3::TimeSource;
using WallTimeSource = ::bg3::WallTimeSource;
using ManualTimeSource = ::bg3::ManualTimeSource;

}  // namespace bg3::cloud

#endif  // BG3_CLOUD_TYPES_H_
