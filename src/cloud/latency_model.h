#ifndef BG3_CLOUD_LATENCY_MODEL_H_
#define BG3_CLOUD_LATENCY_MODEL_H_

#include <atomic>
#include <cstdint>
#include <cstddef>

#include "common/op_context.h"
#include "common/status.h"

namespace bg3::cloud {

/// Parameters of the simulated shared cloud storage service.
///
/// The paper's substrate ("ByteDance's internal append-only cloud storage",
/// §4.1) provides millisecond-level latency; we model an op's latency as
///
///   service = base + bytes / bandwidth
///   latency = service / (1 - rho)        (M/M/1-style queueing factor)
///
/// where rho is the offered utilization reported by the benchmark driver
/// (`SetOfferedUtilization`). This keeps the latency experiments
/// (Figs. 13/14) deterministic and fast while still letting saturation show
/// up when a bench overdrives the device.
struct LatencyModelOptions {
  uint64_t append_base_us = 1500;    ///< ms-level append set-up cost.
  uint64_t read_base_us = 2000;      ///< ms-level random read cost.
  uint64_t bandwidth_mb_per_s = 400; ///< streaming bandwidth per stream.
};

class LatencyModel {
 public:
  LatencyModel() = default;
  explicit LatencyModel(const LatencyModelOptions& opts) : opts_(opts) {}

  uint64_t AppendLatencyUs(size_t bytes) const;
  uint64_t ReadLatencyUs(size_t bytes) const;

  /// rho in [0, 0.99]; set by benchmark drivers that know their offered load.
  void SetOfferedUtilization(double rho);
  double offered_utilization() const {
    return rho_.load(std::memory_order_relaxed);
  }

  const LatencyModelOptions& options() const { return opts_; }

 private:
  uint64_t Queued(uint64_t service_us) const;

  LatencyModelOptions opts_;
  std::atomic<double> rho_{0.0};
};

/// Deadline-aware admission of a single I/O: when the model predicts the
/// operation takes longer than the caller's remaining budget, fail fast
/// with DeadlineExceeded *before* issuing it — the simulated latency would
/// be charged against a request whose caller already stopped waiting, and
/// on a real service the bytes would be wasted wire traffic. Null or
/// deadline-less contexts always pass.
inline Status CheckLatencyBudget(const OpContext* ctx, uint64_t predicted_us,
                                 const char* what) {
  if (ctx == nullptr || !ctx->has_deadline()) return Status::OK();
  if (ctx->RemainingUs() < predicted_us) {
    return Status::DeadlineExceeded(
        std::string("predicted ") + what +
        " latency exceeds remaining deadline budget");
  }
  return Status::OK();
}

}  // namespace bg3::cloud

#endif  // BG3_CLOUD_LATENCY_MODEL_H_
