#include "cloud/latency_model.h"

#include <algorithm>

namespace bg3::cloud {

uint64_t LatencyModel::Queued(uint64_t service_us) const {
  const double rho = rho_.load(std::memory_order_relaxed);
  return static_cast<uint64_t>(static_cast<double>(service_us) / (1.0 - rho));
}

uint64_t LatencyModel::AppendLatencyUs(size_t bytes) const {
  const uint64_t transfer_us =
      static_cast<uint64_t>(bytes) / opts_.bandwidth_mb_per_s;  // B/(MB/s)=us
  return Queued(opts_.append_base_us + transfer_us);
}

uint64_t LatencyModel::ReadLatencyUs(size_t bytes) const {
  const uint64_t transfer_us =
      static_cast<uint64_t>(bytes) / opts_.bandwidth_mb_per_s;
  return Queued(opts_.read_base_us + transfer_us);
}

void LatencyModel::SetOfferedUtilization(double rho) {
  rho_.store(std::clamp(rho, 0.0, 0.99), std::memory_order_relaxed);
}

}  // namespace bg3::cloud
