#ifndef BG3_CLOUD_FAULT_INJECTOR_H_
#define BG3_CLOUD_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "common/thread_annotations.h"

namespace bg3::cloud {

/// Cloud-store operation classes a fault can attach to. Mirrors the
/// injection points wired into CloudStore: record appends, record reads,
/// extent frees, manifest gets, and WAL tailing.
enum class FaultOp : uint8_t {
  kAppend = 0,
  kRead,
  kFreeExtent,
  kManifestGet,
  kTail,
};
inline constexpr int kNumFaultOps = 5;

/// The four substrate failure modes of the fault model (DESIGN.md §5.2):
/// transient service errors, tail-latency spikes, torn appends (a partial
/// record at the stream tail) and corrupted reads (bit flips on the wire).
enum class FaultClass : uint8_t {
  kTransientError = 0,
  kLatencySpike,
  kTornAppend,
  kCorruptRead,
};
inline constexpr int kNumFaultClasses = 4;

const char* FaultOpName(FaultOp op);
const char* FaultClassName(FaultClass cls);

struct FaultInjectorOptions {
  /// Seed of the injector's private RNG; printed by ToString() so any
  /// failing run replays exactly.
  uint64_t seed = 0xFA0175;

  // Per-class firing probabilities for probability-driven injection.
  // All default to 0 — an attached injector with default options is inert.
  double transient_error_p = 0.0;  ///< any op.
  double latency_spike_p = 0.0;    ///< appends and reads.
  double torn_append_p = 0.0;      ///< appends only.
  double corrupt_read_p = 0.0;     ///< reads only.

  /// Extra latency added when a spike fires (on top of the LatencyModel).
  uint64_t latency_spike_us = 50'000;
};

/// What CloudStore should do to the current operation.
struct FaultDecision {
  bool fail = false;     ///< return Status::IOError, no side effects.
  bool torn = false;     ///< append lands but is cut short; caller sees IOError.
  bool corrupt = false;  ///< read returns Status::Corruption (data intact).
  uint64_t extra_latency_us = 0;
  /// Random draw used by the store to pick which tail byte a torn append
  /// garbles (only meaningful when `torn`).
  uint64_t torn_byte_draw = 0;

  bool Any() const { return fail || torn || corrupt || extra_latency_us != 0; }
};

/// Per-class firing counts.
struct FaultInjectorStats {
  Counter transient_errors;
  Counter latency_spikes;
  Counter torn_appends;
  Counter corrupt_reads;

  uint64_t Total() const;
  std::string ToString() const;
};

/// Deterministic fault source for the simulated cloud substrate. Two modes,
/// freely combined:
///  - probability-driven: each operation draws from a seeded bg3::Random
///    against the per-class probabilities, so a (seed, options) pair fully
///    determines the fault schedule of a single-threaded run;
///  - schedule-driven: Arm() plants a one-shot fault on the N-th subsequent
///    operation of a given class, for tests that need an exact failure
///    point.
///
/// Attach with CloudStore::SetFaultInjector. Thread safe (single internal
/// mutex; injection sits on simulated-I/O paths where a mutex is noise).
class FaultInjector {
 public:
  explicit FaultInjector(const FaultInjectorOptions& options = {});

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Plants a one-shot fault: fires on the `at_index`-th (0-based, counted
  /// from construction) operation of type `op`, then disarms. The class
  /// must be applicable to the op (torn appends on kAppend, corrupt reads
  /// on kRead; BG3_DCHECK-enforced).
  void Arm(FaultOp op, FaultClass cls, uint64_t at_index);

  /// Plants a one-shot fault on the *next* operation of type `op`.
  void ArmNext(FaultOp op, FaultClass cls);

  /// Called by CloudStore once per injected operation, before any side
  /// effect. Advances the op counter and the RNG stream.
  FaultDecision Decide(FaultOp op);

  /// Operations of this type seen so far (armed-fault index space).
  uint64_t OpCount(FaultOp op) const;

  uint64_t seed() const { return opts_.seed; }
  const FaultInjectorOptions& options() const { return opts_; }
  FaultInjectorStats& stats() { return stats_; }

  /// One line with the seed and per-class firing counts — print this from
  /// a failing test and the run replays from the seed.
  std::string ToString() const;

 private:
  struct ArmedFault {
    FaultOp op;
    FaultClass cls;
    uint64_t at_index;
  };

  void ApplyClassLocked(FaultClass cls, FaultOp op, FaultDecision* d)
      BG3_REQUIRES(mu_);

  const FaultInjectorOptions opts_;
  FaultInjectorStats stats_;

  mutable Mutex mu_;
  Random rng_ BG3_GUARDED_BY(mu_);
  uint64_t op_counts_[kNumFaultOps] BG3_GUARDED_BY(mu_) = {};
  std::vector<ArmedFault> armed_ BG3_GUARDED_BY(mu_);
};

}  // namespace bg3::cloud

#endif  // BG3_CLOUD_FAULT_INJECTOR_H_
