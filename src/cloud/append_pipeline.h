#ifndef BG3_CLOUD_APPEND_PIPELINE_H_
#define BG3_CLOUD_APPEND_PIPELINE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cloud/cloud_store.h"
#include "common/retry.h"
#include "common/thread_annotations.h"

namespace bg3::cloud {

struct AppendPipelineOptions {
  StreamId stream = 0;
  /// Appends allowed in flight at once (worker threads). The BtrLog-style
  /// overlap: while one batch rides its (ms-level) cloud round trip, later
  /// batches are already on the wire.
  size_t inflight = 4;
  /// Per-attempt retry policy; runs with a null context (the pipeline has
  /// no single caller — deadlines bound the *wait* for acknowledgment, not
  /// the background I/O). Counter/breaker wiring is filled from the store.
  RetryOptions retry;
  /// When > 0, workers additionally sleep `simulated latency * scale` in
  /// wall time after each append, so latency benches observe real queueing
  /// (the store itself completes in memory speed). 0 — the default — keeps
  /// tests and simulated-time benches instantaneous.
  double wall_latency_scale = 0.0;
  /// Fencing term every append carries (DESIGN.md §5.10). 0 = unfenced
  /// plain appends (legacy). Non-zero routes through AppendFenced: once the
  /// stream's fence passes this term, in-flight batches complete with
  /// Status::Fenced — which is not retryable, so workers surface it to the
  /// completion callback immediately instead of burning the retry budget.
  uint64_t term = 0;
};

/// Completion-queue shim over the synchronous CloudStore::Append. Submit()
/// hands over an encoded payload keyed by a monotone sequence number and
/// returns without touching the store; `inflight` workers drain the queue
/// lowest-seq-first (so retries and fresh batches start in log order) and
/// run the append under the standard retry/backoff/breaker loop. The
/// completion callback fires from worker threads, potentially out of
/// submission order — putting completions back *in* order is the commit
/// ledger's job, one layer up.
class AppendPipeline {
 public:
  struct Completion {
    uint64_t seq = 0;
    uint64_t record_count = 0;  ///< echoed from Submit.
    Status status;              ///< OK or the retry loop's root-cause error.
    PagePointer ptr;            ///< batch location when status is OK.
    std::string payload;        ///< handed back on failure for resubmission.
  };
  using CompletionFn = std::function<void(Completion)>;

  /// `on_complete` runs on worker threads; it must not block on the
  /// pipeline itself.
  AppendPipeline(CloudStore* store, const AppendPipelineOptions& options,
                 CompletionFn on_complete);
  ~AppendPipeline();

  AppendPipeline(const AppendPipeline&) = delete;
  AppendPipeline& operator=(const AppendPipeline&) = delete;

  /// Enqueues one encoded batch; never blocks on I/O.
  void Submit(uint64_t seq, std::string payload, uint64_t record_count);

  /// Stops accepting work, drains every queued submission through its
  /// normal (single) retry loop, and joins the workers. Queued batches get
  /// exactly one more shot; nothing is retried past its completion
  /// callback. Idempotent; the destructor calls it.
  BG3_BLOCKING void Shutdown();

  /// Submissions queued or in flight (not yet completed).
  size_t Outstanding() const;

 private:
  void WorkerMain();

  CloudStore* const store_;
  const AppendPipelineOptions opts_;
  const CompletionFn on_complete_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<uint64_t, std::pair<std::string, uint64_t>> queue_
      BG3_GUARDED_BY(mu_);  ///< seq -> (payload, record_count)
  size_t active_ BG3_GUARDED_BY(mu_) = 0;  ///< appends mid-attempt.
  bool stopping_ BG3_GUARDED_BY(mu_) = false;

  std::vector<std::thread> workers_;
  bool joined_ = false;
};

}  // namespace bg3::cloud

#endif  // BG3_CLOUD_APPEND_PIPELINE_H_
