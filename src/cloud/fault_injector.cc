#include "cloud/fault_injector.h"

#include <sstream>

#include "common/logging.h"

namespace bg3::cloud {

namespace {

bool ClassApplies(FaultClass cls, FaultOp op) {
  switch (cls) {
    case FaultClass::kTransientError:
      return true;
    case FaultClass::kLatencySpike:
      return op == FaultOp::kAppend || op == FaultOp::kRead;
    case FaultClass::kTornAppend:
      return op == FaultOp::kAppend;
    case FaultClass::kCorruptRead:
      return op == FaultOp::kRead;
  }
  return false;
}

}  // namespace

const char* FaultOpName(FaultOp op) {
  switch (op) {
    case FaultOp::kAppend:
      return "append";
    case FaultOp::kRead:
      return "read";
    case FaultOp::kFreeExtent:
      return "free_extent";
    case FaultOp::kManifestGet:
      return "manifest_get";
    case FaultOp::kTail:
      return "tail";
  }
  return "?";
}

const char* FaultClassName(FaultClass cls) {
  switch (cls) {
    case FaultClass::kTransientError:
      return "transient_error";
    case FaultClass::kLatencySpike:
      return "latency_spike";
    case FaultClass::kTornAppend:
      return "torn_append";
    case FaultClass::kCorruptRead:
      return "corrupt_read";
  }
  return "?";
}

uint64_t FaultInjectorStats::Total() const {
  return transient_errors.Get() + latency_spikes.Get() + torn_appends.Get() +
         corrupt_reads.Get();
}

std::string FaultInjectorStats::ToString() const {
  std::ostringstream os;
  os << "transient=" << transient_errors.Get()
     << " spikes=" << latency_spikes.Get() << " torn=" << torn_appends.Get()
     << " corrupt=" << corrupt_reads.Get();
  return os.str();
}

FaultInjector::FaultInjector(const FaultInjectorOptions& options)
    : opts_(options), rng_(options.seed) {}

void FaultInjector::Arm(FaultOp op, FaultClass cls, uint64_t at_index) {
  BG3_DCHECK(ClassApplies(cls, op))
      << FaultClassName(cls) << " cannot fire on " << FaultOpName(op);
  MutexLock lock(&mu_);
  armed_.push_back(ArmedFault{op, cls, at_index});
}

void FaultInjector::ArmNext(FaultOp op, FaultClass cls) {
  BG3_DCHECK(ClassApplies(cls, op))
      << FaultClassName(cls) << " cannot fire on " << FaultOpName(op);
  MutexLock lock(&mu_);
  armed_.push_back(ArmedFault{op, cls, op_counts_[static_cast<int>(op)]});
}

void FaultInjector::ApplyClassLocked(FaultClass cls, FaultOp op,
                                     FaultDecision* d) {
  switch (cls) {
    case FaultClass::kTransientError:
      d->fail = true;
      stats_.transient_errors.Inc();
      break;
    case FaultClass::kLatencySpike:
      d->extra_latency_us += opts_.latency_spike_us;
      stats_.latency_spikes.Inc();
      break;
    case FaultClass::kTornAppend:
      d->torn = true;
      d->torn_byte_draw = rng_.Next();
      stats_.torn_appends.Inc();
      break;
    case FaultClass::kCorruptRead:
      d->corrupt = true;
      stats_.corrupt_reads.Inc();
      break;
  }
  (void)op;
}

FaultDecision FaultInjector::Decide(FaultOp op) {
  MutexLock lock(&mu_);
  const uint64_t index = op_counts_[static_cast<int>(op)]++;
  FaultDecision d;

  // Schedule-driven one-shots first: exact failure points beat dice.
  for (auto it = armed_.begin(); it != armed_.end(); ++it) {
    if (it->op == op && it->at_index == index) {
      ApplyClassLocked(it->cls, op, &d);
      armed_.erase(it);
      break;
    }
  }

  // Probability-driven draws, in a fixed class order so the RNG stream (and
  // therefore the whole fault schedule of a single-threaded run) is a pure
  // function of (seed, options). The first hard failure wins; a latency
  // spike composes with nothing else only because a failed op has no
  // latency to report.
  if (!d.fail && opts_.transient_error_p > 0 &&
      rng_.Bernoulli(opts_.transient_error_p)) {
    ApplyClassLocked(FaultClass::kTransientError, op, &d);
  }
  if (!d.fail && !d.torn && op == FaultOp::kAppend &&
      opts_.torn_append_p > 0 && rng_.Bernoulli(opts_.torn_append_p)) {
    ApplyClassLocked(FaultClass::kTornAppend, op, &d);
  }
  if (!d.fail && !d.corrupt && op == FaultOp::kRead &&
      opts_.corrupt_read_p > 0 && rng_.Bernoulli(opts_.corrupt_read_p)) {
    ApplyClassLocked(FaultClass::kCorruptRead, op, &d);
  }
  if (!d.fail && ClassApplies(FaultClass::kLatencySpike, op) &&
      opts_.latency_spike_p > 0 && rng_.Bernoulli(opts_.latency_spike_p)) {
    ApplyClassLocked(FaultClass::kLatencySpike, op, &d);
  }
  return d;
}

uint64_t FaultInjector::OpCount(FaultOp op) const {
  MutexLock lock(&mu_);
  return op_counts_[static_cast<int>(op)];
}

std::string FaultInjector::ToString() const {
  std::ostringstream os;
  os << "fault-injector seed=" << opts_.seed
     << " p(transient)=" << opts_.transient_error_p
     << " p(spike)=" << opts_.latency_spike_p
     << " p(torn)=" << opts_.torn_append_p
     << " p(corrupt)=" << opts_.corrupt_read_p
     << " fired: " << stats_.ToString();
  return os.str();
}

}  // namespace bg3::cloud
