#include "cloud/stream.h"

#include "common/logging.h"

namespace bg3::cloud {

Stream::Stream(StreamId id, std::string name, size_t extent_capacity,
               std::atomic<ExtentId>* extent_id_allocator)
    : id_(id),
      name_(std::move(name)),
      extent_capacity_(extent_capacity),
      extent_id_allocator_(extent_id_allocator) {
  mu_.SetRank(lock_rank::kStream_mu, "Stream::mu_");
  // Uncontended (the stream is not yet published), but the lock makes the
  // guarded-member writes visible to the thread-safety analysis.
  MutexLock lock(&mu_);
  OpenNewExtent(extent_capacity_);
}

void Stream::OpenNewExtent(size_t capacity) {
  const ExtentId eid =
      extent_id_allocator_->fetch_add(1, std::memory_order_relaxed);
  auto extent = std::make_unique<Extent>(eid, capacity);
  active_ = extent.get();
  extents_.emplace(eid, std::move(extent));
}

PagePointer Stream::AppendLocked(const Slice& record) {
  if (record.size() > extent_capacity_) {
    // Oversized record: seal the current extent and give the record its own.
    active_->Seal();
    OpenNewExtent(record.size());
  } else if (!active_->HasRoom(record.size())) {
    active_->Seal();
    OpenNewExtent(extent_capacity_);
  }
  const uint32_t offset = active_->Append(record);
  total_bytes_ += record.size();
  return PagePointer{id_, active_->id(), offset,
                     static_cast<uint32_t>(record.size())};
}

PagePointer Stream::Append(const Slice& record) {
  MutexLock lock(&mu_);
  return AppendLocked(record);
}

Result<PagePointer> Stream::AppendFenced(const Slice& record, uint64_t term) {
  MutexLock lock(&mu_);
  if (term < fence_term_) {
    return Status::Fenced("stream " + name_ + " fenced at term " +
                          std::to_string(fence_term_) + ", append term " +
                          std::to_string(term));
  }
  return AppendLocked(record);
}

void Stream::Fence(uint64_t min_term) {
  MutexLock lock(&mu_);
  if (min_term > fence_term_) fence_term_ = min_term;
}

uint64_t Stream::fence_term() const {
  MutexLock lock(&mu_);
  return fence_term_;
}

Status Stream::Read(const PagePointer& ptr, std::string* out) const {
  MutexLock lock(&mu_);
  const Extent* e = FindExtentLocked(ptr.extent_id);
  if (e == nullptr) {
    return Status::NotFound("extent " + std::to_string(ptr.extent_id));
  }
  return e->Read(ptr.offset, ptr.length, out);
}

uint32_t Stream::MarkInvalid(const PagePointer& ptr) {
  MutexLock lock(&mu_);
  Extent* e = FindExtentLocked(ptr.extent_id);
  if (e == nullptr) return 0;
  const uint32_t len = e->MarkInvalid(ptr.offset);
  dead_bytes_ += len;
  BG3_DCHECK_LE(dead_bytes_, total_bytes_);
  return len;
}

bool Stream::CorruptRecordForTesting(const PagePointer& ptr,
                                     uint32_t byte_index) {
  MutexLock lock(&mu_);
  Extent* e = FindExtentLocked(ptr.extent_id);
  return e != nullptr && e->CorruptRecordForTesting(ptr.offset, byte_index);
}

Status Stream::FreeExtent(ExtentId id) {
  MutexLock lock(&mu_);
  auto it = extents_.find(id);
  if (it == extents_.end()) {
    return Status::NotFound("extent " + std::to_string(id));
  }
  Extent* e = it->second.get();
  BG3_CHECK(e != active_) << "cannot free the active extent";
  // Stream-level byte accounting must never underflow: an extent's bytes
  // were added to the totals as they were appended/invalidated.
  BG3_DCHECK_GE(total_bytes_, e->used_bytes());
  BG3_DCHECK_GE(dead_bytes_, e->dead_bytes());
  BG3_DCHECK_LE(e->dead_bytes(), e->used_bytes());
  total_bytes_ -= e->used_bytes();
  dead_bytes_ -= e->dead_bytes();
  extents_.erase(it);
  BG3_DCHECK_LE(dead_bytes_, total_bytes_);
  return Status::OK();
}

std::vector<ExtentStats> Stream::SealedExtentStats() const {
  MutexLock lock(&mu_);
  std::vector<ExtentStats> out;
  out.reserve(extents_.size());
  for (const auto& [eid, e] : extents_) {
    if (!e->sealed() || e->freed()) continue;
    ExtentStats s;
    s.id = eid;
    s.sealed = true;
    s.total_records = e->total_records();
    s.invalid_records = e->invalid_records();
    s.used_bytes = e->used_bytes();
    s.dead_bytes = e->dead_bytes();
    out.push_back(s);
  }
  return out;
}

Result<std::vector<std::pair<PagePointer, std::string>>>
Stream::ReadValidRecords(ExtentId extent) {
  MutexLock lock(&mu_);
  Extent* e = FindExtentLocked(extent);
  if (e == nullptr) return Status::NotFound("extent");
  std::vector<std::pair<PagePointer, std::string>> out;
  for (const auto& [offset, length] : e->ValidRecords()) {
    std::string data;
    BG3_RETURN_IF_ERROR(e->Read(offset, length, &data));
    out.emplace_back(PagePointer{id_, extent, offset, length},
                     std::move(data));
  }
  return out;
}

std::vector<std::pair<PagePointer, std::string>> Stream::TailRecords(
    const PagePointer& cursor, size_t max_records) const {
  MutexLock lock(&mu_);
  std::vector<std::pair<PagePointer, std::string>> out;
  const bool from_start = cursor.IsNull();
  auto it = extents_.begin();
  if (!from_start) {
    it = extents_.find(cursor.extent_id);
    if (it == extents_.end()) {
      // Cursor extent gone (truncated): resume at the next extent.
      it = extents_.upper_bound(cursor.extent_id);
    }
  }
  for (; it != extents_.end() && out.size() < max_records; ++it) {
    const Extent* e = it->second.get();
    if (e->freed()) continue;
    const int64_t after = (!from_start && e->id() == cursor.extent_id)
                              ? static_cast<int64_t>(cursor.offset)
                              : -1;
    for (const auto& [offset, length] :
         e->RecordsAfter(after, max_records - out.size())) {
      std::string data;
      if (!e->Read(offset, length, &data).ok()) continue;
      out.emplace_back(PagePointer{id_, e->id(), offset, length},
                       std::move(data));
    }
  }
  return out;
}

uint64_t Stream::total_bytes() const {
  MutexLock lock(&mu_);
  return total_bytes_;
}

uint64_t Stream::dead_bytes() const {
  MutexLock lock(&mu_);
  return dead_bytes_;
}

uint64_t Stream::live_bytes() const {
  MutexLock lock(&mu_);
  return total_bytes_ - dead_bytes_;
}

size_t Stream::extent_count() const {
  MutexLock lock(&mu_);
  return extents_.size();
}

Extent* Stream::FindExtentLocked(ExtentId id) {
  auto it = extents_.find(id);
  return it == extents_.end() ? nullptr : it->second.get();
}

const Extent* Stream::FindExtentLocked(ExtentId id) const {
  auto it = extents_.find(id);
  return it == extents_.end() ? nullptr : it->second.get();
}

}  // namespace bg3::cloud
