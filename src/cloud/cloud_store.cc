#include "cloud/cloud_store.h"

#include <sstream>

#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/timed_scope.h"

namespace bg3::cloud {

void IoStats::Reset() {
  append_ops.Reset();
  append_bytes.Reset();
  read_ops.Reset();
  read_bytes.Reset();
  gc_moved_bytes.Reset();
  extents_freed.Reset();
  manifest_updates.Reset();
  injected_faults.Reset();
  retries.Reset();
  retry_exhausted.Reset();
}

std::string IoStats::ToString() const {
  std::ostringstream os;
  os << "appends=" << append_ops.Get() << " (" << append_bytes.Get()
     << " B) reads=" << read_ops.Get() << " (" << read_bytes.Get()
     << " B) gc_moved=" << gc_moved_bytes.Get()
     << " B extents_freed=" << extents_freed.Get()
     << " manifest_updates=" << manifest_updates.Get()
     << " injected_faults=" << injected_faults.Get()
     << " retries=" << retries.Get()
     << " retry_exhausted=" << retry_exhausted.Get();
  return os.str();
}

void IoStats::RegisterWith(MetricsRegistry* registry,
                           const std::string& prefix) const {
  registry->RegisterCounter(prefix + "append_ops", &append_ops);
  registry->RegisterCounter(prefix + "append_bytes", &append_bytes);
  registry->RegisterCounter(prefix + "read_ops", &read_ops);
  registry->RegisterCounter(prefix + "read_bytes", &read_bytes);
  registry->RegisterCounter(prefix + "gc_moved_bytes", &gc_moved_bytes);
  registry->RegisterCounter(prefix + "extents_freed", &extents_freed);
  registry->RegisterCounter(prefix + "manifest_updates", &manifest_updates);
  registry->RegisterCounter(prefix + "injected_faults", &injected_faults);
  registry->RegisterCounter(prefix + "retries", &retries);
  registry->RegisterCounter(prefix + "retry_exhausted", &retry_exhausted);
}

CloudStore::CloudStore(const CloudStoreOptions& opts)
    : opts_(opts),
      metrics_prefix_("bg3.cloud.store" +
                      std::to_string(MetricsRegistry::NextInstanceId("store")) +
                      "."),
      clock_(opts.time_source != nullptr ? opts.time_source
                                         : DefaultWallTimeSource()),
      latency_model_(opts.latency),
      breaker_(opts.breaker, clock_) {
  topology_mu_.SetRank(lock_rank::kCloudStore_topology_mu,
                       "CloudStore::topology_mu_");
  manifest_mu_.SetRank(lock_rank::kCloudStore_manifest_mu,
                       "CloudStore::manifest_mu_");
  MetricsRegistry& reg = MetricsRegistry::Default();
  stats_.RegisterWith(&reg, metrics_prefix_);
  reg.RegisterCallback(metrics_prefix_ + "total_bytes",
                       [this] { return TotalBytes(); });
  reg.RegisterCallback(metrics_prefix_ + "live_bytes",
                       [this] { return LiveBytes(); });
}

CloudStore::~CloudStore() {
  // Fold this store's lifetime totals into the registry-owned retired
  // counters before the external registrations vanish: benches that build
  // and tear down stores per scenario keep an I/O record that survives into
  // the final BENCH_<name>.json (summed there with live stores').
  MetricsRegistry& reg = MetricsRegistry::Default();
  static constexpr const char kRetired[] = "bg3.cloud.retired.";
  reg.GetCounter(std::string(kRetired) + "append_ops")
      ->Add(stats_.append_ops.Get());
  reg.GetCounter(std::string(kRetired) + "append_bytes")
      ->Add(stats_.append_bytes.Get());
  reg.GetCounter(std::string(kRetired) + "read_ops")
      ->Add(stats_.read_ops.Get());
  reg.GetCounter(std::string(kRetired) + "read_bytes")
      ->Add(stats_.read_bytes.Get());
  reg.GetCounter(std::string(kRetired) + "gc_moved_bytes")
      ->Add(stats_.gc_moved_bytes.Get());
  reg.GetCounter(std::string(kRetired) + "extents_freed")
      ->Add(stats_.extents_freed.Get());
  reg.GetCounter(std::string(kRetired) + "manifest_updates")
      ->Add(stats_.manifest_updates.Get());
  reg.GetCounter(std::string(kRetired) + "injected_faults")
      ->Add(stats_.injected_faults.Get());
  reg.GetCounter(std::string(kRetired) + "retries")->Add(stats_.retries.Get());
  reg.GetCounter(std::string(kRetired) + "retry_exhausted")
      ->Add(stats_.retry_exhausted.Get());
  reg.DeregisterPrefix(metrics_prefix_);
}

StreamId CloudStore::CreateStream(const std::string& name) {
  WriterMutexLock lock(&topology_mu_);
  auto it = stream_names_.find(name);
  if (it != stream_names_.end()) return it->second;
  const StreamId id = static_cast<StreamId>(streams_.size());
  streams_.push_back(std::make_unique<Stream>(id, name, opts_.extent_capacity,
                                              &next_extent_id_));
  stream_names_.emplace(name, id);
  return id;
}

Stream* CloudStore::GetStream(StreamId id) const {
  ReaderMutexLock lock(&topology_mu_);
  return id < streams_.size() ? streams_[id].get() : nullptr;
}

Status CloudStore::CheckBreaker() const {
  if (breaker_.Allow()) return Status::OK();
  return Status::Overloaded("cloud circuit breaker open");
}

FaultDecision CloudStore::DecideFault(FaultOp op) const {
  FaultInjector* injector = fault_injector_.load(std::memory_order_acquire);
  if (injector == nullptr) return {};
  FaultDecision d = injector->Decide(op);
  if (d.Any()) stats_.injected_faults.Inc();
  return d;
}

Result<PagePointer> CloudStore::Append(StreamId stream, const Slice& record,
                                       uint64_t* latency_us,
                                       const OpContext* ctx) {
  return AppendImpl(stream, /*fenced=*/false, /*term=*/0, record, latency_us,
                    ctx);
}

Result<PagePointer> CloudStore::AppendFenced(StreamId stream, uint64_t term,
                                             const Slice& record,
                                             uint64_t* latency_us,
                                             const OpContext* ctx) {
  return AppendImpl(stream, /*fenced=*/true, term, record, latency_us, ctx);
}

void CloudStore::FenceStream(StreamId stream, uint64_t min_term) {
  Stream* s = GetStream(stream);
  if (s != nullptr) s->Fence(min_term);
}

uint64_t CloudStore::StreamFenceTerm(StreamId stream) const {
  const Stream* s = GetStream(stream);
  return s == nullptr ? 0 : s->fence_term();
}

Result<PagePointer> CloudStore::AppendImpl(StreamId stream, bool fenced,
                                           uint64_t term, const Slice& record,
                                           uint64_t* latency_us,
                                           const OpContext* ctx) {
  BG3_TIMED_SCOPE("bg3.cloud.append_ns");
  Stream* s = GetStream(stream);
  if (s == nullptr) return Status::InvalidArgument("unknown stream");
  BG3_RETURN_IF_ERROR(CheckDeadline(ctx, "cloud append"));
  BG3_RETURN_IF_ERROR(CheckLatencyBudget(
      ctx, latency_model_.AppendLatencyUs(record.size()), "append"));
  BG3_RETURN_IF_ERROR(CheckBreaker());
  // Places the record, honoring the fence check atomically with placement
  // when this is a fenced append.
  auto place = [&]() -> Result<PagePointer> {
    if (fenced) return s->AppendFenced(record, term);
    return s->Append(record);
  };
  const FaultDecision fault = DecideFault(FaultOp::kAppend);
  if (fault.fail) {
    breaker_.RecordError();
    return Status::IOError("injected transient append failure");
  }
  if (fault.torn) {
    // Torn append: the bytes land at the stream tail but the write is cut
    // short — the tail half is garbage, every subsequent read fails its
    // CRC-32C check, and the caller sees an I/O error (the storage service
    // died mid-append before acknowledging). The dead bytes occupy extent
    // capacity until GC frees it, exactly like a real partial append, so
    // the record is appended for real, then garbled and invalidated.
    Result<PagePointer> placed = place();
    if (!placed.ok()) {
      // A fenced rejection is a healthy answer, not a substrate failure —
      // and it wins over the injected fault (the record never landed).
      breaker_.RecordSuccess();
      return placed.status();
    }
    const PagePointer ptr = placed.value();
    stats_.append_ops.Inc();
    stats_.append_bytes.Add(record.size());
    // The bytes landed (and were billed by the service) even though the
    // caller sees an error — the request account mirrors the store's.
    OpStats::RecordCloudAppend(ctx != nullptr ? ctx->stats : nullptr,
                               record.size());
    StoreObserver* obs = observer_.load(std::memory_order_acquire);
    if (obs != nullptr) obs->OnAppend(ptr);
    if (record.size() > 0) {
      const uint32_t half = static_cast<uint32_t>(record.size() / 2);
      const uint32_t tail_len = static_cast<uint32_t>(record.size()) - half;
      s->CorruptRecordForTesting(ptr, half + fault.torn_byte_draw % tail_len);
    }
    s->MarkInvalid(ptr);  // never becomes live data
    if (obs != nullptr) obs->OnInvalidate(ptr);
    breaker_.RecordError();
    return Status::IOError("injected torn append at stream tail");
  }
  Result<PagePointer> placed = place();
  if (!placed.ok()) {
    // Status::Fenced: the stream correctly rejected a deposed writer.
    breaker_.RecordSuccess();
    return placed.status();
  }
  const PagePointer ptr = placed.value();
  stats_.append_ops.Inc();
  stats_.append_bytes.Add(record.size());
  OpStats::RecordCloudAppend(ctx != nullptr ? ctx->stats : nullptr,
                             record.size());
  breaker_.RecordSuccess();
  if (StoreObserver* obs = observer_.load(std::memory_order_acquire)) {
    obs->OnAppend(ptr);
  }
  if (latency_us != nullptr) {
    *latency_us =
        latency_model_.AppendLatencyUs(record.size()) + fault.extra_latency_us;
    // Simulated service latency distribution (virtual clock; the wall-time
    // scope above measures only the in-memory substrate).
    static Histogram* const sim_hist =
        MetricsRegistry::Default().GetHistogram("bg3.cloud.append_sim_us");
    if (obs::TimingEnabled()) sim_hist->Record(*latency_us);
  }
  return ptr;
}

Result<std::string> CloudStore::Read(const PagePointer& ptr,
                                     uint64_t* latency_us,
                                     const OpContext* ctx) {
  BG3_TIMED_SCOPE("bg3.cloud.read_ns");
  Stream* s = GetStream(ptr.stream_id);
  if (s == nullptr) return Status::InvalidArgument("unknown stream");
  BG3_RETURN_IF_ERROR(CheckDeadline(ctx, "cloud read"));
  // Record size is unknown until read; the base cost is a lower bound on
  // the predicted latency, which is all fail-fast needs.
  BG3_RETURN_IF_ERROR(
      CheckLatencyBudget(ctx, latency_model_.ReadLatencyUs(0), "read"));
  BG3_RETURN_IF_ERROR(CheckBreaker());
  const FaultDecision fault = DecideFault(FaultOp::kRead);
  if (fault.fail) {
    breaker_.RecordError();
    return Status::IOError("injected transient read failure");
  }
  if (fault.corrupt) {
    // Bit flips on the wire: the stored record is intact, so a retry of the
    // same pointer succeeds (unlike CorruptRecordForTesting, which damages
    // the medium itself).
    breaker_.RecordError();
    return Status::Corruption("injected corrupt read (checksum mismatch)");
  }
  std::string out;
  {
    Status read_status = s->Read(ptr, &out);
    if (!read_status.ok()) {
      breaker_.RecordError();
      return read_status;
    }
  }
  stats_.read_ops.Inc();
  stats_.read_bytes.Add(out.size());
  OpStats::RecordCloudRead(ctx != nullptr ? ctx->stats : nullptr, out.size());
  breaker_.RecordSuccess();
  if (latency_us != nullptr) {
    *latency_us =
        latency_model_.ReadLatencyUs(out.size()) + fault.extra_latency_us;
    static Histogram* const sim_hist =
        MetricsRegistry::Default().GetHistogram("bg3.cloud.read_sim_us");
    if (obs::TimingEnabled()) sim_hist->Record(*latency_us);
  }
  return out;
}

void CloudStore::MarkInvalid(const PagePointer& ptr) {
  Stream* s = GetStream(ptr.stream_id);
  if (s != nullptr) {
    s->MarkInvalid(ptr);
    if (StoreObserver* obs = observer_.load(std::memory_order_acquire)) {
      obs->OnInvalidate(ptr);
    }
  }
}

Status CloudStore::FreeExtent(StreamId stream, ExtentId extent) {
  Stream* s = GetStream(stream);
  if (s == nullptr) return Status::InvalidArgument("unknown stream");
  if (DecideFault(FaultOp::kFreeExtent).fail) {
    return Status::IOError("injected transient free-extent failure");
  }
  BG3_RETURN_IF_ERROR(s->FreeExtent(extent));
  stats_.extents_freed.Inc();
  if (StoreObserver* obs = observer_.load(std::memory_order_acquire)) {
    obs->OnExtentFreed(stream, extent);
  }
  return Status::OK();
}

std::vector<ExtentStats> CloudStore::SealedExtentStats(StreamId stream) const {
  const Stream* s = GetStream(stream);
  if (s == nullptr) return {};
  return s->SealedExtentStats();
}

Result<std::vector<std::pair<PagePointer, std::string>>>
CloudStore::ReadValidRecords(StreamId stream, ExtentId extent,
                             const OpContext* ctx) {
  Stream* s = GetStream(stream);
  if (s == nullptr) return Status::InvalidArgument("unknown stream");
  BG3_RETURN_IF_ERROR(CheckDeadline(ctx, "cloud extent scan"));
  BG3_RETURN_IF_ERROR(CheckBreaker());
  auto result = s->ReadValidRecords(extent);
  if (result.ok()) {
    for (const auto& [ptr, data] : result.value()) {
      stats_.read_ops.Inc();
      stats_.read_bytes.Add(data.size());
      OpStats::RecordCloudRead(ctx != nullptr ? ctx->stats : nullptr,
                               data.size());
    }
    breaker_.RecordSuccess();
  } else {
    breaker_.RecordError();
  }
  return result;
}

Result<std::vector<std::pair<PagePointer, std::string>>>
CloudStore::TailRecords(StreamId stream, const PagePointer& cursor,
                        size_t max_records, const OpContext* ctx) {
  Stream* s = GetStream(stream);
  if (s == nullptr) return Status::InvalidArgument("unknown stream");
  BG3_RETURN_IF_ERROR(CheckDeadline(ctx, "cloud tail"));
  BG3_RETURN_IF_ERROR(CheckBreaker());
  if (DecideFault(FaultOp::kTail).fail) {
    breaker_.RecordError();
    return Status::IOError("injected transient tail failure");
  }
  auto out = s->TailRecords(cursor, max_records);
  for (const auto& [ptr, data] : out) {
    stats_.read_ops.Inc();
    stats_.read_bytes.Add(data.size());
    OpStats::RecordCloudRead(ctx != nullptr ? ctx->stats : nullptr,
                             data.size());
  }
  breaker_.RecordSuccess();
  return out;
}

bool CloudStore::CorruptRecordForTesting(const PagePointer& ptr,
                                         uint32_t byte_index) {
  Stream* s = GetStream(ptr.stream_id);
  return s != nullptr && s->CorruptRecordForTesting(ptr, byte_index);
}

uint64_t CloudStore::ManifestPut(const std::string& key, const Slice& value) {
  MutexLock lock(&manifest_mu_);
  const uint64_t version = ++manifest_version_;
  manifest_[key] = {value.ToString(), version};
  stats_.manifest_updates.Inc();
  return version;
}

Result<uint64_t> CloudStore::ManifestCas(const std::string& key,
                                         uint64_t expected_version,
                                         const Slice& value) {
  MutexLock lock(&manifest_mu_);
  auto it = manifest_.find(key);
  const uint64_t current = it == manifest_.end() ? 0 : it->second.second;
  if (current != expected_version) {
    return Status::Aborted("manifest CAS lost on " + key + ": expected v" +
                           std::to_string(expected_version) + ", current v" +
                           std::to_string(current));
  }
  const uint64_t version = ++manifest_version_;
  manifest_[key] = {value.ToString(), version};
  stats_.manifest_updates.Inc();
  return version;
}

Result<std::string> CloudStore::ManifestGet(const std::string& key,
                                            uint64_t* version,
                                            const OpContext* ctx) const {
  BG3_RETURN_IF_ERROR(CheckDeadline(ctx, "cloud manifest get"));
  BG3_RETURN_IF_ERROR(CheckBreaker());
  if (DecideFault(FaultOp::kManifestGet).fail) {
    breaker_.RecordError();
    return Status::IOError("injected transient manifest-get failure");
  }
  MutexLock lock(&manifest_mu_);
  auto it = manifest_.find(key);
  // NotFound is an answer from a healthy substrate, not a substrate error.
  breaker_.RecordSuccess();
  if (it == manifest_.end()) return Status::NotFound("manifest key " + key);
  if (version != nullptr) *version = it->second.second;
  return it->second.first;
}

std::vector<std::pair<std::string, std::string>> CloudStore::ManifestList(
    const std::string& prefix) const {
  MutexLock lock(&manifest_mu_);
  std::vector<std::pair<std::string, std::string>> out;
  for (auto it = manifest_.lower_bound(prefix); it != manifest_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.emplace_back(it->first, it->second.first);
  }
  return out;
}

size_t CloudStore::TruncateStreamBefore(StreamId stream, ExtentId before) {
  Stream* s = GetStream(stream);
  if (s == nullptr) return 0;
  size_t freed = 0;
  for (const ExtentStats& stats : s->SealedExtentStats()) {
    if (stats.id >= before) continue;
    if (s->FreeExtent(stats.id).ok()) {
      stats_.extents_freed.Inc();
      if (StoreObserver* obs = observer_.load(std::memory_order_acquire)) {
        obs->OnExtentFreed(stream, stats.id);
      }
      ++freed;
    }
  }
  return freed;
}

uint64_t CloudStore::TotalBytes() const {
  ReaderMutexLock lock(&topology_mu_);
  uint64_t sum = 0;
  for (const auto& s : streams_) sum += s->total_bytes();
  return sum;
}

uint64_t CloudStore::LiveBytes() const {
  ReaderMutexLock lock(&topology_mu_);
  uint64_t sum = 0;
  for (const auto& s : streams_) sum += s->live_bytes();
  return sum;
}

uint64_t CloudStore::TotalBytes(StreamId stream) const {
  const Stream* s = GetStream(stream);
  return s == nullptr ? 0 : s->total_bytes();
}

uint64_t CloudStore::LiveBytes(StreamId stream) const {
  const Stream* s = GetStream(stream);
  return s == nullptr ? 0 : s->live_bytes();
}

}  // namespace bg3::cloud
