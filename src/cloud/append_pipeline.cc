#include "cloud/append_pipeline.h"

#include <chrono>

#include "common/op_stats.h"
#include "common/timed_scope.h"

namespace bg3::cloud {

AppendPipeline::AppendPipeline(CloudStore* store,
                               const AppendPipelineOptions& options,
                               CompletionFn on_complete)
    : store_(store), opts_(options), on_complete_(std::move(on_complete)) {
  const size_t n = opts_.inflight == 0 ? 1 : opts_.inflight;
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
}

AppendPipeline::~AppendPipeline() { Shutdown(); }

void AppendPipeline::Submit(uint64_t seq, std::string payload,
                            uint64_t record_count) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.emplace(seq, std::make_pair(std::move(payload), record_count));
  }
  cv_.notify_one();
}

void AppendPipeline::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && joined_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (!joined_) {
    for (std::thread& t : workers_) t.join();
    joined_ = true;
  }
}

size_t AppendPipeline::Outstanding() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + active_;
}

void AppendPipeline::WorkerMain() {
  // Background appends are WAL work for I/O attribution no matter which
  // layer's request sealed the batch.
  OpLayerScope wal_layer(OpLayer::kWal);
  for (;;) {
    Completion done;
    std::string payload;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      auto it = queue_.begin();    // lowest seq first
      done.seq = it->first;
      payload = std::move(it->second.first);
      done.record_count = it->second.second;
      queue_.erase(it);
      ++active_;
    }
    {
      BG3_TIMED_SCOPE("bg3.wal.sync_ns");
      RetryOptions retry = opts_.retry;
      retry.ctx = nullptr;
      retry.retries = &store_->stats().retries;
      retry.retry_exhausted = &store_->stats().retry_exhausted;
      retry.breaker = &store_->breaker();
      uint64_t latency_us = 0;
      auto res = RetryResultWithBackoff(retry, [&] {
        if (opts_.term != 0) {
          return store_->AppendFenced(opts_.stream, opts_.term, payload,
                                      &latency_us, nullptr);
        }
        return store_->Append(opts_.stream, payload, &latency_us, nullptr);
      });
      if (opts_.wall_latency_scale > 0 && latency_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(
            static_cast<uint64_t>(latency_us * opts_.wall_latency_scale)));
      }
      done.status = res.status();
      if (res.ok()) {
        done.ptr = res.value();
      } else {
        done.payload = std::move(payload);
      }
    }
    on_complete_(std::move(done));
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
    }
  }
}

}  // namespace bg3::cloud
