#ifndef BG3_CORE_OPTIONS_H_
#define BG3_CORE_OPTIONS_H_

#include <cstdint>
#include <memory>

#include "cloud/types.h"
#include "common/debug_server.h"
#include "core/admission.h"
#include "forest/forest.h"
#include "gc/policy.h"

namespace bg3::core {

/// Which space-reclamation strategy a GraphDB runs (§3.3 / Table 2).
enum class GcPolicyKind {
  kNone,           ///< never reclaim (pure append).
  kFifo,           ///< traditional Bw-tree FIFO queue.
  kDirtyRatio,     ///< ArkDB-style fragmentation-rate baseline.
  kWorkloadAware,  ///< BG3's Algorithm 2 (gradient + TTL bypass).
  /// The paper's §4.4 future work: bypass only extents close to their TTL
  /// deadline; distant-deadline extents compete under gradient+frag.
  kHybridTtlGradient,
};

/// Top-level configuration of a BG3 GraphDB instance.
struct GraphDBOptions {
  /// Bw-tree forest configuration (split-out threshold, INIT capacity,
  /// per-tree delta mode / consolidation / leaf size).
  forest::ForestOptions forest;

  GcPolicyKind gc_policy = GcPolicyKind::kWorkloadAware;
  size_t gc_extents_per_cycle = 4;
  double gc_min_fragmentation = 0.05;
  /// kHybridTtlGradient: extents expiring within this window are left to
  /// die in place; others remain reclamation candidates.
  uint64_t gc_ttl_bypass_window_us = 60ull * 1'000'000;
  /// Reclamation runs only above this dead-space ratio.
  double gc_target_dead_ratio = 0.10;

  /// Edge TTL (0 = edges never expire). With a TTL, reads filter expired
  /// edges and the workload-aware reclaimer lets whole extents expire in
  /// place (§3.3 Observation 2).
  uint64_t edge_ttl_us = 0;

  /// Time source for TTL/gradient bookkeeping; nullptr = wall clock.
  /// Benches inject a ManualTimeSource to fast-forward expiry.
  const cloud::TimeSource* time_source = nullptr;

  /// Leaf capacity of the vertex-property tree.
  size_t vertex_tree_max_leaf_entries = 256;

  /// Overload protection (DESIGN.md §5.5): per-class admission limits and
  /// bounded queues, plus the memory-pressure write throttle. Disabled by
  /// default; the deadline/breaker machinery beneath works either way.
  AdmissionOptions admission;

  /// Soft memory budget for the engine's page state (0 = unlimited). The
  /// maintenance loop treats all trees (forest + vertex) as one buffer
  /// pool: once ApproxMemoryBytes exceeds the budget it evicts the
  /// globally coldest clean leaves — ranked by a process-wide LRU tick —
  /// until resident payload fits. Total footprint is bounded by the budget
  /// regardless of how many trees the forest splits out; the memory layer
  /// behaves as the cache it is in the paper's architecture (§2.1).
  size_t memory_budget_bytes = 0;

  /// Continuous fuzzy checkpointing of the whole engine (DESIGN.md §5.7).
  /// When enabled, every tree (forest + vertex) runs deferred flushing and
  /// a decoupled checkpoint thread incrementally flushes dirty pages,
  /// publishes their images in the shared mapping table, and commits a
  /// checkpoint manifest (tree list + forest owner registry) under the
  /// "db" scope. Restart restores the manifest's layout with demand-paged
  /// (non-resident) pages: reads go live at checkpoint consistency after a
  /// bounded amount of I/O, independent of database size. Durability is
  /// checkpoint-granular — the WAL that narrows the loss window to the
  /// replayed suffix lives in the replication layer (RwNode/RwRestart).
  struct CheckpointPolicy {
    bool enabled = false;
    /// Background checkpoint thread cadence (StartCheckpointing).
    uint64_t interval_ms = 200;
    /// Dirty pages flushed per CheckpointCycle — the increment size.
    size_t max_pages_per_cycle = 64;
    /// Look for a "db"-scope checkpoint manifest at construction and
    /// restore from it (no-op when none exists).
    bool restore = true;
    /// Pages the background thread rewarm per cycle after a restore (the
    /// restore-priority queue drain rate; demand reads warm their own
    /// pages regardless).
    size_t warm_pages_per_cycle = 32;
  };
  CheckpointPolicy checkpoint;

  /// In-process debug/observability HTTP endpoint (DESIGN.md §5.8):
  /// `/metrics` (Prometheus), `/healthz`, `/tracez` (slow-op span trees),
  /// `/costz` (cloud cost accounting). Off by default; port 0 binds an
  /// ephemeral port readable via GraphDB::debug_server_port().
  DebugServerOptions debug_server;

  /// Validates ranges; returns InvalidArgument on nonsense combinations.
  Status Validate() const;
};

/// Builds the policy object matching `kind` (nullptr for kNone).
std::unique_ptr<gc::GcPolicy> MakeGcPolicy(GcPolicyKind kind,
                                           double min_fragmentation,
                                           uint64_t ttl_bypass_window_us = 0);

}  // namespace bg3::core

#endif  // BG3_CORE_OPTIONS_H_
