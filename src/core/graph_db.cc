#include "core/graph_db.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/timed_scope.h"
#include "graph/edge.h"

namespace bg3::core {

namespace {

/// The admission controller's queue-wait clock defaults to the DB's own
/// time source, so benches driving a ManualTimeSource get consistent
/// service-time estimates.
AdmissionOptions AdmissionWithDbClock(AdmissionOptions a,
                                      const cloud::TimeSource* db_clock) {
  if (a.time_source == nullptr) a.time_source = db_clock;
  return a;
}

/// Watermark refresh cadence: cheap enough to run inline, rare enough to
/// stay off the per-op fast path.
constexpr uint64_t kWritesPerOverloadRefresh = 256;

}  // namespace

bwtree::BwTree* GraphDB::ResolverImpl::Resolve(bwtree::TreeId id) {
  if (id == kVertexTreeId) return db_->vertex_tree_.get();
  return db_->forest_->ResolveTree(id);
}

GraphDB::GraphDB(cloud::CloudStore* store, const GraphDBOptions& options)
    : store_(store),
      opts_(options),
      admission_(AdmissionWithDbClock(options.admission,
                                      options.time_source)) {
  BG3_CHECK(opts_.Validate().ok()) << opts_.Validate().ToString();
  time_source_ =
      opts_.time_source != nullptr ? opts_.time_source : &wall_time_;

  base_stream_ = store_->CreateStream("bg3-base");
  delta_stream_ = store_->CreateStream("bg3-delta");

  tracker_ = std::make_unique<gc::ExtentUsageTracker>(time_source_);
  store_->SetObserver(tracker_.get());

  // Checkpoint restore happens before the trees exist: the manifest decides
  // which trees come up in bootstrap mode with their checkpointed layout.
  replication::CheckpointManifest restore_manifest;
  bool restoring = false;
  if (opts_.checkpoint.enabled && opts_.checkpoint.restore) {
    auto loaded = replication::LoadCheckpoint(store_, kCheckpointScope);
    if (loaded.ok()) {
      restore_manifest = std::move(loaded.value().manifest);
      checkpoint_fell_back_ = loaded.value().fell_back;
      restoring = true;
    }
  }
  std::vector<bwtree::RecoveredPage> vertex_pages;
  if (restoring) vertex_pages = LoadTreeImages(kVertexTreeId);

  bwtree::BwTreeOptions vertex_opts;
  vertex_opts.tree_id = kVertexTreeId;
  vertex_opts.base_stream = base_stream_;
  vertex_opts.delta_stream = delta_stream_;
  vertex_opts.max_leaf_entries = opts_.vertex_tree_max_leaf_entries;
  vertex_opts.delta_mode = opts_.forest.tree_options.delta_mode;
  vertex_opts.consolidate_threshold =
      opts_.forest.tree_options.consolidate_threshold;
  vertex_opts.flush_mode = opts_.forest.tree_options.flush_mode;
  vertex_opts.tolerate_missing_extents = opts_.edge_ttl_us != 0;
  vertex_opts.tick_source = &access_tick_;
  if (opts_.checkpoint.enabled) {
    // Checkpointing owns durability: writes stay in memory and the cycle's
    // bounded flush rounds persist them (the staged images publish through
    // image_listener_).
    vertex_opts.flush_mode = bwtree::FlushMode::kDeferred;
    vertex_opts.listener = &image_listener_;
    vertex_opts.lsn_source = &vertex_lsn_;
  }
  vertex_opts.bootstrap = !vertex_pages.empty();
  vertex_tree_ = std::make_unique<bwtree::BwTree>(store_, vertex_opts);
  if (vertex_opts.bootstrap) {
    std::vector<std::pair<bwtree::TreeId, bwtree::PageId>> warm;
    for (const auto& rp : vertex_pages) {
      if (!rp.resident) warm.emplace_back(kVertexTreeId, rp.id);
    }
    if (vertex_tree_->InstallRecoveredPages(std::move(vertex_pages)).ok()) {
      warm_queue_.insert(warm_queue_.end(), warm.begin(), warm.end());
    } else {
      // Unusable layout (e.g. a crash tore a split's image pair): fall back
      // to a fresh tree — the vertex data beyond the last coherent images
      // is past the restore horizon.
      vertex_opts.bootstrap = false;
      vertex_tree_ = std::make_unique<bwtree::BwTree>(store_, vertex_opts);
    }
  }

  forest::ForestOptions forest_opts = opts_.forest;
  forest_opts.tree_options.base_stream = base_stream_;
  forest_opts.tree_options.delta_stream = delta_stream_;
  forest_opts.tree_options.tolerate_missing_extents = opts_.edge_ttl_us != 0;
  forest_opts.tree_options.tick_source = &access_tick_;
  if (opts_.checkpoint.enabled) {
    forest_opts.tree_options.flush_mode = bwtree::FlushMode::kDeferred;
    forest_opts.tree_options.listener = &image_listener_;
  }
  std::vector<bwtree::RecoveredPage> init_pages;
  if (restoring) init_pages = LoadTreeImages(0);
  forest_opts.bootstrap_init = !init_pages.empty();
  forest_ = std::make_unique<forest::BwTreeForest>(store_, forest_opts);
  if (forest_opts.bootstrap_init) {
    std::vector<std::pair<bwtree::TreeId, bwtree::PageId>> warm;
    for (const auto& rp : init_pages) {
      if (!rp.resident) warm.emplace_back(0, rp.id);
    }
    if (forest_->InstallInitPages(std::move(init_pages)).ok()) {
      warm_queue_.insert(warm_queue_.end(), warm.begin(), warm.end());
    } else {
      forest_opts.bootstrap_init = false;
      forest_ = std::make_unique<forest::BwTreeForest>(store_, forest_opts);
    }
  }
  if (restoring) RestoreFromManifest(restore_manifest);

  resolver_ = std::make_unique<ResolverImpl>(this);
  gc_policy_ = MakeGcPolicy(opts_.gc_policy, opts_.gc_min_fragmentation,
                            opts_.gc_ttl_bypass_window_us);
  if (gc_policy_ != nullptr) {
    gc::ReclaimOptions reclaim;
    reclaim.ttl_us = opts_.edge_ttl_us;
    reclaim.target_dead_ratio = opts_.gc_target_dead_ratio;
    reclaimer_ = std::make_unique<gc::SpaceReclaimer>(
        store_, resolver_.get(), gc_policy_.get(), tracker_.get(), reclaim);
  }

  // Publish forest/GC internals in the process-wide registry so DumpMetrics
  // and the bench JSON see the same numbers DbStats reports. Per-instance
  // prefix: tests and benches routinely run several GraphDBs per process.
  metrics_prefix_ =
      "bg3.db" + std::to_string(MetricsRegistry::NextInstanceId("db")) + ".";
  MetricsRegistry& reg = MetricsRegistry::Default();
  reg.RegisterLightCounter(metrics_prefix_ + "forest.split_outs",
                           &forest_->stats().split_outs);
  reg.RegisterLightCounter(metrics_prefix_ + "forest.evictions",
                           &forest_->stats().evictions);
  reg.RegisterLightCounter(metrics_prefix_ + "checkpoint.pages_flushed",
                           &ckpt_pages_flushed_);
  reg.RegisterLightCounter(metrics_prefix_ + "checkpoint.manifests_written",
                           &ckpt_manifests_written_);
  reg.RegisterLightCounter(metrics_prefix_ + "checkpoint.replay_bytes",
                           &ckpt_replay_bytes_);
  reg.RegisterCallback(metrics_prefix_ + "forest.tree_count",
                       [this] { return uint64_t{forest_->TreeCount()}; });
  reg.RegisterCallback(metrics_prefix_ + "forest.init_entries",
                       [this] { return uint64_t{forest_->InitEntryCount()}; });
  // Leaf-latch traffic across the whole DB (forest trees + vertex tree),
  // split by mode: the shared/exclusive ratio is the read-path scalability
  // signal, conflicts are the contention signal.
  auto latch_counters = [this] {
    forest::BwTreeForest::LatchCounters agg =
        forest_->AggregateLatchCounters();
    const bwtree::BwTreeStats& vs = vertex_tree_->stats();
    agg.shared_acquires += vs.latch_shared_acquires.Get();
    agg.exclusive_acquires += vs.latch_exclusive_acquires.Get();
    agg.shared_conflicts += vs.latch_shared_conflicts.Get();
    agg.exclusive_conflicts += vs.latch_exclusive_conflicts.Get();
    return agg;
  };
  reg.RegisterCallback(metrics_prefix_ + "bwtree.latch.shared_acquires",
                       [latch_counters] {
                         return latch_counters().shared_acquires;
                       });
  reg.RegisterCallback(metrics_prefix_ + "bwtree.latch.exclusive_acquires",
                       [latch_counters] {
                         return latch_counters().exclusive_acquires;
                       });
  reg.RegisterCallback(metrics_prefix_ + "bwtree.latch.shared_conflicts",
                       [latch_counters] {
                         return latch_counters().shared_conflicts;
                       });
  reg.RegisterCallback(metrics_prefix_ + "bwtree.latch.exclusive_conflicts",
                       [latch_counters] {
                         return latch_counters().exclusive_conflicts;
                       });
  reg.RegisterCallback(metrics_prefix_ + "approx_memory_bytes", [this] {
    return uint64_t{forest_->ApproxMemoryBytes() +
                    vertex_tree_->ApproxMemoryBytes()};
  });
  reg.RegisterCallback(metrics_prefix_ + "bwtree.resident_bytes", [this] {
    return uint64_t{forest_->TotalResidentBytes() +
                    vertex_tree_->ResidentBytes()};
  });
  // Overload-protection surface (DESIGN.md §5.5): admission outcomes, the
  // shared queue depth, and the cloud breaker state, all under one prefix
  // so a single dashboard shows whether the DB is shedding and why.
  reg.RegisterCounter(metrics_prefix_ + "overload.admitted",
                      &admission_.admitted());
  reg.RegisterCounter(metrics_prefix_ + "overload.shed", &admission_.shed());
  reg.RegisterCounter(metrics_prefix_ + "overload.deadline_exceeded",
                      &admission_.deadline_exceeded());
  reg.RegisterGauge(metrics_prefix_ + "overload.queue_depth",
                    &admission_.queue_depth());
  reg.RegisterGauge(metrics_prefix_ + "overload.breaker_state",
                    &store_->breaker().state_gauge());
  reg.RegisterCallback(metrics_prefix_ + "overload.write_throttle", [this] {
    return uint64_t{admission_.write_throttle_reasons()};
  });
  if (reclaimer_ != nullptr) {
    reg.RegisterCallback(metrics_prefix_ + "gc.extents_reclaimed", [this] {
      return reclaimer_->totals().extents_reclaimed;
    });
    reg.RegisterCallback(metrics_prefix_ + "gc.extents_expired", [this] {
      return reclaimer_->totals().extents_expired;
    });
    reg.RegisterCallback(metrics_prefix_ + "gc.bytes_freed",
                         [this] { return reclaimer_->totals().bytes_freed; });
  }

  if (opts_.debug_server.enabled) {
    // Best effort: a debug endpoint that cannot bind (port in use) must
    // not fail database startup. debug_server_port() stays 0.
    Status s = debug_server_.Start(opts_.debug_server);
    if (!s.ok()) {
      std::fprintf(stderr, "[bg3] debug server not started: %s\n",
                   s.ToString().c_str());
    }
  }
}

GraphDB::~GraphDB() {
  // Stop serving before engine teardown so no handler renders metrics while
  // callbacks registered against this instance are being torn down.
  debug_server_.Stop();
  StopCheckpointing();
  StopMaintenance();
  MetricsRegistry::Default().DeregisterPrefix(metrics_prefix_);
  store_->SetObserver(nullptr);
}

void GraphDB::StartMaintenance(uint64_t interval_ms) {
  std::lock_guard<std::mutex> lock(maint_mu_);
  if (maint_thread_.joinable()) return;
  maint_stop_ = false;
  maint_thread_ = std::thread([this, interval_ms] {
    std::unique_lock<std::mutex> lock(maint_mu_);
    while (!maint_stop_) {
      maint_cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                         [this] { return maint_stop_; });
      if (maint_stop_) return;
      lock.unlock();
      // Best-effort background cycle; failures surface via gc stats and the
      // next foreground RunGcCycle caller.
      BG3_IGNORE_STATUS(RunGcCycle());
      lock.lock();
    }
  });
}

void GraphDB::StopMaintenance() {
  std::thread joinee;
  {
    std::lock_guard<std::mutex> lock(maint_mu_);
    if (!maint_thread_.joinable()) return;
    maint_stop_ = true;
    joinee = std::move(maint_thread_);
  }
  maint_cv_.notify_all();
  joinee.join();
}

void GraphDB::ImageListener::OnPageFlushed(
    bwtree::TreeId tree, bwtree::PageId page, bwtree::Lsn flushed_lsn,
    const cloud::PagePointer& base_ptr,
    const std::vector<cloud::PagePointer>& delta_ptrs,
    const std::string& low_key, const std::string& high_key,
    bool has_high_key) {
  StagedImage staged;
  staged.tree = tree;
  staged.page = page;
  staged.meta.flushed_lsn = flushed_lsn;
  staged.meta.base_ptr = base_ptr;
  staged.meta.delta_ptrs = delta_ptrs;
  staged.meta.low_key = low_key;
  staged.meta.high_key = high_key;
  staged.meta.has_high_key = has_high_key;
  std::lock_guard<std::mutex> lock(db_->staged_mu_);
  bwtree::Lsn& tree_lsn = db_->ckpt_tree_lsn_[tree];
  tree_lsn = std::max(tree_lsn, flushed_lsn);
  db_->ckpt_staged_.push_back(std::move(staged));
}

std::vector<bwtree::RecoveredPage> GraphDB::LoadTreeImages(
    bwtree::TreeId tree) {
  std::vector<bwtree::RecoveredPage> pages;
  for (const auto& [key, value] :
       store_->ManifestList(replication::PageImagePrefix(tree))) {
    bwtree::TreeId parsed_tree;
    bwtree::PageId page;
    if (!replication::ParsePageImageKey(key, &parsed_tree, &page) ||
        parsed_tree != tree) {
      continue;
    }
    replication::PageImageMeta meta;
    if (!replication::PageImageMeta::Decode(Slice(value), &meta).ok() ||
        !meta.delta_ptrs.empty()) {
      // A corrupt or delta-carrying image cannot be demand-paged; treat the
      // whole tree as unrestorable (fresh-tree fallback) rather than
      // resurrecting a partial layout.
      return {};
    }
    bwtree::RecoveredPage rp;
    rp.id = page;
    rp.low_key = meta.low_key;
    rp.high_key = meta.high_key;
    rp.has_high_key = meta.has_high_key;
    rp.last_lsn = meta.flushed_lsn;
    rp.base_ptr = meta.base_ptr;
    rp.clean = true;
    // Demand-paged install whenever there is an image to demand; a null
    // base pointer means the page flushed empty — install it resident.
    rp.resident = meta.base_ptr.IsNull();
    pages.push_back(std::move(rp));
  }
  return pages;
}

void GraphDB::RestoreFromManifest(
    const replication::CheckpointManifest& manifest) {
  for (const auto& owner : manifest.owners) {
    forest::OwnerRecord rec;
    rec.owner = owner.owner;
    rec.tree_id = owner.tree_id;
    rec.entry_count = owner.entry_count;
    std::vector<bwtree::RecoveredPage> pages;
    if (rec.tree_id != 0) pages = LoadTreeImages(rec.tree_id);
    std::vector<std::pair<bwtree::TreeId, bwtree::PageId>> warm;
    for (const auto& rp : pages) {
      if (!rp.resident) warm.emplace_back(rec.tree_id, rp.id);
    }
    if (forest_->RestoreOwner(rec, std::move(pages)).ok()) {
      warm_queue_.insert(warm_queue_.end(), warm.begin(), warm.end());
    } else {
      // Dedicated layout unusable: restore the owner empty, INIT-resident.
      BG3_IGNORE_STATUS(forest_->RestoreOwner(rec, {}));
    }
  }
  // Post-restore mutations must extend the checkpointed LSN order so the
  // per-page flushed_lsn <= last_lsn invariant holds.
  forest_->RestoreLsnFloor(manifest.checkpoint_lsn);
  bwtree::Lsn cur = vertex_lsn_.load(std::memory_order_relaxed);
  while (cur < manifest.checkpoint_lsn &&
         !vertex_lsn_.compare_exchange_weak(cur, manifest.checkpoint_lsn,
                                            std::memory_order_relaxed)) {
  }
  {
    std::lock_guard<std::mutex> lock(staged_mu_);
    for (const auto& t : manifest.trees) {
      bwtree::Lsn& tree_lsn = ckpt_tree_lsn_[t.tree_id];
      tree_lsn = std::max(tree_lsn, t.flushed_lsn);
    }
  }
  std::lock_guard<std::mutex> lock(ckpt_mu_);
  ckpt_epoch_ = manifest.epoch;
  restored_from_checkpoint_ = true;
}

void GraphDB::PublishStagedImages() {
  std::vector<StagedImage> staged;
  {
    std::lock_guard<std::mutex> lock(staged_mu_);
    staged.swap(ckpt_staged_);
  }
  if (staged.empty()) return;
  // Children before parents (page ids are allocated monotonically, so a
  // split child always outranks its parent) and one image per page — the
  // same ordering the RW node's group flush uses, so a crash between puts
  // can only leave an overlap (caught by restore's tiling validation),
  // never a silent hole.
  std::sort(staged.begin(), staged.end(),
            [](const StagedImage& a, const StagedImage& b) {
              return a.page > b.page;
            });
  for (auto it = staged.begin(); it != staged.end();) {
    auto next = it + 1;
    if (next != staged.end() && next->tree == it->tree &&
        next->page == it->page) {
      if (next->meta.flushed_lsn < it->meta.flushed_lsn) *next = *it;
      it = staged.erase(it);
    } else {
      ++it;
    }
  }
  for (const StagedImage& s : staged) {
    store_->ManifestPut(replication::PageImageKey(s.tree, s.page),
                        s.meta.Encode());
  }
  ckpt_pages_flushed_.Add(staged.size());
}

Status GraphDB::CheckpointCycle() {
  if (!opts_.checkpoint.enabled) {
    return Status::InvalidArgument("checkpointing disabled");
  }
  std::lock_guard<std::mutex> lock(ckpt_mu_);
  return CheckpointCycleLocked();
}

Status GraphDB::CheckpointCycleLocked() {
  if (!ckpt_cut_.active) {
    // Begin a fuzzy cut: snapshot every tree's dirty pages. Writers keep
    // mutating; pages dirtied after this point belong to the next cut.
    ckpt_cut_.active = true;
    ckpt_cut_.pending.clear();
    ckpt_cut_.next = 0;
    std::vector<bwtree::BwTree*> trees;
    forest_->AppendTrees(&trees);
    trees.push_back(vertex_tree_.get());
    for (bwtree::BwTree* t : trees) {
      for (bwtree::PageId id : t->DirtyPageIds()) {
        ckpt_cut_.pending.emplace_back(t->options().tree_id, id);
      }
    }
    return Status::OK();
  }
  // One bounded flush round.
  size_t budget = opts_.checkpoint.max_pages_per_cycle;
  while (ckpt_cut_.next < ckpt_cut_.pending.size() && budget > 0) {
    const auto& [tree_id, page_id] = ckpt_cut_.pending[ckpt_cut_.next];
    bwtree::BwTree* tree = resolver_->Resolve(tree_id);
    if (tree != nullptr) {
      Status s = tree->FlushPage(page_id);
      // NotFound: the page merged away since the snapshot — nothing to
      // cover. Any other failure keeps the cut open for retry.
      if (!s.ok() && !s.IsNotFound()) {
        PublishStagedImages();
        return s;
      }
    }
    ++ckpt_cut_.next;
    --budget;
  }
  PublishStagedImages();
  if (ckpt_cut_.next < ckpt_cut_.pending.size()) return Status::OK();
  // Cut drained: images first, manifest last — the manifest's promise must
  // never be readable before the images it promises.
  replication::CheckpointManifest manifest;
  manifest.epoch = ckpt_epoch_ + 1;
  {
    std::lock_guard<std::mutex> staged_lock(staged_mu_);
    manifest.trees.reserve(ckpt_tree_lsn_.size());
    for (const auto& [tree_id, lsn] : ckpt_tree_lsn_) {
      manifest.trees.push_back(replication::CheckpointTree{tree_id, lsn});
      manifest.checkpoint_lsn = std::max(manifest.checkpoint_lsn, lsn);
    }
  }
  for (const forest::OwnerRecord& rec : forest_->ExportOwners()) {
    manifest.owners.push_back(
        replication::CheckpointOwner{rec.owner, rec.tree_id, rec.entry_count});
  }
  BG3_RETURN_IF_ERROR(
      replication::PublishCheckpoint(store_, kCheckpointScope, manifest));
  ++ckpt_epoch_;
  ckpt_manifests_written_.Inc();
  ckpt_cut_ = CheckpointCut{};
  return Status::OK();
}

Status GraphDB::CheckpointNow() {
  if (!opts_.checkpoint.enabled) {
    return Status::InvalidArgument("checkpointing disabled");
  }
  std::lock_guard<std::mutex> lock(ckpt_mu_);
  const uint64_t target = ckpt_epoch_ + 1;
  while (ckpt_epoch_ < target) {
    BG3_RETURN_IF_ERROR(CheckpointCycleLocked());
  }
  return Status::OK();
}

Result<size_t> GraphDB::WarmRestoredPages(size_t max) {
  std::lock_guard<std::mutex> lock(warm_mu_);
  size_t warmed = 0;
  while (warm_next_ < warm_queue_.size() && warmed < max) {
    const auto& [tree_id, page_id] = warm_queue_[warm_next_];
    bwtree::BwTree* tree = resolver_->Resolve(tree_id);
    if (tree != nullptr) {
      auto bytes = tree->WarmPage(page_id);
      if (bytes.ok()) {
        ckpt_replay_bytes_.Add(bytes.value());
      } else if (!bytes.status().IsNotFound()) {
        // Leave the entry in place; the next drain retries it.
        return bytes.status();
      }
    }
    ++warm_next_;
    ++warmed;
  }
  return warm_queue_.size() - warm_next_;
}

uint64_t GraphDB::checkpoint_epoch() const {
  std::lock_guard<std::mutex> lock(ckpt_mu_);
  return ckpt_epoch_;
}

void GraphDB::StartCheckpointing() {
  if (!opts_.checkpoint.enabled) return;
  std::lock_guard<std::mutex> lock(ckpt_thread_mu_);
  if (ckpt_thread_.joinable()) return;
  ckpt_stop_ = false;
  const uint64_t interval_ms = opts_.checkpoint.interval_ms;
  ckpt_thread_ = std::thread([this, interval_ms] {
    std::unique_lock<std::mutex> lock(ckpt_thread_mu_);
    while (!ckpt_stop_) {
      ckpt_thread_cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                               [this] { return ckpt_stop_; });
      if (ckpt_stop_) return;
      lock.unlock();
      // Restore warming first (time-to-full-QPS), then one checkpoint
      // increment. Best-effort: failures keep the cut/queue for retry.
      BG3_IGNORE_STATUS(
          WarmRestoredPages(opts_.checkpoint.warm_pages_per_cycle).status());
      BG3_IGNORE_STATUS(CheckpointCycle());
      lock.lock();
    }
  });
}

void GraphDB::StopCheckpointing() {
  std::thread joinee;
  {
    std::lock_guard<std::mutex> lock(ckpt_thread_mu_);
    if (!ckpt_thread_.joinable()) return;
    ckpt_stop_ = true;
    joinee = std::move(ckpt_thread_);
  }
  ckpt_thread_cv_.notify_all();
  joinee.join();
}

bool GraphDB::EdgeExpired(graph::TimestampUs created_us) const {
  return opts_.edge_ttl_us != 0 &&
         created_us + opts_.edge_ttl_us <= time_source_->NowUs();
}

Status GraphDB::AdmitOp(OpClass cls, const OpContext* ctx,
                        AdmissionController::Permit* permit) {
  // A deadline already dead at the boundary is the caller's bug
  // (InvalidArgument), not a DeadlineExceeded — see ValidateOpContext.
  BG3_RETURN_IF_ERROR(ValidateOpContext(ctx));
  BG3_RETURN_IF_ERROR(admission_.Admit(cls, ctx, permit));
  if (cls == OpClass::kWrite && admission_.enabled() &&
      writes_since_refresh_.fetch_add(1, std::memory_order_relaxed) + 1 >=
          kWritesPerOverloadRefresh) {
    RefreshOverloadState();
  }
  return Status::OK();
}

void GraphDB::SetWalBacklogProbe(std::function<size_t()> probe,
                                 size_t watermark) {
  {
    std::lock_guard<std::mutex> lock(wal_probe_mu_);
    wal_backlog_probe_ = std::move(probe);
    wal_backlog_watermark_ = watermark;
  }
  RefreshOverloadState();
}

void GraphDB::RefreshOverloadState() {
  writes_since_refresh_.store(0, std::memory_order_relaxed);
  if (!admission_.enabled()) return;
  uint32_t reasons = admission_.write_throttle_reasons();
  {
    std::lock_guard<std::mutex> lock(wal_probe_mu_);
    if (wal_backlog_probe_ && wal_backlog_watermark_ > 0 &&
        wal_backlog_probe_() >= wal_backlog_watermark_) {
      reasons |= ThrottleReason::kWalBacklog;
    } else {
      reasons &= ~ThrottleReason::kWalBacklog;
    }
  }
  if (opts_.memory_budget_bytes != 0 &&
      opts_.admission.memory_throttle_ratio > 0) {
    const size_t memory =
        forest_->ApproxMemoryBytes() + vertex_tree_->ApproxMemoryBytes();
    const double limit =
        opts_.admission.memory_throttle_ratio *
        static_cast<double>(opts_.memory_budget_bytes);
    if (static_cast<double>(memory) > limit) {
      reasons |= ThrottleReason::kMemoryPressure;
    } else {
      reasons &= ~ThrottleReason::kMemoryPressure;
    }
  }
  admission_.SetWriteThrottle(reasons);
}

Status GraphDB::AddVertex(graph::VertexId id, const Slice& properties,
                          const OpContext* ctx) {
  BG3_TIMED_SCOPE("bg3.api.add_vertex_ns");
  BG3_OP_SCOPE("bg3.api.add_vertex", ctx);
  OpLayerScope api_layer(OpLayer::kApi);
  AdmissionController::Permit permit;
  BG3_RETURN_IF_ERROR(AdmitOp(OpClass::kWrite, ctx, &permit));
  return vertex_tree_->Upsert(graph::EncodeDstKey(id), properties, ctx);
}

Result<std::string> GraphDB::GetVertex(graph::VertexId id,
                                       const OpContext* ctx) {
  BG3_TIMED_SCOPE("bg3.api.get_vertex_ns");
  BG3_OP_SCOPE("bg3.api.get_vertex", ctx);
  OpLayerScope api_layer(OpLayer::kApi);
  AdmissionController::Permit permit;
  BG3_RETURN_IF_ERROR(AdmitOp(OpClass::kRead, ctx, &permit));
  return vertex_tree_->Get(graph::EncodeDstKey(id), ctx);
}

Status GraphDB::DeleteVertex(graph::VertexId id, graph::EdgeType type,
                             const OpContext* ctx) {
  BG3_TIMED_SCOPE("bg3.api.delete_vertex_ns");
  BG3_OP_SCOPE("bg3.api.delete_vertex", ctx);
  OpLayerScope api_layer(OpLayer::kApi);
  AdmissionController::Permit permit;
  BG3_RETURN_IF_ERROR(AdmitOp(OpClass::kWrite, ctx, &permit));
  {
    // The vertex row may never have been materialized; only NotFound is
    // ignorable — a real storage error must fail the delete.
    Status s = vertex_tree_->Delete(graph::EncodeDstKey(id), ctx);
    if (!s.ok() && !s.IsNotFound()) return s;
  }
  const uint64_t owner = graph::MakeOwnerId(id, type);
  std::vector<bwtree::Entry> entries;
  BG3_RETURN_IF_ERROR(forest_->ScanOwner(owner, Slice(), ~0ull, &entries,
                                         ctx));
  for (const bwtree::Entry& e : entries) {
    BG3_RETURN_IF_ERROR(forest_->Delete(owner, e.key, ctx));
  }
  return Status::OK();
}

Status GraphDB::AddEdge(graph::VertexId src, graph::EdgeType type,
                        graph::VertexId dst, const Slice& properties,
                        graph::TimestampUs created_us, const OpContext* ctx) {
  BG3_TIMED_SCOPE("bg3.api.add_edge_ns");
  BG3_OP_SCOPE("bg3.api.add_edge", ctx);
  OpLayerScope api_layer(OpLayer::kApi);
  AdmissionController::Permit permit;
  BG3_RETURN_IF_ERROR(AdmitOp(OpClass::kWrite, ctx, &permit));
  if (created_us == 0) created_us = time_source_->NowUs();
  return forest_->Upsert(graph::MakeOwnerId(src, type),
                         graph::EncodeDstKey(dst),
                         graph::EncodeEdgeValue(created_us, properties), ctx);
}

Status GraphDB::DeleteEdge(graph::VertexId src, graph::EdgeType type,
                           graph::VertexId dst, const OpContext* ctx) {
  BG3_TIMED_SCOPE("bg3.api.delete_edge_ns");
  BG3_OP_SCOPE("bg3.api.delete_edge", ctx);
  OpLayerScope api_layer(OpLayer::kApi);
  AdmissionController::Permit permit;
  BG3_RETURN_IF_ERROR(AdmitOp(OpClass::kWrite, ctx, &permit));
  return forest_->Delete(graph::MakeOwnerId(src, type),
                         graph::EncodeDstKey(dst), ctx);
}

Result<std::string> GraphDB::GetEdge(graph::VertexId src, graph::EdgeType type,
                                     graph::VertexId dst,
                                     const OpContext* ctx) {
  BG3_TIMED_SCOPE("bg3.api.get_edge_ns");
  BG3_OP_SCOPE("bg3.api.get_edge", ctx);
  OpLayerScope api_layer(OpLayer::kApi);
  AdmissionController::Permit permit;
  BG3_RETURN_IF_ERROR(AdmitOp(OpClass::kRead, ctx, &permit));
  auto value = forest_->Get(graph::MakeOwnerId(src, type),
                            graph::EncodeDstKey(dst), ctx);
  BG3_RETURN_IF_ERROR(value.status());
  graph::TimestampUs created_us;
  std::string properties;
  if (!graph::DecodeEdgeValue(Slice(value.value()), &created_us,
                              &properties)) {
    return Status::Corruption("edge value");
  }
  if (EdgeExpired(created_us)) return Status::NotFound("edge expired");
  return properties;
}

Status GraphDB::GetNeighbors(graph::VertexId src, graph::EdgeType type,
                             size_t limit,
                             std::vector<graph::Neighbor>* out,
                             const OpContext* ctx) {
  BG3_TIMED_SCOPE("bg3.api.get_neighbors_ns");
  BG3_OP_SCOPE("bg3.api.get_neighbors", ctx);
  OpLayerScope api_layer(OpLayer::kApi);
  AdmissionController::Permit permit;
  BG3_RETURN_IF_ERROR(AdmitOp(OpClass::kRead, ctx, &permit));
  std::vector<bwtree::Entry> entries;
  BG3_RETURN_IF_ERROR(forest_->ScanOwner(graph::MakeOwnerId(src, type),
                                         Slice(), limit, &entries, ctx));
  out->reserve(out->size() + entries.size());
  for (const bwtree::Entry& e : entries) {
    graph::VertexId dst;
    graph::TimestampUs created_us;
    std::string properties;
    if (!graph::DecodeDstKey(Slice(e.key), &dst) ||
        !graph::DecodeEdgeValue(Slice(e.value), &created_us, &properties)) {
      return Status::Corruption("adjacency entry");
    }
    if (EdgeExpired(created_us)) continue;
    out->push_back(graph::Neighbor{dst, created_us, std::move(properties)});
  }
  return Status::OK();
}

Status GraphDB::RunGcCycle() {
  BG3_TIMED_SCOPE("bg3.api.run_gc_cycle_ns");
  // GC competes under its own (small) admission class so a maintenance
  // storm cannot crowd out foreground work; it never carries a deadline.
  AdmissionController::Permit permit;
  BG3_RETURN_IF_ERROR(admission_.Admit(OpClass::kBackground, nullptr,
                                       &permit));
  if (opts_.memory_budget_bytes != 0) {
    const size_t memory =
        forest_->ApproxMemoryBytes() + vertex_tree_->ApproxMemoryBytes();
    if (memory > opts_.memory_budget_bytes) {
      // One buffer pool over every tree (forest + vertex): evict the
      // globally coldest clean leaves until resident payload fits in the
      // budget minus the structural overhead eviction cannot shrink. The
      // old per-tree target made the footprint scale with the tree count
      // as the forest split owners out; a byte budget does not.
      std::vector<bwtree::BwTree*> trees;
      forest_->AppendTrees(&trees);
      trees.push_back(vertex_tree_.get());
      const size_t resident = forest::TotalResidentBytesAcross(trees);
      const size_t overhead = memory > resident ? memory - resident : 0;
      const size_t payload_budget = opts_.memory_budget_bytes > overhead
                                        ? opts_.memory_budget_bytes - overhead
                                        : 0;
      // Eviction is advisory here: the cycle still reports success when the
      // budget cannot be met (the write throttle reacts to the watermark).
      BG3_IGNORE_STATUS(forest::EvictTreesToBudget(trees, payload_budget));
    }
  }
  // Eviction just ran, so the memory watermark is freshest here — the GC
  // cycle is what clears a memory-pressure write throttle.
  RefreshOverloadState();
  if (reclaimer_ == nullptr) return Status::OK();
  BG3_RETURN_IF_ERROR(
      reclaimer_->RunCycle(base_stream_, opts_.gc_extents_per_cycle).status());
  BG3_RETURN_IF_ERROR(
      reclaimer_->RunCycle(delta_stream_, opts_.gc_extents_per_cycle)
          .status());
  return Status::OK();
}

std::string GraphDB::DumpMetrics(int indent) const {
  return MetricsRegistry::Default().RenderJson(indent);
}

DbStats GraphDB::Stats() const {
  DbStats s;
  s.storage_total_bytes = store_->TotalBytes();
  s.storage_live_bytes = store_->LiveBytes();
  const cloud::IoStats& io = store_->stats();
  s.append_ops = io.append_ops.Get();
  s.append_bytes = io.append_bytes.Get();
  s.read_ops = io.read_ops.Get();
  s.read_bytes = io.read_bytes.Get();
  s.gc_moved_bytes = io.gc_moved_bytes.Get();
  s.extents_freed = io.extents_freed.Get();

  s.tree_count = forest_->TreeCount();
  s.init_entries = forest_->InitEntryCount();
  s.split_outs = forest_->stats().split_outs.Get();
  s.evictions = forest_->stats().evictions.Get();
  {
    forest::BwTreeForest::LatchCounters agg =
        forest_->AggregateLatchCounters();
    const bwtree::BwTreeStats& vs = vertex_tree_->stats();
    s.latch_conflicts = agg.shared_conflicts + agg.exclusive_conflicts +
                        vs.latch_shared_conflicts.Get() +
                        vs.latch_exclusive_conflicts.Get();
    s.latch_shared_acquires =
        agg.shared_acquires + vs.latch_shared_acquires.Get();
    s.latch_exclusive_acquires =
        agg.exclusive_acquires + vs.latch_exclusive_acquires.Get();
  }
  s.approx_memory_bytes =
      forest_->ApproxMemoryBytes() + vertex_tree_->ApproxMemoryBytes();
  s.resident_bytes = forest_->TotalResidentBytes() +
                     vertex_tree_->ResidentBytes();

  if (reclaimer_ != nullptr) {
    const gc::CycleResult& totals = reclaimer_->totals();
    s.gc_extents_reclaimed = totals.extents_reclaimed;
    s.gc_extents_expired = totals.extents_expired;
    s.gc_bytes_freed = totals.bytes_freed;
  }
  return s;
}

}  // namespace bg3::core
