#ifndef BG3_CORE_ADMISSION_H_
#define BG3_CORE_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/metrics.h"
#include "common/op_context.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/time_source.h"

namespace bg3::core {

/// Request classes with independent concurrency limits and queues, so a
/// flood of one class cannot starve the others (reads keep serving while
/// writes are throttled, and background work never crowds out either).
enum class OpClass {
  kRead = 0,
  kWrite = 1,
  kBackground = 2,
};

inline const char* OpClassName(OpClass c) {
  switch (c) {
    case OpClass::kRead: return "read";
    case OpClass::kWrite: return "write";
    case OpClass::kBackground: return "background";
  }
  return "unknown";
}

/// Why writes are currently being shed (bitmask; 0 = not throttled).
struct ThrottleReason {
  static constexpr uint32_t kMemoryPressure = 1u << 0;  ///< resident > budget
  static constexpr uint32_t kWalBacklog = 1u << 1;      ///< WAL flush backlog
};

struct AdmissionOptions {
  /// Off by default: every op is admitted immediately and the controller
  /// only counts it — the historical behavior, and what single-threaded
  /// tests and benches get without opting in.
  bool enabled = false;

  /// Concurrent in-flight ops per class. 0 = unlimited for that class.
  size_t read_slots = 64;
  size_t write_slots = 32;
  size_t background_slots = 4;

  /// Waiters allowed per class once slots are full; arrivals beyond this
  /// are shed immediately with Overloaded (bounded queues are the whole
  /// point — an unbounded queue converts overload into latency collapse).
  size_t read_queue = 128;
  size_t write_queue = 64;
  size_t background_queue = 8;

  /// Queue waits poll at this granularity so deadlines driven by a
  /// ManualTimeSource still fire (a condition variable cannot watch a
  /// simulated clock).
  uint64_t poll_granularity_us = 1'000;

  /// Writes are throttled once resident memory exceeds this fraction of
  /// the DB memory budget (only meaningful with a budget configured;
  /// <= 0 disables the watermark).
  double memory_throttle_ratio = 0.95;

  /// A deadline'd op is shed at the door when its remaining budget is
  /// below `service_time_margin` x the class's EWMA service time — even
  /// if a slot is free. Admitting it would burn a full service time on a
  /// request that finishes past its deadline (wasted work is what turns
  /// saturation into goodput collapse; see bench_overload). The margin
  /// absorbs service-time variance: at 1.0 a marginal admit has even odds
  /// of finishing late. <= 0 disables the check.
  double service_time_margin = 2.0;

  /// Shed ops produce no service-time samples, so a pessimistic estimate
  /// could latch a class shut forever. When the service-time shed would
  /// fire but no sample has refreshed the estimate for this long, one op
  /// is admitted as a probe instead; its real sample pulls the EWMA back
  /// down. <= 0 disables probing (never needed in practice — samples are
  /// also clamped to 8x the current estimate, so poisoning takes a
  /// sustained run of outliers, not one bad scheduler preemption).
  uint64_t service_probe_interval_us = 10'000;

  /// Clock for queue-wait accounting and the service-time estimate;
  /// nullptr = wall clock. Per-op deadlines use each OpContext's own clock.
  const TimeSource* time_source = nullptr;
};

/// Per-class admission control with bounded FIFO queues — the front door
/// of the overload-protection design (DESIGN.md §5.5). Every public DB op
/// asks for a permit; when the class is saturated the op either waits in a
/// bounded queue, is shed with Overloaded (queue full, writes throttled,
/// or the predicted wait already exceeds its deadline), or times out with
/// DeadlineExceeded. Shedding at the door costs microseconds; admitting
/// work the system cannot finish costs everyone's latency.
///
/// Thread safe. Permits are RAII: destruction (or Release) frees the slot
/// and wakes the next waiter.
class AdmissionController {
 public:
  class Permit {
   public:
    Permit() = default;
    Permit(Permit&& o) noexcept { *this = std::move(o); }
    Permit& operator=(Permit&& o) noexcept {
      Release();
      ctrl_ = o.ctrl_;
      cls_ = o.cls_;
      admitted_us_ = o.admitted_us_;
      o.ctrl_ = nullptr;
      return *this;
    }
    Permit(const Permit&) = delete;
    Permit& operator=(const Permit&) = delete;
    ~Permit() { Release(); }

    /// Frees the slot early; idempotent.
    void Release();

   private:
    friend class AdmissionController;
    Permit(AdmissionController* ctrl, OpClass cls, uint64_t admitted_us)
        : ctrl_(ctrl), cls_(cls), admitted_us_(admitted_us) {}

    AdmissionController* ctrl_ = nullptr;
    OpClass cls_ = OpClass::kRead;
    uint64_t admitted_us_ = 0;
  };

  explicit AdmissionController(const AdmissionOptions& options);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Acquires a slot for `cls`, waiting in the class's bounded queue if
  /// saturated. Returns:
  ///   OK                — `*permit` holds the slot until released.
  ///   Overloaded        — shed: queue full, writes throttled, or the
  ///                       predicted queue wait exceeds the op's deadline.
  ///   DeadlineExceeded  — the op's deadline expired while queued.
  /// With the controller disabled this is a counter bump and always OK.
  BG3_BLOCKING Status Admit(OpClass cls, const OpContext* ctx, Permit* permit);

  /// Sets the write-throttle reason bitmask (ThrottleReason bits). While
  /// nonzero, kWrite ops are shed with Overloaded at the door; reads and
  /// background work are unaffected (graceful degradation: serve reads,
  /// refuse new write debt).
  void SetWriteThrottle(uint32_t reasons);
  uint32_t write_throttle_reasons() const {
    return throttle_reasons_.load(std::memory_order_relaxed);
  }

  bool enabled() const { return opts_.enabled; }

  // Registry-facing aggregates (registered by the owner under its prefix).
  const Counter& admitted() const { return admitted_; }
  const Counter& shed() const { return shed_; }
  const Counter& deadline_exceeded() const { return deadline_exceeded_; }
  /// Total ops currently waiting for a slot, across classes.
  const Gauge& queue_depth() const { return queue_depth_; }

  /// In-flight ops of one class (tests / introspection).
  size_t InFlight(OpClass cls) const;
  /// Waiters of one class.
  size_t Queued(OpClass cls) const;

 private:
  struct ClassState {
    size_t slots = 0;       ///< 0 = unlimited.
    size_t queue_cap = 0;   ///< waiters allowed beyond the slots.
    size_t inflight = 0;
    size_t waiters = 0;
    /// Exponentially weighted service-time estimate (µs), fed by permit
    /// lifetimes; drives predicted-wait shedding for deadline'd arrivals.
    double ewma_service_us = 0;
    /// When the estimate was last refreshed (sample landed or probe
    /// admitted); gates one-probe-per-interval recovery.
    uint64_t last_sample_us = 0;
    std::condition_variable cv;
  };

  void ReleaseSlot(OpClass cls, uint64_t admitted_us);
  ClassState& state(OpClass cls) { return classes_[static_cast<int>(cls)]; }
  const ClassState& state(OpClass cls) const {
    return classes_[static_cast<int>(cls)];
  }

  const AdmissionOptions opts_;
  const TimeSource* const clock_;

  mutable std::mutex mu_;
  ClassState classes_[3] BG3_GUARDED_BY(mu_);

  std::atomic<uint32_t> throttle_reasons_{0};

  Counter admitted_;
  Counter shed_;
  Counter deadline_exceeded_;
  Gauge queue_depth_;
};

}  // namespace bg3::core

#endif  // BG3_CORE_ADMISSION_H_
