#include "core/options.h"

namespace bg3::core {

Status GraphDBOptions::Validate() const {
  if (gc_min_fragmentation < 0.0 || gc_min_fragmentation > 1.0) {
    return Status::InvalidArgument("gc_min_fragmentation out of [0,1]");
  }
  if (gc_target_dead_ratio < 0.0 || gc_target_dead_ratio > 1.0) {
    return Status::InvalidArgument("gc_target_dead_ratio out of [0,1]");
  }
  if (forest.owner_shards == 0) {
    return Status::InvalidArgument("owner_shards must be > 0");
  }
  if (vertex_tree_max_leaf_entries == 0) {
    return Status::InvalidArgument("vertex_tree_max_leaf_entries must be > 0");
  }
  if (checkpoint.enabled && checkpoint.max_pages_per_cycle == 0) {
    return Status::InvalidArgument("max_pages_per_cycle must be > 0");
  }
  if (admission.enabled) {
    if (admission.memory_throttle_ratio > 1.0) {
      return Status::InvalidArgument("memory_throttle_ratio out of (0,1]");
    }
    if (admission.poll_granularity_us == 0) {
      return Status::InvalidArgument("poll_granularity_us must be > 0");
    }
  }
  return Status::OK();
}

std::unique_ptr<gc::GcPolicy> MakeGcPolicy(GcPolicyKind kind,
                                           double min_fragmentation,
                                           uint64_t ttl_bypass_window_us) {
  switch (kind) {
    case GcPolicyKind::kNone:
      return nullptr;
    case GcPolicyKind::kFifo:
      return std::make_unique<gc::FifoPolicy>();
    case GcPolicyKind::kDirtyRatio:
      return std::make_unique<gc::DirtyRatioPolicy>(min_fragmentation);
    case GcPolicyKind::kWorkloadAware:
      return std::make_unique<gc::WorkloadAwarePolicy>(min_fragmentation);
    case GcPolicyKind::kHybridTtlGradient:
      return std::make_unique<gc::HybridTtlGradientPolicy>(
          ttl_bypass_window_us, min_fragmentation);
  }
  return nullptr;
}

}  // namespace bg3::core
