#include "core/db_stats.h"

#include <sstream>

namespace bg3::core {

std::string DbStats::ToString() const {
  std::ostringstream os;
  os << "storage: total=" << storage_total_bytes
     << "B live=" << storage_live_bytes << "B appends=" << append_ops << " ("
     << append_bytes << "B) reads=" << read_ops << " (" << read_bytes
     << "B) gc_moved=" << gc_moved_bytes << "B extents_freed=" << extents_freed
     << "\nforest: trees=" << tree_count << " init_entries=" << init_entries
     << " split_outs=" << split_outs << " evictions=" << evictions
     << " latch_conflicts=" << latch_conflicts
     << " latch_acquires=" << latch_shared_acquires << "s/"
     << latch_exclusive_acquires << "x"
     << " approx_memory=" << approx_memory_bytes << "B"
     << " resident=" << resident_bytes << "B"
     << "\ngc: reclaimed=" << gc_extents_reclaimed
     << " expired=" << gc_extents_expired << " freed=" << gc_bytes_freed
     << "B";
  return os.str();
}

}  // namespace bg3::core
