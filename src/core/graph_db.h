#ifndef BG3_CORE_GRAPH_DB_H_
#define BG3_CORE_GRAPH_DB_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bwtree/bwtree.h"
#include "cloud/cloud_store.h"
#include "core/admission.h"
#include "core/db_stats.h"
#include "core/options.h"
#include "forest/forest.h"
#include "gc/extent_usage.h"
#include "gc/space_reclaimer.h"
#include "graph/engine.h"

namespace bg3::core {

/// BG3's public database facade: a property-graph engine backed by the
/// Space-Optimized Bw-tree Forest over append-only cloud storage, with
/// workload-aware space reclamation (the single-node storage engine of
/// Fig. 2; leader-follower deployment lives in bg3::replication).
///
/// One GraphDB installs itself as the CloudStore's observer for extent
/// usage tracking — create at most one GraphDB per CloudStore.
class GraphDB : public graph::GraphEngine {
 public:
  /// `store` must outlive the GraphDB. Aborts on invalid options (validate
  /// beforehand for graceful handling).
  GraphDB(cloud::CloudStore* store, const GraphDBOptions& options);
  ~GraphDB() override;

  GraphDB(const GraphDB&) = delete;
  GraphDB& operator=(const GraphDB&) = delete;

  std::string name() const override { return "BG3"; }

  // --- graph::GraphEngine ---------------------------------------------------
  // Every op passes admission control (per-class limits, bounded queues,
  // write throttling — no-ops unless options.admission.enabled) and
  // threads its OpContext deadline down through forest/tree/cloud I/O.
  Status AddVertex(graph::VertexId id, const Slice& properties,
                   const OpContext* ctx = nullptr) override;
  Result<std::string> GetVertex(graph::VertexId id,
                                const OpContext* ctx = nullptr) override;
  Status DeleteVertex(graph::VertexId id, graph::EdgeType type,
                      const OpContext* ctx = nullptr) override;
  Status AddEdge(graph::VertexId src, graph::EdgeType type,
                 graph::VertexId dst, const Slice& properties,
                 graph::TimestampUs created_us,
                 const OpContext* ctx = nullptr) override;
  Status DeleteEdge(graph::VertexId src, graph::EdgeType type,
                    graph::VertexId dst,
                    const OpContext* ctx = nullptr) override;
  Result<std::string> GetEdge(graph::VertexId src, graph::EdgeType type,
                              graph::VertexId dst,
                              const OpContext* ctx = nullptr) override;
  Status GetNeighbors(graph::VertexId src, graph::EdgeType type, size_t limit,
                      std::vector<graph::Neighbor>* out,
                      const OpContext* ctx = nullptr) override;

  // --- maintenance -----------------------------------------------------------
  /// One space-reclamation cycle over the base and delta streams. Call
  /// periodically (or use StartMaintenance; the benches call it explicitly
  /// for determinism).
  Status RunGcCycle();

  /// Starts a background thread running RunGcCycle every `interval_ms`.
  /// Idempotent; stopped automatically at destruction.
  void StartMaintenance(uint64_t interval_ms);
  /// Stops the background maintenance thread (blocks until joined).
  void StopMaintenance();

  DbStats Stats() const;

  /// Structured dump of the process-wide metrics registry (counters, gauges,
  /// per-layer latency histograms) as JSON. The forest/GC internals of this
  /// instance appear under its `bg3.db<N>.` prefix; see metrics_prefix().
  std::string DumpMetrics(int indent = 2) const;

  /// Per-instance metric-name prefix this DB registered its forest and GC
  /// stats under (`bg3.db<N>.`).
  const std::string& metrics_prefix() const { return metrics_prefix_; }

  /// Front-door admission controller (see AdmissionOptions). Exposed so
  /// replication facades and tests can share / inspect it.
  AdmissionController& admission() { return admission_; }

  /// Re-evaluates the graceful-degradation watermarks (currently: resident
  /// memory vs. budget) and updates the write throttle. Runs inline every
  /// few hundred writes and on each RunGcCycle; cheap enough for both.
  void RefreshOverloadState();

  forest::BwTreeForest* forest() { return forest_.get(); }
  bwtree::BwTree* vertex_tree() { return vertex_tree_.get(); }
  cloud::CloudStore* store() { return store_; }
  gc::SpaceReclaimer* reclaimer() { return reclaimer_.get(); }
  const GraphDBOptions& options() const { return opts_; }
  uint64_t NowUs() const { return time_source_->NowUs(); }

 private:
  class ResolverImpl : public gc::TreeResolver {
   public:
    explicit ResolverImpl(GraphDB* db) : db_(db) {}
    bwtree::BwTree* Resolve(bwtree::TreeId id) override;

   private:
    GraphDB* const db_;
  };

  static constexpr bwtree::TreeId kVertexTreeId = 1ull << 62;

  bool EdgeExpired(graph::TimestampUs created_us) const;
  /// Boundary validation + admission for one public op; on success the
  /// permit holds the op's concurrency slot until it returns.
  Status AdmitOp(OpClass cls, const OpContext* ctx,
                 AdmissionController::Permit* permit);

  cloud::CloudStore* const store_;
  const GraphDBOptions opts_;
  std::string metrics_prefix_;
  cloud::WallTimeSource wall_time_;
  const cloud::TimeSource* time_source_;

  cloud::StreamId base_stream_ = 0;
  cloud::StreamId delta_stream_ = 0;

  /// Process-wide LRU clock shared by the vertex tree and every forest tree
  /// (via BwTreeOptions::tick_source), so the memory budget can rank leaf
  /// coldness across all of them with comparable ticks.
  mutable std::atomic<uint64_t> access_tick_{0};

  std::unique_ptr<gc::ExtentUsageTracker> tracker_;
  std::unique_ptr<bwtree::BwTree> vertex_tree_;
  std::unique_ptr<forest::BwTreeForest> forest_;
  std::unique_ptr<ResolverImpl> resolver_;
  std::unique_ptr<gc::GcPolicy> gc_policy_;
  std::unique_ptr<gc::SpaceReclaimer> reclaimer_;

  AdmissionController admission_;
  /// Writes since the last watermark refresh (RefreshOverloadState cadence).
  std::atomic<uint64_t> writes_since_refresh_{0};

  std::mutex maint_mu_;
  std::condition_variable maint_cv_;
  bool maint_stop_ = false;
  std::thread maint_thread_;
};

}  // namespace bg3::core

#endif  // BG3_CORE_GRAPH_DB_H_
