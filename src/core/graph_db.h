#ifndef BG3_CORE_GRAPH_DB_H_
#define BG3_CORE_GRAPH_DB_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bwtree/bwtree.h"
#include "cloud/cloud_store.h"
#include "core/admission.h"
#include "core/db_stats.h"
#include "core/options.h"
#include "forest/forest.h"
#include "gc/extent_usage.h"
#include "gc/space_reclaimer.h"
#include "graph/engine.h"
#include "replication/checkpoint.h"
#include "replication/page_image.h"

namespace bg3::core {

/// BG3's public database facade: a property-graph engine backed by the
/// Space-Optimized Bw-tree Forest over append-only cloud storage, with
/// workload-aware space reclamation (the single-node storage engine of
/// Fig. 2; leader-follower deployment lives in bg3::replication).
///
/// One GraphDB installs itself as the CloudStore's observer for extent
/// usage tracking — create at most one GraphDB per CloudStore.
class GraphDB : public graph::GraphEngine {
 public:
  /// `store` must outlive the GraphDB. Aborts on invalid options (validate
  /// beforehand for graceful handling).
  GraphDB(cloud::CloudStore* store, const GraphDBOptions& options);
  ~GraphDB() override;

  GraphDB(const GraphDB&) = delete;
  GraphDB& operator=(const GraphDB&) = delete;

  std::string name() const override { return "BG3"; }

  // --- graph::GraphEngine ---------------------------------------------------
  // Every op passes admission control (per-class limits, bounded queues,
  // write throttling — no-ops unless options.admission.enabled) and
  // threads its OpContext deadline down through forest/tree/cloud I/O.
  Status AddVertex(graph::VertexId id, const Slice& properties,
                   const OpContext* ctx = nullptr) override;
  Result<std::string> GetVertex(graph::VertexId id,
                                const OpContext* ctx = nullptr) override;
  Status DeleteVertex(graph::VertexId id, graph::EdgeType type,
                      const OpContext* ctx = nullptr) override;
  Status AddEdge(graph::VertexId src, graph::EdgeType type,
                 graph::VertexId dst, const Slice& properties,
                 graph::TimestampUs created_us,
                 const OpContext* ctx = nullptr) override;
  Status DeleteEdge(graph::VertexId src, graph::EdgeType type,
                    graph::VertexId dst,
                    const OpContext* ctx = nullptr) override;
  Result<std::string> GetEdge(graph::VertexId src, graph::EdgeType type,
                              graph::VertexId dst,
                              const OpContext* ctx = nullptr) override;
  Status GetNeighbors(graph::VertexId src, graph::EdgeType type, size_t limit,
                      std::vector<graph::Neighbor>* out,
                      const OpContext* ctx = nullptr) override;

  // --- maintenance -----------------------------------------------------------
  /// One space-reclamation cycle over the base and delta streams. Call
  /// periodically (or use StartMaintenance; the benches call it explicitly
  /// for determinism).
  Status RunGcCycle();

  /// Starts a background thread running RunGcCycle every `interval_ms`.
  /// Idempotent; stopped automatically at destruction.
  void StartMaintenance(uint64_t interval_ms);
  /// Stops the background maintenance thread (blocks until joined).
  void StopMaintenance();

  // --- continuous fuzzy checkpointing (DESIGN.md §5.7) ----------------------
  // Only meaningful with options.checkpoint.enabled: trees run deferred
  // flushing, and these entry points drive the incremental checkpoint state
  // machine (begin cut -> bounded flush rounds -> manifest publish).

  /// One bounded increment: begins a cut (snapshotting every tree's dirty
  /// pages), flushes the next page round, or publishes the "db"-scope
  /// manifest once the cut drains. Deterministic test entry point; also
  /// what each background checkpoint tick runs. An I/O failure abandons
  /// the increment but keeps the cut open for retry.
  Status CheckpointCycle();
  /// Drives the current (or a fresh) cut to a durable manifest.
  Status CheckpointNow();

  /// Starts/stops the decoupled checkpoint thread (cadence from
  /// options.checkpoint.interval_ms; also drains the restore warm queue).
  /// Idempotent; stopped automatically at destruction.
  void StartCheckpointing();
  void StopCheckpointing();

  /// Warms up to `max` pages off the restore-priority queue (demand reads
  /// warm their own pages concurrently); returns how many queue entries
  /// remain. 0 = restore fully materialized.
  Result<size_t> WarmRestoredPages(size_t max);

  /// True when construction found a usable "db" checkpoint manifest and
  /// restored the engine from it.
  bool RestoredFromCheckpoint() const { return restored_from_checkpoint_; }
  /// True when the head manifest slot was torn and the previous epoch's
  /// slot was restored instead.
  bool CheckpointFellBack() const { return checkpoint_fell_back_; }
  /// Epoch of the newest durable manifest (published or restored).
  uint64_t checkpoint_epoch() const;

  uint64_t checkpoint_pages_flushed() const {
    return ckpt_pages_flushed_.Get();
  }
  uint64_t checkpoint_manifests_written() const {
    return ckpt_manifests_written_.Get();
  }
  /// Storage bytes fetched rematerializing restored pages (warm sweep +
  /// nothing else; demand-read fills count through the store's read stats).
  uint64_t checkpoint_replay_bytes() const {
    return ckpt_replay_bytes_.Get();
  }

  /// Checkpoint-manifest scope of GraphDB-level checkpoints.
  static constexpr const char* kCheckpointScope = "db";

  DbStats Stats() const;

  /// Structured dump of the process-wide metrics registry (counters, gauges,
  /// per-layer latency histograms) as JSON. The forest/GC internals of this
  /// instance appear under its `bg3.db<N>.` prefix; see metrics_prefix().
  std::string DumpMetrics(int indent = 2) const;

  /// Per-instance metric-name prefix this DB registered its forest and GC
  /// stats under (`bg3.db<N>.`).
  const std::string& metrics_prefix() const { return metrics_prefix_; }

  /// Front-door admission controller (see AdmissionOptions). Exposed so
  /// replication facades and tests can share / inspect it.
  AdmissionController& admission() { return admission_; }

  /// Re-evaluates the graceful-degradation watermarks (resident memory vs.
  /// budget, plus the WAL commit backlog when a probe is installed) and
  /// updates the write throttle. Runs inline every few hundred writes and
  /// on each RunGcCycle; cheap enough for both.
  void RefreshOverloadState();

  /// Installs the WAL commit-backlog input of the write throttle: `probe`
  /// returns the records enqueued to the WAL but not yet durably
  /// acknowledged (WalWriter::BufferedRecords — under the pipelined writer
  /// this counts batches riding their cloud round trip, not just failed
  /// appends). While the probe reads at or above `watermark`,
  /// RefreshOverloadState raises ThrottleReason::kWalBacklog and kWrite ops
  /// shed at the door; it clears once the pipeline drains below. A null
  /// probe or watermark 0 removes the input (and clears the bit at the
  /// next refresh). The probe must be thread safe and outlive the DB.
  void SetWalBacklogProbe(std::function<size_t()> probe, size_t watermark);

  /// Port of the in-process debug HTTP server (options.debug_server), 0
  /// when disabled or the bind failed. With port 0 in the options this is
  /// the ephemeral port the kernel assigned.
  uint16_t debug_server_port() const { return debug_server_.port(); }
  DebugServer& debug_server() { return debug_server_; }

  forest::BwTreeForest* forest() { return forest_.get(); }
  bwtree::BwTree* vertex_tree() { return vertex_tree_.get(); }
  cloud::CloudStore* store() { return store_; }
  gc::SpaceReclaimer* reclaimer() { return reclaimer_.get(); }
  const GraphDBOptions& options() const { return opts_; }
  uint64_t NowUs() const { return time_source_->NowUs(); }

 private:
  class ResolverImpl : public gc::TreeResolver {
   public:
    explicit ResolverImpl(GraphDB* db) : db_(db) {}
    bwtree::BwTree* Resolve(bwtree::TreeId id) override;

   private:
    GraphDB* const db_;
  };

  static constexpr bwtree::TreeId kVertexTreeId = 1ull << 62;

  /// Stages page images while checkpointing is enabled. Publication is
  /// deferred to the cycle (children before parents, like the RW node's
  /// group flush) so a crash mid-cycle can never leave a child-image hole
  /// inside a published parent range.
  class ImageListener : public bwtree::TreeListener {
   public:
    explicit ImageListener(GraphDB* db) : db_(db) {}
    void OnTreeInit(bwtree::TreeId, bwtree::PageId) override {}
    void OnMutation(bwtree::TreeId, bwtree::PageId, bwtree::Lsn,
                    const bwtree::DeltaEntry&) override {}
    void OnSplit(bwtree::TreeId, bwtree::PageId, bwtree::PageId, bwtree::Lsn,
                 const std::string&) override {}
    void OnPageFlushed(bwtree::TreeId tree, bwtree::PageId page,
                       bwtree::Lsn flushed_lsn,
                       const cloud::PagePointer& base_ptr,
                       const std::vector<cloud::PagePointer>& delta_ptrs,
                       const std::string& low_key, const std::string& high_key,
                       bool has_high_key) override;

   private:
    GraphDB* const db_;
  };

  struct StagedImage {
    bwtree::TreeId tree = 0;
    bwtree::PageId page = bwtree::kInvalidPage;
    replication::PageImageMeta meta;
  };

  struct CheckpointCut {
    bool active = false;
    /// Dirty snapshot across every tree at cut begin, drained in order.
    std::vector<std::pair<bwtree::TreeId, bwtree::PageId>> pending;
    size_t next = 0;
  };

  /// Loads every published page image of `tree` as a demand-paged
  /// (non-resident) recovered layout; empty if any image is unusable (the
  /// caller falls back to a fresh tree).
  std::vector<bwtree::RecoveredPage> LoadTreeImages(bwtree::TreeId tree);
  /// Restores forest/vertex state from `manifest`; called from the ctor.
  void RestoreFromManifest(const replication::CheckpointManifest& manifest);
  /// Publishes staged images, children (larger ids) first, deduped.
  void PublishStagedImages();
  Status CheckpointCycleLocked();

  bool EdgeExpired(graph::TimestampUs created_us) const;
  /// Boundary validation + admission for one public op; on success the
  /// permit holds the op's concurrency slot until it returns.
  Status AdmitOp(OpClass cls, const OpContext* ctx,
                 AdmissionController::Permit* permit);

  cloud::CloudStore* const store_;
  const GraphDBOptions opts_;
  std::string metrics_prefix_;
  cloud::WallTimeSource wall_time_;
  const cloud::TimeSource* time_source_;

  cloud::StreamId base_stream_ = 0;
  cloud::StreamId delta_stream_ = 0;

  /// Process-wide LRU clock shared by the vertex tree and every forest tree
  /// (via BwTreeOptions::tick_source), so the memory budget can rank leaf
  /// coldness across all of them with comparable ticks.
  mutable std::atomic<uint64_t> access_tick_{0};

  std::unique_ptr<gc::ExtentUsageTracker> tracker_;
  std::unique_ptr<bwtree::BwTree> vertex_tree_;
  std::unique_ptr<forest::BwTreeForest> forest_;
  std::unique_ptr<ResolverImpl> resolver_;
  std::unique_ptr<gc::GcPolicy> gc_policy_;
  std::unique_ptr<gc::SpaceReclaimer> reclaimer_;

  AdmissionController admission_;
  /// Writes since the last watermark refresh (RefreshOverloadState cadence).
  std::atomic<uint64_t> writes_since_refresh_{0};

  /// WAL commit-backlog throttle input (SetWalBacklogProbe); the mutex only
  /// orders install against refresh — the probe itself is thread safe.
  mutable std::mutex wal_probe_mu_;
  std::function<size_t()> wal_backlog_probe_;
  size_t wal_backlog_watermark_ = 0;

  /// Debug/observability HTTP endpoint (started in the ctor when
  /// options.debug_server.enabled; stopped before teardown).
  DebugServer debug_server_;

  std::mutex maint_mu_;
  std::condition_variable maint_cv_;
  bool maint_stop_ = false;
  std::thread maint_thread_;

  // --- checkpoint state (options.checkpoint.enabled) ------------------------

  ImageListener image_listener_{this};
  /// LSN source of the vertex tree; restored past the checkpoint LSN so
  /// post-restore mutations keep flushed_lsn <= last_lsn per page.
  std::atomic<bwtree::Lsn> vertex_lsn_{0};

  /// Serializes checkpoint cycles; plain std::mutex (like maint_mu_) — it
  /// never nests inside ranked locks.
  mutable std::mutex ckpt_mu_;
  CheckpointCut ckpt_cut_;   // guarded by ckpt_mu_
  uint64_t ckpt_epoch_ = 0;  // guarded by ckpt_mu_

  /// Images staged by OnPageFlushed (called under the flushing leaf's
  /// latch) awaiting ordered publication by the cycle.
  std::mutex staged_mu_;
  std::vector<StagedImage> ckpt_staged_;
  std::unordered_map<bwtree::TreeId, bwtree::Lsn> ckpt_tree_lsn_;

  /// Restore-priority queue: every non-resident page installed at restore,
  /// drained by WarmRestoredPages (background thread or tests).
  std::mutex warm_mu_;
  std::vector<std::pair<bwtree::TreeId, bwtree::PageId>> warm_queue_;
  size_t warm_next_ = 0;

  bool restored_from_checkpoint_ = false;
  bool checkpoint_fell_back_ = false;

  LightCounter ckpt_pages_flushed_;
  LightCounter ckpt_manifests_written_;
  LightCounter ckpt_replay_bytes_;

  std::mutex ckpt_thread_mu_;
  std::condition_variable ckpt_thread_cv_;
  bool ckpt_stop_ = false;
  std::thread ckpt_thread_;
};

}  // namespace bg3::core

#endif  // BG3_CORE_GRAPH_DB_H_
