#ifndef BG3_CORE_DB_STATS_H_
#define BG3_CORE_DB_STATS_H_

#include <cstdint>
#include <string>

namespace bg3::core {

/// Point-in-time snapshot of a GraphDB's internals, for bench reporting and
/// the storage-cost comparison of §4.2.
struct DbStats {
  // storage
  uint64_t storage_total_bytes = 0;
  uint64_t storage_live_bytes = 0;
  uint64_t append_ops = 0;
  uint64_t append_bytes = 0;
  uint64_t read_ops = 0;
  uint64_t read_bytes = 0;
  uint64_t gc_moved_bytes = 0;
  uint64_t extents_freed = 0;

  // forest
  uint64_t tree_count = 0;
  uint64_t init_entries = 0;
  uint64_t split_outs = 0;
  uint64_t evictions = 0;
  /// Leaf-latch contention (shared + exclusive conflicts) across the forest.
  uint64_t latch_conflicts = 0;
  uint64_t latch_shared_acquires = 0;
  uint64_t latch_exclusive_acquires = 0;
  uint64_t approx_memory_bytes = 0;
  /// Resident leaf payload bytes across every tree (the forest-wide
  /// buffer-pool occupancy the memory budget acts on).
  uint64_t resident_bytes = 0;

  // gc
  uint64_t gc_extents_reclaimed = 0;
  uint64_t gc_extents_expired = 0;
  uint64_t gc_bytes_freed = 0;

  std::string ToString() const;
};

}  // namespace bg3::core

#endif  // BG3_CORE_DB_STATS_H_
