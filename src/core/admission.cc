#include "core/admission.h"

#include <algorithm>
#include <chrono>

namespace bg3::core {

namespace {

std::string ThrottleReasonString(uint32_t reasons) {
  std::string s;
  if (reasons & ThrottleReason::kMemoryPressure) s += "memory-pressure";
  if (reasons & ThrottleReason::kWalBacklog) {
    if (!s.empty()) s += "+";
    s += "wal-backlog";
  }
  return s.empty() ? "unknown" : s;
}

}  // namespace

void AdmissionController::Permit::Release() {
  if (ctrl_ == nullptr) return;
  ctrl_->ReleaseSlot(cls_, admitted_us_);
  ctrl_ = nullptr;
}

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : opts_(options),
      clock_(options.time_source != nullptr ? options.time_source
                                            : DefaultWallTimeSource()) {
  state(OpClass::kRead).slots = opts_.read_slots;
  state(OpClass::kRead).queue_cap = opts_.read_queue;
  state(OpClass::kWrite).slots = opts_.write_slots;
  state(OpClass::kWrite).queue_cap = opts_.write_queue;
  state(OpClass::kBackground).slots = opts_.background_slots;
  state(OpClass::kBackground).queue_cap = opts_.background_queue;
}

Status AdmissionController::Admit(OpClass cls, const OpContext* ctx,
                                  Permit* permit) {
  if (!opts_.enabled) {
    admitted_.Inc();
    return Status::OK();
  }
  OpStats* sink = ctx != nullptr ? ctx->stats : nullptr;
  // Writes shed at the door while a degradation watermark holds: admitting
  // them would grow exactly the backlog the watermark protects (reads and
  // background catch-up work pass — they drain pressure, not add it).
  if (cls == OpClass::kWrite) {
    const uint32_t reasons = throttle_reasons_.load(std::memory_order_acquire);
    if (reasons != 0) {
      shed_.Inc();
      OpStats::RecordShed(sink, reasons);
      return Status::Overloaded("writes throttled: " +
                                ThrottleReasonString(reasons));
    }
  }

  std::unique_lock<std::mutex> lock(mu_);
  ClassState& cs = state(cls);
  // Don't start work predicted to die mid-service: once the remaining
  // budget is under margin x the EWMA service time, completing within the
  // deadline is unlikely and the full service cost would be wasted.
  if (ctx != nullptr && ctx->has_deadline() && cs.ewma_service_us > 0 &&
      opts_.service_time_margin > 0 &&
      static_cast<double>(ctx->RemainingUs()) <
          opts_.service_time_margin * cs.ewma_service_us) {
    // Shed ops produce no samples, so a pessimistic estimate would latch
    // the class shut. If nothing has refreshed it recently, admit this op
    // as a probe instead; otherwise shed.
    const uint64_t now = clock_->NowUs();
    const bool probe = opts_.service_probe_interval_us > 0 &&
                       now >= cs.last_sample_us &&
                       now - cs.last_sample_us >=
                           opts_.service_probe_interval_us;
    if (probe) {
      cs.last_sample_us = now;  // one probe per interval
    } else {
      shed_.Inc();
      OpStats::RecordShed(sink, 0);
      return Status::Overloaded(std::string("predicted service time (") +
                                OpClassName(cls) + ") exceeds deadline");
    }
  }
  if (cs.slots == 0 || cs.inflight < cs.slots) {
    ++cs.inflight;
    admitted_.Inc();
    *permit = Permit(this, cls, clock_->NowUs());
    return Status::OK();
  }
  if (cs.waiters >= cs.queue_cap) {
    shed_.Inc();
    OpStats::RecordShed(sink, 0);
    return Status::Overloaded(std::string("admission queue full (") +
                              OpClassName(cls) + ")");
  }
  // Don't queue work that cannot finish: if the backlog ahead of this op
  // already predicts a wait past its deadline, shedding now is strictly
  // better than making it (and everyone behind it) discover that later.
  if (ctx != nullptr && ctx->has_deadline() && cs.ewma_service_us > 0) {
    const double batches =
        static_cast<double>(cs.waiters + 1) / static_cast<double>(cs.slots);
    const uint64_t predicted_wait_us =
        static_cast<uint64_t>(batches * cs.ewma_service_us);
    if (ctx->RemainingUs() < predicted_wait_us) {
      shed_.Inc();
      OpStats::RecordShed(sink, 0);
      return Status::Overloaded(std::string("predicted admission wait (") +
                                OpClassName(cls) + ") exceeds deadline");
    }
  }

  ++cs.waiters;
  queue_depth_.Add(1);
  const uint64_t wait_start_us = clock_->NowUs();
  // Polling waits (rather than one long cv wait) so a deadline on a
  // ManualTimeSource is still honored: a condition variable can only watch
  // the wall clock.
  const auto slice = std::chrono::microseconds(
      std::max<uint64_t>(opts_.poll_granularity_us, 100));
  Status result = Status::OK();
  for (;;) {
    if (cs.slots == 0 || cs.inflight < cs.slots) break;
    if (ctx != nullptr && ctx->Expired()) {
      deadline_exceeded_.Inc();
      result = Status::DeadlineExceeded(
          std::string("deadline expired in admission queue (") +
          OpClassName(cls) + ")");
      break;
    }
    cs.cv.wait_for(lock, slice);
  }
  --cs.waiters;
  queue_depth_.Sub(1);
  // Queue residency is billed whether or not admission ultimately
  // succeeded — a deadline death after waiting is exactly the case the
  // per-request account should explain.
  const uint64_t wait_end_us = clock_->NowUs();
  if (wait_end_us > wait_start_us) {
    OpStats::RecordQueueWait(sink, wait_end_us - wait_start_us);
  }
  if (!result.ok()) return result;
  ++cs.inflight;
  admitted_.Inc();
  *permit = Permit(this, cls, clock_->NowUs());
  return Status::OK();
}

void AdmissionController::ReleaseSlot(OpClass cls, uint64_t admitted_us) {
  std::lock_guard<std::mutex> lock(mu_);
  ClassState& cs = state(cls);
  if (cs.inflight > 0) --cs.inflight;
  const uint64_t now = clock_->NowUs();
  double service =
      static_cast<double>(now > admitted_us ? now - admitted_us : 0);
  // Clamp the sample so one outlier (a scheduler preemption mid-op, a
  // cold page) cannot poison the estimate: raising it takes a sustained
  // run of slow completions, which is the signal we actually want.
  if (cs.ewma_service_us > 0) {
    service = std::min(service, 8.0 * cs.ewma_service_us);
  }
  cs.ewma_service_us = cs.ewma_service_us == 0
                           ? service
                           : 0.8 * cs.ewma_service_us + 0.2 * service;
  cs.last_sample_us = now;
  cs.cv.notify_one();
}

void AdmissionController::SetWriteThrottle(uint32_t reasons) {
  throttle_reasons_.store(reasons, std::memory_order_release);
}

size_t AdmissionController::InFlight(OpClass cls) const {
  std::lock_guard<std::mutex> lock(mu_);
  return state(cls).inflight;
}

size_t AdmissionController::Queued(OpClass cls) const {
  std::lock_guard<std::mutex> lock(mu_);
  return state(cls).waiters;
}

}  // namespace bg3::core
