#include "forest/forest.h"

#include <algorithm>

#include "common/coding.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/timed_scope.h"

namespace bg3::forest {

namespace {

void AppendBigEndian64(std::string* dst, uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    dst->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

}  // namespace

std::string BwTreeForest::MakeInitKey(OwnerId owner, const Slice& sort_key) {
  std::string key;
  key.reserve(8 + sort_key.size());
  AppendBigEndian64(&key, owner);
  key.append(sort_key.data(), sort_key.size());
  return key;
}

std::string BwTreeForest::OwnerPrefix(OwnerId owner) {
  std::string key;
  AppendBigEndian64(&key, owner);
  return key;
}

BwTreeForest::BwTreeForest(cloud::CloudStore* store,
                           const ForestOptions& options)
    : store_(store), opts_(options) {
  registry_mu_.SetRank(lock_rank::kBwTreeForest_registry_mu,
                       "BwTreeForest::registry_mu_");
  evict_mu_.SetRank(lock_rank::kBwTreeForest_evict_mu,
                    "BwTreeForest::evict_mu_");
  BG3_CHECK_GT(opts_.owner_shards, 0u);
  shards_.reserve(opts_.owner_shards);
  for (size_t i = 0; i < opts_.owner_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  init_tree_ = std::make_unique<bwtree::BwTree>(
      store_, MakeTreeOptions(0, opts_.bootstrap_init));
  MutexLock lock(&registry_mu_);
  registry_[0] = init_tree_.get();
}

bwtree::BwTreeOptions BwTreeForest::MakeTreeOptions(bwtree::TreeId id,
                                                    bool bootstrap) const {
  bwtree::BwTreeOptions o = opts_.tree_options;
  o.tree_id = id;
  o.bootstrap = bootstrap;
  if (o.lsn_source == nullptr) {
    o.lsn_source = const_cast<std::atomic<bwtree::Lsn>*>(&lsn_source_);
  }
  if (o.page_id_source == nullptr) {
    o.page_id_source =
        const_cast<std::atomic<bwtree::PageId>*>(&page_id_source_);
  }
  if (o.tick_source == nullptr) {
    o.tick_source = &tick_source_;
  }
  return o;
}

std::shared_ptr<BwTreeForest::OwnerState> BwTreeForest::GetOrCreateState(
    OwnerId owner) {
  Shard& shard = *shards_[Mix64(owner) % shards_.size()];
  MutexLock lock(&shard.mu);
  auto& slot = shard.owners[owner];
  if (!slot) slot = std::make_shared<OwnerState>();
  return slot;
}

std::shared_ptr<BwTreeForest::OwnerState> BwTreeForest::FindState(
    OwnerId owner) const {
  const Shard& shard = *shards_[Mix64(owner) % shards_.size()];
  MutexLock lock(&shard.mu);
  auto it = shard.owners.find(owner);
  return it == shard.owners.end() ? nullptr : it->second;
}

Status BwTreeForest::Upsert(OwnerId owner, const Slice& sort_key,
                            const Slice& value, const OpContext* ctx) {
  BG3_TIMED_SCOPE("bg3.forest.upsert_ns");
  OpLayerScope forest_layer(OpLayer::kForest);
  auto owned = GetOrCreateState(owner);
  OwnerState* state = owned.get();
  bool check_init_capacity = false;
  {
    MutexLock lock(&state->mu);
    if (state->tree != nullptr) {
      BG3_RETURN_IF_ERROR(state->tree->Upsert(sort_key, value, ctx));
      state->count.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
    BG3_RETURN_IF_ERROR(
        init_tree_->Upsert(MakeInitKey(owner, sort_key), value, ctx));
    state->count.fetch_add(1, std::memory_order_relaxed);
    init_entries_.fetch_add(1, std::memory_order_relaxed);
    if (opts_.split_out_threshold == 0 ||
        state->count.load(std::memory_order_relaxed) >
            opts_.split_out_threshold) {
      BG3_RETURN_IF_ERROR(SplitOutLocked(owner, state, &stats_.split_outs));
    }
    check_init_capacity =
        init_entries_.load(std::memory_order_relaxed) > opts_.init_tree_capacity;
  }
  if (check_init_capacity) MaybeEvictFromInit();
  return Status::OK();
}

Status BwTreeForest::Delete(OwnerId owner, const Slice& sort_key,
                            const OpContext* ctx) {
  auto owned = GetOrCreateState(owner);
  OwnerState* state = owned.get();
  MutexLock lock(&state->mu);
  if (state->tree != nullptr) {
    BG3_RETURN_IF_ERROR(state->tree->Delete(sort_key, ctx));
  } else {
    BG3_RETURN_IF_ERROR(
        init_tree_->Delete(MakeInitKey(owner, sort_key), ctx));
    if (init_entries_.load(std::memory_order_relaxed) > 0) {
      init_entries_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  // count is only mutated under state->mu, so load/store here cannot race
  // with another writer of the same owner.
  if (state->count.load(std::memory_order_relaxed) > 0) {
    state->count.fetch_sub(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Result<std::string> BwTreeForest::Get(OwnerId owner, const Slice& sort_key,
                                      const OpContext* ctx) {
  BG3_TIMED_SCOPE("bg3.forest.lookup_ns");
  OpLayerScope forest_layer(OpLayer::kForest);
  auto owned = FindState(owner);
  if (owned == nullptr) return Status::NotFound("unknown owner");
  OwnerState* state = owned.get();
  // Dedicated owners are read without the owner mutex: the tree pointer is
  // published once and never cleared, and the Bw-tree's own shared leaf
  // latches carry the read. This is what lets N readers of one hot owner
  // scale instead of convoying on `mu`.
  if (bwtree::BwTree* tree = state->published.load(std::memory_order_acquire)) {
    return tree->Get(sort_key, ctx);
  }
  MutexLock lock(&state->mu);
  if (state->tree != nullptr) return state->tree->Get(sort_key, ctx);
  return init_tree_->Get(MakeInitKey(owner, sort_key), ctx);
}

Status BwTreeForest::ScanOwner(OwnerId owner, const Slice& start_sort_key,
                               size_t limit, std::vector<bwtree::Entry>* out,
                               const OpContext* ctx) {
  BG3_TIMED_SCOPE("bg3.forest.scan_ns");
  OpLayerScope forest_layer(OpLayer::kForest);
  auto owned = FindState(owner);
  if (owned == nullptr) return Status::OK();  // no entries yet
  OwnerState* state = owned.get();
  // Same lock-free dedicated-owner fast path as Get.
  if (bwtree::BwTree* tree = state->published.load(std::memory_order_acquire)) {
    bwtree::BwTree::ScanOptions scan;
    scan.start_key = start_sort_key.ToString();
    scan.limit = limit;
    return tree->Scan(scan, out, ctx);
  }
  MutexLock lock(&state->mu);
  if (state->tree != nullptr) {
    bwtree::BwTree::ScanOptions scan;
    scan.start_key = start_sort_key.ToString();
    scan.limit = limit;
    return state->tree->Scan(scan, out, ctx);
  }
  // INIT-resident: prefix scan [owner|start, owner+1) and strip the prefix.
  bwtree::BwTree::ScanOptions scan;
  scan.start_key = MakeInitKey(owner, start_sort_key);
  scan.end_key = owner == ~0ull ? std::string() : OwnerPrefix(owner + 1);
  scan.limit = limit;
  std::vector<bwtree::Entry> raw;
  BG3_RETURN_IF_ERROR(init_tree_->Scan(scan, &raw, ctx));
  out->reserve(out->size() + raw.size());
  for (auto& e : raw) {
    out->push_back(bwtree::Entry{e.key.substr(8), std::move(e.value)});
  }
  return Status::OK();
}

size_t BwTreeForest::OwnerEntryCount(OwnerId owner) const {
  auto state = FindState(owner);
  if (state == nullptr) return 0;
  return state->count.load(std::memory_order_relaxed);
}

Status BwTreeForest::DedicateOwner(OwnerId owner) {
  auto owned = GetOrCreateState(owner);
  OwnerState* state = owned.get();
  MutexLock lock(&state->mu);
  if (state->tree != nullptr) return Status::OK();
  return SplitOutLocked(owner, state, &stats_.split_outs);
}

Status BwTreeForest::SplitOutLocked(OwnerId owner, OwnerState* state,
                                    LightCounter* reason) {
  BG3_TIMED_SCOPE("bg3.forest.split_out_ns");
  OpLayerScope forest_layer(OpLayer::kForest);
  BG3_CHECK(state->tree == nullptr);
  const bwtree::TreeId id =
      next_tree_id_.fetch_add(1, std::memory_order_relaxed);
  auto tree = std::make_unique<bwtree::BwTree>(store_, MakeTreeOptions(id));

  // Move the owner's INIT entries into the dedicated tree with shortened
  // keys. If any upsert fails (storage trouble the tree's own retry budget
  // could not absorb), the unregistered tree is simply abandoned: INIT is
  // untouched, the owner stays INIT-resident, and the orphan records the
  // aborted tree may have flushed are dropped by GC's orphan path.
  bwtree::BwTree::ScanOptions scan;
  scan.start_key = OwnerPrefix(owner);
  scan.end_key = owner == ~0ull ? std::string() : OwnerPrefix(owner + 1);
  std::vector<bwtree::Entry> entries;
  BG3_RETURN_IF_ERROR(init_tree_->Scan(scan, &entries));
  for (const auto& e : entries) {
    BG3_RETURN_IF_ERROR(tree->Upsert(e.key.substr(8), e.value));
  }

  // Publish the fully populated tree *before* deleting the INIT copies, so
  // a delete failure below cannot lose data: reads already route to the
  // dedicated tree, and any INIT leftovers are shadowed dead weight.
  {
    MutexLock lock(&registry_mu_);
    registry_[id] = tree.get();
  }
  state->tree = std::move(tree);
  // Publish after `tree` is fully populated and installed: from this store
  // on, readers route to the dedicated tree without taking `mu` (acquire
  // loads pair with this release), and the eviction scan keys off the
  // pointer instead of touching `tree` unlatched.
  state->published.store(state->tree.get(), std::memory_order_release);
  reason->Inc();

  Status delete_status;
  size_t deleted = 0;
  for (const auto& e : entries) {
    delete_status = init_tree_->Delete(e.key);
    if (!delete_status.ok()) break;
    ++deleted;
  }
  size_t cur = init_entries_.load(std::memory_order_relaxed);
  while (!init_entries_.compare_exchange_weak(
      cur, cur >= deleted ? cur - deleted : 0, std::memory_order_relaxed)) {
  }
  BG3_RETURN_IF_ERROR(delete_status);

  // Split-out boundary invariants: the owner's INIT prefix must now be
  // empty (every entry moved, none left behind) and the registry must
  // resolve the freshly minted tree id.
  if (BG3_DCHECK_IS_ON()) {
    std::vector<bwtree::Entry> leftover;
    bwtree::BwTree::ScanOptions verify = scan;
    verify.limit = 1;
    BG3_CHECK(init_tree_->Scan(verify, &leftover).ok());
    BG3_DCHECK_EQ(leftover.size(), 0u);
    BG3_DCHECK(ResolveTree(id) == state->tree.get());
  }
  return Status::OK();
}

void BwTreeForest::MaybeEvictFromInit() {
  MutexLock evict_lock(&evict_mu_);
  if (init_entries_.load(std::memory_order_relaxed) <=
      opts_.init_tree_capacity) {
    return;  // another eviction already relieved the pressure
  }
  // Find the INIT-resident owner with the most entries (approximate: counts
  // read without the per-owner lock; the winner is re-checked under it).
  OwnerId victim = 0;
  size_t victim_count = 0;
  std::shared_ptr<OwnerState> victim_state;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    for (const auto& [owner, state] : shard->owners) {
      // `published` and `count` are atomics precisely so this scan does not
      // have to take every owner's mutex (which would deadlock against
      // Upsert holding its own owner mutex while calling here). The reads
      // are approximate; the winner is re-validated under its mutex below.
      if (state->published.load(std::memory_order_acquire) == nullptr &&
          state->count.load(std::memory_order_relaxed) > victim_count) {
        victim = owner;
        victim_count = state->count.load(std::memory_order_relaxed);
        victim_state = state;
      }
    }
  }
  if (victim_state == nullptr) return;
  OwnerState* vs = victim_state.get();
  MutexLock lock(&vs->mu);
  if (vs->tree != nullptr) return;  // raced with a split-out
  // Opportunistic eviction: on failure the owner simply stays in the init
  // tree and a later cycle (or EvictToBudget) retries.
  BG3_IGNORE_STATUS(SplitOutLocked(victim, vs, &stats_.evictions));
}

size_t BwTreeForest::DedicatedTreeCount() const {
  MutexLock lock(&registry_mu_);
  return registry_.size() - 1;  // minus INIT
}

size_t BwTreeForest::ApproxMemoryBytes() const {
  size_t bytes = sizeof(*this);
  std::vector<bwtree::BwTree*> trees;
  {
    MutexLock lock(&registry_mu_);
    trees.reserve(registry_.size());
    for (const auto& [id, tree] : registry_) trees.push_back(tree);
  }
  for (bwtree::BwTree* t : trees) bytes += t->ApproxMemoryBytes();
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    bytes += shard->owners.bucket_count() * sizeof(void*);
    bytes += shard->owners.size() * (32 + sizeof(OwnerState));
  }
  return bytes;
}

void BwTreeForest::AppendTrees(std::vector<bwtree::BwTree*>* out) const {
  MutexLock lock(&registry_mu_);
  out->reserve(out->size() + registry_.size());
  for (const auto& [id, tree] : registry_) out->push_back(tree);
}

size_t BwTreeForest::TotalResidentBytes() const {
  std::vector<bwtree::BwTree*> trees;
  AppendTrees(&trees);
  return TotalResidentBytesAcross(trees);
}

EvictToBudgetResult BwTreeForest::EvictToBudget(size_t budget_bytes) {
  // Serialized with INIT-capacity evictions so concurrent budget passes do
  // not double-evict each other's candidates.
  MutexLock evict_lock(&evict_mu_);
  std::vector<bwtree::BwTree*> trees;
  AppendTrees(&trees);
  return EvictTreesToBudget(trees, budget_bytes);
}

bwtree::BwTree* BwTreeForest::ResolveTree(bwtree::TreeId id) const {
  MutexLock lock(&registry_mu_);
  auto it = registry_.find(id);
  return it == registry_.end() ? nullptr : it->second;
}

BwTreeForest::LatchCounters BwTreeForest::AggregateLatchCounters() const {
  LatchCounters agg;
  MutexLock lock(&registry_mu_);
  for (const auto& [id, tree] : registry_) {
    const bwtree::BwTreeStats& s = tree->stats();
    agg.shared_acquires += s.latch_shared_acquires.Get();
    agg.exclusive_acquires += s.latch_exclusive_acquires.Get();
    agg.shared_conflicts += s.latch_shared_conflicts.Get();
    agg.exclusive_conflicts += s.latch_exclusive_conflicts.Get();
  }
  return agg;
}

uint64_t BwTreeForest::TotalLatchConflicts() const {
  const LatchCounters agg = AggregateLatchCounters();
  return agg.shared_conflicts + agg.exclusive_conflicts;
}

std::vector<OwnerRecord> BwTreeForest::ExportOwners() const {
  std::vector<OwnerRecord> out;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    for (const auto& [owner, state] : shard->owners) {
      OwnerRecord rec;
      rec.owner = owner;
      bwtree::BwTree* tree =
          state->published.load(std::memory_order_acquire);
      rec.tree_id = tree == nullptr ? 0 : tree->options().tree_id;
      rec.entry_count = state->count.load(std::memory_order_relaxed);
      out.push_back(rec);
    }
  }
  return out;
}

Status BwTreeForest::RestoreOwner(const OwnerRecord& rec,
                                  std::vector<bwtree::RecoveredPage> pages) {
  if (rec.tree_id == 0 && !pages.empty()) {
    return Status::InvalidArgument("INIT pages go through InstallInitPages");
  }
  auto owned = GetOrCreateState(rec.owner);
  OwnerState* state = owned.get();
  MutexLock lock(&state->mu);
  if (state->tree != nullptr) {
    return Status::InvalidArgument("owner already dedicated");
  }
  if (rec.tree_id == 0 || pages.empty()) {
    // INIT residency. A dedicated owner with no checkpointed images lost
    // its (never-flushed) dedicated content past the restore horizon; it
    // comes back empty and re-dedicates once it grows again.
    const uint64_t count = rec.tree_id == 0 ? rec.entry_count : 0;
    state->count.store(count, std::memory_order_relaxed);
    if (rec.tree_id == 0) {
      init_entries_.fetch_add(rec.entry_count, std::memory_order_relaxed);
    }
    return Status::OK();
  }
  // Future split-outs must mint ids past every restored tree.
  bwtree::TreeId cur = next_tree_id_.load(std::memory_order_relaxed);
  while (cur <= rec.tree_id &&
         !next_tree_id_.compare_exchange_weak(cur, rec.tree_id + 1,
                                              std::memory_order_relaxed)) {
  }
  auto tree = std::make_unique<bwtree::BwTree>(
      store_, MakeTreeOptions(rec.tree_id, /*bootstrap=*/true));
  BG3_RETURN_IF_ERROR(tree->InstallRecoveredPages(std::move(pages)));
  {
    MutexLock reg_lock(&registry_mu_);
    registry_[rec.tree_id] = tree.get();
  }
  state->count.store(rec.entry_count, std::memory_order_relaxed);
  state->tree = std::move(tree);
  state->published.store(state->tree.get(), std::memory_order_release);
  return Status::OK();
}

Status BwTreeForest::InstallInitPages(std::vector<bwtree::RecoveredPage> pages) {
  BG3_CHECK(opts_.bootstrap_init) << "InstallInitPages requires bootstrap_init";
  return init_tree_->InstallRecoveredPages(std::move(pages));
}

void BwTreeForest::RestoreLsnFloor(bwtree::Lsn lsn) {
  bwtree::Lsn cur = lsn_source_.load(std::memory_order_relaxed);
  while (cur < lsn && !lsn_source_.compare_exchange_weak(
                          cur, lsn, std::memory_order_relaxed)) {
  }
}

void BwTreeForest::CheckInvariants() const {
  {
    MutexLock lock(&registry_mu_);
    auto it = registry_.find(0);
    BG3_CHECK(it != registry_.end()) << "registry lost the INIT tree";
    BG3_CHECK(it->second == init_tree_.get())
        << "registry id 0 does not point at the INIT tree";
    const bwtree::TreeId bound =
        next_tree_id_.load(std::memory_order_relaxed);
    for (const auto& [id, tree] : registry_) {
      BG3_CHECK(tree != nullptr) << "registry tree " << id << " is null";
      BG3_CHECK_LT(id, bound) << "registry tree id beyond the id source";
      BG3_CHECK_EQ(tree->options().tree_id, id)
          << "registry id does not match the tree's own id";
    }
  }
  // Every dedicated owner's tree must be registered under its id. Owner
  // mutexes are only try-locked: the walker runs from split-out boundaries
  // where a caller may hold another owner's mutex, and it must never wait.
  for (const auto& shard : shards_) {
    std::vector<std::shared_ptr<OwnerState>> states;
    {
      MutexLock lock(&shard->mu);
      states.reserve(shard->owners.size());
      for (const auto& [owner, state] : shard->owners) states.push_back(state);
    }
    for (const auto& state : states) {
      if (!state->mu.TryLock()) continue;
      state->mu.AssertHeld();
      if (state->tree != nullptr) {
        BG3_CHECK(state->published.load(std::memory_order_relaxed) ==
                  state->tree.get())
            << "owner has a dedicated tree but no published pointer to it";
        BG3_CHECK(ResolveTree(state->tree->options().tree_id) ==
                  state->tree.get())
            << "dedicated tree not resolvable through the registry";
      } else {
        BG3_CHECK(state->published.load(std::memory_order_relaxed) == nullptr)
            << "published tree pointer without an owning tree";
      }
      state->mu.Unlock();
    }
  }
}

}  // namespace bg3::forest
