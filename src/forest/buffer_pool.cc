#include "forest/buffer_pool.h"

#include <algorithm>

namespace bg3::forest {

size_t TotalResidentBytesAcross(const std::vector<bwtree::BwTree*>& trees) {
  size_t total = 0;
  for (bwtree::BwTree* t : trees) total += t->ResidentBytes();
  return total;
}

EvictToBudgetResult EvictTreesToBudget(
    const std::vector<bwtree::BwTree*>& trees, size_t budget_bytes) {
  struct Candidate {
    bwtree::BwTree* tree;
    bwtree::PageId id;
    uint64_t tick;
  };
  // One shared-latch pass over every tree: total resident bytes plus the
  // eviction candidates (clean pages a flushed image makes droppable).
  std::vector<Candidate> candidates;
  size_t total = 0;
  std::vector<bwtree::BwTree::PageResidency> residency;
  for (bwtree::BwTree* t : trees) {
    residency.clear();
    total += t->CollectResidency(&residency);
    for (const auto& r : residency) {
      if (r.evictable) candidates.push_back(Candidate{t, r.id, r.tick});
    }
  }
  EvictToBudgetResult result;
  if (total <= budget_bytes) return result;
  // Globally coldest first, regardless of which tree owns the page.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.tick < b.tick;
            });
  for (const Candidate& c : candidates) {
    if (total - result.bytes_freed <= budget_bytes) break;
    const size_t freed = c.tree->EvictPage(c.id);
    if (freed == 0) continue;  // dirtied/reloaded/evicted since the scan
    result.bytes_freed += freed;
    ++result.pages_evicted;
  }
  return result;
}

}  // namespace bg3::forest
