#ifndef BG3_FOREST_BUFFER_POOL_H_
#define BG3_FOREST_BUFFER_POOL_H_

#include <cstddef>
#include <vector>

#include "bwtree/bwtree.h"

namespace bg3::forest {

/// Forest-wide residency budget: the BGS memory layer behaves like the
/// cache it is in the paper's §2.1 — a single byte budget over every
/// tree's resident leaves, so hot owners keep memory that cold owners give
/// up. This supersedes per-tree resident-page targets, whose total
/// footprint silently scaled with the tree count as the forest split
/// owners out.
///
/// Ticks are comparable across trees because the forest (and GraphDB)
/// share one BwTreeOptions::tick_source among all their trees.

struct EvictToBudgetResult {
  size_t pages_evicted = 0;
  size_t bytes_freed = 0;
};

/// Total resident payload bytes across `trees` (sum of
/// BwTree::ResidentBytes).
size_t TotalResidentBytesAcross(const std::vector<bwtree::BwTree*>& trees);

/// Evicts the globally coldest clean leaves (LRU by shared access tick)
/// across `trees` until total resident payload bytes fit in
/// `budget_bytes`. Dirty pages and pages without a flushed image are never
/// touched; every victim is re-validated under its exclusive latch
/// (BwTree::EvictPage), so the pass is safe against concurrent reads,
/// writes and reloads.
EvictToBudgetResult EvictTreesToBudget(
    const std::vector<bwtree::BwTree*>& trees, size_t budget_bytes);

}  // namespace bg3::forest

#endif  // BG3_FOREST_BUFFER_POOL_H_
