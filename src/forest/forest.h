#ifndef BG3_FOREST_FOREST_H_
#define BG3_FOREST_FOREST_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "bwtree/bwtree.h"
#include "common/metrics.h"
#include "common/thread_annotations.h"
#include "forest/buffer_pool.h"

namespace bg3::forest {

/// Owner of an adjacency list: in the Douyin-likes example of §3.2.1, the
/// user id (the graph layer folds vertex id + edge type into this handle).
using OwnerId = uint64_t;

struct ForestOptions {
  /// Once an owner accumulates more than this many entries in the INIT
  /// tree, its data is split out into a dedicated Bw-tree ("each workload
  /// can be configured with a threshold", §3.2.1). 0 dedicates owners on
  /// their first write.
  size_t split_out_threshold = 1024;

  /// When the INIT tree's total entry count exceeds this, the owner with
  /// the most INIT entries is evicted into a dedicated tree ("when the
  /// total size of Bw-tree (INIT) exceeds the threshold, we select the user
  /// with the most edges", §3.2.1).
  size_t init_tree_capacity = 4u << 20;

  /// Template for every tree the forest creates; tree_id / lsn_source /
  /// page_id_source are managed by the forest itself.
  bwtree::BwTreeOptions tree_options;

  /// Shard count of the owner hash table.
  size_t owner_shards = 64;

  /// Checkpoint restore: create the INIT tree in bootstrap mode (no initial
  /// page) so the restorer can install its checkpointed layout via
  /// InstallInitPages before any request is served.
  bool bootstrap_init = false;
};

/// One owner-table row exported with a checkpoint (the core layer persists
/// these in the checkpoint manifest): which tree the owner's adjacency list
/// routes to (0 = the shared INIT tree) and its tracked entry count, so a
/// restored forest resumes split-out/eviction decisions without rescanning.
struct OwnerRecord {
  OwnerId owner = 0;
  bwtree::TreeId tree_id = 0;
  uint64_t entry_count = 0;
};

struct ForestStats {
  LightCounter split_outs;  ///< owners moved to dedicated trees by threshold.
  LightCounter evictions;   ///< owners evicted by INIT-capacity pressure.
};

/// Space Optimized Bw-tree Forest (§3.2.1): a hash table of owners whose
/// values point at either the shared INIT Bw-tree (small owners, stored
/// with composite [owner|sort] keys) or a dedicated per-owner Bw-tree
/// (hot owners, stored with shortened [sort]-only keys — the key shrinking
/// that saves space once all of a tree's edges share one source).
///
/// Thread safety: a per-owner mutex serializes *mutations* of one owner
/// (consistent with §3.2.1 Observation 2: one user never likes two videos
/// at the same moment); cross-owner writes only contend on the INIT tree's
/// internal page latches — the contention the forest exists to reduce.
/// Reads of a dedicated owner bypass the owner mutex entirely: the tree
/// pointer is published once (atomically, never cleared) at split-out, and
/// the Bw-tree itself is reader-concurrent via shared leaf latches — so
/// fan-out reads of one hot owner scale across cores.
class BwTreeForest {
 public:
  BwTreeForest(cloud::CloudStore* store, const ForestOptions& options);

  BwTreeForest(const BwTreeForest&) = delete;
  BwTreeForest& operator=(const BwTreeForest&) = delete;

  /// Inserts/updates one entry of `owner`'s list, keyed by `sort_key`.
  /// Every foreground op forwards the optional OpContext deadline to the
  /// owning Bw-tree (null = no deadline; see DESIGN.md §5.5).
  Status Upsert(OwnerId owner, const Slice& sort_key, const Slice& value,
                const OpContext* ctx = nullptr);
  Status Delete(OwnerId owner, const Slice& sort_key,
                const OpContext* ctx = nullptr);
  Result<std::string> Get(OwnerId owner, const Slice& sort_key,
                          const OpContext* ctx = nullptr);

  /// Ordered scan of one owner's entries from `start_sort_key`; returned
  /// entry keys are sort keys (the owner prefix is stripped for INIT-tree
  /// residents).
  Status ScanOwner(OwnerId owner, const Slice& start_sort_key, size_t limit,
                   std::vector<bwtree::Entry>* out,
                   const OpContext* ctx = nullptr);

  /// Entries currently attributed to `owner` (tracked count).
  size_t OwnerEntryCount(OwnerId owner) const;

  /// Forces `owner` into a dedicated tree immediately (workloads that know
  /// their hot set up front; also how Fig. 11 controls the tree count).
  /// No-op if the owner is already dedicated.
  Status DedicateOwner(OwnerId owner);

  // --- introspection -------------------------------------------------------
  size_t DedicatedTreeCount() const;
  /// Total Bw-trees (dedicated + INIT).
  size_t TreeCount() const { return DedicatedTreeCount() + 1; }
  size_t InitEntryCount() const {
    return init_entries_.load(std::memory_order_relaxed);
  }
  /// INIT + dedicated trees + owner-table overhead (Fig. 11 space axis).
  size_t ApproxMemoryBytes() const;

  /// Memory pressure: evicts the globally coldest clean leaves across every
  /// tree (INIT + dedicated) until total resident payload bytes fit in
  /// `budget_bytes` — a forest-wide buffer-pool budget, so the footprint no
  /// longer scales with the tree count as owners split out. Serialized on
  /// evict_mu_; see forest::EvictTreesToBudget.
  EvictToBudgetResult EvictToBudget(size_t budget_bytes);

  /// Total resident payload bytes across every tree in the forest.
  size_t TotalResidentBytes() const;

  /// Appends every registered tree (INIT + dedicated) to `out`, for
  /// callers that budget across more than one forest/tree (GraphDB pools
  /// the vertex tree with the forest).
  void AppendTrees(std::vector<bwtree::BwTree*>* out) const;

  /// Resolves a tree id to its tree (GC relocation); nullptr if unknown.
  bwtree::BwTree* ResolveTree(bwtree::TreeId id) const;
  bwtree::BwTree* init_tree() { return init_tree_.get(); }

  ForestStats& stats() { return stats_; }
  const ForestOptions& options() const { return opts_; }

  /// Aggregate of per-tree latch counters (the Fig. 11 contention signal).
  struct LatchCounters {
    uint64_t shared_acquires = 0;
    uint64_t exclusive_acquires = 0;
    uint64_t shared_conflicts = 0;
    uint64_t exclusive_conflicts = 0;
  };
  LatchCounters AggregateLatchCounters() const;
  /// Sum of shared + exclusive conflicts across all trees.
  uint64_t TotalLatchConflicts() const;

  // --- checkpoint restore (DESIGN.md §5.7) ---------------------------------

  /// Snapshot of the owner table for a checkpoint manifest.
  std::vector<OwnerRecord> ExportOwners() const;

  /// Recreates one owner from a checkpoint. Non-empty `pages` rebuilds the
  /// owner's dedicated tree (bootstrap mode, recovered layout installed,
  /// registered and published). Empty `pages` restores the owner as
  /// INIT-resident; a dedicated owner whose images never reached the
  /// checkpoint falls back to an empty INIT residency (its post-checkpoint
  /// content is beyond the restore horizon). Call before serving requests.
  Status RestoreOwner(const OwnerRecord& rec,
                      std::vector<bwtree::RecoveredPage> pages);

  /// Installs the INIT tree's checkpointed layout (requires bootstrap_init).
  Status InstallInitPages(std::vector<bwtree::RecoveredPage> pages);

  /// Raises the shared LSN source to at least `lsn` so post-restore
  /// mutations never run the per-page flushed_lsn <= last_lsn invariant
  /// backwards (page-id collision safety is handled per install).
  void RestoreLsnFloor(bwtree::Lsn lsn);

  /// INIT-tree composite key helpers, exposed for tests.
  static std::string MakeInitKey(OwnerId owner, const Slice& sort_key);
  static std::string OwnerPrefix(OwnerId owner);

  /// Debug invariant walker (BG3_CHECK-aborts on violation): the registry
  /// resolves the INIT tree at id 0, and every dedicated owner's tree is
  /// registered under its id. Called from BG3_DCHECK hooks at split-out
  /// boundaries and from tests.
  void CheckInvariants() const;

 private:
  struct OwnerState {
    OwnerState() { mu.SetRank(lock_rank::kOwnerState_mu, "OwnerState::mu"); }

    Mutex mu;
    /// Entries attributed to the owner. Mutated only under `mu`; atomic so
    /// the INIT-capacity eviction scan may read it without taking every
    /// owner's mutex (the winner is re-validated under `mu`).
    std::atomic<size_t> count{0};
    /// Published (with release order) once `tree` is installed and never
    /// cleared afterwards: readers load it with acquire order and, when
    /// non-null, go straight to the tree without touching `mu` — the
    /// Bw-tree's shared leaf latches make that safe. The eviction scan and
    /// invariant checks also key off this instead of reading `tree`
    /// unlatched.
    std::atomic<bwtree::BwTree*> published{nullptr};
    /// Null while resident in INIT. Owns the tree `published` points at.
    std::unique_ptr<bwtree::BwTree> tree BG3_GUARDED_BY(mu);
  };

  struct Shard {
    mutable Mutex mu;
    std::unordered_map<OwnerId, std::shared_ptr<OwnerState>> owners
        BG3_GUARDED_BY(mu);
  };

  std::shared_ptr<OwnerState> GetOrCreateState(OwnerId owner);
  std::shared_ptr<OwnerState> FindState(OwnerId owner) const;

  /// Moves `owner`'s INIT entries into a fresh dedicated tree. Caller holds
  /// `state->mu`.
  Status SplitOutLocked(OwnerId owner, OwnerState* state, LightCounter* reason)
      BG3_REQUIRES(state->mu);

  /// INIT-capacity eviction: finds the INIT-resident owner with the most
  /// entries and splits it out.
  void MaybeEvictFromInit();

  bwtree::BwTreeOptions MakeTreeOptions(bwtree::TreeId id,
                                        bool bootstrap = false) const;

  cloud::CloudStore* const store_;
  const ForestOptions opts_;
  ForestStats stats_;

  std::atomic<bwtree::Lsn> lsn_source_{0};
  std::atomic<bwtree::PageId> page_id_source_{0};
  /// Shared LRU clock for every tree in the forest (comparable ticks are
  /// what make the forest-wide eviction order meaningful). GraphDB overrides
  /// this with a process-wide source so the vertex tree joins the pool.
  mutable std::atomic<uint64_t> tick_source_{0};
  std::atomic<bwtree::TreeId> next_tree_id_{1};  // 0 is the INIT tree.

  std::unique_ptr<bwtree::BwTree> init_tree_;
  std::atomic<size_t> init_entries_{0};

  std::vector<std::unique_ptr<Shard>> shards_;

  mutable Mutex registry_mu_;
  std::unordered_map<bwtree::TreeId, bwtree::BwTree*> registry_
      BG3_GUARDED_BY(registry_mu_);

  Mutex evict_mu_;  // serializes capacity-pressure evictions.
};

}  // namespace bg3::forest

#endif  // BG3_FOREST_FOREST_H_
