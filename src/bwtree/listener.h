#ifndef BG3_BWTREE_LISTENER_H_
#define BG3_BWTREE_LISTENER_H_

#include <string>
#include <vector>

#include "bwtree/page.h"
#include "cloud/types.h"

namespace bg3::bwtree {

/// Observer of tree mutations, implemented by the replication layer to build
/// the write-ahead log of §3.4. Mutation and split callbacks fire under the
/// leaf latch, so per-page callbacks arrive in LSN order.
class TreeListener {
 public:
  virtual ~TreeListener() = default;

  /// A new tree came up with its initial (empty) leaf page.
  virtual void OnTreeInit(TreeId tree, PageId initial_page) {}

  /// One logical upsert/delete applied to `page` at `lsn`.
  virtual void OnMutation(TreeId tree, PageId page, Lsn lsn,
                          const DeltaEntry& entry) {}

  /// `old_page` split: keys >= `separator` moved to `new_page`.
  virtual void OnSplit(TreeId tree, PageId old_page, PageId new_page, Lsn lsn,
                       const std::string& separator) {}

  /// The storage image of `page` now reflects all mutations up to
  /// `flushed_lsn`: base at `base_ptr` plus deltas `delta_ptrs`
  /// (oldest-first), covering keys [low_key, high_key) (empty high = +inf
  /// when !has_high_key). The replication layer publishes this to the
  /// shared mapping table (step (8) of Fig. 7); the key range lets readers
  /// bootstrap the route table from the mapping alone, which is what makes
  /// WAL truncation safe.
  virtual void OnPageFlushed(TreeId tree, PageId page, Lsn flushed_lsn,
                             const cloud::PagePointer& base_ptr,
                             const std::vector<cloud::PagePointer>& delta_ptrs,
                             const std::string& low_key,
                             const std::string& high_key, bool has_high_key) {}
};

}  // namespace bg3::bwtree

#endif  // BG3_BWTREE_LISTENER_H_
