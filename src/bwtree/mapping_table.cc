#include "bwtree/mapping_table.h"

#include "common/logging.h"

namespace bg3::bwtree {

LeafPage* PageIndex::InsertPage(std::unique_ptr<LeafPage> page) {
  std::unique_lock lock(mu_);
  LeafPage* raw = page.get();
  auto [it, inserted] = pages_.emplace(page->id, std::move(page));
  BG3_CHECK(inserted) << "duplicate page id " << raw->id;
  return raw;
}

void PageIndex::InsertRoute(const std::string& low_key, PageId page) {
  std::unique_lock lock(mu_);
  route_[low_key] = page;
}

LeafPage* PageIndex::FindLeaf(const Slice& key) const {
  std::shared_lock lock(mu_);
  if (route_.empty()) return nullptr;
  auto it = route_.upper_bound(key.ToString());
  BG3_CHECK(it != route_.begin()) << "route table must start at empty key";
  --it;
  auto pit = pages_.find(it->second);
  BG3_CHECK(pit != pages_.end());
  return pit->second.get();
}

LeafPage* PageIndex::FindPage(PageId id) const {
  std::shared_lock lock(mu_);
  auto it = pages_.find(id);
  return it == pages_.end() ? nullptr : it->second.get();
}

LeafPage* PageIndex::NextLeaf(const LeafPage& page) const {
  std::shared_lock lock(mu_);
  auto it = route_.upper_bound(page.low_key);
  if (it == route_.end()) return nullptr;
  auto pit = pages_.find(it->second);
  BG3_CHECK(pit != pages_.end());
  return pit->second.get();
}

size_t PageIndex::PageCount() const {
  std::shared_lock lock(mu_);
  return pages_.size();
}

void PageIndex::ForEachPage(const std::function<void(LeafPage*)>& fn) const {
  // Collect ids under the shared lock, visit without it so `fn` may latch.
  std::vector<PageId> ids;
  {
    std::shared_lock lock(mu_);
    ids.reserve(route_.size());
    for (const auto& [key, id] : route_) ids.push_back(id);
  }
  for (PageId id : ids) {
    if (LeafPage* p = FindPage(id)) fn(p);
  }
}

size_t PageIndex::ApproxIndexBytes() const {
  std::shared_lock lock(mu_);
  size_t bytes = sizeof(*this);
  // std::map node: ~3 pointers + color + payload; hash map: bucket pointer +
  // node. These constants approximate libstdc++ layouts.
  for (const auto& [key, id] : route_) {
    bytes += 48 + key.capacity() + sizeof(PageId);
  }
  bytes += pages_.bucket_count() * sizeof(void*);
  bytes += pages_.size() * (32 + sizeof(LeafPage));
  return bytes;
}

}  // namespace bg3::bwtree
