#include "bwtree/mapping_table.h"

#include <algorithm>

#include "common/logging.h"

namespace bg3::bwtree {

namespace {

/// Thread-local route cache: a direct-mapped array of slots keyed by the
/// owning index's process-unique id. Each slot pins the snapshot it cached
/// (shared_ptr) plus the thread's last-leaf hint with a copy of that leaf's
/// upper bound taken under the latch. Distinct live indexes whose ids
/// collide on a slot evict each other — the miss cost is one shared-lock
/// refresh, i.e. exactly the pre-snapshot routing cost, never a
/// correctness hazard (the slot records which index warmed it).
struct TlsRouteCache {
  uint64_t index_id = 0;
  uint64_t version = 0;
  std::shared_ptr<const RouteSnapshot> snap;
  LeafPage* hint = nullptr;
  std::string hint_upper;
  bool hint_has_upper = false;
};

constexpr size_t kTlsRouteSlots = 8;
thread_local TlsRouteCache g_route_cache[kTlsRouteSlots];

std::atomic<uint64_t> g_next_index_id{1};

TlsRouteCache& SlotFor(uint64_t instance_id) {
  return g_route_cache[instance_id % kTlsRouteSlots];
}

}  // namespace

PageIndex::PageIndex()
    : instance_id_(g_next_index_id.fetch_add(1, std::memory_order_relaxed)) {
  mu_.SetRank(lock_rank::kPageIndex_mu, "PageIndex::mu_");
  WriterMutexLock lock(&mu_);
  snapshot_ = std::make_shared<RouteSnapshot>();
}

LeafPage* PageIndex::InsertPage(std::unique_ptr<LeafPage> page) {
  WriterMutexLock lock(&mu_);
  LeafPage* raw = page.get();
  auto [it, inserted] = pages_.emplace(page->id, std::move(page));
  BG3_CHECK(inserted) << "duplicate page id " << raw->id;
  return raw;
}

void PageIndex::InsertRoute(const std::string& low_key, PageId page) {
  WriterMutexLock lock(&mu_);
  auto pit = pages_.find(page);
  LeafPage* resolved = pit == pages_.end() ? nullptr : pit->second.get();
  // Copy-on-write publication: readers keep binary-searching the previous
  // snapshot (pinned by their thread-local shared_ptr) until they notice
  // the version bump.
  auto next = std::make_shared<RouteSnapshot>(*snapshot_);
  auto it = std::lower_bound(next->keys.begin(), next->keys.end(), low_key);
  const size_t idx = static_cast<size_t>(it - next->keys.begin());
  if (it != next->keys.end() && *it == low_key) {
    next->ids[idx] = page;
    next->pages[idx] = resolved;
  } else {
    next->keys.insert(it, low_key);
    next->ids.insert(next->ids.begin() + static_cast<ptrdiff_t>(idx), page);
    next->pages.insert(next->pages.begin() + static_cast<ptrdiff_t>(idx),
                       resolved);
  }
  snapshot_ = std::move(next);
  route_version_.fetch_add(1, std::memory_order_release);
}

LeafPage* PageIndex::Lookup(const RouteSnapshot& snap, const Slice& key) {
  // Find the last entry with low_key <= key: binary search for the first
  // entry with low_key > key, then step back.
  size_t lo = 0;
  size_t hi = snap.keys.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (key.compare(Slice(snap.keys[mid])) >= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  BG3_CHECK(lo > 0) << "route table must start at empty key";
  LeafPage* page = snap.pages[lo - 1];
  BG3_CHECK(page != nullptr)
      << "route entry '" << snap.keys[lo - 1] << "' -> page "
      << snap.ids[lo - 1] << " resolves to a dead mapping-table entry";
  return page;
}

LeafPage* PageIndex::FindLeaf(const Slice& key) const {
  TlsRouteCache& cache = SlotFor(instance_id_);
  if (cache.index_id == instance_id_) {
    // Last-leaf hint: low_key is immutable, and the cached upper bound was
    // copied under the latch. A split of the hint leaf since then can only
    // make the cached range too wide — the caller's post-latch range
    // validation catches that and retries through FindLeafFresh.
    LeafPage* hint = cache.hint;
    if (hint != nullptr && key.compare(Slice(hint->low_key)) >= 0 &&
        (!cache.hint_has_upper ||
         key.compare(Slice(cache.hint_upper)) < 0)) {
      return hint;
    }
    if (cache.snap != nullptr &&
        cache.version == route_version_.load(std::memory_order_acquire)) {
      if (cache.snap->keys.empty()) return nullptr;
      return Lookup(*cache.snap, key);
    }
  }
  return FindLeafFresh(key);
}

LeafPage* PageIndex::FindLeafFresh(const Slice& key) const {
  TlsRouteCache& cache = SlotFor(instance_id_);
  cache.index_id = instance_id_;
  cache.hint = nullptr;
  cache.hint_has_upper = false;
  cache.hint_upper.clear();
  {
    ReaderMutexLock lock(&mu_);
    cache.snap = snapshot_;
    // Coherent with the snapshot: publications bump the version while
    // holding `mu_` exclusively.
    cache.version = route_version_.load(std::memory_order_acquire);
  }
  if (cache.snap->keys.empty()) return nullptr;
  return Lookup(*cache.snap, key);
}

void PageIndex::NoteLeafHint(LeafPage* leaf, const std::string& upper,
                             bool has_upper) const {
  TlsRouteCache& cache = SlotFor(instance_id_);
  if (cache.index_id != instance_id_) return;  // slot belongs elsewhere
  cache.hint = leaf;
  cache.hint_has_upper = has_upper;
  if (has_upper) {
    cache.hint_upper.assign(upper);
  } else {
    cache.hint_upper.clear();
  }
}

LeafPage* PageIndex::FindPage(PageId id) const {
  ReaderMutexLock lock(&mu_);
  auto it = pages_.find(id);
  return it == pages_.end() ? nullptr : it->second.get();
}

LeafPage* PageIndex::NextLeaf(const LeafPage& page) const {
  std::shared_ptr<const RouteSnapshot> snap;
  {
    ReaderMutexLock lock(&mu_);
    snap = snapshot_;
  }
  auto it = std::upper_bound(snap->keys.begin(), snap->keys.end(),
                             page.low_key);
  if (it == snap->keys.end()) return nullptr;
  LeafPage* next = snap->pages[it - snap->keys.begin()];
  BG3_CHECK(next != nullptr);
  return next;
}

size_t PageIndex::PageCount() const {
  ReaderMutexLock lock(&mu_);
  return pages_.size();
}

void PageIndex::ForEachPage(const std::function<void(LeafPage*)>& fn) const {
  // Pin the snapshot, visit without any lock so `fn` may latch.
  std::shared_ptr<const RouteSnapshot> snap;
  {
    ReaderMutexLock lock(&mu_);
    snap = snapshot_;
  }
  for (LeafPage* p : snap->pages) {
    if (p != nullptr) fn(p);
  }
}

size_t PageIndex::ApproxIndexBytes() const {
  ReaderMutexLock lock(&mu_);
  size_t bytes = sizeof(*this) + sizeof(RouteSnapshot);
  for (const std::string& key : snapshot_->keys) {
    bytes += key.capacity() + sizeof(PageId) + sizeof(LeafPage*);
  }
  bytes += pages_.bucket_count() * sizeof(void*);
  bytes += pages_.size() * (32 + sizeof(LeafPage));
  return bytes;
}

void PageIndex::CheckInvariants() const {
  ReaderMutexLock lock(&mu_);
  const RouteSnapshot& snap = *snapshot_;
  // An empty route table is legal only pre-bootstrap (no pages installed).
  if (snap.keys.empty()) return;
  BG3_CHECK(snap.keys.front().empty())
      << "route table must start at the empty key, found '"
      << snap.keys.front() << "'";
  for (size_t i = 0; i < snap.keys.size(); ++i) {
    const std::string& key = snap.keys[i];
    const PageId id = snap.ids[i];
    if (i + 1 < snap.keys.size()) {
      BG3_CHECK(key < snap.keys[i + 1])
          << "route snapshot keys not strictly sorted at '" << key << "'";
    }
    auto pit = pages_.find(id);
    BG3_CHECK(pit != pages_.end() && snap.pages[i] != nullptr)
        << "route entry '" << key << "' -> page " << id
        << " resolves to a dead mapping-table entry";
    LeafPage* p = pit->second.get();
    BG3_CHECK(p == snap.pages[i])
        << "route snapshot pointer does not match the mapping table for page "
        << id;
    BG3_CHECK_EQ(p->id, id) << "mapping table id mismatch for page " << id;
    // low_key is immutable after publication, safe to read latch-free.
    BG3_CHECK(p->low_key == key)
        << "route key '" << key << "' does not match page " << id
        << " low key '" << p->low_key << "'";
    // Deeper per-page state checks only when a shared latch is free: the
    // walker holds the index lock shared and must never *wait* on a latch
    // (the split path holds a latch while taking this lock exclusively).
    if (p->latch.try_lock_shared()) {
      p->latch.AssertReaderHeld();
      BG3_CHECK(!p->has_high_key || p->low_key < p->high_key)
          << "page " << id << " has inverted key range";
      BG3_CHECK_LE(p->flushed_lsn, p->last_lsn)
          << "page " << id << " flushed ahead of memory state";
      p->latch.unlock_shared();
    }
  }
}

}  // namespace bg3::bwtree
