#include "bwtree/mapping_table.h"

#include "common/logging.h"

namespace bg3::bwtree {

LeafPage* PageIndex::InsertPage(std::unique_ptr<LeafPage> page) {
  WriterMutexLock lock(&mu_);
  LeafPage* raw = page.get();
  auto [it, inserted] = pages_.emplace(page->id, std::move(page));
  BG3_CHECK(inserted) << "duplicate page id " << raw->id;
  return raw;
}

void PageIndex::InsertRoute(const std::string& low_key, PageId page) {
  WriterMutexLock lock(&mu_);
  route_[low_key] = page;
}

LeafPage* PageIndex::FindLeaf(const Slice& key) const {
  ReaderMutexLock lock(&mu_);
  if (route_.empty()) return nullptr;
  auto it = route_.upper_bound(key.ToString());
  BG3_CHECK(it != route_.begin()) << "route table must start at empty key";
  --it;
  auto pit = pages_.find(it->second);
  BG3_CHECK(pit != pages_.end());
  return pit->second.get();
}

LeafPage* PageIndex::FindPage(PageId id) const {
  ReaderMutexLock lock(&mu_);
  auto it = pages_.find(id);
  return it == pages_.end() ? nullptr : it->second.get();
}

LeafPage* PageIndex::NextLeaf(const LeafPage& page) const {
  ReaderMutexLock lock(&mu_);
  auto it = route_.upper_bound(page.low_key);
  if (it == route_.end()) return nullptr;
  auto pit = pages_.find(it->second);
  BG3_CHECK(pit != pages_.end());
  return pit->second.get();
}

size_t PageIndex::PageCount() const {
  ReaderMutexLock lock(&mu_);
  return pages_.size();
}

void PageIndex::ForEachPage(const std::function<void(LeafPage*)>& fn) const {
  // Collect ids under the shared lock, visit without it so `fn` may latch.
  std::vector<PageId> ids;
  {
    ReaderMutexLock lock(&mu_);
    ids.reserve(route_.size());
    for (const auto& [key, id] : route_) ids.push_back(id);
  }
  for (PageId id : ids) {
    if (LeafPage* p = FindPage(id)) fn(p);
  }
}

size_t PageIndex::ApproxIndexBytes() const {
  ReaderMutexLock lock(&mu_);
  size_t bytes = sizeof(*this);
  // std::map node: ~3 pointers + color + payload; hash map: bucket pointer +
  // node. These constants approximate libstdc++ layouts.
  for (const auto& [key, id] : route_) {
    bytes += 48 + key.capacity() + sizeof(PageId);
  }
  bytes += pages_.bucket_count() * sizeof(void*);
  bytes += pages_.size() * (32 + sizeof(LeafPage));
  return bytes;
}

void PageIndex::CheckInvariants() const {
  ReaderMutexLock lock(&mu_);
  // An empty route table is legal only pre-bootstrap (no pages installed).
  if (route_.empty()) return;
  BG3_CHECK(route_.begin()->first.empty())
      << "route table must start at the empty key, found '"
      << route_.begin()->first << "'";
  for (const auto& [key, id] : route_) {
    auto pit = pages_.find(id);
    BG3_CHECK(pit != pages_.end())
        << "route entry '" << key << "' -> page " << id
        << " resolves to a dead mapping-table entry";
    LeafPage* p = pit->second.get();
    BG3_CHECK_EQ(p->id, id) << "mapping table id mismatch for page " << id;
    // low_key is immutable after publication, safe to read latch-free.
    BG3_CHECK(p->low_key == key)
        << "route key '" << key << "' does not match page " << id
        << " low key '" << p->low_key << "'";
    // Deeper per-page state checks only when the latch is free: the walker
    // holds the index lock shared and must never *wait* on a latch (the
    // split path holds a latch while taking this lock exclusively).
    if (p->latch.TryLock()) {
      p->latch.AssertHeld();
      BG3_CHECK(!p->has_high_key || p->low_key < p->high_key)
          << "page " << id << " has inverted key range";
      BG3_CHECK_LE(p->flushed_lsn, p->last_lsn)
          << "page " << id << " flushed ahead of memory state";
      p->latch.Unlock();
    }
  }
}

}  // namespace bg3::bwtree
