#ifndef BG3_BWTREE_PAGE_H_
#define BG3_BWTREE_PAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cloud/types.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace bg3::bwtree {

using PageId = uint64_t;
using TreeId = uint64_t;
using Lsn = uint64_t;

inline constexpr PageId kInvalidPage = ~0ull;

/// Kind tag carried by every record flushed to the cloud store. Records are
/// self-describing so that space reclamation can relocate a record by
/// parsing its header and asking the owning tree to re-install it.
enum class RecordKind : uint8_t {
  kBasePage = 'B',
  kDelta = 'D',
};

/// A key/value entry of a base page. Keys order by memcmp.
struct Entry {
  std::string key;
  std::string value;
};

enum class DeltaOp : uint8_t {
  kUpsert = 0,
  kDelete = 1,
};

/// One logical modification carried by a delta record.
struct DeltaEntry {
  DeltaOp op = DeltaOp::kUpsert;
  std::string key;
  std::string value;
};

struct RecordHeader {
  RecordKind kind = RecordKind::kBasePage;
  TreeId tree_id = 0;
  PageId page_id = kInvalidPage;
  Lsn lsn = 0;
};

// --- serialization ---------------------------------------------------------
// Layout: [kind u8][tree_id f64][page_id f64][lsn f64][payload]
// Base payload:  [count v32] ([klen-prefixed key][vlen-prefixed value])*
// Delta payload: [count v32] ([op u8][key][value])*

std::string EncodeBasePage(TreeId tree_id, PageId page_id, Lsn lsn,
                           const std::vector<Entry>& entries);
std::string EncodeDelta(TreeId tree_id, PageId page_id, Lsn lsn,
                        const std::vector<DeltaEntry>& entries);

/// Consumes the header from `input`, leaving the payload.
Status DecodeRecordHeader(Slice* input, RecordHeader* out);
Status DecodeBasePagePayload(Slice input, std::vector<Entry>* out);
Status DecodeDeltaPayload(Slice input, std::vector<DeltaEntry>* out);

// --- merge helpers ---------------------------------------------------------

/// Applies delta chains (oldest chain first within the span, each chain's
/// entries key-sorted or not) onto sorted base entries and returns the new
/// sorted entry set. Deletes remove entries.
std::vector<Entry> ApplyDeltaChain(
    std::vector<Entry> base,
    const std::vector<const std::vector<DeltaEntry>*>& chains_oldest_first);

/// Looks `key` up in a delta entry list (newest entry wins if duplicated).
/// Returns true if the delta decides the outcome: `*deleted` set for
/// tombstones, else `*value` filled.
bool LookupInDelta(const std::vector<DeltaEntry>& delta, const Slice& key,
                   std::string* value, bool* deleted);

/// Binary search in sorted base entries; returns true and fills `*value`.
bool LookupInBase(const std::vector<Entry>& base, const Slice& key,
                  std::string* value);

/// Merges `older` and `newer` delta lists into one key-sorted list where
/// the newest write per key wins (the §3.2.2 delta merge: the merged delta
/// "directly points to the base page", keeping at most one delta per page).
std::vector<DeltaEntry> MergeDeltas(const std::vector<DeltaEntry>& older,
                                    const std::vector<DeltaEntry>& newer);

/// Approximate heap bytes of entry vectors (memory accounting for Fig. 11).
size_t EntryBytes(const std::vector<Entry>& entries);
size_t DeltaBytes(const std::vector<DeltaEntry>& entries);

}  // namespace bg3::bwtree

#endif  // BG3_BWTREE_PAGE_H_
