#ifndef BG3_BWTREE_ITERATOR_H_
#define BG3_BWTREE_ITERATOR_H_

#include <string>
#include <vector>

#include "bwtree/bwtree.h"

namespace bg3::bwtree {

/// Streaming cursor over a BwTree range. Fetches entries in chunks so large
/// adjacency lists (super-vertices) do not need to be materialized at once.
/// Snapshot semantics are per-chunk: each refill observes the current tree
/// state, like a read-committed scan.
class BwTreeIterator {
 public:
  /// Iterates [start_key, end_key) (empty end = unbounded).
  BwTreeIterator(BwTree* tree, std::string start_key, std::string end_key,
                 size_t chunk_size = 128);

  bool Valid() const { return pos_ < buffer_.size(); }
  const std::string& key() const { return buffer_[pos_].key; }
  const std::string& value() const { return buffer_[pos_].value; }

  void Next();

  /// Non-OK if a chunk refill failed (storage error).
  const Status& status() const { return status_; }

 private:
  void Refill();

  BwTree* const tree_;
  const std::string end_key_;
  const size_t chunk_size_;
  std::vector<Entry> buffer_;
  size_t pos_ = 0;
  std::string next_start_;
  bool exhausted_ = false;
  Status status_;
};

}  // namespace bg3::bwtree

#endif  // BG3_BWTREE_ITERATOR_H_
