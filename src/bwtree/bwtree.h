#ifndef BG3_BWTREE_BWTREE_H_
#define BG3_BWTREE_BWTREE_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bwtree/listener.h"
#include "bwtree/mapping_table.h"
#include "common/thread_annotations.h"
#include "bwtree/page.h"
#include "cloud/cloud_store.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/retry.h"

namespace bg3::bwtree {

/// Delta maintenance policy of §3.2.2.
enum class DeltaMode {
  /// Classic Bw-tree (the SLED baseline of §4.3.1): every write appends one
  /// single-entry delta; chains grow to the consolidation threshold.
  kTraditional,
  /// BG3's Read Optimized Bw-tree (Algorithm 1): each write merges the
  /// page's existing delta with the update, so a page carries at most one
  /// delta and a cache-miss read costs at most two storage reads.
  kReadOptimized,
};

/// Durability policy for page images.
enum class FlushMode {
  /// Every write flushes its base/delta record before returning (§3.2.2:
  /// "both the base page and the delta data have to be flushed").
  kSync,
  /// Writes only mutate memory and mark pages dirty; a background flusher
  /// (the RW node of §3.4) persists dirty pages in groups, with the WAL
  /// carrying durability in between.
  kDeferred,
  /// No persistence at all (pure in-memory stress tests).
  kNone,
};

/// Read path cache policy.
enum class ReadCacheMode {
  /// Serve reads from the in-memory page state (full cache hit).
  kFull,
  /// Every read fetches the page's storage images (base + deltas), as in
  /// the zero-cache read-amplification experiment of Fig. 9.
  kNone,
};

struct BwTreeOptions {
  TreeId tree_id = 0;
  DeltaMode delta_mode = DeltaMode::kReadOptimized;
  /// Consolidate a page once its delta count would exceed this (both
  /// systems in §4.3.1 use 10).
  uint32_t consolidate_threshold = 10;
  /// Split a leaf once its merged entry count exceeds this.
  size_t max_leaf_entries = 256;
  bool allow_split = true;  ///< Fig. 9/10 restrict splitting for fairness.
  ReadCacheMode read_cache = ReadCacheMode::kFull;
  FlushMode flush_mode = FlushMode::kSync;
  /// Treat reads hitting freed extents as absent data instead of IOError
  /// (TTL workloads where whole extents expire, §3.3 Observation 2).
  bool tolerate_missing_extents = false;

  /// Retry policy for every store append/read this tree issues (flush,
  /// consolidation, cache-miss reads, GC relocation). Reads additionally
  /// retry Corruption: an injected corrupt read models bit flips on the
  /// wire, so re-reading the intact record succeeds; genuinely damaged
  /// media keeps failing and surfaces once the budget is spent.
  RetryOptions retry;

  cloud::StreamId base_stream = 0;
  cloud::StreamId delta_stream = 0;

  /// Shared LSN/page-id allocators (a forest or replicated node passes
  /// node-global counters); nullptr uses tree-local counters.
  std::atomic<Lsn>* lsn_source = nullptr;
  std::atomic<PageId>* page_id_source = nullptr;
  /// Shared access-tick allocator for LRU eviction. A forest passes one
  /// counter for all its trees so last-access ages are comparable
  /// forest-wide (the forest::EvictToBudget ordering); nullptr uses a
  /// tree-local counter.
  std::atomic<uint64_t>* tick_source = nullptr;

  /// Crash recovery: skip creating the initial page (and its OnTreeInit
  /// notification); the caller installs the recovered layout via
  /// InstallRecoveredPages before serving any request.
  bool bootstrap = false;

  TreeListener* listener = nullptr;
};

/// One leaf of a recovered tree layout (see BwTree::InstallRecoveredPages).
struct RecoveredPage {
  PageId id = kInvalidPage;
  std::string low_key;
  std::string high_key;
  bool has_high_key = false;
  /// Full logical content (storage image + replayed WAL).
  std::vector<Entry> entries;
  /// Newest mutation LSN reflected in `entries`.
  Lsn last_lsn = 0;
  /// Current storage image, if any (so the first post-recovery flush can
  /// invalidate it); null when the page was never flushed pre-crash.
  cloud::PagePointer base_ptr;
  /// Content exactly matches the published base image at `base_ptr` (same
  /// key range, no deltas, no newer replayed mutation). Clean pages install
  /// with dirty = false, so the post-recovery flush republishes only what
  /// the WAL suffix touched — bounded restart instead of O(DB).
  bool clean = false;
  /// Install with content materialized (the default). False installs only
  /// the metadata + base_ptr; the first access demand-loads the base image
  /// (checkpoint restore: reads go live before the warm sweep finishes).
  /// Requires `clean` with a non-null base_ptr.
  bool resident = true;
};

/// Write/read activity counters of one tree.
struct BwTreeStats {
  LightCounter upserts;
  LightCounter deletes;
  LightCounter gets;
  LightCounter scans;
  /// Leaf-latch acquisition counters, split by mode (exported through the
  /// registry as bg3.db<N>.bwtree.latch.*). The conflict counters count
  /// acquisitions whose try-lock failed because an incompatible holder was
  /// present: exclusive conflicts are the write contention the Bw-tree
  /// forest is designed to reduce (§3.2.1 Observation 1, Fig. 11); shared
  /// conflicts measure readers stalled behind writers.
  LightCounter latch_shared_acquires;
  LightCounter latch_exclusive_acquires;
  LightCounter latch_shared_conflicts;
  LightCounter latch_exclusive_conflicts;
  LightCounter consolidations;
  LightCounter splits;
  /// Base pages reloaded from storage after eviction (cache misses of the
  /// memory layer).
  LightCounter page_reloads;
  LightCounter page_evictions;
};

/// A single Bw-tree over append-only cloud storage: BG3's unit of graph
/// adjacency storage (§3.2). Thread-safe; per-leaf latching.
class BwTree {
 public:
  BwTree(cloud::CloudStore* store, const BwTreeOptions& options);

  BwTree(const BwTree&) = delete;
  BwTree& operator=(const BwTree&) = delete;

  /// All foreground ops take an optional OpContext (DESIGN.md §5.5): its
  /// deadline is checked at entry, per leaf hop (scans), and before every
  /// store I/O the op issues, and it rides the retry loop so an expired
  /// request stops burning attempts. Null = exact historical behavior.
  Status Upsert(const Slice& key, const Slice& value,
                const OpContext* ctx = nullptr);
  Status Delete(const Slice& key, const OpContext* ctx = nullptr);

  /// Point lookup; NotFound if absent or deleted.
  Result<std::string> Get(const Slice& key, const OpContext* ctx = nullptr);

  struct ScanOptions {
    std::string start_key;          ///< inclusive; empty = from the start.
    std::string end_key;            ///< exclusive; empty = to the end.
    size_t limit = std::numeric_limits<size_t>::max();
  };
  /// Ordered range scan into `out` (appends).
  Status Scan(const ScanOptions& options, std::vector<Entry>* out,
              const OpContext* ctx = nullptr);

  // --- deferred-flush support (replication, §3.4) --------------------------

  /// Ids of pages whose memory state is ahead of their storage images.
  std::vector<PageId> DirtyPageIds() const;
  /// Consolidates and flushes one page's image; no-op if not dirty.
  Status FlushPage(PageId id);
  /// Flushes up to `max_pages` dirty pages (group commit); returns flushed.
  size_t FlushDirtyPages(size_t max_pages);

  // --- memory-bounded caching -----------------------------------------------

  /// Evicts least-recently-accessed clean leaf pages (drops their in-memory
  /// base entries; the flushed base image stays authoritative) until at
  /// most `target_resident` pages remain resident. Dirty pages and pages
  /// without a flushed image are never evicted. Returns pages evicted.
  size_t EvictColdPages(size_t target_resident);

  size_t ResidentPageCount() const;

  /// One leaf's residency record for the forest-wide byte budget (see
  /// forest::EvictToBudget). `bytes` is the in-memory payload of the
  /// resident base entries; `evictable` marks clean pages whose flushed
  /// image (or empty content) makes dropping them safe.
  struct PageResidency {
    PageId id = kInvalidPage;
    uint64_t tick = 0;
    size_t bytes = 0;
    bool evictable = false;
  };
  /// Appends one record per resident leaf (shared latches only; safe to
  /// call concurrently with reads and writes) and returns this tree's
  /// total resident payload bytes.
  size_t CollectResidency(std::vector<PageResidency>* out) const;
  /// Total resident payload bytes (base entries of resident leaves).
  size_t ResidentBytes() const;
  /// Forest-budget eviction of a single page: drops the page's base
  /// entries after re-validating (clean, resident, has a flushed image or
  /// nothing to lose) under the exclusive latch. Returns bytes freed —
  /// 0 if the page vanished, was dirtied, or was reloaded/evicted
  /// concurrently.
  size_t EvictPage(PageId id);

  // --- crash recovery (bootstrap mode) --------------------------------------

  /// Installs a recovered leaf layout into a tree constructed with
  /// `bootstrap = true`. Pages must tile the key space (first low_key empty,
  /// contiguous ranges). Pages not marked `clean` come up dirty so the next
  /// group flush republishes fresh images; clean pages keep their published
  /// image authoritative. Call once, before any other operation.
  Status InstallRecoveredPages(std::vector<RecoveredPage> pages);

  /// Materializes one non-resident page (checkpoint-restore warm sweep or
  /// restore-priority queue). Returns the storage bytes read — 0 if the
  /// page was already resident (demand reads may win the race).
  Result<size_t> WarmPage(PageId id, const OpContext* ctx = nullptr);

  // --- space-reclamation support (GC, §3.3) --------------------------------

  /// Re-installs a still-valid record (self-describing bytes read from a
  /// victim extent) at a fresh location and invalidates `old_ptr`.
  /// Returns the number of bytes rewritten (0 if the record was stale).
  Result<uint64_t> Relocate(const cloud::PagePointer& old_ptr,
                            const Slice& record_bytes);

  // --- introspection --------------------------------------------------------
  size_t LeafCount() const { return index_.PageCount(); }
  /// Total entries across all leaves (walks the tree; O(pages)).
  size_t CountEntries() const;
  /// Approximate heap footprint: index structures + page payloads. The
  /// Fig. 11 space-cost axis sums this across the forest.
  size_t ApproxMemoryBytes() const;

  BwTreeStats& stats() { return stats_; }
  const BwTreeOptions& options() const { return opts_; }
  cloud::CloudStore* store() { return store_; }

 private:
  friend class BwTreeIterator;

  Lsn NextLsn() {
    return lsn_source_->fetch_add(1, std::memory_order_relaxed) + 1;
  }
  PageId NextPageId() {
    return page_id_source_->fetch_add(1, std::memory_order_relaxed);
  }

  /// Routes to the leaf owning `key`, latches it exclusively, and
  /// re-validates the key range (retrying — with a forced route-snapshot
  /// refresh — if the leaf split concurrently). Returns the latched leaf;
  /// `lock` holds the latch. Callers must follow up with
  /// `leaf->latch.AssertHeld()` so the thread-safety analysis learns about
  /// the acquisition it cannot see through std::unique_lock.
  LeafPage* FindAndLatchLeafExclusive(const Slice& key,
                                      std::unique_lock<SharedMutex>* lock);
  /// Shared-mode twin for the read path; callers follow up with
  /// `leaf->latch.AssertReaderHeld()`.
  LeafPage* FindAndLatchLeafShared(const Slice& key,
                                   std::shared_lock<SharedMutex>* lock);

  Status Write(DeltaEntry entry, const OpContext* ctx);
  Status ApplyTraditionalLocked(LeafPage* leaf, DeltaEntry entry, Lsn lsn,
                                const OpContext* ctx)
      BG3_REQUIRES(leaf->latch);
  Status ApplyReadOptimizedLocked(LeafPage* leaf, DeltaEntry entry, Lsn lsn,
                                  const OpContext* ctx)
      BG3_REQUIRES(leaf->latch);

  /// Folds the delta chain into base_entries (memory only).
  void FoldChainLocked(LeafPage* leaf) BG3_REQUIRES(leaf->latch);
  /// FoldChainLocked + flush of the new base image (sync mode).
  Status ConsolidateLocked(LeafPage* leaf, const OpContext* ctx = nullptr)
      BG3_REQUIRES(leaf->latch);
  Status MaybeSplitLocked(LeafPage* leaf, const OpContext* ctx = nullptr)
      BG3_REQUIRES(leaf->latch);

  /// Reloads an evicted page's base entries from its storage image.
  Status EnsureResidentLocked(LeafPage* leaf, const OpContext* ctx = nullptr)
      BG3_REQUIRES(leaf->latch);

  /// Store I/O with the tree's bounded retry policy applied (retry
  /// accounting wired to the store's IoStats, exhaustion reported to the
  /// store's circuit breaker, and the caller's deadline riding the loop).
  Result<cloud::PagePointer> RetryingAppend(cloud::StreamId stream,
                                            const Slice& record,
                                            const OpContext* ctx = nullptr);
  Result<std::string> RetryingRead(const cloud::PagePointer& ptr,
                                   const OpContext* ctx = nullptr);

  Status AppendBaseLocked(LeafPage* leaf, const OpContext* ctx = nullptr)
      BG3_REQUIRES(leaf->latch);
  Status AppendDeltaLocked(LeafPage* leaf, LeafPage::Delta* delta, Lsn lsn,
                           const OpContext* ctx = nullptr)
      BG3_REQUIRES(leaf->latch);
  void NotifyFlushedLocked(LeafPage* leaf) BG3_REQUIRES(leaf->latch);

  /// Storage-image view of a page for cache-miss reads (Fig. 9 path).
  /// Read-only on the leaf — runs under a shared latch so zero-cache reads
  /// scale (an exclusive holder satisfies the shared requirement too).
  Status LoadMergedFromStorageLocked(LeafPage* leaf, std::vector<Entry>* out,
                                     const OpContext* ctx = nullptr)
      BG3_REQUIRES_SHARED(leaf->latch);
  /// Merged logical content per the read cache mode (read-only).
  Status MergedViewLocked(LeafPage* leaf, std::vector<Entry>* out,
                          const OpContext* ctx = nullptr)
      BG3_REQUIRES_SHARED(leaf->latch);
  /// Appends merged entries of [start, end) up to `limit` total entries in
  /// `out`; O(result + chain) on the in-memory path. Read-only: in full-
  /// cache mode the caller must have made the leaf resident first (Scan's
  /// exclusive-reload fallback does this on a cache miss).
  Status CollectRangeLocked(LeafPage* leaf, const std::string& start,
                            const std::string& end, size_t limit,
                            std::vector<Entry>* out,
                            const OpContext* ctx = nullptr)
      BG3_REQUIRES_SHARED(leaf->latch);

  /// Debug invariant check for one latched leaf, called at consolidation,
  /// split and flush boundaries (BG3_DCHECK — compiled out when
  /// BG3_ENABLE_DCHECKS is off). Read-only, so a shared latch suffices:
  ///  - read-optimized mode carries at most one delta (Alg. 1);
  ///  - base entries are strictly sorted;
  ///  - flushed_lsn never exceeds last_lsn;
  ///  - a dirty page implies deferred flushing;
  ///  - the key range is not inverted.
  void CheckLeafInvariantsLocked(LeafPage* leaf)
      BG3_REQUIRES_SHARED(leaf->latch);

  cloud::CloudStore* const store_;
  const BwTreeOptions opts_;
  PageIndex index_;
  BwTreeStats stats_;

  std::atomic<uint64_t> local_tick_{0};
  std::atomic<Lsn> local_lsn_{0};
  std::atomic<PageId> local_page_id_{0};
  std::atomic<Lsn>* lsn_source_;
  std::atomic<PageId>* page_id_source_;
  std::atomic<uint64_t>* tick_source_;
};

}  // namespace bg3::bwtree

#endif  // BG3_BWTREE_BWTREE_H_
