#include "bwtree/iterator.h"

namespace bg3::bwtree {

BwTreeIterator::BwTreeIterator(BwTree* tree, std::string start_key,
                               std::string end_key, size_t chunk_size)
    : tree_(tree),
      end_key_(std::move(end_key)),
      chunk_size_(chunk_size),
      next_start_(std::move(start_key)) {
  Refill();
}

void BwTreeIterator::Next() {
  ++pos_;
  if (pos_ >= buffer_.size() && !exhausted_) Refill();
}

void BwTreeIterator::Refill() {
  buffer_.clear();
  pos_ = 0;
  if (exhausted_ || !status_.ok()) return;
  BwTree::ScanOptions opts;
  opts.start_key = next_start_;
  opts.end_key = end_key_;
  opts.limit = chunk_size_;
  status_ = tree_->Scan(opts, &buffer_);
  if (!status_.ok()) {
    buffer_.clear();
    return;
  }
  if (buffer_.size() < chunk_size_) {
    exhausted_ = true;
  } else {
    // Resume strictly after the last returned key: append a zero byte to
    // form the smallest key greater than it.
    next_start_ = buffer_.back().key;
    next_start_.push_back('\0');
  }
}

}  // namespace bg3::bwtree
