#include "bwtree/page.h"

#include <algorithm>
#include <map>

#include "common/coding.h"

namespace bg3::bwtree {

namespace {

void EncodeHeader(std::string* dst, RecordKind kind, TreeId tree_id,
                  PageId page_id, Lsn lsn) {
  dst->push_back(static_cast<char>(kind));
  PutFixed64(dst, tree_id);
  PutFixed64(dst, page_id);
  PutFixed64(dst, lsn);
}

}  // namespace

std::string EncodeBasePage(TreeId tree_id, PageId page_id, Lsn lsn,
                           const std::vector<Entry>& entries) {
  std::string out;
  EncodeHeader(&out, RecordKind::kBasePage, tree_id, page_id, lsn);
  PutVarint32(&out, static_cast<uint32_t>(entries.size()));
  for (const Entry& e : entries) {
    PutLengthPrefixedSlice(&out, e.key);
    PutLengthPrefixedSlice(&out, e.value);
  }
  return out;
}

std::string EncodeDelta(TreeId tree_id, PageId page_id, Lsn lsn,
                        const std::vector<DeltaEntry>& entries) {
  std::string out;
  EncodeHeader(&out, RecordKind::kDelta, tree_id, page_id, lsn);
  PutVarint32(&out, static_cast<uint32_t>(entries.size()));
  for (const DeltaEntry& e : entries) {
    out.push_back(static_cast<char>(e.op));
    PutLengthPrefixedSlice(&out, e.key);
    PutLengthPrefixedSlice(&out, e.value);
  }
  return out;
}

Status DecodeRecordHeader(Slice* input, RecordHeader* out) {
  if (input->size() < 1 + 3 * 8) return Status::Corruption("short header");
  const char kind = (*input)[0];
  if (kind != static_cast<char>(RecordKind::kBasePage) &&
      kind != static_cast<char>(RecordKind::kDelta)) {
    return Status::Corruption("bad record kind");
  }
  out->kind = static_cast<RecordKind>(kind);
  input->remove_prefix(1);
  GetFixed64(input, &out->tree_id);
  GetFixed64(input, &out->page_id);
  GetFixed64(input, &out->lsn);
  return Status::OK();
}

Status DecodeBasePagePayload(Slice input, std::vector<Entry>* out) {
  uint32_t count;
  if (!GetVarint32(&input, &count)) return Status::Corruption("base count");
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Slice k, v;
    if (!GetLengthPrefixedSlice(&input, &k) ||
        !GetLengthPrefixedSlice(&input, &v)) {
      return Status::Corruption("base entry");
    }
    out->push_back(Entry{k.ToString(), v.ToString()});
  }
  return Status::OK();
}

Status DecodeDeltaPayload(Slice input, std::vector<DeltaEntry>* out) {
  uint32_t count;
  if (!GetVarint32(&input, &count)) return Status::Corruption("delta count");
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (input.empty()) return Status::Corruption("delta op");
    const auto op = static_cast<DeltaOp>(input[0]);
    if (op != DeltaOp::kUpsert && op != DeltaOp::kDelete) {
      return Status::Corruption("bad delta op");
    }
    input.remove_prefix(1);
    Slice k, v;
    if (!GetLengthPrefixedSlice(&input, &k) ||
        !GetLengthPrefixedSlice(&input, &v)) {
      return Status::Corruption("delta entry");
    }
    out->push_back(DeltaEntry{op, k.ToString(), v.ToString()});
  }
  return Status::OK();
}

std::vector<Entry> ApplyDeltaChain(
    std::vector<Entry> base,
    const std::vector<const std::vector<DeltaEntry>*>& chains_oldest_first) {
  // Collapse all chains into the final outcome per key (later chains and
  // later entries within one chain win), then merge into the sorted base.
  std::map<std::string, const DeltaEntry*> latest;
  for (const auto* chain : chains_oldest_first) {
    for (const DeltaEntry& e : *chain) latest[e.key] = &e;
  }
  if (latest.empty()) return base;

  std::vector<Entry> out;
  out.reserve(base.size() + latest.size());
  auto it = latest.begin();
  for (Entry& b : base) {
    while (it != latest.end() && it->first < b.key) {
      if (it->second->op == DeltaOp::kUpsert) {
        out.push_back(Entry{it->first, it->second->value});
      }
      ++it;
    }
    if (it != latest.end() && it->first == b.key) {
      if (it->second->op == DeltaOp::kUpsert) {
        out.push_back(Entry{it->first, it->second->value});
      }  // else deleted: skip the base entry.
      ++it;
    } else {
      out.push_back(std::move(b));
    }
  }
  for (; it != latest.end(); ++it) {
    if (it->second->op == DeltaOp::kUpsert) {
      out.push_back(Entry{it->first, it->second->value});
    }
  }
  return out;
}

bool LookupInDelta(const std::vector<DeltaEntry>& delta, const Slice& key,
                   std::string* value, bool* deleted) {
  // Newest entry wins: scan back-to-front.
  for (auto it = delta.rbegin(); it != delta.rend(); ++it) {
    if (Slice(it->key) == key) {
      if (it->op == DeltaOp::kDelete) {
        *deleted = true;
      } else {
        *deleted = false;
        *value = it->value;
      }
      return true;
    }
  }
  return false;
}

bool LookupInBase(const std::vector<Entry>& base, const Slice& key,
                  std::string* value) {
  auto it = std::lower_bound(
      base.begin(), base.end(), key,
      [](const Entry& e, const Slice& k) { return Slice(e.key).compare(k) < 0; });
  if (it == base.end() || Slice(it->key) != key) return false;
  *value = it->value;
  return true;
}

std::vector<DeltaEntry> MergeDeltas(const std::vector<DeltaEntry>& older,
                                    const std::vector<DeltaEntry>& newer) {
  std::map<std::string, const DeltaEntry*> latest;
  for (const DeltaEntry& e : older) latest[e.key] = &e;
  for (const DeltaEntry& e : newer) latest[e.key] = &e;
  std::vector<DeltaEntry> out;
  out.reserve(latest.size());
  for (const auto& [key, e] : latest) out.push_back(*e);
  return out;
}

size_t EntryBytes(const std::vector<Entry>& entries) {
  size_t n = entries.size() * sizeof(Entry);
  for (const Entry& e : entries) n += e.key.capacity() + e.value.capacity();
  return n;
}

size_t DeltaBytes(const std::vector<DeltaEntry>& entries) {
  size_t n = entries.size() * sizeof(DeltaEntry);
  for (const DeltaEntry& e : entries) {
    n += e.key.capacity() + e.value.capacity();
  }
  return n;
}

}  // namespace bg3::bwtree
