#include "bwtree/bwtree.h"

#include <algorithm>

#include "common/logging.h"
#include "common/thread_annotations.h"
#include "common/timed_scope.h"

namespace bg3::bwtree {

BwTree::BwTree(cloud::CloudStore* store, const BwTreeOptions& options)
    : store_(store),
      opts_(options),
      lsn_source_(options.lsn_source != nullptr ? options.lsn_source
                                                : &local_lsn_),
      page_id_source_(options.page_id_source != nullptr
                          ? options.page_id_source
                          : &local_page_id_),
      tick_source_(options.tick_source != nullptr ? options.tick_source
                                                  : &local_tick_) {
  BG3_CHECK(store_ != nullptr || opts_.flush_mode == FlushMode::kNone)
      << "a cloud store is required unless flushing is disabled";
  BG3_CHECK(!(opts_.read_cache == ReadCacheMode::kNone &&
              opts_.flush_mode != FlushMode::kSync))
      << "zero-cache reads require sync flushing (storage must be current)";
  if (opts_.bootstrap) return;  // layout comes from InstallRecoveredPages
  // Initial empty leaf covering the whole key space.
  // Default-constructed LeafPage already covers the whole key space
  // (empty low key, no high key).
  auto page = std::make_unique<LeafPage>(NextPageId());
  LeafPage* raw = index_.InsertPage(std::move(page));
  index_.InsertRoute("", raw->id);
  if (opts_.listener != nullptr) {
    opts_.listener->OnTreeInit(opts_.tree_id, raw->id);
  }
}

Status BwTree::InstallRecoveredPages(std::vector<RecoveredPage> pages) {
  BG3_CHECK(opts_.bootstrap) << "InstallRecoveredPages requires bootstrap";
  BG3_CHECK_EQ(index_.PageCount(), 0u) << "layout already installed";
  if (pages.empty()) return Status::InvalidArgument("no pages to install");
  std::sort(pages.begin(), pages.end(),
            [](const RecoveredPage& a, const RecoveredPage& b) {
              return a.low_key < b.low_key;
            });
  if (!pages.front().low_key.empty()) {
    return Status::InvalidArgument("first page must cover the key space start");
  }
  PageId max_id = 0;
  for (size_t i = 0; i < pages.size(); ++i) {
    RecoveredPage& rp = pages[i];
    if (rp.id == kInvalidPage) return Status::InvalidArgument("bad page id");
    if (i + 1 < pages.size() &&
        (!rp.has_high_key || rp.high_key != pages[i + 1].low_key)) {
      return Status::InvalidArgument("recovered pages do not tile key space");
    }
    if (!rp.resident && (!rp.clean || rp.base_ptr.IsNull())) {
      return Status::InvalidArgument(
          "non-resident install requires a clean page with a base image");
    }
    auto page = std::make_unique<LeafPage>(rp.id);
    page->low_key = rp.low_key;
    {
      // Uncontended (the page is unpublished); latching makes the guarded
      // writes visible to the thread-safety analysis.
      WriterMutexLock init_lock(&page->latch);
      page->high_key = rp.high_key;
      page->has_high_key = rp.has_high_key;
      page->base_ptr = rp.base_ptr;
      page->last_lsn = rp.last_lsn;
      if (rp.clean) {
        // The published image is current; keep it authoritative so the
        // post-recovery flush skips this page (and eviction stays safe).
        page->dirty = false;
        page->flushed_lsn = rp.last_lsn;
      } else {
        page->dirty = true;  // republish a fresh image on the next flush
      }
      if (rp.resident) {
        page->base_entries = std::move(rp.entries);
      } else {
        // Metadata-only install: the first read (or the warm sweep)
        // demand-loads the base image via EnsureResidentLocked.
        page->resident = false;
      }
    }
    max_id = std::max(max_id, rp.id);
    LeafPage* raw = index_.InsertPage(std::move(page));
    index_.InsertRoute(raw->low_key, raw->id);
  }
  // Future page ids must not collide with the recovered layout.
  PageId cur = page_id_source_->load(std::memory_order_relaxed);
  while (cur <= max_id && !page_id_source_->compare_exchange_weak(
                              cur, max_id + 1, std::memory_order_relaxed)) {
  }
  return Status::OK();
}

LeafPage* BwTree::FindAndLatchLeafExclusive(
    const Slice& key, std::unique_lock<SharedMutex>* lock) {
  bool refresh = false;
  for (;;) {
    LeafPage* leaf =
        refresh ? index_.FindLeafFresh(key) : index_.FindLeaf(key);
    BG3_CHECK(leaf != nullptr);
    std::unique_lock<SharedMutex> latch(leaf->latch, std::try_to_lock);
    if (!latch.owns_lock()) {
      stats_.latch_exclusive_conflicts.Inc();
      latch.lock();
    }
    leaf->latch.AssertHeld();
    stats_.latch_exclusive_acquires.Inc();
    // Re-validate: the leaf may have split between routing and latching,
    // or the routing snapshot/hint may have been stale.
    const bool in_range =
        key.compare(Slice(leaf->low_key)) >= 0 &&
        (!leaf->has_high_key || key.compare(Slice(leaf->high_key)) < 0);
    if (in_range) {
      leaf->last_access_tick.store(
          tick_source_->fetch_add(1, std::memory_order_relaxed),
          std::memory_order_relaxed);
      index_.NoteLeafHint(leaf, leaf->high_key, leaf->has_high_key);
      *lock = std::move(latch);
      return leaf;
    }
    // Wrong leaf: retry against a freshly published route snapshot (the
    // forced refresh prevents a stale thread-local snapshot from looping).
    refresh = true;
  }
}

LeafPage* BwTree::FindAndLatchLeafShared(const Slice& key,
                                         std::shared_lock<SharedMutex>* lock) {
  bool refresh = false;
  for (;;) {
    LeafPage* leaf =
        refresh ? index_.FindLeafFresh(key) : index_.FindLeaf(key);
    BG3_CHECK(leaf != nullptr);
    std::shared_lock<SharedMutex> latch(leaf->latch, std::try_to_lock);
    if (!latch.owns_lock()) {
      stats_.latch_shared_conflicts.Inc();
      latch.lock();
    }
    leaf->latch.AssertReaderHeld();
    stats_.latch_shared_acquires.Inc();
    const bool in_range =
        key.compare(Slice(leaf->low_key)) >= 0 &&
        (!leaf->has_high_key || key.compare(Slice(leaf->high_key)) < 0);
    if (in_range) {
      leaf->last_access_tick.store(
          tick_source_->fetch_add(1, std::memory_order_relaxed),
          std::memory_order_relaxed);
      index_.NoteLeafHint(leaf, leaf->high_key, leaf->has_high_key);
      *lock = std::move(latch);
      return leaf;
    }
    refresh = true;
  }
}

Status BwTree::Upsert(const Slice& key, const Slice& value,
                      const OpContext* ctx) {
  stats_.upserts.Inc();
  return Write(DeltaEntry{DeltaOp::kUpsert, key.ToString(), value.ToString()},
               ctx);
}

Status BwTree::Delete(const Slice& key, const OpContext* ctx) {
  stats_.deletes.Inc();
  return Write(DeltaEntry{DeltaOp::kDelete, key.ToString(), {}}, ctx);
}

Status BwTree::Write(DeltaEntry entry, const OpContext* ctx) {
  BG3_TIMED_SCOPE("bg3.bwtree.write_ns");
  BG3_RETURN_IF_ERROR(CheckDeadline(ctx, "bwtree write"));
  std::unique_lock<SharedMutex> lock;
  LeafPage* leaf = FindAndLatchLeafExclusive(entry.key, &lock);
  leaf->latch.AssertHeld();
  const Lsn lsn = NextLsn();
  leaf->last_lsn = lsn;
  if (opts_.listener != nullptr) {
    opts_.listener->OnMutation(opts_.tree_id, leaf->id, lsn, entry);
  }
  Status s = opts_.delta_mode == DeltaMode::kTraditional
                 ? ApplyTraditionalLocked(leaf, std::move(entry), lsn, ctx)
                 : ApplyReadOptimizedLocked(leaf, std::move(entry), lsn, ctx);
  if (!s.ok()) return s;
  if (opts_.flush_mode == FlushMode::kDeferred) leaf->dirty = true;
  return MaybeSplitLocked(leaf, ctx);
}

Status BwTree::ApplyTraditionalLocked(LeafPage* leaf, DeltaEntry entry,
                                      Lsn lsn, const OpContext* ctx) {
  // Classic Bw-tree: prepend a single-entry delta to the chain.
  leaf->chain.insert(leaf->chain.begin(),
                     LeafPage::Delta{{std::move(entry)}, {}});
  if (opts_.flush_mode == FlushMode::kSync) {
    BG3_RETURN_IF_ERROR(
        AppendDeltaLocked(leaf, &leaf->chain.front(), lsn, ctx));
  }
  if (leaf->chain.size() >= opts_.consolidate_threshold) {
    return ConsolidateLocked(leaf, ctx);
  }
  if (opts_.flush_mode == FlushMode::kSync) NotifyFlushedLocked(leaf);
  return Status::OK();
}

Status BwTree::ApplyReadOptimizedLocked(LeafPage* leaf, DeltaEntry entry,
                                        Lsn lsn, const OpContext* ctx) {
  // Algorithm 1 of the paper.
  if (leaf->chain.empty()) {
    // Lines 9-17: first modification since the last consolidation — behave
    // like a traditional Bw-tree.
    leaf->chain.push_back(LeafPage::Delta{{std::move(entry)}, {}});
    if (opts_.flush_mode == FlushMode::kSync) {
      BG3_RETURN_IF_ERROR(
          AppendDeltaLocked(leaf, &leaf->chain.front(), lsn, ctx));
      NotifyFlushedLocked(leaf);
    }
    return Status::OK();
  }
  // Lines 18-31: merge the existing delta with the new update so the page
  // keeps at most one delta.
  LeafPage::Delta& cur = leaf->chain.front();
  if (cur.update_count + 1 > opts_.consolidate_threshold) {
    // Lines 21-27: the merged delta has absorbed ConsolidateNum updates —
    // consolidate the base page with everything instead.
    leaf->chain.front().entries.push_back(std::move(entry));
    return ConsolidateLocked(leaf, ctx);
  }
  std::vector<DeltaEntry> merged = MergeDeltas(cur.entries, {entry});
  const cloud::PagePointer old_ptr = cur.ptr;
  const uint32_t updates = cur.update_count + 1;  // line 29: count = old + 1
  cur.entries = std::move(merged);
  cur.update_count = updates;
  cur.ptr = {};
  if (opts_.flush_mode == FlushMode::kSync) {
    BG3_RETURN_IF_ERROR(AppendDeltaLocked(leaf, &cur, lsn, ctx));
    if (!old_ptr.IsNull()) store_->MarkInvalid(old_ptr);
    NotifyFlushedLocked(leaf);
  }
  CheckLeafInvariantsLocked(leaf);
  return Status::OK();
}

void BwTree::FoldChainLocked(LeafPage* leaf) {
  if (leaf->chain.empty()) return;
  std::vector<const std::vector<DeltaEntry>*> oldest_first;
  oldest_first.reserve(leaf->chain.size());
  for (auto it = leaf->chain.rbegin(); it != leaf->chain.rend(); ++it) {
    oldest_first.push_back(&it->entries);
  }
  leaf->base_entries =
      ApplyDeltaChain(std::move(leaf->base_entries), oldest_first);
}

Result<cloud::PagePointer> BwTree::RetryingAppend(cloud::StreamId stream,
                                                  const Slice& record,
                                                  const OpContext* ctx) {
  // Every cloud append the tree issues funnels through here; bill it to
  // the bwtree layer in the request's account.
  OpLayerScope layer(OpLayer::kBwtree);
  RetryOptions retry = opts_.retry;
  retry.retries = &store_->stats().retries;
  retry.retry_exhausted = &store_->stats().retry_exhausted;
  retry.ctx = ctx;
  retry.breaker = &store_->breaker();
  return RetryResultWithBackoff(
      retry, [&] { return store_->Append(stream, record, nullptr, ctx); });
}

Result<std::string> BwTree::RetryingRead(const cloud::PagePointer& ptr,
                                         const OpContext* ctx) {
  OpLayerScope layer(OpLayer::kBwtree);
  RetryOptions retry = opts_.retry;
  retry.retry_corruption = true;  // wire corruption is transient
  retry.retries = &store_->stats().retries;
  retry.retry_exhausted = &store_->stats().retry_exhausted;
  retry.ctx = ctx;
  retry.breaker = &store_->breaker();
  return RetryResultWithBackoff(
      retry, [&] { return store_->Read(ptr, nullptr, ctx); });
}

Status BwTree::EnsureResidentLocked(LeafPage* leaf, const OpContext* ctx) {
  if (leaf->resident) {
    OpStats::RecordCacheHit(ctx != nullptr ? ctx->stats : nullptr);
    return Status::OK();
  }
  OpStats::RecordCacheMiss(ctx != nullptr ? ctx->stats : nullptr);
  if (!leaf->base_ptr.IsNull()) {
    auto base = RetryingRead(leaf->base_ptr, ctx);
    if (!base.ok()) {
      if (opts_.tolerate_missing_extents && base.status().IsIOError()) {
        leaf->base_entries.clear();
        leaf->resident = true;
        return Status::OK();
      }
      return base.status();
    }
    Slice in(base.value());
    RecordHeader header;
    BG3_RETURN_IF_ERROR(DecodeRecordHeader(&in, &header));
    BG3_RETURN_IF_ERROR(DecodeBasePagePayload(in, &leaf->base_entries));
  }
  leaf->resident = true;
  stats_.page_reloads.Inc();
  return Status::OK();
}

Result<size_t> BwTree::WarmPage(PageId id, const OpContext* ctx) {
  LeafPage* leaf = index_.FindPage(id);
  if (leaf == nullptr) return Status::NotFound("page");
  WriterMutexLock lock(&leaf->latch);
  if (leaf->resident) return size_t{0};
  const size_t bytes = leaf->base_ptr.IsNull() ? 0 : leaf->base_ptr.length;
  BG3_RETURN_IF_ERROR(EnsureResidentLocked(leaf, ctx));
  return bytes;
}

size_t BwTree::EvictColdPages(size_t target_resident) {
  // Collect eviction candidates: resident, clean, with a flushed base image
  // (or nothing to lose), coldest first. Shared latches — the scan races
  // benignly with readers and the winners are re-validated exclusively.
  struct Candidate {
    PageId id;
    uint64_t tick;
  };
  std::vector<Candidate> candidates;
  size_t resident = 0;
  index_.ForEachPage([&](LeafPage* p) {
    ReaderMutexLock lock(&p->latch);
    if (!p->resident) return;
    ++resident;
    if (p->dirty) return;
    if (p->base_ptr.IsNull() && !p->base_entries.empty()) return;
    candidates.push_back(Candidate{
        p->id, p->last_access_tick.load(std::memory_order_relaxed)});
  });
  if (resident <= target_resident) return 0;
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.tick < b.tick;
            });
  size_t evicted = 0;
  for (const Candidate& c : candidates) {
    if (resident - evicted <= target_resident) break;
    LeafPage* p = index_.FindPage(c.id);
    if (p == nullptr) continue;
    WriterMutexLock lock(&p->latch);
    if (!p->resident || p->dirty) continue;
    p->base_entries.clear();
    p->base_entries.shrink_to_fit();
    p->resident = false;
    ++evicted;
    stats_.page_evictions.Inc();
  }
  return evicted;
}

size_t BwTree::ResidentPageCount() const {
  size_t resident = 0;
  index_.ForEachPage([&](LeafPage* p) {
    ReaderMutexLock lock(&p->latch);
    if (p->resident) ++resident;
  });
  return resident;
}

size_t BwTree::CollectResidency(std::vector<PageResidency>* out) const {
  size_t total = 0;
  index_.ForEachPage([&](LeafPage* p) {
    ReaderMutexLock lock(&p->latch);
    if (!p->resident) return;
    PageResidency r;
    r.id = p->id;
    r.tick = p->last_access_tick.load(std::memory_order_relaxed);
    r.bytes = EntryBytes(p->base_entries);
    r.evictable =
        !p->dirty && (!p->base_ptr.IsNull() || p->base_entries.empty());
    total += r.bytes;
    out->push_back(r);
  });
  return total;
}

size_t BwTree::ResidentBytes() const {
  size_t total = 0;
  index_.ForEachPage([&](LeafPage* p) {
    ReaderMutexLock lock(&p->latch);
    if (p->resident) total += EntryBytes(p->base_entries);
  });
  return total;
}

size_t BwTree::EvictPage(PageId id) {
  LeafPage* p = index_.FindPage(id);
  if (p == nullptr) return 0;
  WriterMutexLock lock(&p->latch);
  // Re-validate: the page may have been dirtied, evicted, or reloaded
  // since the budget scan sampled it.
  if (!p->resident || p->dirty) return 0;
  if (p->base_ptr.IsNull() && !p->base_entries.empty()) return 0;
  const size_t bytes = EntryBytes(p->base_entries);
  p->base_entries.clear();
  p->base_entries.shrink_to_fit();
  p->resident = false;
  stats_.page_evictions.Inc();
  return bytes;
}

Status BwTree::ConsolidateLocked(LeafPage* leaf, const OpContext* ctx) {
  BG3_TIMED_SCOPE("bg3.bwtree.consolidate_ns");
  BG3_RETURN_IF_ERROR(EnsureResidentLocked(leaf, ctx));
  stats_.consolidations.Inc();
  // Invalidate the storage images being superseded.
  const cloud::PagePointer old_base = leaf->base_ptr;
  std::vector<cloud::PagePointer> old_deltas;
  for (const auto& d : leaf->chain) {
    if (!d.ptr.IsNull()) old_deltas.push_back(d.ptr);
  }
  FoldChainLocked(leaf);
  leaf->chain.clear();
  if (opts_.flush_mode == FlushMode::kSync) {
    BG3_RETURN_IF_ERROR(AppendBaseLocked(leaf, ctx));
    if (!old_base.IsNull()) store_->MarkInvalid(old_base);
    for (const auto& p : old_deltas) store_->MarkInvalid(p);
    NotifyFlushedLocked(leaf);
  } else if (opts_.flush_mode == FlushMode::kDeferred) {
    leaf->dirty = true;
  }
  CheckLeafInvariantsLocked(leaf);
  return Status::OK();
}

Status BwTree::MaybeSplitLocked(LeafPage* leaf, const OpContext* ctx) {
  if (!opts_.allow_split) return Status::OK();
  size_t chain_entries = 0;
  for (const auto& d : leaf->chain) chain_entries += d.entries.size();
  if ((leaf->resident ? leaf->base_entries.size() : 0) + chain_entries <=
      opts_.max_leaf_entries) {
    // Note: a non-resident page's base size is bounded by max_leaf_entries
    // by construction, so deferring its split check until it next becomes
    // resident (on consolidation) cannot overflow it unboundedly.
    if (leaf->resident) return Status::OK();
    if (chain_entries <= opts_.max_leaf_entries) return Status::OK();
  }
  BG3_RETURN_IF_ERROR(EnsureResidentLocked(leaf, ctx));
  BG3_TIMED_SCOPE("bg3.bwtree.smo_split_ns");
  stats_.splits.Inc();
  // Fold everything so we can cut the full ordered content in half.
  const cloud::PagePointer old_base = leaf->base_ptr;
  std::vector<cloud::PagePointer> old_deltas;
  for (const auto& d : leaf->chain) {
    if (!d.ptr.IsNull()) old_deltas.push_back(d.ptr);
  }
  FoldChainLocked(leaf);
  leaf->chain.clear();
  if (leaf->base_entries.size() <= opts_.max_leaf_entries) {
    // Deletes can shrink the folded content below the threshold.
    if (opts_.flush_mode == FlushMode::kSync) {
      BG3_RETURN_IF_ERROR(AppendBaseLocked(leaf, ctx));
      if (!old_base.IsNull()) store_->MarkInvalid(old_base);
      for (const auto& p : old_deltas) store_->MarkInvalid(p);
      NotifyFlushedLocked(leaf);
    }
    return Status::OK();
  }

  const size_t mid = leaf->base_entries.size() / 2;
  const std::string separator = leaf->base_entries[mid].key;

  // Latch the sibling before initializing and publishing it (uncontended by
  // construction) so we can finish its flush without racing new writers —
  // and so the analysis sees every guarded write under the latch.
  auto sibling = std::make_unique<LeafPage>(NextPageId());
  LeafPage* sib = sibling.get();
  sib->low_key = separator;
  std::unique_lock<SharedMutex> sib_latch(sib->latch);
  sib->latch.AssertHeld();
  sib->high_key = leaf->high_key;
  sib->has_high_key = leaf->has_high_key;
  sib->base_entries.assign(
      std::make_move_iterator(leaf->base_entries.begin() + mid),
      std::make_move_iterator(leaf->base_entries.end()));
  leaf->base_entries.resize(mid);
  leaf->high_key = separator;
  leaf->has_high_key = true;

  const Lsn lsn = NextLsn();
  leaf->last_lsn = lsn;
  sib->last_lsn = lsn;

  index_.InsertPage(std::move(sibling));
  index_.InsertRoute(separator, sib->id);

  if (opts_.listener != nullptr) {
    opts_.listener->OnSplit(opts_.tree_id, leaf->id, sib->id, lsn, separator);
  }

  if (opts_.flush_mode == FlushMode::kSync) {
    BG3_RETURN_IF_ERROR(AppendBaseLocked(leaf, ctx));
    BG3_RETURN_IF_ERROR(AppendBaseLocked(sib, ctx));
    if (!old_base.IsNull()) store_->MarkInvalid(old_base);
    for (const auto& p : old_deltas) store_->MarkInvalid(p);
    NotifyFlushedLocked(leaf);
    NotifyFlushedLocked(sib);
  } else if (opts_.flush_mode == FlushMode::kDeferred) {
    leaf->dirty = true;
    sib->dirty = true;
  }
  CheckLeafInvariantsLocked(leaf);
  CheckLeafInvariantsLocked(sib);
  if (BG3_DCHECK_IS_ON()) index_.CheckInvariants();
  return Status::OK();
}

Status BwTree::AppendBaseLocked(LeafPage* leaf, const OpContext* ctx) {
  const std::string record = EncodeBasePage(opts_.tree_id, leaf->id,
                                            leaf->last_lsn, leaf->base_entries);
  auto res = RetryingAppend(opts_.base_stream, record, ctx);
  BG3_RETURN_IF_ERROR(res.status());
  leaf->base_ptr = res.value();
  leaf->flushed_lsn = leaf->last_lsn;
  leaf->dirty = false;
  return Status::OK();
}

Status BwTree::AppendDeltaLocked(LeafPage* leaf, LeafPage::Delta* delta,
                                 Lsn lsn, const OpContext* ctx) {
  const std::string record =
      EncodeDelta(opts_.tree_id, leaf->id, lsn, delta->entries);
  auto res = RetryingAppend(opts_.delta_stream, record, ctx);
  BG3_RETURN_IF_ERROR(res.status());
  delta->ptr = res.value();
  leaf->flushed_lsn = lsn;
  return Status::OK();
}

void BwTree::NotifyFlushedLocked(LeafPage* leaf) {
  if (opts_.listener == nullptr) return;
  std::vector<cloud::PagePointer> delta_ptrs;
  for (auto it = leaf->chain.rbegin(); it != leaf->chain.rend(); ++it) {
    if (!it->ptr.IsNull()) delta_ptrs.push_back(it->ptr);
  }
  opts_.listener->OnPageFlushed(opts_.tree_id, leaf->id, leaf->flushed_lsn,
                                leaf->base_ptr, delta_ptrs, leaf->low_key,
                                leaf->high_key, leaf->has_high_key);
}

void BwTree::CheckLeafInvariantsLocked(LeafPage* leaf) {
  if (!BG3_DCHECK_IS_ON()) return;
  if (opts_.delta_mode == DeltaMode::kReadOptimized) {
    // Algorithm 1: a read-optimized page carries at most one delta, so a
    // cache-miss read costs at most two storage reads.
    BG3_DCHECK_LE(leaf->chain.size(), 1u)
        << "read-optimized page " << leaf->id << " grew a delta chain";
  }
  BG3_DCHECK_LE(leaf->flushed_lsn, leaf->last_lsn)
      << "page " << leaf->id << " storage images ahead of memory state";
  BG3_DCHECK(!leaf->dirty || opts_.flush_mode == FlushMode::kDeferred)
      << "page " << leaf->id << " dirty outside deferred-flush mode";
  BG3_DCHECK(!leaf->has_high_key || leaf->low_key < leaf->high_key)
      << "page " << leaf->id << " has an inverted key range";
  if (leaf->resident) {
    const auto dup = std::adjacent_find(
        leaf->base_entries.begin(), leaf->base_entries.end(),
        [](const Entry& a, const Entry& b) { return a.key >= b.key; });
    BG3_DCHECK(dup == leaf->base_entries.end())
        << "page " << leaf->id << " base entries not strictly sorted";
  }
}

Result<std::string> BwTree::Get(const Slice& key, const OpContext* ctx) {
  BG3_TIMED_SCOPE("bg3.bwtree.get_ns");
  stats_.gets.Inc();
  BG3_RETURN_IF_ERROR(CheckDeadline(ctx, "bwtree get"));

  if (opts_.read_cache == ReadCacheMode::kNone) {
    // Zero-cache path: fetch the storage images — one read for the base
    // page plus one per delta (the I/O cost Fig. 9 measures). Read-only on
    // the leaf, so concurrent point reads share the latch.
    std::shared_lock<SharedMutex> lock;
    LeafPage* leaf = FindAndLatchLeafShared(key, &lock);
    leaf->latch.AssertReaderHeld();
    std::vector<Entry> merged;
    BG3_RETURN_IF_ERROR(LoadMergedFromStorageLocked(leaf, &merged, ctx));
    std::string value;
    if (LookupInBase(merged, key, &value)) return value;
    return Status::NotFound("no such key");
  }

  // Full-cache fast path: check the delta chain newest-first, then the
  // resident base — all under a shared latch, so readers of one hot leaf
  // never serialize behind each other.
  {
    std::shared_lock<SharedMutex> lock;
    LeafPage* leaf = FindAndLatchLeafShared(key, &lock);
    leaf->latch.AssertReaderHeld();
    std::string value;
    bool deleted = false;
    for (const auto& d : leaf->chain) {
      if (LookupInDelta(d.entries, key, &value, &deleted)) {
        if (deleted) return Status::NotFound("deleted");
        return value;
      }
    }
    if (leaf->resident) {
      if (LookupInBase(leaf->base_entries, key, &value)) return value;
      return Status::NotFound("no such key");
    }
  }

  // Cache miss on an evicted leaf: the reload mutates the page, so retake
  // the latch exclusively and redo the lookup from scratch (the page may
  // have changed while unlatched).
  std::unique_lock<SharedMutex> lock;
  LeafPage* leaf = FindAndLatchLeafExclusive(key, &lock);
  leaf->latch.AssertHeld();
  std::string value;
  bool deleted = false;
  for (const auto& d : leaf->chain) {
    if (LookupInDelta(d.entries, key, &value, &deleted)) {
      if (deleted) return Status::NotFound("deleted");
      return value;
    }
  }
  BG3_RETURN_IF_ERROR(EnsureResidentLocked(leaf, ctx));
  if (LookupInBase(leaf->base_entries, key, &value)) return value;
  return Status::NotFound("no such key");
}

Status BwTree::LoadMergedFromStorageLocked(LeafPage* leaf,
                                           std::vector<Entry>* out,
                                           const OpContext* ctx) {
  out->clear();
  std::vector<Entry> base;
  if (!leaf->base_ptr.IsNull()) {
    auto res = RetryingRead(leaf->base_ptr, ctx);
    if (!res.ok()) {
      if (!(opts_.tolerate_missing_extents && res.status().IsIOError())) {
        return res.status();
      }
    } else {
      Slice in(res.value());
      RecordHeader header;
      BG3_RETURN_IF_ERROR(DecodeRecordHeader(&in, &header));
      BG3_RETURN_IF_ERROR(DecodeBasePagePayload(in, &base));
    }
  }
  std::vector<std::vector<DeltaEntry>> chains;  // oldest-first
  for (auto it = leaf->chain.rbegin(); it != leaf->chain.rend(); ++it) {
    if (it->ptr.IsNull()) continue;
    auto res = RetryingRead(it->ptr, ctx);
    if (!res.ok()) {
      if (opts_.tolerate_missing_extents && res.status().IsIOError()) continue;
      return res.status();
    }
    Slice in(res.value());
    RecordHeader header;
    BG3_RETURN_IF_ERROR(DecodeRecordHeader(&in, &header));
    std::vector<DeltaEntry> entries;
    BG3_RETURN_IF_ERROR(DecodeDeltaPayload(in, &entries));
    chains.push_back(std::move(entries));
  }
  std::vector<const std::vector<DeltaEntry>*> chain_ptrs;
  chain_ptrs.reserve(chains.size());
  for (const auto& c : chains) chain_ptrs.push_back(&c);
  *out = ApplyDeltaChain(std::move(base), chain_ptrs);
  return Status::OK();
}

Status BwTree::MergedViewLocked(LeafPage* leaf, std::vector<Entry>* out,
                                const OpContext* ctx) {
  if (opts_.read_cache == ReadCacheMode::kNone) {
    return LoadMergedFromStorageLocked(leaf, out, ctx);
  }
  std::vector<const std::vector<DeltaEntry>*> oldest_first;
  for (auto it = leaf->chain.rbegin(); it != leaf->chain.rend(); ++it) {
    oldest_first.push_back(&it->entries);
  }
  *out = ApplyDeltaChain(leaf->base_entries, oldest_first);
  return Status::OK();
}

Status BwTree::CollectRangeLocked(LeafPage* leaf, const std::string& start,
                                  const std::string& end, size_t limit,
                                  std::vector<Entry>* out,
                                  const OpContext* ctx) {
  const bool bounded = !end.empty();
  if (opts_.read_cache == ReadCacheMode::kNone) {
    // Storage-backed read: the whole page must be fetched anyway.
    std::vector<Entry> view;
    BG3_RETURN_IF_ERROR(LoadMergedFromStorageLocked(leaf, &view, ctx));
    auto it = std::lower_bound(
        view.begin(), view.end(), start,
        [](const Entry& e, const std::string& k) { return e.key < k; });
    for (; it != view.end() && out->size() < limit; ++it) {
      if (bounded && it->key >= end) break;
      out->push_back(std::move(*it));
    }
    return Status::OK();
  }
  // In-memory fast path: merge-iterate the sorted base with a small overlay
  // built from the (short) delta chain — O(limit + chain), not O(page).
  // Read-only: the caller made the leaf resident before collecting (Scan's
  // exclusive-reload fallback handles evicted leaves).
  BG3_DCHECK(leaf->resident);
  std::map<std::string, const DeltaEntry*> overlay;  // newest wins
  for (auto cit = leaf->chain.rbegin(); cit != leaf->chain.rend(); ++cit) {
    for (const DeltaEntry& e : cit->entries) {
      if (e.key < start) continue;
      if (bounded && e.key >= end) continue;
      overlay[e.key] = &e;
    }
  }
  auto bit = std::lower_bound(
      leaf->base_entries.begin(), leaf->base_entries.end(), start,
      [](const Entry& e, const std::string& k) { return e.key < k; });
  auto oit = overlay.begin();
  while (out->size() < limit) {
    const bool base_ok = bit != leaf->base_entries.end() &&
                         !(bounded && bit->key >= end);
    const bool over_ok = oit != overlay.end();
    if (!base_ok && !over_ok) break;
    if (over_ok && (!base_ok || oit->first <= bit->key)) {
      const bool shadows_base = base_ok && oit->first == bit->key;
      if (oit->second->op == DeltaOp::kUpsert) {
        out->push_back(Entry{oit->first, oit->second->value});
      }
      if (shadows_base) ++bit;
      ++oit;
    } else {
      out->push_back(*bit);
      ++bit;
    }
  }
  return Status::OK();
}

Status BwTree::Scan(const ScanOptions& options, std::vector<Entry>* out,
                    const OpContext* ctx) {
  BG3_TIMED_SCOPE("bg3.bwtree.scan_ns");
  stats_.scans.Inc();
  std::string cursor = options.start_key;
  const size_t target = options.limit == std::numeric_limits<size_t>::max()
                            ? options.limit
                            : out->size() + options.limit;
  const bool bounded_end = !options.end_key.empty();
  for (;;) {
    if (out->size() >= target) return Status::OK();
    // Per-hop deadline check: a long scan over many leaves stops at the
    // first hop past the deadline instead of finishing the range.
    BG3_RETURN_IF_ERROR(CheckDeadline(ctx, "bwtree scan"));
    {
      // Shared-latch fast path: collect from a resident leaf (or via the
      // storage images in zero-cache mode) without blocking other readers.
      std::shared_lock<SharedMutex> lock;
      LeafPage* leaf = FindAndLatchLeafShared(cursor, &lock);
      leaf->latch.AssertReaderHeld();
      if (opts_.read_cache == ReadCacheMode::kNone || leaf->resident) {
        BG3_RETURN_IF_ERROR(CollectRangeLocked(leaf, cursor, options.end_key,
                                               target, out, ctx));
        if (out->size() >= target) return Status::OK();
        if (!leaf->has_high_key) return Status::OK();
        if (bounded_end && leaf->high_key >= options.end_key) {
          return Status::OK();
        }
        cursor = leaf->high_key;
        continue;
      }
    }
    // Evicted leaf: the reload mutates the page — retake exclusively,
    // reload, then collect this hop under the exclusive latch.
    std::unique_lock<SharedMutex> lock;
    LeafPage* leaf = FindAndLatchLeafExclusive(cursor, &lock);
    leaf->latch.AssertHeld();
    BG3_RETURN_IF_ERROR(EnsureResidentLocked(leaf, ctx));
    BG3_RETURN_IF_ERROR(CollectRangeLocked(leaf, cursor, options.end_key,
                                           target, out, ctx));
    if (out->size() >= target) return Status::OK();
    if (!leaf->has_high_key) return Status::OK();
    if (bounded_end && leaf->high_key >= options.end_key) return Status::OK();
    cursor = leaf->high_key;
  }
}

std::vector<PageId> BwTree::DirtyPageIds() const {
  std::vector<PageId> out;
  index_.ForEachPage([&out](LeafPage* p) {
    ReaderMutexLock lock(&p->latch);
    if (p->dirty) out.push_back(p->id);
  });
  return out;
}

Status BwTree::FlushPage(PageId id) {
  LeafPage* leaf = index_.FindPage(id);
  if (leaf == nullptr) return Status::NotFound("page");
  WriterMutexLock lock(&leaf->latch);
  if (!leaf->dirty) return Status::OK();
  BG3_RETURN_IF_ERROR(EnsureResidentLocked(leaf));
  // Deferred flushing always writes a consolidated image (group commit of
  // §3.4 flushes whole dirty pages).
  const cloud::PagePointer old_base = leaf->base_ptr;
  FoldChainLocked(leaf);
  leaf->chain.clear();
  BG3_RETURN_IF_ERROR(AppendBaseLocked(leaf));
  if (!old_base.IsNull()) store_->MarkInvalid(old_base);
  NotifyFlushedLocked(leaf);
  CheckLeafInvariantsLocked(leaf);
  return Status::OK();
}

size_t BwTree::FlushDirtyPages(size_t max_pages) {
  size_t flushed = 0;
  for (PageId id : DirtyPageIds()) {
    if (flushed >= max_pages) break;
    if (FlushPage(id).ok()) ++flushed;
  }
  return flushed;
}

Result<uint64_t> BwTree::Relocate(const cloud::PagePointer& old_ptr,
                                  const Slice& record_bytes) {
  Slice in = record_bytes;
  RecordHeader header;
  BG3_RETURN_IF_ERROR(DecodeRecordHeader(&in, &header));
  if (header.tree_id != opts_.tree_id) {
    return Status::InvalidArgument("record belongs to another tree");
  }
  LeafPage* leaf = index_.FindPage(header.page_id);
  if (leaf == nullptr) {
    // The page no longer exists; the record is garbage.
    store_->MarkInvalid(old_ptr);
    return uint64_t{0};
  }
  WriterMutexLock lock(&leaf->latch);
  if (header.kind == RecordKind::kBasePage && leaf->base_ptr == old_ptr) {
    auto res = RetryingAppend(opts_.base_stream, record_bytes);
    BG3_RETURN_IF_ERROR(res.status());
    leaf->base_ptr = res.value();
    store_->MarkInvalid(old_ptr);
    NotifyFlushedLocked(leaf);
    return static_cast<uint64_t>(record_bytes.size());
  }
  if (header.kind == RecordKind::kDelta) {
    for (auto& d : leaf->chain) {
      if (d.ptr == old_ptr) {
        auto res = RetryingAppend(opts_.delta_stream, record_bytes);
        BG3_RETURN_IF_ERROR(res.status());
        d.ptr = res.value();
        store_->MarkInvalid(old_ptr);
        NotifyFlushedLocked(leaf);
        return static_cast<uint64_t>(record_bytes.size());
      }
    }
  }
  // Stale record (superseded concurrently): nothing to move.
  store_->MarkInvalid(old_ptr);
  return uint64_t{0};
}

size_t BwTree::CountEntries() const {
  size_t count = 0;
  index_.ForEachPage([&count](LeafPage* p) {
    ReaderMutexLock lock(&p->latch);
    std::vector<Entry> view;
    std::vector<const std::vector<DeltaEntry>*> oldest_first;
    for (auto it = p->chain.rbegin(); it != p->chain.rend(); ++it) {
      oldest_first.push_back(&it->entries);
    }
    view = ApplyDeltaChain(p->base_entries, oldest_first);
    count += view.size();
  });
  return count;
}

size_t BwTree::ApproxMemoryBytes() const {
  size_t bytes = sizeof(*this) + index_.ApproxIndexBytes();
  index_.ForEachPage([&bytes](LeafPage* p) {
    ReaderMutexLock lock(&p->latch);
    bytes += EntryBytes(p->base_entries);
    bytes += p->low_key.capacity() + p->high_key.capacity();
    for (const auto& d : p->chain) {
      bytes += sizeof(d) + DeltaBytes(d.entries);
    }
  });
  return bytes;
}

}  // namespace bg3::bwtree
