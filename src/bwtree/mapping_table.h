#ifndef BG3_BWTREE_MAPPING_TABLE_H_
#define BG3_BWTREE_MAPPING_TABLE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "bwtree/page.h"
#include "cloud/types.h"
#include "common/thread_annotations.h"

namespace bg3::bwtree {

/// In-memory state of one Bw-tree leaf ("Edge Node"). The base entries plus
/// the delta chain are the authoritative content on the writer node; the
/// PagePointers record where the current storage images live.
///
/// Guarded by `latch` — a reader-writer latch standing in for the "classic
/// lightweight locking mechanism [20]" the paper uses to serialize
/// concurrent modifications of one page. Mutations, consolidation, split
/// and eviction take it exclusive; Get/Scan take it shared so readers never
/// serialize behind each other (the read-side scaling of Figs. 9/11/14).
/// Exclusive acquisitions are the unit of write contention measured in
/// Fig. 11.
struct LeafPage {
  explicit LeafPage(PageId id_in) : id(id_in) {}

  SharedMutex latch;
  const PageId id;
  /// Inclusive lower bound of this leaf's key range. Immutable once the
  /// page is published through PageIndex (a split never moves a leaf's low
  /// key; the sibling takes the upper half), so it is readable without the
  /// latch — PageIndex::NextLeaf and the per-thread leaf hint rely on this.
  std::string low_key;
  /// Exclusive upper bound; empty = +infinity. Shrinks on split.
  std::string high_key BG3_GUARDED_BY(latch);
  bool has_high_key BG3_GUARDED_BY(latch) = false;

  /// Sorted base entries as of the last consolidation.
  std::vector<Entry> base_entries BG3_GUARDED_BY(latch);
  /// Storage location of the base image (null before first flush).
  cloud::PagePointer base_ptr BG3_GUARDED_BY(latch);

  /// One element of the delta chain; `ptr` is its storage image location
  /// (null in deferred-flush mode where durability comes from the WAL).
  /// `update_count` is Algorithm 1's delta.count: the number of updates
  /// folded into this delta (not its unique-key cardinality) — the
  /// consolidation trigger compares against it.
  struct Delta {
    std::vector<DeltaEntry> entries;
    cloud::PagePointer ptr;
    uint32_t update_count = 1;
  };
  /// Newest first. Read-optimized mode maintains size() <= 1 (§3.2.2).
  std::vector<Delta> chain BG3_GUARDED_BY(latch);

  /// LSN of the newest mutation applied in memory.
  Lsn last_lsn BG3_GUARDED_BY(latch) = 0;
  /// LSN covered by the storage images.
  Lsn flushed_lsn BG3_GUARDED_BY(latch) = 0;
  /// Deferred mode: memory ahead of storage images.
  bool dirty BG3_GUARDED_BY(latch) = false;

  /// False when base_entries were dropped under memory pressure; the base
  /// image at base_ptr is then the authoritative copy and gets reloaded on
  /// the next access (the BGS layer is a cache, not the store, §2.1).
  bool resident BG3_GUARDED_BY(latch) = true;
  /// Access tick for LRU eviction, drawn from the tree's tick source (which
  /// a forest shares across its trees so ticks are comparable forest-wide).
  /// Atomic rather than latch-guarded: shared-latch readers update it too.
  std::atomic<uint64_t> last_access_tick{0};
};

/// Immutable published view of the route table: leaf low keys in sorted
/// order plus the pages they resolve to (parallel vectors, binary-searched).
/// A new snapshot is published on every split; readers binary-search a
/// thread-locally cached snapshot without taking any lock. `pages[i]` may be
/// null only if the route was inserted for a page id the mapping table does
/// not know (a corruption the invariant walker and FindLeaf both abort on).
struct RouteSnapshot {
  std::vector<std::string> keys;
  std::vector<PageId> ids;
  std::vector<LeafPage*> pages;
};

/// Page directory of one tree: the mapping table (page id -> page) plus the
/// route table (leaf low key -> page) standing in for the Root/Meta levels
/// of the paper's edge tree.
///
/// Routing is lock-light: the route table is published as an immutable
/// RouteSnapshot under a version counter. FindLeaf validates a thread-local
/// cached snapshot against the version with one atomic load and
/// binary-searches it without taking `mu_`; only snapshot refreshes (first
/// use per thread, or after a split bumped the version) touch the shared
/// lock. A per-thread last-leaf hint — validated against the immutable
/// `low_key` and a cached copy of the upper bound — skips even the binary
/// search on key-locality workloads. Structure modifications (page/route
/// inserts) take the exclusive lock and publish a fresh snapshot.
///
/// Lock ordering: callers must NOT hold any leaf latch while calling
/// methods that take the exclusive lock, except InsertRoute/InsertPage
/// which are explicitly designed to be called while latching the splitting
/// leaf (no reader ever waits on a leaf latch while holding the index
/// lock, and snapshot refreshes never run with a latch held).
class PageIndex {
 public:
  PageIndex();
  PageIndex(const PageIndex&) = delete;
  PageIndex& operator=(const PageIndex&) = delete;

  /// Registers a new page (takes ownership).
  LeafPage* InsertPage(std::unique_ptr<LeafPage> page);

  /// Adds a route entry low_key -> page (split completion) and publishes a
  /// fresh route snapshot.
  void InsertRoute(const std::string& low_key, PageId page);

  /// Page responsible for `key` per the (thread-locally cached) route
  /// snapshot, or nullptr if the tree has no pages yet. Lock-free on the
  /// fast path. The caller must re-validate the key range after latching
  /// (the page may have split in between) and fall back to FindLeafFresh
  /// on a failed validation.
  LeafPage* FindLeaf(const Slice& key) const;

  /// FindLeaf with a forced refresh: drops the thread's leaf hint, reloads
  /// the route snapshot under the shared lock, then searches. Used after a
  /// range validation failed (stale snapshot or stale hint); guarantees the
  /// result reflects every split published before the call.
  LeafPage* FindLeafFresh(const Slice& key) const;

  /// Records `leaf` as this thread's last-leaf hint. `upper`/`has_upper`
  /// are the leaf's current high key, which the caller reads under the
  /// latch; the hint matches only keys inside [low_key, upper).
  void NoteLeafHint(LeafPage* leaf, const std::string& upper,
                    bool has_upper) const;

  LeafPage* FindPage(PageId id) const;

  /// Leaf following `page` in key order (nullptr if last).
  LeafPage* NextLeaf(const LeafPage& page) const;

  size_t PageCount() const;

  /// Published snapshot version; bumps on every route change.
  uint64_t RouteVersion() const {
    return route_version_.load(std::memory_order_acquire);
  }

  /// Applies `fn` to every page, in key order, without holding any latch.
  void ForEachPage(const std::function<void(LeafPage*)>& fn) const;

  /// Approximate heap footprint of the directory structures themselves
  /// (route snapshot + hash buckets), excluding page payloads.
  size_t ApproxIndexBytes() const;

  /// Debug invariant walker (aborts via BG3_CHECK on violation):
  ///  - the route snapshot is empty or starts at the empty (minimal) key;
  ///  - every route entry resolves to a live page in the mapping table;
  ///  - a route entry's key equals its page's low key (checked
  ///    opportunistically with a shared try-lock so the walker can run
  ///    while writers hold latches — it must never introduce a
  ///    latch->index lock-order inversion).
  /// Called from BG3_DCHECK hooks at split boundaries and from tests.
  void CheckInvariants() const;

 private:
  /// Binary-searches `snap` for the leaf owning `key`.
  static LeafPage* Lookup(const RouteSnapshot& snap, const Slice& key);

  /// Process-unique id keying the thread-local snapshot cache (so a cache
  /// slot warmed by a destroyed index can never be mistaken for this one).
  const uint64_t instance_id_;
  /// Bumped (release) after each snapshot publication; readers validate
  /// their cached snapshot against it with one acquire load.
  std::atomic<uint64_t> route_version_{0};

  mutable SharedMutex mu_;
  std::shared_ptr<const RouteSnapshot> snapshot_ BG3_GUARDED_BY(mu_);
  std::unordered_map<PageId, std::unique_ptr<LeafPage>> pages_
      BG3_GUARDED_BY(mu_);
};

}  // namespace bg3::bwtree

#endif  // BG3_BWTREE_MAPPING_TABLE_H_
