#ifndef BG3_BWTREE_MAPPING_TABLE_H_
#define BG3_BWTREE_MAPPING_TABLE_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "bwtree/page.h"
#include "cloud/types.h"
#include "common/thread_annotations.h"

namespace bg3::bwtree {

/// In-memory state of one Bw-tree leaf ("Edge Node"). The base entries plus
/// the delta chain are the authoritative content on the writer node; the
/// PagePointers record where the current storage images live.
///
/// Guarded by `latch` — the "classic lightweight locking mechanism [20]"
/// the paper uses to serialize concurrent modifications of one page. The
/// latch is the unit of write contention measured in Fig. 11.
struct LeafPage {
  explicit LeafPage(PageId id_in) : id(id_in) {}

  Mutex latch;
  const PageId id;
  /// Inclusive lower bound of this leaf's key range. Immutable once the
  /// page is published through PageIndex (a split never moves a leaf's low
  /// key; the sibling takes the upper half), so it is readable without the
  /// latch — PageIndex::NextLeaf relies on this.
  std::string low_key;
  /// Exclusive upper bound; empty = +infinity. Shrinks on split.
  std::string high_key BG3_GUARDED_BY(latch);
  bool has_high_key BG3_GUARDED_BY(latch) = false;

  /// Sorted base entries as of the last consolidation.
  std::vector<Entry> base_entries BG3_GUARDED_BY(latch);
  /// Storage location of the base image (null before first flush).
  cloud::PagePointer base_ptr BG3_GUARDED_BY(latch);

  /// One element of the delta chain; `ptr` is its storage image location
  /// (null in deferred-flush mode where durability comes from the WAL).
  /// `update_count` is Algorithm 1's delta.count: the number of updates
  /// folded into this delta (not its unique-key cardinality) — the
  /// consolidation trigger compares against it.
  struct Delta {
    std::vector<DeltaEntry> entries;
    cloud::PagePointer ptr;
    uint32_t update_count = 1;
  };
  /// Newest first. Read-optimized mode maintains size() <= 1 (§3.2.2).
  std::vector<Delta> chain BG3_GUARDED_BY(latch);

  /// LSN of the newest mutation applied in memory.
  Lsn last_lsn BG3_GUARDED_BY(latch) = 0;
  /// LSN covered by the storage images.
  Lsn flushed_lsn BG3_GUARDED_BY(latch) = 0;
  /// Deferred mode: memory ahead of storage images.
  bool dirty BG3_GUARDED_BY(latch) = false;

  /// False when base_entries were dropped under memory pressure; the base
  /// image at base_ptr is then the authoritative copy and gets reloaded on
  /// the next access (the BGS layer is a cache, not the store, §2.1).
  bool resident BG3_GUARDED_BY(latch) = true;
  /// Tree-local access tick for LRU eviction.
  uint64_t last_access_tick BG3_GUARDED_BY(latch) = 0;
};

/// Page directory of one tree: the mapping table (page id -> page) plus the
/// route table (leaf low key -> page id) standing in for the Root/Meta
/// levels of the paper's edge tree. Lookups take a shared lock; only
/// structure modifications (splits) take the exclusive lock.
///
/// Lock ordering: callers must NOT hold any leaf latch while calling
/// methods that take the exclusive lock, except InsertRoute which is
/// explicitly designed to be called while latching the splitting leaf (no
/// reader ever waits on a leaf latch while holding the index lock).
class PageIndex {
 public:
  PageIndex() = default;
  PageIndex(const PageIndex&) = delete;
  PageIndex& operator=(const PageIndex&) = delete;

  /// Registers a new page (takes ownership).
  LeafPage* InsertPage(std::unique_ptr<LeafPage> page);

  /// Adds a route entry low_key -> page (split completion).
  void InsertRoute(const std::string& low_key, PageId page);

  /// Page responsible for `key` per the route table, or nullptr if the tree
  /// has no pages yet. The caller must re-validate the key range after
  /// latching (the page may have split in between).
  LeafPage* FindLeaf(const Slice& key) const;

  LeafPage* FindPage(PageId id) const;

  /// Leaf following `page` in key order (nullptr if last).
  LeafPage* NextLeaf(const LeafPage& page) const;

  size_t PageCount() const;

  /// Applies `fn` to every page, in key order, without holding any latch.
  void ForEachPage(const std::function<void(LeafPage*)>& fn) const;

  /// Approximate heap footprint of the directory structures themselves
  /// (route map nodes + hash buckets), excluding page payloads.
  size_t ApproxIndexBytes() const;

  /// Debug invariant walker (aborts via BG3_CHECK on violation):
  ///  - the route table is empty or starts at the empty (minimal) key;
  ///  - every route entry resolves to a live page in the mapping table;
  ///  - a route entry's key equals its page's low key (checked
  ///    opportunistically with a try-lock so the walker can run while
  ///    writers hold latches — it must never introduce a latch->index
  ///    lock-order inversion).
  /// Called from BG3_DCHECK hooks at split boundaries and from tests.
  void CheckInvariants() const;

 private:
  mutable SharedMutex mu_;
  std::map<std::string, PageId> route_ BG3_GUARDED_BY(mu_);
  std::unordered_map<PageId, std::unique_ptr<LeafPage>> pages_
      BG3_GUARDED_BY(mu_);
};

}  // namespace bg3::bwtree

#endif  // BG3_BWTREE_MAPPING_TABLE_H_
