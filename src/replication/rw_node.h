#ifndef BG3_REPLICATION_RW_NODE_H_
#define BG3_REPLICATION_RW_NODE_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bwtree/bwtree.h"
#include "bwtree/listener.h"
#include "common/metrics.h"
#include "common/thread_annotations.h"
#include "replication/page_image.h"
#include "replication/ro_node.h"
#include "wal/writer.h"

namespace bg3::replication {

struct RwNodeOptions {
  /// Tree configuration; flush_mode is forced to kDeferred (the RW node is
  /// the group-commit flusher of §3.4) and the listener is the node itself.
  bwtree::BwTreeOptions tree;
  wal::WalWriterOptions wal;
  /// Group commit: flush once this many pages are dirty ("accumulated dirty
  /// pages on the RW are flushed by a background thread once [they] reach a
  /// specific threshold").
  size_t flush_group_pages = 64;
  /// Also flush once this many mutations accumulated since the last
  /// checkpoint (bounds RO replay-log growth when the working set is small
  /// and the dirty-page threshold alone would never trigger).
  uint64_t flush_group_mutations = 8192;

  /// Graceful write degradation (DESIGN.md §5.5): once the WAL flush
  /// backlog (records buffered because batch appends keep failing) reaches
  /// this many records, Put/Delete shed with Status::Overloaded instead of
  /// growing the backlog without bound — reads keep serving from memory.
  /// 0 disables the watermark (historical behavior).
  size_t wal_backlog_watermark = 0;

  /// Run threshold-triggered group flushes on a dedicated background thread
  /// (the paper's "flushed by a background thread"), unifying them with the
  /// WAL pipeline's off-caller-thread I/O: a Put/Delete that crosses the
  /// dirty threshold just signals the flusher and returns, instead of
  /// paying the page-flush + publication round trip inline. Explicit
  /// FlushGroup()/CommitCheckpoint() calls stay synchronous. Off by default
  /// (historical inline behavior, which deterministic tests rely on).
  bool async_group_flush = false;
};

/// The Read/Write node of BG3's write-once read-many architecture (§3.4,
/// Fig. 7). Every mutation is applied to the in-memory Bw-tree and logged
/// to the WAL on shared storage (steps (1)-(2)); dirty pages are flushed in
/// groups (step (7)); after a group the node publishes new page-table
/// versions to the shared mapping area and appends a checkpoint record
/// (step (8)).
class RwNode : public bwtree::TreeListener {
 public:
  RwNode(cloud::CloudStore* store, const RwNodeOptions& options);
  /// Joins the background group flusher (async_group_flush), running any
  /// signalled-but-unstarted flush first. WAL teardown (and its loss
  /// surface) is the WalWriter destructor's.
  ~RwNode();

  /// Crash recovery: rebuilds an RW node purely from shared storage — the
  /// published mapping-table images plus WAL replay (the same machinery RO
  /// nodes use for lazy page reconstruction). The recovered node continues
  /// the existing WAL (LSNs resume after the highest recovered LSN), so RO
  /// nodes that were tailing before the crash keep working unchanged.
  static Result<std::unique_ptr<RwNode>> Recover(cloud::CloudStore* store,
                                                 const RwNodeOptions& options);

  /// Builds an RW node from an already-materialized tree export (the tail
  /// half of Recover(); RwRestart uses it after demand-driven restore). The
  /// export's clean/dirty page marking bounds the install-time flush to the
  /// pages the WAL suffix actually touched — restart work is proportional
  /// to the suffix, not the database.
  static Result<std::unique_ptr<RwNode>> FromExport(
      cloud::CloudStore* store, const RwNodeOptions& options,
      RoNode::ExportedTree&& exported);

  RwNode(const RwNode&) = delete;
  RwNode& operator=(const RwNode&) = delete;

  /// Writes shed with Overloaded once the WAL backlog watermark is hit;
  /// reads are never shed here. The optional OpContext deadline threads
  /// through the tree and WAL I/O beneath.
  Status Put(const Slice& key, const Slice& value,
             const OpContext* ctx = nullptr);
  Status Delete(const Slice& key, const OpContext* ctx = nullptr);
  Result<std::string> Get(const Slice& key, const OpContext* ctx = nullptr);
  Status Scan(const bwtree::BwTree::ScanOptions& options,
              std::vector<bwtree::Entry>* out, const OpContext* ctx = nullptr);

  /// Writes shed by the WAL-backlog watermark so far.
  uint64_t writes_shed() const { return writes_shed_.Get(); }

  /// WAL appends dropped from the void observer callbacks (OnTreeInit /
  /// OnMutation / OnSplit). Non-zero means RO followers may be missing
  /// records until the next group flush rewrites the tail; monitor it.
  uint64_t wal_append_errors() const { return wal_append_errors_.Get(); }

  /// Flushes a dirty-page group if the threshold is reached (with
  /// async_group_flush: signals the background flusher and returns).
  Status MaybeFlushGroup();
  /// Group flushes handed to the background flusher / failed there.
  uint64_t async_flushes() const { return async_flushes_.Get(); }
  uint64_t async_flush_errors() const { return async_flush_errors_.Get(); }
  /// Flushes all dirty pages, publishes their mapping entries (children
  /// before parents) and appends the checkpoint WAL record.
  Status FlushGroup();

  /// Publishes every staged mapping entry and appends a checkpoint WAL
  /// record announcing coverage through `checkpoint_lsn`. The incremental
  /// (fuzzy) checkpoint commit path: the Checkpointer has already flushed
  /// the pages of its cut, one bounded round at a time, and calls this once
  /// the cut drains. Never regresses last_checkpoint_lsn (a concurrent
  /// group flush may have checkpointed further).
  Status CommitCheckpoint(bwtree::Lsn checkpoint_lsn);

  bwtree::BwTree* tree() { return tree_.get(); }
  wal::WalWriter* wal_writer() { return &wal_; }
  const RwNodeOptions& options() const { return opts_; }

  /// Newest LSN handed out; mutations at or below it are in memory and
  /// (once the WAL flushes) durable. The fuzzy-cut capture point.
  bwtree::Lsn CurrentLsn() const {
    return lsn_source_.load(std::memory_order_acquire);
  }

  /// True while flushed-page mapping entries await publication.
  bool HasStagedImages() const {
    MutexLock lock(&staged_mu_);
    return !staged_.empty();
  }

  bwtree::Lsn last_checkpoint_lsn() const {
    return last_checkpoint_.load(std::memory_order_relaxed);
  }

  /// WAL location of the newest checkpoint record. Extents strictly before
  /// it hold only data covered by published images — the upper bound for
  /// safe WAL truncation (fresh readers bootstrap from the manifest).
  cloud::PagePointer last_checkpoint_wal_ptr() const {
    MutexLock lock(&ckpt_ptr_mu_);
    return last_checkpoint_wal_ptr_;
  }

  // --- bwtree::TreeListener ------------------------------------------------
  void OnTreeInit(bwtree::TreeId tree, bwtree::PageId initial_page) override;
  void OnMutation(bwtree::TreeId tree, bwtree::PageId page, bwtree::Lsn lsn,
                  const bwtree::DeltaEntry& entry) override;
  void OnSplit(bwtree::TreeId tree, bwtree::PageId old_page,
               bwtree::PageId new_page, bwtree::Lsn lsn,
               const std::string& separator) override;
  void OnPageFlushed(bwtree::TreeId tree, bwtree::PageId page,
                     bwtree::Lsn flushed_lsn,
                     const cloud::PagePointer& base_ptr,
                     const std::vector<cloud::PagePointer>& delta_ptrs,
                     const std::string& low_key, const std::string& high_key,
                     bool has_high_key) override;

 private:
  struct StagedImage {
    bwtree::TreeId tree;
    bwtree::PageId page;
    PageImageMeta meta;
  };

  struct BootstrapTag {};
  RwNode(BootstrapTag, cloud::CloudStore* store, const RwNodeOptions& options);

  /// Enrolls flush_mu_/staged_mu_/ckpt_ptr_mu_ in debug lock-rank checking.
  void SetLockRanks();

  /// Shared tail of FlushGroup/CommitCheckpoint: WAL flush, staged mapping
  /// publication (children before parents, deduped), checkpoint record.
  /// `force_record` appends the record even with nothing staged (a group
  /// flush that wrote pages whose images were published by a racing commit).
  Status PublishStagedLocked(bwtree::Lsn checkpoint, bool force_record)
      BG3_REQUIRES(flush_mu_);

  cloud::CloudStore* const store_;
  RwNodeOptions opts_;
  wal::WalWriter wal_;
  std::atomic<bwtree::Lsn> lsn_source_{0};
  std::unique_ptr<bwtree::BwTree> tree_;

  Mutex flush_mu_;  ///< one group flush at a time.
  mutable Mutex staged_mu_;
  std::vector<StagedImage> staged_ BG3_GUARDED_BY(staged_mu_);

  mutable Mutex ckpt_ptr_mu_;
  cloud::PagePointer last_checkpoint_wal_ptr_ BG3_GUARDED_BY(ckpt_ptr_mu_);

  std::atomic<bwtree::Lsn> last_checkpoint_{0};

  // Background group flusher (async_group_flush). Plain std::mutex: it only
  // guards the signal flags and never nests inside ranked locks.
  void FlusherMain();
  std::mutex flusher_mu_;
  std::condition_variable flusher_cv_;
  bool flusher_stop_ = false;
  bool flush_requested_ = false;
  std::thread flusher_;

  LightCounter writes_shed_;
  LightCounter wal_append_errors_;
  LightCounter async_flushes_;
  LightCounter async_flush_errors_;
};

}  // namespace bg3::replication

#endif  // BG3_REPLICATION_RW_NODE_H_
