#include "replication/ro_node.h"

#include <algorithm>

#include "common/clock.h"
#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/timed_scope.h"
#include "replication/checkpoint.h"
#include "replication/page_image.h"

namespace bg3::replication {

namespace {

bool KeyInRange(const Slice& key, const std::string& low,
                const std::string& high, bool has_high) {
  return key.compare(Slice(low)) >= 0 &&
         (!has_high || key.compare(Slice(high)) < 0);
}

}  // namespace

RoNode::RoNode(cloud::CloudStore* store, const RoNodeOptions& options)
    : store_(store),
      opts_(options),
      reader_(store, options.wal_stream),
      rng_(options.seed),
      metrics_prefix_("bg3.replication.ro" +
                      std::to_string(MetricsRegistry::NextInstanceId("ro")) +
                      ".") {
  mu_.SetRank(lock_rank::kRoNode_mu, "RoNode::mu_");
  MetricsRegistry& reg = MetricsRegistry::Default();
  reg.RegisterHistogram(metrics_prefix_ + "sync_latency_us", &sync_latency_);
  reg.RegisterCounter(metrics_prefix_ + "cache_hits", &stats_.cache_hits);
  reg.RegisterCounter(metrics_prefix_ + "cache_misses", &stats_.cache_misses);
  reg.RegisterCounter(metrics_prefix_ + "wal_mutations", &stats_.wal_mutations);
  reg.RegisterCounter(metrics_prefix_ + "replayed", &stats_.replayed);
  reg.RegisterCounter(metrics_prefix_ + "storage_reads", &stats_.storage_reads);
  reg.RegisterCounter(metrics_prefix_ + "poll_degraded", &stats_.poll_degraded);
  reg.RegisterGauge(metrics_prefix_ + "overload.degraded", &stats_.degraded);
  reg.RegisterCounter(metrics_prefix_ + "fast_reads", &stats_.fast_reads);
}

RoNode::~RoNode() {
  MetricsRegistry::Default().DeregisterPrefix(metrics_prefix_);
}

Status RoNode::PollWal() {
  BG3_TIMED_SCOPE("bg3.replication.poll_ns");
  OpLayerScope repl_layer(OpLayer::kReplication);
  WriterMutexLock lock(&mu_);
  return PollWalLocked(/*force=*/true);
}

RetryOptions RoNode::StoreRetryOptions(const OpContext* ctx) const {
  RetryOptions retry = opts_.retry;
  retry.retries = &store_->stats().retries;
  retry.retry_exhausted = &store_->stats().retry_exhausted;
  retry.ctx = ctx;
  retry.breaker = &store_->breaker();
  return retry;
}

RetryOptions RoNode::ReadRetryOptions(const OpContext* ctx) const {
  RetryOptions retry = StoreRetryOptions(ctx);
  retry.retry_corruption = true;  // wire corruption is transient
  return retry;
}

Result<std::string> RoNode::RetryingManifestGet(const std::string& key,
                                               const OpContext* ctx) {
  return RetryResultWithBackoff(
      StoreRetryOptions(ctx),
      [&] { return store_->ManifestGet(key, nullptr, ctx); });
}

Result<std::string> RoNode::RetryingStorageRead(const cloud::PagePointer& ptr,
                                                const OpContext* ctx) {
  return RetryResultWithBackoff(ReadRetryOptions(ctx),
                                [&] { return store_->Read(ptr, nullptr, ctx); });
}

Status RoNode::PollWalLocked(bool force) {
  if (!bootstrapped_) {
    BootstrapFromManifestLocked();
    bootstrapped_ = true;
  }
  if (opts_.min_poll_gap_us > 0) {
    const uint64_t now = NowMicros();
    if (!force && now - last_poll_us_ < opts_.min_poll_gap_us) {
      return Status::OK();
    }
    last_poll_us_ = now;
  }
  // Drain everything appended since the last poll (the reader returns at
  // most a bounded batch count per call).
  for (;;) {
    auto records = RetryResultWithBackoff(StoreRetryOptions(),
                                          [&] { return reader_.Poll(); });
    if (!records.ok() && IsRetryableError(StoreRetryOptions(),
                                          records.status())) {
      // Degradation, not failure: the WAL cursor has not moved, so the node
      // simply falls behind and catches up on a later poll. Reads served
      // meanwhile see the last consistently replicated state.
      stats_.poll_degraded.Inc();
      stats_.degraded.Set(1);
      return Status::OK();
    }
    BG3_RETURN_IF_ERROR(records.status());
    if (records.value().empty()) {
      stats_.degraded.Set(0);  // fully caught up with the WAL again.
      return Status::OK();
    }
    for (const wal::WalRecord& rec : records.value()) {
      BG3_RETURN_IF_ERROR(ApplyWalRecordLocked(rec));
    }
  }
}

void RoNode::BootstrapFromManifestLocked() {
  // Suffix-bounded replay (DESIGN.md §5.7): a durable checkpoint manifest
  // promises that published images cover every mutation at or below its
  // LSN, so the WAL reader can seek straight past the checkpoint cursor.
  // Any load failure (never checkpointed, torn slots, substrate down) falls
  // back to the historical full-WAL replay — strictly slower, never wrong.
  if (opts_.resume_from_checkpoint) {
    auto loaded = LoadCheckpoint(
        store_, WalCheckpointScope(opts_.wal_stream), StoreRetryOptions());
    if (loaded.ok()) {
      const CheckpointManifest& m = loaded.value().manifest;
      // Cursor-exact seek: the manifest's (term, seq) lets the reader drop
      // late-landing duplicates of batches the checkpoint already covers.
      reader_.SeekTo(m.WalResumeCursor(), m.checkpoint_lsn);
      max_lsn_seen_ = std::max(max_lsn_seen_, m.checkpoint_lsn);
      resumed_from_checkpoint_ = true;
      checkpoint_fell_back_ = loaded.value().fell_back;
      resume_checkpoint_lsn_ = m.checkpoint_lsn;
    }
  }
  // Published page images carry their key ranges, so the route/meta tables
  // can be seeded without the WAL prefix that created them (which may have
  // been truncated). WAL records that survive truncation re-apply on top:
  // mutations are LSN-gated and split records are range-idempotent.
  for (const auto& [key, value] : store_->ManifestList("pt/")) {
    bwtree::TreeId tree_id;
    bwtree::PageId page_id;
    if (!ParsePageImageKey(key, &tree_id, &page_id)) continue;
    PageImageMeta image;
    if (!PageImageMeta::Decode(Slice(value), &image).ok()) continue;
    TreeState& ts = trees_[tree_id];
    PageMeta meta;
    meta.low_key = image.low_key;
    meta.high_key = image.high_key;
    meta.has_high_key = image.has_high_key;
    ts.meta[page_id] = std::move(meta);
    ts.route[image.low_key] = page_id;
    max_lsn_seen_ = std::max(max_lsn_seen_, image.flushed_lsn);
  }
}

Status RoNode::ApplyWalRecordLocked(const wal::WalRecord& rec) {
  max_lsn_seen_ = std::max(max_lsn_seen_, rec.lsn);
  switch (rec.type) {
    case wal::WalRecord::Type::kTreeInit: {
      TreeState& ts = trees_[rec.tree_id];
      if (!ts.route.empty()) return Status::OK();  // manifest-bootstrapped
      ts.route[""] = rec.page_id;
      PageMeta meta;
      meta.low_key = "";
      meta.has_high_key = false;
      ts.meta[rec.page_id] = std::move(meta);
      return Status::OK();
    }
    case wal::WalRecord::Type::kMutation: {
      TreeState& ts = trees_[rec.tree_id];
      PendingLog& log = ts.pending[rec.page_id];
      log.records.push_back(rec);
      stats_.wal_mutations.Inc();
      // Leader-follower latency sample: publish latency (group wait + WAL
      // append) + tail-poll delay + log read from shared storage.
      const uint64_t poll_wait = rng_.Uniform(opts_.poll_interval_us + 1);
      const uint64_t log_read =
          store_->latency_model().ReadLatencyUs(64 + rec.entry.key.size() +
                                                rec.entry.value.size());
      sync_latency_.Record(rec.sim_publish_latency_us + poll_wait + log_read);
      if (log.records.size() > opts_.pending_compact_threshold &&
          log.records.size() > 2 * log.last_compacted_size) {
        CompactPendingVector(&log.records);
        log.last_compacted_size = log.records.size();
        stats_.pending_merges.Inc();
      }
      return Status::OK();
    }
    case wal::WalRecord::Type::kSplit: {
      TreeState& ts = trees_[rec.tree_id];
      auto mit = ts.meta.find(rec.page_id);
      if (mit == ts.meta.end()) {
        return Status::Corruption("split of unknown page");
      }
      if (ts.meta.count(rec.aux_page_id) > 0) {
        // Replay of a pre-bootstrap split: the manifest layout already
        // reflects it (and possibly later splits); do not widen ranges.
        return Status::OK();
      }
      // Bring a cached copy of the splitting page fully current *before*
      // cutting it, so the new page's cached copy does not miss pending
      // records that predate the split.
      auto cit = cache_.find({rec.tree_id, rec.page_id});
      if (cit != cache_.end()) {
        ApplyPendingLocked(ts, rec.tree_id, rec.page_id, &cit->second);
      }
      PageMeta& old_meta = mit->second;
      PageMeta new_meta;
      new_meta.low_key = rec.separator;
      new_meta.high_key = old_meta.high_key;
      new_meta.has_high_key = old_meta.has_high_key;
      new_meta.parent = rec.page_id;
      new_meta.split_lsn = rec.lsn;
      ts.meta[rec.aux_page_id] = std::move(new_meta);
      old_meta.high_key = rec.separator;
      old_meta.has_high_key = true;
      ts.route[rec.separator] = rec.aux_page_id;
      // Split the cached copy, if any ("the RO node directly creates it in
      // memory" for pages born after the last flush).
      if (cit != cache_.end()) {
        CachedPage upper;
        upper.applied_lsn = cit->second.applied_lsn;
        upper.last_use.store(use_tick_.fetch_add(1, std::memory_order_relaxed) + 1,
                             std::memory_order_relaxed);
        auto& entries = cit->second.entries;
        auto split_at = std::lower_bound(
            entries.begin(), entries.end(), rec.separator,
            [](const bwtree::Entry& e, const std::string& k) {
              return e.key < k;
            });
        upper.entries.assign(std::make_move_iterator(split_at),
                             std::make_move_iterator(entries.end()));
        entries.erase(split_at, entries.end());
        cache_[{rec.tree_id, rec.aux_page_id}] = std::move(upper);
        EvictIfNeededLocked();
      }
      return Status::OK();
    }
    case wal::WalRecord::Type::kCheckpoint: {
      // Storage images now cover everything up to rec.lsn: drop older
      // lazy-replay entries ("once the RO reads this log item, it can
      // discard all records ... with an LSN number less than" it).
      // Cached pages must absorb those records first — a cache-resident
      // copy never re-reads the manifest image, so discarding records it
      // has not applied yet would serve stale data forever.
      for (auto& [tree_id, ts] : trees_) {
        for (auto& [page_id, log] : ts.pending) {
          if (log.records.empty()) continue;
          auto cit = cache_.find({tree_id, page_id});
          if (cit != cache_.end()) {
            ApplyPendingLocked(ts, tree_id, page_id, &cit->second);
          }
          const size_t before = log.records.size();
          std::erase_if(log.records, [&](const wal::WalRecord& r) {
            return r.lsn <= rec.lsn;
          });
          stats_.discarded.Add(before - log.records.size());
          if (log.last_compacted_size > log.records.size()) {
            log.last_compacted_size = log.records.size();
          }
        }
      }
      return Status::OK();
    }
  }
  return Status::Corruption("unknown wal record type");
}

void RoNode::ApplyEntry(std::vector<bwtree::Entry>* entries,
                        const bwtree::DeltaEntry& e) {
  auto it = std::lower_bound(entries->begin(), entries->end(), e.key,
                             [](const bwtree::Entry& a, const std::string& k) {
                               return a.key < k;
                             });
  const bool found = it != entries->end() && it->key == e.key;
  if (e.op == bwtree::DeltaOp::kDelete) {
    if (found) entries->erase(it);
    return;
  }
  if (found) {
    it->value = e.value;
  } else {
    entries->insert(it, bwtree::Entry{e.key, e.value});
  }
}

void RoNode::CompactPendingVector(std::vector<wal::WalRecord>* recs) {
  // Keep only the last operation per key, preserving LSN order.
  std::map<std::string, size_t> last_index;
  for (size_t i = 0; i < recs->size(); ++i) {
    last_index[(*recs)[i].entry.key] = i;
  }
  std::vector<wal::WalRecord> merged;
  merged.reserve(last_index.size());
  for (size_t i = 0; i < recs->size(); ++i) {
    if (last_index[(*recs)[i].entry.key] == i) {
      merged.push_back(std::move((*recs)[i]));
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const wal::WalRecord& a, const wal::WalRecord& b) {
              return a.lsn < b.lsn;
            });
  *recs = std::move(merged);
}

void RoNode::ApplyPendingLocked(TreeState& ts, bwtree::TreeId tree,
                                bwtree::PageId page, CachedPage* cp) {
  auto pit = ts.pending.find(page);
  if (pit == ts.pending.end()) return;
  for (const wal::WalRecord& rec : pit->second.records) {
    if (rec.lsn <= cp->applied_lsn) continue;
    ApplyEntry(&cp->entries, rec.entry);
    cp->applied_lsn = rec.lsn;
    stats_.replayed.Inc();
  }
}

Result<RoNode::CachedPage*> RoNode::GetPageLocked(bwtree::TreeId tree,
                                                  bwtree::PageId page,
                                                  const OpContext* ctx) {
  TreeState& ts = trees_[tree];
  auto it = cache_.find({tree, page});
  if (it != cache_.end()) {
    stats_.cache_hits.Inc();
    it->second.last_use.store(
        use_tick_.fetch_add(1, std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
    ApplyPendingLocked(ts, tree, page, &it->second);
    return &it->second;
  }
  stats_.cache_misses.Inc();
  CachedPage cp;
  BG3_RETURN_IF_ERROR(BuildViewLocked(tree, page, &cp, ctx));
  cp.last_use.store(use_tick_.fetch_add(1, std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
  auto [cit, inserted] = cache_.emplace(CacheKey{tree, page}, std::move(cp));
  EvictIfNeededLocked();
  ApplyPendingLocked(ts, tree, page, &cit->second);
  return &cit->second;
}

Status RoNode::BuildViewLocked(bwtree::TreeId tree, bwtree::PageId page,
                               CachedPage* out, const OpContext* ctx) {
  TreeState& ts = trees_[tree];
  auto target_meta_it = ts.meta.find(page);
  if (target_meta_it == ts.meta.end()) {
    return Status::NotFound("unknown page");
  }
  const PageMeta target_meta = target_meta_it->second;

  for (int attempt = 0; attempt < 8; ++attempt) {
    // Walk the split-origin chain until a page with a published storage
    // image: the "old mapping" lookup of Fig. 7 step (5). A page born after
    // the last flush has no image and is reconstructed purely from its
    // ancestors plus the lazy-replay log (step (6)).
    std::vector<bwtree::PageId> chain;
    bwtree::PageId cur = page;
    bwtree::Lsn descend_split_lsn = 0;  // split edge we walked up through
    PageImageMeta image;
    bool have_image = false;
    bool restart = false;
    for (;;) {
      chain.push_back(cur);
      auto manifest = RetryingManifestGet(PageImageKey(tree, cur), ctx);
      if (manifest.ok()) {
        BG3_RETURN_IF_ERROR(
            PageImageMeta::Decode(Slice(manifest.value()), &image));
        if (cur != page && image.flushed_lsn >= descend_split_lsn) {
          // The ancestor's image postdates the split we walked through, so
          // it no longer contains our key range — but then our own image
          // must have been published meanwhile. Retry from the top.
          restart = true;
        }
        have_image = true;
        break;
      }
      // Only NotFound means "no image published yet" (keep walking up the
      // split-origin chain); a manifest the substrate would not serve must
      // not be mistaken for an unflushed page — that would rebuild the view
      // from ancestors and silently lose the image's contents.
      if (!manifest.status().IsNotFound()) return manifest.status();
      auto mit = ts.meta.find(cur);
      BG3_CHECK(mit != ts.meta.end());
      if (mit->second.parent == bwtree::kInvalidPage) break;  // empty base
      descend_split_lsn = mit->second.split_lsn;
      cur = mit->second.parent;
    }
    if (restart) continue;

    // Load the base image + its deltas.
    std::vector<bwtree::Entry> entries;
    bwtree::Lsn base_lsn = 0;
    if (have_image) {
      base_lsn = image.flushed_lsn;
      auto base = RetryingStorageRead(image.base_ptr, ctx);
      BG3_RETURN_IF_ERROR(base.status());
      stats_.storage_reads.Inc();
      Slice in(base.value());
      bwtree::RecordHeader header;
      BG3_RETURN_IF_ERROR(bwtree::DecodeRecordHeader(&in, &header));
      BG3_RETURN_IF_ERROR(bwtree::DecodeBasePagePayload(in, &entries));
      std::vector<std::vector<bwtree::DeltaEntry>> chains;
      for (const auto& ptr : image.delta_ptrs) {
        auto delta = RetryingStorageRead(ptr, ctx);
        BG3_RETURN_IF_ERROR(delta.status());
        stats_.storage_reads.Inc();
        Slice din(delta.value());
        BG3_RETURN_IF_ERROR(bwtree::DecodeRecordHeader(&din, &header));
        std::vector<bwtree::DeltaEntry> des;
        BG3_RETURN_IF_ERROR(bwtree::DecodeDeltaPayload(din, &des));
        chains.push_back(std::move(des));
      }
      if (!chains.empty()) {
        std::vector<const std::vector<bwtree::DeltaEntry>*> ptrs;
        for (const auto& c : chains) ptrs.push_back(&c);
        entries = bwtree::ApplyDeltaChain(std::move(entries), ptrs);
      }
    }

    // Replay pending records of every page on the origin chain, LSN order.
    std::vector<const wal::WalRecord*> recs;
    for (bwtree::PageId p : chain) {
      auto pit = ts.pending.find(p);
      if (pit == ts.pending.end()) continue;
      for (const wal::WalRecord& r : pit->second.records) {
        if (r.lsn > base_lsn) recs.push_back(&r);
      }
    }
    std::sort(recs.begin(), recs.end(),
              [](const wal::WalRecord* a, const wal::WalRecord* b) {
                return a->lsn < b->lsn;
              });
    bwtree::Lsn applied = base_lsn;
    for (const wal::WalRecord* r : recs) {
      ApplyEntry(&entries, r->entry);
      applied = std::max(applied, r->lsn);
      stats_.replayed.Inc();
    }

    // Keep only this page's key range (ancestor images/logs cover more).
    std::erase_if(entries, [&](const bwtree::Entry& e) {
      return !KeyInRange(Slice(e.key), target_meta.low_key,
                         target_meta.high_key, target_meta.has_high_key);
    });
    out->entries = std::move(entries);
    out->applied_lsn = applied;
    return Status::OK();
  }
  return Status::Corruption("page view kept racing with flush publication");
}

void RoNode::EvictIfNeededLocked() {
  // Never evict down to nothing: the page just inserted by the caller must
  // survive (it carries the highest last_use tick and is never the LRU
  // victim while at least two pages exist).
  while (cache_.size() > opts_.cache_capacity_pages && cache_.size() > 1) {
    auto victim = cache_.begin();
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
      if (it->second.last_use.load(std::memory_order_relaxed) <
          victim->second.last_use.load(std::memory_order_relaxed)) {
        victim = it;
      }
    }
    cache_.erase(victim);
  }
}

RoNode::FastRead RoNode::TryGetFastLocked(bwtree::TreeId tree, const Slice& key,
                                          std::string* value) {
  if (!bootstrapped_) return FastRead::kIneligible;
  // A poll is due (or strict freshness is configured): the tail scan
  // mutates node state, so it needs the exclusive latch.
  if (NowMicros() - last_poll_us_ >= opts_.min_poll_gap_us) {
    return FastRead::kIneligible;
  }
  auto tit = trees_.find(tree);
  if (tit == trees_.end() || tit->second.route.empty()) {
    return FastRead::kIneligible;
  }
  const TreeState& ts = tit->second;
  auto rit = ts.route.upper_bound(key.ToString());
  BG3_CHECK(rit != ts.route.begin());
  --rit;
  const bwtree::PageId page_id = rit->second;
  auto cit = cache_.find({tree, page_id});
  if (cit == cache_.end()) return FastRead::kIneligible;  // fill needs excl.
  CachedPage& cp = cit->second;
  // Pending records newer than the cached view require replay (a mutation).
  // Records are LSN-ascending, so the tail carries the max.
  auto pit = ts.pending.find(page_id);
  if (pit != ts.pending.end() && !pit->second.records.empty() &&
      pit->second.records.back().lsn > cp.applied_lsn) {
    return FastRead::kIneligible;
  }
  cp.last_use.store(use_tick_.fetch_add(1, std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
  stats_.cache_hits.Inc();
  stats_.fast_reads.Inc();
  return bwtree::LookupInBase(cp.entries, key, value) ? FastRead::kHit
                                                      : FastRead::kMiss;
}

Result<std::string> RoNode::Get(bwtree::TreeId tree, const Slice& key,
                                const OpContext* ctx) {
  BG3_TIMED_SCOPE("bg3.replication.ro_get_ns");
  OpLayerScope repl_layer(OpLayer::kReplication);
  BG3_RETURN_IF_ERROR(CheckDeadline(ctx, "ro get"));
  if (opts_.min_poll_gap_us > 0) {
    // Warm-path attempt under the shared latch: a cached, fully replayed
    // page with no poll due is served without excluding other readers.
    ReaderMutexLock shared(&mu_);
    std::string value;
    switch (TryGetFastLocked(tree, key, &value)) {
      case FastRead::kHit:
        return value;
      case FastRead::kMiss:
        return Status::NotFound("no such key");
      case FastRead::kIneligible:
        break;
    }
  }
  WriterMutexLock lock(&mu_);
  BG3_RETURN_IF_ERROR(PollWalLocked());
  auto tit = trees_.find(tree);
  if (tit == trees_.end() || tit->second.route.empty()) {
    return Status::NotFound("tree not replicated yet");
  }
  TreeState& ts = tit->second;
  auto rit = ts.route.upper_bound(key.ToString());
  BG3_CHECK(rit != ts.route.begin());
  --rit;
  auto page = GetPageLocked(tree, rit->second, ctx);
  BG3_RETURN_IF_ERROR(page.status());
  std::string value;
  if (bwtree::LookupInBase(page.value()->entries, key, &value)) return value;
  return Status::NotFound("no such key");
}

Status RoNode::Scan(bwtree::TreeId tree, const Slice& start_key,
                    const Slice& end_key, size_t limit,
                    std::vector<bwtree::Entry>* out, const OpContext* ctx) {
  BG3_TIMED_SCOPE("bg3.replication.ro_scan_ns");
  OpLayerScope repl_layer(OpLayer::kReplication);
  BG3_RETURN_IF_ERROR(CheckDeadline(ctx, "ro scan"));
  WriterMutexLock lock(&mu_);
  BG3_RETURN_IF_ERROR(PollWalLocked());
  auto tit = trees_.find(tree);
  if (tit == trees_.end() || tit->second.route.empty()) {
    return Status::OK();  // nothing replicated yet
  }
  TreeState& ts = tit->second;
  std::string cursor = start_key.ToString();
  const bool bounded = !end_key.empty();
  size_t remaining = limit;
  for (;;) {
    if (remaining == 0) return Status::OK();
    BG3_RETURN_IF_ERROR(CheckDeadline(ctx, "ro scan"));
    auto rit = ts.route.upper_bound(cursor);
    BG3_CHECK(rit != ts.route.begin());
    --rit;
    const bwtree::PageId page_id = rit->second;
    auto page = GetPageLocked(tree, page_id, ctx);
    BG3_RETURN_IF_ERROR(page.status());
    const auto& entries = page.value()->entries;
    auto it = std::lower_bound(entries.begin(), entries.end(), cursor,
                               [](const bwtree::Entry& e, const std::string& k) {
                                 return e.key < k;
                               });
    for (; it != entries.end() && remaining > 0; ++it) {
      if (bounded && Slice(it->key).compare(end_key) >= 0) return Status::OK();
      out->push_back(*it);
      --remaining;
    }
    const PageMeta& meta = ts.meta[page_id];
    if (!meta.has_high_key) return Status::OK();
    if (bounded && Slice(meta.high_key).compare(end_key) >= 0) {
      return Status::OK();
    }
    cursor = meta.high_key;
  }
}

Result<RoNode::ExportedTree> RoNode::ExportTree(bwtree::TreeId tree) {
  WriterMutexLock lock(&mu_);
  BG3_RETURN_IF_ERROR(PollWalLocked());
  auto tit = trees_.find(tree);
  if (tit == trees_.end() || tit->second.route.empty()) {
    return Status::NotFound("tree not present in the WAL");
  }
  TreeState& ts = tit->second;
  ExportedTree out;
  out.tree_id = tree;
  out.max_lsn = max_lsn_seen_;
  out.pages.reserve(ts.route.size());
  for (const auto& [low_key, page_id] : ts.route) {
    auto cp = GetPageLocked(tree, page_id);
    BG3_RETURN_IF_ERROR(cp.status());
    const PageMeta& meta = ts.meta[page_id];
    bwtree::RecoveredPage rp;
    rp.id = page_id;
    rp.low_key = meta.low_key;
    rp.high_key = meta.high_key;
    rp.has_high_key = meta.has_high_key;
    rp.entries = cp.value()->entries;
    rp.last_lsn = cp.value()->applied_lsn;
    // Attach the current storage image so the recovered node's first flush
    // can invalidate it (keeps GC accounting exact). NotFound = the page
    // was never flushed; any other failure must not be treated that way.
    auto manifest = RetryingManifestGet(PageImageKey(tree, page_id));
    if (manifest.ok()) {
      PageImageMeta image;
      BG3_RETURN_IF_ERROR(PageImageMeta::Decode(Slice(manifest.value()), &image));
      rp.base_ptr = image.base_ptr;
      // Clean ⇔ the exported content is byte-equivalent to the published
      // base image: no delta records, no replayed mutation newer than the
      // image, and the same key range (a post-flush split narrows the live
      // range without touching applied_lsn — such a page must reflush).
      // Clean pages keep their image authoritative, which is what bounds
      // the recovered node's first flush to the WAL suffix.
      rp.clean = image.delta_ptrs.empty() &&
                 cp.value()->applied_lsn == image.flushed_lsn &&
                 image.low_key == meta.low_key &&
                 image.has_high_key == meta.has_high_key &&
                 (!meta.has_high_key || image.high_key == meta.high_key);
    } else if (!manifest.status().IsNotFound()) {
      return manifest.status();
    }
    out.pages.push_back(std::move(rp));
  }
  return out;
}

void RoNode::CompactPendingLogs() {
  WriterMutexLock lock(&mu_);
  for (auto& [tree_id, ts] : trees_) {
    for (auto& [page_id, log] : ts.pending) {
      if (log.records.size() > 1) {
        CompactPendingVector(&log.records);
        log.last_compacted_size = log.records.size();
        stats_.pending_merges.Inc();
      }
    }
  }
}

cloud::PagePointer RoNode::WalCursor() const {
  ReaderMutexLock lock(&mu_);
  return reader_.cursor();
}

uint64_t RoNode::WalBytesReplayed() const {
  ReaderMutexLock lock(&mu_);
  return reader_.bytes_consumed();
}

bool RoNode::ResumedFromCheckpoint() const {
  ReaderMutexLock lock(&mu_);
  return resumed_from_checkpoint_;
}

bool RoNode::CheckpointFellBack() const {
  ReaderMutexLock lock(&mu_);
  return checkpoint_fell_back_;
}

bwtree::Lsn RoNode::ResumeCheckpointLsn() const {
  ReaderMutexLock lock(&mu_);
  return resume_checkpoint_lsn_;
}

Result<size_t> RoNode::WarmPages(bwtree::TreeId tree, size_t max) {
  WriterMutexLock lock(&mu_);
  BG3_RETURN_IF_ERROR(PollWalLocked());
  auto tit = trees_.find(tree);
  if (tit == trees_.end()) return Status::NotFound("tree not replicated yet");
  size_t warmed = 0;
  size_t remaining = 0;
  for (const auto& [low_key, page_id] : tit->second.route) {
    if (cache_.count({tree, page_id}) > 0) continue;
    if (warmed >= max) {
      ++remaining;
      continue;
    }
    auto cp = GetPageLocked(tree, page_id);
    BG3_RETURN_IF_ERROR(cp.status());
    ++warmed;
  }
  return remaining;
}

std::vector<std::pair<bwtree::TreeId, bwtree::PageId>> RoNode::ResidentPages()
    const {
  ReaderMutexLock lock(&mu_);
  std::vector<std::pair<bwtree::TreeId, bwtree::PageId>> out;
  out.reserve(cache_.size());
  for (const auto& [key, page] : cache_) out.push_back(key);
  return out;
}

Result<size_t> RoNode::WarmPageSet(
    const std::vector<std::pair<bwtree::TreeId, bwtree::PageId>>& pages) {
  WriterMutexLock lock(&mu_);
  BG3_RETURN_IF_ERROR(PollWalLocked());
  size_t warmed = 0;
  for (const auto& [tree, page_id] : pages) {
    if (cache_.count({tree, page_id}) > 0) continue;
    auto tit = trees_.find(tree);
    // Pages that vanished from the layout between the peer's snapshot and
    // now (splits, truncation) are simply skipped — the peer's working set
    // is a hint, not a contract.
    if (tit == trees_.end() || tit->second.meta.count(page_id) == 0) continue;
    auto cp = GetPageLocked(tree, page_id);
    BG3_RETURN_IF_ERROR(cp.status());
    ++warmed;
  }
  return warmed;
}

void RoNode::AdvanceWalTerm(uint64_t term) {
  WriterMutexLock lock(&mu_);
  reader_.AdvanceTerm(term);
}

size_t RoNode::PendingRecordCount() const {
  ReaderMutexLock lock(&mu_);
  size_t n = 0;
  for (const auto& [tree_id, ts] : trees_) {
    for (const auto& [page_id, log] : ts.pending) n += log.records.size();
  }
  return n;
}

size_t RoNode::CachedPageCount() const {
  ReaderMutexLock lock(&mu_);
  return cache_.size();
}

}  // namespace bg3::replication
