#include "replication/checkpoint.h"

#include <algorithm>

#include "common/coding.h"
#include "common/crc32.h"
#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/time_source.h"
#include "replication/rw_node.h"

namespace bg3::replication {

std::string CheckpointManifest::Encode() const {
  std::string out;
  PutFixed64(&out, epoch);
  PutFixed32(&out, wal_stream);
  wal_cursor.EncodeTo(&out);
  PutFixed64(&out, checkpoint_lsn);
  PutVarint32(&out, static_cast<uint32_t>(trees.size()));
  for (const CheckpointTree& t : trees) {
    PutVarint64(&out, t.tree_id);
    PutFixed64(&out, t.flushed_lsn);
  }
  PutVarint32(&out, static_cast<uint32_t>(owners.size()));
  for (const CheckpointOwner& o : owners) {
    PutFixed64(&out, o.owner);
    PutVarint64(&out, o.tree_id);
    PutVarint64(&out, o.entry_count);
  }
  // Appended after the original layout so pre-pipeline manifests (which end
  // here) still decode, reading (0, 0) — the "no frame identity" sentinel.
  PutVarint64(&out, wal_term);
  PutVarint64(&out, wal_seq);
  PutFixed32(&out, Crc32c(out.data(), out.size()));
  return out;
}

Status CheckpointManifest::Decode(const Slice& input, CheckpointManifest* out) {
  if (input.size() < 4) return Status::Corruption("checkpoint manifest short");
  const size_t body_len = input.size() - 4;
  const uint32_t stored_crc = DecodeFixed32(input.data() + body_len);
  if (Crc32c(input.data(), body_len) != stored_crc) {
    return Status::Corruption("checkpoint manifest crc mismatch");
  }
  Slice in(input.data(), body_len);
  uint32_t tree_count = 0;
  if (!GetFixed64(&in, &out->epoch) || !GetFixed32(&in, &out->wal_stream) ||
      !cloud::PagePointer::DecodeFrom(&in, &out->wal_cursor) ||
      !GetFixed64(&in, &out->checkpoint_lsn) ||
      !GetVarint32(&in, &tree_count)) {
    return Status::Corruption("checkpoint manifest header");
  }
  out->trees.clear();
  out->trees.reserve(tree_count);
  for (uint32_t i = 0; i < tree_count; ++i) {
    CheckpointTree t;
    if (!GetVarint64(&in, &t.tree_id) || !GetFixed64(&in, &t.flushed_lsn)) {
      return Status::Corruption("checkpoint manifest tree entry");
    }
    out->trees.push_back(t);
  }
  uint32_t owner_count = 0;
  if (!GetVarint32(&in, &owner_count)) {
    return Status::Corruption("checkpoint manifest owner count");
  }
  out->owners.clear();
  out->owners.reserve(owner_count);
  for (uint32_t i = 0; i < owner_count; ++i) {
    CheckpointOwner o;
    if (!GetFixed64(&in, &o.owner) || !GetVarint64(&in, &o.tree_id) ||
        !GetVarint64(&in, &o.entry_count)) {
      return Status::Corruption("checkpoint manifest owner entry");
    }
    out->owners.push_back(o);
  }
  out->wal_term = 0;
  out->wal_seq = 0;
  if (!in.empty() &&
      (!GetVarint64(&in, &out->wal_term) || !GetVarint64(&in, &out->wal_seq))) {
    return Status::Corruption("checkpoint manifest wal frame identity");
  }
  if (!in.empty()) return Status::Corruption("checkpoint manifest trailing");
  return Status::OK();
}

std::string CheckpointHeadKey(const std::string& scope) {
  return "ckpt/" + scope + "/head";
}

std::string CheckpointSlotKey(const std::string& scope, uint64_t epoch) {
  return "ckpt/" + scope + "/slot" + std::to_string(epoch & 1);
}

std::string WalCheckpointScope(cloud::StreamId stream) {
  return "wal" + std::to_string(stream);
}

Status PublishCheckpoint(cloud::CloudStore* store, const std::string& scope,
                         const CheckpointManifest& manifest) {
  // Slot first, head second. The head value is CRC-framed like the slots so
  // a torn head read is detectable rather than silently misdirecting.
  store->ManifestPut(CheckpointSlotKey(scope, manifest.epoch),
                     manifest.Encode());
  std::string head;
  PutFixed64(&head, manifest.epoch);
  PutFixed32(&head, Crc32c(head.data(), head.size()));
  store->ManifestPut(CheckpointHeadKey(scope), head);
  return Status::OK();
}

namespace {

Result<std::string> RetryingGet(cloud::CloudStore* store,
                                const std::string& key,
                                const RetryOptions& retry,
                                const OpContext* ctx) {
  RetryOptions opts = retry;
  opts.ctx = ctx;
  return RetryResultWithBackoff(
      opts, [&] { return store->ManifestGet(key, nullptr, ctx); });
}

/// Decodes one slot; any failure (missing, torn, epoch echo mismatch) is
/// reported as a non-OK status so the caller can fall back.
Status TryLoadSlot(cloud::CloudStore* store, const std::string& scope,
                   uint64_t epoch, const RetryOptions& retry,
                   const OpContext* ctx, CheckpointManifest* out) {
  auto raw = RetryingGet(store, CheckpointSlotKey(scope, epoch), retry, ctx);
  BG3_RETURN_IF_ERROR(raw.status());
  BG3_RETURN_IF_ERROR(CheckpointManifest::Decode(Slice(raw.value()), out));
  if (out->epoch != epoch) {
    return Status::Corruption("checkpoint slot epoch mismatch");
  }
  return Status::OK();
}

}  // namespace

Result<LoadedCheckpoint> LoadCheckpoint(cloud::CloudStore* store,
                                        const std::string& scope,
                                        const RetryOptions& retry,
                                        const OpContext* ctx) {
  auto head_raw = RetryingGet(store, CheckpointHeadKey(scope), retry, ctx);
  if (head_raw.status().IsNotFound()) {
    return Status::NotFound("no checkpoint published for scope " + scope);
  }
  BG3_RETURN_IF_ERROR(head_raw.status());

  uint64_t head_epoch = 0;
  bool head_ok = false;
  {
    Slice in(head_raw.value());
    uint32_t crc = 0;
    if (in.size() == 12 && GetFixed64(&in, &head_epoch) &&
        GetFixed32(&in, &crc) &&
        crc == Crc32c(head_raw.value().data(), 8)) {
      head_ok = true;
    }
  }

  LoadedCheckpoint loaded;
  if (head_ok) {
    Status s =
        TryLoadSlot(store, scope, head_epoch, retry, ctx, &loaded.manifest);
    if (s.ok()) return loaded;
    if (!s.IsNotFound() && !s.IsCorruption()) return s;  // substrate failure
    // Torn or missing head slot: fall back to the previous epoch's slot —
    // the publish order (slot, then head) guarantees it was complete before
    // the head ever pointed past it.
    loaded.fell_back = true;
    s = TryLoadSlot(store, scope, head_epoch - 1, retry, ctx,
                    &loaded.manifest);
    if (s.ok()) return loaded;
    if (!s.IsNotFound() && !s.IsCorruption()) return s;
    return Status::NotFound("no usable checkpoint for scope " + scope);
  }

  // Torn head: probe both slots and take the newest decodable manifest.
  loaded.fell_back = true;
  CheckpointManifest a, b;
  const bool have_a =
      TryLoadSlot(store, scope, 0, retry, ctx, &a).ok();
  const bool have_b =
      TryLoadSlot(store, scope, 1, retry, ctx, &b).ok();
  if (!have_a && !have_b) {
    return Status::NotFound("no usable checkpoint for scope " + scope);
  }
  if (have_a && (!have_b || a.epoch > b.epoch)) {
    loaded.manifest = std::move(a);
  } else {
    loaded.manifest = std::move(b);
  }
  return loaded;
}

std::string EpochRecord::Encode() const {
  std::string out;
  PutFixed64(&out, epoch);
  PutFixed64(&out, term);
  PutFixed32(&out, wal_stream);
  PutFixed32(&out, Crc32c(out.data(), out.size()));
  return out;
}

Status EpochRecord::Decode(const Slice& input, EpochRecord* out) {
  if (input.size() < 4) return Status::Corruption("epoch record short");
  const size_t body_len = input.size() - 4;
  const uint32_t stored_crc = DecodeFixed32(input.data() + body_len);
  if (Crc32c(input.data(), body_len) != stored_crc) {
    return Status::Corruption("epoch record crc mismatch");
  }
  Slice in(input.data(), body_len);
  if (!GetFixed64(&in, &out->epoch) || !GetFixed64(&in, &out->term) ||
      !GetFixed32(&in, &out->wal_stream) || !in.empty()) {
    return Status::Corruption("epoch record layout");
  }
  return Status::OK();
}

std::string EpochHeadKey(const std::string& scope) {
  return "epoch/" + scope + "/head";
}

std::string EpochSlotKey(const std::string& scope, uint64_t epoch) {
  return "epoch/" + scope + "/slot" + std::to_string(epoch & 1);
}

std::string WalEpochScope(cloud::StreamId stream) {
  return "wal" + std::to_string(stream);
}

namespace {

/// Decodes one epoch slot, echo-checking the epoch like checkpoint slots.
Status TryLoadEpochSlot(cloud::CloudStore* store, const std::string& scope,
                        uint64_t epoch, EpochRecord* out) {
  auto raw = store->ManifestGet(EpochSlotKey(scope, epoch));
  BG3_RETURN_IF_ERROR(raw.status());
  BG3_RETURN_IF_ERROR(EpochRecord::Decode(Slice(raw.value()), out));
  if ((out->epoch & 1) != (epoch & 1)) {
    return Status::Corruption("epoch slot echo mismatch");
  }
  return Status::OK();
}

}  // namespace

Result<EpochRecord> LoadEpochRecord(cloud::CloudStore* store,
                                    const std::string& scope) {
  // Slots are self-validating (CRC plus parity echo), so recovery probes
  // both and takes the newest epoch. The head is only a hint: a promoter
  // can crash between the slot CAS and the head flip, leaving the head
  // torn or one epoch stale, and a head-directed read would then resurrect
  // a record from two epochs back.
  EpochRecord a, b;
  const bool have_a = TryLoadEpochSlot(store, scope, 0, &a).ok();
  const bool have_b = TryLoadEpochSlot(store, scope, 1, &b).ok();
  if (!have_a && !have_b) {
    return Status::NotFound("no epoch record for scope " + scope);
  }
  return (have_a && (!have_b || a.epoch > b.epoch)) ? a : b;
}

Result<EpochRecord> PublishEpochRecord(cloud::CloudStore* store,
                                       const std::string& scope,
                                       uint64_t term,
                                       cloud::StreamId wal_stream) {
  EpochRecord current;
  auto loaded = LoadEpochRecord(store, scope);
  if (loaded.ok()) {
    current = loaded.value();
    if (term <= current.term) {
      return Status::Aborted("epoch term " + std::to_string(term) +
                             " not newer than current " +
                             std::to_string(current.term));
    }
  } else if (!loaded.status().IsNotFound()) {
    return loaded.status();
  }

  EpochRecord rec;
  rec.epoch = current.epoch + 1;
  rec.term = term;
  rec.wal_stream = wal_stream;

  // The CAS rides on the target *slot*: two racing promoters computed the
  // same next epoch, hence the same slot key and the same expected version —
  // exactly one Cas succeeds; the loser never reaches the head flip. (A
  // plain slot put with a head CAS would let the loser overwrite the
  // winner's slot bytes after the winner's head flip.)
  const std::string slot_key = EpochSlotKey(scope, rec.epoch);
  uint64_t slot_version = 0;
  {
    auto existing = store->ManifestGet(slot_key, &slot_version);
    if (!existing.ok() && !existing.status().IsNotFound()) {
      return existing.status();
    }
    if (existing.status().IsNotFound()) slot_version = 0;
  }
  auto cas = store->ManifestCas(slot_key, slot_version, rec.Encode());
  if (!cas.ok()) {
    return cas.status().IsAborted()
               ? Status::Aborted("lost promotion race for scope " + scope)
               : cas.status();
  }
  std::string head;
  PutFixed64(&head, rec.epoch);
  PutFixed32(&head, Crc32c(head.data(), head.size()));
  store->ManifestPut(EpochHeadKey(scope), head);
  return rec;
}

uint64_t AutotuneCheckpointIntervalMs(const CheckpointerOptions& opts,
                                      uint64_t bytes_appended,
                                      uint64_t elapsed_us,
                                      uint64_t fallback_ms) {
  const uint64_t lo = opts.min_interval_ms == 0 ? 1 : opts.min_interval_ms;
  const uint64_t hi = std::max(lo, opts.max_interval_ms);
  const auto clamp = [lo, hi](uint64_t v) {
    return std::min(hi, std::max(lo, v));
  };
  if (opts.target_suffix_replay_bytes == 0 || elapsed_us == 0 ||
      bytes_appended == 0) {
    return clamp(fallback_ms);
  }
  // interval such that rate * interval == target:
  //   target_bytes / (bytes / elapsed_ms)
  const double elapsed_ms = static_cast<double>(elapsed_us) / 1000.0;
  const double rate = static_cast<double>(bytes_appended) / elapsed_ms;
  const double ival =
      static_cast<double>(opts.target_suffix_replay_bytes) / rate;
  if (ival >= static_cast<double>(hi)) return hi;
  if (ival <= static_cast<double>(lo)) return lo;
  return clamp(static_cast<uint64_t>(ival));
}

Checkpointer::Checkpointer(cloud::CloudStore* store, RwNode* node,
                           const CheckpointerOptions& options)
    : store_(store),
      node_(node),
      opts_(options),
      scope_(WalCheckpointScope(node->options().wal.stream)),
      metrics_prefix_("bg3.replication.ckpt" +
                      std::to_string(MetricsRegistry::NextInstanceId("ckpt")) +
                      ".") {
  // Continue the epoch sequence of any prior incarnation, so slot
  // alternation keeps protecting the previous manifest.
  if (auto prior = LoadCheckpoint(store_, scope_); prior.ok()) {
    epoch_ = prior.value().manifest.epoch;
    published_lsn_ = prior.value().manifest.checkpoint_lsn;
  }
  effective_interval_ms_ = opts_.interval_ms;
  autotune_clock_ = opts_.time_source != nullptr ? opts_.time_source
                                                 : DefaultWallTimeSource();
  last_publish_us_ = autotune_clock_->NowUs();
  last_publish_wal_bytes_ =
      store_->TotalBytes(node->options().wal.stream);
  MetricsRegistry& reg = MetricsRegistry::Default();
  reg.RegisterCounter(metrics_prefix_ + "cuts_started", &stats_.cuts_started);
  reg.RegisterCounter(metrics_prefix_ + "pages_flushed", &stats_.pages_flushed);
  reg.RegisterCounter(metrics_prefix_ + "manifests_written",
                      &stats_.manifests_written);
  reg.RegisterCounter(metrics_prefix_ + "wal_extents_truncated",
                      &stats_.wal_extents_truncated);
  reg.RegisterCounter(metrics_prefix_ + "step_errors", &stats_.step_errors);
}

Checkpointer::~Checkpointer() {
  Stop();
  MetricsRegistry::Default().DeregisterPrefix(metrics_prefix_);
}

void Checkpointer::Start() {
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { ThreadMain(); });
}

void Checkpointer::Stop() {
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    if (!running_) return;
    stop_ = true;
  }
  thread_cv_.notify_all();
  thread_.join();
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    running_ = false;
  }
}

void Checkpointer::ThreadMain() {
  for (;;) {
    const uint64_t tick_ms = effective_interval_ms();
    {
      std::unique_lock<std::mutex> lock(thread_mu_);
      thread_cv_.wait_for(lock, std::chrono::milliseconds(tick_ms),
                          [this] { return stop_; });
      if (stop_) return;
    }
    // Substrate errors abandon the step but keep the cut open; the next
    // tick resumes where this one stopped (counted in step_errors).
    BG3_IGNORE_STATUS(Step());
  }
}

Status Checkpointer::Step() {
  std::lock_guard<std::mutex> lock(mu_);
  return StepLocked();
}

Status Checkpointer::CheckpointNow() {
  std::lock_guard<std::mutex> lock(mu_);
  do {
    BG3_RETURN_IF_ERROR(StepLocked());
  } while (cut_.active);
  return Status::OK();
}

bool Checkpointer::CutInProgress() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cut_.active;
}

uint64_t Checkpointer::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

bwtree::Lsn Checkpointer::published_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return published_lsn_;
}

uint64_t Checkpointer::effective_interval_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return effective_interval_ms_;
}

Status Checkpointer::StepLocked() {
  if (!cut_.active) {
    const bwtree::Lsn l0 = node_->CurrentLsn();
    if (l0 == published_lsn_ && !node_->HasStagedImages()) {
      return Status::OK();  // nothing durable to add since the last manifest
    }
    // Fuzzy-cut capture order — LSN, then WAL flush + cursor, then the
    // dirty snapshot (see the class comment for the soundness argument).
    // The Flush barrier waits out every in-flight pipelined append, so the
    // committed cursor it leaves behind is gap-free: nothing with a higher
    // seq can land physically before it.
    BG3_RETURN_IF_ERROR(node_->wal_writer()->Flush());
    cut_.lsn = l0;
    cut_.wal_cursor = node_->wal_writer()->committed_cursor();
    cut_.pending = node_->tree()->DirtyPageIds();
    cut_.next = 0;
    cut_.active = true;
    stats_.cuts_started.Inc();
    return Status::OK();
  }

  if (cut_.next < cut_.pending.size()) {
    const size_t end =
        std::min(cut_.pending.size(), cut_.next + opts_.max_pages_per_round);
    while (cut_.next < end) {
      // A page the group flusher beat us to is already clean — FlushPage is
      // a latched no-op then; its staged image publishes with our commit.
      Status s = node_->tree()->FlushPage(cut_.pending[cut_.next]);
      if (!s.ok() && !s.IsNotFound()) {
        stats_.step_errors.Inc();
        return s;
      }
      stats_.pages_flushed.Inc();
      ++cut_.next;
    }
    if (cut_.next < cut_.pending.size()) return Status::OK();
  }

  if (Status s = PublishCutLocked(); !s.ok()) {
    stats_.step_errors.Inc();
    return s;
  }
  return Status::OK();
}

Status Checkpointer::PublishCutLocked() {
  // Every page of the cut has an image staged (or already published).
  // Publish order: mapping entries + WAL checkpoint record first, the
  // checkpoint manifest last — the manifest's promise ("images cover
  // everything <= checkpoint_lsn") must never be readable before the
  // images themselves are.
  BG3_RETURN_IF_ERROR(node_->CommitCheckpoint(cut_.lsn));
  CheckpointManifest m;
  m.epoch = epoch_ + 1;
  m.wal_stream = node_->options().wal.stream;
  m.wal_cursor = cut_.wal_cursor.ptr;
  m.wal_term = cut_.wal_cursor.term;
  m.wal_seq = cut_.wal_cursor.seq;
  m.checkpoint_lsn = cut_.lsn;
  m.trees.push_back({node_->options().tree.tree_id, cut_.lsn});
  BG3_RETURN_IF_ERROR(PublishCheckpoint(store_, scope_, m));
  epoch_ = m.epoch;
  published_lsn_ = cut_.lsn;
  stats_.manifests_written.Inc();
  if (opts_.truncate_wal && !cut_.wal_cursor.ptr.IsNull()) {
    stats_.wal_extents_truncated.Add(store_->TruncateStreamBefore(
        m.wal_stream, cut_.wal_cursor.ptr.extent_id));
  }
  if (opts_.target_suffix_replay_bytes > 0) {
    // Re-derive the cadence from the append rate observed since the last
    // publish: faster writers get shorter intervals, so the WAL suffix a
    // promotion must replay stays near the byte target.
    const uint64_t now_us = autotune_clock_->NowUs();
    const uint64_t wal_bytes = store_->TotalBytes(m.wal_stream);
    effective_interval_ms_ = AutotuneCheckpointIntervalMs(
        opts_, wal_bytes - last_publish_wal_bytes_,
        now_us - last_publish_us_, effective_interval_ms_);
    last_publish_us_ = now_us;
    last_publish_wal_bytes_ = wal_bytes;
  }
  cut_ = Cut{};
  return Status::OK();
}

}  // namespace bg3::replication
