#ifndef BG3_REPLICATION_PAGE_IMAGE_H_
#define BG3_REPLICATION_PAGE_IMAGE_H_

#include <string>
#include <vector>

#include "bwtree/page.h"
#include "cloud/types.h"
#include "common/coding.h"

namespace bg3::replication {

/// Value stored in the shared mapping-table area (cloud manifest) per page:
/// where the page's current storage images live and which LSN they cover.
/// The RW node publishes these at step (8) of Fig. 7; RO nodes consult them
/// ("looks up the old mapping in shared storage", step (5)).
struct PageImageMeta {
  bwtree::Lsn flushed_lsn = 0;
  cloud::PagePointer base_ptr;
  std::vector<cloud::PagePointer> delta_ptrs;  ///< oldest-first.
  /// Key range [low_key, high_key) of the page at flush time; lets readers
  /// bootstrap routing from the mapping table alone (WAL truncation).
  std::string low_key;
  std::string high_key;
  bool has_high_key = false;

  std::string Encode() const {
    std::string out;
    PutFixed64(&out, flushed_lsn);
    base_ptr.EncodeTo(&out);
    PutVarint32(&out, static_cast<uint32_t>(delta_ptrs.size()));
    for (const auto& p : delta_ptrs) p.EncodeTo(&out);
    PutLengthPrefixedSlice(&out, low_key);
    PutLengthPrefixedSlice(&out, high_key);
    out.push_back(has_high_key ? 1 : 0);
    return out;
  }

  static Status Decode(Slice input, PageImageMeta* out) {
    uint32_t count;
    if (!GetFixed64(&input, &out->flushed_lsn) ||
        !cloud::PagePointer::DecodeFrom(&input, &out->base_ptr) ||
        !GetVarint32(&input, &count)) {
      return Status::Corruption("page image meta");
    }
    out->delta_ptrs.clear();
    out->delta_ptrs.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      cloud::PagePointer p;
      if (!cloud::PagePointer::DecodeFrom(&input, &p)) {
        return Status::Corruption("page image delta ptr");
      }
      out->delta_ptrs.push_back(p);
    }
    Slice low, high;
    if (!GetLengthPrefixedSlice(&input, &low) ||
        !GetLengthPrefixedSlice(&input, &high) || input.empty()) {
      return Status::Corruption("page image key range");
    }
    out->low_key = low.ToString();
    out->high_key = high.ToString();
    out->has_high_key = input[0] != 0;
    return Status::OK();
  }
};

/// Manifest key of a page's image meta.
inline std::string PageImageKey(bwtree::TreeId tree, bwtree::PageId page) {
  return "pt/" + std::to_string(tree) + "/" + std::to_string(page);
}

/// Manifest key prefix covering every page of `tree`.
inline std::string PageImagePrefix(bwtree::TreeId tree) {
  return "pt/" + std::to_string(tree) + "/";
}

/// Parses a PageImageKey back into (tree, page); false if malformed.
inline bool ParsePageImageKey(const std::string& key, bwtree::TreeId* tree,
                              bwtree::PageId* page) {
  if (key.rfind("pt/", 0) != 0) return false;
  const size_t slash = key.find('/', 3);
  if (slash == std::string::npos) return false;
  char* end = nullptr;
  *tree = strtoull(key.c_str() + 3, &end, 10);
  if (end != key.c_str() + slash) return false;
  *page = strtoull(key.c_str() + slash + 1, &end, 10);
  return *end == '\0';
}

}  // namespace bg3::replication

#endif  // BG3_REPLICATION_PAGE_IMAGE_H_
