#include "replication/cluster.h"

#include <algorithm>

#include "common/debug_server.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/metrics_registry.h"

namespace bg3::replication {

Bg3Cluster::Bg3Cluster(cloud::CloudStore* store, const ClusterOptions& options)
    : store_(store), opts_(options) {
  BG3_CHECK_GT(opts_.partitions, 0);
  BG3_CHECK_GT(opts_.followers_per_partition, 0);
  parts_.reserve(opts_.partitions);
  for (int p = 0; p < opts_.partitions; ++p) {
    auto part = std::make_unique<Partition>();
    part->tree_id = static_cast<bwtree::TreeId>(p + 1);
    part->wal_stream =
        store_->CreateStream("cluster-p" + std::to_string(p) + "-wal");
    part->leader = std::make_unique<RwNode>(store_, LeaderOptions(*part));
    part->term.store(part->leader->wal_writer()->term(),
                     std::memory_order_relaxed);
    if (opts_.checkpointing) {
      part->checkpointer = std::make_unique<Checkpointer>(
          store_, part->leader.get(), opts_.checkpointer);
    }
    for (int f = 0; f < opts_.followers_per_partition; ++f) {
      part->followers.push_back(MakeFollower(*part, f));
    }
    parts_.push_back(std::move(part));
  }
  RegisterMetrics();
}

Bg3Cluster::~Bg3Cluster() {
  if (!health_source_.empty()) {
    // Barrier: after this returns, no /healthz render can touch the nodes
    // the member destructors are about to tear down.
    DebugServer::UnregisterHealthSource(health_source_);
  }
  if (!metrics_prefix_.empty()) {
    MetricsRegistry::Default().DeregisterPrefix(metrics_prefix_);
  }
}

std::unique_ptr<RoNode> Bg3Cluster::MakeFollower(const Partition& part,
                                                 int index) const {
  RoNodeOptions ro = opts_.ro;
  ro.wal_stream = part.wal_stream;
  ro.seed = opts_.ro.seed + (part.tree_id - 1) * 131 + index;
  return std::make_unique<RoNode>(store_, ro);
}

void Bg3Cluster::RegisterMetrics() {
  auto& reg = MetricsRegistry::Default();
  const std::string instance =
      "bg3.db" + std::to_string(MetricsRegistry::NextInstanceId("db"));
  metrics_prefix_ = instance + ".failover.";
  health_source_ = instance;
  DebugServer::RegisterHealthSource(health_source_,
                                    [this] { return HealthJson(); });
  reg.RegisterCounter(metrics_prefix_ + "promotions", &promotions_);
  reg.RegisterCallback(metrics_prefix_ + "fenced_appends",
                       [this] { return fenced_appends(); });
  reg.RegisterCallback(metrics_prefix_ + "zombie_drained",
                       [this] { return zombie_drained(); });
  reg.RegisterCallback(metrics_prefix_ + "term", [this] {
    uint64_t max_term = 0;
    for (const auto& part : parts_) {
      max_term =
          std::max(max_term, part->term.load(std::memory_order_relaxed));
    }
    return max_term;
  });
}

RwNodeOptions Bg3Cluster::LeaderOptions(const Partition& part) const {
  RwNodeOptions rw;
  rw.tree.tree_id = part.tree_id;
  rw.tree.max_leaf_entries = opts_.max_leaf_entries;
  rw.tree.retry = opts_.tree_retry;
  rw.tree.base_stream = store_->CreateStream(
      "cluster-p" + std::to_string(part.tree_id - 1) + "-base");
  rw.tree.delta_stream = store_->CreateStream(
      "cluster-p" + std::to_string(part.tree_id - 1) + "-delta");
  rw.wal = opts_.wal;
  rw.wal.stream = part.wal_stream;
  rw.flush_group_pages = opts_.flush_group_pages;
  rw.flush_group_mutations = opts_.flush_group_mutations;
  return rw;
}

int Bg3Cluster::PartitionOf(const Slice& key) const {
  return static_cast<int>(HashSlice(key) % parts_.size());
}

Status Bg3Cluster::Put(const Slice& key, const Slice& value) {
  return parts_[PartitionOf(key)]->leader->Put(key, value);
}

Status Bg3Cluster::Delete(const Slice& key) {
  return parts_[PartitionOf(key)]->leader->Delete(key);
}

Result<std::string> Bg3Cluster::Get(const Slice& key) {
  Partition& part = *parts_[PartitionOf(key)];
  const uint64_t rr = read_rr_.fetch_add(1, std::memory_order_relaxed);
  RoNode* follower = part.followers[rr % part.followers.size()].get();
  return follower->Get(part.tree_id, key);
}

Result<std::string> Bg3Cluster::GetFromLeader(const Slice& key) {
  return parts_[PartitionOf(key)]->leader->Get(key);
}

Status Bg3Cluster::Scan(const Slice& start_key, const Slice& end_key,
                        size_t limit, std::vector<bwtree::Entry>* out) {
  // Hash partitioning scatters any key range across all partitions: scan
  // each leader and merge. (Leaders give the strongest read; followers
  // would work identically via RoNode::Scan.)
  std::vector<bwtree::Entry> merged;
  for (auto& part : parts_) {
    bwtree::BwTree::ScanOptions scan;
    scan.start_key = start_key.ToString();
    scan.end_key = end_key.ToString();
    scan.limit = limit;
    BG3_RETURN_IF_ERROR(part->leader->Scan(scan, &merged));
  }
  std::sort(merged.begin(), merged.end(),
            [](const bwtree::Entry& a, const bwtree::Entry& b) {
              return a.key < b.key;
            });
  if (merged.size() > limit) merged.resize(limit);
  out->insert(out->end(), std::make_move_iterator(merged.begin()),
              std::make_move_iterator(merged.end()));
  return Status::OK();
}

Status Bg3Cluster::FlushAll() {
  for (auto& part : parts_) {
    BG3_RETURN_IF_ERROR(part->leader->FlushGroup());
  }
  return Status::OK();
}

Status Bg3Cluster::CrashAndRecoverLeader(int partition) {
  if (partition < 0 || partition >= partitions()) {
    return Status::InvalidArgument("no such partition");
  }
  Partition& part = *parts_[partition];
  const RwNodeOptions opts = LeaderOptions(part);
  part.checkpointer.reset();  // dies with the leader it observed
  {
    std::lock_guard<std::mutex> lock(zombie_mu_);
    part.leader.reset();  // crash: all volatile state gone
  }
  // Recover resumes from the newest wal<stream>-scope checkpoint manifest
  // (when one exists) and replays only the WAL suffix past its cursor.
  auto recovered = RwNode::Recover(store_, opts);
  BG3_RETURN_IF_ERROR(recovered.status());
  {
    std::lock_guard<std::mutex> lock(zombie_mu_);
    part.leader = recovered.take();
    part.term.store(part.leader->wal_writer()->term(),
                    std::memory_order_relaxed);
  }
  if (opts_.checkpointing) {
    part.checkpointer = std::make_unique<Checkpointer>(
        store_, part.leader.get(), opts_.checkpointer);
  }
  return Status::OK();
}

Status Bg3Cluster::PromoteFollower(int partition, int follower_index) {
  if (partition < 0 || partition >= partitions()) {
    return Status::InvalidArgument("no such partition");
  }
  Partition& part = *parts_[partition];
  if (follower_index < 0 ||
      follower_index >= static_cast<int>(part.followers.size())) {
    return Status::InvalidArgument("no such follower");
  }

  // Pick a term strictly newer than anything durable or local: adopt the
  // persisted epoch record's term into the process allocator first, so the
  // allocation exceeds both it and every writer this process ever made.
  const std::string scope = WalEpochScope(part.wal_stream);
  auto current = LoadEpochRecord(store_, scope);
  if (current.ok()) wal::ObserveWalTerm(current.value().term);
  const uint64_t term = wal::AllocateWalTerm();

  // Durably crown the term. Exactly one concurrent promoter survives the
  // epoch-slot CAS; the loser gets Aborted here, before it has touched the
  // stream or any node.
  auto crowned = PublishEpochRecord(store_, scope, term, part.wal_stream);
  BG3_RETURN_IF_ERROR(crowned.status());

  // Fence the WAL at the crowned term: from this instant the old leader's
  // in-flight pipelined groups land nowhere (Status::Fenced) and the tail
  // is final — the catch-up below cannot be outrun.
  store_->FenceStream(part.wal_stream, term);

  // Catch every follower up to the immutable tail, then cross the epoch
  // boundary: stale-term batches still held in seq-gap maps are dropped,
  // never applied (the zero-stale-records invariant). The poll MUST precede
  // the advance — an explicit term advance on a lagging reader would dedupe
  // the acked old-term suffix it never delivered. The candidate's catch-up
  // is load-bearing (its export becomes the new leader); a peer whose poll
  // fails under injected faults just skips the advance and crosses the
  // boundary organically on its next successful poll.
  RoNode* cand = part.followers[follower_index].get();
  BG3_RETURN_IF_ERROR(cand->PollWal());
  for (auto& follower : part.followers) {
    if (follower.get() != cand && !follower->PollWal().ok()) continue;
    follower->AdvanceWalTerm(term);
  }

  // Reopen the candidate's materialized state as the RW leader, stamping
  // the crowned term into every batch it will write. Because the candidate
  // tails continuously (or bootstrapped from the checkpoint manifest), the
  // WAL it ever read is bounded by the checkpoint suffix — promotion cost
  // does not scale with total WAL length.
  auto exported = cand->ExportTree(part.tree_id);
  BG3_RETURN_IF_ERROR(exported.status());
  RwNodeOptions opts = LeaderOptions(part);
  opts.wal.term = term;
  auto promoted = RwNode::FromExport(store_, opts, exported.take());
  BG3_RETURN_IF_ERROR(promoted.status());

  // Depose. The checkpointer dies first (it observes the old leader); the
  // old leader itself lives on as the partition zombie so its in-flight and
  // parked batches drain against the fence instead of vanishing silently.
  part.checkpointer.reset();
  {
    std::lock_guard<std::mutex> lock(zombie_mu_);
    if (part.zombie != nullptr) {
      part.retired_fenced += part.zombie->wal_writer()->fenced_appends();
      part.retired_drained += part.zombie->wal_writer()->zombie_drained();
    }
    part.zombie = std::move(part.leader);
    part.leader = promoted.take();
    part.term.store(term, std::memory_order_relaxed);
  }

  // Refill the promoted follower's pool slot with a fresh node; it
  // bootstraps from the checkpoint manifest (suffix-only replay).
  part.followers[follower_index] = MakeFollower(part, follower_index);
  if (opts_.checkpointing) {
    part.checkpointer = std::make_unique<Checkpointer>(
        store_, part.leader.get(), opts_.checkpointer);
  }
  promotions_.Inc();
  return Status::OK();
}

void Bg3Cluster::ReapZombie(int partition) {
  if (partition < 0 || partition >= partitions()) return;
  Partition& part = *parts_[partition];
  std::unique_ptr<RwNode> dead;
  {
    std::lock_guard<std::mutex> lock(zombie_mu_);
    if (part.zombie == nullptr) return;
    part.retired_fenced += part.zombie->wal_writer()->fenced_appends();
    part.retired_drained += part.zombie->wal_writer()->zombie_drained();
    dead = std::move(part.zombie);
  }
  dead.reset();  // outside the lock: the dtor joins pipeline threads
}

Status Bg3Cluster::RestartFollower(int partition, int index) {
  if (partition < 0 || partition >= partitions()) {
    return Status::InvalidArgument("no such partition");
  }
  Partition& part = *parts_[partition];
  if (index < 0 || index >= static_cast<int>(part.followers.size())) {
    return Status::InvalidArgument("no such follower");
  }
  // Pre-warm source: a live peer follower when the pool has one; a
  // single-node pool snapshots the outgoing node's own resident set before
  // teardown. Either way the replacement materializes the working set from
  // the shared store's images, not from a cold sweep.
  const size_t peer = (index + 1) % part.followers.size();
  std::vector<std::pair<bwtree::TreeId, bwtree::PageId>> warm =
      part.followers[peer]->ResidentPages();
  part.followers[index].reset();  // one at a time: the rest keep serving
  part.followers[index] = MakeFollower(part, index);
  // Pre-warm is an optimization, never a correctness step: if it fails the
  // replacement node is installed anyway and warms on demand.
  auto warmed = part.followers[index]->WarmPageSet(warm);
  return warmed.status();
}

Status Bg3Cluster::RollingRestart() {
  for (int p = 0; p < partitions(); ++p) {
    Partition& part = *parts_[p];
    for (size_t f = 0; f < part.followers.size(); ++f) {
      BG3_RETURN_IF_ERROR(RestartFollower(p, static_cast<int>(f)));
    }
    // Leader last, via failover: the partition's write outage is exactly
    // one promotion wide, and the deposed process is fenced, not trusted.
    BG3_RETURN_IF_ERROR(PromoteFollower(p, 0));
    ReapZombie(p);
  }
  return Status::OK();
}

uint64_t Bg3Cluster::fenced_appends() const {
  std::lock_guard<std::mutex> lock(zombie_mu_);
  uint64_t total = 0;
  for (const auto& part : parts_) {
    total += part->retired_fenced;
    if (part->zombie != nullptr) {
      total += part->zombie->wal_writer()->fenced_appends();
    }
  }
  return total;
}

uint64_t Bg3Cluster::zombie_drained() const {
  std::lock_guard<std::mutex> lock(zombie_mu_);
  uint64_t total = 0;
  for (const auto& part : parts_) {
    total += part->retired_drained;
    if (part->zombie != nullptr) {
      total += part->zombie->wal_writer()->zombie_drained();
    }
  }
  return total;
}

std::vector<Bg3Cluster::PartitionHealth> Bg3Cluster::Health() const {
  std::vector<PartitionHealth> out;
  out.reserve(parts_.size());
  std::lock_guard<std::mutex> lock(zombie_mu_);
  for (size_t p = 0; p < parts_.size(); ++p) {
    const Partition& part = *parts_[p];
    PartitionHealth ph;
    ph.partition = static_cast<int>(p);
    if (part.leader != nullptr) {
      NodeHealth nh;
      nh.role = "leader";
      nh.term = part.term.load(std::memory_order_relaxed);
      nh.committed = part.leader->wal_writer()->committed_cursor();
      ph.nodes.push_back(std::move(nh));
    }
    for (const auto& follower : part.followers) {
      NodeHealth nh;
      nh.role = "follower";
      nh.cursor = follower->WalCursor();
      ph.nodes.push_back(std::move(nh));
    }
    if (part.zombie != nullptr) {
      NodeHealth nh;
      nh.role = "zombie";
      nh.term = part.zombie->wal_writer()->term();
      ph.nodes.push_back(std::move(nh));
    }
    out.push_back(std::move(ph));
  }
  return out;
}

std::string Bg3Cluster::HealthJson() const {
  const std::vector<PartitionHealth> health = Health();
  std::string out = "\"partitions\": [";
  for (size_t p = 0; p < health.size(); ++p) {
    const PartitionHealth& ph = health[p];
    if (p > 0) out += ", ";
    out += "{\"partition\": " + std::to_string(ph.partition) +
           ", \"nodes\": [";
    for (size_t n = 0; n < ph.nodes.size(); ++n) {
      const NodeHealth& nh = ph.nodes[n];
      if (n > 0) out += ", ";
      out += "{\"role\": \"" + nh.role + "\"";
      if (nh.role != "follower") {
        out += ", \"term\": " + std::to_string(nh.term);
      }
      if (nh.role == "leader") {
        out += ", \"committed\": {\"term\": " + std::to_string(nh.committed.term) +
               ", \"seq\": " + std::to_string(nh.committed.seq) +
               ", \"extent\": " +
               (nh.committed.ptr.IsNull()
                    ? std::string("null")
                    : std::to_string(nh.committed.ptr.extent_id)) +
               ", \"offset\": " + std::to_string(nh.committed.ptr.offset) +
               "}";
      } else if (nh.role == "follower") {
        out += ", \"wal_extent\": " +
               (nh.cursor.IsNull() ? std::string("null")
                                   : std::to_string(nh.cursor.extent_id)) +
               ", \"wal_offset\": " + std::to_string(nh.cursor.offset);
      }
      out += "}";
    }
    out += "]}";
  }
  out += "]";
  return out;
}

void Bg3Cluster::StartCheckpointers() {
  for (auto& part : parts_) {
    if (part->checkpointer != nullptr) part->checkpointer->Start();
  }
}

void Bg3Cluster::StopCheckpointers() {
  for (auto& part : parts_) {
    if (part->checkpointer != nullptr) part->checkpointer->Stop();
  }
}

size_t Bg3Cluster::TruncateWal(int partition) {
  if (partition < 0 || partition >= partitions()) return 0;
  Partition& part = *parts_[partition];
  const cloud::PagePointer checkpoint =
      part.leader->last_checkpoint_wal_ptr();
  if (checkpoint.IsNull()) return 0;  // nothing checkpointed yet
  cloud::ExtentId before = checkpoint.extent_id;
  for (auto& follower : part.followers) {
    const cloud::PagePointer cursor = follower->WalCursor();
    // A follower that never polled pins the whole log.
    if (cursor.IsNull()) return 0;
    before = std::min(before, cursor.extent_id);
  }
  return store_->TruncateStreamBefore(part.wal_stream, before);
}

}  // namespace bg3::replication
