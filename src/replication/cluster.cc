#include "replication/cluster.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"

namespace bg3::replication {

Bg3Cluster::Bg3Cluster(cloud::CloudStore* store, const ClusterOptions& options)
    : store_(store), opts_(options) {
  BG3_CHECK_GT(opts_.partitions, 0);
  BG3_CHECK_GT(opts_.followers_per_partition, 0);
  parts_.reserve(opts_.partitions);
  for (int p = 0; p < opts_.partitions; ++p) {
    auto part = std::make_unique<Partition>();
    part->tree_id = static_cast<bwtree::TreeId>(p + 1);
    part->wal_stream =
        store_->CreateStream("cluster-p" + std::to_string(p) + "-wal");
    part->leader = std::make_unique<RwNode>(store_, LeaderOptions(*part));
    if (opts_.checkpointing) {
      part->checkpointer = std::make_unique<Checkpointer>(
          store_, part->leader.get(), opts_.checkpointer);
    }
    for (int f = 0; f < opts_.followers_per_partition; ++f) {
      RoNodeOptions ro = opts_.ro;
      ro.wal_stream = part->wal_stream;
      ro.seed = opts_.ro.seed + p * 131 + f;
      part->followers.push_back(std::make_unique<RoNode>(store_, ro));
    }
    parts_.push_back(std::move(part));
  }
}

RwNodeOptions Bg3Cluster::LeaderOptions(const Partition& part) const {
  RwNodeOptions rw;
  rw.tree.tree_id = part.tree_id;
  rw.tree.max_leaf_entries = opts_.max_leaf_entries;
  rw.tree.retry = opts_.tree_retry;
  rw.tree.base_stream = store_->CreateStream(
      "cluster-p" + std::to_string(part.tree_id - 1) + "-base");
  rw.tree.delta_stream = store_->CreateStream(
      "cluster-p" + std::to_string(part.tree_id - 1) + "-delta");
  rw.wal = opts_.wal;
  rw.wal.stream = part.wal_stream;
  rw.flush_group_pages = opts_.flush_group_pages;
  rw.flush_group_mutations = opts_.flush_group_mutations;
  return rw;
}

int Bg3Cluster::PartitionOf(const Slice& key) const {
  return static_cast<int>(HashSlice(key) % parts_.size());
}

Status Bg3Cluster::Put(const Slice& key, const Slice& value) {
  return parts_[PartitionOf(key)]->leader->Put(key, value);
}

Status Bg3Cluster::Delete(const Slice& key) {
  return parts_[PartitionOf(key)]->leader->Delete(key);
}

Result<std::string> Bg3Cluster::Get(const Slice& key) {
  Partition& part = *parts_[PartitionOf(key)];
  const uint64_t rr = read_rr_.fetch_add(1, std::memory_order_relaxed);
  RoNode* follower = part.followers[rr % part.followers.size()].get();
  return follower->Get(part.tree_id, key);
}

Result<std::string> Bg3Cluster::GetFromLeader(const Slice& key) {
  return parts_[PartitionOf(key)]->leader->Get(key);
}

Status Bg3Cluster::Scan(const Slice& start_key, const Slice& end_key,
                        size_t limit, std::vector<bwtree::Entry>* out) {
  // Hash partitioning scatters any key range across all partitions: scan
  // each leader and merge. (Leaders give the strongest read; followers
  // would work identically via RoNode::Scan.)
  std::vector<bwtree::Entry> merged;
  for (auto& part : parts_) {
    bwtree::BwTree::ScanOptions scan;
    scan.start_key = start_key.ToString();
    scan.end_key = end_key.ToString();
    scan.limit = limit;
    BG3_RETURN_IF_ERROR(part->leader->Scan(scan, &merged));
  }
  std::sort(merged.begin(), merged.end(),
            [](const bwtree::Entry& a, const bwtree::Entry& b) {
              return a.key < b.key;
            });
  if (merged.size() > limit) merged.resize(limit);
  out->insert(out->end(), std::make_move_iterator(merged.begin()),
              std::make_move_iterator(merged.end()));
  return Status::OK();
}

Status Bg3Cluster::FlushAll() {
  for (auto& part : parts_) {
    BG3_RETURN_IF_ERROR(part->leader->FlushGroup());
  }
  return Status::OK();
}

Status Bg3Cluster::CrashAndRecoverLeader(int partition) {
  if (partition < 0 || partition >= partitions()) {
    return Status::InvalidArgument("no such partition");
  }
  Partition& part = *parts_[partition];
  const RwNodeOptions opts = LeaderOptions(part);
  part.checkpointer.reset();  // dies with the leader it observed
  part.leader.reset();        // crash: all volatile state gone
  // Recover resumes from the newest wal<stream>-scope checkpoint manifest
  // (when one exists) and replays only the WAL suffix past its cursor.
  auto recovered = RwNode::Recover(store_, opts);
  BG3_RETURN_IF_ERROR(recovered.status());
  part.leader = recovered.take();
  if (opts_.checkpointing) {
    part.checkpointer = std::make_unique<Checkpointer>(
        store_, part.leader.get(), opts_.checkpointer);
  }
  return Status::OK();
}

void Bg3Cluster::StartCheckpointers() {
  for (auto& part : parts_) {
    if (part->checkpointer != nullptr) part->checkpointer->Start();
  }
}

void Bg3Cluster::StopCheckpointers() {
  for (auto& part : parts_) {
    if (part->checkpointer != nullptr) part->checkpointer->Stop();
  }
}

size_t Bg3Cluster::TruncateWal(int partition) {
  if (partition < 0 || partition >= partitions()) return 0;
  Partition& part = *parts_[partition];
  const cloud::PagePointer checkpoint =
      part.leader->last_checkpoint_wal_ptr();
  if (checkpoint.IsNull()) return 0;  // nothing checkpointed yet
  cloud::ExtentId before = checkpoint.extent_id;
  for (auto& follower : part.followers) {
    const cloud::PagePointer cursor = follower->WalCursor();
    // A follower that never polled pins the whole log.
    if (cursor.IsNull()) return 0;
    before = std::min(before, cursor.extent_id);
  }
  return store_->TruncateStreamBefore(part.wal_stream, before);
}

}  // namespace bg3::replication
