#include "replication/restart.h"

namespace bg3::replication {

RwRestart::RwRestart(cloud::CloudStore* store, const RestartOptions& options)
    : store_(store), opts_(options) {}

Status RwRestart::Begin() {
  RoNodeOptions ro_opts;
  ro_opts.wal_stream = opts_.node.wal.stream;
  // The restore view must hold the whole tree for Take(); warming never
  // fights eviction.
  ro_opts.cache_capacity_pages = ~0ull;
  ro_opts.seed = opts_.ro_seed;
  ro_opts.resume_from_checkpoint = opts_.resume_from_checkpoint;
  ro_ = std::make_unique<RoNode>(store_, ro_opts);
  // One explicit tail: bootstrap (checkpoint load + route/meta seed) plus
  // the full WAL-suffix replay into the lazy log area. Page *content* stays
  // on storage until demanded — this is the cheap part of recovery.
  BG3_RETURN_IF_ERROR(ro_->PollWal());
  progress_.reads_live = true;
  RefreshProgress();
  return Status::OK();
}

Result<std::string> RwRestart::Get(const Slice& key, const OpContext* ctx) {
  if (ro_ == nullptr) return Status::InvalidArgument("restart not begun");
  return ro_->Get(opts_.node.tree.tree_id, key, ctx);
}

Status RwRestart::Scan(const Slice& start_key, const Slice& end_key,
                       size_t limit, std::vector<bwtree::Entry>* out,
                       const OpContext* ctx) {
  if (ro_ == nullptr) return Status::InvalidArgument("restart not begun");
  return ro_->Scan(opts_.node.tree.tree_id, start_key, end_key, limit, out,
                   ctx);
}

Result<size_t> RwRestart::Step() {
  if (ro_ == nullptr) return Status::InvalidArgument("restart not begun");
  auto remaining =
      ro_->WarmPages(opts_.node.tree.tree_id, opts_.warm_pages_per_step);
  BG3_RETURN_IF_ERROR(remaining.status());
  RefreshProgress();
  return remaining;
}

Status RwRestart::RunToCompletion() {
  while (true) {
    auto remaining = Step();
    BG3_RETURN_IF_ERROR(remaining.status());
    if (remaining.value() == 0) return Status::OK();
  }
}

Result<std::unique_ptr<RwNode>> RwRestart::Take() {
  if (ro_ == nullptr) return Status::InvalidArgument("restart not begun");
  auto exported = ro_->ExportTree(opts_.node.tree.tree_id);
  BG3_RETURN_IF_ERROR(exported.status());
  RefreshProgress();
  progress_.warm_complete = true;
  progress_.pages_remaining = 0;
  ro_.reset();
  return RwNode::FromExport(store_, opts_.node, std::move(exported.value()));
}

void RwRestart::RefreshProgress() {
  auto remaining = ro_->WarmPages(opts_.node.tree.tree_id, 0);
  if (remaining.ok()) {
    progress_.pages_remaining = remaining.value();
    progress_.warm_complete = remaining.value() == 0;
  }
  progress_.replayed_wal_bytes = ro_->WalBytesReplayed();
  progress_.total_wal_bytes = store_->TotalBytes(opts_.node.wal.stream);
  progress_.resumed_from_checkpoint = ro_->ResumedFromCheckpoint();
  progress_.checkpoint_fell_back = ro_->CheckpointFellBack();
}

}  // namespace bg3::replication
