#ifndef BG3_REPLICATION_CHANNEL_H_
#define BG3_REPLICATION_CHANNEL_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "common/thread_annotations.h"

namespace bg3::replication {

struct ChannelOptions {
  /// Probability that a send initiates a drop event.
  double loss_rate = 0.0;
  /// Consecutive messages lost per drop event (network loss is bursty; a
  /// lost TCP-forwarded command batch takes neighbours with it).
  size_t loss_burst = 2;
  uint64_t seed = 0xc4a7;
};

/// Unidirectional lossy message channel modelling the asynchronous Gremlin
/// command forwarding of the previous-generation ByteGraph (§2.3, §4.5):
/// "this approach is prone to causing disorder or packet loss during the
/// forwarding process". Thread safe.
class LossyChannel {
 public:
  explicit LossyChannel(const ChannelOptions& options);

  /// Enqueues `message` for the receiver; may silently drop it.
  void Send(std::string message);

  /// Receiver side: removes and returns all delivered messages.
  std::vector<std::string> Drain();

  uint64_t sent() const { return sent_.Get(); }
  uint64_t dropped() const { return dropped_.Get(); }

 private:
  const ChannelOptions opts_;

  Mutex mu_;
  std::deque<std::string> queue_ BG3_GUARDED_BY(mu_);
  Random rng_ BG3_GUARDED_BY(mu_);
  size_t burst_remaining_ BG3_GUARDED_BY(mu_) = 0;

  Counter sent_;
  Counter dropped_;
};

}  // namespace bg3::replication

#endif  // BG3_REPLICATION_CHANNEL_H_
