#include "replication/channel.h"

namespace bg3::replication {

LossyChannel::LossyChannel(const ChannelOptions& options)
    : opts_(options), rng_(options.seed) {}

void LossyChannel::Send(std::string message) {
  MutexLock lock(&mu_);
  sent_.Inc();
  if (burst_remaining_ > 0) {
    --burst_remaining_;
    dropped_.Inc();
    return;
  }
  if (opts_.loss_rate > 0.0 && rng_.Bernoulli(opts_.loss_rate)) {
    // A drop event eats this message and the next loss_burst - 1.
    burst_remaining_ = opts_.loss_burst > 0 ? opts_.loss_burst - 1 : 0;
    dropped_.Inc();
    return;
  }
  queue_.push_back(std::move(message));
}

std::vector<std::string> LossyChannel::Drain() {
  MutexLock lock(&mu_);
  std::vector<std::string> out(std::make_move_iterator(queue_.begin()),
                               std::make_move_iterator(queue_.end()));
  queue_.clear();
  return out;
}

}  // namespace bg3::replication
