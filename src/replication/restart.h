#ifndef BG3_REPLICATION_RESTART_H_
#define BG3_REPLICATION_RESTART_H_

#include <memory>

#include "replication/checkpoint.h"
#include "replication/ro_node.h"
#include "replication/rw_node.h"

namespace bg3::replication {

struct RestartOptions {
  /// Configuration of the node being restarted (same options the crashed
  /// incarnation ran with).
  RwNodeOptions node;
  /// Pages the background warm sweep materializes per Step().
  size_t warm_pages_per_step = 16;
  uint64_t ro_seed = 0x7e57a27;
  /// Disable to force a full-WAL replay (bench baseline for the
  /// replayed_bytes < total_wal_bytes comparison).
  bool resume_from_checkpoint = true;
};

struct RestartProgress {
  /// Reads are being served (checkpoint-consistent + full WAL suffix).
  bool reads_live = false;
  /// Every route page is materialized; Take() will not touch storage.
  bool warm_complete = false;
  size_t pages_remaining = 0;
  /// WAL payload bytes actually replayed vs the stream's total — the
  /// bounded-restart ratio (suffix-only when a checkpoint was found).
  uint64_t replayed_wal_bytes = 0;
  uint64_t total_wal_bytes = 0;
  bool resumed_from_checkpoint = false;
  bool checkpoint_fell_back = false;
};

/// Two-phase bounded-time crash restart of an RW node (DESIGN.md §5.7).
///
/// Begin() loads the last durable checkpoint manifest, seeks the WAL reader
/// past its cursor and replays only the suffix into a restore view — after
/// which *reads go live*: Get/Scan serve the recovered state immediately,
/// and a read whose page is not yet materialized triggers its own
/// single-page fetch (demand-driven restore) instead of waiting for the
/// full sweep. Step() warms remaining pages in the background; Take()
/// installs the materialized state into a fresh RwNode — only then do
/// writes resume ("reads at checkpoint-consistency, writes after replay").
///
/// Time-to-first-read is bounded by the WAL suffix + one page fetch,
/// independent of total WAL length; time-to-full-QPS adds the warm sweep,
/// bounded by the database size, not the WAL.
class RwRestart {
 public:
  RwRestart(cloud::CloudStore* store, const RestartOptions& options);

  RwRestart(const RwRestart&) = delete;
  RwRestart& operator=(const RwRestart&) = delete;

  /// Phase 1: checkpoint load + WAL-suffix replay. On return reads are
  /// live. Fails only on substrate errors (NotFound if the tree never
  /// existed — nothing to restart into).
  Status Begin();

  /// Reads during restore (phase 1.5): checkpoint-consistent plus the full
  /// replayed suffix — the same strong consistency a finished recovery
  /// gives, just served from the restore view with demand paging.
  Result<std::string> Get(const Slice& key, const OpContext* ctx = nullptr);
  Status Scan(const Slice& start_key, const Slice& end_key, size_t limit,
              std::vector<bwtree::Entry>* out, const OpContext* ctx = nullptr);

  /// One background warm round (warm_pages_per_step pages); returns the
  /// pages still unmaterialized. 0 = warm sweep complete.
  Result<size_t> Step();

  /// Drives Step() until the warm sweep completes.
  Status RunToCompletion();

  /// Phase 2: installs the restored state into a fresh RwNode and returns
  /// it — the write path re-opens here. Warms any pages the sweep has not
  /// reached yet (call RunToCompletion first for a fully bounded Take).
  /// The restore view is consumed; only progress() remains valid.
  Result<std::unique_ptr<RwNode>> Take();

  const RestartProgress& progress() const { return progress_; }

 private:
  void RefreshProgress();

  cloud::CloudStore* const store_;
  const RestartOptions opts_;
  std::unique_ptr<RoNode> ro_;
  RestartProgress progress_;
};

}  // namespace bg3::replication

#endif  // BG3_REPLICATION_RESTART_H_
