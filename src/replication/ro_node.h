#ifndef BG3_REPLICATION_RO_NODE_H_
#define BG3_REPLICATION_RO_NODE_H_

#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bwtree/bwtree.h"
#include "cloud/cloud_store.h"
#include "common/histogram.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/result.h"
#include "common/retry.h"
#include "common/thread_annotations.h"
#include "wal/reader.h"

namespace bg3::replication {

struct RoNodeOptions {
  cloud::StreamId wal_stream = 0;
  /// Page cache capacity; eviction is LRU ("the cache on RO node
  /// dynamically evicts pages from DRAM based on the read requests").
  size_t cache_capacity_pages = 4096;
  /// Simulated WAL tail interval; a record waits Uniform(0, interval) to be
  /// noticed (feeds the leader-follower latency of Figs. 13/14).
  uint64_t poll_interval_us = 50'000;
  /// Pending-log vectors longer than this are merged in place ("we
  /// regularly merge multiple modifications of the same page in the log
  /// area in the background").
  size_t pending_compact_threshold = 128;
  /// Minimum wall-clock gap between actual WAL tail scans. 0 = tail on
  /// every read (strict freshness, used by tests); production-style nodes
  /// tail on a cadence so reads are not serialized on the WAL stream.
  uint64_t min_poll_gap_us = 0;
  uint64_t seed = 0x20;
  /// Retry policy for the node's store I/O (WAL tailing, manifest gets,
  /// base/delta reads). When a tail's budget is exhausted the node
  /// *degrades* instead of failing reads: it serves the last consistent
  /// state, leaves its WAL cursor in place, and catches up on a later poll
  /// (stats().poll_degraded counts these episodes).
  RetryOptions retry;
  /// Bootstrap from the durable checkpoint manifest when one exists: seek
  /// the WAL reader past the checkpoint cursor so only the suffix is read
  /// (DESIGN.md §5.7). With no checkpoint published (or the manifest
  /// unusable and both slots torn), behavior is the historical full-WAL
  /// replay. Disable to force full replay (bench baselines).
  bool resume_from_checkpoint = true;
};

/// Aggregated RO-node counters.
struct RoNodeStats {
  Counter cache_hits;
  Counter cache_misses;
  Counter wal_mutations;   ///< mutation records consumed from the WAL.
  Counter replayed;        ///< pending records applied onto cached pages.
  Counter discarded;       ///< pending records dropped by checkpoints.
  Counter storage_reads;   ///< base/delta images fetched on cache misses.
  Counter pending_merges;  ///< background pending-log compactions.
  /// WAL polls abandoned after retry exhaustion: the node fell behind and
  /// will catch up once the substrate recovers.
  Counter poll_degraded;
  /// 1 while the node is serving stale-but-consistent state because its
  /// last WAL poll degraded; 0 once a poll fully succeeds again. Exported
  /// as `overload.degraded` so operators see degradation as a level, not
  /// just an episode count (DESIGN.md §5.5).
  Gauge degraded;
  /// Reads served entirely under the shared node latch (cache hit, no
  /// pending replay, no poll due). Only possible with min_poll_gap_us > 0.
  Counter fast_reads;
};

/// A Read-Only node of §3.4 / Fig. 7: tails the WAL into an in-memory
/// lazy-replay log indexed by page id, serves reads from a page cache, and
/// reconstructs missing pages from the *old* storage mapping plus replay —
/// the mechanism that gives BG3 strong leader-follower consistency without
/// blocking the RW node.
///
/// Thread safe via a single node latch. Mutating paths (WAL polls, cache
/// fills, pending replay) hold it exclusively; with min_poll_gap_us > 0 a
/// point read whose page is cached and fully replayed is served under a
/// *shared* hold, so concurrent readers of a warm node no longer serialize.
/// Cross-node read scaling in Fig. 14 still comes from adding RO nodes, as
/// in the paper; the shared path scales readers within one node.
class RoNode {
 public:
  RoNode(cloud::CloudStore* store, const RoNodeOptions& options);
  ~RoNode();

  RoNode(const RoNode&) = delete;
  RoNode& operator=(const RoNode&) = delete;

  /// Consumes newly appended WAL records (route/meta updates, pending-log
  /// growth, checkpoint-based discard). Explicit calls always tail the WAL
  /// (this is the background poller's entry point); the implicit polls
  /// reads issue are additionally throttled by min_poll_gap_us.
  Status PollWal();

  /// Strongly consistent point read: reflects every write the RW node
  /// WAL-published before this call. The optional OpContext deadline rides
  /// every store read the node issues on behalf of this request (cache
  /// fills, manifest gets); background catch-up polls stay deadline-free.
  Result<std::string> Get(bwtree::TreeId tree, const Slice& key,
                          const OpContext* ctx = nullptr);

  /// Ordered range scan (multi-hop graph reads on RO nodes).
  Status Scan(bwtree::TreeId tree, const Slice& start_key,
              const Slice& end_key, size_t limit,
              std::vector<bwtree::Entry>* out, const OpContext* ctx = nullptr);

  /// Background maintenance: merge pending logs page by page.
  void CompactPendingLogs();

  /// Full materialized layout of one tree, for crash recovery of an RW
  /// node: every leaf page's key range and logical content as of the
  /// latest WAL state (see replication::RecoverRwNode).
  struct ExportedTree {
    bwtree::TreeId tree_id = 0;
    std::vector<bwtree::RecoveredPage> pages;  ///< key order.
    bwtree::Lsn max_lsn = 0;                   ///< newest LSN in the WAL.
  };
  Result<ExportedTree> ExportTree(bwtree::TreeId tree);

  size_t PendingRecordCount() const;
  size_t CachedPageCount() const;

  /// WAL position this node has consumed through; the minimum across all
  /// readers bounds safe WAL truncation.
  cloud::PagePointer WalCursor() const;

  /// WAL payload bytes this node has read — with a checkpoint resume,
  /// exactly the replayed suffix (compare to the stream's total bytes for
  /// the replayed_bytes < total_wal_bytes restart assertion).
  uint64_t WalBytesReplayed() const;

  /// True once bootstrap found a usable checkpoint manifest and seeked the
  /// WAL reader past its cursor.
  bool ResumedFromCheckpoint() const;
  /// True when the head checkpoint slot was torn and the previous epoch's
  /// manifest was used instead.
  bool CheckpointFellBack() const;
  /// LSN of the checkpoint the node resumed from (0 = full replay).
  bwtree::Lsn ResumeCheckpointLsn() const;

  /// Checkpoint-restore warm sweep: materializes up to `max` uncached pages
  /// of `tree` (route order) and returns how many remain unmaterialized.
  /// `max` 0 just counts. Demand reads warm their own pages concurrently —
  /// the restore-priority rule is simply "whoever is read first, first".
  Result<size_t> WarmPages(bwtree::TreeId tree, size_t max);

  /// Snapshot of the cache's resident (tree, page) set — what a rolling
  /// restart hands the replacement node so it pre-warms the peer's working
  /// set instead of sweeping cold storage (DESIGN.md §5.10).
  std::vector<std::pair<bwtree::TreeId, bwtree::PageId>> ResidentPages() const;

  /// Targeted pre-warm: materializes exactly the listed pages (skipping
  /// ones already cached or no longer present in the layout). Returns how
  /// many were newly materialized.
  Result<size_t> WarmPageSet(
      const std::vector<std::pair<bwtree::TreeId, bwtree::PageId>>& pages);

  /// Failover epoch boundary: a promotion published `term`, so stale-term
  /// WAL batches still held in the reader's seq-gap map are dropped and
  /// future stale arrivals are deduped on sight (wal::WalReader::AdvanceTerm).
  void AdvanceWalTerm(uint64_t term);

  /// Simulated leader-follower latency samples (publish + poll + log read).
  Histogram& sync_latency() { return sync_latency_; }
  RoNodeStats& stats() { return stats_; }

 private:
  struct PageMeta {
    std::string low_key;
    std::string high_key;
    bool has_high_key = false;
    bwtree::PageId parent = bwtree::kInvalidPage;
    bwtree::Lsn split_lsn = 0;
  };

  struct PendingLog {
    std::vector<wal::WalRecord> records;  ///< LSN-ascending.
    /// Size after the last merge; compaction re-runs only once the log has
    /// grown meaningfully past it (merging can't shrink unique-key logs).
    size_t last_compacted_size = 0;
  };

  struct TreeState {
    std::map<std::string, bwtree::PageId> route;
    std::unordered_map<bwtree::PageId, PageMeta> meta;
    /// The lazy-replay log area, indexed by page number (§3.4 "to improve
    /// the efficiency of searching the log area ... an index keyed by page
    /// number").
    std::unordered_map<bwtree::PageId, PendingLog> pending;
  };

  struct CachedPage {
    std::vector<bwtree::Entry> entries;  ///< sorted merged view.
    bwtree::Lsn applied_lsn = 0;
    /// LRU tick; atomic so shared-latch readers may refresh it.
    std::atomic<uint64_t> last_use{0};

    CachedPage() = default;
    CachedPage(CachedPage&& o) noexcept
        : entries(std::move(o.entries)),
          applied_lsn(o.applied_lsn),
          last_use(o.last_use.load(std::memory_order_relaxed)) {}
    CachedPage& operator=(CachedPage&& o) noexcept {
      entries = std::move(o.entries);
      applied_lsn = o.applied_lsn;
      last_use.store(o.last_use.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
      return *this;
    }
  };

  using CacheKey = std::pair<bwtree::TreeId, bwtree::PageId>;

  /// Shared-latch point-read attempt. kHit/kMiss are authoritative (page
  /// cached, fully replayed, no poll due); kIneligible means the caller
  /// must retry under the exclusive latch.
  enum class FastRead { kHit, kMiss, kIneligible };
  FastRead TryGetFastLocked(bwtree::TreeId tree, const Slice& key,
                            std::string* value) BG3_REQUIRES_SHARED(mu_);

  /// `force` skips the min_poll_gap_us throttle (explicit PollWal calls).
  Status PollWalLocked(bool force = false) BG3_REQUIRES(mu_);
  Status ApplyWalRecordLocked(const wal::WalRecord& record) BG3_REQUIRES(mu_);

  /// opts_.retry with accounting wired to the store's IoStats and
  /// exhaustion reported to the store's circuit breaker; the read variant
  /// additionally retries Corruption (wire bit-flips re-read fine). The
  /// caller's deadline (if any) bounds the whole retry schedule.
  RetryOptions StoreRetryOptions(const OpContext* ctx = nullptr) const;
  RetryOptions ReadRetryOptions(const OpContext* ctx = nullptr) const;
  /// ManifestGet with retry; NotFound (a semantic "no image") passes
  /// through untouched.
  Result<std::string> RetryingManifestGet(const std::string& key,
                                          const OpContext* ctx = nullptr);
  Result<std::string> RetryingStorageRead(const cloud::PagePointer& ptr,
                                          const OpContext* ctx = nullptr);
  /// Seeds route/meta from the shared mapping table, so a node can come up
  /// against a truncated WAL (images + ranges substitute for the dropped
  /// prefix of TreeInit/Split records).
  void BootstrapFromManifestLocked() BG3_REQUIRES(mu_);

  /// Returns the cached page, building it from storage + replay on a miss.
  Result<CachedPage*> GetPageLocked(bwtree::TreeId tree, bwtree::PageId page,
                                    const OpContext* ctx = nullptr)
      BG3_REQUIRES(mu_);
  Status BuildViewLocked(bwtree::TreeId tree, bwtree::PageId page,
                         CachedPage* out, const OpContext* ctx = nullptr)
      BG3_REQUIRES(mu_);
  /// Applies pending records newer than the page's applied_lsn.
  void ApplyPendingLocked(TreeState& ts, bwtree::TreeId tree,
                          bwtree::PageId page, CachedPage* cp)
      BG3_REQUIRES(mu_);
  void EvictIfNeededLocked() BG3_REQUIRES(mu_);

  static void ApplyEntry(std::vector<bwtree::Entry>* entries,
                         const bwtree::DeltaEntry& e);
  static void CompactPendingVector(std::vector<wal::WalRecord>* recs);

  cloud::CloudStore* const store_;
  const RoNodeOptions opts_;
  wal::WalReader reader_;

  mutable SharedMutex mu_;
  bool bootstrapped_ BG3_GUARDED_BY(mu_) = false;
  bool resumed_from_checkpoint_ BG3_GUARDED_BY(mu_) = false;
  bool checkpoint_fell_back_ BG3_GUARDED_BY(mu_) = false;
  bwtree::Lsn resume_checkpoint_lsn_ BG3_GUARDED_BY(mu_) = 0;
  uint64_t last_poll_us_ BG3_GUARDED_BY(mu_) = 0;
  bwtree::Lsn max_lsn_seen_ BG3_GUARDED_BY(mu_) = 0;
  std::map<bwtree::TreeId, TreeState> trees_ BG3_GUARDED_BY(mu_);
  std::map<CacheKey, CachedPage> cache_ BG3_GUARDED_BY(mu_);
  /// LRU clock; atomic (not latch-guarded) so shared-latch reads can tick.
  std::atomic<uint64_t> use_tick_{0};
  Random rng_ BG3_GUARDED_BY(mu_);

  Histogram sync_latency_;
  RoNodeStats stats_;
  /// Per-instance registry prefix (`bg3.replication.ro<N>.`) the node's
  /// sync-latency histogram and counters are registered under.
  std::string metrics_prefix_;
};

}  // namespace bg3::replication

#endif  // BG3_REPLICATION_RO_NODE_H_
