#include "replication/forwarding.h"

#include "common/coding.h"

namespace bg3::replication {

Status ForwardingRwNode::Put(const Slice& key, const Slice& value) {
  {
    MutexLock lock(&mu_);
    data_[key.ToString()] = value.ToString();
  }
  Forward('P', key, value);
  return Status::OK();
}

Status ForwardingRwNode::Delete(const Slice& key) {
  {
    MutexLock lock(&mu_);
    data_.erase(key.ToString());
  }
  Forward('D', key, Slice());
  return Status::OK();
}

Result<std::string> ForwardingRwNode::Get(const Slice& key) const {
  MutexLock lock(&mu_);
  auto it = data_.find(key.ToString());
  if (it == data_.end()) return Status::NotFound("no such key");
  return it->second;
}

void ForwardingRwNode::Forward(char op, const Slice& key, const Slice& value) {
  std::string cmd;
  cmd.push_back(op);
  PutLengthPrefixedSlice(&cmd, key);
  PutLengthPrefixedSlice(&cmd, value);
  for (LossyChannel* ch : followers_) ch->Send(cmd);
}

void ForwardingRoNode::Drain() {
  for (std::string& cmd : channel_->Drain()) {
    Slice in(cmd);
    if (in.empty()) continue;
    const char op = in[0];
    in.remove_prefix(1);
    Slice key, value;
    if (!GetLengthPrefixedSlice(&in, &key) ||
        !GetLengthPrefixedSlice(&in, &value)) {
      continue;  // malformed command: drop (models replay failure)
    }
    MutexLock lock(&mu_);
    if (op == 'P') {
      data_[key.ToString()] = value.ToString();
    } else if (op == 'D') {
      data_.erase(key.ToString());
    }
  }
}

Result<std::string> ForwardingRoNode::Get(const Slice& key) const {
  MutexLock lock(&mu_);
  auto it = data_.find(key.ToString());
  if (it == data_.end()) return Status::NotFound("no such key");
  return it->second;
}

size_t ForwardingRoNode::Size() const {
  MutexLock lock(&mu_);
  return data_.size();
}

}  // namespace bg3::replication
