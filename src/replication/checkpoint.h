#ifndef BG3_REPLICATION_CHECKPOINT_H_
#define BG3_REPLICATION_CHECKPOINT_H_

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bwtree/bwtree.h"
#include "cloud/cloud_store.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/retry.h"
#include "wal/record.h"

namespace bg3::replication {

class RwNode;

/// One tree covered by a checkpoint: every mutation of `tree_id` with
/// LSN <= `flushed_lsn` is contained in the published page images.
struct CheckpointTree {
  bwtree::TreeId tree_id = 0;
  bwtree::Lsn flushed_lsn = 0;
};

/// Forest owner-registry entry persisted with a checkpoint: which tree an
/// owner's adjacency list lives in (0 = the shared INIT tree) and how many
/// entries it had, so a restored forest resumes split-out/merge-back
/// decisions without rescanning (core layer; unused by WAL-stream scopes).
struct CheckpointOwner {
  uint64_t owner = 0;
  bwtree::TreeId tree_id = 0;
  uint64_t entry_count = 0;
};

/// The durable checkpoint manifest (DESIGN.md §5.7). Its contract: every
/// mutation with LSN <= `checkpoint_lsn` is covered by page images published
/// in the shared mapping table, so recovery may start its WAL scan strictly
/// after `wal_cursor` and drop replayed mutations at or below the LSN —
/// replay cost is the WAL *suffix*, independent of total WAL length.
struct CheckpointManifest {
  uint64_t epoch = 0;  ///< monotonically increasing publish counter.
  cloud::StreamId wal_stream = 0;
  /// Last WAL batch whose records are all covered; null when the scope has
  /// no WAL (GraphDB-level checkpoints).
  cloud::PagePointer wal_cursor;
  /// (term, seq) identity of that batch under the pipelined writer's batch
  /// framing (0, 0 for pre-pipeline manifests): recovery seeds its reader
  /// with them so late-landing duplicates of batches at or below the cursor
  /// are deduplicated rather than replayed out of order.
  uint64_t wal_term = 0;
  uint64_t wal_seq = 0;
  bwtree::Lsn checkpoint_lsn = 0;

  wal::WalCursor WalResumeCursor() const {
    return wal::WalCursor{wal_cursor, wal_term, wal_seq};
  }
  std::vector<CheckpointTree> trees;    ///< last-flushed LSN per tree.
  std::vector<CheckpointOwner> owners;  ///< forest owner registry.

  /// Encoding carries a trailing CRC-32C; Decode fails with Corruption on
  /// any mismatch, which is what makes torn-manifest fallback detectable.
  std::string Encode() const;
  static Status Decode(const Slice& input, CheckpointManifest* out);
};

/// Manifest keys. Two alternating slots plus a head pointer give atomic
/// checkpoint publication on a plain KV manifest: the new manifest is
/// written to slot (epoch % 2) first, then the head is flipped to the new
/// epoch. A crash (or torn write) between the two steps leaves the head on
/// the previous epoch, whose slot is untouched — recovery falls back to it.
std::string CheckpointHeadKey(const std::string& scope);
std::string CheckpointSlotKey(const std::string& scope, uint64_t epoch);
/// Scope naming for per-WAL-stream checkpoints (RW-node Checkpointer).
std::string WalCheckpointScope(cloud::StreamId stream);

/// Slot write then head flip, in that order.
Status PublishCheckpoint(cloud::CloudStore* store, const std::string& scope,
                         const CheckpointManifest& manifest);

struct LoadedCheckpoint {
  CheckpointManifest manifest;
  /// True when the head-designated slot was unusable (torn/corrupt/missing)
  /// and the previous epoch's slot was used instead.
  bool fell_back = false;
};

/// Loads the newest durable checkpoint of `scope`. Falls back to the other
/// slot when the head slot is torn; NotFound when no usable checkpoint
/// exists (never checkpointed, or both slots torn — full-WAL replay).
Result<LoadedCheckpoint> LoadCheckpoint(cloud::CloudStore* store,
                                        const std::string& scope,
                                        const RetryOptions& retry = {},
                                        const OpContext* ctx = nullptr);

// --- failover epoch records (DESIGN.md §5.10) ------------------------------

/// The durable leadership record of one WAL stream: who currently holds the
/// pen, at which term, since which promotion. Published with the same
/// two-slot + CRC-framed-head discipline as checkpoint manifests, but CAS'd
/// instead of blindly put — a double promotion must have exactly one winner,
/// decided by the manifest's version counter, not by timing.
struct EpochRecord {
  uint64_t epoch = 0;            ///< promotion counter (1 = first leader).
  uint64_t term = 0;             ///< fencing term of the leader it crowns.
  cloud::StreamId wal_stream = 0;

  /// Trailing CRC-32C, like CheckpointManifest; Decode fails with
  /// Corruption on a torn write.
  std::string Encode() const;
  static Status Decode(const Slice& input, EpochRecord* out);
};

std::string EpochHeadKey(const std::string& scope);
std::string EpochSlotKey(const std::string& scope, uint64_t epoch);
/// Scope naming for per-WAL-stream epoch records (mirrors
/// WalCheckpointScope).
std::string WalEpochScope(cloud::StreamId stream);

/// Loads the newest durable epoch record of `scope`: head slot first,
/// previous-epoch (or both-slot probe) fallback when the head or its slot is
/// torn. NotFound when no promotion was ever published.
Result<EpochRecord> LoadEpochRecord(cloud::CloudStore* store,
                                    const std::string& scope);

/// CAS-publishes {epoch: current+1, term} for `scope`. Fails with Aborted
/// when `term` does not exceed the current record's term, or when a
/// concurrent promotion won the slot CAS first (the double-promotion loser).
/// On success the record is durable and `term` is the one true leadership
/// term — the caller must fence the WAL stream to it before reading the
/// tail.
Result<EpochRecord> PublishEpochRecord(cloud::CloudStore* store,
                                       const std::string& scope,
                                       uint64_t term,
                                       cloud::StreamId wal_stream);

/// Continuous fuzzy checkpointing options.
struct CheckpointerOptions {
  /// Background thread cadence; each tick runs one bounded Step(). With
  /// autotuning enabled this is only the starting value.
  uint64_t interval_ms = 20;
  /// Dirty pages flushed per Step() — the increment size. Small values keep
  /// the checkpoint thread from monopolizing the store; the cut just takes
  /// more steps to drain.
  size_t max_pages_per_round = 32;
  /// Advance the WAL truncation point to the checkpoint cursor after each
  /// durable publish. Only safe when no reader's cursor can be behind the
  /// checkpoint (single-node deployments, or truncation coordinated by
  /// Cluster::TruncateWal); hence off by default.
  bool truncate_wal = false;
  /// Cadence autotuning (DESIGN.md §5.10): when > 0, the effective interval
  /// is re-derived at every publish from the observed WAL append rate so
  /// the expected suffix a promotion must replay stays at or below this
  /// many bytes — promotion cost stays bounded as the write rate grows
  /// instead of scaling with whatever fixed interval accumulated. 0 keeps
  /// the fixed interval_ms cadence.
  uint64_t target_suffix_replay_bytes = 0;
  /// Clamp for the autotuned interval.
  uint64_t min_interval_ms = 1;
  uint64_t max_interval_ms = 1000;
  /// Clock for rate observation (autotuning only). Null = process wall
  /// clock; tests pass a ManualTimeSource.
  const TimeSource* time_source = nullptr;
};

/// The pure cadence rule behind the autotuner, exposed for deterministic
/// unit testing: given `bytes_appended` WAL bytes observed over
/// `elapsed_us`, returns the interval at which the append rate accumulates
/// about `opts.target_suffix_replay_bytes` between publishes, clamped to
/// [min_interval_ms, max_interval_ms]. A zero rate (idle stream, or zero
/// elapsed time) returns `fallback_ms` clamped — no observation, no change.
uint64_t AutotuneCheckpointIntervalMs(const CheckpointerOptions& opts,
                                      uint64_t bytes_appended,
                                      uint64_t elapsed_us,
                                      uint64_t fallback_ms);

struct CheckpointerStats {
  Counter cuts_started;
  Counter pages_flushed;
  Counter manifests_written;
  Counter wal_extents_truncated;
  Counter step_errors;  ///< Steps abandoned on I/O error (cut stays open).
};

/// The decoupled checkpoint thread (DESIGN.md §5.7): incrementally flushes
/// the RW node's dirty pages and publishes a checkpoint manifest, without
/// ever blocking the write path for more than one bounded flush round.
///
/// A cut is fuzzy in the ARIES sense — writers keep mutating while it
/// drains. Soundness of the capture order (LSN, WAL flush + cursor, dirty
/// snapshot): a writer assigns its LSN, appends to the WAL and sets the
/// page's dirty bit all under the exclusive leaf latch, so any mutation
/// with LSN <= the cut LSN either has its page in the dirty snapshot (the
/// snapshot latches each leaf) or the page was flushed since — in both
/// cases an image covering it is staged before the manifest publishes.
/// Mutations that land after the WAL-flush point sit past the cut cursor
/// and are replayed from the suffix; replaying a record an image already
/// covers is harmless (RO replay is LSN-gated per page).
class Checkpointer {
 public:
  Checkpointer(cloud::CloudStore* store, RwNode* node,
               const CheckpointerOptions& options = {});
  ~Checkpointer();

  Checkpointer(const Checkpointer&) = delete;
  Checkpointer& operator=(const Checkpointer&) = delete;

  /// Starts / stops the background thread. Stop() is idempotent and leaves
  /// any open cut to be finished by later Step()/CheckpointNow() calls.
  void Start();
  void Stop();

  /// One bounded increment of the state machine: begin a cut, flush the
  /// next page round, or publish. Deterministic test entry point; also what
  /// each background tick runs. An I/O failure abandons the step but keeps
  /// the cut open — the next step retries the remaining pages.
  Status Step();

  /// Drives the current (or a fresh) cut to a durable manifest.
  Status CheckpointNow();

  bool CutInProgress() const;
  uint64_t epoch() const;
  /// LSN of the newest durable (manifest-published) checkpoint.
  bwtree::Lsn published_lsn() const;
  /// The cadence currently in effect: interval_ms until the autotuner's
  /// first observation, then the derived value.
  uint64_t effective_interval_ms() const;
  const std::string& scope() const { return scope_; }
  CheckpointerStats& stats() { return stats_; }

 private:
  struct Cut {
    bool active = false;
    bwtree::Lsn lsn = 0;
    wal::WalCursor wal_cursor;
    std::vector<bwtree::PageId> pending;  ///< dirty snapshot, drained in order.
    size_t next = 0;
  };

  Status StepLocked();
  Status PublishCutLocked();
  void ThreadMain();

  cloud::CloudStore* const store_;
  RwNode* const node_;
  const CheckpointerOptions opts_;
  const std::string scope_;

  /// Serializes Step/CheckpointNow/Stop; plain std::mutex (like the GraphDB
  /// maintenance thread) — it never nests inside ranked locks.
  mutable std::mutex mu_;
  Cut cut_;
  uint64_t epoch_ = 0;
  bwtree::Lsn published_lsn_ = 0;
  // Autotuner state (under mu_): cadence in effect plus the (time, WAL
  // bytes) sample taken at the previous publish.
  uint64_t effective_interval_ms_ = 0;
  uint64_t last_publish_us_ = 0;
  uint64_t last_publish_wal_bytes_ = 0;
  const TimeSource* autotune_clock_ = nullptr;

  std::thread thread_;
  std::mutex thread_mu_;
  std::condition_variable thread_cv_;
  bool stop_ = false;
  bool running_ = false;

  CheckpointerStats stats_;
  std::string metrics_prefix_;
};

}  // namespace bg3::replication

#endif  // BG3_REPLICATION_CHECKPOINT_H_
