#include "replication/chaos.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <unordered_set>
#include <utility>

#include "cloud/cloud_store.h"
#include "cloud/fault_injector.h"
#include "common/logging.h"
#include "common/random.h"
#include "replication/cluster.h"

namespace bg3::replication {
namespace {

std::string ChaosKey(uint64_t id) {
  char buf[24];
  snprintf(buf, sizeof(buf), "c%08llu", static_cast<unsigned long long>(id));
  return buf;
}

std::string LeaderValue(uint64_t key, uint64_t step) {
  return "k" + std::to_string(key) + ".s" + std::to_string(step);
}

std::string ZombieValue(uint64_t key, uint64_t step) {
  return "zombie.k" + std::to_string(key) + ".s" + std::to_string(step);
}

/// Per-key model of what the schedule has written. `last_acked_step` is the
/// newest *acknowledged* write (0 = none); `issued` holds every value ever
/// attempted on the key through a live leader — a rejected put's records can
/// stay buffered and land on a later flush, so its value is admissible until
/// a newer put acks past it.
struct KeyModel {
  uint64_t last_acked_step = 0;
  std::string acked_value;
  std::map<uint64_t, std::string> issued;  ///< step -> value.
};

struct Checker {
  const ChaosOptions& opts;
  std::map<uint64_t, KeyModel> model;
  /// Values written through a fenced zombie: visible NOWHERE, ever.
  std::unordered_set<std::string> forbidden;
  uint64_t verified = 0;

  Status Violation(uint64_t step, const std::string& what) const {
    return Status::Corruption("chaos violation (seed=" +
                              std::to_string(opts.seed) + " step=" +
                              std::to_string(step) + "): " + what);
  }

  /// Validates one observed read of `key` against the model.
  Status Check(uint64_t step, uint64_t key, const Result<std::string>& read,
               const char* where) {
    ++verified;
    const KeyModel* km = [&]() -> const KeyModel* {
      auto it = model.find(key);
      return it == model.end() ? nullptr : &it->second;
    }();
    const std::string key_str = ChaosKey(key);
    if (!read.ok()) {
      if (!read.status().IsNotFound()) {
        return Violation(step, std::string(where) + " read of " + key_str +
                                   " failed: " + read.status().ToString());
      }
      if (km != nullptr && km->last_acked_step != 0) {
        return Violation(
            step, "acked write lost: " + std::string(where) + " read of " +
                      key_str + " is NotFound but step " +
                      std::to_string(km->last_acked_step) + " acked \"" +
                      km->acked_value + "\"");
      }
      return Status::OK();
    }
    const std::string& v = read.value();
    if (forbidden.count(v) != 0) {
      return Violation(step, "stale-term record applied: " +
                                 std::string(where) + " read of " + key_str +
                                 " returned fenced zombie value \"" + v +
                                 "\"");
    }
    if (km == nullptr) {
      return Violation(step, std::string(where) + " read of " + key_str +
                                 " returned \"" + v +
                                 "\" but the key was never written");
    }
    // The value must be one this schedule issued on this key, at or after
    // the newest acked step (an older value would be a stale read — the
    // acked write has a higher LSN on the same key and must win).
    uint64_t value_step = 0;
    for (const auto& [s, issued_v] : km->issued) {
      if (issued_v == v) {
        value_step = s;
        break;
      }
    }
    if (value_step == 0) {
      return Violation(step, std::string(where) + " read of " + key_str +
                                 " returned \"" + v +
                                 "\" which was never issued for this key");
    }
    if (value_step < km->last_acked_step) {
      return Violation(
          step, "stale read: " + std::string(where) + " read of " + key_str +
                    " returned \"" + v + "\" (step " +
                    std::to_string(value_step) + ") but step " +
                    std::to_string(km->last_acked_step) + " acked \"" +
                    km->acked_value + "\"");
    }
    return Status::OK();
  }
};

}  // namespace

const char* ChaosEventName(ChaosEvent::Kind kind) {
  switch (kind) {
    case ChaosEvent::Kind::kPut:
      return "put";
    case ChaosEvent::Kind::kRead:
      return "read";
    case ChaosEvent::Kind::kLeaderRead:
      return "leader_read";
    case ChaosEvent::Kind::kPromote:
      return "promote";
    case ChaosEvent::Kind::kZombieResume:
      return "zombie_resume";
    case ChaosEvent::Kind::kFollowerRestart:
      return "follower_restart";
    case ChaosEvent::Kind::kReap:
      return "reap";
  }
  return "unknown";
}

std::vector<ChaosEvent> GenerateChaosSchedule(const ChaosOptions& opts) {
  BG3_CHECK_GT(opts.steps, 0);
  BG3_CHECK_GT(opts.partitions, 0);
  BG3_CHECK_GT(opts.followers_per_partition, 0);
  BG3_CHECK_GT(opts.keyspace, 0u);
  const double weights[] = {
      opts.put_weight,          opts.read_weight,
      opts.leader_read_weight,  opts.promote_weight,
      opts.zombie_resume_weight, opts.follower_restart_weight,
      opts.reap_weight,
  };
  double total = 0;
  for (double w : weights) total += w;
  BG3_CHECK_GT(total, 0.0);

  Random rng(opts.seed);
  std::vector<ChaosEvent> schedule;
  schedule.reserve(opts.steps);
  for (int i = 0; i < opts.steps; ++i) {
    ChaosEvent ev;
    double draw = rng.NextDouble() * total;
    int kind = 0;
    while (kind < 6 && draw >= weights[kind]) {
      draw -= weights[kind];
      ++kind;
    }
    ev.kind = static_cast<ChaosEvent::Kind>(kind);
    ev.partition = static_cast<int>(rng.Uniform(opts.partitions));
    ev.index = static_cast<int>(rng.Uniform(opts.followers_per_partition));
    ev.key = rng.Uniform(opts.keyspace);
    schedule.push_back(ev);
  }
  return schedule;
}

std::string ChaosReport::ToString() const {
  return "chaos(seed=" + std::to_string(seed) + "): " +
         std::to_string(steps) + " steps, " + std::to_string(puts_acked) +
         " acked / " + std::to_string(puts_rejected) + " rejected puts, " +
         std::to_string(reads) + " reads, " + std::to_string(promotions) +
         " promotions, " + std::to_string(zombie_resumes) +
         " zombie resumes (" + std::to_string(zombie_writes_rejected) +
         " writes rejected), " + std::to_string(follower_restarts) +
         " follower restarts, " + std::to_string(reaps) + " reaps, " +
         std::to_string(verified_keys) + " reads verified, " +
         std::to_string(fenced_appends) + " fenced appends, " +
         std::to_string(zombie_drained) + " records drained, final term " +
         std::to_string(final_term);
}

Result<ChaosReport> RunChaos(const ChaosOptions& opts) {
  // Fresh substrate per run: schedule determinism must not depend on what
  // an earlier run left in a shared store.
  cloud::FaultInjectorOptions fopts;
  fopts.seed = opts.seed ^ 0xFA;
  fopts.transient_error_p = opts.transient_error_p;
  fopts.latency_spike_p = opts.latency_spike_p;
  cloud::FaultInjector injector(fopts);

  auto store = std::make_unique<cloud::CloudStore>();
  ClusterOptions copts;
  copts.partitions = opts.partitions;
  copts.followers_per_partition = opts.followers_per_partition;
  copts.max_leaf_entries = 32;
  // Group flushes stay manual: a zombie must never publish page images of
  // mutations whose WAL batches were fenced away (see DESIGN.md §5.10).
  copts.flush_group_pages = 1u << 30;
  copts.flush_group_mutations = 1ull << 40;
  copts.ro.seed = opts.seed + 7;
  // Followers tail eagerly — chaos probes consistency, not poll latency.
  copts.ro.poll_interval_us = 0;
  copts.wal.group_window_us = 0;
  if (opts.transient_error_p > 0) {
    copts.tree_retry.max_attempts = 6;
    copts.wal.retry.max_attempts = 6;
    copts.ro.retry.max_attempts = 6;
  }
  copts.checkpointing = opts.checkpointing;
  copts.checkpointer.interval_ms = 1;
  Bg3Cluster cluster(store.get(), copts);
  store->SetFaultInjector(&injector);
  cluster.StartCheckpointers();

  Checker checker{opts, {}, {}, 0};
  ChaosReport report;
  report.seed = opts.seed;

  const std::vector<ChaosEvent> schedule = GenerateChaosSchedule(opts);

  auto verify_all = [&](uint64_t step) -> Status {
    for (const auto& [key, km] : checker.model) {
      if (km.issued.empty()) continue;
      BG3_RETURN_IF_ERROR(checker.Check(step, key, cluster.Get(ChaosKey(key)),
                                        "sweep follower"));
      BG3_RETURN_IF_ERROR(checker.Check(
          step, key, cluster.GetFromLeader(ChaosKey(key)), "sweep leader"));
    }
    return Status::OK();
  };

  const bool trace = getenv("BG3_CHAOS_TRACE") != nullptr;
  uint64_t step = 0;
  for (const ChaosEvent& ev : schedule) {
    ++step;
    report.steps = step;
    if (trace) {
      fprintf(stderr, "[chaos %3llu] %s p=%d i=%d key=%llu part(key)=%d\n",
              (unsigned long long)step, ChaosEventName(ev.kind), ev.partition,
              ev.index, (unsigned long long)ev.key,
              cluster.PartitionOf(ChaosKey(ev.key)));
    }
    switch (ev.kind) {
      case ChaosEvent::Kind::kPut: {
        const std::string key = ChaosKey(ev.key);
        const std::string value = LeaderValue(ev.key, step);
        KeyModel& km = checker.model[ev.key];
        km.issued[step] = value;
        RwNode* leader = cluster.leader(cluster.PartitionOf(key));
        const uint64_t errors_before = leader->wal_append_errors();
        const Status s = cluster.Put(key, value);
        // Acknowledged = the call succeeded AND its WAL append did too (the
        // tree observer swallows append errors into a counter). Anything
        // else stays "issued but unacked": admissible, never required.
        if (s.ok() && leader->wal_append_errors() == errors_before) {
          km.last_acked_step = step;
          km.acked_value = value;
          ++report.puts_acked;
        } else {
          ++report.puts_rejected;
        }
        break;
      }
      case ChaosEvent::Kind::kRead: {
        ++report.reads;
        BG3_RETURN_IF_ERROR(checker.Check(
            step, ev.key, cluster.Get(ChaosKey(ev.key)), "follower"));
        break;
      }
      case ChaosEvent::Kind::kLeaderRead: {
        ++report.reads;
        BG3_RETURN_IF_ERROR(checker.Check(
            step, ev.key, cluster.GetFromLeader(ChaosKey(ev.key)), "leader"));
        break;
      }
      case ChaosEvent::Kind::kPromote: {
        const Status s = cluster.PromoteFollower(ev.partition, ev.index);
        if (!s.ok()) {
          // With substrate faults underneath, a promotion may lose its I/O
          // (epoch manifest gets, catch-up polls). That is an availability
          // event, not a consistency one: the partition stays fenced until
          // a later promotion lands, and every invariant still holds.
          if (opts.transient_error_p == 0) {
            return checker.Violation(
                step, "promotion of partition " +
                          std::to_string(ev.partition) +
                          " failed: " + s.ToString());
          }
          break;
        }
        ++report.promotions;
        if (opts.verify_after_promote) {
          BG3_RETURN_IF_ERROR(verify_all(step));
        }
        break;
      }
      case ChaosEvent::Kind::kZombieResume: {
        RwNode* zombie = cluster.zombie(ev.partition);
        if (zombie == nullptr) break;  // nothing deposed to resurrect
        ++report.zombie_resumes;
        const std::string value = ZombieValue(ev.key, step);
        // Forbidden *before* the attempt: if the write sneaks through
        // anywhere, any later read of it is a violation.
        checker.forbidden.insert(value);
        const uint64_t errors_before = zombie->wal_append_errors();
        const Status s = zombie->Put(ChaosKey(ev.key), value);
        if (!s.ok() || zombie->wal_append_errors() > errors_before) {
          ++report.zombie_writes_rejected;
        }
        // Drain: Flush re-kicks parked batches straight into the fence.
        (void)zombie->wal_writer()->Flush();
        if (!zombie->wal_writer()->fenced()) {
          return checker.Violation(
              step, "zombie leader of partition " +
                        std::to_string(ev.partition) +
                        " wrote after promotion without tripping the fence");
        }
        break;
      }
      case ChaosEvent::Kind::kFollowerRestart: {
        const Status s = cluster.RestartFollower(ev.partition, ev.index);
        if (!s.ok() && opts.transient_error_p == 0) {
          return checker.Violation(
              step, "restart of follower " + std::to_string(ev.index) +
                        " of partition " + std::to_string(ev.partition) +
                        " failed: " + s.ToString());
        }
        ++report.follower_restarts;
        break;
      }
      case ChaosEvent::Kind::kReap: {
        if (cluster.zombie(ev.partition) != nullptr) ++report.reaps;
        cluster.ReapZombie(ev.partition);
        break;
      }
    }
  }

  // Final sweep: every key the schedule touched, through both read paths.
  cluster.StopCheckpointers();
  BG3_RETURN_IF_ERROR(verify_all(step));

  report.verified_keys = checker.verified;
  report.fenced_appends = cluster.fenced_appends();
  report.zombie_drained = cluster.zombie_drained();
  for (int p = 0; p < cluster.partitions(); ++p) {
    report.final_term = std::max(report.final_term, cluster.term(p));
  }
  return report;
}

}  // namespace bg3::replication
