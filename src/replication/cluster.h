#ifndef BG3_REPLICATION_CLUSTER_H_
#define BG3_REPLICATION_CLUSTER_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "cloud/cloud_store.h"
#include "common/metrics.h"
#include "replication/checkpoint.h"
#include "replication/ro_node.h"
#include "replication/rw_node.h"

namespace bg3::replication {

struct ClusterOptions {
  /// "It's feasible to deploy multiple RW nodes, as we can distribute write
  /// requests across distinct RW nodes using hashing" (§3.1).
  int partitions = 2;
  /// RO nodes per partition (the 1M1F / 1M2F / ... setups of Fig. 14).
  int followers_per_partition = 1;

  size_t max_leaf_entries = 256;
  size_t flush_group_pages = 64;
  uint64_t flush_group_mutations = 8192;
  /// Retry policy for every leader tree's store I/O (the WAL and RO
  /// policies travel in their own option templates below).
  RetryOptions tree_retry;
  wal::WalWriterOptions wal;  ///< template; stream assigned per partition.
  RoNodeOptions ro;           ///< template; wal_stream assigned per partition.

  /// Continuous fuzzy checkpointing (DESIGN.md §5.7): every partition
  /// leader gets a Checkpointer publishing wal<stream>-scope manifests, so
  /// leader recovery and fresh followers replay only the WAL suffix and
  /// TruncateWal can reclaim the covered prefix. Threads are not started
  /// automatically — call StartCheckpointers(), or step deterministically
  /// via checkpointer(partition) in tests.
  bool checkpointing = false;
  CheckpointerOptions checkpointer;
};

/// A full BG3 deployment over one shared cloud store (Fig. 2): hashed write
/// partitions, each a RW node with its own WAL and Bw-tree, replicated to a
/// pool of strongly consistent RO nodes; plus the operational machinery the
/// topology needs — leader crash recovery and WAL truncation bounded by the
/// slowest follower.
class Bg3Cluster {
 public:
  Bg3Cluster(cloud::CloudStore* store, const ClusterOptions& options);

  Bg3Cluster(const Bg3Cluster&) = delete;
  Bg3Cluster& operator=(const Bg3Cluster&) = delete;

  // --- data path -------------------------------------------------------------
  Status Put(const Slice& key, const Slice& value);
  Status Delete(const Slice& key);

  /// Strongly consistent read served by a follower (round-robin across the
  /// key's partition pool).
  Result<std::string> Get(const Slice& key);
  /// Read served by the partition leader.
  Result<std::string> GetFromLeader(const Slice& key);

  /// Globally ordered scan of [start, end): per-partition scans merged
  /// (keys are hash-partitioned, so every partition may hold range pieces).
  Status Scan(const Slice& start_key, const Slice& end_key, size_t limit,
              std::vector<bwtree::Entry>* out);

  // --- operations --------------------------------------------------------------
  /// Group-flush every partition leader (checkpoint everywhere).
  Status FlushAll();

  /// Simulates a leader crash on `partition` and rebuilds it from shared
  /// storage (manifest + WAL). Followers keep serving throughout.
  Status CrashAndRecoverLeader(int partition);

  // --- failover (DESIGN.md §5.10) ------------------------------------------
  /// Promotes follower `follower_index` of `partition` to RW leader:
  /// allocates a term past every term ever observed, CAS-publishes the
  /// epoch record (the double-promotion loser fails here with Aborted),
  /// fences the WAL stream at the new term — from that instant the old
  /// leader's in-flight pipelined groups land nowhere — catches the
  /// follower up to the now-final WAL tail, drops stale-term holds, and
  /// reopens the follower's materialized state as the leader. The old
  /// leader is *not* destroyed: it becomes the partition's zombie
  /// (`zombie(partition)`), still alive and still trying to append, which
  /// is exactly the failure mode term fencing exists for. The promoted
  /// follower's pool slot is refilled with a fresh node bootstrapped from
  /// the checkpoint manifest (suffix-only replay).
  Status PromoteFollower(int partition, int follower_index = 0);

  /// The deposed leader of the latest PromoteFollower on `partition`
  /// (nullptr when none). Tests poke it — Put/Flush on a zombie surface
  /// Status::Fenced and drain its pipeline. ReapZombie destroys it, folding
  /// its fenced-append counters into the cluster totals.
  RwNode* zombie(int partition) { return parts_[partition]->zombie.get(); }
  void ReapZombie(int partition);

  /// Tears down follower `index` of `partition` and rebuilds it pre-warmed
  /// from a peer follower's resident page set (its own set, captured before
  /// teardown, when the pool has no peer) instead of a cold-storage sweep.
  /// The rest of the pool keeps serving throughout.
  Status RestartFollower(int partition, int index);

  /// Orchestrated whole-cluster restart: per partition, each follower is
  /// restarted one at a time (RestartFollower) and the leader is failed
  /// over *last* via PromoteFollower, so the partition is never without a
  /// serving majority and the write outage is one promotion wide.
  Status RollingRestart();

  // --- failover telemetry ---------------------------------------------------
  /// Promotions completed.
  uint64_t promotions() const { return promotions_.Get(); }
  /// Fenced-append rejections / records drained across every deposed
  /// leader, live zombies included.
  uint64_t fenced_appends() const;
  uint64_t zombie_drained() const;
  /// Current leadership term of `partition`.
  uint64_t term(int partition) const {
    return parts_[partition]->term.load(std::memory_order_relaxed);
  }

  /// One node's health entry (the /healthz payload, DESIGN.md §5.10).
  struct NodeHealth {
    std::string role;  ///< "leader" | "follower" | "zombie"
    uint64_t term = 0;           ///< leadership term (leader/zombie only).
    wal::WalCursor committed;    ///< leader: committed WAL cursor.
    cloud::PagePointer cursor;   ///< follower: WAL consume position.
  };
  struct PartitionHealth {
    int partition = 0;
    std::vector<NodeHealth> nodes;
  };
  std::vector<PartitionHealth> Health() const;
  /// Health() rendered as the JSON fragment the debug server's /healthz
  /// embeds: `"partitions": [...]`.
  std::string HealthJson() const;

  /// Frees WAL extents every reader is guaranteed done with: strictly
  /// before min(slowest follower cursor, newest checkpoint record) — fresh
  /// followers bootstrap from the manifest, so nothing before the
  /// checkpoint is ever needed again. Returns extents freed.
  size_t TruncateWal(int partition);

  // --- introspection -------------------------------------------------------------
  /// Starts/stops every partition's checkpoint thread (no-op unless
  /// options.checkpointing).
  void StartCheckpointers();
  void StopCheckpointers();

  int partitions() const { return static_cast<int>(parts_.size()); }
  RwNode* leader(int partition) { return parts_[partition]->leader.get(); }
  /// Per-partition checkpointer; nullptr unless options.checkpointing.
  Checkpointer* checkpointer(int partition) {
    return parts_[partition]->checkpointer.get();
  }
  RoNode* follower(int partition, int index) {
    return parts_[partition]->followers[index].get();
  }
  int PartitionOf(const Slice& key) const;

  ~Bg3Cluster();

 private:
  struct Partition {
    bwtree::TreeId tree_id = 0;
    cloud::StreamId wal_stream = 0;
    std::unique_ptr<RwNode> leader;
    std::unique_ptr<RwNode> zombie;  ///< latest deposed leader, until reaped.
    std::unique_ptr<Checkpointer> checkpointer;
    std::vector<std::unique_ptr<RoNode>> followers;
    /// Current leadership term (atomic: read by metric callbacks / Health()
    /// while promotions swap the leader).
    std::atomic<uint64_t> term{0};
    /// Fenced-append counters folded out of reaped zombies (guarded by
    /// zombie_mu_).
    uint64_t retired_fenced = 0;
    uint64_t retired_drained = 0;
  };

  RwNodeOptions LeaderOptions(const Partition& part) const;
  std::unique_ptr<RoNode> MakeFollower(const Partition& part, int index) const;
  void RegisterMetrics();

  cloud::CloudStore* const store_;
  const ClusterOptions opts_;
  std::vector<std::unique_ptr<Partition>> parts_;
  std::atomic<uint64_t> read_rr_{0};

  /// Guards zombie pointers + retired counters against the metrics
  /// callbacks; leaf lock (never nests inside ranked locks).
  mutable std::mutex zombie_mu_;
  Counter promotions_;
  std::string metrics_prefix_;
  /// Name under which HealthJson() is registered with the debug server's
  /// /healthz (unregistered, as a barrier, in the destructor).
  std::string health_source_;
};

}  // namespace bg3::replication

#endif  // BG3_REPLICATION_CLUSTER_H_
