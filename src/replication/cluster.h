#ifndef BG3_REPLICATION_CLUSTER_H_
#define BG3_REPLICATION_CLUSTER_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "cloud/cloud_store.h"
#include "replication/checkpoint.h"
#include "replication/ro_node.h"
#include "replication/rw_node.h"

namespace bg3::replication {

struct ClusterOptions {
  /// "It's feasible to deploy multiple RW nodes, as we can distribute write
  /// requests across distinct RW nodes using hashing" (§3.1).
  int partitions = 2;
  /// RO nodes per partition (the 1M1F / 1M2F / ... setups of Fig. 14).
  int followers_per_partition = 1;

  size_t max_leaf_entries = 256;
  size_t flush_group_pages = 64;
  uint64_t flush_group_mutations = 8192;
  /// Retry policy for every leader tree's store I/O (the WAL and RO
  /// policies travel in their own option templates below).
  RetryOptions tree_retry;
  wal::WalWriterOptions wal;  ///< template; stream assigned per partition.
  RoNodeOptions ro;           ///< template; wal_stream assigned per partition.

  /// Continuous fuzzy checkpointing (DESIGN.md §5.7): every partition
  /// leader gets a Checkpointer publishing wal<stream>-scope manifests, so
  /// leader recovery and fresh followers replay only the WAL suffix and
  /// TruncateWal can reclaim the covered prefix. Threads are not started
  /// automatically — call StartCheckpointers(), or step deterministically
  /// via checkpointer(partition) in tests.
  bool checkpointing = false;
  CheckpointerOptions checkpointer;
};

/// A full BG3 deployment over one shared cloud store (Fig. 2): hashed write
/// partitions, each a RW node with its own WAL and Bw-tree, replicated to a
/// pool of strongly consistent RO nodes; plus the operational machinery the
/// topology needs — leader crash recovery and WAL truncation bounded by the
/// slowest follower.
class Bg3Cluster {
 public:
  Bg3Cluster(cloud::CloudStore* store, const ClusterOptions& options);

  Bg3Cluster(const Bg3Cluster&) = delete;
  Bg3Cluster& operator=(const Bg3Cluster&) = delete;

  // --- data path -------------------------------------------------------------
  Status Put(const Slice& key, const Slice& value);
  Status Delete(const Slice& key);

  /// Strongly consistent read served by a follower (round-robin across the
  /// key's partition pool).
  Result<std::string> Get(const Slice& key);
  /// Read served by the partition leader.
  Result<std::string> GetFromLeader(const Slice& key);

  /// Globally ordered scan of [start, end): per-partition scans merged
  /// (keys are hash-partitioned, so every partition may hold range pieces).
  Status Scan(const Slice& start_key, const Slice& end_key, size_t limit,
              std::vector<bwtree::Entry>* out);

  // --- operations --------------------------------------------------------------
  /// Group-flush every partition leader (checkpoint everywhere).
  Status FlushAll();

  /// Simulates a leader crash on `partition` and rebuilds it from shared
  /// storage (manifest + WAL). Followers keep serving throughout.
  Status CrashAndRecoverLeader(int partition);

  /// Frees WAL extents every reader is guaranteed done with: strictly
  /// before min(slowest follower cursor, newest checkpoint record) — fresh
  /// followers bootstrap from the manifest, so nothing before the
  /// checkpoint is ever needed again. Returns extents freed.
  size_t TruncateWal(int partition);

  // --- introspection -------------------------------------------------------------
  /// Starts/stops every partition's checkpoint thread (no-op unless
  /// options.checkpointing).
  void StartCheckpointers();
  void StopCheckpointers();

  int partitions() const { return static_cast<int>(parts_.size()); }
  RwNode* leader(int partition) { return parts_[partition]->leader.get(); }
  /// Per-partition checkpointer; nullptr unless options.checkpointing.
  Checkpointer* checkpointer(int partition) {
    return parts_[partition]->checkpointer.get();
  }
  RoNode* follower(int partition, int index) {
    return parts_[partition]->followers[index].get();
  }
  int PartitionOf(const Slice& key) const;

 private:
  struct Partition {
    bwtree::TreeId tree_id = 0;
    cloud::StreamId wal_stream = 0;
    std::unique_ptr<RwNode> leader;
    std::unique_ptr<Checkpointer> checkpointer;
    std::vector<std::unique_ptr<RoNode>> followers;
  };

  RwNodeOptions LeaderOptions(const Partition& part) const;

  cloud::CloudStore* const store_;
  const ClusterOptions opts_;
  std::vector<std::unique_ptr<Partition>> parts_;
  std::atomic<uint64_t> read_rr_{0};
};

}  // namespace bg3::replication

#endif  // BG3_REPLICATION_CLUSTER_H_
