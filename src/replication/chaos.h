#ifndef BG3_REPLICATION_CHAOS_H_
#define BG3_REPLICATION_CHAOS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace bg3::replication {

/// One node-level event in a chaos schedule — the crash/pause/resume layer
/// stacked on top of the substrate fault injector (DESIGN.md §5.2): where
/// the injector fails individual cloud operations, these events kill,
/// depose, resurrect and restart whole nodes of a Bg3Cluster.
struct ChaosEvent {
  enum class Kind : uint8_t {
    kPut,              ///< write through the current leader; ack -> model.
    kRead,             ///< strongly consistent follower read, model-checked.
    kLeaderRead,       ///< same check through the partition leader.
    kPromote,          ///< fence + depose the leader, promote a follower.
    kZombieResume,     ///< the deposed leader wakes up and tries to write.
    kFollowerRestart,  ///< tear down + pre-warm one follower.
    kReap,             ///< destroy the partition's zombie for good.
  };
  Kind kind = Kind::kPut;
  int partition = 0;  ///< target partition (promote/resume/restart/reap).
  int index = 0;      ///< follower index (promote/restart).
  uint64_t key = 0;   ///< key id (put/read), in [0, keyspace).
};

const char* ChaosEventName(ChaosEvent::Kind kind);

struct ChaosOptions {
  /// Seed of the schedule (and of the key/value draws). A (seed, options)
  /// pair fully determines the run; every violation message embeds it.
  uint64_t seed = 0xC4405;
  int steps = 600;
  int partitions = 2;
  int followers_per_partition = 2;
  uint64_t keyspace = 128;

  // Relative step-mix weights (normalized internally).
  double put_weight = 0.55;
  double read_weight = 0.22;
  double leader_read_weight = 0.05;
  double promote_weight = 0.06;
  double zombie_resume_weight = 0.05;
  double follower_restart_weight = 0.04;
  double reap_weight = 0.03;

  /// Substrate faults layered *under* the node schedule, forwarded to the
  /// fault injector (0 = clean substrate; node chaos only).
  double transient_error_p = 0.0;
  double latency_spike_p = 0.0;

  /// Run a checkpointer per partition so mid-schedule promotions bootstrap
  /// their replacement followers from a manifest (suffix-bounded replay).
  bool checkpointing = true;
  /// Full-keyspace model verification after every promotion (always done
  /// once at the end regardless).
  bool verify_after_promote = true;
};

struct ChaosReport {
  uint64_t seed = 0;
  uint64_t steps = 0;
  uint64_t puts_acked = 0;
  uint64_t puts_rejected = 0;  ///< non-OK ack: value may or may not land.
  uint64_t reads = 0;
  uint64_t promotions = 0;
  uint64_t zombie_resumes = 0;
  uint64_t zombie_writes_rejected = 0;
  uint64_t follower_restarts = 0;
  uint64_t reaps = 0;
  uint64_t verified_keys = 0;     ///< model-checked reads, sweeps included.
  uint64_t fenced_appends = 0;    ///< cluster counter at schedule end.
  uint64_t zombie_drained = 0;    ///< cluster counter at schedule end.
  uint64_t final_term = 0;        ///< max partition term at schedule end.

  std::string ToString() const;
};

/// The deterministic node-event schedule for (options.seed): same options,
/// same events, every time.
std::vector<ChaosEvent> GenerateChaosSchedule(const ChaosOptions& options);

/// Runs the seeded schedule against a fresh store + cluster, checking after
/// every read that the cluster is linearizable for read-your-writes:
///  - an acknowledged write is never lost (NotFound after ack) and never
///    served stale (older value than the newest ack for its key);
///  - a value written through a deposed zombie after its term was fenced is
///    NEVER visible anywhere — zero stale-term records applied;
///  - every value served was actually written by this schedule to this key.
/// Returns the report, or the first violation as an error Status whose
/// message embeds the seed and step index for exact replay. Set the
/// BG3_CHAOS_TRACE environment variable to dump every scheduled event to
/// stderr while replaying a seed.
Result<ChaosReport> RunChaos(const ChaosOptions& options);

}  // namespace bg3::replication

#endif  // BG3_REPLICATION_CHAOS_H_
