#ifndef BG3_REPLICATION_FORWARDING_H_
#define BG3_REPLICATION_FORWARDING_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/thread_annotations.h"
#include "replication/channel.h"

namespace bg3::replication {

/// The previous-generation ByteGraph leader-follower scheme (§2.3): the RW
/// node applies a write locally and asynchronously forwards the write
/// command to every RO node over the network. Only eventual consistency —
/// a dropped command is simply missing on the RO until some eventual
/// repair. Fig. 12 measures the resulting recall under packet loss.
class ForwardingRwNode {
 public:
  explicit ForwardingRwNode(std::vector<LossyChannel*> followers)
      : followers_(std::move(followers)) {}

  Status Put(const Slice& key, const Slice& value);
  Status Delete(const Slice& key);
  Result<std::string> Get(const Slice& key) const;

 private:
  void Forward(char op, const Slice& key, const Slice& value);

  std::vector<LossyChannel*> followers_;
  mutable Mutex mu_;
  std::map<std::string, std::string> data_ BG3_GUARDED_BY(mu_);
};

/// RO-side replayer of forwarded commands.
class ForwardingRoNode {
 public:
  explicit ForwardingRoNode(LossyChannel* channel) : channel_(channel) {}

  /// Applies every delivered command (replay).
  void Drain();

  Result<std::string> Get(const Slice& key) const;
  size_t Size() const;

 private:
  LossyChannel* const channel_;
  mutable Mutex mu_;
  std::map<std::string, std::string> data_ BG3_GUARDED_BY(mu_);
};

}  // namespace bg3::replication

#endif  // BG3_REPLICATION_FORWARDING_H_
