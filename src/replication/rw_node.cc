#include "replication/rw_node.h"

#include <algorithm>

#include "common/logging.h"
#include "replication/ro_node.h"

namespace bg3::replication {

RwNode::RwNode(cloud::CloudStore* store, const RwNodeOptions& options)
    : store_(store), opts_(options), wal_(store, options.wal) {
  SetLockRanks();
  bwtree::BwTreeOptions tree_opts = opts_.tree;
  tree_opts.flush_mode = bwtree::FlushMode::kDeferred;
  tree_opts.read_cache = bwtree::ReadCacheMode::kFull;
  tree_opts.listener = this;
  if (tree_opts.lsn_source == nullptr) tree_opts.lsn_source = &lsn_source_;
  tree_ = std::make_unique<bwtree::BwTree>(store_, tree_opts);
  if (opts_.async_group_flush) {
    flusher_ = std::thread([this] { FlusherMain(); });
  }
}

RwNode::RwNode(BootstrapTag, cloud::CloudStore* store,
               const RwNodeOptions& options)
    : store_(store), opts_(options), wal_(store, options.wal) {
  SetLockRanks();
  bwtree::BwTreeOptions tree_opts = opts_.tree;
  tree_opts.flush_mode = bwtree::FlushMode::kDeferred;
  tree_opts.read_cache = bwtree::ReadCacheMode::kFull;
  tree_opts.listener = this;
  tree_opts.bootstrap = true;  // layout installed by Recover()
  if (tree_opts.lsn_source == nullptr) tree_opts.lsn_source = &lsn_source_;
  tree_ = std::make_unique<bwtree::BwTree>(store_, tree_opts);
  if (opts_.async_group_flush) {
    flusher_ = std::thread([this] { FlusherMain(); });
  }
}

RwNode::~RwNode() {
  if (flusher_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(flusher_mu_);
      flusher_stop_ = true;
    }
    flusher_cv_.notify_all();
    flusher_.join();
  }
}

void RwNode::FlusherMain() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(flusher_mu_);
      flusher_cv_.wait(lock,
                       [this] { return flusher_stop_ || flush_requested_; });
      // A request signalled before stop still runs (a write crossed the
      // threshold and was told the flusher would take it).
      if (flusher_stop_ && !flush_requested_) return;
      flush_requested_ = false;
    }
    async_flushes_.Inc();
    // Failures are counted, not retried here: the dirty pages stay dirty,
    // so the next threshold crossing re-signals and retries naturally.
    if (Status s = FlushGroup(); !s.ok()) async_flush_errors_.Inc();
  }
}

void RwNode::SetLockRanks() {
  flush_mu_.SetRank(lock_rank::kRwNode_flush_mu, "RwNode::flush_mu_");
  staged_mu_.SetRank(lock_rank::kRwNode_staged_mu, "RwNode::staged_mu_");
  ckpt_ptr_mu_.SetRank(lock_rank::kRwNode_ckpt_ptr_mu, "RwNode::ckpt_ptr_mu_");
}

Result<std::unique_ptr<RwNode>> RwNode::Recover(cloud::CloudStore* store,
                                                const RwNodeOptions& options) {
  // Materialize the full tree state the way an RO node would: the durable
  // checkpoint (if any) bounds the WAL scan to the suffix past its cursor;
  // manifest images ("old mapping") supply everything the prefix held.
  RoNodeOptions ro_opts;
  ro_opts.wal_stream = options.wal.stream;
  ro_opts.cache_capacity_pages = ~0ull;
  RoNode builder(store, ro_opts);
  auto exported = builder.ExportTree(options.tree.tree_id);
  BG3_RETURN_IF_ERROR(exported.status());
  return FromExport(store, options, std::move(exported.value()));
}

Result<std::unique_ptr<RwNode>> RwNode::FromExport(
    cloud::CloudStore* store, const RwNodeOptions& options,
    RoNode::ExportedTree&& exported) {
  auto node = std::unique_ptr<RwNode>(new RwNode(BootstrapTag{}, store, options));
  // Resume the LSN sequence after everything already in the WAL, so the
  // recovered node's records extend the same total order.
  node->lsn_source_.store(exported.max_lsn, std::memory_order_release);
  node->last_checkpoint_.store(exported.max_lsn, std::memory_order_release);
  BG3_RETURN_IF_ERROR(
      node->tree_->InstallRecoveredPages(std::move(exported.pages)));
  // Republish images for pages the WAL suffix touched and checkpoint, so RO
  // replay logs can be discarded and the WAL prefix becomes logically dead.
  // Pages whose exported content still matches their published image were
  // installed clean — this flush is bounded by the suffix, not the DB size.
  BG3_RETURN_IF_ERROR(node->FlushGroup());
  return node;
}

namespace {

/// Write-degradation watermark (DESIGN.md §5.5): a growing WAL flush
/// backlog means appends keep failing; piling more mutations onto it turns
/// a substrate blip into unbounded memory growth and an unbounded
/// recovery-replay window. Writes shed, reads never come through here.
Status CheckWalBacklog(const wal::WalWriter& wal, size_t watermark,
                       LightCounter* shed) {
  if (watermark == 0 || wal.BufferedRecords() < watermark) return Status::OK();
  shed->Inc();
  return Status::Overloaded("WAL flush backlog over watermark; write shed");
}

}  // namespace

Status RwNode::Put(const Slice& key, const Slice& value,
                   const OpContext* ctx) {
  BG3_RETURN_IF_ERROR(
      CheckWalBacklog(wal_, opts_.wal_backlog_watermark, &writes_shed_));
  BG3_RETURN_IF_ERROR(tree_->Upsert(key, value, ctx));
  return MaybeFlushGroup();
}

Status RwNode::Delete(const Slice& key, const OpContext* ctx) {
  BG3_RETURN_IF_ERROR(
      CheckWalBacklog(wal_, opts_.wal_backlog_watermark, &writes_shed_));
  BG3_RETURN_IF_ERROR(tree_->Delete(key, ctx));
  return MaybeFlushGroup();
}

Result<std::string> RwNode::Get(const Slice& key, const OpContext* ctx) {
  return tree_->Get(key, ctx);
}

Status RwNode::Scan(const bwtree::BwTree::ScanOptions& options,
                    std::vector<bwtree::Entry>* out, const OpContext* ctx) {
  return tree_->Scan(options, out, ctx);
}

Status RwNode::MaybeFlushGroup() {
  const bwtree::Lsn lsn = lsn_source_.load(std::memory_order_relaxed);
  const bool mutation_pressure =
      lsn - last_checkpoint_.load(std::memory_order_relaxed) >=
      opts_.flush_group_mutations;
  // Cheap dirty-count probe; exact flush happens under flush_mu_.
  if (!mutation_pressure &&
      tree_->DirtyPageIds().size() < opts_.flush_group_pages) {
    return Status::OK();
  }
  if (flusher_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(flusher_mu_);
      flush_requested_ = true;
    }
    flusher_cv_.notify_one();
    return Status::OK();
  }
  return FlushGroup();
}

Status RwNode::FlushGroup() {
  MutexLock flush_lock(&flush_mu_);
  // Every mutation with LSN <= checkpoint will be covered by the images we
  // are about to flush (all currently dirty pages are flushed; later
  // mutations may also sneak into the images, which is harmless — RO replay
  // is LSN-gated per page).
  const bwtree::Lsn checkpoint =
      lsn_source_.load(std::memory_order_acquire);
  const std::vector<bwtree::PageId> dirty = tree_->DirtyPageIds();
  for (bwtree::PageId id : dirty) {
    BG3_RETURN_IF_ERROR(tree_->FlushPage(id));
  }
  return PublishStagedLocked(checkpoint, /*force_record=*/!dirty.empty());
}

Status RwNode::CommitCheckpoint(bwtree::Lsn checkpoint_lsn) {
  MutexLock flush_lock(&flush_mu_);
  return PublishStagedLocked(checkpoint_lsn, /*force_record=*/false);
}

Status RwNode::PublishStagedLocked(bwtree::Lsn checkpoint, bool force_record) {
  // The WAL must be visible before any manifest entry that presumes it
  // (RO nodes replay from the WAL on top of published images).
  BG3_RETURN_IF_ERROR(wal_.Flush());

  // Publish staged mapping entries, children before parents (descending
  // page id; page ids are allocated monotonically, so a split child always
  // has a larger id than its parent). This guarantees an RO node never
  // observes a parent's post-split image while the child image is missing.
  std::vector<StagedImage> staged;
  {
    MutexLock lock(&staged_mu_);
    staged.swap(staged_);
  }
  std::sort(staged.begin(), staged.end(),
            [](const StagedImage& a, const StagedImage& b) {
              return a.page > b.page;
            });
  // Deduplicate: keep only the newest image per page (a page may flush
  // multiple times between groups via GC relocation).
  for (auto it = staged.begin(); it != staged.end();) {
    auto next = it + 1;
    if (next != staged.end() && next->tree == it->tree &&
        next->page == it->page) {
      // Same page: keep the entry with the larger flushed_lsn.
      if (next->meta.flushed_lsn < it->meta.flushed_lsn) *next = *it;
      it = staged.erase(it);
    } else {
      ++it;
    }
  }
  for (const StagedImage& s : staged) {
    store_->ManifestPut(PageImageKey(s.tree, s.page), s.meta.Encode());
  }

  if (force_record || !staged.empty()) {
    wal::WalRecord rec;
    rec.type = wal::WalRecord::Type::kCheckpoint;
    rec.tree_id = opts_.tree.tree_id;
    rec.lsn = checkpoint;
    BG3_RETURN_IF_ERROR(wal_.Append(std::move(rec)));
    BG3_RETURN_IF_ERROR(wal_.Flush());
    // Max-update: a fuzzy-cut commit carries the cut's (older) LSN and must
    // not roll back a further-along group-flush checkpoint.
    bwtree::Lsn prev = last_checkpoint_.load(std::memory_order_relaxed);
    while (prev < checkpoint &&
           !last_checkpoint_.compare_exchange_weak(
               prev, checkpoint, std::memory_order_release,
               std::memory_order_relaxed)) {
    }
    // Committed cursor, not the raw physical tail: with pipelined appends
    // the tail may belong to an out-of-order batch whose predecessors are
    // still in flight — truncating up to it could drop unacked records.
    MutexLock lock(&ckpt_ptr_mu_);
    last_checkpoint_wal_ptr_ = wal_.committed_cursor().ptr;
  }
  return Status::OK();
}

void RwNode::OnTreeInit(bwtree::TreeId tree, bwtree::PageId initial_page) {
  wal::WalRecord rec;
  rec.type = wal::WalRecord::Type::kTreeInit;
  rec.tree_id = tree;
  rec.page_id = initial_page;
  // Observer callbacks return void; a failed append cannot abort the tree
  // init, but it must not vanish either — count it for monitoring.
  if (Status s = wal_.Append(std::move(rec)); !s.ok()) {
    wal_append_errors_.Inc();
  }
  if (Status s = wal_.Flush(); !s.ok()) {
    wal_append_errors_.Inc();
  }
}

void RwNode::OnMutation(bwtree::TreeId tree, bwtree::PageId page,
                        bwtree::Lsn lsn, const bwtree::DeltaEntry& entry) {
  wal::WalRecord rec;
  rec.type = wal::WalRecord::Type::kMutation;
  rec.tree_id = tree;
  rec.page_id = page;
  rec.lsn = lsn;
  rec.entry = entry;
  if (Status s = wal_.Append(std::move(rec)); !s.ok()) {
    wal_append_errors_.Inc();
  }
}

void RwNode::OnSplit(bwtree::TreeId tree, bwtree::PageId old_page,
                     bwtree::PageId new_page, bwtree::Lsn lsn,
                     const std::string& separator) {
  wal::WalRecord rec;
  rec.type = wal::WalRecord::Type::kSplit;
  rec.tree_id = tree;
  rec.page_id = old_page;
  rec.aux_page_id = new_page;
  rec.lsn = lsn;
  rec.separator = separator;
  if (Status s = wal_.Append(std::move(rec)); !s.ok()) {
    wal_append_errors_.Inc();
  }
}

void RwNode::OnPageFlushed(bwtree::TreeId tree, bwtree::PageId page,
                           bwtree::Lsn flushed_lsn,
                           const cloud::PagePointer& base_ptr,
                           const std::vector<cloud::PagePointer>& delta_ptrs,
                           const std::string& low_key,
                           const std::string& high_key, bool has_high_key) {
  StagedImage staged;
  staged.tree = tree;
  staged.page = page;
  staged.meta.flushed_lsn = flushed_lsn;
  staged.meta.base_ptr = base_ptr;
  staged.meta.delta_ptrs = delta_ptrs;
  staged.meta.low_key = low_key;
  staged.meta.high_key = high_key;
  staged.meta.has_high_key = has_high_key;
  MutexLock lock(&staged_mu_);
  staged_.push_back(std::move(staged));
}

}  // namespace bg3::replication
