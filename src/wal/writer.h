#ifndef BG3_WAL_WRITER_H_
#define BG3_WAL_WRITER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "cloud/cloud_store.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/retry.h"
#include "wal/record.h"

namespace bg3::wal {

struct WalWriterOptions {
  cloud::StreamId stream = 0;
  /// Records buffered before a batch append. 1 = write-through (the paper
  /// appends the WAL "immediately after the RW update"); larger values
  /// amortize appends under very high write rates.
  size_t group_size = 1;
  /// Simulated group-buffer residency window: a record waits Uniform(0, w)
  /// before its batch is appended. Feeds sim_publish_latency_us.
  uint64_t group_window_us = 10'000;
  uint64_t seed = 0x57a1;
  /// Batch-append retry policy. A torn or transiently failed append is
  /// simply re-appended: the damaged copy never passes its CRC check, so
  /// tailing readers skip it, and duplicate *successful* batches are safe
  /// (replay is LSN-gated and split/init records are idempotent on RO
  /// nodes). On exhaustion the records stay buffered — the WAL falls
  /// behind and the next Append/Flush tries again; nothing acknowledged is
  /// ever dropped.
  RetryOptions retry;
};

/// Appends WAL batches to the shared cloud store, totally ordered. Thread
/// safe (single internal mutex — the WAL is one serialized stream by
/// design).
class WalWriter {
 public:
  WalWriter(cloud::CloudStore* store, const WalWriterOptions& options);

  /// Buffers one record; triggers a batch append once group_size is
  /// reached. Records become visible to readers only after their batch is
  /// appended. The optional OpContext deadline rides the batch append's
  /// retry loop (a failed flush leaves the records buffered either way).
  BG3_BLOCKING Status Append(WalRecord record, const OpContext* ctx = nullptr);

  /// Forces out any buffered records.
  BG3_BLOCKING Status Flush(const OpContext* ctx = nullptr);

  uint64_t batches_appended() const { return batches_.Get(); }
  uint64_t records_appended() const { return records_.Get(); }

  /// Records waiting for a batch append — the WAL flush backlog. Grows
  /// when appends keep failing (retry exhaustion leaves records buffered),
  /// so it is the write-degradation watermark signal of DESIGN.md §5.5.
  /// Lock-free (atomic mirror of buffer_.size()).
  size_t BufferedRecords() const {
    return buffered_records_.load(std::memory_order_relaxed);
  }

  /// Location of the most recently appended batch (null before the first).
  cloud::PagePointer last_append_ptr() const;

 private:
  BG3_BLOCKING Status FlushLocked(const OpContext* ctx);

  cloud::CloudStore* const store_;
  const WalWriterOptions opts_;

  mutable std::mutex mu_;
  std::vector<WalRecord> buffer_;
  std::atomic<size_t> buffered_records_{0};
  cloud::PagePointer last_append_ptr_;
  Random rng_;

  Counter batches_;
  Counter records_;
};

}  // namespace bg3::wal

#endif  // BG3_WAL_WRITER_H_
