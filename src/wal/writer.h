#ifndef BG3_WAL_WRITER_H_
#define BG3_WAL_WRITER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cloud/append_pipeline.h"
#include "cloud/cloud_store.h"
#include "common/commit_sequencer.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/retry.h"
#include "common/seqlock.h"
#include "wal/record.h"

namespace bg3::wal {

/// How Append/Flush reach the cloud store.
enum class WalWriterMode : uint8_t {
  /// Legacy inline path: the sealing thread encodes and appends the batch
  /// synchronously under the writer mutex. Kept as the measured baseline
  /// for bench_write_latency and for tests that pin the historical
  /// behavior.
  kSync,
  /// BtrLog-style pipeline (DESIGN.md §5.9): Append is a memory-only
  /// enqueue; a serializer thread stamps+encodes sealed batches off the
  /// caller thread; up to `inflight_appends` cloud appends run concurrently
  /// and complete out of order into a commit ledger that acknowledges
  /// strictly in log order.
  kPipelined,
};

struct WalWriterOptions {
  cloud::StreamId stream = 0;
  /// Records buffered before a batch append. 1 = write-through (the paper
  /// appends the WAL "immediately after the RW update"); larger values
  /// amortize appends under very high write rates.
  size_t group_size = 1;
  /// Simulated group-buffer residency window: a record waits Uniform(0, w)
  /// before its batch is appended. Feeds sim_publish_latency_us.
  uint64_t group_window_us = 10'000;
  uint64_t seed = 0x57a1;
  /// Batch-append retry policy. A torn or transiently failed append is
  /// simply re-appended: the damaged copy never passes its CRC check, so
  /// tailing readers skip it, and duplicate *successful* batches are safe
  /// (batches carry (term, seq) identities the reader dedupes on, and
  /// replay is LSN-gated besides). On exhaustion the records stay buffered
  /// — the WAL falls behind and the next Append/Flush tries again; nothing
  /// acknowledged is ever dropped.
  RetryOptions retry;

  WalWriterMode mode = WalWriterMode::kPipelined;
  /// Cloud appends allowed in flight at once (pipelined mode).
  size_t inflight_appends = 4;
  /// When true (the default), an Append that seals a batch blocks until
  /// that batch acknowledges — group-commit semantics identical to kSync:
  /// returning OK means the record (and everything before it) is durable,
  /// and a failed append surfaces on the sealing call with the records
  /// still buffered. Set false for fully asynchronous enqueue; callers
  /// then order durability themselves via WaitCommitted/Flush.
  bool commit_wait_on_seal = true;
  /// Forwarded to the append pipeline: sleep `simulated latency * scale`
  /// wall time per append so latency benches see real queueing. 0 = off.
  double wall_latency_scale = 0.0;
  /// Writer incarnation term. 0 (default) allocates the next process-wide
  /// term; failover passes the term it won via the epoch-record CAS so the
  /// promoted leader's batches carry it (DESIGN.md §5.10). Explicit terms
  /// raise the process allocator's floor, keeping later implicit writers
  /// strictly newer.
  uint64_t term = 0;
};

/// Allocates the next writer incarnation term — strictly greater than every
/// term allocated or observed in this process so far.
uint64_t AllocateWalTerm();
/// Raises the allocator floor so future AllocateWalTerm() results exceed
/// `observed` (call when adopting a term from a persisted epoch record).
void ObserveWalTerm(uint64_t observed);

/// Durability ticket: the cumulative enqueue index (1-based) of a record.
/// Acknowledgment is in-order, so waiting on a ticket waits for that record
/// *and every record enqueued before it*.
struct WalTicket {
  uint64_t index = 0;
};

/// Appends WAL batches to the shared cloud store, totally ordered by
/// enqueue. Thread safe. In pipelined mode the physical stream may carry
/// batches out of log order (parallel in-flight appends, late retries);
/// every batch is framed with this writer's term and a seal-order seq so
/// readers restore log order, and all externally visible state —
/// acknowledgments, committed_cursor(), batches_appended() — moves strictly
/// in log order regardless of completion order.
class WalWriter {
 public:
  WalWriter(cloud::CloudStore* store, const WalWriterOptions& options);
  /// Joins the pipeline: sealed and queued batches get one final shot
  /// (their normal retry loop), parked (already failed) batches are not
  /// retried again, and records still in the open buffer are dropped —
  /// exactly the loss surface of the legacy writer, where an unflushed
  /// buffer died with the process.
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Buffers one record; seals a batch once group_size is reached. Records
  /// become visible to readers only after their batch is appended. With
  /// commit_wait_on_seal (default) the sealing call blocks for its batch's
  /// in-order acknowledgment — so this returns exactly what the legacy
  /// inline flush returned; otherwise it is a memory-only enqueue. The
  /// optional OpContext deadline bounds the acknowledgment wait (sync mode:
  /// rides the batch append's retry loop).
  BG3_BLOCKING Status Append(WalRecord record, const OpContext* ctx = nullptr);

  /// Memory-only enqueue, never blocks on I/O or acknowledgment (pipelined
  /// mode; in sync mode this is Append minus nothing — it may still flush
  /// inline). Hands back the record's durability ticket.
  Status AppendAsync(WalRecord record, const OpContext* ctx, WalTicket* ticket);

  /// Blocks until every record up to `ticket` is durably acknowledged, the
  /// context deadline expires, or the pipeline reports an append failure
  /// (the failed batch stays buffered; a later Append/Flush re-kicks it).
  /// Seals the open buffer first if the ticket's record is still in it —
  /// a waiter forces its (possibly short) group out.
  BG3_BLOCKING Status WaitCommitted(WalTicket ticket,
                                    const OpContext* ctx = nullptr);

  /// Full durability barrier: seals any open records, re-kicks parked
  /// batches, and waits until everything enqueued before the call is
  /// acknowledged (no I/O on the calling thread in pipelined mode).
  BG3_BLOCKING Status Flush(const OpContext* ctx = nullptr);

  uint64_t batches_appended() const { return batches_.Get(); }
  uint64_t records_appended() const { return records_.Get(); }

  /// Records enqueued but not yet acknowledged (open buffer + sealed +
  /// in-flight + parked) — the WAL flush backlog. Grows when appends keep
  /// failing, so it is the write-degradation watermark signal of DESIGN.md
  /// §5.5; under the pipeline it also counts batches riding their cloud
  /// round trip. Lock-free.
  size_t BufferedRecords() const {
    return buffered_records_.load(std::memory_order_relaxed);
  }

  /// Records durably acknowledged (in enqueue order). Lock-free.
  uint64_t committed_records() const { return sequencer_.current(); }

  /// Physical location of the furthest successful append (null before the
  /// first). Lock-free (seqlock); in pipelined mode this can run ahead of
  /// the committed prefix — use committed_cursor() for anything that must
  /// name a durable, gap-free log position.
  cloud::PagePointer last_append_ptr() const { return physical_ptr_.Read(); }

  /// The safe resume point: every batch with seq > cursor.seq is physically
  /// at or after cursor.ptr, and everything at or below cursor.seq is
  /// acknowledged. Only advances when no completion is outstanding out of
  /// order (a Flush barrier always leaves it fresh). Lock-free (seqlock) —
  /// read on the checkpoint cut's hot path under the PR 7 latch order.
  WalCursor committed_cursor() const { return committed_cursor_.Read(); }

  /// This writer's incarnation id (stamped into every batch frame).
  uint64_t term() const { return term_; }

  // --- failover fencing (DESIGN.md §5.10) ----------------------------------
  /// True once any append completed with Status::Fenced: this writer has
  /// been deposed by a newer leader. The latch is permanent — a fenced
  /// writer drains, it never recovers. Appends already buffered or in
  /// flight are dropped (never acknowledged), and every waiter fails with
  /// the fence error.
  bool fenced() const;
  /// Batch appends rejected by the stream fence.
  uint64_t fenced_appends() const;
  /// Records dropped on the floor after the fence latched (in-flight
  /// batches plus parked batches drained instead of resubmitted). None of
  /// them was ever acknowledged.
  uint64_t zombie_drained() const;

 private:
  struct SealedBatch {
    uint64_t seq = 0;
    uint64_t last_ticket = 0;
    std::vector<WalRecord> records;
  };

  BG3_BLOCKING Status FlushLocked(const OpContext* ctx);
  /// Seals the open buffer into the serializer queue, billing the batch's
  /// eventual cloud append to `ctx` (the sealer pays for the group, as with
  /// the legacy inline flush). Returns the sealed seq, or 0 when the buffer
  /// was empty.
  uint64_t SealLocked(const OpContext* ctx);
  void SerializerMain();
  void OnAppendComplete(cloud::AppendPipeline::Completion done);
  /// Moves parked (failed) batches with seq < `below_seq` back into the
  /// append queue. The bound keeps a sealing Append from re-kicking its own
  /// just-failed batch — a failure must surface on that call, not get a
  /// retry its policy never granted.
  void KickParked(uint64_t below_seq);
  /// Waits for `target` tickets to commit, mapping pipeline failures to the
  /// append error exactly like the legacy inline flush surfaced it.
  BG3_BLOCKING Status WaitTicket(uint64_t target, const OpContext* ctx);

  cloud::CloudStore* const store_;
  const WalWriterOptions opts_;
  const uint64_t term_;

  // -- enqueue stage: the open buffer ---------------------------------------
  mutable std::mutex mu_;
  std::vector<WalRecord> buffer_;
  uint64_t enqueued_records_ = 0;  ///< cumulative; ticket of the newest.
  uint64_t next_seal_seq_ = 1;
  std::atomic<size_t> buffered_records_{0};

  // -- serializer + ledger --------------------------------------------------
  mutable std::mutex led_mu_;
  std::condition_variable led_cv_;
  std::deque<SealedBatch> seal_queue_;          ///< awaiting serialization.
  std::map<uint64_t, std::pair<cloud::PagePointer, uint64_t>>
      pending_;                                 ///< landed out of order.
  std::map<uint64_t, std::pair<std::string, uint64_t>>
      parked_;                                  ///< failed; await re-kick.
  uint64_t next_commit_seq_ = 1;
  uint64_t committed_record_count_ = 0;
  uint64_t outstanding_ = 0;  ///< serializing / queued / mid-append batches.
  cloud::PagePointer max_physical_ptr_;
  Status last_error_;
  bool stop_serializer_ = false;
  bool fenced_ = false;            ///< permanent once set; under led_mu_.
  uint64_t fenced_appends_ = 0;    ///< under led_mu_.
  uint64_t zombie_drained_ = 0;    ///< records dropped post-fence; led_mu_.

  CommitSequencer sequencer_;
  SeqLock<cloud::PagePointer> physical_ptr_;
  SeqLock<WalCursor> committed_cursor_;

  Random rng_;  ///< serializer-owned in pipelined mode; under mu_ in sync.
  Counter batches_;
  Counter records_;

  std::unique_ptr<cloud::AppendPipeline> pipeline_;
  std::thread serializer_;

  // Sync mode keeps everything under mu_.
  cloud::PagePointer last_append_ptr_sync_;
  uint64_t sync_seq_ = 0;
};

}  // namespace bg3::wal

#endif  // BG3_WAL_WRITER_H_
