#include "wal/writer.h"

#include <chrono>
#include <limits>

#include "common/coding.h"
#include "common/retry.h"
#include "common/timed_scope.h"

namespace bg3::wal {

namespace {

/// Writer incarnations must be unique and increasing so readers can order
/// terms across restarts (a recovered node's batches always carry a higher
/// term than its predecessor's).
std::atomic<uint64_t> g_next_term{1};

/// Physical stream order: extent, then offset within it.
bool PhysicallyAfter(const cloud::PagePointer& a, const cloud::PagePointer& b) {
  if (b.IsNull()) return true;
  if (a.extent_id != b.extent_id) return a.extent_id > b.extent_id;
  return a.offset > b.offset;
}

/// Size of the v1 batch body EncodeBatch would produce for `records` with
/// their current field values — the basis for the simulated append latency
/// (computed before latency stamping, matching the legacy probe encode).
size_t BatchBodySize(const std::vector<WalRecord>& records) {
  size_t n = VarintLength(records.size());
  for (const WalRecord& r : records) {
    const size_t sz = r.EncodedSize();
    n += VarintLength(sz) + sz;
  }
  return n;
}

/// Exact wire size of EncodeFramedBatch(term, seq, records): the v2 frame
/// (marker byte, term and seq varints, fixed32 crc) plus the v1 body.
size_t FramedBatchSize(uint64_t term, uint64_t seq,
                       const std::vector<WalRecord>& records) {
  return 1 + VarintLength(term) + VarintLength(seq) + 4 +
         BatchBodySize(records);
}

}  // namespace

uint64_t AllocateWalTerm() {
  return g_next_term.fetch_add(1, std::memory_order_relaxed);
}

void ObserveWalTerm(uint64_t observed) {
  uint64_t cur = g_next_term.load(std::memory_order_relaxed);
  while (cur <= observed &&
         !g_next_term.compare_exchange_weak(cur, observed + 1,
                                            std::memory_order_relaxed)) {
  }
}

namespace {

uint64_t PickTerm(uint64_t explicit_term) {
  if (explicit_term == 0) return AllocateWalTerm();
  ObserveWalTerm(explicit_term);
  return explicit_term;
}

}  // namespace

WalWriter::WalWriter(cloud::CloudStore* store, const WalWriterOptions& options)
    : store_(store),
      opts_(options),
      term_(PickTerm(options.term)),
      rng_(options.seed) {
  if (opts_.mode == WalWriterMode::kPipelined) {
    cloud::AppendPipelineOptions po;
    po.stream = opts_.stream;
    po.inflight = opts_.inflight_appends;
    po.retry = opts_.retry;
    po.wall_latency_scale = opts_.wall_latency_scale;
    po.term = term_;
    pipeline_ = std::make_unique<cloud::AppendPipeline>(
        store_, po,
        [this](cloud::AppendPipeline::Completion done) {
          OnAppendComplete(std::move(done));
        });
    serializer_ = std::thread([this] { SerializerMain(); });
  }
}

WalWriter::~WalWriter() {
  if (opts_.mode != WalWriterMode::kPipelined) return;
  {
    std::lock_guard<std::mutex> lock(led_mu_);
    stop_serializer_ = true;
  }
  led_cv_.notify_all();
  serializer_.join();
  // Drains queued submissions through one normal retry loop; parked batches
  // stay parked (their records are lost with the process, like the legacy
  // writer's unflushed buffer).
  pipeline_->Shutdown();
}

Status WalWriter::Append(WalRecord record, const OpContext* ctx) {
  BG3_TIMED_SCOPE("bg3.wal.append_ns");
  OpLayerScope wal_layer(OpLayer::kWal);
  if (ctx != nullptr && ctx->stats != nullptr) {
    // Bill the record to the request at enqueue time — the group flush that
    // eventually publishes it may run under a different request's context.
    // EncodedSize avoids the historical throwaway encode.
    OpStats::RecordWalAppend(ctx->stats, 1, record.EncodedSize());
  }
  if (opts_.mode == WalWriterMode::kSync) {
    std::lock_guard<std::mutex> lock(mu_);
    buffer_.push_back(std::move(record));
    ++enqueued_records_;
    buffered_records_.store(buffer_.size(), std::memory_order_relaxed);
    if (buffer_.size() >= opts_.group_size) return FlushLocked(ctx);
    return Status::OK();
  }
  uint64_t ticket = 0;
  uint64_t sealed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffer_.push_back(std::move(record));
    ticket = ++enqueued_records_;
    buffered_records_.fetch_add(1, std::memory_order_relaxed);
    if (buffer_.size() >= opts_.group_size) sealed = SealLocked(ctx);
  }
  if (sealed == 0) return Status::OK();
  led_cv_.notify_all();
  if (!opts_.commit_wait_on_seal) return Status::OK();
  // Earlier parked batches get a fresh shot (the legacy flush re-appended
  // the whole buffer, failed records included), but never the batch this
  // call just sealed — that one gets exactly its retry policy, and its
  // failure must surface here, not be quietly re-kicked.
  KickParked(sealed);
  return WaitTicket(ticket, ctx);
}

Status WalWriter::AppendAsync(WalRecord record, const OpContext* ctx,
                              WalTicket* ticket) {
  BG3_TIMED_SCOPE("bg3.wal.enqueue_ns");
  OpLayerScope wal_layer(OpLayer::kWal);
  if (ctx != nullptr && ctx->stats != nullptr) {
    OpStats::RecordWalAppend(ctx->stats, 1, record.EncodedSize());
  }
  if (opts_.mode == WalWriterMode::kSync) {
    Status s;
    {
      std::lock_guard<std::mutex> lock(mu_);
      buffer_.push_back(std::move(record));
      if (ticket != nullptr) ticket->index = ++enqueued_records_;
      buffered_records_.store(buffer_.size(), std::memory_order_relaxed);
      if (buffer_.size() >= opts_.group_size) s = FlushLocked(ctx);
    }
    return s;
  }
  uint64_t sealed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffer_.push_back(std::move(record));
    const uint64_t t = ++enqueued_records_;
    if (ticket != nullptr) ticket->index = t;
    buffered_records_.fetch_add(1, std::memory_order_relaxed);
    if (buffer_.size() >= opts_.group_size) sealed = SealLocked(ctx);
  }
  if (sealed != 0) led_cv_.notify_all();
  return Status::OK();
}

Status WalWriter::WaitCommitted(WalTicket ticket, const OpContext* ctx) {
  if (ticket.index == 0) return Status::OK();
  if (opts_.mode == WalWriterMode::kPipelined) {
    uint64_t sealed = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      // The ticket's record may still sit in the open buffer, which nothing
      // else is obligated to seal (the group is short of group_size). A
      // waiter forces its group out — classic group commit — or it would
      // wait forever.
      if (ticket.index > enqueued_records_ - buffer_.size()) {
        sealed = SealLocked(ctx);
      }
    }
    if (sealed != 0) led_cv_.notify_all();
    KickParked(std::numeric_limits<uint64_t>::max());
  }
  return WaitTicket(ticket.index, ctx);
}

Status WalWriter::Flush(const OpContext* ctx) {
  OpLayerScope wal_layer(OpLayer::kWal);
  if (opts_.mode == WalWriterMode::kSync) {
    std::lock_guard<std::mutex> lock(mu_);
    return FlushLocked(ctx);
  }
  uint64_t target = 0;
  uint64_t sealed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sealed = SealLocked(ctx);
    target = enqueued_records_;
  }
  if (sealed != 0) led_cv_.notify_all();
  // A barrier is a retry point for everything already sealed — including a
  // batch this very call sealed, should it fail while we wait (the next
  // WaitTicket round re-kicks nothing; failures surface as errors).
  KickParked(sealed != 0 ? sealed : std::numeric_limits<uint64_t>::max());
  if (target == 0) return Status::OK();
  return WaitTicket(target, ctx);
}

uint64_t WalWriter::SealLocked(const OpContext* ctx) {
  if (buffer_.empty()) return 0;
  if (ctx != nullptr && ctx->stats != nullptr) {
    // The batch's cloud append runs on a pipeline worker detached from any
    // request, so bill it here, to the request that sealed the batch — the
    // same attribution the legacy inline flush produced (the sealer paid
    // for the whole group). The framed wire size is exact without encoding.
    OpStats::RecordCloudAppend(
        ctx->stats, FramedBatchSize(term_, next_seal_seq_, buffer_));
  }
  SealedBatch batch;
  batch.seq = next_seal_seq_++;
  batch.last_ticket = enqueued_records_;
  batch.records = std::move(buffer_);
  buffer_.clear();
  {
    std::lock_guard<std::mutex> lock(led_mu_);
    ++outstanding_;
    seal_queue_.push_back(std::move(batch));
  }
  return next_seal_seq_ - 1;
}

void WalWriter::SerializerMain() {
  for (;;) {
    SealedBatch batch;
    {
      std::unique_lock<std::mutex> lock(led_mu_);
      led_cv_.wait(lock, [this] {
        return stop_serializer_ || !seal_queue_.empty();
      });
      if (seal_queue_.empty()) return;  // stopping and fully drained
      batch = std::move(seal_queue_.front());
      seal_queue_.pop_front();
    }
    // Stamp each record's simulated publish latency — its residency in the
    // group buffer plus the append latency of the batch itself — then
    // encode exactly once, off every caller's thread.
    BG3_TIMED_SCOPE("bg3.wal.serialize_ns");
    const uint64_t append_latency =
        store_->latency_model().AppendLatencyUs(BatchBodySize(batch.records));
    for (WalRecord& r : batch.records) {
      const uint64_t wait = opts_.group_size <= 1
                                ? 0
                                : rng_.Uniform(opts_.group_window_us + 1);
      r.sim_publish_latency_us = wait + append_latency;
    }
    std::string payload = EncodeFramedBatch(term_, batch.seq, batch.records);
    pipeline_->Submit(batch.seq, std::move(payload), batch.records.size());
  }
}

void WalWriter::OnAppendComplete(cloud::AppendPipeline::Completion done) {
  uint64_t newly_committed = 0;
  bool failed = false;
  {
    std::lock_guard<std::mutex> lock(led_mu_);
    --outstanding_;
    if (done.status.IsFenced()) {
      // Deposed: a newer leader fenced the stream. The batch never landed
      // and never will — drop it (no park, no retry), account the records
      // as drained, and latch the fence so every current and future waiter
      // fails with Fenced instead of hanging on a commit that cannot come.
      fenced_ = true;
      ++fenced_appends_;
      zombie_drained_ += done.record_count;
      buffered_records_.fetch_sub(done.record_count,
                                  std::memory_order_relaxed);
      last_error_ = done.status;
      failed = true;
    } else if (!done.status.ok()) {
      parked_.emplace(done.seq,
                      std::make_pair(std::move(done.payload),
                                     done.record_count));
      last_error_ = done.status;
      failed = true;
    } else {
      if (PhysicallyAfter(done.ptr, max_physical_ptr_)) {
        max_physical_ptr_ = done.ptr;
        physical_ptr_.Write(max_physical_ptr_);
      }
      pending_.emplace(done.seq, std::make_pair(done.ptr, done.record_count));
      while (!pending_.empty() &&
             pending_.begin()->first == next_commit_seq_) {
        const uint64_t n = pending_.begin()->second.second;
        pending_.erase(pending_.begin());
        ++next_commit_seq_;
        committed_record_count_ += n;
        batches_.Inc();
        records_.Add(n);
        buffered_records_.fetch_sub(n, std::memory_order_relaxed);
      }
      newly_committed = committed_record_count_;
      // Safe-frontier rule: the committed cursor may only advance when no
      // completion is outstanding out of order — every landed batch is
      // committed and nothing is mid-flight — because only then is "every
      // seq past the cursor sits physically past cursor.ptr" guaranteed
      // (future appends, including parked resubmissions, land at the tail).
      if (pending_.empty() && outstanding_ == 0 && next_commit_seq_ > 1) {
        committed_cursor_.Write(
            WalCursor{max_physical_ptr_, term_, next_commit_seq_ - 1});
      }
    }
  }
  if (failed) {
    sequencer_.Disturb();
  } else {
    sequencer_.Advance(newly_committed);
  }
}

void WalWriter::KickParked(uint64_t below_seq) {
  std::vector<std::pair<uint64_t, std::pair<std::string, uint64_t>>> again;
  {
    std::lock_guard<std::mutex> lock(led_mu_);
    if (parked_.empty()) return;
    if (fenced_) {
      // A fenced writer's parked batches are dead — resubmitting them would
      // only bounce off the stream fence. Drain them so the zombie reaches
      // a quiescent state instead of churning the pipeline.
      for (auto& [seq, item] : parked_) {
        zombie_drained_ += item.second;
        buffered_records_.fetch_sub(item.second, std::memory_order_relaxed);
      }
      parked_.clear();
      return;
    }
    for (auto it = parked_.begin(); it != parked_.end();) {
      if (it->first >= below_seq) break;  // sealed by (or after) the caller
      again.emplace_back(it->first, std::move(it->second));
      ++outstanding_;
      it = parked_.erase(it);
    }
  }
  for (auto& [seq, item] : again) {
    pipeline_->Submit(seq, std::move(item.first), item.second);
  }
}

Status WalWriter::WaitTicket(uint64_t target, const OpContext* ctx) {
  BG3_TIMED_SCOPE("bg3.wal.commit_wait_ns");
  for (;;) {
    // Two-phase wait: snapshot the disturb epoch, then check the parked
    // state, then wait against the snapshot. A failure that parks before
    // the check is seen here; one that parks after it bumps the epoch past
    // the snapshot, so the wait returns Busy instead of sleeping through
    // the (already delivered) Disturb.
    const uint64_t epoch = sequencer_.disturb_epoch();
    {
      std::lock_guard<std::mutex> lock(led_mu_);
      if (committed_record_count_ >= target) return Status::OK();
      if (fenced_) {
        // Nothing parked to re-kick: post-fence batches are dropped, so the
        // awaited commit can never arrive. Fail the waiter with the fence.
        return last_error_.IsFenced() ? last_error_
                                      : Status::Fenced("wal writer deposed");
      }
      if (!parked_.empty()) {
        // Some batch exhausted its retries. Surface the append error with
        // the records still buffered — the legacy inline flush's contract.
        return last_error_.ok() ? Status::IOError("wal append failed")
                                : last_error_;
      }
    }
    Status s = sequencer_.WaitReached(target, epoch, ctx);
    if (s.ok()) return s;
    if (!s.IsBusy()) return s;  // deadline expired mid-wait
    // Busy: loop to re-check the parked state under the next snapshot.
  }
}

bool WalWriter::fenced() const {
  std::lock_guard<std::mutex> lock(led_mu_);
  return fenced_;
}

uint64_t WalWriter::fenced_appends() const {
  std::lock_guard<std::mutex> lock(led_mu_);
  return fenced_appends_;
}

uint64_t WalWriter::zombie_drained() const {
  std::lock_guard<std::mutex> lock(led_mu_);
  return zombie_drained_;
}

Status WalWriter::FlushLocked(const OpContext* ctx) {
  if (buffer_.empty()) return Status::OK();
  BG3_TIMED_SCOPE("bg3.wal.sync_ns");
  // The batch append's cloud I/O is WAL work regardless of which layer's
  // request happened to trigger the flush.
  OpLayerScope wal_layer(OpLayer::kWal);
  // Stamp each record's simulated publish latency: its residency in the
  // group buffer plus the append latency of the batch itself (sized before
  // stamping, without the historical probe encode).
  const uint64_t append_latency =
      store_->latency_model().AppendLatencyUs(BatchBodySize(buffer_));
  for (WalRecord& r : buffer_) {
    const uint64_t wait = opts_.group_size <= 1
                              ? 0
                              : rng_.Uniform(opts_.group_window_us + 1);
    r.sim_publish_latency_us = wait + append_latency;
  }
  // The batch keeps its seq across failed attempts (the records stay
  // buffered), so readers never see a hole in the seq sequence.
  const std::string batch = EncodeFramedBatch(term_, sync_seq_ + 1, buffer_);
  RetryOptions retry = opts_.retry;
  retry.retries = &store_->stats().retries;
  retry.retry_exhausted = &store_->stats().retry_exhausted;
  retry.ctx = ctx;
  retry.breaker = &store_->breaker();
  uint64_t latency_us = 0;
  auto res = RetryResultWithBackoff(retry, [&] {
    return store_->AppendFenced(opts_.stream, term_, batch, &latency_us, ctx);
  });
  if (res.status().IsFenced()) {
    // Deposed mid-flush: latch the fence (sync mode keeps the records
    // buffered — they were never acknowledged, and every later flush fails
    // the same way).
    std::lock_guard<std::mutex> lock(led_mu_);
    fenced_ = true;
    ++fenced_appends_;
    last_error_ = res.status();
  }
  BG3_RETURN_IF_ERROR(res.status());
  if (opts_.wall_latency_scale > 0 && latency_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(
        static_cast<uint64_t>(latency_us * opts_.wall_latency_scale)));
  }
  ++sync_seq_;
  last_append_ptr_sync_ = res.value();
  physical_ptr_.Write(last_append_ptr_sync_);
  committed_cursor_.Write(
      WalCursor{last_append_ptr_sync_, term_, sync_seq_});
  batches_.Inc();
  records_.Add(buffer_.size());
  buffer_.clear();
  buffered_records_.store(0, std::memory_order_relaxed);
  sequencer_.Advance(enqueued_records_);
  return Status::OK();
}

}  // namespace bg3::wal
