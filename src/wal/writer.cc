#include "wal/writer.h"

#include "common/retry.h"
#include "common/timed_scope.h"

namespace bg3::wal {

WalWriter::WalWriter(cloud::CloudStore* store, const WalWriterOptions& options)
    : store_(store), opts_(options), rng_(options.seed) {}

Status WalWriter::Append(WalRecord record, const OpContext* ctx) {
  BG3_TIMED_SCOPE("bg3.wal.append_ns");
  OpLayerScope wal_layer(OpLayer::kWal);
  if (ctx != nullptr && ctx->stats != nullptr) {
    // Bill the record to the request at enqueue time — the group flush that
    // eventually publishes it may run under a different request's context.
    std::string encoded;
    record.EncodeTo(&encoded);
    OpStats::RecordWalAppend(ctx->stats, 1, encoded.size());
  }
  std::lock_guard<std::mutex> lock(mu_);
  buffer_.push_back(std::move(record));
  buffered_records_.store(buffer_.size(), std::memory_order_relaxed);
  if (buffer_.size() >= opts_.group_size) return FlushLocked(ctx);
  return Status::OK();
}

Status WalWriter::Flush(const OpContext* ctx) {
  std::lock_guard<std::mutex> lock(mu_);
  return FlushLocked(ctx);
}

cloud::PagePointer WalWriter::last_append_ptr() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_append_ptr_;
}

Status WalWriter::FlushLocked(const OpContext* ctx) {
  if (buffer_.empty()) return Status::OK();
  BG3_TIMED_SCOPE("bg3.wal.sync_ns");
  // The batch append's cloud I/O is WAL work regardless of which layer's
  // request happened to trigger the flush.
  OpLayerScope wal_layer(OpLayer::kWal);
  // Stamp each record's simulated publish latency: its residency in the
  // group buffer plus the append latency of the batch itself.
  const std::string probe = EncodeBatch(buffer_);
  const uint64_t append_latency =
      store_->latency_model().AppendLatencyUs(probe.size());
  for (WalRecord& r : buffer_) {
    const uint64_t wait = opts_.group_size <= 1
                              ? 0
                              : rng_.Uniform(opts_.group_window_us + 1);
    r.sim_publish_latency_us = wait + append_latency;
  }
  const std::string batch = EncodeBatch(buffer_);
  RetryOptions retry = opts_.retry;
  retry.retries = &store_->stats().retries;
  retry.retry_exhausted = &store_->stats().retry_exhausted;
  retry.ctx = ctx;
  retry.breaker = &store_->breaker();
  auto res = RetryResultWithBackoff(
      retry, [&] { return store_->Append(opts_.stream, batch, nullptr, ctx); });
  BG3_RETURN_IF_ERROR(res.status());
  last_append_ptr_ = res.value();
  batches_.Inc();
  records_.Add(buffer_.size());
  buffer_.clear();
  buffered_records_.store(0, std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace bg3::wal
