#ifndef BG3_WAL_READER_H_
#define BG3_WAL_READER_H_

#include <map>
#include <vector>

#include "cloud/cloud_store.h"
#include "wal/record.h"

namespace bg3::wal {

/// Tails the WAL stream of the shared store (step (3) in Fig. 7: the WAL
/// "is instantly read into the RO node's memory"). Each RO node owns one
/// reader; not thread safe (an RO node polls from one thread).
///
/// The pipelined writer may land batches physically out of log order
/// (parallel in-flight appends; a late retry lands after its successors).
/// The reader restores log order from the (term, seq) batch frames: a
/// batch arriving ahead of a seq gap is held until the gap fills, batches
/// at or below the delivered seq (redelivered duplicates — a successful
/// append whose acknowledgment the writer lost, or replay past a
/// conservative cursor) are dropped, and a term change (writer restart)
/// resets the expected seq to 1 and abandons holds from the dead term
/// (those batches were never acknowledged). Legacy v1 batches carry no
/// frame and pass straight through.
class WalReader {
 public:
  WalReader(cloud::CloudStore* store, cloud::StreamId stream)
      : store_(store), stream_(stream) {}

  /// Decodes all batches appended since the previous poll, in log order.
  Result<std::vector<WalRecord>> Poll(size_t max_batches = 1024);

  /// Suffix-bounded entry point for checkpoint recovery: positions the
  /// reader so the next Poll() returns only batches appended strictly after
  /// `cursor`. The store seeks straight to the cursor's extent, so none of
  /// the prefix is read (or re-read) — replay cost is proportional to the
  /// WAL suffix, not its total length. Mutation records with
  /// lsn <= `lsn_floor` that a suffix batch may still carry are dropped at
  /// decode time (the checkpoint guarantees published page images cover
  /// them); structural records (tree-init, split, checkpoint) always pass
  /// through — their replay is idempotent.
  ///
  /// This legacy overload has no (term, seq) anchor, so the first framed
  /// batch encountered anchors the expected sequence — only safe when the
  /// suffix was appended in order (single in-flight append), which every
  /// barrier-produced cursor guarantees. Prefer the WalCursor overload.
  void SeekTo(const cloud::PagePointer& cursor, bwtree::Lsn lsn_floor = 0) {
    Reset(cursor, lsn_floor);
    anchor_on_first_ = true;
  }

  /// Cursor-exact seek: resumes after `cursor.ptr` expecting
  /// (cursor.term, cursor.seq) to be the last delivered batch. Batches of
  /// that term at or below the seq (late-landing duplicates of already
  /// acknowledged appends) are dropped; higher terms restart at seq 1. A
  /// null cursor means "the stream's true beginning": the first term is
  /// expected to open at seq 1 even if a later batch lands physically
  /// first (the strict mode an out-of-order async writer needs).
  void SeekTo(const WalCursor& cursor, bwtree::Lsn lsn_floor = 0) {
    Reset(cursor.ptr, lsn_floor);
    expected_term_ = cursor.term;
    delivered_seq_ = cursor.seq;
  }

  /// Epoch-boundary notification (DESIGN.md §5.10): a promotion published
  /// `term`, so every batch of an older term that has not been delivered is
  /// now permanently stale — its writer was fenced before the batch could
  /// commit. Drops held batches from older terms and raises the expected
  /// term so future stale-term arrivals are deduped on sight instead of
  /// parking in the seq-gap map forever (organic term advance only happens
  /// when a newer-term batch is *seen*, which may be long after the stale
  /// holds arrived). Idempotent; lower terms are ignored.
  void AdvanceTerm(uint64_t term) {
    if (term <= expected_term_) return;
    batches_deduped_ += held_.size();
    held_.clear();
    expected_term_ = term;
    delivered_seq_ = 0;
    anchor_on_first_ = false;
    // With no gap outstanding the physical tail is once again safe.
    cursor_ = raw_cursor_;
  }

  uint64_t batches_consumed() const { return batches_consumed_; }

  /// Payload bytes of all batches consumed so far — with SeekTo, exactly
  /// the replayed WAL suffix (compare against the stream's total bytes).
  uint64_t bytes_consumed() const { return bytes_consumed_; }

  /// Mutation records dropped because they were at or below the seek floor.
  uint64_t records_filtered() const { return records_filtered_; }

  /// Duplicate batches dropped by (term, seq) dedupe.
  uint64_t batches_deduped() const { return batches_deduped_; }

  /// Batches currently held back waiting for a seq gap to fill.
  size_t batches_held() const { return held_.size(); }

  /// Position of the last batch consumed with no reordering outstanding
  /// (null before the first poll). Everything at or before this pointer may
  /// be truncated for this reader: while a seq gap is open the cursor stays
  /// put, so held batches are re-read (and deduped) after a restart rather
  /// than lost.
  const cloud::PagePointer& cursor() const { return cursor_; }

  /// Cursor plus the (term, seq) identity of the newest delivered batch —
  /// the resumable form for manifests and follower handoff.
  WalCursor Cursor() const {
    return WalCursor{cursor_, expected_term_, delivered_seq_};
  }

 private:
  void Reset(const cloud::PagePointer& cursor, bwtree::Lsn lsn_floor) {
    cursor_ = cursor;
    raw_cursor_ = cursor;
    lsn_floor_ = lsn_floor;
    expected_term_ = 0;
    delivered_seq_ = 0;
    anchor_on_first_ = false;
    held_.clear();
  }

  /// Applies the lsn floor and appends `batch` to `out`.
  void Deliver(std::vector<WalRecord>&& batch, std::vector<WalRecord>* out);

  cloud::CloudStore* const store_;
  const cloud::StreamId stream_;
  cloud::PagePointer cursor_;      ///< safe (truncation/restart) position.
  cloud::PagePointer raw_cursor_;  ///< physical tail position.
  bwtree::Lsn lsn_floor_ = 0;  ///< mutations at or below are checkpointed.
  uint64_t expected_term_ = 0;   ///< 0 until the first framed batch.
  uint64_t delivered_seq_ = 0;   ///< newest delivered seq of expected_term_.
  /// Adopt the first framed batch seen as the sequence anchor. The default
  /// (and legacy SeekTo) state: a never-positioned reader replays whatever
  /// physically survives — a truncated stream starts mid-term at a
  /// barrier-cursor boundary, so its head is in order and the anchor is
  /// exact. Cleared by the WalCursor SeekTo, whose anchor is explicit; seek
  /// to a null WalCursor for a strict expect-seq-1 replay of an untruncated
  /// stream that may open out of order.
  bool anchor_on_first_ = true;
  std::map<uint64_t, std::vector<WalRecord>> held_;  ///< seq -> records.
  uint64_t batches_consumed_ = 0;
  uint64_t bytes_consumed_ = 0;
  uint64_t records_filtered_ = 0;
  uint64_t batches_deduped_ = 0;
};

}  // namespace bg3::wal

#endif  // BG3_WAL_READER_H_
