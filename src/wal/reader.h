#ifndef BG3_WAL_READER_H_
#define BG3_WAL_READER_H_

#include <vector>

#include "cloud/cloud_store.h"
#include "wal/record.h"

namespace bg3::wal {

/// Tails the WAL stream of the shared store (step (3) in Fig. 7: the WAL
/// "is instantly read into the RO node's memory"). Each RO node owns one
/// reader; not thread safe (an RO node polls from one thread).
class WalReader {
 public:
  WalReader(cloud::CloudStore* store, cloud::StreamId stream)
      : store_(store), stream_(stream) {}

  /// Decodes all batches appended since the previous poll, in order.
  Result<std::vector<WalRecord>> Poll(size_t max_batches = 1024);

  /// Suffix-bounded entry point for checkpoint recovery: positions the
  /// reader so the next Poll() returns only batches appended strictly after
  /// `cursor`. The store seeks straight to the cursor's extent, so none of
  /// the prefix is read (or re-read) — replay cost is proportional to the
  /// WAL suffix, not its total length. Mutation records with
  /// lsn <= `lsn_floor` that a suffix batch may still carry are dropped at
  /// decode time (the checkpoint guarantees published page images cover
  /// them); structural records (tree-init, split, checkpoint) always pass
  /// through — their replay is idempotent.
  void SeekTo(const cloud::PagePointer& cursor, bwtree::Lsn lsn_floor = 0) {
    cursor_ = cursor;
    lsn_floor_ = lsn_floor;
  }

  uint64_t batches_consumed() const { return batches_consumed_; }

  /// Payload bytes of all batches consumed so far — with SeekTo, exactly
  /// the replayed WAL suffix (compare against the stream's total bytes).
  uint64_t bytes_consumed() const { return bytes_consumed_; }

  /// Mutation records dropped because they were at or below the seek floor.
  uint64_t records_filtered() const { return records_filtered_; }

  /// Position of the last consumed batch (null before the first poll).
  /// Everything at or before this pointer may be truncated for this reader.
  const cloud::PagePointer& cursor() const { return cursor_; }

 private:
  cloud::CloudStore* const store_;
  const cloud::StreamId stream_;
  cloud::PagePointer cursor_;  ///< last consumed batch.
  bwtree::Lsn lsn_floor_ = 0;  ///< mutations at or below are checkpointed.
  uint64_t batches_consumed_ = 0;
  uint64_t bytes_consumed_ = 0;
  uint64_t records_filtered_ = 0;
};

}  // namespace bg3::wal

#endif  // BG3_WAL_READER_H_
