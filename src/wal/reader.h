#ifndef BG3_WAL_READER_H_
#define BG3_WAL_READER_H_

#include <vector>

#include "cloud/cloud_store.h"
#include "wal/record.h"

namespace bg3::wal {

/// Tails the WAL stream of the shared store (step (3) in Fig. 7: the WAL
/// "is instantly read into the RO node's memory"). Each RO node owns one
/// reader; not thread safe (an RO node polls from one thread).
class WalReader {
 public:
  WalReader(cloud::CloudStore* store, cloud::StreamId stream)
      : store_(store), stream_(stream) {}

  /// Decodes all batches appended since the previous poll, in order.
  Result<std::vector<WalRecord>> Poll(size_t max_batches = 1024);

  uint64_t batches_consumed() const { return batches_consumed_; }

  /// Position of the last consumed batch (null before the first poll).
  /// Everything at or before this pointer may be truncated for this reader.
  const cloud::PagePointer& cursor() const { return cursor_; }

 private:
  cloud::CloudStore* const store_;
  const cloud::StreamId stream_;
  cloud::PagePointer cursor_;  ///< last consumed batch.
  uint64_t batches_consumed_ = 0;
};

}  // namespace bg3::wal

#endif  // BG3_WAL_READER_H_
