#include "wal/record.h"

#include "common/coding.h"
#include "common/crc32.h"

namespace bg3::wal {

void WalRecord::EncodeTo(std::string* dst) const {
  dst->push_back(static_cast<char>(type));
  PutVarint64(dst, tree_id);
  PutVarint64(dst, page_id);
  PutVarint64(dst, aux_page_id);
  PutVarint64(dst, lsn);
  PutVarint64(dst, sim_publish_latency_us);
  dst->push_back(static_cast<char>(entry.op));
  PutLengthPrefixedSlice(dst, entry.key);
  PutLengthPrefixedSlice(dst, entry.value);
  PutLengthPrefixedSlice(dst, separator);
}

size_t WalRecord::EncodedSize() const {
  return 1 + VarintLength(tree_id) + VarintLength(page_id) +
         VarintLength(aux_page_id) + VarintLength(lsn) +
         VarintLength(sim_publish_latency_us) + 1 +
         VarintLength(entry.key.size()) + entry.key.size() +
         VarintLength(entry.value.size()) + entry.value.size() +
         VarintLength(separator.size()) + separator.size();
}

Status WalRecord::DecodeFrom(Slice* input, WalRecord* out) {
  if (input->empty()) return Status::Corruption("empty wal record");
  const uint8_t type = static_cast<uint8_t>((*input)[0]);
  if (type < 1 || type > 4) return Status::Corruption("bad wal type");
  out->type = static_cast<Type>(type);
  input->remove_prefix(1);
  uint64_t tree_id, page_id, aux, lsn, sim_latency;
  if (!GetVarint64(input, &tree_id) || !GetVarint64(input, &page_id) ||
      !GetVarint64(input, &aux) || !GetVarint64(input, &lsn) ||
      !GetVarint64(input, &sim_latency)) {
    return Status::Corruption("wal header");
  }
  out->tree_id = tree_id;
  out->page_id = page_id;
  out->aux_page_id = aux;
  out->lsn = lsn;
  out->sim_publish_latency_us = sim_latency;
  if (input->empty()) return Status::Corruption("wal op");
  out->entry.op = static_cast<bwtree::DeltaOp>((*input)[0]);
  input->remove_prefix(1);
  Slice key, value, separator;
  if (!GetLengthPrefixedSlice(input, &key) ||
      !GetLengthPrefixedSlice(input, &value) ||
      !GetLengthPrefixedSlice(input, &separator)) {
    return Status::Corruption("wal payload");
  }
  out->entry.key = key.ToString();
  out->entry.value = value.ToString();
  out->separator = separator.ToString();
  return Status::OK();
}

namespace {

void AppendBatchBody(std::string* out, const std::vector<WalRecord>& records) {
  PutVarint32(out, static_cast<uint32_t>(records.size()));
  std::string scratch;
  for (const WalRecord& r : records) {
    scratch.clear();
    r.EncodeTo(&scratch);
    PutLengthPrefixedSlice(out, scratch);
  }
}

Status DecodeBatchBody(Slice input, std::vector<WalRecord>* out) {
  uint32_t count;
  if (!GetVarint32(&input, &count)) return Status::Corruption("batch count");
  out->reserve(out->size() + count);
  for (uint32_t i = 0; i < count; ++i) {
    Slice rec;
    if (!GetLengthPrefixedSlice(&input, &rec)) {
      return Status::Corruption("batch record");
    }
    WalRecord r;
    BG3_RETURN_IF_ERROR(WalRecord::DecodeFrom(&rec, &r));
    out->push_back(std::move(r));
  }
  return Status::OK();
}

}  // namespace

std::string EncodeBatch(const std::vector<WalRecord>& records) {
  std::string out;
  AppendBatchBody(&out, records);
  return out;
}

Status DecodeBatch(Slice input, std::vector<WalRecord>* out) {
  return DecodeBatchBody(input, out);
}

std::string EncodeFramedBatch(uint64_t term, uint64_t seq,
                              const std::vector<WalRecord>& records) {
  std::string out;
  out.push_back(0);  // v2 marker; a v1 batch never starts with 0x00.
  PutVarint64(&out, term);
  PutVarint64(&out, seq);
  const size_t crc_at = out.size();
  PutFixed32(&out, 0);  // patched below once the body is known.
  const size_t body_at = out.size();
  AppendBatchBody(&out, records);
  const uint32_t crc = Crc32c(out.data() + body_at, out.size() - body_at);
  std::string crc_bytes;
  PutFixed32(&crc_bytes, crc);
  out.replace(crc_at, 4, crc_bytes);
  return out;
}

Status DecodeAnyBatch(Slice input, BatchHeader* header,
                      std::vector<WalRecord>* out) {
  *header = BatchHeader{};
  if (input.empty()) return Status::Corruption("empty batch");
  if (input[0] != 0) return DecodeBatchBody(input, out);  // legacy v1
  input.remove_prefix(1);
  uint32_t crc = 0;
  if (!GetVarint64(&input, &header->term) ||
      !GetVarint64(&input, &header->seq) || !GetFixed32(&input, &crc)) {
    return Status::Corruption("batch frame header");
  }
  if (header->term == 0 || header->seq == 0) {
    return Status::Corruption("batch frame ids");
  }
  if (Crc32c(input.data(), input.size()) != crc) {
    return Status::Corruption("batch frame crc mismatch");
  }
  return DecodeBatchBody(input, out);
}

}  // namespace bg3::wal
