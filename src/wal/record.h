#ifndef BG3_WAL_RECORD_H_
#define BG3_WAL_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bwtree/page.h"
#include "cloud/types.h"
#include "common/slice.h"
#include "common/status.h"

namespace bg3::wal {

/// One entry of the write-ahead log that synchronizes RW and RO nodes
/// (§3.4). Mutations and splits describe memory-state changes (LSNs 30-32
/// in Fig. 7); checkpoints announce that the shared-storage images cover
/// everything up to an LSN (the "LSN 34" record of Fig. 7, letting RO nodes
/// discard older lazy-replay entries).
struct WalRecord {
  enum class Type : uint8_t {
    kTreeInit = 1,    ///< tree_id, page_id: tree created with initial page.
    kMutation = 2,    ///< upsert/delete `entry` applied to page at `lsn`.
    kSplit = 3,       ///< page_id split; keys >= separator -> aux_page_id.
    kCheckpoint = 4,  ///< storage images complete through `lsn`.
  };

  Type type = Type::kMutation;
  bwtree::TreeId tree_id = 0;
  bwtree::PageId page_id = bwtree::kInvalidPage;
  bwtree::PageId aux_page_id = bwtree::kInvalidPage;  ///< kSplit: new page.
  bwtree::Lsn lsn = 0;
  bwtree::DeltaEntry entry;  ///< kMutation payload.
  std::string separator;     ///< kSplit payload.

  /// Simulated time from the RW memory update to this record being readable
  /// in shared storage (group-buffer wait + WAL append latency); filled by
  /// the writer at flush time. RO nodes add their own poll/read costs to
  /// produce the leader-follower latency of Figs. 13/14.
  uint64_t sim_publish_latency_us = 0;

  void EncodeTo(std::string* dst) const;
  /// Exact byte count EncodeTo would append — used to bill OpStats and size
  /// the simulated append without materializing a throwaway encode.
  size_t EncodedSize() const;
  static Status DecodeFrom(Slice* input, WalRecord* out);
};

/// Identity of one appended batch under the pipelined writer. Terms are
/// writer incarnations (process-unique, strictly increasing across
/// restarts); within a term, seq numbers batches 1, 2, 3, ... in seal
/// order. Out-of-order *physical* placement (parallel in-flight appends,
/// late retries) is undone by readers using (term, seq); commit
/// acknowledgment is contiguous-seq order, so `seq` here always names a
/// durable prefix of the term.
struct BatchHeader {
  uint64_t term = 0;
  uint64_t seq = 0;  ///< 0 = legacy v1 batch (no framing).
};

/// A resumable WAL position: the physical pointer bounds the byte scan
/// (TailRecords seeks past it) and (term, seq) bounds redelivery — batches
/// at or below `seq` of `term` that physically land after `ptr` (late
/// retries) are duplicates and get dropped by the reader. Flows through
/// checkpoint manifests into `WalReader::SeekTo`.
struct WalCursor {
  cloud::PagePointer ptr;
  uint64_t term = 0;
  uint64_t seq = 0;

  bool IsNull() const { return ptr.IsNull() && term == 0 && seq == 0; }
};

/// Legacy v1 batch framing: [count v32] (length-prefixed WalRecord)*.
std::string EncodeBatch(const std::vector<WalRecord>& records);
Status DecodeBatch(Slice input, std::vector<WalRecord>* out);

/// v2 framing prepends [0x00][term v64][seq v64][crc32 fixed32] to the v1
/// body; the CRC covers the body only. The 0x00 marker can never open a v1
/// batch — v1 starts with a varint record count and empty batches are never
/// appended — so readers accept both formats from one stream.
std::string EncodeFramedBatch(uint64_t term, uint64_t seq,
                              const std::vector<WalRecord>& records);

/// Decodes either framing. v1 input yields header {0, 0}. A v2 frame whose
/// CRC does not match its body fails with Corruption (torn or bit-flipped
/// payloads that slipped past the substrate's record CRC).
Status DecodeAnyBatch(Slice input, BatchHeader* header,
                      std::vector<WalRecord>* out);

}  // namespace bg3::wal

#endif  // BG3_WAL_RECORD_H_
