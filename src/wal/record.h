#ifndef BG3_WAL_RECORD_H_
#define BG3_WAL_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bwtree/page.h"
#include "common/slice.h"
#include "common/status.h"

namespace bg3::wal {

/// One entry of the write-ahead log that synchronizes RW and RO nodes
/// (§3.4). Mutations and splits describe memory-state changes (LSNs 30-32
/// in Fig. 7); checkpoints announce that the shared-storage images cover
/// everything up to an LSN (the "LSN 34" record of Fig. 7, letting RO nodes
/// discard older lazy-replay entries).
struct WalRecord {
  enum class Type : uint8_t {
    kTreeInit = 1,    ///< tree_id, page_id: tree created with initial page.
    kMutation = 2,    ///< upsert/delete `entry` applied to page at `lsn`.
    kSplit = 3,       ///< page_id split; keys >= separator -> aux_page_id.
    kCheckpoint = 4,  ///< storage images complete through `lsn`.
  };

  Type type = Type::kMutation;
  bwtree::TreeId tree_id = 0;
  bwtree::PageId page_id = bwtree::kInvalidPage;
  bwtree::PageId aux_page_id = bwtree::kInvalidPage;  ///< kSplit: new page.
  bwtree::Lsn lsn = 0;
  bwtree::DeltaEntry entry;  ///< kMutation payload.
  std::string separator;     ///< kSplit payload.

  /// Simulated time from the RW memory update to this record being readable
  /// in shared storage (group-buffer wait + WAL append latency); filled by
  /// the writer at flush time. RO nodes add their own poll/read costs to
  /// produce the leader-follower latency of Figs. 13/14.
  uint64_t sim_publish_latency_us = 0;

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice* input, WalRecord* out);
};

/// Batch framing: [count v32] (length-prefixed WalRecord)*.
std::string EncodeBatch(const std::vector<WalRecord>& records);
Status DecodeBatch(Slice input, std::vector<WalRecord>* out);

}  // namespace bg3::wal

#endif  // BG3_WAL_RECORD_H_
