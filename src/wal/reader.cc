#include "wal/reader.h"

namespace bg3::wal {

Result<std::vector<WalRecord>> WalReader::Poll(size_t max_batches) {
  std::vector<WalRecord> out;
  const auto batches = store_->TailRecords(stream_, cursor_, max_batches);
  for (const auto& [ptr, data] : batches) {
    BG3_RETURN_IF_ERROR(DecodeBatch(Slice(data), &out));
    cursor_ = ptr;
    ++batches_consumed_;
  }
  return out;
}

}  // namespace bg3::wal
