#include "wal/reader.h"

namespace bg3::wal {

Result<std::vector<WalRecord>> WalReader::Poll(size_t max_batches) {
  std::vector<WalRecord> out;
  auto batches = store_->TailRecords(stream_, cursor_, max_batches);
  BG3_RETURN_IF_ERROR(batches.status());
  for (const auto& [ptr, data] : batches.value()) {
    // Decode into a scratch vector and commit (records + cursor) per batch:
    // if a batch fails to decode, everything already committed this poll is
    // still delivered and the cursor stops just before the bad batch.
    std::vector<WalRecord> decoded;
    const Status s = DecodeBatch(Slice(data), &decoded);
    if (!s.ok()) {
      // Deliver the committed prefix; the next Poll re-reads the bad batch
      // first and surfaces the error with nothing buffered behind it.
      if (!out.empty()) break;
      return s;
    }
    out.insert(out.end(), std::make_move_iterator(decoded.begin()),
               std::make_move_iterator(decoded.end()));
    cursor_ = ptr;
    ++batches_consumed_;
  }
  return out;
}

}  // namespace bg3::wal
