#include "wal/reader.h"

namespace bg3::wal {

Result<std::vector<WalRecord>> WalReader::Poll(size_t max_batches) {
  std::vector<WalRecord> out;
  auto batches = store_->TailRecords(stream_, cursor_, max_batches);
  BG3_RETURN_IF_ERROR(batches.status());
  for (const auto& [ptr, data] : batches.value()) {
    // Decode into a scratch vector and commit (records + cursor) per batch:
    // if a batch fails to decode, everything already committed this poll is
    // still delivered and the cursor stops just before the bad batch.
    std::vector<WalRecord> decoded;
    const Status s = DecodeBatch(Slice(data), &decoded);
    if (!s.ok()) {
      // Deliver the committed prefix; the next Poll re-reads the bad batch
      // first and surfaces the error with nothing buffered behind it.
      if (!out.empty()) break;
      return s;
    }
    if (lsn_floor_ > 0) {
      // Seeked replay: mutations at or below the checkpoint LSN are covered
      // by published page images; dropping them keeps pending logs from
      // accumulating records that per-page LSN gating would skip anyway.
      const size_t before = decoded.size();
      std::erase_if(decoded, [&](const WalRecord& r) {
        return r.type == WalRecord::Type::kMutation && r.lsn <= lsn_floor_;
      });
      records_filtered_ += before - decoded.size();
    }
    out.insert(out.end(), std::make_move_iterator(decoded.begin()),
               std::make_move_iterator(decoded.end()));
    cursor_ = ptr;
    ++batches_consumed_;
    bytes_consumed_ += data.size();
  }
  return out;
}

}  // namespace bg3::wal
