#include "wal/reader.h"

namespace bg3::wal {

void WalReader::Deliver(std::vector<WalRecord>&& batch,
                        std::vector<WalRecord>* out) {
  if (lsn_floor_ > 0) {
    // Seeked replay: mutations at or below the checkpoint LSN are covered
    // by published page images; dropping them keeps pending logs from
    // accumulating records that per-page LSN gating would skip anyway.
    const size_t before = batch.size();
    std::erase_if(batch, [&](const WalRecord& r) {
      return r.type == WalRecord::Type::kMutation && r.lsn <= lsn_floor_;
    });
    records_filtered_ += before - batch.size();
  }
  out->insert(out->end(), std::make_move_iterator(batch.begin()),
              std::make_move_iterator(batch.end()));
}

Result<std::vector<WalRecord>> WalReader::Poll(size_t max_batches) {
  std::vector<WalRecord> out;
  auto batches = store_->TailRecords(stream_, raw_cursor_, max_batches);
  BG3_RETURN_IF_ERROR(batches.status());
  for (auto& [ptr, data] : batches.value()) {
    // Decode into a scratch vector and commit (records + cursor) per batch:
    // if a batch fails to decode, everything already committed this poll is
    // still delivered and the physical cursor stops just before the bad
    // batch.
    std::vector<WalRecord> decoded;
    BatchHeader header;
    const Status s = DecodeAnyBatch(Slice(data), &header, &decoded);
    if (!s.ok()) {
      // Deliver the committed prefix; the next Poll re-reads the bad batch
      // first and surfaces the error with nothing buffered behind it.
      if (!out.empty()) break;
      return s;
    }
    if (header.seq == 0) {
      // Legacy v1 batch: no identity, physical order is log order.
      Deliver(std::move(decoded), &out);
    } else {
      if (expected_term_ == 0 || header.term > expected_term_) {
        // First framed batch, or a new writer incarnation. Holds from the
        // dead term are abandoned — their writer never saw them
        // acknowledged, so nothing downstream depends on them. A term
        // always starts at seq 1, except that a legacy (pointer-only) seek
        // lands mid-term and anchors on the first batch it sees.
        held_.clear();
        expected_term_ = header.term;
        delivered_seq_ = anchor_on_first_ ? header.seq - 1 : 0;
        anchor_on_first_ = false;
      }
      if (header.term < expected_term_ || header.seq <= delivered_seq_) {
        // A late-landing duplicate of an already delivered (or already
        // checkpoint-covered) append.
        ++batches_deduped_;
      } else if (header.seq == delivered_seq_ + 1) {
        Deliver(std::move(decoded), &out);
        delivered_seq_ = header.seq;
        // A filled gap releases everything contiguous behind it.
        while (!held_.empty() &&
               held_.begin()->first == delivered_seq_ + 1) {
          Deliver(std::move(held_.begin()->second), &out);
          held_.erase(held_.begin());
          ++delivered_seq_;
        }
      } else {
        // Ahead of a gap: an earlier batch is still in flight (or will
        // never land). Hold until the gap fills; the safe cursor stays put
        // meanwhile so a restart re-reads (and dedupes) the held range.
        held_.emplace(header.seq, std::move(decoded));
      }
    }
    raw_cursor_ = ptr;
    ++batches_consumed_;
    bytes_consumed_ += data.size();
    if (held_.empty()) cursor_ = ptr;
  }
  return out;
}

}  // namespace bg3::wal
