// Figure 10 reproduction: write bandwidth of the traditional Bw-tree (SLED)
// vs the Read Optimized Bw-tree under a write-only power-law benchmark
// (§4.3.1). The merged-delta design re-writes prior delta entries, so BG3
// appends *more* bytes — but only modestly, and always sequentially.
//
// Paper: 64.5 MB (SLED) vs 70 MB (BG3) for the same op count: +9.3%.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_common.h"
#include "bwtree/bwtree.h"
#include "cloud/cloud_store.h"
#include "common/random.h"

using namespace bg3;
using namespace bg3::bwtree;

namespace {

constexpr uint64_t kKeys = 20'000;

std::string KeyOf(uint64_t id) {
  char buf[16];
  snprintf(buf, sizeof(buf), "u%010llu", static_cast<unsigned long long>(id));
  return buf;
}

void BM_Fig10_WriteOnly(benchmark::State& state) {
  const DeltaMode mode =
      state.range(0) == 0 ? DeltaMode::kTraditional : DeltaMode::kReadOptimized;
  cloud::CloudStoreOptions copts;
  copts.extent_capacity = 1 << 20;
  cloud::CloudStore store(copts);
  BwTreeOptions opts;
  opts.delta_mode = mode;
  opts.consolidate_threshold = 10;
  opts.max_leaf_entries = 128;  // leaf splits on; no forest split-out
  opts.base_stream = store.CreateStream("base");
  opts.delta_stream = store.CreateStream("delta");
  BwTree tree(&store, opts);

  ZipfGenerator keys(kKeys, 0.8, 42);
  const std::string payload = "follow-record-payload-48-bytes-of-properties!";
  uint64_t ops = 0;
  for (auto _ : state) {
    BG3_IGNORE_STATUS(tree.Upsert(KeyOf(keys.Next()), payload));
    ++ops;
  }
  const double written = static_cast<double>(store.stats().append_bytes.Get());
  state.counters["MB_written"] = benchmark::Counter(written / 1e6);
  state.counters["bytes_per_op"] =
      benchmark::Counter(written / static_cast<double>(ops ? ops : 1));
  state.SetLabel(mode == DeltaMode::kTraditional ? "SLED(traditional)"
                                                 : "BG3(read-optimized)");
}
BENCHMARK(BM_Fig10_WriteOnly)->Arg(0)->Arg(1)->Iterations(20000);

}  // namespace

int main(int argc, char** argv) {
  bench::Banner("Figure 10 — write bandwidth, write-only power-law (§4.3.1)",
                "SLED 64.5MB vs BG3 70MB at 20K ops (+9.3%, all sequential "
                "appends); counters MB_written / bytes_per_op below");
  bench::BenchReport report("fig10_write_bw");
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
