// Ablation (beyond the paper's figures): extent size vs reclamation
// efficiency. ArkDB-style uniform extents (§3.3) trade metadata overhead
// against relocation granularity: small extents isolate garbage well (fewer
// valid bytes moved per freed extent) but multiply tracking state; large
// extents mix hot and cold data and drag live bytes along.
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "cloud/cloud_store.h"
#include "common/random.h"
#include "core/graph_db.h"

using namespace bg3;

namespace {

struct Point {
  double moved_mb;
  double freed_mb;
  double move_ratio;  // moved / freed: write amplification of reclamation
};

Point Run(size_t extent_capacity) {
  cloud::CloudStoreOptions copts;
  copts.extent_capacity = extent_capacity;
  cloud::CloudStore store(copts);
  cloud::ManualTimeSource clock;
  core::GraphDBOptions opts;
  opts.gc_policy = core::GcPolicyKind::kWorkloadAware;
  opts.gc_target_dead_ratio = 0.05;
  opts.gc_min_fragmentation = 0.05;
  opts.gc_extents_per_cycle = 4;
  opts.forest.tree_options.consolidate_threshold = 8;
  opts.time_source = &clock;
  core::GraphDB db(&store, opts);

  ZipfGenerator users(2'000, 0.9, 31);
  Random rng(32);
  const std::string props(24, 'x');
  for (int i = 0; i < 80'000; ++i) {
    clock.AdvanceUs(25);
    BG3_IGNORE_STATUS(db.AddEdge(users.Next(), 1, rng.Uniform(20'000), props, 0));
    if (i % 2'000 == 0) (void)db.RunGcCycle();
  }
  BG3_IGNORE_STATUS(db.RunGcCycle());

  Point p;
  p.moved_mb = store.stats().gc_moved_bytes.Get() / 1e6;
  p.freed_mb = db.Stats().gc_bytes_freed / 1e6;
  p.move_ratio = p.freed_mb > 0 ? p.moved_mb / p.freed_mb : 0;
  return p;
}

}  // namespace

int main() {
  bench::Banner("Ablation — extent size vs reclamation write amplification",
                "no paper counterpart; explores the uniform-extent design "
                "choice adopted from ArkDB (§3.3)");

  printf("%12s %12s %12s %14s\n", "extent", "moved(MB)", "freed(MB)",
         "moved/freed");
  bench::BenchReport report("ablation_gc_extent_size");
  for (size_t cap : {16ul << 10, 64ul << 10, 256ul << 10, 1ul << 20}) {
    const Point p = Run(cap);
    printf("%10zuKB %12.2f %12.2f %14.3f\n", cap >> 10, p.moved_mb, p.freed_mb,
           p.move_ratio);
    report.AddRow("extent_size", std::to_string(cap >> 10) + "KB")
        .Num("moved_mb", p.moved_mb)
        .Num("freed_mb", p.freed_mb)
        .Num("move_ratio", p.move_ratio);
    fflush(stdout);
  }
  bench::Note("smaller extents free more space per moved byte (finer "
              "garbage isolation) at the cost of more extents to track");
  return 0;
}
