// Figure 11 reproduction: write throughput and memory cost of the Bw-tree
// forest as the number of Bw-trees grows (§4.3.2). "N trees" in the paper
// means the N-1 hottest users hold dedicated trees and every other user
// shares the INIT tree — which is why throughput keeps improving beyond 64
// trees: each extra tree peels more of the Zipf head off the shared tree.
//
// Paper: 1 -> 64 -> 100K -> 1M trees give 50K -> 90K -> 150K -> 289K write
// QPS (x1.8 / x3.0 / x5.8), while memory grows 3.37x (1->100K) and another
// 2.52x (100K->1M): sub-proportional returns at the high end.
//
// Host note: this machine may expose a single core, where real threads
// cannot exhibit latch-contention scaling. The bench therefore reports
//   (a) the measured single-thread op rate (per-op cost),
//   (b) the serialization mass s = sum over trees of (traffic share)^2,
//   (c) modeled multi-core QPS = rate x min(16, 1/s) — 16 writer clients
//       whose ops serialize per tree, the contention structure of §3.2.1.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "cloud/cloud_store.h"
#include "common/clock.h"
#include "common/random.h"
#include "forest/forest.h"

using namespace bg3;

namespace {

constexpr uint64_t kUsers = 1'000'000;
constexpr double kTheta = 0.8;
constexpr int kOps = 150'000;
constexpr int kModelThreads = 16;

struct RunResult {
  double single_thread_qps = 0;
  double serialization_mass = 0;
  double modeled_qps = 0;
  double mem_mb = 0;
};

RunResult RunForest(size_t num_trees) {
  cloud::CloudStoreOptions copts;
  copts.extent_capacity = 4u << 20;
  cloud::CloudStore store(copts);
  forest::ForestOptions fopts;
  fopts.split_out_threshold = ~0ull;  // dedication is explicit below
  fopts.init_tree_capacity = ~0ull;
  fopts.tree_options.base_stream = store.CreateStream("base");
  fopts.tree_options.delta_stream = store.CreateStream("delta");
  // "Full-cache stress testing": pure in-memory write path.
  fopts.tree_options.flush_mode = bwtree::FlushMode::kNone;
  forest::BwTreeForest forest(&store, fopts);

  // Dedicate the num_trees-1 hottest users (Zipf item k is the k-th
  // hottest); everyone else shares INIT.
  for (uint64_t u = 0; u + 1 < num_trees; ++u) {
    BG3_IGNORE_STATUS(forest.DedicateOwner(u));
  }

  // Single-thread measured write phase.
  ZipfGenerator users(kUsers, kTheta, 321);
  Random rng(7);
  std::string sort_key(8, '\0');
  const uint64_t start = NowMicros();
  for (int i = 0; i < kOps; ++i) {
    const uint64_t user = users.Next();
    const uint64_t video = rng.Next();
    for (int b = 0; b < 8; ++b) {
      sort_key[b] = static_cast<char>(video >> (8 * b));
    }
    BG3_IGNORE_STATUS(forest.Upsert(user, sort_key, "like-event"));
  }
  const double seconds = (NowMicros() - start) / 1e6;

  // Serialization mass: probability two concurrent ops land on the same
  // tree. Dedicated user u is its own tree; all other users share INIT.
  ZipfGenerator sample(kUsers, kTheta, 99);
  constexpr int kSamples = 400'000;
  std::vector<uint32_t> dedicated_hits(num_trees > 0 ? num_trees : 1, 0);
  uint64_t init_hits = 0;
  for (int i = 0; i < kSamples; ++i) {
    const uint64_t user = sample.Next();
    if (user + 1 < num_trees) {
      ++dedicated_hits[user];
    } else {
      ++init_hits;
    }
  }
  double mass = 0;
  for (uint64_t u = 0; u + 1 < num_trees; ++u) {
    const double p = static_cast<double>(dedicated_hits[u]) / kSamples;
    mass += p * p;
  }
  const double init_share = static_cast<double>(init_hits) / kSamples;
  mass += init_share * init_share;

  RunResult r;
  r.single_thread_qps = kOps / seconds;
  r.serialization_mass = mass;
  const double parallelism =
      std::min<double>(kModelThreads, mass > 0 ? 1.0 / mass : kModelThreads);
  r.modeled_qps = r.single_thread_qps * parallelism;
  r.mem_mb = forest.ApproxMemoryBytes() / 1e6;
  return r;
}

}  // namespace

int main() {
  bench::Banner(
      "Figure 11 — scaling write QPS & space cost with #Bw-trees (§4.3.2)",
      "1 -> 64 -> 100K -> 1M trees: 50K -> 90K -> 150K -> 289K write QPS "
      "(x1.8/x3.0/x5.8); memory x3.37 to 100K then x2.52 to 1M");

  printf("%10s %14s %10s %14s %12s\n", "#bw-trees", "1-thr QPS", "s-mass",
         "modeled-QPS", "memory(MB)");
  bench::BenchReport report("fig11_forest");
  double first_qps = 0, first_mem = 0;
  for (size_t trees : {1ul, 64ul, 100'000ul, 1'000'000ul}) {
    const RunResult r = RunForest(trees);
    if (first_qps == 0) {
      first_qps = r.modeled_qps;
      first_mem = r.mem_mb;
    }
    printf("%10zu %14s %10.4f %14s %12.1f   (qps x%.2f, mem x%.2f)\n", trees,
           bench::Qps(r.single_thread_qps).c_str(), r.serialization_mass,
           bench::Qps(r.modeled_qps).c_str(), r.mem_mb,
           r.modeled_qps / first_qps, r.mem_mb / first_mem);
    report.AddRow("scaling", std::to_string(trees))
        .Num("single_thread_qps", r.single_thread_qps)
        .Num("serialization_mass", r.serialization_mass)
        .Num("modeled_qps", r.modeled_qps)
        .Num("memory_mb", r.mem_mb);
    fflush(stdout);
  }
  bench::Note(
      "modeled-QPS applies the measured per-op rate to 16 clients whose "
      "ops serialize per tree (see header); on a multi-core host the "
      "measured curve shows the same shape directly");
  return 0;
}
