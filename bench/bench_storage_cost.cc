// §4.2 "Storage Cost Saving" reproduction: the same logical edge workload on
// BG3 (Bw-tree forest over append-only storage + workload-aware GC) and on
// ByteGraph (edge trees over a leveled LSM). The paper reports ~80% average
// storage-cost saving, driven by LSM write amplification and per-bit cost.
//
// Part 2 prices GC policies in dollars: the same TTL churn workload runs
// under workload-aware and FIFO reclamation and each run's I/O + resident
// footprint is folded through the CostModel (DESIGN.md §5.8) into an
// estimated monthly bill. FIFO relocates soon-to-expire bytes, so under
// per-GB-written pricing its bill must come out >= the workload-aware one
// (pinned by scripts/check_bench_json.py).
#include <cstdio>

#include "bench_common.h"
#include "bytegraph/bytegraph_db.h"
#include "cloud/cloud_store.h"
#include "common/cost_model.h"
#include "common/random.h"
#include "core/graph_db.h"
#include "workload/graph_gen.h"

using namespace bg3;

namespace {

struct CostRun {
  uint64_t append_ops = 0;
  uint64_t append_bytes = 0;
  uint64_t read_ops = 0;
  uint64_t read_bytes = 0;
  uint64_t stored_bytes = 0;
  double monthly_usd = 0;
};

// TTL churn (the Table 2 risk-control shape): insert-heavy audit edges with
// a short TTL. Workload-aware GC lets whole extents die in place; FIFO
// relocates them just before they expire, paying for the moved bytes.
CostRun RunGcPolicyCost(core::GcPolicyKind policy, const CostModel& model) {
  cloud::CloudStoreOptions copts;
  copts.extent_capacity = 64 << 10;
  cloud::CloudStore store(copts);
  cloud::ManualTimeSource clock;
  core::GraphDBOptions opts;
  opts.gc_policy = policy;
  opts.gc_target_dead_ratio = 0.05;
  opts.gc_min_fragmentation = 0.02;
  opts.gc_extents_per_cycle = 24;
  opts.edge_ttl_us = 500'000;
  opts.forest.tree_options.consolidate_threshold = 8;
  opts.time_source = &clock;
  core::GraphDB db(&store, opts);

  constexpr int kOps = 60'000;
  constexpr uint64_t kOpIntervalUs = 25;  // 40K QPS offered rate
  ZipfGenerator accounts(5'000, 0.9, 5);
  Random rng(6);
  const std::string props(24, 'a');
  for (int i = 0; i < kOps; ++i) {
    clock.AdvanceUs(kOpIntervalUs);
    BG3_IGNORE_STATUS(
        db.AddEdge(accounts.Next(), 1, rng.Uniform(5'000), props, 0));
    if (i % 500 == 0) (void)db.RunGcCycle();
  }
  BG3_IGNORE_STATUS(db.RunGcCycle());

  CostRun r;
  r.append_ops = store.stats().append_ops.Get();
  r.append_bytes = store.stats().append_bytes.Get();
  r.read_ops = store.stats().read_ops.Get();
  r.read_bytes = store.stats().read_bytes.Get();
  r.stored_bytes = store.TotalBytes();
  r.monthly_usd = model.ReadCostUsd(r.read_ops, r.read_bytes) +
                  model.WriteCostUsd(r.append_ops, r.append_bytes) +
                  model.StorageCostUsdPerMonth(r.stored_bytes);
  return r;
}

const char* PolicyName(core::GcPolicyKind policy) {
  return policy == core::GcPolicyKind::kWorkloadAware ? "workload_aware"
                                                      : "fifo";
}

}  // namespace

int main() {
  bench::Banner("Storage cost saving (§4.2)",
                "BG3 saves ~80% of storage cost vs ByteGraph across the "
                "three workloads (write amplification + cheaper bytes)");

  bench::BenchReport report("storage_cost");
  constexpr int kUsers = 2'000;
  constexpr int kRounds = 40;
  constexpr int kEdgesPerRound = 2'000;

  // BG3 with periodic space reclamation.
  cloud::CloudStoreOptions bg3_copts;
  bg3_copts.extent_capacity = 256 << 10;
  cloud::CloudStore bg3_store(bg3_copts);
  core::GraphDBOptions bg3_opts;
  bg3_opts.gc_policy = core::GcPolicyKind::kWorkloadAware;
  bg3_opts.gc_target_dead_ratio = 0.2;
  bg3_opts.forest.tree_options.max_leaf_entries = 64;
  core::GraphDB bg3(&bg3_store, bg3_opts);

  // ByteGraph over the sharded LSM.
  cloud::CloudStore bg_store;
  bytegraph::ByteGraphOptions bg_opts;
  bg_opts.lsm.memtable_bytes = 64 << 10;  // RocksDB-like write-buffer : data
  bg_opts.lsm.compaction.l0_compaction_trigger = 2;
  bg_opts.lsm.compaction.level_base_bytes = 512 << 10;
  bytegraph::ByteGraphDB bytegraph(&bg_store, bg_opts);

  Random rng(11);
  ZipfGenerator src_gen(kUsers, 0.9, 21);
  ZipfGenerator dst_gen(50'000, 0.9, 22);
  const std::string props = workload::MakeProperties(3, 24);
  for (int round = 0; round < kRounds; ++round) {
    for (int i = 0; i < kEdgesPerRound; ++i) {
      const graph::VertexId src = src_gen.Next();
      const graph::VertexId dst = dst_gen.Next();
      BG3_IGNORE_STATUS(bg3.AddEdge(src, 1, dst, props, 1));
      BG3_IGNORE_STATUS(bytegraph.AddEdge(src, 1, dst, props, 1));
    }
    BG3_IGNORE_STATUS(bg3.RunGcCycle());
  }

  const uint64_t bg3_written = bg3_store.stats().append_bytes.Get();
  const uint64_t bg3_live = bg3_store.LiveBytes();
  const uint64_t bg_written = bg_store.stats().append_bytes.Get();
  const uint64_t bg_live = bg_store.LiveBytes();

  printf("%-12s %14s %14s\n", "system", "bytes written", "live bytes");
  printf("%-12s %14s %14s\n", "BG3", bench::Mb(bg3_written).c_str(),
         bench::Mb(bg3_live).c_str());
  printf("%-12s %14s %14s\n", "ByteGraph", bench::Mb(bg_written).c_str(),
         bench::Mb(bg_live).c_str());
  printf("\nwrite saving: %.1f%% (paper: ~80%% cost saving)\n",
         100.0 * (1.0 - static_cast<double>(bg3_written) / bg_written));
  printf("live saving : %.1f%%\n",
         100.0 * (1.0 - static_cast<double>(bg3_live) / bg_live));
  report.AddRow("bytes", "BG3")
      .Num("written", static_cast<double>(bg3_written))
      .Num("live", static_cast<double>(bg3_live));
  report.AddRow("bytes", "ByteGraph")
      .Num("written", static_cast<double>(bg_written))
      .Num("live", static_cast<double>(bg_live));
  report.Scalar("write_saving_pct",
                100.0 * (1.0 - static_cast<double>(bg3_written) / bg_written));
  report.Scalar("live_saving_pct",
                100.0 * (1.0 - static_cast<double>(bg3_live) / bg_live));

  // --- Part 2: dollar-denominated GC policy comparison ----------------------
  // Provisioned-throughput pricing (per-GB transfer is NOT free) so GC byte
  // movement differences surface in the bill, not just the op counts.
  CostModelOptions pricing;
  pricing.usd_per_gb_written = 0.05;
  pricing.usd_per_gb_read = 0.01;
  const CostModel model(pricing);
  report.Config("usd_per_write_op", pricing.usd_per_write_op);
  report.Config("usd_per_gb_written", pricing.usd_per_gb_written);
  report.Config("usd_per_gb_month_stored", pricing.usd_per_gb_month_stored);

  printf("\n%-16s %12s %14s %12s %14s\n", "gc policy", "append ops",
         "bytes written", "stored", "monthly USD");
  for (const auto policy : {core::GcPolicyKind::kWorkloadAware,
                            core::GcPolicyKind::kFifo}) {
    const CostRun run = RunGcPolicyCost(policy, model);
    printf("%-16s %12llu %14s %12s %14.6f\n", PolicyName(policy),
           static_cast<unsigned long long>(run.append_ops),
           bench::Mb(static_cast<double>(run.append_bytes)).c_str(),
           bench::Mb(static_cast<double>(run.stored_bytes)).c_str(),
           run.monthly_usd);
    report.AddRow("gc_cost", PolicyName(policy))
        .Num("append_ops", static_cast<double>(run.append_ops))
        .Num("append_bytes", static_cast<double>(run.append_bytes))
        .Num("stored_bytes", static_cast<double>(run.stored_bytes))
        .Num("monthly_usd", run.monthly_usd);
    report.Scalar(std::string("estimated_monthly_cost_usd_") +
                      PolicyName(policy),
                  run.monthly_usd);
  }

  bench::Note(
      "the paper's 80%% also includes cheaper $/bit of shared cloud storage "
      "vs SSD-backed KV clusters, which a simulator cannot price");
  return 0;
}
