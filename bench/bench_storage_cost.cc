// §4.2 "Storage Cost Saving" reproduction: the same logical edge workload on
// BG3 (Bw-tree forest over append-only storage + workload-aware GC) and on
// ByteGraph (edge trees over a leveled LSM). The paper reports ~80% average
// storage-cost saving, driven by LSM write amplification and per-bit cost.
#include <cstdio>

#include "bench_common.h"
#include "bytegraph/bytegraph_db.h"
#include "cloud/cloud_store.h"
#include "common/random.h"
#include "core/graph_db.h"
#include "workload/graph_gen.h"

using namespace bg3;

int main() {
  bench::Banner("Storage cost saving (§4.2)",
                "BG3 saves ~80% of storage cost vs ByteGraph across the "
                "three workloads (write amplification + cheaper bytes)");

  bench::BenchReport report("storage_cost");
  constexpr int kUsers = 2'000;
  constexpr int kRounds = 40;
  constexpr int kEdgesPerRound = 2'000;

  // BG3 with periodic space reclamation.
  cloud::CloudStoreOptions bg3_copts;
  bg3_copts.extent_capacity = 256 << 10;
  cloud::CloudStore bg3_store(bg3_copts);
  core::GraphDBOptions bg3_opts;
  bg3_opts.gc_policy = core::GcPolicyKind::kWorkloadAware;
  bg3_opts.gc_target_dead_ratio = 0.2;
  bg3_opts.forest.tree_options.max_leaf_entries = 64;
  core::GraphDB bg3(&bg3_store, bg3_opts);

  // ByteGraph over the sharded LSM.
  cloud::CloudStore bg_store;
  bytegraph::ByteGraphOptions bg_opts;
  bg_opts.lsm.memtable_bytes = 64 << 10;  // RocksDB-like write-buffer : data
  bg_opts.lsm.compaction.l0_compaction_trigger = 2;
  bg_opts.lsm.compaction.level_base_bytes = 512 << 10;
  bytegraph::ByteGraphDB bytegraph(&bg_store, bg_opts);

  Random rng(11);
  ZipfGenerator src_gen(kUsers, 0.9, 21);
  ZipfGenerator dst_gen(50'000, 0.9, 22);
  const std::string props = workload::MakeProperties(3, 24);
  for (int round = 0; round < kRounds; ++round) {
    for (int i = 0; i < kEdgesPerRound; ++i) {
      const graph::VertexId src = src_gen.Next();
      const graph::VertexId dst = dst_gen.Next();
      BG3_IGNORE_STATUS(bg3.AddEdge(src, 1, dst, props, 1));
      BG3_IGNORE_STATUS(bytegraph.AddEdge(src, 1, dst, props, 1));
    }
    BG3_IGNORE_STATUS(bg3.RunGcCycle());
  }

  const uint64_t bg3_written = bg3_store.stats().append_bytes.Get();
  const uint64_t bg3_live = bg3_store.LiveBytes();
  const uint64_t bg_written = bg_store.stats().append_bytes.Get();
  const uint64_t bg_live = bg_store.LiveBytes();

  printf("%-12s %14s %14s\n", "system", "bytes written", "live bytes");
  printf("%-12s %14s %14s\n", "BG3", bench::Mb(bg3_written).c_str(),
         bench::Mb(bg3_live).c_str());
  printf("%-12s %14s %14s\n", "ByteGraph", bench::Mb(bg_written).c_str(),
         bench::Mb(bg_live).c_str());
  printf("\nwrite saving: %.1f%% (paper: ~80%% cost saving)\n",
         100.0 * (1.0 - static_cast<double>(bg3_written) / bg_written));
  printf("live saving : %.1f%%\n",
         100.0 * (1.0 - static_cast<double>(bg3_live) / bg_live));
  report.AddRow("bytes", "BG3")
      .Num("written", static_cast<double>(bg3_written))
      .Num("live", static_cast<double>(bg3_live));
  report.AddRow("bytes", "ByteGraph")
      .Num("written", static_cast<double>(bg_written))
      .Num("live", static_cast<double>(bg_live));
  report.Scalar("write_saving_pct",
                100.0 * (1.0 - static_cast<double>(bg3_written) / bg_written));
  report.Scalar("live_saving_pct",
                100.0 * (1.0 - static_cast<double>(bg3_live) / bg_live));
  bench::Note(
      "the paper's 80%% also includes cheaper $/bit of shared cloud storage "
      "vs SSD-backed KV clusters, which a simulator cannot price");
  return 0;
}
