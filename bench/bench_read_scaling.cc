// Read-path scaling with shared leaf latches: N threads issuing point
// reads against one Bw-tree, for the two delta modes of §3.2.2 and the
// two cache regimes of Fig. 9.
//
//   hit  — ReadCacheMode::kFull with a warmed cache: every Get is served
//          from the resident page under a *shared* leaf latch.
//   miss — ReadCacheMode::kNone: every Get fetches the base/delta images
//          from storage (the Fig. 9 regime); with shared latching those
//          fetches overlap instead of convoying on the leaf.
//
// Before this change every read held the leaf's exclusive latch, so read
// throughput was flat in the thread count no matter how hot the cache.
//
// Host note: this machine may expose a single core, where real threads
// cannot exhibit read scaling. Like bench_fig11/bench_fig14 the bench
// therefore reports
//   (a) the measured single-thread rate,
//   (b) the measured exclusive fraction e of leaf-latch acquisitions
//       during the read phase (shared acquisitions run concurrently,
//       exclusive ones serialize),
//   (c) modeled QPS at T threads = rate / (e + (1-e)/T)  — Amdahl over
//       the latch modes — next to the all-exclusive baseline (e = 1),
//       which is exactly the pre-change behavior,
//   (d) the measured multi-thread rate, honest but core-bound.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bwtree/bwtree.h"
#include "cloud/cloud_store.h"
#include "common/clock.h"
#include "common/random.h"

using namespace bg3;

namespace {

constexpr int kKeys = 20'000;
constexpr double kTheta = 0.8;  // Zipf head keeps leaf hints hot
constexpr int kHitReads = 120'000;
constexpr int kMissReads = 12'000;

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%08d", i);
  return buf;
}

struct Setup {
  const char* mode;      // read_optimized | traditional
  const char* workload;  // hit | miss
};

struct RunResult {
  double single_qps = 0;
  double exclusive_frac = 1.0;
  uint64_t shared_acquires = 0;
  uint64_t exclusive_acquires = 0;
  // measured_qps[i] for threads {1, 2, 4, 8}
  std::vector<double> measured_qps;
};

constexpr int kThreadSweeps[] = {1, 2, 4, 8};

RunResult RunConfig(const Setup& setup) {
  cloud::CloudStoreOptions copts;
  copts.extent_capacity = 4u << 20;
  cloud::CloudStore store(copts);
  bwtree::BwTreeOptions topts;
  topts.base_stream = store.CreateStream("base");
  topts.delta_stream = store.CreateStream("delta");
  topts.max_leaf_entries = 256;
  topts.delta_mode = std::string(setup.mode) == "read_optimized"
                         ? bwtree::DeltaMode::kReadOptimized
                         : bwtree::DeltaMode::kTraditional;
  topts.consolidate_threshold = 10;  // both systems in §4.3.1 use 10
  topts.read_cache = std::string(setup.workload) == "miss"
                         ? bwtree::ReadCacheMode::kNone
                         : bwtree::ReadCacheMode::kFull;
  bwtree::BwTree tree(&store, topts);

  for (int i = 0; i < kKeys; ++i) {
    BG3_IGNORE_STATUS(tree.Upsert(Key(i), "value-" + std::to_string(i)));
  }
  // Leave live delta chains on the hot head so reads traverse them (the
  // read-optimized mode keeps them at <=1; traditional grows chains).
  ZipfGenerator hot(kKeys, kTheta, 17);
  for (int i = 0; i < kKeys / 4; ++i) {
    const int k = static_cast<int>(hot.Next());
    BG3_IGNORE_STATUS(tree.Upsert(Key(k), "update"));
  }

  const int reads = std::string(setup.workload) == "miss" ? kMissReads
                                                          : kHitReads;
  // Warm pass (also populates the per-thread route hints).
  ZipfGenerator warm(kKeys, kTheta, 23);
  for (int i = 0; i < 2'000; ++i) {
    BG3_IGNORE_STATUS(tree.Get(Key(static_cast<int>(warm.Next()))));
  }

  RunResult r;
  const uint64_t sh0 = tree.stats().latch_shared_acquires.Get();
  const uint64_t ex0 = tree.stats().latch_exclusive_acquires.Get();

  {  // single-thread measured rate
    ZipfGenerator zipf(kKeys, kTheta, 29);
    const uint64_t start = NowMicros();
    for (int i = 0; i < reads; ++i) {
      BG3_IGNORE_STATUS(tree.Get(Key(static_cast<int>(zipf.Next()))));
    }
    r.single_qps = reads / ((NowMicros() - start) / 1e6);
  }

  r.shared_acquires = tree.stats().latch_shared_acquires.Get() - sh0;
  r.exclusive_acquires = tree.stats().latch_exclusive_acquires.Get() - ex0;
  const uint64_t total = r.shared_acquires + r.exclusive_acquires;
  r.exclusive_frac =
      total == 0 ? 1.0 : static_cast<double>(r.exclusive_acquires) / total;

  // Real-thread sweep (core-bound on small hosts; reported as measured).
  for (int threads : kThreadSweeps) {
    std::atomic<bool> go{false};
    std::vector<std::thread> pool;
    const int per_thread = reads / threads;
    const uint64_t t_start = NowMicros();
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&tree, &go, per_thread, t] {
        while (!go.load(std::memory_order_acquire)) {
        }
        ZipfGenerator zipf(kKeys, kTheta, 101 + t);
        for (int i = 0; i < per_thread; ++i) {
          (void)tree.Get(Key(static_cast<int>(zipf.Next())));
        }
      });
    }
    go.store(true, std::memory_order_release);
    for (auto& th : pool) th.join();
    const double secs = (NowMicros() - t_start) / 1e6;
    r.measured_qps.push_back(per_thread * threads / secs);
  }
  return r;
}

double AmdahlQps(double single_qps, double exclusive_frac, int threads) {
  return single_qps /
         (exclusive_frac + (1.0 - exclusive_frac) / threads);
}

}  // namespace

int main() {
  bench::Banner(
      "Read-path scaling — shared leaf latches vs the exclusive-only "
      "baseline",
      "hit reads take shared latches (e ~ 0) and scale with threads; the "
      "pre-change exclusive-only path is the flat e = 1 curve");

  bench::BenchReport report("read_scaling");
  report.Config("keys", kKeys);
  report.Config("zipf_theta", kTheta);
  report.Config("hit_reads", kHitReads);
  report.Config("miss_reads", kMissReads);
  report.Config("hardware_concurrency",
                static_cast<uint64_t>(std::thread::hardware_concurrency()));

  const Setup setups[] = {
      {"read_optimized", "hit"},
      {"read_optimized", "miss"},
      {"traditional", "hit"},
      {"traditional", "miss"},
  };

  double hit_speedup_8t = 0;
  for (const Setup& s : setups) {
    const RunResult r = RunConfig(s);
    printf("\n[%s / %s] 1-thr %s  shared/exclusive latches %llu/%llu "
           "(e=%.4f)\n",
           s.mode, s.workload, bench::Qps(r.single_qps).c_str(),
           (unsigned long long)r.shared_acquires,
           (unsigned long long)r.exclusive_acquires, r.exclusive_frac);
    printf("%8s %16s %16s %16s\n", "threads", "modeled-QPS",
           "exclusive-only", "measured-QPS");
    for (size_t i = 0; i < std::size(kThreadSweeps); ++i) {
      const int threads = kThreadSweeps[i];
      const double modeled = AmdahlQps(r.single_qps, r.exclusive_frac,
                                       threads);
      const double baseline = r.single_qps;  // e = 1: no read scaling
      printf("%8d %16s %16s %16s   (x%.2f)\n", threads,
             bench::Qps(modeled).c_str(), bench::Qps(baseline).c_str(),
             bench::Qps(r.measured_qps[i]).c_str(),
             modeled / r.single_qps);
      const std::string series =
          std::string(s.mode) + "_" + s.workload;
      report.AddRow(series, std::to_string(threads))
          .Num("modeled_qps", modeled)
          .Num("exclusive_only_qps", baseline)
          .Num("measured_qps", r.measured_qps[i])
          .Num("modeled_speedup", modeled / r.single_qps);
      if (std::string(s.mode) == "read_optimized" &&
          std::string(s.workload) == "hit" && threads == 8) {
        hit_speedup_8t = modeled / r.single_qps;
      }
    }
    report.Scalar("single_qps_" + std::string(s.mode) + "_" + s.workload,
                  r.single_qps);
    report.Scalar("exclusive_frac_" + std::string(s.mode) + "_" +
                      s.workload,
                  r.exclusive_frac);
  }
  report.Scalar("modeled_speedup_8t_hit", hit_speedup_8t);

  bench::Note(
      "modeled-QPS applies the measured per-op rate and exclusive-latch "
      "fraction to T readers (Amdahl over latch modes); exclusive-only is "
      "the pre-change behavior where every read latched exclusively. On a "
      "multi-core host the measured column shows the same shape directly");
  return 0;
}
