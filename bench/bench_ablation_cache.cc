// Ablation (beyond the paper's figures): read cost vs memory budget of the
// cache layer. §2.4 notes ByteGraph's remedy for slow reads was "more
// memory resource to improve cache hit rates"; BG3's memory layer is the
// same kind of cache over cloud storage. This bench sweeps the resident
// page budget of one Bw-tree and reports the storage reads per query a
// Zipf read workload pays at each budget.
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "bwtree/bwtree.h"
#include "cloud/cloud_store.h"
#include "common/random.h"

using namespace bg3;
using namespace bg3::bwtree;

namespace {

constexpr uint64_t kKeys = 50'000;
constexpr int kReads = 40'000;

std::string KeyOf(uint64_t id) {
  char buf[16];
  snprintf(buf, sizeof(buf), "u%010llu", static_cast<unsigned long long>(id));
  return buf;
}

struct Point {
  double reads_per_query;
  double resident_fraction;
  double mem_mb;
};

Point Run(double resident_fraction) {
  cloud::CloudStoreOptions copts;
  copts.extent_capacity = 1 << 20;
  cloud::CloudStore store(copts);
  BwTreeOptions opts;
  opts.max_leaf_entries = 128;
  opts.base_stream = store.CreateStream("base");
  opts.delta_stream = store.CreateStream("delta");
  BwTree tree(&store, opts);

  Random load_rng(1);
  for (uint64_t i = 0; i < kKeys; ++i) {
    BG3_IGNORE_STATUS(tree.Upsert(KeyOf(i), "profile-payload-32-bytes-long!!!"));
  }
  const size_t pages = tree.LeafCount();
  const size_t budget =
      static_cast<size_t>(static_cast<double>(pages) * resident_fraction);

  // Steady-state loop: reads under a Zipf distribution with periodic
  // eviction back to the budget (a background memory regulator).
  ZipfGenerator keys(kKeys, 0.9, 7);
  (void)tree.EvictColdPages(budget);
  const uint64_t reads_before = store.stats().read_ops.Get();
  for (int i = 0; i < kReads; ++i) {
    BG3_IGNORE_STATUS(tree.Get(KeyOf(keys.Next())));
    if (i % 1024 == 0) (void)tree.EvictColdPages(budget);
  }
  Point p;
  p.reads_per_query =
      static_cast<double>(store.stats().read_ops.Get() - reads_before) /
      kReads;
  p.resident_fraction = resident_fraction;
  p.mem_mb = tree.ApproxMemoryBytes() / 1e6;
  return p;
}

}  // namespace

int main() {
  bench::Banner(
      "Ablation — cache budget vs storage reads per query",
      "no direct paper counterpart; quantifies §2.4's 'more memory to "
      "improve cache hit rates' tradeoff on BG3's own memory layer");

  printf("%18s %20s %12s\n", "resident budget", "storage reads/query",
         "memory(MB)");
  bench::BenchReport report("ablation_cache");
  for (double fraction : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    const Point p = Run(fraction);
    printf("%17.0f%% %20.3f %12.1f\n", fraction * 100, p.reads_per_query,
           p.mem_mb);
    report.AddRow("cache_budget", std::to_string(fraction))
        .Num("reads_per_query", p.reads_per_query)
        .Num("memory_mb", p.mem_mb);
    fflush(stdout);
  }
  bench::Note("Zipf(0.9) reads: a small resident budget already absorbs the "
              "hot head; storage reads fall steeply, then level off");
  return 0;
}
