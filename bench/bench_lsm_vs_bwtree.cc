// Motivating micro-benchmark for §2.4: raw KV point reads on the LSM engine
// (ByteGraph's storage layer) vs a single read-optimized Bw-tree, measuring
// the storage I/O per read that the paper blames for ByteGraph's read cost
// ("reading a data piece necessitates massive I/O to scan through multiple
// layers").
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_common.h"
#include "bwtree/bwtree.h"
#include "cloud/cloud_store.h"
#include "common/random.h"
#include "lsm/lsm_db.h"

using namespace bg3;

namespace {

constexpr uint64_t kKeys = 60'000;

std::string KeyOf(uint64_t id) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%010llu", static_cast<unsigned long long>(id));
  return buf;
}

struct LsmSetup {
  std::unique_ptr<cloud::CloudStore> store;
  std::unique_ptr<lsm::LsmDb> db;
};

LsmSetup BuildLsm() {
  LsmSetup s;
  s.store = std::make_unique<cloud::CloudStore>();
  lsm::LsmOptions opts;
  opts.stream = s.store->CreateStream("lsm");
  // Write-optimized tuning, as §2.4 describes ByteGraph's KV layer ("primarily
  // designed for write-intensive workloads, sacrificing read performance"):
  // a deep L0 defers compaction, so reads face overlapping runs.
  opts.memtable_bytes = 64 << 10;
  opts.compaction.l0_compaction_trigger = 8;
  opts.compaction.level_base_bytes = 256 << 10;
  s.db = std::make_unique<lsm::LsmDb>(s.store.get(), opts);
  Random rng(1);
  for (uint64_t i = 0; i < kKeys; ++i) {
    (void)s.db->Put(KeyOf(rng.Uniform(kKeys)), "value-payload-32-bytes!!");
  }
  return s;
}

struct BwSetup {
  std::unique_ptr<cloud::CloudStore> store;
  std::unique_ptr<bwtree::BwTree> tree;
};

BwSetup BuildBw() {
  BwSetup s;
  s.store = std::make_unique<cloud::CloudStore>();
  bwtree::BwTreeOptions opts;
  opts.read_cache = bwtree::ReadCacheMode::kNone;
  opts.base_stream = s.store->CreateStream("base");
  opts.delta_stream = s.store->CreateStream("delta");
  s.tree = std::make_unique<bwtree::BwTree>(s.store.get(), opts);
  Random rng(1);
  for (uint64_t i = 0; i < kKeys; ++i) {
    (void)s.tree->Upsert(KeyOf(rng.Uniform(kKeys)), "value-payload-32-bytes!!");
  }
  return s;
}

void BM_LsmRangeScan(benchmark::State& state) {
  static LsmSetup s = BuildLsm();
  Random rng(3);
  const uint64_t reads_before = s.store->stats().read_ops.Get();
  uint64_t n = 0;
  std::vector<lsm::KvRecord> out;
  for (auto _ : state) {
    out.clear();
    const uint64_t start = rng.Uniform(kKeys);
    (void)s.db->Scan(KeyOf(start), KeyOf(start + 64), 32, &out);
    benchmark::DoNotOptimize(out);
    ++n;
  }
  state.counters["storage_reads_per_scan"] = benchmark::Counter(
      static_cast<double>(s.store->stats().read_ops.Get() - reads_before) / n);
}
BENCHMARK(BM_LsmRangeScan)->Iterations(2000);

void BM_BwTreeRangeScan(benchmark::State& state) {
  static BwSetup s = BuildBw();
  Random rng(3);
  const uint64_t reads_before = s.store->stats().read_ops.Get();
  uint64_t n = 0;
  std::vector<bwtree::Entry> out;
  for (auto _ : state) {
    out.clear();
    bwtree::BwTree::ScanOptions scan;
    const uint64_t start = rng.Uniform(kKeys);
    scan.start_key = KeyOf(start);
    scan.end_key = KeyOf(start + 64);
    scan.limit = 32;
    (void)s.tree->Scan(scan, &out);
    benchmark::DoNotOptimize(out);
    ++n;
  }
  state.counters["storage_reads_per_scan"] = benchmark::Counter(
      static_cast<double>(s.store->stats().read_ops.Get() - reads_before) / n);
}
BENCHMARK(BM_BwTreeRangeScan)->Iterations(2000);

void BM_LsmPointGet(benchmark::State& state) {
  static LsmSetup s = BuildLsm();
  Random rng(2);
  const uint64_t reads_before = s.store->stats().read_ops.Get();
  const uint64_t probes_before = s.db->stats().tables_probed.Get();
  uint64_t n = 0;
  for (auto _ : state) {
    auto v = s.db->Get(KeyOf(rng.Uniform(kKeys)));
    benchmark::DoNotOptimize(v);
    ++n;
  }
  state.counters["storage_reads_per_get"] = benchmark::Counter(
      static_cast<double>(s.store->stats().read_ops.Get() - reads_before) / n);
  state.counters["tables_probed_per_get"] = benchmark::Counter(
      static_cast<double>(s.db->stats().tables_probed.Get() - probes_before) /
      n);
}
BENCHMARK(BM_LsmPointGet)->Iterations(20000);

void BM_BwTreePointGet(benchmark::State& state) {
  static BwSetup s = BuildBw();
  Random rng(2);
  const uint64_t reads_before = s.store->stats().read_ops.Get();
  uint64_t n = 0;
  for (auto _ : state) {
    auto v = s.tree->Get(KeyOf(rng.Uniform(kKeys)));
    benchmark::DoNotOptimize(v);
    ++n;
  }
  state.counters["storage_reads_per_get"] = benchmark::Counter(
      static_cast<double>(s.store->stats().read_ops.Get() - reads_before) / n);
}
BENCHMARK(BM_BwTreePointGet)->Iterations(20000);

}  // namespace

int main(int argc, char** argv) {
  bench::Banner(
      "Micro — LSM KV vs read-optimized Bw-tree reads (§2.4)",
      "point gets: LSM stays competitive thanks to in-memory blooms, but "
      "range scans (the adjacency-list op graph workloads live on) must "
      "merge every LSM level, vs one leaf visit on the Bw-tree");
  bench::BenchReport report("lsm_vs_bwtree");
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
