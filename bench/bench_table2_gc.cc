// Table 2 reproduction: background write amplification (MB/s of relocated
// data) under different space reclamation policies.
//
//   Workload 1 (Douyin Follow, no TTL):  dirty-ratio 15 MB/s vs
//                                        +update-gradient 12.5 MB/s (-16%)
//   Workload 2 (Financial Risk Control, short TTL): dirty-ratio 8 MB/s vs
//                                        +TTL bypass 0 MB/s
//
// Time is a ManualTimeSource advanced at the paper's offered rates (40K
// write QPS), so MB/s is computed over simulated seconds deterministically.
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "cloud/cloud_store.h"
#include "common/random.h"
#include "core/graph_db.h"

using namespace bg3;

namespace {

struct GcRun {
  double moved_mb_per_s = 0;
  double expired_extents = 0;
  double freed_mb = 0;
  double resident_mb = 0;
};

// Workload 1: follow-style churn — hot users' adjacency pages rewritten
// constantly, cold users' pages stable.
GcRun RunFollowChurn(core::GcPolicyKind policy) {
  cloud::CloudStoreOptions copts;
  copts.extent_capacity = 64 << 10;
  cloud::CloudStore store(copts);
  cloud::ManualTimeSource clock;
  core::GraphDBOptions opts;
  opts.gc_policy = policy;
  opts.gc_target_dead_ratio = 0.05;
  opts.gc_min_fragmentation = 0.05;
  // Enough pressure that policies must also pick partially-valid extents
  // (fully-dead ones are free wins for every policy).
  opts.gc_extents_per_cycle = 8;
  opts.forest.tree_options.consolidate_threshold = 8;
  opts.time_source = &clock;
  core::GraphDB db(&store, opts);

  constexpr int kOps = 160'000;
  constexpr uint64_t kOpIntervalUs = 25;  // 40K QPS offered rate
  // Fig. 5's spatial-temporal mixture: half the traffic is cold appends
  // (follow edges that persist), half is hot-cohort churn (content that is
  // hot for a window, then cools). Extents therefore mix stable and dying
  // records, which is what differentiates the reclamation policies.
  constexpr int kCohortOps = 20'000;
  Random rng(4);
  const std::string props(24, 'p');
  uint64_t cold_seq = 0;
  for (int i = 0; i < kOps; ++i) {
    clock.AdvanceUs(kOpIntervalUs);
    if (rng.Uniform(2) == 0) {
      BG3_IGNORE_STATUS(db.AddEdge(1'000'000 + (cold_seq % 50'000), 1,
                       2'000'000 + cold_seq, props, 0));
      ++cold_seq;
    } else {
      const uint64_t cohort = static_cast<uint64_t>(i / kCohortOps);
      const uint64_t user = cohort * 64 + rng.Uniform(64);
      BG3_IGNORE_STATUS(db.AddEdge(user, 1, rng.Uniform(256), props, 0));
    }
    if (i % 250 == 0) (void)db.RunGcCycle();
  }
  BG3_IGNORE_STATUS(db.RunGcCycle());
  const double sim_seconds = kOps * kOpIntervalUs / 1e6;
  GcRun r;
  r.moved_mb_per_s = store.stats().gc_moved_bytes.Get() / 1e6 / sim_seconds;
  return r;
}

// Workload 2: risk-control — insert-only audit records with a short TTL.
GcRun RunRiskControlTtl(core::GcPolicyKind policy, bool use_ttl,
                        uint64_t ttl_us = 500'000) {
  cloud::CloudStoreOptions copts;
  copts.extent_capacity = 64 << 10;
  cloud::CloudStore store(copts);
  cloud::ManualTimeSource clock;
  core::GraphDBOptions opts;
  opts.gc_policy = policy;
  opts.gc_target_dead_ratio = 0.05;
  opts.gc_min_fragmentation = 0.02;
  opts.gc_extents_per_cycle = 24;
  opts.edge_ttl_us = use_ttl ? ttl_us : 0;
  opts.gc_ttl_bypass_window_us = 1'000'000;  // hybrid: 1s expiry window
  opts.forest.tree_options.consolidate_threshold = 8;
  opts.time_source = &clock;
  core::GraphDB db(&store, opts);

  constexpr int kOps = 120'000;
  constexpr uint64_t kOpIntervalUs = 25;
  ZipfGenerator accounts(5'000, 0.9, 5);
  Random rng(6);
  const std::string props(24, 'a');
  GcRun r;
  for (int i = 0; i < kOps; ++i) {
    clock.AdvanceUs(kOpIntervalUs);
    // Fresh audit edges; hot accounts overwrite their recent records, so
    // extents do fragment (the dirty-ratio baseline finds victims).
    BG3_IGNORE_STATUS(db.AddEdge(accounts.Next(), 1, rng.Uniform(5'000), props, 0));
    if (i % 500 == 0) (void)db.RunGcCycle();
  }
  BG3_IGNORE_STATUS(db.RunGcCycle());
  const double sim_seconds = kOps * kOpIntervalUs / 1e6;
  const core::DbStats stats = db.Stats();
  r.moved_mb_per_s = store.stats().gc_moved_bytes.Get() / 1e6 / sim_seconds;
  r.expired_extents = static_cast<double>(stats.gc_extents_expired);
  r.freed_mb = stats.gc_bytes_freed / 1e6;
  r.resident_mb = store.TotalBytes() / 1e6;
  return r;
}

}  // namespace

int main() {
  bench::Banner("Table 2 — space reclamation policy comparison (§4.4)",
                "WL1: 15 MB/s (dirty-ratio) vs 12.5 MB/s (+gradient), -16%; "
                "WL2: 8 MB/s (dirty-ratio) vs 0 (+TTL natural expiry)");

  bench::BenchReport report("table2_gc");
  printf("\n-- workload 1: Douyin Follow (40K write QPS, no TTL) --\n");
  const GcRun wl1_dirty = RunFollowChurn(core::GcPolicyKind::kDirtyRatio);
  const GcRun wl1_aware = RunFollowChurn(core::GcPolicyKind::kWorkloadAware);
  printf("%-28s %10.2f MB/s\n", "dirty-ratio (ArkDB)", wl1_dirty.moved_mb_per_s);
  printf("%-28s %10.2f MB/s  (%.1f%% less movement)\n",
         "+update gradient (BG3)", wl1_aware.moved_mb_per_s,
         100.0 * (1.0 - wl1_aware.moved_mb_per_s /
                            (wl1_dirty.moved_mb_per_s > 0
                                 ? wl1_dirty.moved_mb_per_s
                                 : 1.0)));

  bench::Note(
      "reproduction note: in this synthetic substrate hot extents decay to "
      "near-fully-dead before selection, where fragmentation-greedy choice "
      "is already near-optimal; the gradient's benefit is therefore small "
      "here (paper reports -16%% on production traces; see EXPERIMENTS.md)");

  report.AddRow("wl1_follow", "dirty_ratio")
      .Num("moved_mb_per_s", wl1_dirty.moved_mb_per_s);
  report.AddRow("wl1_follow", "workload_aware")
      .Num("moved_mb_per_s", wl1_aware.moved_mb_per_s);

  printf("\n-- workload 2: Financial Risk Control (short TTL) --\n");
  const GcRun wl2_dirty =
      RunRiskControlTtl(core::GcPolicyKind::kDirtyRatio, /*use_ttl=*/false);
  const GcRun wl2_ttl =
      RunRiskControlTtl(core::GcPolicyKind::kWorkloadAware, /*use_ttl=*/true);
  printf("%-28s %10.2f MB/s\n", "dirty-ratio (no TTL aware)",
         wl2_dirty.moved_mb_per_s);
  printf("%-28s %10.2f MB/s  (extents expired in place: %.0f, %.1f MB freed)\n",
         "+TTL bypass (BG3)", wl2_ttl.moved_mb_per_s, wl2_ttl.expired_extents,
         wl2_ttl.freed_mb);

  report.AddRow("wl2_risk_ttl", "dirty_ratio")
      .Num("moved_mb_per_s", wl2_dirty.moved_mb_per_s);
  report.AddRow("wl2_risk_ttl", "ttl_bypass")
      .Num("moved_mb_per_s", wl2_ttl.moved_mb_per_s)
      .Num("expired_extents", wl2_ttl.expired_extents)
      .Num("freed_mb", wl2_ttl.freed_mb);

  printf("\n-- extension: §4.4 future work, long-TTL workload --\n");
  // With a TTL far longer than the run, the pure bypass strands all dead
  // space until expiry; the hybrid policy keeps reclaiming fragmented
  // extents whose deadline is still distant.
  const GcRun long_bypass = RunRiskControlTtl(
      core::GcPolicyKind::kWorkloadAware, /*use_ttl=*/true,
      /*ttl_us=*/3'600ull * 1'000'000);
  const GcRun long_hybrid = RunRiskControlTtl(
      core::GcPolicyKind::kHybridTtlGradient, /*use_ttl=*/true,
      /*ttl_us=*/3'600ull * 1'000'000);
  printf("%-28s moved %6.2f MB/s, resident at end %8.1f MB\n",
         "TTL bypass only", long_bypass.moved_mb_per_s,
         long_bypass.resident_mb);
  printf("%-28s moved %6.2f MB/s, resident at end %8.1f MB\n",
         "hybrid TTL+gradient", long_hybrid.moved_mb_per_s,
         long_hybrid.resident_mb);
  report.AddRow("long_ttl", "ttl_bypass")
      .Num("moved_mb_per_s", long_bypass.moved_mb_per_s)
      .Num("resident_mb", long_bypass.resident_mb);
  report.AddRow("long_ttl", "hybrid_ttl_gradient")
      .Num("moved_mb_per_s", long_hybrid.moved_mb_per_s)
      .Num("resident_mb", long_hybrid.resident_mb);
  bench::Note("the hybrid trades a little movement for not storing \"30 "
              "days' data\" of garbage (§4.4)");
  return 0;
}
