// Instant restart (ISSUE 7 / DESIGN.md §5.7): time-to-first-read and
// time-to-full-QPS after a crash, with continuous fuzzy checkpointing vs
// the full-WAL-replay baseline, swept across 1x/4x/16x WAL volume.
//
//   checkpointed — a Checkpointer published a manifest before the crash;
//       RwRestart::Begin seeks the WAL reader past the checkpoint cursor
//       and replays only the suffix, so the first read lands after a
//       bounded amount of I/O *independent of total WAL length*.
//   full_replay  — the same store restarted with checkpoint resume
//       disabled: every byte of the WAL is re-read before the first read.
//
// Wall-clock times are reported for inspection; the CI floors
// (scripts/check_bench_json.py) are the deterministic byte ratios:
// replay_savings_16x >= 0.5 (the checkpointed restart skips at least half
// the 16x WAL) and full_vs_checkpoint_replay_ratio_16x >= 4.0 (the
// baseline replays at least 4x more bytes than the checkpointed path).
#include <cstdio>
#include <memory>
#include <string>

#include "bench_common.h"
#include "cloud/cloud_store.h"
#include "common/clock.h"
#include "replication/checkpoint.h"
#include "replication/restart.h"
#include "replication/rw_node.h"

using namespace bg3;

namespace {

constexpr int kBaseWrites = 400;   // 1x WAL volume
constexpr int kSuffixWrites = 50;  // constant post-checkpoint suffix
constexpr int kScales[] = {1, 4, 16};
constexpr const char* kPayload = "restart-bench-payload-restart-bench";

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%08d", i);
  return buf;
}

struct CrashedStore {
  std::unique_ptr<cloud::CloudStore> store;
  replication::RestartOptions opts;
};

/// Builds a store holding a crashed RW node: `scale * kBaseWrites` writes,
/// a durable checkpoint manifest, then kSuffixWrites more (the replay
/// suffix), then the crash.
CrashedStore BuildCrashedStore(int scale) {
  CrashedStore c;
  c.store = std::make_unique<cloud::CloudStore>();
  c.opts.node.tree.tree_id = 1;
  c.opts.node.tree.max_leaf_entries = 64;
  c.opts.node.tree.base_stream = c.store->CreateStream("base");
  c.opts.node.tree.delta_stream = c.store->CreateStream("delta");
  c.opts.node.wal.stream = c.store->CreateStream("wal");
  c.opts.node.flush_group_pages = 1'000'000;  // the checkpointer flushes
  c.opts.node.flush_group_mutations = 1'000'000'000;
  auto rw = std::make_unique<replication::RwNode>(c.store.get(), c.opts.node);
  for (int i = 0; i < kBaseWrites * scale; ++i) {
    BG3_IGNORE_STATUS(rw->Put(Key(i), kPayload));
  }
  replication::Checkpointer ckpt(c.store.get(), rw.get());
  BG3_IGNORE_STATUS(ckpt.CheckpointNow());
  for (int i = 0; i < kSuffixWrites; ++i) {
    BG3_IGNORE_STATUS(rw->Put(Key(10'000'000 + i), kPayload));
  }
  rw.reset();  // crash
  return c;
}

struct Measured {
  uint64_t first_read_us = 0;
  uint64_t full_qps_us = 0;
  uint64_t replayed_bytes = 0;
  uint64_t total_wal_bytes = 0;
};

/// One measured restart of the crashed store. Destructive when `take` (the
/// reopened write path flushes), so the checkpointed pass runs before the
/// full-replay pass measures nothing further on the store.
Measured RunRestart(CrashedStore& c, bool resume, bool take) {
  replication::RestartOptions opts = c.opts;
  opts.resume_from_checkpoint = resume;
  opts.warm_pages_per_step = 32;
  Measured m;
  const uint64_t start = NowMicros();
  replication::RwRestart restart(c.store.get(), opts);
  BG3_CHECK(restart.Begin().ok());
  BG3_CHECK(restart.Get(Key(0)).ok());  // the first post-crash read
  m.first_read_us = NowMicros() - start;
  m.replayed_bytes = restart.progress().replayed_wal_bytes;
  m.total_wal_bytes = restart.progress().total_wal_bytes;
  if (take) {
    BG3_CHECK(restart.RunToCompletion().ok());
    auto node = restart.Take();
    BG3_CHECK(node.ok());
    BG3_CHECK(node.value()->Get(Key(0)).ok());  // write path reopened
  } else {
    BG3_CHECK(restart.RunToCompletion().ok());
  }
  m.full_qps_us = NowMicros() - start;
  return m;
}

}  // namespace

int main() {
  bench::Banner(
      "Instant restart — time-to-first-read / time-to-full-QPS after a "
      "crash, checkpointed vs full WAL replay, 1x/4x/16x WAL volume",
      "DESIGN.md §5.7: the checkpointed restart replays only the WAL "
      "suffix; first-read cost is independent of WAL length");

  bench::BenchReport report("restart");
  report.Config("base_writes", kBaseWrites);
  report.Config("suffix_writes", kSuffixWrites);
  report.Config("payload_bytes", static_cast<uint64_t>(sizeof(kPayload) - 1));

  printf("%12s %6s %18s %18s %16s %16s\n", "series", "scale", "first-read-us",
         "full-qps-us", "replayed-bytes", "total-wal-bytes");

  uint64_t ckpt_replayed_16x = 0, full_replayed_16x = 0, total_16x = 0;
  uint64_t ckpt_replayed_1x = 0;
  for (const int scale : kScales) {
    const std::string x = std::to_string(scale) + "x";
    CrashedStore c = BuildCrashedStore(scale);
    // Checkpointed restart first (its Take republishes pages); the
    // full-replay baseline measures last and reads strictly more WAL.
    const Measured ckpt = RunRestart(c, /*resume=*/true, /*take=*/true);
    const Measured full = RunRestart(c, /*resume=*/false, /*take=*/false);
    for (const auto& [series, m] :
         {std::pair<const char*, const Measured&>{"checkpointed", ckpt},
          {"full_replay", full}}) {
      printf("%12s %5dx %18llu %18llu %16llu %16llu\n", series, scale,
             (unsigned long long)m.first_read_us,
             (unsigned long long)m.full_qps_us,
             (unsigned long long)m.replayed_bytes,
             (unsigned long long)m.total_wal_bytes);
      report.AddRow(series, x)
          .Num("time_to_first_read_us", static_cast<double>(m.first_read_us))
          .Num("time_to_full_qps_us", static_cast<double>(m.full_qps_us))
          .Num("replayed_bytes", static_cast<double>(m.replayed_bytes))
          .Num("total_wal_bytes", static_cast<double>(m.total_wal_bytes));
    }
    if (scale == 1) ckpt_replayed_1x = ckpt.replayed_bytes;
    if (scale == 16) {
      ckpt_replayed_16x = ckpt.replayed_bytes;
      full_replayed_16x = full.replayed_bytes;
      total_16x = full.total_wal_bytes;
    }
  }

  // CI floors: deterministic byte ratios, immune to machine speed.
  const double savings =
      total_16x > 0
          ? 1.0 - static_cast<double>(ckpt_replayed_16x) / total_16x
          : 0.0;
  const double ratio = ckpt_replayed_16x > 0
                           ? static_cast<double>(full_replayed_16x) /
                                 ckpt_replayed_16x
                           : 0.0;
  // Boundedness across the sweep: the 16x checkpointed restart replays
  // about the same suffix as the 1x one (reported for inspection).
  const double growth = ckpt_replayed_1x > 0
                            ? static_cast<double>(ckpt_replayed_16x) /
                                  ckpt_replayed_1x
                            : 0.0;
  report.Scalar("replay_savings_16x", savings);
  report.Scalar("full_vs_checkpoint_replay_ratio_16x", ratio);
  report.Scalar("checkpoint_replay_growth_16x_over_1x", growth);

  bench::Note("16x WAL: checkpointed restart skipped %.1f%% of the log "
              "(floor 50%%); full replay read %.1fx more bytes (floor 4x); "
              "suffix growth 16x/1x = %.2fx",
              100.0 * savings, ratio, growth);
  report.Write();
  return 0;
}
