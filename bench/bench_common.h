// Shared helpers for the table/figure reproduction binaries. Each bench
// prints (a) the paper's reference series and (b) the measured series, in
// aligned columns, so EXPERIMENTS.md can be filled by copy-paste.
#ifndef BG3_BENCH_BENCH_COMMON_H_
#define BG3_BENCH_BENCH_COMMON_H_

#include <cstdarg>
#include <cstdio>
#include <string>

namespace bg3::bench {

inline void Banner(const std::string& title, const std::string& paper_ref) {
  printf("\n================================================================\n");
  printf("%s\n", title.c_str());
  printf("paper reference: %s\n", paper_ref.c_str());
  printf("================================================================\n");
}

inline void Note(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  printf("  ");
  vprintf(fmt, args);
  va_end(args);
  printf("\n");
}

/// Pretty QPS with K/M suffix.
inline std::string Qps(double qps) {
  char buf[32];
  if (qps >= 1e6) {
    snprintf(buf, sizeof(buf), "%.2fM", qps / 1e6);
  } else if (qps >= 1e3) {
    snprintf(buf, sizeof(buf), "%.1fK", qps / 1e3);
  } else {
    snprintf(buf, sizeof(buf), "%.0f", qps);
  }
  return buf;
}

inline std::string Mb(double bytes) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%.2fMB", bytes / 1e6);
  return buf;
}

}  // namespace bg3::bench

#endif  // BG3_BENCH_BENCH_COMMON_H_
