// Shared helpers for the table/figure reproduction binaries. Each bench
// prints (a) the paper's reference series and (b) the measured series, in
// aligned columns, so EXPERIMENTS.md can be filled by copy-paste — and
// writes the same numbers as machine-readable BENCH_<name>.json via
// BenchReport (schema documented in EXPERIMENTS.md; validated by
// scripts/check_bench_json.py in CI).
#ifndef BG3_BENCH_BENCH_COMMON_H_
#define BG3_BENCH_BENCH_COMMON_H_

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/json_writer.h"
#include "common/metrics_registry.h"
#include "common/trace.h"

namespace bg3::bench {

inline void Banner(const std::string& title, const std::string& paper_ref) {
  printf("\n================================================================\n");
  printf("%s\n", title.c_str());
  printf("paper reference: %s\n", paper_ref.c_str());
  printf("================================================================\n");
}

inline void Note(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  printf("  ");
  vprintf(fmt, args);
  va_end(args);
  printf("\n");
}

/// Pretty QPS with K/M suffix.
inline std::string Qps(double qps) {
  char buf[32];
  if (qps >= 1e6) {
    snprintf(buf, sizeof(buf), "%.2fM", qps / 1e6);
  } else if (qps >= 1e3) {
    snprintf(buf, sizeof(buf), "%.1fK", qps / 1e3);
  } else {
    snprintf(buf, sizeof(buf), "%.0f", qps);
  }
  return buf;
}

inline std::string Mb(double bytes) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%.2fMB", bytes / 1e6);
  return buf;
}

/// Machine-readable companion to the printed tables. One instance per bench
/// main; rows/scalars mirror what the bench prints, and Write() folds in the
/// full metrics-registry snapshot (per-layer latency histograms, counters,
/// gauges) plus an aggregated cloud-I/O breakdown, then writes
/// `BENCH_<name>.json` ($BG3_BENCH_JSON_DIR or cwd). Written JSON always has
/// the keys: schema_version, bench, config, series, scalars, latency_ns,
/// counters, gauges, io.
///
/// Destructor writes if Write() was never called, so early-return benches
/// still emit their file.
class BenchReport {
 private:
  /// Tagged scalar: string, double, or unsigned integer.
  struct Val {
    enum class Kind { kStr, kDouble, kUint } kind;
    std::string s;
    double d = 0;
    uint64_t u = 0;

    explicit Val(std::string v) : kind(Kind::kStr), s(std::move(v)) {}
    explicit Val(double v) : kind(Kind::kDouble), d(v) {}
    explicit Val(uint64_t v) : kind(Kind::kUint), u(v) {}

    void Emit(JsonWriter* w, const std::string& key) const {
      w->Key(key);
      switch (kind) {
        case Kind::kStr: w->Value(s); break;
        case Kind::kDouble:
          // NaN/Inf are not JSON; emit null.
          if (d != d || d > 1.7e308 || d < -1.7e308) {
            w->Null();
          } else {
            w->Value(d);
          }
          break;
        case Kind::kUint: w->Value(u); break;
      }
    }
  };

 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}
  ~BenchReport() {
    if (!written_) Write();
  }

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  void Config(const std::string& key, const std::string& v) {
    config_.emplace_back(key, Val(v));
  }
  void Config(const std::string& key, const char* v) {
    config_.emplace_back(key, Val(std::string(v)));
  }
  void Config(const std::string& key, double v) {
    config_.emplace_back(key, Val(v));
  }
  void Config(const std::string& key, uint64_t v) {
    config_.emplace_back(key, Val(v));
  }
  void Config(const std::string& key, int v) {
    config_.emplace_back(key, Val(static_cast<uint64_t>(v)));
  }

  void Scalar(const std::string& key, double v) {
    scalars_.emplace_back(key, Val(v));
  }

  /// One measured data point of a printed series; `x` is the sweep label
  /// (thread count, extent size, policy name, ...).
  class Row {
   public:
    Row& Num(const std::string& key, double v) {
      fields_.emplace_back(key, Val(v));
      return *this;
    }
    Row& Str(const std::string& key, const std::string& v) {
      fields_.emplace_back(key, Val(v));
      return *this;
    }

   private:
    friend class BenchReport;
    std::vector<std::pair<std::string, Val>> fields_;
  };

  Row& AddRow(const std::string& series, const std::string& x) {
    rows_.emplace_back();
    rows_.back().fields_.emplace_back("series", Val(series));
    rows_.back().fields_.emplace_back("x", Val(x));
    return rows_.back();
  }

  void Write() {
    written_ = true;
    const MetricsRegistry::Snapshot snap =
        MetricsRegistry::Default().TakeSnapshot();

    JsonWriter w(/*indent=*/2);
    w.BeginObject();
    w.KV("schema_version", 1);
    w.KV("bench", name_);

    w.Key("config");
    w.BeginObject();
    for (const auto& [k, v] : config_) v.Emit(&w, k);
    w.EndObject();

    w.Key("series");
    w.BeginArray();
    for (const Row& r : rows_) {
      w.BeginObject();
      for (const auto& [k, v] : r.fields_) v.Emit(&w, k);
      w.EndObject();
    }
    w.EndArray();

    w.Key("scalars");
    w.BeginObject();
    for (const auto& [k, v] : scalars_) v.Emit(&w, k);
    w.EndObject();

    w.Key("latency_ns");
    w.BeginObject();
    for (const auto& [name, v] : snap.histograms) {
      w.Key(name);
      w.BeginObject();
      w.KV("count", v.count);
      w.KV("mean", v.mean);
      w.KV("min", v.min);
      w.KV("p50", v.p50);
      w.KV("p95", v.p95);
      w.KV("p99", v.p99);
      w.KV("max", v.max);
      w.EndObject();
    }
    w.EndObject();

    w.Key("counters");
    w.BeginObject();
    for (const auto& [name, v] : snap.counters) w.KV(name, v);
    w.EndObject();

    w.Key("gauges");
    w.BeginObject();
    for (const auto& [name, v] : snap.gauges) w.KV(name, v);
    w.EndObject();

    // Cloud-I/O breakdown: every CloudStore registers its IoStats under
    // `bg3.cloud.store<N>.` and folds them into `bg3.cloud.retired.*` at
    // destruction; summing both gives the process-lifetime totals the
    // figures' read/write-amplification numbers are computed from.
    w.Key("io");
    w.BeginObject();
    static const char* kIoFields[] = {
        "append_ops",      "append_bytes",   "read_ops",
        "read_bytes",      "gc_moved_bytes", "extents_freed",
        "manifest_updates", "injected_faults", "retries",
        "retry_exhausted"};
    for (const char* field : kIoFields) {
      uint64_t total = 0;
      const std::string suffix = std::string(".") + field;
      for (const auto& [name, v] : snap.counters) {
        const bool cloud_counter =
            name.rfind("bg3.cloud.store", 0) == 0 ||
            name.rfind("bg3.cloud.retired.", 0) == 0;
        if (cloud_counter && name.size() > suffix.size() &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
          total += v;
        }
      }
      w.KV(field, total);
    }
    w.EndObject();

    w.EndObject();

    const std::string path = OutPath();
    FILE* f = fopen(path.c_str(), "w");
    if (f == nullptr) {
      fprintf(stderr, "BenchReport: cannot write %s\n", path.c_str());
      return;
    }
    const std::string doc = w.TakeString();
    fwrite(doc.data(), 1, doc.size(), f);
    fputc('\n', f);
    fclose(f);
    Note("wrote %s", path.c_str());

    // BG3_TRACE=1 runs additionally dump the chrome-tracing timeline.
    const std::string trace_path = trace::Trace::ExportToEnvFile();
    if (!trace_path.empty()) Note("wrote %s", trace_path.c_str());
  }

 private:
  std::string OutPath() const {
    const char* dir = getenv("BG3_BENCH_JSON_DIR");
    std::string path = dir != nullptr && dir[0] != '\0' ? std::string(dir) : ".";
    if (path.back() != '/') path += '/';
    return path + "BENCH_" + name_ + ".json";
  }

  const std::string name_;
  std::vector<std::pair<std::string, Val>> config_;
  std::vector<std::pair<std::string, Val>> scalars_;
  std::vector<Row> rows_;
  bool written_ = false;
};

}  // namespace bg3::bench

#endif  // BG3_BENCH_BENCH_COMMON_H_
