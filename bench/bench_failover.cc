// Leader failover (DESIGN.md §5.10): write-unavailability window and
// promotion replay cost across 1x/4x/16x WAL backlog.
//
//   checkpointed — the partition ran a Checkpointer; the promotion
//       candidate is a *cold* follower that bootstraps from the manifest
//       and replays only the WAL suffix past its cursor, so the bytes a
//       promotion must read are bounded by the checkpoint suffix, not the
//       total WAL length.
//   full_replay  — the same backlog with checkpointing off: the cold
//       candidate re-reads the entire WAL before it can be promoted.
//
// The unavailability window (fence -> epoch CAS -> catch-up -> reopen ->
// first acknowledged write on the new leader) is wall clock, reported for
// inspection. The CI floors (scripts/check_bench_json.py) are the
// deterministic byte ratios: promotion_replay_savings_16x >= 0.5 and
// full_vs_checkpoint_promotion_replay_ratio_16x >= 4.0.
#include <cstdio>
#include <memory>
#include <string>

#include "bench_common.h"
#include "cloud/cloud_store.h"
#include "common/clock.h"
#include "replication/cluster.h"

using namespace bg3;

namespace {

constexpr int kBaseWrites = 400;   // 1x WAL backlog
constexpr int kSuffixWrites = 50;  // constant post-checkpoint suffix
constexpr int kScales[] = {1, 4, 16};
constexpr const char* kPayload = "failover-bench-payload-failover-bench";

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%08d", i);
  return buf;
}

struct Measured {
  uint64_t unavailability_us = 0;  ///< fence to first acked write.
  uint64_t first_follower_read_us = 0;
  uint64_t replay_bytes = 0;  ///< cold candidate's WAL read during catch-up.
  uint64_t total_wal_bytes = 0;
  bool resumed_from_checkpoint = false;
};

/// Builds one single-partition cluster with `scale * kBaseWrites` writes of
/// backlog (plus a constant suffix past the checkpoint when checkpointing),
/// then fails the leader over to a cold follower and measures the window.
Measured RunFailover(int scale, bool checkpointing) {
  auto store = std::make_unique<cloud::CloudStore>();
  replication::ClusterOptions copts;
  copts.partitions = 1;
  copts.followers_per_partition = 2;
  copts.max_leaf_entries = 64;
  copts.flush_group_pages = 1'000'000;  // the checkpointer flushes
  copts.flush_group_mutations = 1'000'000'000;
  copts.wal.group_window_us = 0;
  copts.checkpointing = checkpointing;
  replication::Bg3Cluster cluster(store.get(), copts);
  // CreateStream is name-idempotent: this resolves the id of the WAL
  // stream the cluster created for partition 0.
  const cloud::StreamId wal_stream = store->CreateStream("cluster-p0-wal");

  for (int i = 0; i < kBaseWrites * scale; ++i) {
    BG3_CHECK(cluster.Put(Key(i), kPayload).ok());
  }
  if (checkpointing) {
    BG3_CHECK(cluster.checkpointer(0)->CheckpointNow().ok());
    for (int i = 0; i < kSuffixWrites; ++i) {
      BG3_CHECK(cluster.Put(Key(10'000'000 + i), kPayload).ok());
    }
  }

  // The candidate is a *cold* follower: rebuilt after the backlog so its
  // replay during promotion is exactly what a node that was not tailing
  // must read — the manifest suffix, or the whole WAL without one.
  BG3_CHECK(cluster.RestartFollower(0, 0).ok());

  Measured m;
  const uint64_t start = NowMicros();
  BG3_CHECK(cluster.PromoteFollower(0, 0).ok());
  BG3_CHECK(cluster.Put(Key(20'000'000), kPayload).ok());
  m.unavailability_us = NowMicros() - start;
  BG3_CHECK(cluster.Get(Key(20'000'000)).ok());
  m.first_follower_read_us = NowMicros() - start;

  // The candidate itself was consumed into the new leader, but the
  // replacement follower in the promoted slot bootstraps exactly like the
  // candidate did (same manifest, same suffix) — its replay bytes are the
  // promotion's replay bytes.
  replication::RoNode* fresh = cluster.follower(0, 0);
  BG3_CHECK(fresh->PollWal().ok());
  m.replay_bytes = fresh->WalBytesReplayed();
  m.resumed_from_checkpoint = fresh->ResumedFromCheckpoint();
  m.total_wal_bytes = store->TotalBytes(wal_stream);
  return m;
}

}  // namespace

int main() {
  bench::Banner(
      "Leader failover — write-unavailability window and promotion replay "
      "bytes, checkpointed vs full WAL replay, 1x/4x/16x backlog",
      "DESIGN.md §5.10: a promotion replays only the checkpoint suffix; "
      "its cost is independent of total WAL length");

  bench::BenchReport report("failover");
  report.Config("base_writes", kBaseWrites);
  report.Config("suffix_writes", kSuffixWrites);
  report.Config("payload_bytes", static_cast<uint64_t>(sizeof(kPayload) - 1));

  printf("%12s %6s %18s %20s %16s %16s %8s\n", "series", "scale",
         "unavail-us", "first-foll-read-us", "replay-bytes",
         "total-wal-bytes", "resumed");

  uint64_t ckpt_replay_16x = 0, full_replay_16x = 0, total_16x = 0;
  uint64_t ckpt_replay_1x = 0;
  for (const int scale : kScales) {
    const std::string x = std::to_string(scale) + "x";
    const Measured ckpt = RunFailover(scale, /*checkpointing=*/true);
    const Measured full = RunFailover(scale, /*checkpointing=*/false);
    for (const auto& [series, m] :
         {std::pair<const char*, const Measured&>{"checkpointed", ckpt},
          {"full_replay", full}}) {
      printf("%12s %5dx %18llu %20llu %16llu %16llu %8s\n", series, scale,
             (unsigned long long)m.unavailability_us,
             (unsigned long long)m.first_follower_read_us,
             (unsigned long long)m.replay_bytes,
             (unsigned long long)m.total_wal_bytes,
             m.resumed_from_checkpoint ? "yes" : "no");
      report.AddRow(series, x)
          .Num("unavailability_us", static_cast<double>(m.unavailability_us))
          .Num("first_follower_read_us",
               static_cast<double>(m.first_follower_read_us))
          .Num("promotion_replay_bytes", static_cast<double>(m.replay_bytes))
          .Num("total_wal_bytes", static_cast<double>(m.total_wal_bytes));
    }
    if (scale == 1) ckpt_replay_1x = ckpt.replay_bytes;
    if (scale == 16) {
      ckpt_replay_16x = ckpt.replay_bytes;
      full_replay_16x = full.replay_bytes;
      total_16x = full.total_wal_bytes;
    }
  }

  // CI floors: deterministic byte ratios, immune to machine speed.
  const double savings =
      total_16x > 0
          ? 1.0 - static_cast<double>(ckpt_replay_16x) / total_16x
          : 0.0;
  const double ratio =
      ckpt_replay_16x > 0
          ? static_cast<double>(full_replay_16x) / ckpt_replay_16x
          : 0.0;
  // Boundedness across the sweep: the 16x checkpointed promotion replays
  // about the same suffix as the 1x one (reported for inspection).
  const double growth =
      ckpt_replay_1x > 0
          ? static_cast<double>(ckpt_replay_16x) / ckpt_replay_1x
          : 0.0;
  report.Scalar("promotion_replay_savings_16x", savings);
  report.Scalar("full_vs_checkpoint_promotion_replay_ratio_16x", ratio);
  report.Scalar("checkpoint_promotion_replay_growth_16x_over_1x", growth);

  bench::Note("16x backlog: checkpointed promotion skipped %.1f%% of the "
              "WAL (floor 50%%); the no-checkpoint promotion read %.1fx "
              "more bytes (floor 4x); suffix growth 16x/1x = %.2fx",
              100.0 * savings, ratio, growth);
  report.Write();
  return 0;
}
