// Ablation (beyond the paper's figures): how the consolidation threshold
// trades read amplification against write bandwidth in both delta modes.
// This quantifies the design space around the paper's fixed choice of 10
// (§4.3.1) — small thresholds consolidate eagerly (fast reads, more base
// rewrites), large thresholds grow chains (slow reads on the traditional
// tree, bigger merged deltas on the read-optimized one).
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "bwtree/bwtree.h"
#include "cloud/cloud_store.h"
#include "common/random.h"

using namespace bg3;
using namespace bg3::bwtree;

namespace {

constexpr uint64_t kKeys = 20'000;
constexpr int kWrites = 90'000;
constexpr int kReads = 10'000;

std::string KeyOf(uint64_t id) {
  char buf[16];
  snprintf(buf, sizeof(buf), "u%010llu", static_cast<unsigned long long>(id));
  return buf;
}

struct Point {
  double reads_per_query;
  double bytes_per_write;
};

Point Run(DeltaMode mode, uint32_t consolidate_threshold) {
  cloud::CloudStoreOptions copts;
  copts.extent_capacity = 1 << 20;
  cloud::CloudStore store(copts);
  BwTreeOptions opts;
  opts.delta_mode = mode;
  opts.consolidate_threshold = consolidate_threshold;
  opts.max_leaf_entries = 128;  // normal leaf splits
  opts.read_cache = ReadCacheMode::kNone;
  opts.base_stream = store.CreateStream("base");
  opts.delta_stream = store.CreateStream("delta");
  BwTree tree(&store, opts);

  ZipfGenerator write_keys(kKeys, 0.8, 1);
  for (int i = 0; i < kWrites; ++i) {
    BG3_IGNORE_STATUS(tree.Upsert(KeyOf(write_keys.Next()), "payload-32-bytes-of-props!!"));
  }
  const uint64_t bytes = store.stats().append_bytes.Get();

  ZipfGenerator read_keys(kKeys, 0.8, 2);
  const uint64_t reads_before = store.stats().read_ops.Get();
  for (int i = 0; i < kReads; ++i) {
    BG3_IGNORE_STATUS(tree.Get(KeyOf(read_keys.Next())));
  }
  Point p;
  p.reads_per_query =
      static_cast<double>(store.stats().read_ops.Get() - reads_before) /
      kReads;
  p.bytes_per_write = static_cast<double>(bytes) / kWrites;
  return p;
}

}  // namespace

int main() {
  bench::Banner("Ablation — consolidation threshold sweep",
                "paper fixes ConsolidateNum=10; this sweep shows the "
                "read-amp / write-bandwidth tradeoff around that choice");

  printf("%10s | %-34s | %-34s\n", "", "traditional (SLED-like)",
         "read-optimized (BG3)");
  printf("%10s | %16s %16s | %16s %16s\n", "threshold", "reads/query",
         "bytes/write", "reads/query", "bytes/write");
  bench::BenchReport report("ablation_consolidate");
  for (uint32_t threshold : {2u, 5u, 10u, 20u, 50u}) {
    const Point t = Run(DeltaMode::kTraditional, threshold);
    const Point r = Run(DeltaMode::kReadOptimized, threshold);
    printf("%10u | %16.2f %16.0f | %16.2f %16.0f\n", threshold,
           t.reads_per_query, t.bytes_per_write, r.reads_per_query,
           r.bytes_per_write);
    report.AddRow("traditional", std::to_string(threshold))
        .Num("reads_per_query", t.reads_per_query)
        .Num("bytes_per_write", t.bytes_per_write);
    report.AddRow("read_optimized", std::to_string(threshold))
        .Num("reads_per_query", r.reads_per_query)
        .Num("bytes_per_write", r.bytes_per_write);
    fflush(stdout);
  }
  bench::Note("read-optimized holds reads/query <= 2 at any threshold; the "
              "traditional chain degrades linearly with it");
  return 0;
}
