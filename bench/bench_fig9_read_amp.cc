// Figure 9 reproduction: read amplification of the traditional Bw-tree (the
// SLED baseline) vs BG3's Read Optimized Bw-tree. Setup per §4.3.1: no
// splitting, consolidation after 10 deltas, zero cache (every read misses),
// Douyin-follow-like power-law access at a fixed entry rate.
//
// Paper: 20K entry QPS -> 76K storage QPS on SLED (3.87x) vs 48K on BG3
// (2.4x), a 36.8% reduction.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_common.h"
#include "bwtree/bwtree.h"
#include "cloud/cloud_store.h"
#include "common/random.h"

using namespace bg3;
using namespace bg3::bwtree;

namespace {

constexpr uint64_t kKeys = 20'000;
constexpr int kWriteOps = 120'000;

struct Setup {
  std::unique_ptr<cloud::CloudStore> store;
  std::unique_ptr<BwTree> tree;
};

std::string KeyOf(uint64_t id) {
  char buf[16];
  snprintf(buf, sizeof(buf), "u%010llu", static_cast<unsigned long long>(id));
  return buf;
}

Setup Build(DeltaMode mode) {
  Setup s;
  cloud::CloudStoreOptions copts;
  copts.extent_capacity = 1 << 20;
  s.store = std::make_unique<cloud::CloudStore>(copts);
  BwTreeOptions opts;
  opts.delta_mode = mode;
  opts.consolidate_threshold = 10;  // both systems, as in §4.3.1
  // §4.3.1 "restricted BG3 from splitting the Bw-tree" = no forest
  // split-out: a single tree serves all keys. Leaf pages still split
  // normally so page sizes stay realistic.
  opts.read_cache = ReadCacheMode::kNone;  // "cache size ... to zero"
  opts.max_leaf_entries = 128;
  opts.base_stream = s.store->CreateStream("base");
  opts.delta_stream = s.store->CreateStream("delta");
  s.tree = std::make_unique<BwTree>(s.store.get(), opts);
  // Power-law write phase (Douyin follow data: hot users updated often).
  ZipfGenerator keys(kKeys, 0.8, 99);
  for (int i = 0; i < kWriteOps; ++i) {
    (void)s.tree->Upsert(KeyOf(keys.Next()), "follow-record-payload");
  }
  return s;
}

void BM_Fig9_ZeroCacheRead(benchmark::State& state) {
  const DeltaMode mode =
      state.range(0) == 0 ? DeltaMode::kTraditional : DeltaMode::kReadOptimized;
  static Setup traditional = Build(DeltaMode::kTraditional);
  static Setup read_optimized = Build(DeltaMode::kReadOptimized);
  Setup& s = mode == DeltaMode::kTraditional ? traditional : read_optimized;

  ZipfGenerator keys(kKeys, 0.8, 7);
  const uint64_t reads_before = s.store->stats().read_ops.Get();
  uint64_t queries = 0;
  for (auto _ : state) {
    auto v = s.tree->Get(KeyOf(keys.Next()));
    benchmark::DoNotOptimize(v);
    ++queries;
  }
  const uint64_t storage_reads = s.store->stats().read_ops.Get() - reads_before;
  state.counters["storage_reads_per_query"] =
      benchmark::Counter(static_cast<double>(storage_reads) /
                         static_cast<double>(queries ? queries : 1));
  state.SetLabel(mode == DeltaMode::kTraditional ? "SLED(traditional)"
                                                 : "BG3(read-optimized)");
}
BENCHMARK(BM_Fig9_ZeroCacheRead)->Arg(0)->Arg(1)->Iterations(20000);

}  // namespace

int main(int argc, char** argv) {
  bench::Banner("Figure 9 — read amplification, zero cache (§4.3.1)",
                "SLED 3.87x vs BG3 2.4x storage reads per entry query "
                "(-36.8%); counter storage_reads_per_query below");
  bench::BenchReport report("fig9_read_amp");
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
