// Overload ramp: open-loop arrivals at 1x/2x/4x/8x of the calibrated
// sustainable rate against one GraphDB, with and without overload
// protection (ISSUE 5 / DESIGN.md §5.5).
//
//   unprotected — every arrival is executed in FIFO order with no
//       deadline awareness: once the backlog's queueing delay crosses the
//       request deadline, *every* completion is late and goodput (work
//       finished within its deadline) collapses, even though the node is
//       100% busy. This is the classic metastable saturation curve.
//   protected — each arrival carries an OpContext deadline and admission
//       is enabled: requests that are already dead (or predicted to die in
//       the queue) are shed at the API boundary for ~100ns instead of
//       burning a full service time, so the worker keeps serving fresh
//       requests and goodput stays near the sustainable peak.
//
// Acceptance (checked by scripts/check_bench_json.py): protected goodput
// at 4x offered load retains >= 70% of the protected goodput at
// sustainable (1x) load — the baseline measured under identical
// conditions; the unprotected 4x cell is reported alongside to show the
// collapse.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "cloud/cloud_store.h"
#include "common/clock.h"
#include "common/op_context.h"
#include "common/random.h"
#include "common/time_source.h"
#include "core/graph_db.h"

using namespace bg3;

namespace {

constexpr int kWorkers = 2;
constexpr int kVertices = 2'000;
constexpr int kEdgesPerVertex = 32;
constexpr int kCalibrationOps = 6'000;
constexpr uint64_t kCellDurationUs = 150'000;  // per ramp cell
constexpr int kTrialsPerCell = 3;  // best-of-N damps scheduler noise
constexpr double kBaseUtilization = 0.8;       // "1x" = 0.8 * capacity
constexpr int kMultiples[] = {1, 2, 4, 8};
constexpr double kReadFraction = 0.8;

struct Cell {
  double offered_qps = 0;
  uint64_t offered = 0;
  uint64_t ok_in_deadline = 0;
  uint64_t late = 0;  // completed, but past the deadline: wasted work
  uint64_t shed = 0;  // refused at the boundary / admission / mid-op
  double wall_secs = 0;
  double goodput_qps = 0;
};

struct Db {
  explicit Db(bool protected_mode) {
    cloud::CloudStoreOptions copts;
    copts.extent_capacity = 4u << 20;
    store = std::make_unique<cloud::CloudStore>(copts);
    core::GraphDBOptions opts;
    if (protected_mode) {
      opts.admission.enabled = true;
      opts.admission.read_slots = kWorkers;
      opts.admission.write_slots = kWorkers;
      opts.admission.read_queue = 64;
      opts.admission.write_queue = 64;
    }
    db = std::make_unique<core::GraphDB>(store.get(), opts);
    // Warm adjacency the read mix will scan.
    for (int v = 0; v < kVertices; ++v) {
      for (int e = 0; e < kEdgesPerVertex; ++e) {
        BG3_IGNORE_STATUS(db->AddEdge(v, 1, (v + e + 1) % kVertices, "edge-props", 1));
      }
    }
  }
  std::unique_ptr<cloud::CloudStore> store;
  std::unique_ptr<core::GraphDB> db;
};

/// One request of the 80/20 read/write mix. Returns the op's Status.
Status OneOp(core::GraphDB* db, Random* rng,
             std::vector<graph::Neighbor>* scratch, const OpContext* ctx) {
  const graph::VertexId src = rng->Uniform(kVertices);
  if (rng->Uniform(100) < static_cast<uint32_t>(kReadFraction * 100)) {
    scratch->clear();
    return db->GetNeighbors(src, 1, kEdgesPerVertex, scratch, ctx);
  }
  return db->AddEdge(src, 1, rng->Uniform(kVertices), "new-edge", 2, ctx);
}

/// Closed-loop calibration: the rate the DB sustains with kWorkers
/// clients firing back-to-back. Deadlines and ramp multiples are derived
/// from this.
double CalibrateCapacityQps() {
  Db fixture(/*protected_mode=*/false);
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  const uint64_t per_thread = kCalibrationOps / kWorkers;
  for (int t = 0; t < kWorkers; ++t) {
    pool.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      Random rng(17 + t);
      std::vector<graph::Neighbor> scratch;
      for (uint64_t i = 0; i < per_thread; ++i) {
        BG3_IGNORE_STATUS(OneOp(fixture.db.get(), &rng, &scratch, nullptr));
      }
    });
  }
  const uint64_t start = NowMicros();
  go.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  const double secs = (NowMicros() - start) / 1e6;
  return (per_thread * kWorkers) / secs;
}

Cell RunCell(bool protected_mode, double offered_qps, uint64_t deadline_us) {
  Db fixture(protected_mode);
  static const WallTimeSource kWall;

  const uint64_t offered =
      static_cast<uint64_t>(offered_qps * kCellDurationUs / 1e6);
  const double interval_us = 1e6 / offered_qps;

  std::atomic<uint64_t> next{0}, ok{0}, late{0}, shed{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  std::atomic<uint64_t> start_us{0};
  for (int t = 0; t < kWorkers; ++t) {
    pool.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      Random rng(101 + t);
      std::vector<graph::Neighbor> scratch;
      for (;;) {
        const uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= offered) break;
        // Open loop: arrival i is due at a fixed offset regardless of how
        // far behind the service side is.
        const uint64_t due =
            start_us.load(std::memory_order_relaxed) +
            static_cast<uint64_t>(i * interval_us);
        while (NowMicros() < due) {
        }
        const uint64_t abs_deadline = due + deadline_us;
        Status s;
        if (protected_mode) {
          OpContext ctx;
          ctx.clock = &kWall;
          ctx.deadline_us = abs_deadline;
          s = OneOp(fixture.db.get(), &rng, &scratch, &ctx);
        } else {
          s = OneOp(fixture.db.get(), &rng, &scratch, nullptr);
        }
        if (s.ok()) {
          if (NowMicros() <= abs_deadline) {
            ok.fetch_add(1, std::memory_order_relaxed);
          } else {
            late.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          // InvalidArgument (dead at the boundary), Overloaded (admission
          // or throttle), DeadlineExceeded (died mid-op): all shed.
          shed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  start_us.store(NowMicros(), std::memory_order_relaxed);
  go.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  const double wall_secs =
      (NowMicros() - start_us.load(std::memory_order_relaxed)) / 1e6;

  Cell c;
  c.offered_qps = offered_qps;
  c.offered = offered;
  c.ok_in_deadline = ok.load();
  c.late = late.load();
  c.shed = shed.load();
  c.wall_secs = wall_secs;
  c.goodput_qps = wall_secs > 0 ? c.ok_in_deadline / wall_secs : 0;
  return c;
}

}  // namespace

int main() {
  bench::Banner(
      "Overload ramp — goodput under 1x/2x/4x/8x open-loop load, "
      "protection on vs off",
      "DESIGN.md §5.5: deadline+admission shedding keeps goodput >= 70% "
      "of peak at 4x; the unprotected path collapses");

  const double capacity_qps = CalibrateCapacityQps();
  const double base_qps = kBaseUtilization * capacity_qps;
  // Mean service time as seen by one of kWorkers closed-loop clients.
  const double mean_service_us = 1e6 * kWorkers / capacity_qps;
  const uint64_t deadline_us = std::max<uint64_t>(
      2'000, static_cast<uint64_t>(20.0 * mean_service_us));

  bench::BenchReport report("overload");
  report.Config("workers", kWorkers);
  report.Config("vertices", kVertices);
  report.Config("edges_per_vertex", kEdgesPerVertex);
  report.Config("read_fraction", kReadFraction);
  report.Config("cell_duration_us", kCellDurationUs);
  report.Config("base_utilization", kBaseUtilization);
  report.Config("hardware_concurrency",
                static_cast<uint64_t>(std::thread::hardware_concurrency()));
  report.Scalar("calibrated_capacity_qps", capacity_qps);
  report.Scalar("base_rate_qps", base_qps);
  report.Scalar("deadline_us", static_cast<double>(deadline_us));

  bench::Note("calibrated capacity %s, base (1x) rate %s, deadline %llu us",
              bench::Qps(capacity_qps).c_str(), bench::Qps(base_qps).c_str(),
              (unsigned long long)deadline_us);

  double baseline_goodput = 0;  // protected goodput at 1x: the reference
  double peak_goodput = 0;
  double protected_4x = 0, unprotected_4x = 0;
  for (const bool protected_mode : {true, false}) {
    const char* series = protected_mode ? "protected" : "unprotected";
    printf("\n[%s]\n", series);
    printf("%6s %12s %12s %10s %10s %10s %12s\n", "load", "offered-QPS",
           "goodput-QPS", "ok", "late", "shed", "wall-secs");
    for (const int m : kMultiples) {
      // Best of N trials: a cell is one 150 ms window on a shared machine,
      // so any single trial can be wrecked by scheduler noise; the best
      // trial is the one that measured the system, not the neighbors.
      Cell c;
      for (int trial = 0; trial < kTrialsPerCell; ++trial) {
        const Cell t = RunCell(protected_mode, m * base_qps, deadline_us);
        if (trial == 0 || t.goodput_qps > c.goodput_qps) c = t;
      }
      printf("%5dx %12s %12s %10llu %10llu %10llu %11.2fs\n", m,
             bench::Qps(c.offered_qps).c_str(),
             bench::Qps(c.goodput_qps).c_str(),
             (unsigned long long)c.ok_in_deadline,
             (unsigned long long)c.late, (unsigned long long)c.shed,
             c.wall_secs);
      report.AddRow(series, std::to_string(m) + "x")
          .Num("offered_qps", c.offered_qps)
          .Num("goodput_qps", c.goodput_qps)
          .Num("ok_in_deadline", static_cast<double>(c.ok_in_deadline))
          .Num("late", static_cast<double>(c.late))
          .Num("shed", static_cast<double>(c.shed))
          .Num("wall_secs", c.wall_secs);
      if (protected_mode) {
        peak_goodput = std::max(peak_goodput, c.goodput_qps);
        if (m == 1) baseline_goodput = c.goodput_qps;
      }
      if (m == 4) {
        (protected_mode ? protected_4x : unprotected_4x) = c.goodput_qps;
      }
    }
  }

  const double retention =
      baseline_goodput > 0 ? protected_4x / baseline_goodput : 0;
  const double unprotected_retention =
      baseline_goodput > 0 ? unprotected_4x / baseline_goodput : 0;
  report.Scalar("baseline_goodput_qps", baseline_goodput);
  report.Scalar("peak_goodput_qps", peak_goodput);
  report.Scalar("goodput_retention_4x", retention);
  report.Scalar("unprotected_retention_4x", unprotected_retention);

  bench::Note("goodput retention at 4x: protected %.2f (floor 0.70), "
              "unprotected %.3f",
              retention, unprotected_retention);
  report.Write();
  return 0;
}
