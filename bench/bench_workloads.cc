// Table 1 reproduction: realised characteristics of the three ByteDance
// workload generators (read/write mix, hop distribution, skew), verified
// against the paper's description.
#include <cstdio>

#include "bench_common.h"
#include "workload/workloads.h"

using namespace bg3;
using namespace bg3::workload;

namespace {

void Characterize(bench::BenchReport* report, WorkloadGenerator* gen,
                  int samples) {
  int inserts = 0, one_hop = 0, multi_hop = 0, reach = 0;
  int hop_hist[16] = {0};
  uint64_t top10_src = 0;
  for (int i = 0; i < samples; ++i) {
    const Op op = gen->Next();
    switch (op.type) {
      case Op::Type::kInsertEdge:
        ++inserts;
        break;
      case Op::Type::kOneHop:
        ++one_hop;
        ++hop_hist[1];
        break;
      case Op::Type::kMultiHop:
        ++multi_hop;
        ++hop_hist[op.hops < 16 ? op.hops : 15];
        break;
      case Op::Type::kReachCheck:
        ++reach;
        ++hop_hist[op.hops < 16 ? op.hops : 15];
        break;
    }
    if (op.src < 10) ++top10_src;
  }
  const double n = samples;
  printf("  %-24s reads=%5.1f%%  writes=%5.1f%%  top-10-src share=%4.1f%%\n",
         gen->name().c_str(), 100.0 * (samples - inserts) / n,
         100.0 * inserts / n, 100.0 * top10_src / n);
  report->AddRow("table1", gen->name())
      .Num("reads_pct", 100.0 * (samples - inserts) / n)
      .Num("writes_pct", 100.0 * inserts / n)
      .Num("top10_src_share_pct", 100.0 * top10_src / n);
  printf("  %-24s hop histogram:", "");
  for (int h = 1; h < 12; ++h) {
    if (hop_hist[h] > 0) printf(" %d-hop=%.1f%%", h, 100.0 * hop_hist[h] / n);
  }
  printf("\n");
}

}  // namespace

int main() {
  bench::Banner(
      "Table 1 — workload characterisation",
      "Follow 99R/1W 1-hop | RiskControl 50/50 5-10 hops | Recommend "
      "read-only 70/20/10 x 1/2/3-hop; all Zipf-skewed");

  const int kSamples = 200'000;
  bench::BenchReport report("workloads");
  report.Config("samples", kSamples);
  {
    FollowWorkload::Options o;
    o.num_users = 100'000;
    FollowWorkload gen(o, 1);
    Characterize(&report, &gen, kSamples);
  }
  {
    RiskControlWorkload::Options o;
    o.num_accounts = 100'000;
    RiskControlWorkload gen(o, 2);
    Characterize(&report, &gen, kSamples);
  }
  {
    RecommendWorkload::Options o;
    o.num_users = 100'000;
    RecommendWorkload gen(o, 3);
    Characterize(&report, &gen, kSamples);
  }
  return 0;
}
