// Figure 14 reproduction: read scalability of RO nodes (§4.5). Write load
// fixed at ~10K QPS on one RW node; RO nodes are added (1M1F -> 1M2F ->
// 1M3F in the paper's notation, i.e. followers 1 -> 2 -> 4), each saturated
// with read clients. The paper reports read throughput 65K -> 118K -> 134K
// QPS with the leader-follower latency pinned around 120 ms.
//
// Execution model: the benchmark host may have a single core, so followers
// are driven round-robin from one thread and throughput is CPU-normalized:
// aggregate QPS = followers x per-follower serving rate. Sub-linearity
// appears exactly where the paper's does — every follower independently
// pays the shared-storage costs (WAL tailing, cache-miss page fetches), so
// per-follower efficiency drops as followers are added.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "cloud/cloud_store.h"
#include "common/clock.h"
#include "common/random.h"
#include "graph/edge.h"
#include "replication/ro_node.h"
#include "replication/rw_node.h"

using namespace bg3;
using namespace bg3::replication;

namespace {

constexpr int kKeySpace = 20'000;
constexpr int kRounds = 400;
constexpr int kWritesPerRound = 25;   // 10K QPS at 2.5ms rounds
constexpr int kReadsPerFollowerRound = 100;

std::string EdgeKey(uint64_t i) {
  return graph::EncodeFlatEdgeKey(i % 500, 1, 100'000 + i % kKeySpace);
}

struct ScalePoint {
  double aggregate_qps;
  double per_follower_qps;
  double sync_ms;
};

ScalePoint RunWithFollowers(int followers) {
  cloud::CloudStoreOptions copts;
  copts.latency.append_base_us = 2'000;
  copts.latency.read_base_us = 2'500;
  cloud::CloudStore store(copts);

  RwNodeOptions rw_opts;
  rw_opts.tree.tree_id = 1;
  rw_opts.tree.max_leaf_entries = 512;
  rw_opts.tree.base_stream = store.CreateStream("base");
  rw_opts.tree.delta_stream = store.CreateStream("delta");
  rw_opts.wal.stream = store.CreateStream("wal");
  rw_opts.wal.group_size = 32;
  rw_opts.wal.group_window_us = 150'000;
  rw_opts.flush_group_pages = 64;
  RwNode rw(&store, rw_opts);

  std::vector<std::unique_ptr<RoNode>> ros;
  for (int i = 0; i < followers; ++i) {
    RoNodeOptions ro_opts;
    ro_opts.wal_stream = rw_opts.wal.stream;
    ro_opts.poll_interval_us = 60'000;
    ro_opts.seed = 0x77 + i;
    ros.push_back(std::make_unique<RoNode>(&store, ro_opts));
  }

  // Preload so readers hit data from the first read; warm every follower
  // (drain the preload WAL + populate caches) outside the timed region.
  for (int i = 0; i < kKeySpace; ++i) {
    BG3_IGNORE_STATUS(rw.Put(EdgeKey(i), graph::EncodeEdgeValue(i, "v")));
  }
  for (auto& ro : ros) {
    BG3_IGNORE_STATUS(ro->PollWal());
    for (int i = 0; i < kKeySpace; i += 37) (void)ro->Get(1, EdgeKey(i));
  }

  Random rng(5);
  uint64_t write_seq = kKeySpace;
  uint64_t reads = 0;
  uint64_t read_time_us = 0;
  for (int round = 0; round < kRounds; ++round) {
    for (int w = 0; w < kWritesPerRound; ++w, ++write_seq) {
      BG3_IGNORE_STATUS(rw.Put(EdgeKey(write_seq), graph::EncodeEdgeValue(write_seq, "v")));
    }
    const uint64_t t0 = NowMicros();
    for (auto& ro : ros) {
      for (int r = 0; r < kReadsPerFollowerRound; ++r) {
        auto v = ro->Get(1, EdgeKey(rng.Uniform(kKeySpace)));
        if (v.ok()) ++reads;
      }
    }
    read_time_us += NowMicros() - t0;
  }

  ScalePoint p;
  // Each follower would run on its own node: the per-follower serving rate
  // is what the driver thread sustains inside that follower's timeslice;
  // the CPU-normalized aggregate is followers x that rate.
  p.per_follower_qps =
      static_cast<double>(reads) / (static_cast<double>(read_time_us) / 1e6);
  p.aggregate_qps = followers * p.per_follower_qps;
  double sync_sum = 0;
  for (auto& ro : ros) sync_sum += ro->sync_latency().Mean();
  p.sync_ms = sync_sum / followers / 1e3;
  return p;
}

}  // namespace

int main() {
  bench::Banner("Figure 14 — RO scale-out at fixed 10K write QPS (§4.5)",
                "followers 1 -> 2 -> 4: read QPS 65K -> 118K -> 134K "
                "(sub-linear at 4), MF-latency pinned ~120 ms");

  printf("%12s %14s %16s %14s\n", "followers", "aggregate-QPS",
         "per-follower-QPS", "sync-lat(ms)");
  bench::BenchReport report("fig14_ro_scaling");
  double first = 0;
  for (int followers : {1, 2, 4}) {
    const ScalePoint p = RunWithFollowers(followers);
    if (first == 0) first = p.aggregate_qps;
    printf("%12d %14s %16s %14.1f   (x%.2f vs 1 follower)\n", followers,
           bench::Qps(p.aggregate_qps).c_str(),
           bench::Qps(p.per_follower_qps).c_str(), p.sync_ms,
           p.aggregate_qps / first);
    report.AddRow("ro_scaling", std::to_string(followers))
        .Num("aggregate_qps", p.aggregate_qps)
        .Num("per_follower_qps", p.per_follower_qps)
        .Num("sync_ms", p.sync_ms);
    fflush(stdout);
  }
  bench::Note(
      "aggregate is CPU-normalized (followers x per-follower rate). The "
      "paper's bend at 4 followers (118K -> 134K) comes from saturating "
      "production shared storage; the simulated store does not saturate at "
      "this scale, so scaling here is closer to linear — the key claims "
      "that hold are rising aggregate read throughput and flat sync "
      "latency as followers are added");
  return 0;
}
