// Write-path commit latency (ISSUE 9 / DESIGN.md §5.9): enqueue-to-ack
// latency of WalWriter::Append under concurrent writers, legacy sync mode
// vs the BtrLog-style pipeline, swept across in-flight append depth.
//
//   sync      — the baseline inline path: every sealing Append encodes and
//       appends under the writer mutex, so W concurrent writers serialize
//       and the tail latency is ~W append round trips (head-of-line
//       blocking behind every other writer's I/O).
//   pipelined — Append seals into the serializer queue and waits only for
//       its own batch's in-order acknowledgment; up to `inflight` cloud
//       appends overlap, so the queue drains `inflight` batches per round
//       trip and the tail collapses toward a single round trip.
//
// Both modes run group_size=1 (the default write-through configuration:
// the paper appends the WAL "immediately after the RW update") and
// wall_latency_scale=1.0, so each simulated append costs its modeled
// latency in real wall time — the queueing the percentiles measure is
// real, not modeled. The CI floor (scripts/check_bench_json.py) is
// p99_speedup_default_group >= 5: the deepest pipeline's p99 must beat the
// sync baseline's by at least 5x.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "cloud/cloud_store.h"
#include "common/clock.h"
#include "wal/record.h"
#include "wal/writer.h"

using namespace bg3;

namespace {

constexpr int kWriters = 16;
constexpr int kRecordsPerWriter = 20;
constexpr int kDepths[] = {1, 2, 4, 8};

wal::WalRecord Mutation(int writer, int i) {
  wal::WalRecord r;
  r.type = wal::WalRecord::Type::kMutation;
  r.tree_id = 1;
  r.page_id = static_cast<uint64_t>(writer);
  r.lsn = static_cast<uint64_t>(writer * kRecordsPerWriter + i + 1);
  r.entry = {bwtree::DeltaOp::kUpsert,
             "k" + std::to_string(writer) + "_" + std::to_string(i),
             "write-latency-bench-payload"};
  return r;
}

/// Runs kWriters threads, each appending kRecordsPerWriter records with
/// commit-wait semantics (Append returns when the record is acknowledged),
/// and returns every enqueue-to-ack latency in microseconds.
std::vector<uint64_t> RunWriters(const wal::WalWriterOptions& opts) {
  cloud::CloudStore store;
  wal::WalWriterOptions w = opts;
  w.stream = store.CreateStream("wal");
  wal::WalWriter writer(&store, w);

  std::vector<std::vector<uint64_t>> per_thread(kWriters);
  std::vector<std::thread> threads;
  threads.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      per_thread[t].reserve(kRecordsPerWriter);
      for (int i = 0; i < kRecordsPerWriter; ++i) {
        const uint64_t start = NowMicros();
        BG3_CHECK(writer.Append(Mutation(t, i)).ok());
        per_thread[t].push_back(NowMicros() - start);
      }
    });
  }
  for (auto& th : threads) th.join();
  BG3_CHECK(writer.Flush().ok());
  BG3_CHECK(writer.committed_records() ==
            static_cast<uint64_t>(kWriters) * kRecordsPerWriter);

  std::vector<uint64_t> all;
  for (auto& v : per_thread) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  return all;
}

uint64_t Pct(const std::vector<uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t idx = static_cast<size_t>(q * (sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

int main() {
  bench::Banner(
      "WAL write latency — enqueue-to-ack p50/p99 under 16 concurrent "
      "writers, sync baseline vs pipelined across in-flight depth",
      "BtrLog-style pipelined logging (DESIGN.md §5.9): out-of-order "
      "append, in-order acknowledgment");

  bench::BenchReport report("write_latency");
  report.Config("writers", static_cast<uint64_t>(kWriters));
  report.Config("records_per_writer", static_cast<uint64_t>(kRecordsPerWriter));
  report.Config("group_size", static_cast<uint64_t>(1));
  report.Config("wall_latency_scale", 1.0);

  printf("%12s %10s %12s %12s\n", "series", "inflight", "p50-us", "p99-us");

  wal::WalWriterOptions sync_opts;
  sync_opts.mode = wal::WalWriterMode::kSync;
  sync_opts.group_size = 1;
  sync_opts.wall_latency_scale = 1.0;
  const auto sync_lat = RunWriters(sync_opts);
  const uint64_t sync_p50 = Pct(sync_lat, 0.50);
  const uint64_t sync_p99 = Pct(sync_lat, 0.99);
  printf("%12s %10s %12llu %12llu\n", "sync", "-",
         (unsigned long long)sync_p50, (unsigned long long)sync_p99);
  report.AddRow("sync", "inline")
      .Num("p50_us", static_cast<double>(sync_p50))
      .Num("p99_us", static_cast<double>(sync_p99));

  uint64_t deepest_p99 = 0;
  for (const int depth : kDepths) {
    wal::WalWriterOptions p;
    p.mode = wal::WalWriterMode::kPipelined;
    p.group_size = 1;
    p.inflight_appends = static_cast<size_t>(depth);
    p.wall_latency_scale = 1.0;
    const auto lat = RunWriters(p);
    const uint64_t p50 = Pct(lat, 0.50);
    const uint64_t p99 = Pct(lat, 0.99);
    printf("%12s %10d %12llu %12llu\n", "pipelined", depth,
           (unsigned long long)p50, (unsigned long long)p99);
    report.AddRow("pipelined", "inflight" + std::to_string(depth))
        .Num("p50_us", static_cast<double>(p50))
        .Num("p99_us", static_cast<double>(p99));
    deepest_p99 = p99;
  }

  // CI floor: the deepest pipeline must cut the sync baseline's tail by at
  // least 5x. Both runs pay identical simulated I/O in real wall time, so
  // the ratio measures exactly what the pipeline removes — head-of-line
  // blocking — and is robust to machine speed.
  const double speedup =
      deepest_p99 > 0 ? static_cast<double>(sync_p99) / deepest_p99 : 0.0;
  report.Scalar("p99_speedup_default_group", speedup);

  bench::Note("sync p99 %.2fms vs pipelined(inflight=8) p99 %.2fms: "
              "%.1fx tail reduction (floor 5x)",
              sync_p99 / 1e3, deepest_p99 / 1e3, speedup);
  report.Write();
  return 0;
}
