// Figure 12 reproduction: recall rate of RO nodes under network packet loss.
// The previous-generation ByteGraph forwards write commands asynchronously
// (eventual consistency): lost packets are lost data within the window. BG3
// synchronizes through the WAL on strongly consistent shared storage, so its
// recall is 1.0 regardless of packet loss.
//
// Paper: ByteGraph recall 98% / 91% / 83% at 1% / 5% / 10% loss; BG3 = 1.0.
#include <cstdio>

#include "bench_common.h"
#include "cloud/cloud_store.h"
#include "graph/edge.h"
#include "replication/channel.h"
#include "replication/forwarding.h"
#include "replication/ro_node.h"
#include "replication/rw_node.h"

using namespace bg3;
using namespace bg3::replication;

namespace {

constexpr int kEdges = 20'000;

std::string EdgeKey(int i) {
  return graph::EncodeFlatEdgeKey(i % 500, 1, 100'000 + i);
}

double ForwardingRecall(double loss_rate) {
  ChannelOptions copts;
  copts.loss_rate = loss_rate;
  copts.loss_burst = 2;
  copts.seed = 1234 + static_cast<uint64_t>(loss_rate * 1000);
  LossyChannel channel(copts);
  ForwardingRwNode rw({&channel});
  ForwardingRoNode ro(&channel);
  for (int i = 0; i < kEdges; ++i) {
    BG3_IGNORE_STATUS(rw.Put(EdgeKey(i), "transfer"));
  }
  ro.Drain();
  int recalled = 0;
  for (int i = 0; i < kEdges; ++i) recalled += ro.Get(EdgeKey(i)).ok() ? 1 : 0;
  return static_cast<double>(recalled) / kEdges;
}

double WalRecall() {
  cloud::CloudStore store;
  RwNodeOptions rw_opts;
  rw_opts.tree.tree_id = 1;
  rw_opts.tree.base_stream = store.CreateStream("base");
  rw_opts.tree.delta_stream = store.CreateStream("delta");
  rw_opts.wal.stream = store.CreateStream("wal");
  rw_opts.flush_group_pages = 32;
  RwNode rw(&store, rw_opts);
  RoNodeOptions ro_opts;
  ro_opts.wal_stream = rw_opts.wal.stream;
  RoNode ro(&store, ro_opts);
  for (int i = 0; i < kEdges; ++i) {
    BG3_IGNORE_STATUS(rw.Put(EdgeKey(i), graph::EncodeEdgeValue(i, "transfer")));
  }
  int recalled = 0;
  for (int i = 0; i < kEdges; ++i) {
    recalled += ro.Get(1, EdgeKey(i)).ok() ? 1 : 0;
  }
  return static_cast<double>(recalled) / kEdges;
}

}  // namespace

int main() {
  bench::Banner("Figure 12 — recall vs packet loss (§4.5)",
                "ByteGraph forwarding: 0.98 / 0.91 / 0.83 at 1/5/10% loss; "
                "BG3 WAL sync: 1.00 at any loss rate");

  printf("%-10s %-24s %-18s\n", "loss", "ByteGraph(forwarding)", "BG3(WAL)");
  bench::BenchReport report("fig12_recall");
  const double bg3_recall = WalRecall();  // network loss cannot affect it
  for (double loss : {0.01, 0.02, 0.05, 0.08, 0.10}) {
    const double fwd = ForwardingRecall(loss);
    printf("%8.0f%% %-24.4f %-18.4f\n", loss * 100, fwd, bg3_recall);
    report.AddRow("recall", std::to_string(loss))
        .Num("bytegraph_forwarding", fwd)
        .Num("bg3_wal", bg3_recall);
  }
  return 0;
}
