// Figure 8 reproduction: overall throughput of BG3 vs ByteGraph vs the
// conventional-engine stand-in (AWS Neptune in the paper) across the three
// Table-1 workloads, scaling (a) threads on one "machine" (vertical: 4->16
// vCPU) and (b) partitioned engine instances (horizontal: 2->10 nodes).
//
// Expected shape (paper): BG3 >= ByteGraph on every workload (up to 1.68x /
// 4.06x on the read-dominant ones, up to 2.68x on risk control), and both
// beat the conventional engine by one to two orders of magnitude
// (ByteGraph up to 24x/17x/115x vs Neptune).
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "bytegraph/bytegraph_db.h"
#include "cloud/cloud_store.h"
#include "core/graph_db.h"
#include "refstore/ref_graph_store.h"
#include "workload/driver.h"
#include "workload/graph_gen.h"
#include "workload/workloads.h"

using namespace bg3;
using namespace bg3::workload;

namespace {

constexpr uint64_t kNumUsers = 20'000;
constexpr uint64_t kPreloadEdges = 60'000;

enum class System { kBg3, kByteGraph, kRefStore };
const char* Name(System s) {
  switch (s) {
    case System::kBg3:
      return "BG3";
    case System::kByteGraph:
      return "ByteGraph";
    case System::kRefStore:
      return "Neptune-standin";
  }
  return "?";
}

enum class Wl { kFollow, kRisk, kRecommend };
const char* Name(Wl w) {
  switch (w) {
    case Wl::kFollow:
      return "douyin-follow";
    case Wl::kRisk:
      return "financial-risk";
    case Wl::kRecommend:
      return "douyin-recommend";
  }
  return "?";
}

struct EngineBundle {
  std::vector<std::unique_ptr<cloud::CloudStore>> stores;
  std::vector<std::unique_ptr<graph::GraphEngine>> engines;
  std::unique_ptr<PartitionedEngine> partitioned;
  graph::GraphEngine* view = nullptr;
};

EngineBundle MakeEngines(System system, int instances) {
  EngineBundle b;
  std::vector<graph::GraphEngine*> raw;
  for (int i = 0; i < instances; ++i) {
    b.stores.push_back(std::make_unique<cloud::CloudStore>());
    switch (system) {
      case System::kBg3: {
        core::GraphDBOptions opts;
        opts.forest.split_out_threshold = 256;
        b.engines.push_back(
            std::make_unique<core::GraphDB>(b.stores.back().get(), opts));
        break;
      }
      case System::kByteGraph: {
        bytegraph::ByteGraphOptions opts;
        opts.lsm.memtable_bytes = 256 << 10;
        opts.cache_bytes = 4u << 20;
        b.engines.push_back(std::make_unique<bytegraph::ByteGraphDB>(
            b.stores.back().get(), opts));
        break;
      }
      case System::kRefStore: {
        b.engines.push_back(std::make_unique<refstore::RefGraphStore>(
            b.stores.back().get(), refstore::RefStoreOptions{}));
        break;
      }
    }
    raw.push_back(b.engines.back().get());
  }
  if (instances == 1) {
    b.view = raw[0];
  } else {
    b.partitioned = std::make_unique<PartitionedEngine>(raw);
    b.view = b.partitioned.get();
  }
  return b;
}

double RunOne(System system, Wl wl, int threads, int instances,
              uint64_t ops_per_thread) {
  EngineBundle bundle = MakeEngines(system, instances);
  GraphGenOptions gen;
  gen.num_sources = kNumUsers;
  gen.num_dests = kNumUsers;
  gen.num_edges = kPreloadEdges;
  if (!LoadGraph(bundle.view, gen).ok()) return 0.0;

  DriverOptions drv;
  drv.threads = threads;
  drv.ops_per_thread = ops_per_thread;
  drv.read_limit = 32;
  drv.multi_hop_fanout = 6;
  DriverResult result;
  RunWorkload(
      bundle.view,
      [&](int thread) -> std::unique_ptr<WorkloadGenerator> {
        const uint64_t seed = 10'000 + thread;
        switch (wl) {
          case Wl::kFollow: {
            FollowWorkload::Options o;
            o.num_users = kNumUsers;
            return std::make_unique<FollowWorkload>(o, seed);
          }
          case Wl::kRisk: {
            RiskControlWorkload::Options o;
            o.num_accounts = kNumUsers;
            o.min_hops = 5;
            o.max_hops = 10;
            return std::make_unique<RiskControlWorkload>(o, seed);
          }
          case Wl::kRecommend: {
            RecommendWorkload::Options o;
            o.num_users = kNumUsers;
            return std::make_unique<RecommendWorkload>(o, seed);
          }
        }
        return nullptr;
      },
      drv, &result);
  return result.qps;
}

uint64_t OpsFor(System s) {
  // The conventional engine is orders of magnitude slower; keep wall time
  // bounded without changing the reported metric (QPS).
  return s == System::kRefStore ? 1'500 : 40'000;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Banner(
      "Figure 8 — overall comparison (3 systems x 3 workloads)",
      "BG3 >= ByteGraph (1.68x/2.68x/4.06x at best), both >> conventional "
      "engine (17x-115x); near-linear scaling with cores and nodes");

  bench::BenchReport report("fig8_overall");
  printf("\n-- vertical scaling: one machine, 4 -> 16 worker threads --\n");
  printf("%-18s %-18s %8s %8s %8s\n", "system", "workload", "4thr", "8thr",
         "16thr");
  for (Wl wl : {Wl::kFollow, Wl::kRisk, Wl::kRecommend}) {
    for (System sys :
         {System::kBg3, System::kByteGraph, System::kRefStore}) {
      printf("%-18s %-18s", Name(sys), Name(wl));
      auto& row = report.AddRow("vertical",
                                std::string(Name(sys)) + "/" + Name(wl));
      for (int threads : {4, 8, 16}) {
        const double qps = RunOne(sys, wl, threads, 1, OpsFor(sys) / threads);
        printf(" %8s", bench::Qps(qps).c_str());
        row.Num("qps_" + std::to_string(threads) + "thr", qps);
      }
      printf("\n");
      fflush(stdout);
    }
  }

  printf("\n-- horizontal scaling: 2 -> 10 partitioned instances, 16 threads --\n");
  printf("%-18s %-18s %8s %8s %8s %8s %8s\n", "system", "workload", "2n", "4n",
         "6n", "8n", "10n");
  for (Wl wl : {Wl::kFollow, Wl::kRisk, Wl::kRecommend}) {
    for (System sys : {System::kBg3, System::kByteGraph}) {
      printf("%-18s %-18s", Name(sys), Name(wl));
      auto& row = report.AddRow("horizontal",
                                std::string(Name(sys)) + "/" + Name(wl));
      for (int nodes : {2, 4, 6, 8, 10}) {
        const double qps = RunOne(sys, wl, 16, nodes, OpsFor(sys) / 16);
        printf(" %8s", bench::Qps(qps).c_str());
        row.Num("qps_" + std::to_string(nodes) + "n", qps);
      }
      printf("\n");
      fflush(stdout);
    }
  }
  bench::Note(
      "scale note: graphs and op counts are laptop-sized; compare ratios "
      "and shapes with the paper, not absolute QPS");
  return 0;
}
