// Figure 13 reproduction: leader-follower synchronization latency as the
// write load grows from 10K to 60K QPS (§4.5). BG3's latency is dominated
// by WAL publication (group wait + shared-storage append) plus the RO tail
// interval — none of which grow with write load until the storage device
// saturates, so the curve stays flat around ~120 ms.
//
// Latency components are simulated on the virtual time line (see
// cloud::LatencyModel); the driver feeds the model the offered utilization
// for each load point.
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "cloud/cloud_store.h"
#include "graph/edge.h"
#include "replication/ro_node.h"
#include "replication/rw_node.h"

using namespace bg3;
using namespace bg3::replication;

namespace {

struct LatencyPoint {
  double mean_ms;
  double p50_ms;
  double p99_ms;
};

LatencyPoint RunAtLoad(uint64_t write_qps) {
  cloud::CloudStoreOptions copts;
  // ms-level shared storage as in §4.1.
  copts.latency.append_base_us = 2'000;
  copts.latency.read_base_us = 2'500;
  cloud::CloudStore store(copts);
  // The WAL device saturates around 100K small appends/s in this model.
  store.latency_model().SetOfferedUtilization(
      static_cast<double>(write_qps) / 150'000.0);

  RwNodeOptions rw_opts;
  rw_opts.tree.tree_id = 1;
  rw_opts.tree.max_leaf_entries = 512;
  rw_opts.tree.base_stream = store.CreateStream("base");
  rw_opts.tree.delta_stream = store.CreateStream("delta");
  rw_opts.wal.stream = store.CreateStream("wal");
  rw_opts.wal.group_size = 32;              // group commit under high QPS
  rw_opts.wal.group_window_us = 150'000;    // WAL buffer residency window
  rw_opts.flush_group_pages = 64;
  RwNode rw(&store, rw_opts);

  RoNodeOptions ro_opts;
  ro_opts.wal_stream = rw_opts.wal.stream;
  ro_opts.poll_interval_us = 60'000;  // RO tails the WAL every 60 ms
  RoNode ro(&store, ro_opts);

  constexpr int kWrites = 30'000;
  for (int i = 0; i < kWrites; ++i) {
    const auto key = graph::EncodeFlatEdgeKey(i % 700, 1, i);
    BG3_IGNORE_STATUS(rw.Put(key, graph::EncodeEdgeValue(i, "risk-audit-record")));
    if (i % 512 == 0) (void)ro.PollWal();
  }
  BG3_IGNORE_STATUS(rw.FlushGroup());
  BG3_IGNORE_STATUS(ro.PollWal());

  LatencyPoint p;
  p.mean_ms = ro.sync_latency().Mean() / 1e3;
  p.p50_ms = ro.sync_latency().Percentile(0.5) / 1e3;
  p.p99_ms = ro.sync_latency().Percentile(0.99) / 1e3;
  return p;
}

}  // namespace

int main() {
  bench::Banner("Figure 13 — leader-follower latency vs write load (§4.5)",
                "latency stays ~120 ms from 10K to 60K write QPS (WAL "
                "publication dominates; independent of load below "
                "device saturation)");

  printf("%12s %10s %10s %10s\n", "write-QPS", "mean(ms)", "p50(ms)",
         "p99(ms)");
  bench::BenchReport report("fig13_sync_latency");
  for (uint64_t qps : {10'000, 20'000, 30'000, 40'000, 50'000, 60'000}) {
    const LatencyPoint p = RunAtLoad(qps);
    report.AddRow("sync_latency", std::to_string(qps))
        .Num("mean_ms", p.mean_ms)
        .Num("p50_ms", p.p50_ms)
        .Num("p99_ms", p.p99_ms);
    printf("%12llu %10.1f %10.1f %10.1f\n", (unsigned long long)qps, p.mean_ms,
           p.p50_ms, p.p99_ms);
    fflush(stdout);
  }
  return 0;
}
