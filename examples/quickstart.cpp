// Quickstart: open a BG3 GraphDB over simulated cloud storage, write a tiny
// social graph, and run the basic read operations.
//
//   $ ./quickstart
#include <cstdio>

#include "cloud/cloud_store.h"
#include "core/graph_db.h"

int main() {
  using namespace bg3;

  // The shared append-only cloud store (one per deployment).
  cloud::CloudStore store;

  // A BG3 instance with default options: read-optimized Bw-trees, a
  // space-optimized forest, workload-aware space reclamation.
  core::GraphDBOptions options;
  core::GraphDB db(&store, options);

  // Vertices carry opaque property bytes.
  constexpr graph::VertexId kAlice = 1, kBob = 2, kCarol = 3;
  BG3_CHECK(db.AddVertex(kAlice, "name=alice").ok());
  BG3_CHECK(db.AddVertex(kBob, "name=bob").ok());
  BG3_CHECK(db.AddVertex(kCarol, "name=carol").ok());

  // Edge type 1 = "follows". Timestamps default to the DB clock when 0.
  constexpr graph::EdgeType kFollows = 1;
  BG3_CHECK(db.AddEdge(kAlice, kFollows, kBob, "since=2024", 0).ok());
  BG3_CHECK(db.AddEdge(kAlice, kFollows, kCarol, "since=2025", 0).ok());
  BG3_CHECK(db.AddEdge(kBob, kFollows, kCarol, "since=2026", 0).ok());

  // Point lookups.
  auto props = db.GetEdge(kAlice, kFollows, kBob);
  printf("alice->bob: %s\n", props.ok() ? props.value().c_str() : "missing");

  // Adjacency scan: whom does alice follow?
  std::vector<graph::Neighbor> followees;
  BG3_CHECK(db.GetNeighbors(kAlice, kFollows, /*limit=*/10, &followees).ok());
  printf("alice follows %zu users:", followees.size());
  for (const auto& n : followees) printf(" %llu", (unsigned long long)n.dst);
  printf("\n");

  // Unfollow.
  BG3_CHECK(db.DeleteEdge(kAlice, kFollows, kCarol).ok());
  followees.clear();
  BG3_CHECK(db.GetNeighbors(kAlice, kFollows, 10, &followees).ok());
  printf("after unfollow, alice follows %zu user(s)\n", followees.size());

  // Engine internals.
  printf("--- db stats ---\n%s\n", db.Stats().ToString().c_str());
  return 0;
}
