// Full deployment topology demo (§3.1 / Fig. 2): hashed multi-RW
// partitions over one shared store, strongly consistent follower reads, a
// leader crash + recovery from shared storage, and WAL truncation bounded
// by the slowest follower.
//
//   $ ./cluster_demo
#include <cstdio>

#include "cloud/cloud_store.h"
#include "replication/cluster.h"

int main() {
  using namespace bg3;

  cloud::CloudStoreOptions store_opts;
  store_opts.extent_capacity = 16 << 10;  // small extents: visible truncation
  cloud::CloudStore store(store_opts);

  replication::ClusterOptions opts;
  opts.partitions = 3;               // 3 RW nodes, writes hash-distributed
  opts.followers_per_partition = 2;  // 2 RO nodes each
  opts.flush_group_pages = 16;
  replication::Bg3Cluster cluster(&store, opts);

  printf("cluster: %d RW partitions x %d followers over one shared store\n",
         opts.partitions, opts.followers_per_partition);

  const int kKeys = 5'000;
  for (int i = 0; i < kKeys; ++i) {
    BG3_CHECK(cluster.Put("user:" + std::to_string(i), "profile-v1").ok());
  }
  int follower_hits = 0;
  for (int i = 0; i < kKeys; i += 7) {
    follower_hits += cluster.Get("user:" + std::to_string(i)).ok() ? 1 : 0;
  }
  printf("follower reads (strongly consistent): %d/%d visible\n",
         follower_hits, (kKeys + 6) / 7);

  // Kill and rebuild partition 1's leader purely from shared storage.
  printf("crashing leader of partition 1...\n");
  if (!cluster.CrashAndRecoverLeader(1).ok()) return 1;
  int intact = 0;
  for (int i = 0; i < kKeys; ++i) {
    intact += cluster.GetFromLeader("user:" + std::to_string(i)).ok() ? 1 : 0;
  }
  printf("after recovery: %d/%d keys intact across all leaders\n", intact,
         kKeys);

  // Writes keep flowing; followers keep following.
  for (int i = 0; i < kKeys; ++i) {
    BG3_CHECK(cluster.Put("user:" + std::to_string(i), "profile-v2").ok());
  }
  printf("post-recovery update visible on follower: %s\n",
         cluster.Get("user:42").value().c_str());

  // Globally ordered scan across the hash partitions.
  std::vector<bwtree::Entry> page;
  BG3_CHECK(cluster.Scan("user:100", "user:101", 5, &page).ok());
  printf("merged scan from 'user:100': %zu keys, first=%s\n", page.size(),
         page.empty() ? "-" : page.front().key.c_str());

  // WAL truncation: checkpoint everywhere, let followers catch up, drop the
  // consumed prefix.
  BG3_CHECK(cluster.FlushAll().ok());
  for (int p = 0; p < opts.partitions; ++p) {
    for (int f = 0; f < opts.followers_per_partition; ++f) {
      BG3_CHECK(cluster.follower(p, f)->PollWal().ok());
    }
  }
  const uint64_t before = store.TotalBytes();
  size_t freed = 0;
  for (int p = 0; p < opts.partitions; ++p) freed += cluster.TruncateWal(p);
  printf("WAL truncation: %zu extents freed (%.1f KB -> %.1f KB total)\n",
         freed, before / 1e3, store.TotalBytes() / 1e3);
  return 0;
}
