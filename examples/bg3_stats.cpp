// Observability tour: run a short Follow-style workload against a BG3
// GraphDB while a background StatsReporter periodically renders the
// process-wide metrics registry, then dump the full registry (JSON and
// Prometheus text) plus the per-layer latency breakdown.
//
//   $ ./bg3_stats                  # metrics dump on stdout
//   $ BG3_TRACE=1 ./bg3_stats      # additionally writes bg3_trace.json
//   $ BG3_SLOW_OP_US=50 ./bg3_stats  # span trees of slow ops on stderr
#include <cstdio>
#include <memory>

#include "cloud/cloud_store.h"
#include "common/metrics_registry.h"
#include "common/stats_reporter.h"
#include "common/trace.h"
#include "core/graph_db.h"
#include "workload/driver.h"
#include "workload/workloads.h"

int main() {
  using namespace bg3;

  cloud::CloudStore store;
  core::GraphDBOptions options;
  core::GraphDB db(&store, options);

  // Periodic reporter, as a service deployment would run it. The interval
  // is short so this demo produces at least one background report.
  StatsReporterOptions rep_opts;
  rep_opts.interval_ms = 50;
  rep_opts.format = "json";
  StatsReporter reporter(rep_opts);
  uint64_t background_reports = 0;
  reporter.SetSink([&background_reports](const std::string&) {
    // A real deployment would push this to a scraper; the demo just counts.
    ++background_reports;
  });
  reporter.Start();

  // Drive a mixed read/write social-follow workload through every layer:
  // API -> forest -> bw-tree -> WAL-less write path -> cloud store, plus GC.
  workload::DriverOptions dopts;
  dopts.threads = 4;
  dopts.ops_per_thread = 5'000;
  workload::DriverResult result;
  workload::RunWorkload(
      &db,
      [](int thread) {
        workload::FollowWorkload::Options o;
        o.num_users = 10'000;
        o.write_fraction = 0.2;
        return std::make_unique<workload::FollowWorkload>(
            o, /*seed=*/1 + thread);
      },
      dopts, &result);
  BG3_IGNORE_STATUS(db.RunGcCycle());

  printf("ran %llu ops at %.0f qps (%llu errors)\n",
         (unsigned long long)result.ops, result.qps,
         (unsigned long long)result.errors);

  reporter.Stop();
  printf("background reports emitted: %llu\n",
         (unsigned long long)background_reports);

  // Full registry dump — every BG3_TIMED_SCOPE histogram, the CloudStore's
  // I/O counters (bg3.cloud.store0.*), and this DB's forest/GC callbacks
  // (bg3.db0.*) appear here.
  printf("\n--- metrics registry (JSON) ---\n%s\n", db.DumpMetrics().c_str());

  printf("--- metrics registry (Prometheus text) ---\n%s",
         MetricsRegistry::Default().RenderPrometheus().c_str());

  // With BG3_TRACE=1 this writes the chrome://tracing timeline of the run.
  const std::string trace_path = trace::Trace::ExportToEnvFile();
  if (!trace_path.empty()) {
    printf("\ntrace written to %s (load in chrome://tracing)\n",
           trace_path.c_str());
  }
  return 0;
}
