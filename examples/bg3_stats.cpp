// Observability tour: run a short Follow-style workload against a BG3
// GraphDB while a background StatsReporter periodically renders the
// process-wide metrics registry, then dump the full registry (JSON and
// Prometheus text) plus the per-layer latency breakdown.
//
//   $ ./bg3_stats                  # metrics dump on stdout
//   $ BG3_TRACE=1 ./bg3_stats      # additionally writes bg3_trace.json
//   $ BG3_SLOW_OP_US=50 ./bg3_stats  # span trees of slow ops on stderr
//   $ BG3_DEBUG_SERVER=1 BG3_SERVE_MS=5000 ./bg3_stats
//                                  # serve /metrics /tracez /costz /healthz
//                                  # on an ephemeral loopback port for 5s
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>

#include "cloud/cloud_store.h"
#include "common/metrics_registry.h"
#include "common/op_context.h"
#include "common/stats_reporter.h"
#include "common/trace.h"
#include "core/graph_db.h"
#include "query/query.h"
#include "replication/cluster.h"
#include "workload/driver.h"
#include "workload/workloads.h"

int main() {
  using namespace bg3;

  cloud::CloudStore store;
  core::GraphDBOptions options;
  // BG3_DEBUG_SERVER=1 exposes the introspection endpoint; BG3_DEBUG_PORT
  // picks a fixed port (default 0 = ephemeral, printed below).
  const char* dbg_env = std::getenv("BG3_DEBUG_SERVER");
  if (dbg_env != nullptr && dbg_env[0] == '1') {
    options.debug_server.enabled = true;
    const char* port_env = std::getenv("BG3_DEBUG_PORT");
    if (port_env != nullptr) {
      options.debug_server.port =
          static_cast<uint16_t>(std::strtoul(port_env, nullptr, 10));
    }
  }
  core::GraphDB db(&store, options);
  if (db.debug_server_port() != 0) {
    // Parsed by scripts/check_debug_endpoints.py; keep the format stable.
    printf("debug server listening on 127.0.0.1:%u\n",
           static_cast<unsigned>(db.debug_server_port()));
    fflush(stdout);
  }

  // Periodic reporter, as a service deployment would run it. The interval
  // is short so this demo produces at least one background report.
  StatsReporterOptions rep_opts;
  rep_opts.interval_ms = 50;
  rep_opts.format = "json";
  StatsReporter reporter(rep_opts);
  uint64_t background_reports = 0;
  reporter.SetSink([&background_reports](const std::string&) {
    // A real deployment would push this to a scraper; the demo just counts.
    ++background_reports;
  });
  reporter.Start();

  // Drive a mixed read/write social-follow workload through every layer:
  // API -> forest -> bw-tree -> WAL-less write path -> cloud store, plus GC.
  workload::DriverOptions dopts;
  dopts.threads = 4;
  dopts.ops_per_thread = 5'000;
  workload::DriverResult result;
  workload::RunWorkload(
      &db,
      [](int thread) {
        workload::FollowWorkload::Options o;
        o.num_users = 10'000;
        o.write_fraction = 0.2;
        return std::make_unique<workload::FollowWorkload>(
            o, /*seed=*/1 + thread);
      },
      dopts, &result);
  BG3_IGNORE_STATUS(db.RunGcCycle());

  printf("ran %llu ops at %.0f qps (%llu errors)\n",
         (unsigned long long)result.ops, result.qps,
         (unsigned long long)result.errors);

  // One traced request (DESIGN.md §5.8) so /tracez retains a span tree and
  // /costz shows per-class attribution. Threshold 0 = retain every traced
  // request; BG3_SLOW_OP_US overrides for tail-based sampling.
  {
    // Deterministic 2-hop neighborhood for the traced query, independent of
    // what the random workload generated around vertex 1.
    for (graph::VertexId mid = 2; mid <= 5; ++mid) {
      BG3_IGNORE_STATUS(db.AddEdge(1, 1, mid, "demo", 1));
      BG3_IGNORE_STATUS(db.AddEdge(mid, 1, 100 + mid, "demo", 1));
    }
    // Evict resident leaves first so the traced hops fault pages back from
    // the cloud store — the span tree then reaches the cloud layer and the
    // request's account carries real I/O for /costz.
    std::vector<bwtree::BwTree*> trees;
    db.forest()->AppendTrees(&trees);
    for (bwtree::BwTree* t : trees) t->EvictColdPages(0);

    OpStats op_stats;
    OpContext ctx = OpContext::Traced("bg3_stats_demo", &op_stats);
    auto traced = query::Query(&db).V(1).Out(1).Out(1).Dedup().Context(&ctx)
                      .Execute();
    BG3_IGNORE_STATUS(traced.status());
    printf("traced demo query: %s\n", op_stats.ToJson().c_str());
  }

  reporter.Stop();
  printf("background reports emitted: %llu\n",
         (unsigned long long)background_reports);

  // Full registry dump — every BG3_TIMED_SCOPE histogram, the CloudStore's
  // I/O counters (bg3.cloud.store0.*), and this DB's forest/GC callbacks
  // (bg3.db0.*) appear here.
  printf("\n--- metrics registry (JSON) ---\n%s\n", db.DumpMetrics().c_str());

  printf("--- metrics registry (Prometheus text) ---\n%s",
         MetricsRegistry::Default().RenderPrometheus().c_str());

  // With BG3_TRACE=1 this writes the chrome://tracing timeline of the run.
  const std::string trace_path = trace::Trace::ExportToEnvFile();
  if (!trace_path.empty()) {
    printf("\ntrace written to %s (load in chrome://tracing)\n",
           trace_path.c_str());
  }

  // A small replicated cluster so /healthz carries per-partition roles,
  // terms and WAL cursors (DESIGN.md §5.10). One leader failover leaves a
  // promoted leader (term > 1) and a fenced zombie in the report; the
  // cluster registers itself as a health source on construction and stays
  // alive through the serve window below.
  cloud::CloudStore cluster_store;
  replication::ClusterOptions cluster_opts;
  cluster_opts.partitions = 2;
  cluster_opts.followers_per_partition = 2;
  cluster_opts.wal.group_window_us = 0;
  replication::Bg3Cluster cluster(&cluster_store, cluster_opts);
  for (int i = 0; i < 200; ++i) {
    BG3_IGNORE_STATUS(
        cluster.Put("health-key-" + std::to_string(i), "health-value"));
  }
  BG3_IGNORE_STATUS(cluster.PromoteFollower(0));
  printf("cluster health: %llu partitions, %llu promotions, term %llu\n",
         (unsigned long long)cluster.partitions(),
         (unsigned long long)cluster.promotions(),
         (unsigned long long)cluster.term(0));

  // Keep the debug endpoint up for scrapes (BG3_SERVE_MS, default 0).
  const char* serve_env = std::getenv("BG3_SERVE_MS");
  if (db.debug_server_port() != 0 && serve_env != nullptr) {
    const unsigned long serve_ms = std::strtoul(serve_env, nullptr, 10);
    printf("serving debug endpoints for %lu ms\n", serve_ms);
    fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(serve_ms));
  }
  return 0;
}
