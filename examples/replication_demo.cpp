// Leader-follower replication demo (§3.4 / Fig. 7): a RW node WAL-publishes
// every write to shared storage; RO nodes tail the WAL with lazy replay and
// serve strongly consistent reads — contrast with the old command-forwarding
// scheme that silently loses data under packet loss (Fig. 12).
//
//   $ ./replication_demo
#include <cstdio>

#include "cloud/cloud_store.h"
#include "graph/edge.h"
#include "replication/channel.h"
#include "replication/forwarding.h"
#include "replication/ro_node.h"
#include "replication/rw_node.h"

int main() {
  using namespace bg3;

  cloud::CloudStore store;

  // --- BG3-style WAL synchronization -------------------------------------
  replication::RwNodeOptions rw_opts;
  rw_opts.tree.tree_id = 1;
  rw_opts.tree.base_stream = store.CreateStream("base");
  rw_opts.tree.delta_stream = store.CreateStream("delta");
  rw_opts.wal.stream = store.CreateStream("wal");
  rw_opts.flush_group_pages = 16;
  replication::RwNode rw(&store, rw_opts);

  replication::RoNodeOptions ro_opts;
  ro_opts.wal_stream = rw_opts.wal.stream;
  replication::RoNode ro_a(&store, ro_opts);
  ro_opts.seed = 0x21;
  replication::RoNode ro_b(&store, ro_opts);

  const int kEdges = 2000;
  printf("writing %d fund-transfer edges on the RW node...\n", kEdges);
  for (int i = 0; i < kEdges; ++i) {
    const auto key = graph::EncodeFlatEdgeKey(i % 50, 1, 10'000 + i);
    BG3_CHECK(rw.Put(key, graph::EncodeEdgeValue(
                         i, "amount=" + std::to_string(i)))
                  .ok());
  }

  int visible_a = 0, visible_b = 0;
  for (int i = 0; i < kEdges; ++i) {
    const auto key = graph::EncodeFlatEdgeKey(i % 50, 1, 10'000 + i);
    visible_a += ro_a.Get(1, key).ok() ? 1 : 0;
    visible_b += ro_b.Get(1, key).ok() ? 1 : 0;
  }
  printf("WAL sync: RO-a sees %d/%d, RO-b sees %d/%d (strong consistency)\n",
         visible_a, kEdges, visible_b, kEdges);
  printf("simulated leader-follower latency: %s\n",
         ro_a.sync_latency().ToString().c_str());

  // --- the previous-generation forwarding scheme, for contrast -------------
  replication::ChannelOptions lossy;
  lossy.loss_rate = 0.05;
  replication::LossyChannel channel(lossy);
  replication::ForwardingRwNode old_rw({&channel});
  replication::ForwardingRoNode old_ro(&channel);
  for (int i = 0; i < kEdges; ++i) {
    BG3_CHECK(old_rw.Put("k" + std::to_string(i), "v").ok());
  }
  old_ro.Drain();
  int recalled = 0;
  for (int i = 0; i < kEdges; ++i) {
    recalled += old_ro.Get("k" + std::to_string(i)).ok() ? 1 : 0;
  }
  printf("command forwarding @5%% packet loss: RO sees %d/%d (recall %.1f%%)\n",
         recalled, kEdges, 100.0 * recalled / kEdges);
  return 0;
}
