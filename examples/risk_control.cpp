// The "Financial Risk Control" scenario of Table 1: fund-transfer edges
// with a short TTL, loop detection for anti-money-laundering (§2.6), and
// TTL-aware space reclamation that frees whole extents without moving a
// byte (§3.3 Observation 2).
//
//   $ ./risk_control
#include <cstdio>
#include <memory>

#include "cloud/cloud_store.h"
#include "core/graph_db.h"
#include "graph/pattern.h"
#include "graph/traversal.h"

int main() {
  using namespace bg3;

  cloud::CloudStoreOptions store_opts;
  store_opts.extent_capacity = 64 << 10;
  cloud::CloudStore store(store_opts);

  // A manual clock lets this demo fast-forward TTL expiry.
  cloud::ManualTimeSource clock;

  core::GraphDBOptions options;
  options.edge_ttl_us = 10ull * 60 * 1'000'000;  // 10-minute audit TTL
  options.gc_policy = core::GcPolicyKind::kWorkloadAware;
  options.time_source = &clock;
  core::GraphDB db(&store, options);

  constexpr graph::EdgeType kTransfer = 1;

  // A suspicious transfer ring: 100 -> 101 -> 102 -> 100, hidden among
  // legitimate star-shaped payment traffic.
  clock.SetUs(1'000'000);
  for (graph::VertexId a = 0; a < 100; ++a) {
    for (graph::VertexId b = 0; b < 5; ++b) {
      BG3_CHECK(db.AddEdge(a, kTransfer, 1000 + (a * 7 + b) % 400, "amt=10", 0).ok());
    }
  }
  BG3_CHECK(db.AddEdge(100, kTransfer, 101, "amt=9999", 0).ok());
  BG3_CHECK(db.AddEdge(101, kTransfer, 102, "amt=9999", 0).ok());
  BG3_CHECK(db.AddEdge(102, kTransfer, 100, "amt=9999", 0).ok());

  // Loop detection — the MPP-style risk query of §2.6.
  graph::CycleOptions cycle;
  cycle.type = kTransfer;
  cycle.max_length = 5;
  cycle.fanout = 64;
  for (graph::VertexId account : {100ull, 0ull, 101ull}) {
    auto found = graph::DetectCycle(&db, account, cycle);
    printf("account %llu: %s\n", (unsigned long long)account,
           found.ok() && found.value() ? "CYCLE DETECTED (flag for review)"
                                       : "clean");
  }

  // Multi-hop reachability: can funds flow from 100 to 102 within 10 hops?
  graph::TraversalOptions reach;
  reach.hops = 10;
  reach.fanout_per_vertex = 64;
  auto reachable = graph::IsReachable(&db, 100, 102, kTransfer, reach);
  printf("100 -> 102 reachable within 10 hops: %s\n",
         reachable.ok() && reachable.value() ? "yes" : "no");

  // TTL expiry: after the audit window, reads stop returning the data and
  // GC frees the extents outright — no relocation bandwidth (Table 2).
  const core::DbStats before = db.Stats();
  clock.AdvanceUs(30ull * 60 * 1'000'000);  // +30 minutes
  BG3_CHECK(db.RunGcCycle().ok());
  const core::DbStats after = db.Stats();
  printf("\nTTL reclamation:\n");
  printf("  storage before : %.1f KB\n", before.storage_total_bytes / 1e3);
  printf("  storage after  : %.1f KB\n", after.storage_total_bytes / 1e3);
  printf("  extents expired: %llu, bytes moved by GC: %llu (expect 0)\n",
         (unsigned long long)after.gc_extents_expired,
         (unsigned long long)after.gc_moved_bytes);

  auto gone = db.GetEdge(100, kTransfer, 101);
  printf("expired edge visible: %s\n", gone.ok() ? "yes (BUG)" : "no");
  return 0;
}
