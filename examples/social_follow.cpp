// The "Douyin Follow" scenario of Table 1: a power-law follow graph under a
// 99% read / 1% write mix, showing how the Bw-tree forest splits hot users
// out of the INIT tree and what the storage engine does underneath.
//
//   $ ./social_follow
#include <cstdio>
#include <memory>

#include "cloud/cloud_store.h"
#include "core/graph_db.h"
#include "workload/driver.h"
#include "workload/graph_gen.h"
#include "workload/workloads.h"

int main() {
  using namespace bg3;

  cloud::CloudStore store;
  core::GraphDBOptions options;
  // Hot users (> 512 followees) get dedicated Bw-trees (§3.2.1).
  options.forest.split_out_threshold = 512;
  core::GraphDB db(&store, options);

  // Bulk-load a Zipf-skewed follow graph.
  workload::GraphGenOptions gen;
  gen.num_sources = 50'000;
  gen.num_dests = 50'000;
  gen.num_edges = 300'000;
  gen.zipf_theta = 0.9;
  printf("loading %llu follow edges over %llu users...\n",
         (unsigned long long)gen.num_edges, (unsigned long long)gen.num_sources);
  auto loaded = workload::LoadGraph(&db, gen);
  if (!loaded.ok()) {
    printf("load failed: %s\n", loaded.status().ToString().c_str());
    return 1;
  }

  // Serve the production op mix for a while.
  workload::DriverOptions drv;
  drv.threads = 4;
  drv.ops_per_thread = 50'000;
  drv.read_limit = 32;
  workload::DriverResult result;
  workload::RunWorkload(
      &db,
      [&](int thread) {
        workload::FollowWorkload::Options w;
        w.num_users = gen.num_sources;
        w.zipf_theta = gen.zipf_theta;
        return std::make_unique<workload::FollowWorkload>(w, 1000 + thread);
      },
      drv, &result);

  printf("douyin-follow: %llu ops in %.2fs -> %.0f QPS (errors=%llu)\n",
         (unsigned long long)result.ops, result.seconds, result.qps,
         (unsigned long long)result.errors);

  const core::DbStats stats = db.Stats();
  printf("\nforest after the run:\n");
  printf("  bw-trees          : %llu (hot users split out: %llu)\n",
         (unsigned long long)stats.tree_count,
         (unsigned long long)stats.split_outs);
  printf("  INIT-tree entries : %llu\n", (unsigned long long)stats.init_entries);
  printf("  latch conflicts   : %llu\n",
         (unsigned long long)stats.latch_conflicts);
  printf("storage:\n");
  printf("  total=%.1f MB live=%.1f MB appends=%llu reads=%llu\n",
         stats.storage_total_bytes / 1e6, stats.storage_live_bytes / 1e6,
         (unsigned long long)stats.append_ops,
         (unsigned long long)stats.read_ops);

  // One reclamation pass to clean up overwrite garbage.
  BG3_CHECK(db.RunGcCycle().ok());
  const core::DbStats after = db.Stats();
  printf("after GC: extents freed=%llu moved=%.1f MB\n",
         (unsigned long long)after.extents_freed, after.gc_moved_bytes / 1e6);
  return 0;
}
