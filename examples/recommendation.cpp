// The "Douyin Recommendation" scenario of Table 1: read-only multi-hop
// neighbor queries (70% 1-hop, 20% 2-hop, 10% 3-hop) generating candidate
// subgraphs for a downstream recommendation model.
//
//   $ ./recommendation
#include <cstdio>
#include <memory>

#include "cloud/cloud_store.h"
#include "core/graph_db.h"
#include "graph/algorithms.h"
#include "graph/traversal.h"
#include "query/query.h"
#include "workload/driver.h"
#include "workload/graph_gen.h"
#include "workload/workloads.h"

int main() {
  using namespace bg3;

  cloud::CloudStore store;
  core::GraphDBOptions options;
  core::GraphDB db(&store, options);

  // User->video interaction graph ("likes").
  workload::GraphGenOptions gen;
  gen.num_sources = 20'000;
  gen.num_dests = 100'000;
  gen.num_edges = 200'000;
  gen.zipf_theta = 0.85;
  printf("loading %llu user-video interactions...\n",
         (unsigned long long)gen.num_edges);
  if (!workload::LoadGraph(&db, gen).ok()) return 1;

  // One explicit candidate generation: expand a user's 2-hop neighborhood
  // (videos liked by users who like the same videos).
  graph::TraversalOptions expand;
  expand.hops = 2;
  expand.fanout_per_vertex = 16;
  auto candidates = graph::KHopNeighbors(&db, /*start=*/0, gen.edge_type, expand);
  if (candidates.ok()) {
    printf("user 0: %zu candidate items from a 2-hop expansion\n",
           candidates.value().size());
  }

  // The same candidate generation written as a Gremlin-style query
  // (the BGE execution-layer surface): videos liked by users who like what
  // user 0 likes, deduped and sampled for the ranking model.
  auto sampled = query::Query(&db)
                     .V(0)
                     .Out(gen.edge_type, 16)
                     .Out(gen.edge_type, 16)
                     .Dedup()
                     .Sample(10, /*seed=*/7)
                     .Execute();
  if (sampled.ok()) {
    printf("query-layer sample: %zu candidates (e.g.", sampled.value().size());
    for (size_t i = 0; i < sampled.value().size() && i < 3; ++i) {
      printf(" %llu", (unsigned long long)sampled.value()[i]);
    }
    printf(" ...)\n");
  }

  // Personalized-PageRank ranking over the interaction graph.
  graph::PersonalizedPageRankOptions ppr;
  ppr.type = gen.edge_type;
  ppr.epsilon = 1e-5;
  auto ranked = graph::RecommendByPageRank(&db, /*source=*/0, /*k=*/5, ppr);
  if (ranked.ok()) {
    printf("PPR top-5 for user 0:");
    for (const auto& [v, score] : ranked.value()) {
      printf(" %llu(%.4f)", (unsigned long long)v, score);
    }
    printf("\n");
  }

  // Sustained read-only serving at the Table-1 hop mix.
  workload::DriverOptions drv;
  drv.threads = 4;
  drv.ops_per_thread = 25'000;
  drv.multi_hop_fanout = 8;
  workload::DriverResult result;
  workload::RunWorkload(
      &db,
      [&](int thread) {
        workload::RecommendWorkload::Options w;
        w.num_users = gen.num_sources;
        w.zipf_theta = gen.zipf_theta;
        return std::make_unique<workload::RecommendWorkload>(w, 7 + thread);
      },
      drv, &result);
  printf("douyin-recommendation: %llu queries in %.2fs -> %.0f QPS\n",
         (unsigned long long)result.ops, result.seconds, result.qps);

  const core::DbStats stats = db.Stats();
  printf("bw-trees=%llu, approx memory=%.1f MB\n",
         (unsigned long long)stats.tree_count,
         stats.approx_memory_bytes / 1e6);
  return 0;
}
